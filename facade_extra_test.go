package latenttruth_test

import (
	"math"
	"testing"

	"latenttruth"
)

// smallCorpus generates a compact corpus through the facade for the
// extended-API tests.
func smallCorpus(t *testing.T, seed int64) *latenttruth.Corpus {
	t.Helper()
	c, err := latenttruth.GenerateCorpus(latenttruth.CorpusSpec{
		Name: "facade", NumEntities: 250,
		TrueAttrWeights:  []float64{0.5, 0.4, 0.1},
		FalseCandWeights: []float64{0.4, 0.4, 0.2},
		LabelEntities:    40,
		Seed:             seed,
		Sources: []latenttruth.SourceProfile{
			{Name: "good", Coverage: 0.9, Sensitivity: 0.93, FPR: 0.03},
			{Name: "lazy", Coverage: 0.8, Sensitivity: 0.55, FPR: 0.03},
			{Name: "messy", Coverage: 0.8, Sensitivity: 0.85, FPR: 0.3},
			{Name: "ok", Coverage: 0.7, Sensitivity: 0.8, FPR: 0.08},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInferenceVariantsThroughFacade(t *testing.T) {
	c := smallCorpus(t, 1)
	ds := c.Dataset
	truth, err := c.TruthOf(ds)
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(prob []float64) float64 {
		correct := 0
		for f, v := range truth {
			if (prob[f] >= 0.5) == v {
				correct++
			}
		}
		return float64(correct) / float64(len(truth))
	}
	type variant struct {
		name string
		fit  func() (*latenttruth.FitResult, error)
	}
	for _, v := range []variant{
		{"collapsed", func() (*latenttruth.FitResult, error) {
			return latenttruth.NewLTM(latenttruth.Config{Seed: 3}).Fit(ds)
		}},
		{"naive", func() (*latenttruth.FitResult, error) {
			return latenttruth.NewNaiveLTM(latenttruth.Config{Seed: 3}).Fit(ds)
		}},
		{"em", func() (*latenttruth.FitResult, error) {
			return latenttruth.NewEMLTM(latenttruth.Config{}).Fit(ds)
		}},
	} {
		fit, err := v.fit()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if acc := accOf(fit.Prob); acc < 0.85 {
			t.Errorf("%s accuracy %v", v.name, acc)
		}
		// Every variant must identify "messy" as the least specific and
		// "lazy" as the least sensitive source.
		var bySrc = map[string]latenttruth.SourceQuality{}
		for _, q := range fit.Quality {
			bySrc[q.Source] = q
		}
		if bySrc["messy"].Specificity >= bySrc["good"].Specificity {
			t.Errorf("%s: messy specificity %v >= good %v",
				v.name, bySrc["messy"].Specificity, bySrc["good"].Specificity)
		}
		if bySrc["lazy"].Sensitivity >= bySrc["good"].Sensitivity {
			t.Errorf("%s: lazy sensitivity %v >= good %v",
				v.name, bySrc["lazy"].Sensitivity, bySrc["good"].Sensitivity)
		}
	}
}

func TestCurvesThroughFacade(t *testing.T) {
	c := smallCorpus(t, 2)
	fit, err := latenttruth.NewLTM(latenttruth.Config{Seed: 4}).Fit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := latenttruth.PrecisionRecall(c.Dataset, fit.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr) == 0 {
		t.Fatal("empty PR curve")
	}
	// Recall is non-decreasing along the curve.
	for i := 1; i < len(pr); i++ {
		if pr[i].Recall < pr[i-1].Recall {
			t.Fatal("PR curve recall not monotone")
		}
	}
	ap, err := latenttruth.AveragePrecision(c.Dataset, fit.Result)
	if err != nil {
		t.Fatal(err)
	}
	if ap < 0.8 {
		t.Errorf("average precision %v", ap)
	}
	bins, ece, err := latenttruth.Calibration(c.Dataset, fit.Result, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	// LTM's posterior should be reasonably calibrated on model-generated
	// data; belief-score methods are not probabilities at all.
	if ece > 0.25 || math.IsNaN(ece) {
		t.Errorf("ECE = %v", ece)
	}
	brier, err := latenttruth.Brier(c.Dataset, fit.Result)
	if err != nil {
		t.Fatal(err)
	}
	if brier > 0.15 {
		t.Errorf("Brier = %v", brier)
	}
}

func TestClusteredThroughFacade(t *testing.T) {
	c := smallCorpus(t, 3)
	cl := latenttruth.NewClustered(latenttruth.Config{Seed: 5, Iterations: 50, BurnIn: 10}, 2)
	out, err := cl.Fit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assignment) != c.Dataset.NumEntities() {
		t.Fatalf("assignment covers %d entities", len(out.Assignment))
	}
	if err := out.Result.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDiagnosticsThroughFacade(t *testing.T) {
	c := smallCorpus(t, 5)
	mc, err := latenttruth.FitChains(latenttruth.NewLTM(latenttruth.Config{Seed: 7}), c.Dataset, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Chains) != 3 || len(mc.RHat) != c.Dataset.NumFacts() {
		t.Fatalf("multi-chain shape: %d chains, %d R-hats", len(mc.Chains), len(mc.RHat))
	}
	if mc.MaxRHat < 1 {
		t.Fatalf("MaxRHat = %v", mc.MaxRHat)
	}
	ci, err := latenttruth.BootstrapMetrics(c.Dataset, mc.Result, 0.5, 200, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Accuracy.Lower <= ci.Accuracy.Mean && ci.Accuracy.Mean <= ci.Accuracy.Upper) {
		t.Fatalf("accuracy CI disordered: %+v", ci.Accuracy)
	}
}

func TestOnlineRefitThroughFacade(t *testing.T) {
	c := smallCorpus(t, 4)
	o, err := latenttruth.NewOnline(latenttruth.Config{
		Priors: latenttruth.DefaultPriors(300), Seed: 6, Iterations: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	batches := latenttruth.SplitEntities(c.Dataset, 2)
	if _, err := o.Step(batches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Refit(c.Dataset); err != nil {
		t.Fatal(err)
	}
	if o.FactsSeen() != c.Dataset.NumFacts() {
		t.Fatalf("FactsSeen = %d after refit", o.FactsSeen())
	}
}

func TestStreamingQueriesThroughFacade(t *testing.T) {
	c := smallCorpus(t, 8)
	fit, err := latenttruth.NewLTM(latenttruth.Config{Seed: 9, Iterations: 40}).Fit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := latenttruth.NewTruthSnapshot(c.Dataset, fit.Result, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := latenttruth.QueryTruth(sn, latenttruth.TruthQueryOptions{MinProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, ok := rows.Next()
		if !ok {
			break
		}
		if row.Probability < 0.9 {
			t.Fatalf("row %+v below min_prob", row)
		}
		n++
	}
	if n == 0 {
		t.Fatal("min_prob=0.9 matched nothing")
	}

	recs, err := latenttruth.QueryRecords(sn, latenttruth.RecordQueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		if _, ok := recs.Next(); !ok {
			break
		}
		got++
	}
	if got != 5 || recs.NextCursor() == "" {
		t.Fatalf("record page = %d rows, cursor %q", got, recs.NextCursor())
	}

	groups, err := latenttruth.QueryTruthAggregate(sn, latenttruth.AggBySource, latenttruth.TruthQueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(c.Dataset.Sources) {
		t.Fatalf("%d source groups, want %d", len(groups), len(c.Dataset.Sources))
	}

	if _, err := latenttruth.QueryTruth(sn, latenttruth.TruthQueryOptions{Entity: "nope"}); err != latenttruth.ErrNoEntity {
		t.Fatalf("unknown entity error = %v, want ErrNoEntity", err)
	}
}
