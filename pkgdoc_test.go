package latenttruth_test

// Documentation enforcement: every package in the module must carry a
// godoc package comment, and library packages must keep it in a dedicated
// doc.go so it is easy to find and cannot silently vanish in a refactor.
// CI runs this test (see .github/workflows/ci.yml, "Package docs" step);
// it fails naming the offending package.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// packageDirs lists every directory under root that contains non-test Go
// files, skipping testdata and hidden directories.
func packageDirs(t *testing.T, root string) []string {
	t.Helper()
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if dir := filepath.Dir(path); !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestPackageComments fails if any package in the module lacks a godoc
// package comment, or if a library package (the facade and internal/*)
// keeps it outside doc.go.
func TestPackageComments(t *testing.T) {
	for _, dir := range packageDirs(t, ".") {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var docFile string
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				if docFile != "" {
					t.Errorf("package %s: package comments in both %s and %s — keep one, in doc.go", dir, docFile, name)
				}
				docFile = name
			}
		}
		if docFile == "" {
			t.Errorf("package %s has no godoc package comment — add a doc.go", dir)
			continue
		}
		library := dir == "." || strings.HasPrefix(dir, "internal"+string(filepath.Separator))
		if library && docFile != "doc.go" {
			t.Errorf("package %s keeps its package comment in %s — move it to doc.go", dir, docFile)
		}
	}
}
