package latenttruth_test

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"latenttruth"
)

// Example demonstrates end-to-end truth discovery on the paper's running
// example: conflicting cast lists for Harry Potter.
func Example() {
	st := latenttruth.NewMemoryStorage()
	for _, r := range [][3]string{
		{"Harry Potter", "Daniel Radcliffe", "IMDB"},
		{"Harry Potter", "Emma Watson", "IMDB"},
		{"Harry Potter", "Rupert Grint", "IMDB"},
		{"Harry Potter", "Daniel Radcliffe", "Netflix"},
		{"Harry Potter", "Daniel Radcliffe", "BadSource.com"},
		{"Harry Potter", "Emma Watson", "BadSource.com"},
		{"Harry Potter", "Johnny Depp", "BadSource.com"},
		{"Pirates 4", "Johnny Depp", "Hulu.com"},
	} {
		st.AddRow(latenttruth.Row{Entity: r[0], Attribute: r[1], Source: r[2]})
	}
	ds := latenttruth.BuildDatasetRows(st.Rows())
	fmt.Printf("%d facts, %d claims (%d positive)\n",
		ds.NumFacts(), ds.NumClaims(), ds.NumPositiveClaims())

	// Domain knowledge from the paper's Example 1, supplied as per-source
	// priors: Netflix omits but never fabricates; BadSource is sloppy.
	cfg := latenttruth.Config{
		Priors:     latenttruth.DefaultPriors(ds.NumFacts()),
		Iterations: 500,
		Seed:       7,
		SourcePriors: map[string]latenttruth.Priors{
			"IMDB":          {TP: 90, FN: 10, FP: 1, TN: 99},
			"Netflix":       {TP: 30, FN: 70, FP: 1, TN: 99},
			"BadSource.com": {TP: 50, FN: 50, FP: 30, TN: 70},
		},
	}
	fit, err := latenttruth.NewLTM(cfg).Fit(ds)
	if err != nil {
		log.Fatal(err)
	}
	records, err := latenttruth.Integrate(ds, fit.Result, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range records {
		if rec.Entity != "Harry Potter" {
			continue
		}
		for _, a := range rec.Attributes {
			fmt.Println("accept", a.Value)
		}
		for _, a := range rec.Rejected {
			fmt.Println("reject", a.Value)
		}
	}
	// Output:
	// 5 facts, 13 claims (8 positive)
	// accept Daniel Radcliffe
	// accept Emma Watson
	// accept Rupert Grint
	// reject Johnny Depp
}

// ExampleNewIncremental shows the §5.4 online flow: learn source quality
// once, then score new data with the closed-form LTMinc posterior.
func ExampleNewIncremental() {
	corpus, err := latenttruth.BookCorpus(42)
	if err != nil {
		log.Fatal(err)
	}
	// Train on the first half, predict the second half.
	batches := latenttruth.SplitEntities(corpus.Dataset, 2)
	fit, err := latenttruth.NewLTM(latenttruth.Config{Seed: 1}).Fit(batches[0])
	if err != nil {
		log.Fatal(err)
	}
	inc, err := latenttruth.NewIncremental(batches[0], fit)
	if err != nil {
		log.Fatal(err)
	}
	res, err := inc.Infer(batches[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Method, "scored", len(res.Prob), "facts without sampling")
	// Output:
	// LTMinc scored 1320 facts without sampling
}

// ExampleFitSharded shows entity-sharded parallel inference: the exact
// barrier mode (syncEvery = 1) reproduces the single-engine fit bit for
// bit, and the parallel mode (syncEvery > 1) trades per-sweep
// synchronization for concurrency at a tiny posterior drift.
func ExampleFitSharded() {
	corpus, err := latenttruth.BookCorpus(42)
	if err != nil {
		log.Fatal(err)
	}
	ds := corpus.Dataset
	cfg := latenttruth.Config{Seed: 7}

	single, err := latenttruth.NewLTM(cfg).Fit(ds)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := latenttruth.FitSharded(ds, cfg, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := range single.Prob {
		if exact.Prob[i] != single.Prob[i] {
			identical = false
		}
	}
	fmt.Printf("exact mode (S=1, 4 shards) bit-identical over %d facts: %v\n", ds.NumFacts(), identical)

	parallel, err := latenttruth.FitSharded(ds, cfg, 4, latenttruth.DefaultSyncEvery)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range single.Prob {
		if d := parallel.Prob[i] - single.Prob[i]; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	fmt.Printf("parallel mode (S=%d) max posterior drift below 0.01: %v\n",
		latenttruth.DefaultSyncEvery, worst < 0.01)
	// Output:
	// exact mode (S=1, 4 shards) bit-identical over 2637 facts: true
	// parallel mode (S=5) max posterior drift below 0.01: true
}

// ExampleNewTruthServer shows the truthserve client flow against an
// in-process daemon: ingest claims over HTTP, force a refit, query the
// served truth table. The same handler backs cmd/truthserve.
func ExampleNewTruthServer() {
	srv, err := latenttruth.NewTruthServer(latenttruth.ServeConfig{
		LTM:           latenttruth.Config{Iterations: 200, Seed: 7},
		RefitInterval: -1, // refit on demand here; production uses the timer
		Shards:        2,  // entity-sharded full refits
		SyncEvery:     1,  // exact mode: bit-identical to the single engine
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"claims":[
		{"entity":"Harry Potter","attribute":"Daniel Radcliffe","source":"IMDB"},
		{"entity":"Harry Potter","attribute":"Emma Watson","source":"IMDB"},
		{"entity":"Harry Potter","attribute":"Daniel Radcliffe","source":"Netflix"},
		{"entity":"Harry Potter","attribute":"Daniel Radcliffe","source":"BadSource.com"},
		{"entity":"Harry Potter","attribute":"Johnny Depp","source":"BadSource.com"},
		{"entity":"Pirates 4","attribute":"Johnny Depp","source":"IMDB"},
		{"entity":"Pirates 4","attribute":"Johnny Depp","source":"Netflix"}]}`
	resp, err := http.Post(ts.URL+"/claims", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/refit", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/truth?entity=Harry%20Potter&attribute=Daniel%20Radcliffe")
	if err != nil {
		log.Fatal(err)
	}
	var truth struct {
		Rows []struct {
			Entity    string `json:"entity"`
			Attribute string `json:"attribute"`
			Predicted bool   `json:"predicted"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&truth); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	row := truth.Rows[0]
	fmt.Printf("%s / %s predicted true: %v\n", row.Entity, row.Attribute, row.Predicted)
	// Output:
	// Harry Potter / Daniel Radcliffe predicted true: true
}

// ExampleGaussianTruth shows the §7 real-valued variant on numeric claims.
func ExampleGaussianTruth() {
	claims := []latenttruth.NumericClaim{
		{Entity: "movie", Source: "archive", Value: 120.2},
		{Entity: "movie", Source: "wiki", Value: 118.0},
		{Entity: "movie2", Source: "archive", Value: 95.1},
		{Entity: "movie2", Source: "wiki", Value: 97.0},
	}
	res, err := latenttruth.GaussianTruth(claims, latenttruth.GaussianConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movie runtime ≈ %.0f\n", res.Truth["movie"])
	// Output:
	// movie runtime ≈ 119
}
