package latenttruth_test

import (
	"fmt"
	"log"

	"latenttruth"
)

// Example demonstrates end-to-end truth discovery on the paper's running
// example: conflicting cast lists for Harry Potter.
func Example() {
	db := latenttruth.NewRawDB()
	for _, r := range [][3]string{
		{"Harry Potter", "Daniel Radcliffe", "IMDB"},
		{"Harry Potter", "Emma Watson", "IMDB"},
		{"Harry Potter", "Rupert Grint", "IMDB"},
		{"Harry Potter", "Daniel Radcliffe", "Netflix"},
		{"Harry Potter", "Daniel Radcliffe", "BadSource.com"},
		{"Harry Potter", "Emma Watson", "BadSource.com"},
		{"Harry Potter", "Johnny Depp", "BadSource.com"},
		{"Pirates 4", "Johnny Depp", "Hulu.com"},
	} {
		db.Add(r[0], r[1], r[2])
	}
	ds := latenttruth.BuildDataset(db)
	fmt.Printf("%d facts, %d claims (%d positive)\n",
		ds.NumFacts(), ds.NumClaims(), ds.NumPositiveClaims())

	// Domain knowledge from the paper's Example 1, supplied as per-source
	// priors: Netflix omits but never fabricates; BadSource is sloppy.
	cfg := latenttruth.Config{
		Priors:     latenttruth.DefaultPriors(ds.NumFacts()),
		Iterations: 500,
		Seed:       7,
		SourcePriors: map[string]latenttruth.Priors{
			"IMDB":          {TP: 90, FN: 10, FP: 1, TN: 99},
			"Netflix":       {TP: 30, FN: 70, FP: 1, TN: 99},
			"BadSource.com": {TP: 50, FN: 50, FP: 30, TN: 70},
		},
	}
	fit, err := latenttruth.NewLTM(cfg).Fit(ds)
	if err != nil {
		log.Fatal(err)
	}
	records, err := latenttruth.Integrate(ds, fit.Result, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range records {
		if rec.Entity != "Harry Potter" {
			continue
		}
		for _, a := range rec.Attributes {
			fmt.Println("accept", a.Value)
		}
		for _, a := range rec.Rejected {
			fmt.Println("reject", a.Value)
		}
	}
	// Output:
	// 5 facts, 13 claims (8 positive)
	// accept Daniel Radcliffe
	// accept Emma Watson
	// accept Rupert Grint
	// reject Johnny Depp
}

// ExampleNewIncremental shows the §5.4 online flow: learn source quality
// once, then score new data with the closed-form LTMinc posterior.
func ExampleNewIncremental() {
	corpus, err := latenttruth.BookCorpus(42)
	if err != nil {
		log.Fatal(err)
	}
	// Train on the first half, predict the second half.
	batches := latenttruth.SplitEntities(corpus.Dataset, 2)
	fit, err := latenttruth.NewLTM(latenttruth.Config{Seed: 1}).Fit(batches[0])
	if err != nil {
		log.Fatal(err)
	}
	inc, err := latenttruth.NewIncremental(batches[0], fit)
	if err != nil {
		log.Fatal(err)
	}
	res, err := inc.Infer(batches[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Method, "scored", len(res.Prob), "facts without sampling")
	// Output:
	// LTMinc scored 1320 facts without sampling
}

// ExampleGaussianTruth shows the §7 real-valued variant on numeric claims.
func ExampleGaussianTruth() {
	claims := []latenttruth.NumericClaim{
		{Entity: "movie", Source: "archive", Value: 120.2},
		{Entity: "movie", Source: "wiki", Value: 118.0},
		{Entity: "movie2", Source: "archive", Value: 95.1},
		{Entity: "movie2", Source: "wiki", Value: 97.0},
	}
	res, err := latenttruth.GaussianTruth(claims, latenttruth.GaussianConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movie runtime ≈ %.0f\n", res.Truth["movie"])
	// Output:
	// movie runtime ≈ 119
}
