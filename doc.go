// Package latenttruth is a truth-discovery library for data integration,
// implementing the Latent Truth Model (LTM) of Zhao, Rubinstein, Gemmell &
// Han, "A Bayesian Approach to Discovering Truth from Conflicting Sources
// for Data Integration", VLDB 2012, together with the full set of
// comparison methods from the paper's evaluation.
//
// Given a raw database of (entity, attribute, source) triples in which
// sources conflict, the library infers which facts are true and how
// reliable each source is — without supervision — by modeling two-sided
// source quality (sensitivity and specificity) with a collapsed Gibbs
// sampler (§5.2, Algorithm 1). Multi-valued attributes (a book's authors,
// a movie's cast) are supported natively: any number of facts per entity
// may be true.
//
// Quickstart:
//
//	st := latenttruth.NewMemoryStorage()
//	st.AddRow(latenttruth.Row{Entity: "Harry Potter", Attribute: "Daniel Radcliffe", Source: "IMDB"})
//	st.AddRow(latenttruth.Row{Entity: "Harry Potter", Attribute: "Johnny Depp", Source: "BadSource.com"})
//	// ... more triples ...
//	ds := latenttruth.BuildDatasetRows(st.Rows())
//	fit, err := latenttruth.NewLTM(latenttruth.Config{}).Fit(ds)
//	if err != nil { ... }
//	records, err := latenttruth.Integrate(ds, fit.Result, 0.5)
//
// Large datasets can be fitted with entity-sharded parallel inference
// (FitSharded / CompileSharded): the claim store is partitioned by entity,
// shards are swept concurrently, and the global per-source confusion
// counts are reconciled at a configurable sync interval — sync interval 1
// is an exact mode, bit-identical to the single-engine fit. The same shard
// layer powers the truth-serving daemon's background refits
// (NewTruthServer with ServeConfig.Shards).
//
// The serving daemon (NewTruthServer) scales writes with durability
// (DurabilityConfig: write-ahead log + checkpoints + crash recovery) and
// reads with replication (StartFollower): a durable primary ships its
// checkpoint and WAL over HTTP to read-only followers that replay its
// refit schedule and serve bit-identical truth tables.
//
// This root package is a facade over the internal packages; it re-exports
// everything a downstream integrator needs: the data model (§2), LTM and
// its incremental/online variants (§5), the seven baseline methods (§6.2),
// evaluation utilities (threshold sweeps, ROC/AUC — §3.1, Figures 2–3),
// dataset I/O, and the simulated evaluation corpora (§6.1.1). The cmd/
// directory provides executables, examples/ runnable walkthroughs, and
// bench_test.go regenerates every table and figure of the paper. See
// docs/ARCHITECTURE.md for the layer map and docs/PAPER_MAP.md for the
// paper-artifact-to-code index.
package latenttruth
