package latenttruth_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"latenttruth"
)

// buildTable1 assembles the paper's running example through the public API.
func buildTable1(t *testing.T) *latenttruth.Dataset {
	t.Helper()
	st := latenttruth.NewMemoryStorage()
	for _, r := range [][3]string{
		{"Harry Potter", "Daniel Radcliffe", "IMDB"},
		{"Harry Potter", "Emma Watson", "IMDB"},
		{"Harry Potter", "Rupert Grint", "IMDB"},
		{"Harry Potter", "Daniel Radcliffe", "Netflix"},
		{"Harry Potter", "Daniel Radcliffe", "BadSource.com"},
		{"Harry Potter", "Emma Watson", "BadSource.com"},
		{"Harry Potter", "Johnny Depp", "BadSource.com"},
		{"Pirates 4", "Johnny Depp", "Hulu.com"},
	} {
		st.AddRow(latenttruth.Row{Entity: r[0], Attribute: r[1], Source: r[2]})
	}
	return latenttruth.BuildDatasetRows(st.Rows())
}

func TestEndToEndQuickstart(t *testing.T) {
	ds := buildTable1(t)
	if ds.NumFacts() != 5 || ds.NumClaims() != 13 {
		t.Fatalf("shape: %d facts, %d claims", ds.NumFacts(), ds.NumClaims())
	}
	cfg := latenttruth.Config{
		Priors:     latenttruth.DefaultPriors(ds.NumFacts()),
		Iterations: 300,
		Seed:       7,
		SourcePriors: map[string]latenttruth.Priors{
			"IMDB":          {TP: 90, FN: 10, FP: 1, TN: 99},
			"Netflix":       {TP: 30, FN: 70, FP: 1, TN: 99},
			"BadSource.com": {TP: 50, FN: 50, FP: 30, TN: 70},
		},
	}
	fit, err := latenttruth.NewLTM(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	records, err := latenttruth.Integrate(ds, fit.Result, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var hp latenttruth.Record
	for _, r := range records {
		if r.Entity == "Harry Potter" {
			hp = r
		}
	}
	if len(hp.Attributes) != 3 || len(hp.Rejected) != 1 || hp.Rejected[0].Value != "Johnny Depp" {
		t.Fatalf("Harry Potter record: %+v", hp)
	}
	conflicts := latenttruth.IntegrationConflicts(records)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(conflicts))
	}
}

func TestMethodsRegistryThroughFacade(t *testing.T) {
	names := latenttruth.MethodNames()
	if len(names) != 9 {
		t.Fatalf("names = %v", names)
	}
	ds := buildTable1(t)
	for _, name := range names {
		m, err := latenttruth.MethodByName(name, latenttruth.Config{Seed: 1, Iterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Infer(ds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(latenttruth.Methods(latenttruth.Config{})) != 9 {
		t.Fatal("Methods() size")
	}
}

func TestEvaluationThroughFacade(t *testing.T) {
	c := latenttruth.Table1Example()
	ds := c.Dataset
	res, err := latenttruth.MethodByName("Voting", latenttruth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	m, err := latenttruth.Evaluate(ds, r, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0 || m.Accuracy > 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if _, err := latenttruth.AUC(ds, r); err != nil {
		t.Fatal(err)
	}
	sweep, err := latenttruth.ThresholdSweep(ds, r, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 3 {
		t.Fatalf("sweep = %d points", len(sweep))
	}
	curve, err := latenttruth.ROC(ds, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 2 {
		t.Fatalf("curve = %d points", len(curve))
	}
}

func TestIOThroughFacade(t *testing.T) {
	ds := buildTable1(t)
	// Truth table round trip through CSV writers.
	fit, err := latenttruth.NewLTM(latenttruth.Config{Iterations: 50, Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	var truthBuf, qualBuf bytes.Buffer
	if err := latenttruth.WriteTruth(&truthBuf, ds, fit.Result, 0.5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(truthBuf.String(), "Harry Potter") {
		t.Fatal("truth CSV missing entities")
	}
	if err := latenttruth.WriteQuality(&qualBuf, fit.Quality); err != nil {
		t.Fatal(err)
	}
	quality, err := latenttruth.ReadQuality(bytes.NewReader(qualBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(quality) != ds.NumSources() {
		t.Fatalf("quality rows = %d", len(quality))
	}
	// LTMinc from the written quality.
	inc, err := latenttruth.NewIncrementalFromQuality(quality, fit.Priors)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Infer(ds); err != nil {
		t.Fatal(err)
	}
}

func TestCorporaThroughFacade(t *testing.T) {
	c, err := latenttruth.BookCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	stats := latenttruth.Summarize(c.Dataset)
	if stats.Entities != 1263 {
		t.Fatalf("book entities = %d", stats.Entities)
	}
	parts := latenttruth.SplitEntities(c.Dataset, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	sub := latenttruth.SubsampleEntities(c.Dataset, 100, 5)
	if sub.NumEntities() != 100 {
		t.Fatalf("subsample = %d", sub.NumEntities())
	}
	kept := latenttruth.FilterEntities(c.Dataset, func(id int, _ string) bool { return id < 10 })
	if kept.NumEntities() != 10 {
		t.Fatalf("filtered = %d", kept.NumEntities())
	}
	if _, err := latenttruth.MergeDatasets(parts[0], parts[1]); err != nil {
		t.Fatal(err)
	}
	conflicting := latenttruth.ConflictingOnly(c.Dataset, 2, 2)
	if conflicting.NumEntities() >= c.Dataset.NumEntities() {
		t.Fatal("conflict filter kept everything")
	}
}

func TestOnlineThroughFacade(t *testing.T) {
	c, err := latenttruth.BookCorpus(2)
	if err != nil {
		t.Fatal(err)
	}
	batches := latenttruth.SplitEntities(c.Dataset, 6)
	online, err := latenttruth.NewOnline(latenttruth.Config{
		Priors:     latenttruth.DefaultPriors(500),
		Iterations: 50,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := online.Step(batches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := online.Predict(batches[1]); err != nil {
		t.Fatal(err)
	}
	if len(online.Quality()) == 0 {
		t.Fatal("no accumulated quality")
	}
}

func TestExtensionsThroughFacade(t *testing.T) {
	// Gaussian numeric variant.
	claims := []latenttruth.NumericClaim{
		{Entity: "e1", Source: "a", Value: 10},
		{Entity: "e1", Source: "b", Value: 10.5},
		{Entity: "e2", Source: "a", Value: 20},
		{Entity: "e2", Source: "b", Value: 19.5},
	}
	g, err := latenttruth.GaussianTruth(claims, latenttruth.GaussianConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Truth["e1"]-10.25) > 0.5 {
		t.Fatalf("e1 truth %v", g.Truth["e1"])
	}
	// Adversarial filter on a small corpus.
	c, err := latenttruth.GenerateCorpus(latenttruth.CorpusSpec{
		Name: "af", NumEntities: 100,
		TrueAttrWeights:  []float64{1},
		FalseCandWeights: []float64{0.5, 0.5},
		LabelEntities:    10, Seed: 4,
		Sources: []latenttruth.SourceProfile{
			{Name: "a", Coverage: 0.9, Sensitivity: 0.9, FPR: 0.05},
			{Name: "b", Coverage: 0.9, Sensitivity: 0.9, FPR: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	af := latenttruth.NewAdversarialFilter(latenttruth.Config{Iterations: 50, Seed: 5})
	if _, err := af.Run(c.Dataset); err != nil {
		t.Fatal(err)
	}
	// Multi-type joint fit.
	mt := latenttruth.NewMultiType(latenttruth.Config{Iterations: 40, Seed: 6})
	fits, err := mt.Fit(map[string]*latenttruth.Dataset{"only": c.Dataset})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 1 {
		t.Fatalf("fits = %d", len(fits))
	}
}

func TestPaperSyntheticThroughFacade(t *testing.T) {
	cfg := latenttruth.DefaultPaperSynthetic()
	cfg.NumFacts = 300
	cfg.NumSources = 8
	ds, gen, err := latenttruth.PaperSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClaims() != 300*8 || len(gen) != 8 {
		t.Fatalf("shape: %d claims, %d quality rows", ds.NumClaims(), len(gen))
	}
	fit, err := latenttruth.NewLTM(latenttruth.Config{Iterations: 60, Seed: 2}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	m, err := latenttruth.Evaluate(ds, fit.Result, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.9 {
		t.Fatalf("accuracy %v on easy synthetic", m.Accuracy)
	}
	// Checkpoints API.
	cps := []latenttruth.Checkpoint{{Iterations: 10, BurnIn: 2}, {Iterations: 40, BurnIn: 10}}
	results, err := latenttruth.NewLTM(latenttruth.Config{Seed: 2}).FitCheckpoints(ds, cps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("checkpoints = %d", len(results))
	}
	// EstimateQuality facade path.
	quality, sens, fpr := latenttruth.EstimateQuality(ds, fit.Prob, fit.Priors)
	if len(quality) != 8 || len(sens) != 8 || len(fpr) != 8 {
		t.Fatal("quality estimation shape wrong")
	}
	ranked := latenttruth.RankedQuality(quality)
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Sensitivity < ranked[i].Sensitivity {
			t.Fatal("ranked quality unsorted")
		}
	}
}
