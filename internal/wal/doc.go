// Package wal gives the truth-serving daemon durable state: a segmented,
// CRC32C-framed write-ahead log for ingested claim batches, a checkpoint
// store that persists each published snapshot's inputs (cumulative triples,
// accumulated source quality, and a manifest tying them to a log position),
// and a recovery planner that reconstructs the daemon's exact pre-crash
// state by loading the newest readable checkpoint and replaying the log
// tail behind it.
//
// The log is the standard append-heavy recipe: batches are framed as
// (length, CRC32C, payload) records with monotonically increasing sequence
// numbers, written into fixed-size segment files named by the sequence
// number of their first record. Appends are durable before the caller is
// acknowledged under the configured fsync policy (SyncAlways fsyncs every
// record, SyncInterval at most once per interval, SyncNever leaves
// durability to the OS page cache — which still survives a SIGKILL, only
// power loss can lose acknowledged-but-unsynced records). On open, a torn
// final record (a crash mid-write) or a CRC mismatch truncates the log to
// its last valid prefix; everything before the cut is recovered intact.
//
// Checkpoints make recovery O(tail) instead of O(history): each one is a
// directory written to a temporary name, fsynced, and atomically renamed,
// holding the cumulative triples CSV (dataset.WriteTriples), the source
// quality CSV (dataset.WriteQuality), and MANIFEST.json recording the
// snapshot sequence, the log position the checkpoint covers, per-file
// CRCs, a configuration hash, and the serving layer's opaque policy state.
// Segments wholly covered by every retained checkpoint are deleted.
//
// The package has no model-specific logic; internal/serve composes it into
// the daemon (write-ahead ingest, checkpoint-on-refit, recover-on-boot).
package wal
