package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"latenttruth/internal/model"
)

// Segment and record framing. A segment file is
//
//	header:  magic "LTWALSEG" | uint32 version | uint32 reserved
//	records: uint32 payloadLen | uint32 crc32c(payload) | payload
//
// and a record payload is
//
//	uint64 seq | uint32 nrows | nrows × (entity, attribute, source)
//
// where each string is uint32 len | bytes. A payload with nrows == 0 is a
// control record: the remainder of the payload is an opaque note the
// serving layer interprets (the refit markers that let log-shipped
// replicas replay the primary's refit schedule exactly). All integers are
// little-endian. The frame CRC is Castagnoli (CRC32C), the polynomial with
// hardware support on both amd64 and arm64.
//
// The same framing doubles as the replication wire format: GET
// /replication/wal streams records encoded by EncodeBatch and followers
// decode them with DecodeBatch, so the bytes a follower receives are the
// bytes it appends to its own log.
const (
	segMagic      = "LTWALSEG"
	segVersion    = 1
	segHeaderSize = 16
	recHeaderSize = 8
	// maxRecordBytes bounds a single record payload so that a corrupt
	// length field cannot drive a multi-gigabyte allocation during scan.
	maxRecordBytes = 1 << 30
)

// castagnoli is the CRC32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Batch is one durably logged record: the rows a single Append call
// accepted, under the sequence number the log assigned to it. A batch with
// no rows is a control record and Note carries its payload (see the
// framing comment above); claim batches always have rows and an empty
// Note.
type Batch struct {
	Seq  uint64
	Rows []model.Row
	Note string
}

// IsControl reports whether b is a control record rather than a claim
// batch.
func (b Batch) IsControl() bool { return len(b.Rows) == 0 }

// EncodeBatch appends the log's CRC32C record framing for b to buf and
// returns the extended slice. The encoding is byte-identical to what
// Append writes, so replication can ship records verbatim.
func EncodeBatch(buf []byte, b Batch) []byte {
	return appendRecord(buf, b.Seq, b.Rows, b.Note)
}

// DecodeBatch reads one framed record from r. It returns io.EOF at a clean
// end of stream (no bytes before the next record) and an error for a
// truncated or corrupt frame. It is the streaming counterpart of the
// segment scan, for replication followers consuming records over a
// connection instead of a file.
func DecodeBatch(r io.Reader) (Batch, error) {
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Batch{}, io.EOF
		}
		return Batch{}, fmt.Errorf("wal: decoding record header: %w", err)
	}
	payloadLen := int(binary.LittleEndian.Uint32(hdr[:]))
	if payloadLen < 12 || payloadLen > maxRecordBytes {
		return Batch{}, fmt.Errorf("wal: decoding record: bad payload length %d", payloadLen)
	}
	frame := make([]byte, recHeaderSize+payloadLen)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[recHeaderSize:]); err != nil {
		return Batch{}, fmt.Errorf("wal: decoding record payload: %w", err)
	}
	b, _, st := parseRecord(frame, 0)
	if st != recOK {
		return Batch{}, fmt.Errorf("wal: decoding record: corrupt frame")
	}
	return b, nil
}

// appendSegmentHeader appends a fresh segment header to buf.
func appendSegmentHeader(buf []byte) []byte {
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, segVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	return buf
}

// checkSegmentHeader validates the first segHeaderSize bytes of a segment.
func checkSegmentHeader(data []byte) error {
	if len(data) < segHeaderSize {
		return fmt.Errorf("wal: segment shorter than its header (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return fmt.Errorf("wal: bad segment magic %q", data[:len(segMagic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(segMagic):]); v != segVersion {
		return fmt.Errorf("wal: unsupported segment version %d", v)
	}
	return nil
}

// appendRecord appends the framed record for (seq, rows, note) to buf. A
// note is only encoded for a rowless control record; claim batches never
// carry one.
func appendRecord(buf []byte, seq uint64, rows []model.Row, note string) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	if len(rows) == 0 {
		buf = append(buf, note...)
	}
	for _, r := range rows {
		for _, s := range [3]string{r.Entity, r.Attribute, r.Source} {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	payload := buf[start+recHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// recStatus classifies the outcome of parsing one record.
type recStatus int

const (
	// recOK: a complete, CRC-clean, well-formed record.
	recOK recStatus = iota
	// recEnd: an all-zero frame header — the untouched preallocated region
	// of the active segment, i.e. the clean end of the data. (A record
	// whose header was only partially written before a crash also reads as
	// zeros, but such a record's write(2) never returned, so it was never
	// acknowledged — treating it as the end loses nothing acked.)
	recEnd
	// recTorn: the data ends mid-record — the signature of a crash during
	// an append. Everything before the record is intact.
	recTorn
	// recCorrupt: the frame is complete but the CRC or the payload
	// structure is wrong — bit rot or an overwritten region.
	recCorrupt
)

// parseRecord parses the record starting at data[off:]. It returns the
// decoded batch, the offset just past the record, and the classification;
// batch is meaningful only for recOK.
func parseRecord(data []byte, off int) (Batch, int, recStatus) {
	rest := data[off:]
	if len(rest) < recHeaderSize {
		return Batch{}, off, recTorn
	}
	payloadLen := int(binary.LittleEndian.Uint32(rest))
	if payloadLen == 0 {
		if binary.LittleEndian.Uint32(rest[4:]) == 0 {
			return Batch{}, off, recEnd
		}
		return Batch{}, off, recCorrupt
	}
	if payloadLen > maxRecordBytes || payloadLen < 12 {
		return Batch{}, off, recCorrupt
	}
	if len(rest) < recHeaderSize+payloadLen {
		return Batch{}, off, recTorn
	}
	payload := rest[recHeaderSize : recHeaderSize+payloadLen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
		return Batch{}, off, recCorrupt
	}
	b, ok := decodePayload(payload)
	if !ok {
		return Batch{}, off, recCorrupt
	}
	return b, off + recHeaderSize + payloadLen, recOK
}

// decodePayload decodes a record payload into a batch.
func decodePayload(p []byte) (Batch, bool) {
	if len(p) < 12 {
		return Batch{}, false
	}
	b := Batch{Seq: binary.LittleEndian.Uint64(p)}
	n := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	if n < 0 || n > maxRecordBytes/12 {
		return Batch{}, false
	}
	if n == 0 {
		b.Note = string(p)
		return b, true
	}
	b.Rows = make([]model.Row, 0, n)
	for i := 0; i < n; i++ {
		var f [3]string
		for j := 0; j < 3; j++ {
			if len(p) < 4 {
				return Batch{}, false
			}
			l := int(binary.LittleEndian.Uint32(p))
			p = p[4:]
			if l < 0 || l > len(p) {
				return Batch{}, false
			}
			f[j] = string(p[:l])
			p = p[l:]
		}
		b.Rows = append(b.Rows, model.Row{Entity: f[0], Attribute: f[1], Source: f[2]})
	}
	if len(p) != 0 {
		return Batch{}, false
	}
	return b, true
}
