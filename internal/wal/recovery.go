package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"latenttruth/internal/model"
	claimseg "latenttruth/internal/segment"
)

// Layout of a data directory: the log, the checkpoints and (for the
// segment storage kind) the sealed claim segments live side by side so
// one -data-dir flag carries everything.
const (
	logSubdir        = "wal"
	checkpointSubdir = "checkpoints"
	segmentSubdir    = "segments"
)

// LogDir, CheckpointDir and SegmentDir return the standard subdirectories
// of a data directory.
func LogDir(dataDir string) string        { return filepath.Join(dataDir, logSubdir) }
func CheckpointDir(dataDir string) string { return filepath.Join(dataDir, checkpointSubdir) }
func SegmentDir(dataDir string) string    { return filepath.Join(dataDir, segmentSubdir) }

// HasState reports whether dataDir holds any durable state: a checkpoint
// directory or a log segment. Replication followers use it to decide
// between bootstrapping from the primary (cold directory) and resuming
// from local state (restart) without opening anything.
func HasState(dataDir string) (bool, error) {
	for _, probe := range []struct {
		dir string
		hit func(name string) bool
	}{
		{CheckpointDir(dataDir), func(name string) bool { return strings.HasPrefix(name, chkPrefix) }},
		{LogDir(dataDir), func(name string) bool { _, ok := parseSegmentName(name); return ok }},
	} {
		entries, err := os.ReadDir(probe.dir)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return false, fmt.Errorf("wal: %w", err)
		}
		for _, e := range entries {
			if probe.hit(e.Name()) {
				return true, nil
			}
		}
	}
	return false, nil
}

// RecoveryStats summarizes what recovery found, for logs and the
// /durability endpoint.
type RecoveryStats struct {
	// ColdStart is true when no usable checkpoint and no log records
	// existed — a first boot.
	ColdStart bool `json:"cold_start"`
	// CheckpointSeq / CheckpointWALSeq identify the checkpoint loaded
	// (zero on cold start).
	CheckpointSeq    int64  `json:"checkpoint_seq"`
	CheckpointWALSeq uint64 `json:"checkpoint_wal_seq"`
	// CheckpointsSkipped counts checkpoints that were present but
	// unreadable (missing files, CRC mismatch, bad manifest).
	CheckpointsSkipped int `json:"checkpoints_skipped"`
	// ReplayedBatches / ReplayedRows count the log tail re-applied on top
	// of the checkpoint.
	ReplayedBatches int `json:"replayed_batches"`
	ReplayedRows    int `json:"replayed_rows"`
	// TornBytes, CorruptRecords and SegmentsDropped carry the log scan's
	// repair report (see OpenStats).
	TornBytes       int64 `json:"torn_bytes"`
	CorruptRecords  int   `json:"corrupt_records"`
	SegmentsDropped int   `json:"segments_dropped"`
}

// Recovered is the reconstructed durable state of a data directory.
type Recovered struct {
	// Log is open for appending, positioned after the newest valid record.
	Log *Log
	// Store is the checkpoint store.
	Store *Store
	// Checkpoint is the checkpoint recovery loaded, nil on cold start.
	Checkpoint *Checkpoint
	// DB is the cumulative raw database from the checkpoint (empty on cold
	// start), in original insertion order — whether it was read back from
	// triples.csv or reconstructed from segments.
	DB *model.RawDB
	// Storage is the backend kind the loaded checkpoint was written by
	// ("" or "memory": triples.csv; "segments": the Segments list below).
	Storage string
	// Segments lists the verified segment refs the checkpoint covers the
	// corpus with (nil for memory checkpoints and cold starts).
	Segments []claimseg.Ref
	// Tail is the acknowledged-but-not-checkpointed batch suffix: every
	// log record with a sequence number above the checkpoint's coverage.
	Tail []Batch
	// Stats reports what recovery found and repaired.
	Stats RecoveryStats
}

// Recover reconstructs the durable state under dataDir: it opens the
// checkpoint store and the log (repairing torn or corrupt tails), loads
// the newest checkpoint whose files verify — falling back to older ones,
// which works because segments are only truncated behind the *oldest*
// retained checkpoint — and collects the log tail to replay. opts.Dir is
// ignored; the log always lives in LogDir(dataDir).
func Recover(dataDir string, opts Options) (*Recovered, error) {
	if dataDir == "" {
		return nil, fmt.Errorf("wal: data directory is required")
	}
	store, err := OpenStore(CheckpointDir(dataDir))
	if err != nil {
		return nil, err
	}
	opts.Dir = LogDir(dataDir)
	log, openStats, err := Open(opts)
	if err != nil {
		return nil, err
	}
	rec := &Recovered{
		Log:   log,
		Store: store,
		DB:    model.NewRawDB(),
		Stats: RecoveryStats{
			TornBytes:       openStats.TornBytes,
			CorruptRecords:  openStats.CorruptRecords,
			SegmentsDropped: openStats.SegmentsDropped,
		},
	}

	cps, skipped, err := store.Checkpoints()
	if err != nil {
		log.Close()
		return nil, err
	}
	rec.Stats.CheckpointsSkipped = skipped
	for i := len(cps) - 1; i >= 0; i-- {
		var db *model.RawDB
		var rerr error
		if cps[i].Manifest.Storage == "segments" {
			// Segment checkpoints carry no triples.csv: the corpus is
			// reopened from the immutable segments the manifest lists,
			// every page CRC-verified before a single row is trusted.
			db, rerr = loadSegmentDB(SegmentDir(dataDir), cps[i].Manifest.Segments)
		} else {
			db, rerr = cps[i].ReadTriples()
		}
		if rerr != nil {
			rec.Stats.CheckpointsSkipped++
			continue
		}
		cp := cps[i]
		rec.Checkpoint = &cp
		rec.DB = db
		if cp.Manifest.Storage != "" {
			rec.Storage = cp.Manifest.Storage
		}
		rec.Segments = cp.Manifest.Segments
		break
	}
	// A directory that HAD checkpoints but where none is readable is not a
	// cold start: the WAL has been truncated behind those checkpoints, so
	// rebuilding from the surviving suffix alone would silently serve a
	// fraction of the ingested history as if it were everything.
	if rec.Checkpoint == nil && (len(cps) > 0 || skipped > 0) {
		log.Close()
		return nil, fmt.Errorf("wal: %s: no readable checkpoint among %d present; refusing to serve partial state (restore a checkpoint or move the directory aside)",
			dataDir, len(cps)+skipped)
	}

	var from uint64 = 1
	if rec.Checkpoint != nil {
		rec.Stats.CheckpointSeq = rec.Checkpoint.Manifest.Seq
		rec.Stats.CheckpointWALSeq = rec.Checkpoint.Manifest.WALSeq
		from = rec.Checkpoint.Manifest.WALSeq + 1
		// A fully truncated log must keep numbering above the checkpoint.
		log.EnsureNextSeq(from)
	}
	if err := log.Replay(from, func(b Batch) error {
		rec.Tail = append(rec.Tail, b)
		rec.Stats.ReplayedBatches++
		rec.Stats.ReplayedRows += len(b.Rows)
		return nil
	}); err != nil {
		log.Close()
		return nil, err
	}
	// The same partial-state guard for a checkpoint-less directory: if the
	// log's first surviving record is not seq 1, a prefix was truncated
	// (or lost) and the full history cannot be reconstructed.
	if rec.Checkpoint == nil && len(rec.Tail) > 0 && rec.Tail[0].Seq != 1 {
		log.Close()
		return nil, fmt.Errorf("wal: %s: log starts at seq %d with no checkpoint covering the gap; refusing to serve partial state",
			dataDir, rec.Tail[0].Seq)
	}
	rec.Stats.ColdStart = rec.Checkpoint == nil && openStats.Records == 0
	return rec, nil
}

// loadSegmentDB reconstructs the raw database from a checkpoint's segment
// refs: contiguous global-index coverage is enforced, every segment is
// opened (CRC-verifying all pages) and decoded into its index range, and
// the rows are re-added in insertion order — so the rebuilt RawDB is
// bit-identical to the one the checkpointing server held.
func loadSegmentDB(dir string, refs []claimseg.Ref) (*model.RawDB, error) {
	total := 0
	for _, ref := range refs {
		if ref.FirstRow != total {
			return nil, fmt.Errorf("wal: segment %d starts at row %d, want %d (coverage gap)", ref.ID, ref.FirstRow, total)
		}
		total += ref.Rows
	}
	rows := make([]model.Row, total)
	for _, ref := range refs {
		s, err := claimseg.Open(dir, ref)
		if err != nil {
			return nil, err
		}
		rerr := s.ReadRows(rows)
		s.Close()
		if rerr != nil {
			return nil, rerr
		}
	}
	db := model.NewRawDB()
	for i, r := range rows {
		if !db.AddRow(r) {
			return nil, fmt.Errorf("wal: segment row %d is a duplicate; segments are corrupt or mismatched", i)
		}
	}
	return db, nil
}
