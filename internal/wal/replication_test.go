package wal

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestEncodeDecodeBatchRoundTrip(t *testing.T) {
	want := []Batch{
		{Seq: 1, Rows: testRows(0, 3)},
		{Seq: 2, Note: "refit:"},
		{Seq: 3, Rows: testRows(1, 1)},
		{Seq: 4, Note: ""},
		{Seq: 5, Rows: testRows(2, 7)},
	}
	var buf []byte
	for _, b := range want {
		buf = EncodeBatch(buf, b)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	var got []Batch
	for {
		b, err := DecodeBatch(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		got = append(got, b)
	}
	mustEqualBatches(t, got, want)
	for i := range got {
		if got[i].Note != want[i].Note {
			t.Fatalf("batch %d: note %q, want %q", i, got[i].Note, want[i].Note)
		}
		if got[i].IsControl() != (len(want[i].Rows) == 0) {
			t.Fatalf("batch %d: IsControl = %v", i, got[i].IsControl())
		}
	}
}

func TestDecodeBatchTruncatedAndCorrupt(t *testing.T) {
	frame := EncodeBatch(nil, Batch{Seq: 9, Rows: testRows(0, 2)})
	if _, err := DecodeBatch(bytes.NewReader(frame[:len(frame)-1])); err == nil {
		t.Fatal("truncated frame decoded cleanly")
	}
	if _, err := DecodeBatch(bytes.NewReader(frame[:4])); err == nil {
		t.Fatal("truncated header decoded cleanly")
	}
	flipped := bytes.Clone(frame)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := DecodeBatch(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupt frame decoded cleanly")
	}
	if _, err := DecodeBatch(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestControlRecordsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendNote("refit:incremental")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("note got seq %d, want 2", seq)
	}
	if _, err := l.Append(testRows(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.Records != 3 || st.LastSeq != 3 {
		t.Fatalf("reopen found %+v, want 3 records through seq 3", st)
	}
	got := replayAll(t, l2)
	if len(got) != 3 || !got[1].IsControl() || got[1].Note != "refit:incremental" {
		t.Fatalf("replayed %+v, want control record with note at seq 2", got)
	}
}

func TestAppendBatchMirrorsSequenceExactly(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := []Batch{
		{Seq: 1, Rows: testRows(0, 3)},
		{Seq: 2, Note: "refit:"},
		{Seq: 3, Rows: testRows(1, 2)},
	}
	for _, b := range want {
		if err := l.AppendBatch(b); err != nil {
			t.Fatalf("AppendBatch(%d): %v", b.Seq, err)
		}
	}
	// A gap or a replayed duplicate must be rejected, not silently renumbered.
	if err := l.AppendBatch(Batch{Seq: 7, Rows: testRows(9, 1)}); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("gap append: err = %v, want out-of-order", err)
	}
	if err := l.AppendBatch(Batch{Seq: 3, Rows: testRows(1, 2)}); err == nil {
		t.Fatal("duplicate append succeeded")
	}
	mustEqualBatches(t, replayAll(t, l), want)
}

func TestAppendBatchResumesAboveCheckpointCoverage(t *testing.T) {
	// A follower that bootstrapped from a checkpoint covering WAL seq 41
	// opens an empty log and must mirror the primary starting at 42.
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.EnsureNextSeq(42)
	if err := l.AppendBatch(Batch{Seq: 41, Rows: testRows(0, 1)}); err == nil {
		t.Fatal("append below the checkpoint coverage succeeded")
	}
	if err := l.AppendBatch(Batch{Seq: 42, Rows: testRows(0, 1)}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateBeforeNoCursorsFastPath pins the single-consumer behavior:
// with no cursors registered, the floor is exactly the caller's bound.
func TestTruncateBeforeNoCursorsFastPath(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 200; i++ {
		if last, err = l.Append(testRows(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("want several segments, got %d", st.Segments)
	}
	if err := l.TruncateBefore(last); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 1 {
		t.Fatalf("no-cursor truncation left %d segments, want only the active one", st.Segments)
	}
	got := replayAll(t, l)
	if len(got) == 0 || got[len(got)-1].Seq != last {
		t.Fatalf("newest record lost: %d batches survive", len(got))
	}
}

func TestCursorPinsTruncationFloor(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 200; i++ {
		if last, err = l.Append(testRows(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats().Segments

	// A follower acknowledged through seq 10: records 11.. must survive a
	// truncation request at the checkpoint bound (last).
	cur := l.OpenCursor("follower-a", 10)
	if err := l.TruncateBefore(last); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	if err := l.Replay(11, func(b Batch) error { seen[b.Seq] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(11); seq <= last; seq++ {
		if !seen[seq] {
			t.Fatalf("record %d was truncated away despite cursor at 10", seq)
		}
	}

	// Advancing the cursor releases segments; Advance never moves backward.
	cur.Advance(last - 1)
	cur.Advance(5)
	if got := cur.Seq(); got != last-1 {
		t.Fatalf("cursor at %d, want %d", got, last-1)
	}
	if err := l.TruncateBefore(last); err != nil {
		t.Fatal(err)
	}
	mid := l.Stats().Segments
	if mid >= before {
		t.Fatalf("advanced cursor did not release segments (%d -> %d)", before, mid)
	}

	// Closing the cursor restores the fast path entirely.
	cur.Close()
	cur.Close() // idempotent
	if err := l.TruncateBefore(last); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("closed cursor still pins %d segments", got)
	}
}

func TestCursorsListing(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Cursors(); len(got) != 0 {
		t.Fatalf("fresh log lists %d cursors", len(got))
	}
	b := l.OpenCursor("b", 7)
	a := l.OpenCursor("a", 3)
	got := l.Cursors()
	if len(got) != 2 || got[0] != (CursorInfo{Name: "a", Seq: 3}) || got[1] != (CursorInfo{Name: "b", Seq: 7}) {
		t.Fatalf("Cursors() = %+v", got)
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatal("cursor names lost")
	}
	a.Close()
	b.Close()
	if got := l.Cursors(); len(got) != 0 {
		t.Fatalf("closed cursors still listed: %+v", got)
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if ok, err := HasState(dir); err != nil || ok {
		t.Fatalf("empty dir: HasState = %v, %v", ok, err)
	}
	rec, err := Recover(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := HasState(dir); ok {
		t.Fatal("directory with no records or checkpoints reports state")
	}
	if _, err := rec.Log.Append(testRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	rec.Log.Close()
	if ok, err := HasState(dir); err != nil || !ok {
		t.Fatalf("dir with a segment: HasState = %v, %v", ok, err)
	}
}
