package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"latenttruth/internal/dataset"
	"latenttruth/internal/model"
	claimseg "latenttruth/internal/segment"
)

// Checkpoint file layout: one directory per checkpoint,
//
//	checkpoints/chk-<seq>/triples.csv   cumulative raw database
//	checkpoints/chk-<seq>/quality.csv   accumulated source quality
//	checkpoints/chk-<seq>/MANIFEST.json metadata + per-file CRCs
//
// written under a ".tmp-" name, fsynced, and renamed into place, so a
// crash can never leave a half-written checkpoint under a valid name.
//
// triples.csv is the recovery-critical file. quality.csv is for operators
// and offline tooling (dataset.ReadQuality): recovery itself restores the
// accumulator from the manifest's policy state, which carries the counts
// at full float64 precision where the CSV rounds to 6 decimals.
// posterior.csv (optional; present when the serving layer checkpoints a
// published snapshot) carries the per-fact posterior at full precision so
// recovery and followers can reconstruct the previous snapshot exactly —
// what makes a replayed dirty refit bit-identical to the original.
const (
	manifestName   = "MANIFEST.json"
	triplesName    = "triples.csv"
	qualityName    = "quality.csv"
	posteriorName  = "posterior.csv"
	chkPrefix      = "chk-"
	chkTmpPrefix   = ".tmp-"
	manifestFormat = 1
)

// PosteriorName is the file name of the optional posterior part, exported
// for transports that ship checkpoint directories file-by-file.
const PosteriorName = posteriorName

// Manifest ties a checkpoint's files to the log position and serving state
// they capture. Policy is opaque to this package: the serving layer stores
// whatever it needs to resume its refit policy bit-identically (for LTM,
// the accumulated per-source confusion counts and resolved priors).
type Manifest struct {
	Format int `json:"format"`
	// Seq is the snapshot sequence number the checkpoint captures.
	Seq int64 `json:"seq"`
	// WALSeq is the newest log record folded into the checkpoint: recovery
	// replays records with sequence numbers strictly above it.
	WALSeq uint64 `json:"wal_seq"`
	// ConfigHash fingerprints the serving configuration that produced the
	// state; a mismatch on recovery means the policy state is not safely
	// reusable (the triples always are).
	ConfigHash string `json:"config_hash,omitempty"`
	// Refits / FullRefits / DirtyRefits / IngestedTotal restore the
	// server's counters.
	Refits        int64 `json:"refits"`
	FullRefits    int64 `json:"full_refits"`
	DirtyRefits   int64 `json:"dirty_refits,omitempty"`
	IngestedTotal int64 `json:"ingested_total"`
	// TriplesCRC / QualityCRC are CRC32C checksums of the sibling files.
	TriplesCRC uint32 `json:"triples_crc"`
	QualityCRC uint32 `json:"quality_crc"`
	// PosteriorCRC is the CRC32C of the optional posterior.csv; zero means
	// the checkpoint carries no posterior (written before snapshot
	// restoration existed, or the serving layer had nothing published).
	PosteriorCRC uint32 `json:"posterior_crc,omitempty"`
	// Mode is the refit policy that produced the checkpointed snapshot and
	// DirtyEntities its dirty fast-path sweep size — together the dirty-set
	// watermark recovery reports for a restored partial refit.
	Mode          string `json:"mode,omitempty"`
	DirtyEntities int    `json:"dirty_entities,omitempty"`
	// CreatedAt records when the checkpoint was written.
	CreatedAt time.Time `json:"created_at"`
	// Policy is the serving layer's opaque refit-policy state.
	Policy json.RawMessage `json:"policy_state,omitempty"`
	// Storage names the backend kind that wrote the checkpoint; empty
	// means the classic memory path (triples.csv carries the corpus).
	Storage string `json:"storage,omitempty"`
	// Segments lists the immutable on-disk segments covering the corpus
	// when Storage is "segments": the checkpoint then writes no
	// triples.csv (TriplesCRC is zero) and recovery reopens the segments
	// instead. Segments are append-only across checkpoints, so each
	// checkpoint seals only the rows ingested since the previous one.
	Segments []claimseg.Ref `json:"segments,omitempty"`
}

// Store manages a directory of checkpoints.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a checkpoint directory and clears
// leftover temporary directories from interrupted writes.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), chkTmpPrefix) {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("wal: clearing stale checkpoint temp: %w", err)
			}
		}
	}
	return &Store{dir: dir}, nil
}

// Checkpoint is one on-disk checkpoint with its parsed manifest.
type Checkpoint struct {
	Dir      string
	Manifest Manifest
}

// checkpointDirName returns the directory name for a snapshot sequence.
func checkpointDirName(seq int64) string {
	return fmt.Sprintf("%s%016d", chkPrefix, seq)
}

// Write persists a checkpoint: triples, quality and (optionally) the
// posterior are produced by the given writers (CRCs are computed in-line
// and recorded in the manifest; a nil posterior writer omits the file),
// everything is fsynced in a temporary directory, and the directory is
// atomically renamed into place. The parent directory is fsynced last, so
// after Write returns the checkpoint survives power loss.
//
// A nil triples writer omits triples.csv (TriplesCRC stays zero): that is
// the segment-backed shape, where the manifest's Segments list carries the
// corpus coverage instead of a CSV copy — the O(history) rewrite the
// memory path pays per checkpoint becomes O(new rows).
func (st *Store) Write(m Manifest, triples, quality, posterior func(io.Writer) error) error {
	m.Format = manifestFormat
	if m.CreatedAt.IsZero() {
		m.CreatedAt = time.Now().UTC()
	}
	final := filepath.Join(st.dir, checkpointDirName(m.Seq))
	tmp := filepath.Join(st.dir, chkTmpPrefix+checkpointDirName(m.Seq))
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			os.RemoveAll(tmp)
		}
	}()

	var err error
	if triples != nil {
		if m.TriplesCRC, err = writeFileCRC(filepath.Join(tmp, triplesName), triples); err != nil {
			return err
		}
	} else {
		m.TriplesCRC = 0
	}
	if m.QualityCRC, err = writeFileCRC(filepath.Join(tmp, qualityName), quality); err != nil {
		return err
	}
	if posterior != nil {
		if m.PosteriorCRC, err = writeFileCRC(filepath.Join(tmp, posteriorName), posterior); err != nil {
			return err
		}
	} else {
		m.PosteriorCRC = 0
	}
	manifest, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: encoding manifest: %w", err)
	}
	if _, err := writeFileCRC(filepath.Join(tmp, manifestName), func(w io.Writer) error {
		_, werr := w.Write(append(manifest, '\n'))
		return werr
	}); err != nil {
		return err
	}
	if err := syncDir(tmp); err != nil {
		return err
	}
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	ok = true
	return syncDir(st.dir)
}

// writeFileCRC writes via fn into path, fsyncs it, and returns the CRC32C
// of the bytes written.
func writeFileCRC(path string, fn func(io.Writer) error) (uint32, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	h := crc32.New(castagnoli)
	if err := fn(io.MultiWriter(f, h)); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: fsync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: closing %s: %w", path, err)
	}
	return h.Sum32(), nil
}

// Checkpoints returns the store's checkpoints with parseable manifests, in
// ascending sequence order. Directories whose manifest is missing or
// malformed are skipped (and counted), not fatal: recovery falls back to
// an older checkpoint.
func (st *Store) Checkpoints() (cps []Checkpoint, skipped int, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), chkPrefix) {
			continue
		}
		if _, perr := strconv.ParseInt(strings.TrimPrefix(e.Name(), chkPrefix), 10, 64); perr != nil {
			continue
		}
		dir := filepath.Join(st.dir, e.Name())
		raw, rerr := os.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			skipped++
			continue
		}
		var m Manifest
		if jerr := json.Unmarshal(raw, &m); jerr != nil || m.Format != manifestFormat {
			skipped++
			continue
		}
		cps = append(cps, Checkpoint{Dir: dir, Manifest: m})
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].Manifest.Seq < cps[j].Manifest.Seq })
	return cps, skipped, nil
}

// Count returns the number of checkpoint directories.
func (st *Store) Count() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), chkPrefix) {
			n++
		}
	}
	return n
}

// Prune deletes all but the newest retain checkpoints and returns the ones
// that remain (ascending). retain < 1 is treated as 1: the newest
// checkpoint is never deleted.
func (st *Store) Prune(retain int) ([]Checkpoint, error) {
	if retain < 1 {
		retain = 1
	}
	cps, _, err := st.Checkpoints()
	if err != nil {
		return nil, err
	}
	if len(cps) <= retain {
		return cps, nil
	}
	for _, cp := range cps[:len(cps)-retain] {
		if err := os.RemoveAll(cp.Dir); err != nil {
			return nil, fmt.Errorf("wal: pruning checkpoint: %w", err)
		}
	}
	if err := syncDir(st.dir); err != nil {
		return nil, err
	}
	return cps[len(cps)-retain:], nil
}

// ReadTriples loads and CRC-verifies the checkpoint's cumulative raw
// database. Row order is preserved, so the dataset built from it is
// bit-identical to the one the checkpointed server had.
func (c Checkpoint) ReadTriples() (*model.RawDB, error) {
	db, crc, err := readCRC(filepath.Join(c.Dir, triplesName), func(r io.Reader) (*model.RawDB, error) {
		return dataset.ReadTriples(r)
	})
	if err != nil {
		return nil, err
	}
	if crc != c.Manifest.TriplesCRC {
		return nil, fmt.Errorf("wal: checkpoint %d: triples CRC mismatch (have %08x, manifest %08x)",
			c.Manifest.Seq, crc, c.Manifest.TriplesCRC)
	}
	return db, nil
}

// ReadQuality loads and CRC-verifies the checkpoint's source-quality table.
func (c Checkpoint) ReadQuality() ([]model.SourceQuality, error) {
	q, crc, err := readCRC(filepath.Join(c.Dir, qualityName), func(r io.Reader) ([]model.SourceQuality, error) {
		return dataset.ReadQuality(r)
	})
	if err != nil {
		return nil, err
	}
	if crc != c.Manifest.QualityCRC {
		return nil, fmt.Errorf("wal: checkpoint %d: quality CRC mismatch (have %08x, manifest %08x)",
			c.Manifest.Seq, crc, c.Manifest.QualityCRC)
	}
	return q, nil
}

// ReadPosterior loads and CRC-verifies the checkpoint's per-fact posterior,
// aligned to ds (the dataset built from the checkpoint's own triples).
// Checkpoints without a posterior return (nil, false, nil).
func (c Checkpoint) ReadPosterior(ds *model.Dataset) ([]float64, bool, error) {
	if c.Manifest.PosteriorCRC == 0 {
		return nil, false, nil
	}
	prob, crc, err := readCRC(filepath.Join(c.Dir, posteriorName), func(r io.Reader) ([]float64, error) {
		return dataset.ReadPosterior(r, ds)
	})
	if err != nil {
		return nil, false, err
	}
	if crc != c.Manifest.PosteriorCRC {
		return nil, false, fmt.Errorf("wal: checkpoint %d: posterior CRC mismatch (have %08x, manifest %08x)",
			c.Manifest.Seq, crc, c.Manifest.PosteriorCRC)
	}
	return prob, true, nil
}

// readCRC parses path via fn while accumulating the CRC32C of every byte
// consumed, draining any remainder so the checksum covers the whole file.
func readCRC[T any](path string, fn func(io.Reader) (T, error)) (T, uint32, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	v, err := fn(io.TeeReader(f, h))
	if err != nil {
		return zero, 0, err
	}
	if _, err := io.Copy(h, f); err != nil {
		return zero, 0, fmt.Errorf("wal: %w", err)
	}
	return v, h.Sum32(), nil
}
