package wal

import (
	"io"
	"os"
	"testing"

	"latenttruth/internal/dataset"
	"latenttruth/internal/model"
)

func TestRecoverColdStart(t *testing.T) {
	rec, err := Recover(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if !rec.Stats.ColdStart || rec.Checkpoint != nil || len(rec.Tail) != 0 || rec.DB.Len() != 0 {
		t.Fatalf("cold start got %+v (db %d rows)", rec.Stats, rec.DB.Len())
	}
	if seq, err := rec.Log.Append(testRows(0, 2)); err != nil || seq != 1 {
		t.Fatalf("first append after cold start: seq %d, err %v", seq, err)
	}
}

// buildDurableState appends nBatches to a fresh data dir, checkpoints the
// first ckptBatches of them at snapshot seq 1, and closes the log — the
// on-disk shape after "refit then more ingest then crash".
func buildDurableState(t *testing.T, dataDir string, nBatches, ckptBatches int) []Batch {
	t.Helper()
	rec, err := Recover(dataDir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var batches []Batch
	for i := 0; i < nBatches; i++ {
		rows := testRows(i, 3)
		seq, err := rec.Log.Append(rows)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, Batch{Seq: seq, Rows: rows})
	}
	if ckptBatches > 0 {
		db := model.NewRawDB()
		for _, b := range batches[:ckptBatches] {
			for _, r := range b.Rows {
				db.AddRow(r)
			}
		}
		m := Manifest{Seq: 1, WALSeq: batches[ckptBatches-1].Seq, IngestedTotal: int64(3 * ckptBatches)}
		err := rec.Store.Write(m,
			func(w io.Writer) error { return dataset.WriteTriples(w, db) },
			func(w io.Writer) error {
				return dataset.WriteQuality(w, []model.SourceQuality{{Source: "s", Sensitivity: 1, Specificity: 1, Precision: 1, Accuracy: 1}})
			},
			nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	rec.Log.Close()
	return batches
}

func TestRecoverCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	batches := buildDurableState(t, dir, 7, 4)

	rec, err := Recover(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if rec.Stats.ColdStart || rec.Checkpoint == nil {
		t.Fatalf("expected warm recovery, got %+v", rec.Stats)
	}
	if rec.Stats.CheckpointSeq != 1 || rec.Stats.CheckpointWALSeq != 4 {
		t.Fatalf("checkpoint identity %+v", rec.Stats)
	}
	if rec.DB.Len() != 3*4 {
		t.Fatalf("checkpoint db has %d rows, want %d", rec.DB.Len(), 12)
	}
	mustEqualBatches(t, rec.Tail, batches[4:])
	if rec.Stats.ReplayedBatches != 3 || rec.Stats.ReplayedRows != 9 {
		t.Fatalf("replay stats %+v", rec.Stats)
	}
	// Appends continue after the recovered tail.
	if seq, err := rec.Log.Append(testRows(99, 1)); err != nil || seq != 8 {
		t.Fatalf("append after recovery: seq %d, err %v", seq, err)
	}
}

func TestRecoverCheckpointNoTail(t *testing.T) {
	dir := t.TempDir()
	buildDurableState(t, dir, 5, 5)
	rec, err := Recover(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if len(rec.Tail) != 0 || rec.DB.Len() != 15 || rec.Stats.ColdStart {
		t.Fatalf("recovery %+v, tail %d, db %d", rec.Stats, len(rec.Tail), rec.DB.Len())
	}
	if seq, err := rec.Log.Append(testRows(99, 1)); err != nil || seq != 6 {
		t.Fatalf("append: seq %d, err %v", seq, err)
	}
}

func TestRecoverFallsBackToOlderCheckpoint(t *testing.T) {
	dir := t.TempDir()
	batches := buildDurableState(t, dir, 6, 3)

	// Add a newer checkpoint covering batch 5, then corrupt its triples:
	// recovery must fall back to the older one and replay from ITS seq.
	st, err := OpenStore(CheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	db := model.NewRawDB()
	for _, b := range batches[:5] {
		for _, r := range b.Rows {
			db.AddRow(r)
		}
	}
	err = st.Write(Manifest{Seq: 2, WALSeq: 5},
		func(w io.Writer) error { return dataset.WriteTriples(w, db) },
		func(w io.Writer) error {
			return dataset.WriteQuality(w, []model.SourceQuality{{Source: "s", Sensitivity: 1, Specificity: 1, Precision: 1, Accuracy: 1}})
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	cps, _, err := st.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	newest := cps[len(cps)-1]
	if err := os.Truncate(newest.Dir+"/"+triplesName, 10); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if rec.Stats.CheckpointSeq != 1 || rec.Stats.CheckpointsSkipped == 0 {
		t.Fatalf("expected fallback to checkpoint 1, got %+v", rec.Stats)
	}
	// Tail re-derived from the older checkpoint's coverage: batches 4..6
	// are all still in the log because truncation honors the oldest
	// retained checkpoint.
	mustEqualBatches(t, rec.Tail, batches[3:])
}

func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	batches := buildDurableState(t, dir, 6, 2)
	path := tailSegment(t, LogDir(dir))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Log.Close()
	if rec.Stats.TornBytes == 0 {
		t.Fatalf("expected torn bytes, got %+v", rec.Stats)
	}
	mustEqualBatches(t, rec.Tail, batches[2:5])
}

func TestRecoverRefusesPartialState(t *testing.T) {
	// All checkpoints unreadable + WAL truncated behind them: recovery
	// must fail loudly rather than serve the surviving suffix as if it
	// were the whole history.
	dir := t.TempDir()
	buildDurableState(t, dir, 6, 4)
	st, err := OpenStore(CheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	cps, _, err := st.Checkpoints()
	if err != nil || len(cps) == 0 {
		t.Fatalf("no checkpoints (err=%v)", err)
	}
	for _, cp := range cps {
		if err := os.Truncate(cp.Dir+"/"+triplesName, 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Recover(dir, Options{Sync: SyncNever}); err == nil {
		t.Fatal("Recover served partial state with no readable checkpoint")
	}

	// Same refusal when there are no checkpoints at all but the log does
	// not start at seq 1 — a truncated prefix with nothing covering it.
	dir2 := t.TempDir()
	l, _, err := Open(Options{Dir: LogDir(dir2), SegmentBytes: 4 << 10, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, l, 0, 200)
	if err := l.TruncateBefore(100); err != nil { // drops whole early segments
		t.Fatal(err)
	}
	l.Close()
	if _, err := Recover(dir2, Options{SegmentBytes: 4 << 10, Sync: SyncNever}); err == nil {
		t.Fatal("Recover served a log with a missing prefix and no checkpoint")
	}
}
