package wal

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latenttruth/internal/dataset"
	"latenttruth/internal/model"
)

// writeTestCheckpoint writes a checkpoint whose triples are n batches of
// testRows and returns the database it persisted.
func writeTestCheckpoint(t *testing.T, st *Store, seq int64, walSeq uint64, n int) *model.RawDB {
	t.Helper()
	db := model.NewRawDB()
	for i := 0; i < n; i++ {
		for _, r := range testRows(i, 3) {
			db.AddRow(r)
		}
	}
	quality := []model.SourceQuality{
		{Source: "s1", Sensitivity: 0.9, Specificity: 0.8, Precision: 0.7, Accuracy: 0.6},
	}
	m := Manifest{
		Seq:           seq,
		WALSeq:        walSeq,
		ConfigHash:    "deadbeef",
		Refits:        seq,
		IngestedTotal: int64(db.Len()),
		Policy:        json.RawMessage(`{"batches":1}`),
	}
	err := st.Write(m,
		func(w io.Writer) error { return dataset.WriteTriples(w, db) },
		func(w io.Writer) error { return dataset.WriteQuality(w, quality) },
		nil)
	if err != nil {
		t.Fatalf("checkpoint write: %v", err)
	}
	return db
}

func TestCheckpointWriteReadRoundTrip(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	want := writeTestCheckpoint(t, st, 3, 17, 5)

	cps, skipped, err := st.Checkpoints()
	if err != nil || skipped != 0 || len(cps) != 1 {
		t.Fatalf("Checkpoints: %d cps, %d skipped, err=%v", len(cps), skipped, err)
	}
	cp := cps[0]
	if cp.Manifest.Seq != 3 || cp.Manifest.WALSeq != 17 || cp.Manifest.Format != manifestFormat {
		t.Fatalf("manifest %+v", cp.Manifest)
	}
	db, err := cp.ReadTriples()
	if err != nil {
		t.Fatal(err)
	}
	// Order-preserving round trip: recovery depends on identical row order
	// for bit-identical dataset ids.
	wr, gr := want.Rows(), db.Rows()
	if len(wr) != len(gr) {
		t.Fatalf("%d rows, want %d", len(gr), len(wr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("row %d: %+v, want %+v", i, gr[i], wr[i])
		}
	}
	q, err := cp.ReadQuality()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0].Source != "s1" {
		t.Fatalf("quality %+v", q)
	}
}

func TestCheckpointCorruptTriplesDetected(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	writeTestCheckpoint(t, st, 1, 5, 4)
	cps, _, err := st.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(cps[0].Dir, triplesName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20 // flip a bit inside some row
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cps[0].ReadTriples(); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt triples read err = %v, want CRC mismatch", err)
	}
}

func TestCheckpointPruneKeepsNewest(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 5; seq++ {
		writeTestCheckpoint(t, st, seq, uint64(seq*10), 2)
	}
	left, err := st.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 || left[0].Manifest.Seq != 4 || left[1].Manifest.Seq != 5 {
		t.Fatalf("prune left %+v", left)
	}
	if st.Count() != 2 {
		t.Fatalf("Count = %d, want 2", st.Count())
	}
	// retain < 1 never deletes the newest checkpoint.
	if left, err = st.Prune(0); err != nil || len(left) != 1 || left[0].Manifest.Seq != 5 {
		t.Fatalf("Prune(0) -> %+v, %v", left, err)
	}
}

func TestOpenStoreClearsStaleTemp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "checkpoints")
	if err := os.MkdirAll(filepath.Join(dir, chkTmpPrefix+"chk-0000000000000009"), 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), chkTmpPrefix) {
			t.Fatalf("stale temp %s survived OpenStore", e.Name())
		}
	}
	// A bad manifest is skipped, not fatal.
	bad := filepath.Join(dir, checkpointDirName(7))
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cps, skipped, err := st.Checkpoints()
	if err != nil || len(cps) != 0 || skipped != 1 {
		t.Fatalf("Checkpoints with bad manifest: %d cps, %d skipped, err=%v", len(cps), skipped, err)
	}
}
