package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"latenttruth/internal/model"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: an acknowledged batch survives
	// power loss. Highest latency.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs at most once per Options.SyncInterval (piggybacked
	// on appends): a crash of the machine can lose at most one interval of
	// acknowledged batches; a crash of the process alone loses nothing.
	SyncInterval SyncPolicy = "interval"
	// SyncNever never fsyncs explicitly. Records are still written to the
	// kernel page cache per append, so acknowledged batches survive a
	// SIGKILL of the process; only an OS crash or power loss can drop them.
	SyncNever SyncPolicy = "never"
)

// Valid reports whether p names a known policy.
func (p SyncPolicy) Valid() bool {
	switch p {
	case SyncAlways, SyncInterval, SyncNever:
		return true
	}
	return false
}

// Options parameterizes a log.
type Options struct {
	// Dir is the segment directory. Required; created if absent.
	Dir string
	// SegmentBytes rotates to a new segment file once the active one
	// reaches this size (default 64 MiB, minimum 4 KiB). A record larger
	// than the limit still lands in one segment — segments are a rotation
	// unit, not a hard cap.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the maximum time acknowledged records stay unsynced
	// under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// Metrics, when non-nil, receives instrumentation callbacks. The log
	// stays dependency-free: callers bind the functions to whatever
	// registry they use.
	Metrics *Metrics
}

// Metrics is the log's instrumentation hook. Every field is optional;
// callbacks run under the log's mutex, so they must be cheap and must
// not call back into the log (an atomic histogram observe qualifies).
type Metrics struct {
	// AppendSeconds observes one successful append's duration, fsync
	// included when the policy synced inline.
	AppendSeconds func(seconds float64)
	// FsyncSeconds observes one fsync's duration.
	FsyncSeconds func(seconds float64)
	// SegmentRoll counts one segment rotation (seal + new segment).
	SegmentRoll func()
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.Sync == "" {
		o.Sync = SyncInterval
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// segment is one on-disk segment file.
type segment struct {
	firstSeq uint64 // sequence number of the segment's first record
	path     string
	size     int64
}

// segmentName returns the file name of the segment whose first record has
// the given sequence number.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%020d.wal", firstSeq)
}

// parseSegmentName extracts the first sequence number from a segment file
// name, reporting whether the name is a segment name at all.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 24 {
		return 0, false
	}
	n, err := strconv.ParseUint(name[:20], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// OpenStats reports what Open found and repaired.
type OpenStats struct {
	// Segments and Records count what survived the scan.
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// LastSeq is the sequence number of the newest surviving record
	// (0 when the log is empty).
	LastSeq uint64 `json:"last_seq"`
	// TornBytes counts trailing bytes cut from the tail segment because the
	// final record was incomplete (a crash mid-append).
	TornBytes int64 `json:"torn_bytes"`
	// CorruptRecords counts records discarded on a CRC or framing failure.
	CorruptRecords int `json:"corrupt_records"`
	// SegmentsDropped counts whole segments deleted because they followed a
	// corrupt record (their contents are causally after lost data).
	SegmentsDropped int `json:"segments_dropped"`
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use; appends are serialized.
type Log struct {
	opts Options

	mu       sync.Mutex
	segs     []segment // sorted by firstSeq; the last one is active
	f        *os.File  // active segment file; nil until the first append
	nextSeq  uint64
	lastSync time.Time
	dirty    bool // unsynced appends since lastSync
	appended int64
	syncs    int64
	buf      []byte
	closed   bool
	failed   error // sticky write-failure state

	// cursors are the registered truncation pins: TruncateBefore never
	// deletes a record a live cursor has not acknowledged (see Cursor).
	cursors map[*Cursor]struct{}

	// flusher is the SyncInterval background loop's stop channel; it
	// guarantees the loss bound even when ingest goes quiet (appends alone
	// would leave a final batch unsynced indefinitely).
	flusherStop chan struct{}
	flusherDone chan struct{}
}

// Cursor pins a suffix of the log on behalf of one consumer (a replication
// follower, typically): while the cursor is open, TruncateBefore keeps
// every record with a sequence number above the cursor's acknowledged
// position, so a slow consumer can always resume from where it stopped.
// The truncation floor is the minimum over the caller's bound (the
// checkpoint watermark) and every registered cursor. Methods are safe for
// concurrent use.
type Cursor struct {
	l    *Log
	name string
	seq  uint64 // acknowledged position; guarded by l.mu
}

// OpenCursor registers a truncation pin named name whose consumer has
// acknowledged every record up to and including seq (0 = nothing yet).
func (l *Log) OpenCursor(name string, seq uint64) *Cursor {
	c := &Cursor{l: l, name: name, seq: seq}
	l.mu.Lock()
	if l.cursors == nil {
		l.cursors = make(map[*Cursor]struct{})
	}
	l.cursors[c] = struct{}{}
	l.mu.Unlock()
	return c
}

// Advance raises the cursor's acknowledged position; it never lowers it.
func (c *Cursor) Advance(seq uint64) {
	c.l.mu.Lock()
	if seq > c.seq {
		c.seq = seq
	}
	c.l.mu.Unlock()
}

// Seq returns the cursor's acknowledged position.
func (c *Cursor) Seq() uint64 {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	return c.seq
}

// Name returns the cursor's registration name.
func (c *Cursor) Name() string { return c.name }

// Close unregisters the cursor so it no longer pins the log. Idempotent.
func (c *Cursor) Close() {
	c.l.mu.Lock()
	delete(c.l.cursors, c)
	c.l.mu.Unlock()
}

// CursorInfo is one registered cursor's position, for monitoring.
type CursorInfo struct {
	Name string `json:"name"`
	Seq  uint64 `json:"seq"`
}

// Cursors lists the registered cursors sorted by name.
func (l *Log) Cursors() []CursorInfo {
	l.mu.Lock()
	out := make([]CursorInfo, 0, len(l.cursors))
	for c := range l.cursors {
		out = append(out, CursorInfo{Name: c.name, Seq: c.seq})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Open scans (and, where needed, repairs) the segment directory and
// returns a log positioned to append after the newest valid record. A torn
// tail is truncated away; a corrupt record truncates its segment at the
// corruption and deletes every later segment, so the surviving log is
// always a clean prefix of what was acknowledged.
func Open(opts Options) (*Log, *OpenStats, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if !opts.Sync.Valid() {
		return nil, nil, fmt.Errorf("wal: unknown sync policy %q", opts.Sync)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, nextSeq: 1, lastSync: time.Now()}
	stats, err := l.scan()
	if err != nil {
		return nil, nil, err
	}
	if opts.Sync == SyncInterval {
		l.flusherStop = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, stats, nil
}

// flushLoop enforces the SyncInterval bound: acknowledged records are
// fsynced within one interval even if no further append arrives to
// piggyback the sync on.
func (l *Log) flushLoop() {
	defer close(l.flusherDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flusherStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				// Sync errors here surface on the next Append's sync or on
				// Close; the loop itself just keeps trying.
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// listSegments returns the directory's segments sorted by first sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		segs = append(segs, segment{firstSeq: first, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// segScan is the outcome of scanning one segment file.
type segScan struct {
	batches  []Batch
	validLen int64     // length of the valid prefix (header + clean records)
	status   recStatus // recOK, or why the scan stopped early
}

// scanSegment reads and classifies every record of one segment file. It
// streams, so the untouched preallocated region of an active segment is
// never materialized: the scan stops at the first zeroed record header.
func scanSegment(path string) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)

	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		// Shorter than a header: no trustworthy prefix at all.
		return segScan{status: recCorrupt}, nil
	}
	if err := checkSegmentHeader(hdr); err != nil {
		return segScan{status: recCorrupt}, nil
	}
	sc := segScan{validLen: segHeaderSize, status: recOK}
	var frame []byte
	for {
		rh := make([]byte, recHeaderSize)
		if _, err := io.ReadFull(br, rh); err != nil {
			if err != io.EOF {
				sc.status = recTorn
			}
			return sc, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(rh))
		switch {
		case payloadLen == 0 && binary.LittleEndian.Uint32(rh[4:]) == 0:
			sc.status = recEnd
			return sc, nil
		case payloadLen == 0 || payloadLen > maxRecordBytes || payloadLen < 12:
			sc.status = recCorrupt
			return sc, nil
		}
		if cap(frame) < recHeaderSize+payloadLen {
			frame = make([]byte, recHeaderSize+payloadLen)
		}
		frame = frame[:recHeaderSize+payloadLen]
		copy(frame, rh)
		if _, err := io.ReadFull(br, frame[recHeaderSize:]); err != nil {
			sc.status = recTorn
			return sc, nil
		}
		b, _, st := parseRecord(frame, 0)
		if st != recOK {
			sc.status = st
			return sc, nil
		}
		sc.batches = append(sc.batches, b)
		sc.validLen += int64(recHeaderSize + payloadLen)
	}
}

// scan walks the segments, truncates the log at the first damage, and
// positions the log for appending. Called once from Open.
func (l *Log) scan() (*OpenStats, error) {
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return nil, err
	}
	stats := &OpenStats{}
	var kept []segment
	var lastSeq uint64
	cut := false // true once damage was found: later segments are dropped
	for i, seg := range segs {
		if cut {
			if err := os.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("wal: dropping segment after corruption: %w", err)
			}
			stats.SegmentsDropped++
			continue
		}
		sc, err := scanSegment(seg.path)
		if err != nil {
			return nil, err
		}
		// Sequence numbers must keep increasing across the whole log; a
		// regression means the segment is stale or rewritten — treat as
		// corruption from its first offending record.
		valid := sc.batches
		for j, b := range valid {
			if b.Seq <= lastSeq { // sequence numbers start at 1
				sc.status = recCorrupt
				valid = valid[:j]
				// Recompute the valid prefix length up to record j.
				sc.validLen = prefixLen(seg.path, j)
				break
			}
			lastSeq = b.Seq
		}
		switch sc.status {
		case recOK:
		case recEnd:
			// The untouched preallocated region of an active segment: a
			// clean end of data, but only legitimate in the final segment —
			// earlier segments are always sealed to their exact size.
			if i < len(segs)-1 {
				cut = true
			}
		case recTorn:
			stats.TornBytes += seg.size - sc.validLen
			cut = true
		case recCorrupt:
			stats.CorruptRecords++
			cut = true
		}
		if cut {
			if sc.validLen < segHeaderSize {
				// Even the header is gone: drop the file entirely.
				if err := os.Remove(seg.path); err != nil {
					return nil, fmt.Errorf("wal: dropping corrupt segment: %w", err)
				}
				stats.SegmentsDropped++
				continue
			}
			if sc.validLen < seg.size {
				if err := os.Truncate(seg.path, sc.validLen); err != nil {
					return nil, fmt.Errorf("wal: truncating damaged tail: %w", err)
				}
			}
		}
		// seg.size is the DATA size from here on: the file may extend
		// further with preallocated zeros that the next append overwrites.
		seg.size = sc.validLen
		stats.Records += len(valid)
		kept = append(kept, seg)
	}
	l.segs = kept
	l.nextSeq = lastSeq + 1
	stats.Segments = len(kept)
	stats.LastSeq = lastSeq
	if len(kept) > 0 {
		// Reopen the tail segment for appending at its valid end, restoring
		// the preallocation if a repair shrank the file.
		tail := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if info, err := f.Stat(); err == nil && info.Size() < l.opts.SegmentBytes {
			if err := f.Truncate(l.opts.SegmentBytes); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: preallocating tail segment: %w", err)
			}
		}
		if _, err := f.Seek(tail.size, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	return stats, nil
}

// prefixLen re-reads a segment and returns the byte length of its first n
// records plus header. Only used on the corruption path, so the extra read
// is irrelevant.
func prefixLen(path string, n int) int64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return segHeaderSize
	}
	off := segHeaderSize
	for i := 0; i < n; i++ {
		_, next, st := parseRecord(data, off)
		if st != recOK {
			break
		}
		off = next
	}
	return int64(off)
}

// EnsureNextSeq raises the next sequence number to at least seq. The
// recovery planner calls it so a log whose segments were all truncated
// behind a checkpoint keeps numbering after the checkpoint's coverage.
func (l *Log) EnsureNextSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.nextSeq {
		l.nextSeq = seq
	}
}

// Append frames rows as one record, writes it to the active segment, and
// applies the fsync policy. It returns the record's sequence number. The
// record is in the kernel page cache (or on disk, per policy) before
// Append returns: an acknowledged batch survives a crash of the process.
func (l *Log) Append(rows []model.Row) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(l.nextSeq, rows, "")
}

// AppendNote frames a rowless control record carrying note (a refit
// marker, for the serving layer) and appends it like Append.
func (l *Log) AppendNote(note string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(l.nextSeq, nil, note)
}

// AppendBatch appends a batch under its existing sequence number. It is
// the replication-follower write path: the follower's log mirrors the
// primary's record for record, so the batch's sequence number must be
// exactly the one the log would assign next — a gap means the stream
// skipped records and the follower must re-bootstrap rather than silently
// diverge.
func (l *Log) AppendBatch(b Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.Seq != l.nextSeq {
		return fmt.Errorf("wal: batch seq %d out of order (log expects %d)", b.Seq, l.nextSeq)
	}
	_, err := l.appendLocked(b.Seq, b.Rows, b.Note)
	return err
}

// appendLocked frames and writes one record. Called under mu.
func (l *Log) appendLocked(seq uint64, rows []model.Row, note string) (uint64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	var start time.Time
	if m := l.opts.Metrics; m != nil && m.AppendSeconds != nil {
		start = time.Now()
	}
	l.buf = appendRecord(l.buf[:0], seq, rows, note)
	if err := l.ensureSegment(int64(len(l.buf))); err != nil {
		return 0, err
	}
	tail := &l.segs[len(l.segs)-1]
	n, err := l.f.Write(l.buf)
	if err != nil {
		// A partial frame on disk is indistinguishable from a torn crash
		// write; try to cut it off so later appends stay readable.
		if n > 0 {
			if terr := l.f.Truncate(tail.size); terr != nil {
				l.failed = err
			} else {
				_, l.failed = l.f.Seek(tail.size, 0)
			}
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	tail.size += int64(n)
	l.nextSeq++
	l.appended++
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncInterval {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	if m := l.opts.Metrics; m != nil && m.AppendSeconds != nil {
		m.AppendSeconds(time.Since(start).Seconds())
	}
	return seq, nil
}

// ensureSegment opens the active segment, rotating first when the incoming
// record would push it past the size limit. New segments are preallocated
// to SegmentBytes: appends then overwrite existing blocks instead of
// extending the file, which skips the per-write size/metadata update (an
// order-of-magnitude win on ext4). Sealing trims the segment back to its
// exact data size. Called under mu.
func (l *Log) ensureSegment(recLen int64) error {
	if l.f != nil {
		tail := l.segs[len(l.segs)-1]
		if tail.size+recLen <= l.opts.SegmentBytes || tail.size <= segHeaderSize {
			return nil
		}
		// Seal the full segment: trim the preallocated remainder and sync,
		// so rotation bounds how much SyncNever/SyncInterval can lose and
		// non-final segments always have their exact size on disk.
		if err := l.f.Truncate(tail.size); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.f = nil
		if m := l.opts.Metrics; m != nil && m.SegmentRoll != nil {
			m.SegmentRoll()
		}
	}
	path := filepath.Join(l.opts.Dir, segmentName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(l.opts.SegmentBytes); err != nil {
		f.Close()
		return fmt.Errorf("wal: preallocating segment: %w", err)
	}
	if _, err := f.Write(appendSegmentHeader(nil)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segment{firstSeq: l.nextSeq, path: path, size: segHeaderSize})
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLocked fsyncs the active segment. Called under mu.
func (l *Log) syncLocked() error {
	if l.f == nil {
		return nil
	}
	var start time.Time
	if m := l.opts.Metrics; m != nil && m.FsyncSeconds != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if m := l.opts.Metrics; m != nil && m.FsyncSeconds != nil {
		m.FsyncSeconds(time.Since(start).Seconds())
	}
	l.syncs++
	l.lastSync = time.Now()
	l.dirty = false
	return nil
}

// TruncateBefore deletes every segment whose records all have sequence
// numbers below the truncation floor: the minimum of seq and every
// registered cursor's next-needed record (Cursor.Seq + 1). With no
// cursors registered the floor is exactly seq — the single-consumer fast
// path. The active segment is never deleted, so records at or above the
// floor — and possibly some below it, sharing a segment — remain; replay
// filters by sequence number. Progress is kept on partial failure:
// segments removed before an error are dropped from the in-memory list
// (and an already-missing file counts as removed), so a transient failure
// never wedges truncation permanently.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for c := range l.cursors {
		if bound := c.seq + 1; bound < seq {
			seq = bound
		}
	}
	removed := 0
	var firstErr error
	for len(l.segs)-removed > 1 && l.segs[removed+1].firstSeq <= seq {
		if err := os.Remove(l.segs[removed].path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			firstErr = fmt.Errorf("wal: truncating: %w", err)
			break
		}
		removed++
	}
	if removed > 0 {
		l.segs = append(l.segs[:0], l.segs[removed:]...)
		if err := syncDir(l.opts.Dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Replay calls fn for every surviving record with sequence number >= from,
// in order. It reads from disk, so it reflects exactly what a recovery
// after a crash at this instant would see (modulo unsynced page cache).
func (l *Log) Replay(from uint64, fn func(Batch) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	for i, seg := range segs {
		// Skip segments wholly below the replay point.
		if i+1 < len(segs) && segs[i+1].firstSeq <= from {
			continue
		}
		sc, err := scanSegment(seg.path)
		if err != nil {
			return err
		}
		for _, b := range sc.batches {
			if b.Seq < from {
				continue
			}
			if err := fn(b); err != nil {
				return err
			}
		}
		if sc.status != recOK {
			// Open repaired the log, so damage here means new corruption
			// appeared underneath us; stop at the clean prefix like Open.
			break
		}
	}
	return nil
}

// Stats is a point-in-time summary of the log for monitoring endpoints.
type Stats struct {
	Segments        int    `json:"segments"`
	SizeBytes       int64  `json:"size_bytes"`
	FirstSeq        uint64 `json:"first_seq"`
	LastSeq         uint64 `json:"last_seq"`
	AppendedBatches int64  `json:"appended_batches"`
	Syncs           int64  `json:"syncs"`
}

// Stats returns a snapshot of the log's shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{Segments: len(l.segs), AppendedBatches: l.appended, Syncs: l.syncs}
	for _, s := range l.segs {
		st.SizeBytes += s.size
	}
	if len(l.segs) > 0 {
		st.FirstSeq = l.segs[0].firstSeq
	}
	if l.nextSeq > 1 {
		st.LastSeq = l.nextSeq - 1
	}
	return st
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.flusherStop != nil {
		close(l.flusherStop)
		// Wait outside mu so an in-flight flush tick can finish.
		l.mu.Unlock()
		<-l.flusherDone
		l.mu.Lock()
	}
	if l.f == nil {
		return nil
	}
	// Trim the preallocated remainder so a cleanly closed log has exact
	// sizes on disk, then sync and close.
	terr := l.f.Truncate(l.segs[len(l.segs)-1].size)
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if terr != nil {
		return fmt.Errorf("wal: close: %w", terr)
	}
	if serr != nil {
		return fmt.Errorf("wal: close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// syncDir fsyncs a directory so entry creations and deletions are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
