package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"latenttruth/internal/model"
)

// testRows builds a small deterministic batch keyed by i.
func testRows(i, n int) []model.Row {
	rows := make([]model.Row, n)
	for j := range rows {
		rows[j] = model.Row{
			Entity:    "entity-" + string(rune('a'+i%26)) + "-" + string(rune('a'+j%26)),
			Attribute: "attr-" + string(rune('0'+j%10)),
			Source:    "source-" + string(rune('a'+(i+j)%26)),
		}
	}
	return rows
}

// appendBatches appends n batches of 3 rows each and returns them.
func appendBatches(t *testing.T, l *Log, start, n int) []Batch {
	t.Helper()
	var out []Batch
	for i := start; i < start+n; i++ {
		rows := testRows(i, 3)
		seq, err := l.Append(rows)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		out = append(out, Batch{Seq: seq, Rows: rows})
	}
	return out
}

// replayAll collects every record from seq 1.
func replayAll(t *testing.T, l *Log) []Batch {
	t.Helper()
	var got []Batch
	if err := l.Replay(1, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

// mustEqualBatches compares two batch slices exactly.
func mustEqualBatches(t *testing.T, got, want []Batch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d batches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("batch %d: seq %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		if len(got[i].Rows) != len(want[i].Rows) {
			t.Fatalf("batch %d: %d rows, want %d", i, len(got[i].Rows), len(want[i].Rows))
		}
		for j := range got[i].Rows {
			if got[i].Rows[j] != want[i].Rows[j] {
				t.Fatalf("batch %d row %d: %+v, want %+v", i, j, got[i].Rows[j], want[i].Rows[j])
			}
		}
	}
}

func TestAppendReopenReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, st, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.LastSeq != 0 {
		t.Fatalf("fresh log reports %+v", st)
	}
	want := appendBatches(t, l, 0, 10)
	mustEqualBatches(t, replayAll(t, l), want)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same contents, appends continue the sequence.
	l2, st2, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st2.Records != 10 || st2.LastSeq != 10 || st2.TornBytes != 0 || st2.CorruptRecords != 0 {
		t.Fatalf("reopen stats %+v", st2)
	}
	want = append(want, appendBatches(t, l2, 10, 5)...)
	mustEqualBatches(t, replayAll(t, l2), want)
	if got := l2.Stats().LastSeq; got != 15 {
		t.Fatalf("LastSeq = %d, want 15", got)
	}
}

func TestRowFidelity(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Values exercising framing, not CSV-safety: commas, quotes, UTF-8,
	// NULs and empty-adjacent lengths must all round-trip byte-exactly.
	rows := []model.Row{
		{Entity: `e,"quoted"`, Attribute: "café ☕", Source: "s\x00null"},
		{Entity: "plain", Attribute: "a", Source: "with space"},
	}
	if _, err := l.Append(rows); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	mustEqualBatches(t, got, []Batch{{Seq: 1, Rows: rows}})
}

func TestSegmentRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := appendBatches(t, l, 0, 200) // ~140 bytes each -> several segments
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", st.Segments)
	}
	mustEqualBatches(t, replayAll(t, l), want)

	// Truncating behind seq 100 must drop whole segments below it and keep
	// every record >= 100.
	if err := l.TruncateBefore(100); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got >= st.Segments {
		t.Fatalf("TruncateBefore removed nothing (%d -> %d segments)", st.Segments, got)
	}
	var got []Batch
	if err := l.Replay(100, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatal(err)
	}
	mustEqualBatches(t, got, want[99:])

	// The active segment is never deleted even when fully covered.
	if err := l.TruncateBefore(10_000); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("expected 1 surviving segment, got %d", got)
	}
}

// tailSegment returns the path of the newest segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1].path
}

func TestTornTailIsDiscardedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := appendBatches(t, l, 0, 8)
	l.Close()

	// Cut the final record mid-frame, as a crash during write would.
	path := tailSegment(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, st, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.TornBytes == 0 {
		t.Fatalf("expected torn bytes reported, got %+v", st)
	}
	if st.Records != 7 || st.LastSeq != 7 {
		t.Fatalf("expected 7 surviving records, got %+v", st)
	}
	// The torn batch is gone; a new append reuses its sequence number and
	// the log stays fully readable.
	extra := appendBatches(t, l2, 100, 1)
	if extra[0].Seq != 8 {
		t.Fatalf("append after torn tail got seq %d, want 8", extra[0].Seq)
	}
	mustEqualBatches(t, replayAll(t, l2), append(want[:7], extra...))
}

func TestCorruptCRCMidSegmentStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := appendBatches(t, l, 0, 10)
	l.Close()

	// Flip a payload byte of the 6th record (its seq field), leaving the
	// frame intact so the damage is a clean CRC mismatch.
	path := tailSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := segHeaderSize
	for i := 0; i < 5; i++ {
		_, next, st := parseRecord(data, off)
		if st != recOK {
			t.Fatalf("pre-corruption parse stopped at record %d: %v", i, st)
		}
		off = next
	}
	data[off+recHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, st, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.CorruptRecords == 0 {
		t.Fatalf("expected a corrupt record reported, got %+v", st)
	}
	if st.Records >= 10 || st.LastSeq >= 10 {
		t.Fatalf("corruption not cut: %+v", st)
	}
	mustEqualBatches(t, replayAll(t, l2), want[:st.Records])
}

func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, l, 0, 200)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	l.Close()

	// Corrupt the FIRST segment: everything after it is causally newer
	// than lost data and must be dropped wholesale.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+recHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, st, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.SegmentsDropped != len(segs)-1 {
		t.Fatalf("dropped %d segments, want %d (%+v)", st.SegmentsDropped, len(segs)-1, st)
	}
	if st.Records != 0 || st.LastSeq != 0 {
		t.Fatalf("first record was corrupt, want empty log, got %+v", st)
	}
}

func TestEnsureNextSeqOnEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.EnsureNextSeq(42)
	seq, err := l.Append(testRows(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d, want 42", seq)
	}
	// The lazily created segment must be named by its first record.
	if _, err := os.Stat(filepath.Join(dir, segmentName(42))); err != nil {
		t.Fatalf("segment named for seq 42 missing: %v", err)
	}
	// Raising below the current next is a no-op.
	l.EnsureNextSeq(10)
	if seq, _ = l.Append(testRows(1, 1)); seq != 43 {
		t.Fatalf("seq = %d, want 43", seq)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(string(p), func(t *testing.T) {
			l, _, err := Open(Options{Dir: t.TempDir(), Sync: p})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			want := appendBatches(t, l, 0, 5)
			mustEqualBatches(t, replayAll(t, l), want)
			if p == SyncAlways && l.Stats().Syncs < 5 {
				t.Fatalf("SyncAlways performed %d syncs for 5 appends", l.Stats().Syncs)
			}
		})
	}
	if SyncPolicy("sometimes").Valid() {
		t.Fatal("bogus policy validated")
	}
	if _, _, err := Open(Options{Dir: t.TempDir(), Sync: "sometimes"}); err == nil {
		t.Fatal("Open accepted a bogus sync policy")
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, l, 0, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := l.Append(testRows(0, 1)); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestRecordFrameGarbage(t *testing.T) {
	// A frame advertising an absurd length must classify as corrupt, not
	// drive a huge allocation or a torn classification.
	buf := appendRecord(nil, 1, testRows(0, 2), "")
	garbage := bytes.Clone(buf)
	garbage[0], garbage[1], garbage[2], garbage[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, st := parseRecord(garbage, 0); st != recCorrupt {
		t.Fatalf("absurd length classified %v, want corrupt", st)
	}
	if _, _, st := parseRecord(buf[:5], 0); st != recTorn {
		t.Fatalf("short header classified %v, want torn", st)
	}
	if _, _, st := parseRecord(buf[:len(buf)-1], 0); st != recTorn {
		t.Fatalf("short payload classified %v, want torn", st)
	}
	if b, next, st := parseRecord(buf, 0); st != recOK || next != len(buf) || b.Seq != 1 {
		t.Fatalf("clean record parse: %v %d %+v", st, next, b)
	}
}

func TestSyncIntervalFlushesIdleLog(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// One append, then silence: the background flusher must sync within
	// the interval bound even though no further append piggybacks one.
	if _, err := l.Append(testRows(0, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle log was never fsynced under SyncInterval")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTruncateBeforeSurvivesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 4 << 10, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := appendBatches(t, l, 0, 200)
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("need >= 3 segments (err=%v)", err)
	}
	// Someone deleted a sealed segment out from under us: truncation must
	// treat it as already removed instead of wedging forever.
	if err := os.Remove(segs[0].path); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(want[len(want)-1].Seq); err != nil {
		t.Fatalf("TruncateBefore after external delete: %v", err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("segments after truncate = %d, want 1", got)
	}
}
