package cluster

// The in-process multi-primary fixture: K real serve.Servers behind real
// HTTP listeners, one Router in front, and a single-primary reference
// fitted on the identical claim stream. The suites prove the equivalence
// ladder from doc.go — (a) routed responses are the exact merge of the
// partitions' own responses for any K, (b) K=1 is value-identical to a
// single primary, (c) K>1 matches the single-primary reference up to the
// documented cross-partition Gibbs drift — and the fault-injection test
// shows a killed partition 503s only its own range and recovers
// bit-identically from its own WAL.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"testing"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/serve"
	"latenttruth/internal/synth"
	"latenttruth/internal/wal"
)

// Drift bounds for grade (c) of the equivalence ladder: K>1 partitions
// run uncoupled Gibbs chains over disjoint entity subsets, so per-fact
// probabilities and the merged quality table may differ from a single
// joint fit by chain noise, not by reconciliation error. Measured on the
// 60-entity corpus across K∈{2,4} and all four policies the worst
// per-fact probability gap is 0.088 and the worst quality-metric gap
// 0.004; the bounds carry headroom over that.
const (
	probDriftBound    = 0.15
	qualityDriftBound = 0.02
)

// clusterCorpus mirrors the serve test corpus: small enough to Gibbs-fit
// dozens of times, conflicting enough that source quality separates.
func clusterCorpus(t *testing.T) *synth.Corpus {
	t.Helper()
	c, err := synth.Generate(synth.CorpusSpec{
		Name: "clustertest", NumEntities: 60,
		TrueAttrWeights:  []float64{0.6, 0.3, 0.1},
		FalseCandWeights: []float64{0.5, 0.4, 0.1},
		LabelEntities:    10,
		Seed:             7,
		Sources: []synth.SourceProfile{
			{Name: "good", Coverage: 0.9, Sensitivity: 0.95, FPR: 0.02},
			{Name: "lazy", Coverage: 0.8, Sensitivity: 0.5, FPR: 0.02},
			{Name: "messy", Coverage: 0.8, Sensitivity: 0.85, FPR: 0.35},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// positiveClaimRows extracts the positive claims as wire-form rows.
func positiveClaimRows(ds *model.Dataset) []model.Row {
	var rows []model.Row
	for _, c := range ds.Claims {
		if !c.Observation {
			continue
		}
		f := ds.Facts[c.Fact]
		rows = append(rows, model.Row{
			Entity:    ds.Entities[f.Entity],
			Attribute: f.Attribute,
			Source:    ds.Sources[c.Source],
		})
	}
	return rows
}

// chunkRows splits rows into n roughly equal ingest batches.
func chunkRows(rows []model.Row, n int) [][]model.Row {
	per := (len(rows) + n - 1) / n
	var out [][]model.Row
	for len(rows) > 0 {
		cut := per
		if cut > len(rows) {
			cut = len(rows)
		}
		out = append(out, rows[:cut])
		rows = rows[cut:]
	}
	return out
}

func clusterServeConfig(policy serve.RefitPolicy) serve.Config {
	return serve.Config{
		LTM:           core.Config{Iterations: 40, Seed: 1},
		Policy:        policy,
		FullEvery:     3,
		RefitInterval: -1, // manual refits only
	}
}

// testPrimary is one partition's primary: a real serve.Server behind a
// real TCP listener, killable and restartable on the same address.
type testPrimary struct {
	addr    string
	dataDir string
	srv     *serve.Server
	hs      *http.Server
}

type testCluster struct {
	t         *testing.T
	cfg       serve.Config
	primaries []*testPrimary
	router    *httptest.Server
}

// newTestCluster starts K primaries plus a router over them. With
// durable set, each primary gets its own data directory — its private
// WAL and checkpoints — so it can be killed and restarted.
func newTestCluster(t *testing.T, k int, policy serve.RefitPolicy, durable bool) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, cfg: clusterServeConfig(policy)}
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		p := &testPrimary{}
		if durable {
			p.dataDir = t.TempDir()
		}
		tc.primaries = append(tc.primaries, p)
		tc.startPrimary(i)
		urls[i] = "http://" + p.addr
	}
	rt, err := NewRouter(Config{Partitions: urls})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		tc.router.Close()
		for i := range tc.primaries {
			tc.stopPrimary(i)
		}
	})
	return tc
}

// startPrimary boots (or reboots) partition i. On a reboot the primary
// reuses its previous address — the router's partition map is static —
// and recovers from its own data directory.
func (tc *testCluster) startPrimary(i int) {
	tc.t.Helper()
	p := tc.primaries[i]
	cfg := tc.cfg
	if p.dataDir != "" {
		cfg.Durability = serve.Durability{DataDir: p.dataDir, Fsync: wal.SyncNever}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		tc.t.Fatal(err)
	}
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt > 100 {
			srv.Close()
			tc.t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.addr = ln.Addr().String()
	p.srv = srv
	p.hs = &http.Server{Handler: srv.Handler()}
	go p.hs.Serve(ln)
}

// stopPrimary kills partition i: the listener and every open connection
// drop immediately, the way a crashed process disappears from the
// network.
func (tc *testCluster) stopPrimary(i int) {
	p := tc.primaries[i]
	if p.hs != nil {
		p.hs.Close()
		p.hs = nil
	}
	if p.srv != nil {
		p.srv.Close()
		p.srv = nil
	}
}

func (tc *testCluster) url(i int) string { return "http://" + tc.primaries[i].addr }

// --- HTTP helpers ---

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	code, body := httpGet(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, code, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func postClaims(t *testing.T, base string, rows []model.Row) (int, []byte) {
	t.Helper()
	claims := make([]map[string]string, len(rows))
	for i, r := range rows {
		claims[i] = map[string]string{"entity": r.Entity, "attribute": r.Attribute, "source": r.Source}
	}
	payload, err := json.Marshal(map[string]any{"claims": claims})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/claims", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s/claims: %v", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func mustIngest(t *testing.T, base string, rows []model.Row) {
	t.Helper()
	if code, body := postClaims(t, base, rows); code != http.StatusAccepted {
		t.Fatalf("POST %s/claims: status %d: %s", base, code, body)
	}
}

func mustRefit(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Post(base+"/refit", "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s/refit: %v", base, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s/refit: status %d: %s", base, resp.StatusCode, body)
	}
}

// --- decoded wire shapes ---

type truthResponse struct {
	Seq       int64            `json:"seq"`
	Mode      string           `json:"mode"`
	Threshold float64          `json:"threshold"`
	Facts     int              `json:"facts"`
	Rows      []serve.TruthRow `json:"rows"`
}

type qualityRow struct {
	Source      string  `json:"source"`
	Sensitivity float64 `json:"sensitivity"`
	Specificity float64 `json:"specificity"`
	Precision   float64 `json:"precision"`
	Accuracy    float64 `json:"accuracy"`
}

type qualityResponse struct {
	Seq     int64        `json:"seq"`
	Sources []qualityRow `json:"sources"`
}

func toQualityRows(qs []model.SourceQuality) []qualityRow {
	out := make([]qualityRow, len(qs))
	for i, q := range qs {
		out[i] = qualityRow{q.Source, q.Sensitivity, q.Specificity, q.Precision, q.Accuracy}
	}
	return out
}

// newReferenceServer is the single-primary ground truth the cluster is
// compared against.
func newReferenceServer(t *testing.T, cfg serve.Config) string {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return hs.URL
}

// TestClusterEquivalence drives the identical claim stream — same
// batches, same order, same refit cadence — into a single-primary
// reference and a K-partition cluster, for every K × refit policy, then
// asserts the equivalence ladder.
func TestClusterEquivalence(t *testing.T) {
	corpus := clusterCorpus(t)
	batches := chunkRows(positiveClaimRows(corpus.Dataset), 3)
	policies := []serve.RefitPolicy{
		serve.RefitFull, serve.RefitIncremental, serve.RefitOnline, serve.RefitDirty,
	}
	for _, k := range []int{1, 2, 4} {
		for _, policy := range policies {
			t.Run(fmt.Sprintf("k%d_%s", k, policy), func(t *testing.T) {
				refURL := newReferenceServer(t, clusterServeConfig(policy))
				tc := newTestCluster(t, k, policy, false)
				for _, b := range batches {
					mustIngest(t, refURL, b)
					mustRefit(t, refURL)
					mustIngest(t, tc.router.URL, b)
					mustRefit(t, tc.router.URL)
				}
				assertClusterMatchesReference(t, tc, refURL, k)
			})
		}
	}
}

func assertClusterMatchesReference(t *testing.T, tc *testCluster, refURL string, k int) {
	t.Helper()
	var refTruth, routedTruth truthResponse
	getJSON(t, refURL+"/truth", &refTruth)
	getJSON(t, tc.router.URL+"/truth", &routedTruth)
	var refQual, routedQual qualityResponse
	getJSON(t, refURL+"/quality", &refQual)
	getJSON(t, tc.router.URL+"/quality", &routedQual)
	var refStats, routedStats map[string]any
	getJSON(t, refURL+"/stats", &refStats)
	getJSON(t, tc.router.URL+"/stats", &routedStats)

	if k == 1 {
		// Grade (b): a one-partition cluster is the single primary. The
		// router proxies, so every decoded value — probabilities
		// included, bit for bit after the exact float64 JSON round trip —
		// must match the reference, which ran the same deterministic fit.
		if !reflect.DeepEqual(routedTruth, refTruth) {
			t.Fatalf("k=1 /truth differs from single primary:\nrouted %+v\nref    %+v", routedTruth, refTruth)
		}
		if !reflect.DeepEqual(routedQual, refQual) {
			t.Fatalf("k=1 /quality differs from single primary:\nrouted %+v\nref    %+v", routedQual, refQual)
		}
		for _, f := range []string{"seq", "claims", "entities", "facts", "sources", "positive_claims"} {
			if !reflect.DeepEqual(routedStats[f], refStats[f]) {
				t.Fatalf("k=1 stats %q: routed %v != reference %v", f, routedStats[f], refStats[f])
			}
		}
		return
	}

	// The comparisons below are vacuous for a partition that owns no
	// entities — fail loudly if the corpus ever under-fills the hash.
	for i := 0; i < k; i++ {
		var st map[string]any
		getJSON(t, tc.url(i)+"/stats", &st)
		if n, _ := st["entities"].(float64); n == 0 {
			t.Fatalf("partition %d owns no entities; corpus too small for k=%d", i, k)
		}
	}

	// Grade (a): router losslessness. The routed table must be exactly
	// the (entity, attribute)-sorted concatenation of what the partitions
	// themselves serve — nothing dropped, invented, or perturbed.
	var want []serve.TruthRow
	partMinSeq := int64(math.MaxInt64)
	for i := 0; i < k; i++ {
		var part truthResponse
		getJSON(t, tc.url(i)+"/truth", &part)
		want = append(want, part.Rows...)
		if part.Seq < partMinSeq {
			partMinSeq = part.Seq
		}
		if part.Threshold != refTruth.Threshold {
			t.Fatalf("partition %d threshold %v != reference %v", i, part.Threshold, refTruth.Threshold)
		}
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].Entity != want[b].Entity {
			return want[a].Entity < want[b].Entity
		}
		return want[a].Attribute < want[b].Attribute
	})
	if !reflect.DeepEqual(routedTruth.Rows, want) {
		t.Fatalf("routed /truth is not the exact merge of the partitions' truths (%d routed rows, %d merged)",
			len(routedTruth.Rows), len(want))
	}
	if routedTruth.Seq != partMinSeq {
		t.Fatalf("routed seq %d != partition floor %d", routedTruth.Seq, partMinSeq)
	}
	if routedTruth.Facts != len(want) {
		t.Fatalf("routed facts %d != merged row count %d", routedTruth.Facts, len(want))
	}

	// Routed /quality must be bit-identical to merging the partitions'
	// published count bases ourselves — the router adds no arithmetic of
	// its own beyond MergeQuality.
	parts := make([]serve.PartitionQuality, k)
	for i := 0; i < k; i++ {
		getJSON(t, tc.url(i)+"/partition/quality", &parts[i])
	}
	merged, err := MergeQuality(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(routedQual.Sources, toQualityRows(merged)) {
		t.Fatalf("routed /quality is not MergeQuality over the partitions' bases:\nrouted %+v\nmerged %+v",
			routedQual.Sources, toQualityRows(merged))
	}

	// Grade (c): against the single-primary reference. Fact sets and
	// threshold-side decisions away from the margin must agree exactly;
	// probabilities drift only by independent-chain noise.
	refRows := make(map[string]serve.TruthRow, len(refTruth.Rows))
	for _, r := range refTruth.Rows {
		refRows[r.Entity+"\x00"+r.Attribute] = r
	}
	if len(routedTruth.Rows) != len(refTruth.Rows) {
		t.Fatalf("fact count: cluster %d != single primary %d", len(routedTruth.Rows), len(refTruth.Rows))
	}
	maxDrift := 0.0
	for _, r := range routedTruth.Rows {
		ref, ok := refRows[r.Entity+"\x00"+r.Attribute]
		if !ok {
			t.Fatalf("fact %s/%s not served by the single primary", r.Entity, r.Attribute)
		}
		d := math.Abs(r.Probability - ref.Probability)
		if d > maxDrift {
			maxDrift = d
		}
		if d > probDriftBound {
			t.Errorf("fact %s/%s: probability drift %.4f (cluster %.4f, single %.4f) exceeds bound %.2f",
				r.Entity, r.Attribute, d, r.Probability, ref.Probability, probDriftBound)
		}
		// Within probDriftBound of the threshold a flip is chain noise;
		// beyond it the decision must match.
		if math.Abs(ref.Probability-refTruth.Threshold) > probDriftBound && r.Predicted != ref.Predicted {
			t.Errorf("fact %s/%s: decision %v != single primary's %v at margin %.4f",
				r.Entity, r.Attribute, r.Predicted, ref.Predicted, math.Abs(ref.Probability-refTruth.Threshold))
		}
	}
	t.Logf("k=%d: max /truth probability drift vs single primary: %.4f (bound %.2f)", k, maxDrift, probDriftBound)

	refQ := make(map[string]qualityRow, len(refQual.Sources))
	for _, q := range refQual.Sources {
		refQ[q.Source] = q
	}
	if len(routedQual.Sources) != len(refQual.Sources) {
		t.Fatalf("source count: cluster %d != single primary %d", len(routedQual.Sources), len(refQual.Sources))
	}
	maxQDrift := 0.0
	for _, q := range routedQual.Sources {
		rq, ok := refQ[q.Source]
		if !ok {
			t.Fatalf("source %q not in the single primary's quality table", q.Source)
		}
		for _, d := range []float64{
			q.Sensitivity - rq.Sensitivity, q.Specificity - rq.Specificity,
			q.Precision - rq.Precision, q.Accuracy - rq.Accuracy,
		} {
			if a := math.Abs(d); a > maxQDrift {
				maxQDrift = a
			}
		}
	}
	if maxQDrift > qualityDriftBound {
		t.Errorf("max /quality drift %.4f exceeds bound %.2f", maxQDrift, qualityDriftBound)
	}
	t.Logf("k=%d: max /quality drift vs single primary: %.4f (bound %.2f)", k, maxQDrift, qualityDriftBound)

	// Routed /stats corpus totals are exact: claims decompose
	// claim-by-claim across partitions, entities and facts are
	// partition-disjoint, and sources is the union of per-partition
	// source sets — all equal to the reference's own counters.
	for _, f := range []string{"claims", "positive_claims", "negative_claims", "entities", "facts", "sources"} {
		if !reflect.DeepEqual(routedStats[f], refStats[f]) {
			t.Errorf("stats %q: routed %v != reference %v", f, routedStats[f], refStats[f])
		}
	}
	if got, _ := routedStats["partitions"].(float64); int(got) != k {
		t.Errorf("stats partitions = %v, want %d", routedStats["partitions"], k)
	}
	if routedStats["ready"] != true {
		t.Errorf("cluster not ready after refits: %v", routedStats["ready"])
	}
}

// TestClusterFaultInjection kills one of two durable primaries
// mid-service and asserts the ISSUE's degradation contract: requests
// touching the dead range 503 with the partition id while the surviving
// range keeps ingesting and serving; after a restart the partition
// recovers bit-identically from its own WAL and checkpoints, and the
// cluster is whole again.
func TestClusterFaultInjection(t *testing.T) {
	corpus := clusterCorpus(t)
	rows := positiveClaimRows(corpus.Dataset)
	tc := newTestCluster(t, 2, serve.RefitFull, true)
	mustIngest(t, tc.router.URL, rows)
	mustRefit(t, tc.router.URL)

	// One live entity on each side of the hash split.
	var e0, e1 string
	for _, r := range rows {
		if PartitionOf(r.Entity, 2) == 0 && e0 == "" {
			e0 = r.Entity
		}
		if PartitionOf(r.Entity, 2) == 1 && e1 == "" {
			e1 = r.Entity
		}
	}
	if e0 == "" || e1 == "" {
		t.Fatal("corpus does not populate both partitions")
	}

	// Pre-crash state of partition 1, and of the whole routed table.
	var before truthResponse
	getJSON(t, tc.url(1)+"/truth", &before)
	code, beforeQual := httpGet(t, tc.url(1)+"/partition/quality")
	if code != http.StatusOK {
		t.Fatalf("partition/quality before kill: status %d: %s", code, beforeQual)
	}
	var routedBefore truthResponse
	getJSON(t, tc.router.URL+"/truth", &routedBefore)

	tc.stopPrimary(1)

	// Writes into the dead range fail with the partition id.
	code, body := postClaims(t, tc.router.URL, []model.Row{{Entity: e1, Attribute: "outage-attr", Source: "good"}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("write to dead range: status %d, want 503: %s", code, body)
	}
	var errBody map[string]any
	if err := json.Unmarshal(body, &errBody); err != nil {
		t.Fatalf("decode 503 body: %v", err)
	}
	if p, _ := errBody["partition"].(float64); int(p) != 1 {
		t.Fatalf("503 must name partition 1: %s", body)
	}

	// The surviving range keeps accepting writes and answering
	// entity-scoped reads.
	if code, body := postClaims(t, tc.router.URL, []model.Row{{Entity: e0, Attribute: "outage-attr", Source: "good"}}); code != http.StatusAccepted {
		t.Fatalf("write to live range during outage: status %d: %s", code, body)
	}
	var aliveTruth truthResponse
	getJSON(t, tc.router.URL+"/truth?entity="+url.QueryEscape(e0), &aliveTruth)
	if len(aliveTruth.Rows) == 0 {
		t.Fatal("live partition served no rows during the outage")
	}

	// Reads needing the dead range — its entities, or any full-table
	// scatter — degrade to 503 with the partition id.
	for _, path := range []string{
		"/truth?entity=" + url.QueryEscape(e1), "/truth", "/quality", "/records", "/stats",
	} {
		code, body := httpGet(t, tc.router.URL+path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s during outage: status %d, want 503: %s", path, code, body)
		}
		var eb map[string]any
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("GET %s: decode 503 body: %v", path, err)
		}
		if p, _ := eb["partition"].(float64); int(p) != 1 {
			t.Fatalf("GET %s: 503 must name partition 1: %s", path, body)
		}
	}

	// The topology endpoint reports the outage without failing.
	var topo struct {
		Members []struct {
			Partition int  `json:"partition"`
			Up        bool `json:"up"`
		} `json:"members"`
	}
	getJSON(t, tc.router.URL+"/cluster", &topo)
	if len(topo.Members) != 2 || !topo.Members[0].Up || topo.Members[1].Up {
		t.Fatalf("topology should show partition 1 down: %+v", topo.Members)
	}

	// Restart partition 1 on the same address: recovery runs from its
	// own WAL and checkpoints before the listener accepts.
	tc.startPrimary(1)

	var after truthResponse
	getJSON(t, tc.url(1)+"/truth", &after)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("partition 1 /truth not identical after recovery:\nbefore %+v\nafter  %+v", before, after)
	}
	code, afterQual := httpGet(t, tc.url(1)+"/partition/quality")
	if code != http.StatusOK {
		t.Fatalf("partition/quality after restart: status %d: %s", code, afterQual)
	}
	if !bytes.Equal(afterQual, beforeQual) {
		t.Fatalf("partition 1 quality basis not bit-identical after recovery:\nbefore %s\nafter  %s", beforeQual, afterQual)
	}

	// Whole again: the routed table matches the pre-kill merge exactly
	// (partition 0's outage-time claim is pending, not yet refit).
	var routedAfter truthResponse
	getJSON(t, tc.router.URL+"/truth", &routedAfter)
	if !reflect.DeepEqual(routedAfter, routedBefore) {
		t.Fatal("routed /truth after recovery differs from the pre-kill table")
	}

	// And the claim ingested during the outage converges on the next
	// refit.
	mustRefit(t, tc.router.URL)
	var final truthResponse
	getJSON(t, tc.router.URL+"/truth?entity="+url.QueryEscape(e0)+"&attribute=outage-attr", &final)
	if len(final.Rows) != 1 {
		t.Fatalf("claim ingested during the outage not served after recovery refit: %+v", final.Rows)
	}
}

// TestStatsMergeRulesCoverLiveStats pins the rule table to the serve
// layer's actual /stats payload: every field a live primary emits must
// have a merge rule, and every rule must correspond to an emitted field.
// Adding a /stats counter without deciding its cluster semantics fails
// here (and MergeStats itself errors at runtime).
func TestStatsMergeRulesCoverLiveStats(t *testing.T) {
	srvURL := newReferenceServer(t, clusterServeConfig(serve.RefitFull))
	corpus := clusterCorpus(t)
	mustIngest(t, srvURL, positiveClaimRows(corpus.Dataset))
	mustRefit(t, srvURL)

	var stats map[string]any
	getJSON(t, srvURL+"/stats", &stats)
	live := make(map[string]bool, len(stats))
	for f := range stats {
		live[f] = true
	}
	ruled := make(map[string]bool)
	for _, f := range StatsMergeRuleNames() {
		ruled[f] = true
	}
	for f := range live {
		if !ruled[f] {
			t.Errorf("/stats field %q has no cluster merge rule", f)
		}
	}
	for f := range ruled {
		if !live[f] {
			t.Errorf("merge rule for %q, but a live primary emits no such /stats field", f)
		}
	}

	// The merged form of a real payload must round-trip MergeStats.
	if _, err := MergeStats([]map[string]any{stats, stats}, -1); err != nil {
		t.Fatalf("MergeStats rejects a live /stats payload: %v", err)
	}
}

// TestRouterScatterParams exercises the query-parameter contract of the
// scatter path on a live 2-partition cluster: topk and limit are global
// (post-merge), filters pass through, cursors are rejected, aggregation
// merges losslessly, and entity scoping proxies the owner verbatim.
func TestRouterScatterParams(t *testing.T) {
	corpus := clusterCorpus(t)
	rows := positiveClaimRows(corpus.Dataset)
	tc := newTestCluster(t, 2, serve.RefitFull, false)
	mustIngest(t, tc.router.URL, rows)
	mustRefit(t, tc.router.URL)

	var baseline truthResponse
	getJSON(t, tc.router.URL+"/truth", &baseline)
	if len(baseline.Rows) < 10 {
		t.Fatalf("corpus too small to exercise query params: %d rows", len(baseline.Rows))
	}

	// topk: globally re-ranked by descending probability, ties by
	// (entity, attribute) — identical to cutting the sorted baseline.
	wantTop := append([]serve.TruthRow(nil), baseline.Rows...)
	sort.SliceStable(wantTop, func(a, b int) bool {
		if wantTop[a].Probability != wantTop[b].Probability {
			return wantTop[a].Probability > wantTop[b].Probability
		}
		if wantTop[a].Entity != wantTop[b].Entity {
			return wantTop[a].Entity < wantTop[b].Entity
		}
		return wantTop[a].Attribute < wantTop[b].Attribute
	})
	var topk truthResponse
	getJSON(t, tc.router.URL+"/truth?topk=5", &topk)
	if !reflect.DeepEqual(topk.Rows, wantTop[:5]) {
		t.Fatalf("topk=5 is not the global top 5:\n got %+v\nwant %+v", topk.Rows, wantTop[:5])
	}

	// limit: the first n of the globally sorted table, not of any
	// partition's local order.
	var limited truthResponse
	getJSON(t, tc.router.URL+"/truth?limit=7", &limited)
	if !reflect.DeepEqual(limited.Rows, baseline.Rows[:7]) {
		t.Fatalf("limit=7 is not the global sorted prefix")
	}

	// min_prob: a pure filter commutes with the partition union.
	var wantFiltered []serve.TruthRow
	for _, r := range baseline.Rows {
		if r.Probability >= 0.8 {
			wantFiltered = append(wantFiltered, r)
		}
	}
	var filtered truthResponse
	getJSON(t, tc.router.URL+"/truth?min_prob=0.8", &filtered)
	if !reflect.DeepEqual(filtered.Rows, wantFiltered) {
		t.Fatalf("min_prob=0.8: got %d rows, want %d", len(filtered.Rows), len(wantFiltered))
	}

	// Cursors are per-partition state and cannot scatter.
	for _, path := range []string{"/truth?cursor=abc", "/records?cursor=abc"} {
		if code, _ := httpGet(t, tc.router.URL+path); code != http.StatusBadRequest {
			t.Fatalf("GET %s: want 400, got %d", path, code)
		}
	}
	// A parameter every partition rejects comes back as the client's 400,
	// not a 503 outage.
	if code, body := httpGet(t, tc.router.URL+"/truth?agg=source&limit=3"); code != http.StatusBadRequest {
		t.Fatalf("agg+limit: want 400 passthrough, got %d: %s", code, body)
	}

	type aggResponse struct {
		Seq    int64 `json:"seq"`
		Groups []struct {
			Key            string  `json:"key"`
			Facts          int     `json:"facts"`
			Predicted      int     `json:"predicted"`
			MeanProb       float64 `json:"mean_prob"`
			MaxProb        float64 `json:"max_prob"`
			PositiveClaims int     `json:"positive_claims"`
			NegativeClaims int     `json:"negative_claims"`
		} `json:"groups"`
	}

	// agg=entity: entities are partition-disjoint, so the routed groups
	// are exactly the key-sorted concatenation of the partitions' groups.
	var routedEnt, p0Ent, p1Ent aggResponse
	getJSON(t, tc.router.URL+"/truth?agg=entity", &routedEnt)
	getJSON(t, tc.url(0)+"/truth?agg=entity", &p0Ent)
	getJSON(t, tc.url(1)+"/truth?agg=entity", &p1Ent)
	wantEnt := append(append([]struct {
		Key            string  `json:"key"`
		Facts          int     `json:"facts"`
		Predicted      int     `json:"predicted"`
		MeanProb       float64 `json:"mean_prob"`
		MaxProb        float64 `json:"max_prob"`
		PositiveClaims int     `json:"positive_claims"`
		NegativeClaims int     `json:"negative_claims"`
	}(nil), p0Ent.Groups...), p1Ent.Groups...)
	sort.Slice(wantEnt, func(a, b int) bool { return wantEnt[a].Key < wantEnt[b].Key })
	if !reflect.DeepEqual(routedEnt.Groups, wantEnt) {
		t.Fatalf("agg=entity is not the concatenation of partition groups (%d routed, %d merged)",
			len(routedEnt.Groups), len(wantEnt))
	}

	// agg=source: sources span partitions; sums add, max_prob maxes, and
	// mean_prob is the facts-weighted mean — recomputed here
	// independently from the partitions' own responses.
	var routedSrc, p0Src, p1Src aggResponse
	getJSON(t, tc.router.URL+"/truth?agg=source", &routedSrc)
	getJSON(t, tc.url(0)+"/truth?agg=source", &p0Src)
	getJSON(t, tc.url(1)+"/truth?agg=source", &p1Src)
	type srcExpect struct {
		facts, predicted, pos, neg int
		probSum, maxProb           float64
	}
	want := make(map[string]*srcExpect)
	for _, part := range []aggResponse{p0Src, p1Src} {
		for _, g := range part.Groups {
			e := want[g.Key]
			if e == nil {
				e = &srcExpect{}
				want[g.Key] = e
			}
			e.facts += g.Facts
			e.predicted += g.Predicted
			e.pos += g.PositiveClaims
			e.neg += g.NegativeClaims
			e.probSum += g.MeanProb * float64(g.Facts)
			if g.MaxProb > e.maxProb {
				e.maxProb = g.MaxProb
			}
		}
	}
	if len(routedSrc.Groups) != len(want) {
		t.Fatalf("agg=source: %d routed groups, want %d", len(routedSrc.Groups), len(want))
	}
	for _, g := range routedSrc.Groups {
		e := want[g.Key]
		if e == nil {
			t.Fatalf("agg=source: unexpected group %q", g.Key)
		}
		if g.Facts != e.facts || g.Predicted != e.predicted ||
			g.PositiveClaims != e.pos || g.NegativeClaims != e.neg || g.MaxProb != e.maxProb {
			t.Fatalf("agg=source %q: routed %+v != independent merge %+v", g.Key, g, *e)
		}
		if math.Abs(g.MeanProb-e.probSum/float64(e.facts)) > 1e-12 {
			t.Fatalf("agg=source %q: mean_prob %.12f != weighted mean %.12f", g.Key, g.MeanProb, e.probSum/float64(e.facts))
		}
	}

	// Entity scoping proxies the owner byte-for-byte.
	entity := baseline.Rows[0].Entity
	owner := PartitionOf(entity, 2)
	_, routedBytes := httpGet(t, tc.router.URL+"/truth?entity="+url.QueryEscape(entity))
	code, ownerBytes := httpGet(t, tc.url(owner)+"/truth?entity="+url.QueryEscape(entity))
	if code != http.StatusOK || !bytes.Equal(routedBytes, ownerBytes) {
		t.Fatalf("entity-scoped /truth is not a verbatim proxy of partition %d", owner)
	}
	if code, _ := httpGet(t, tc.router.URL+"/truth?entity=no-such-entity-anywhere"); code != http.StatusNotFound {
		t.Fatalf("unknown entity should keep the owner's 404, got %d", code)
	}
}

// TestClusterIngestValidation: a malformed batch is rejected whole at the
// router — no partition sees any part of it.
func TestClusterIngestValidation(t *testing.T) {
	tc := newTestCluster(t, 2, serve.RefitFull, false)
	code, body := postClaims(t, tc.router.URL, []model.Row{
		{Entity: "ok", Attribute: "a", Source: "s"},
		{Entity: "", Attribute: "a", Source: "s"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d, want 400: %s", code, body)
	}
	for i := 0; i < 2; i++ {
		var st map[string]any
		getJSON(t, tc.url(i)+"/stats", &st)
		if p, _ := st["pending"].(float64); p != 0 {
			t.Fatalf("partition %d ingested part of a rejected batch: pending=%v", i, p)
		}
	}
}
