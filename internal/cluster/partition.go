package cluster

import (
	"fmt"
	"hash/fnv"

	"latenttruth/internal/model"
	"latenttruth/internal/serve"
)

// PartitionOf maps an entity name to its owning partition in [0, k).
// FNV-1a over the name, mod k: deterministic across processes, restarts
// and router replicas, independent of arrival order, and uniform enough
// that ranges stay balanced without coordination. Everything keyed by the
// entity — its facts, claims and labels — follows the entity, which is
// what makes per-partition datasets disjoint and their concatenation
// lossless.
func PartitionOf(entity string, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(entity))
	return int(h.Sum32() % uint32(k))
}

// SplitBatch partitions a claim batch by entity hash into k sub-batches,
// preserving the batch's arrival order within each partition. The
// sub-batches are disjoint and re-concatenate to the input multiset: no
// claim is dropped, duplicated, or assigned to a partition other than
// PartitionOf(claim.Entity, k) — the invariant FuzzSplitBatch hammers.
// Partitions that receive no claims stay nil.
func SplitBatch(rows []model.Row, k int) [][]model.Row {
	out := make([][]model.Row, k)
	for _, r := range rows {
		p := PartitionOf(r.Entity, k)
		out[p] = append(out[p], r)
	}
	return out
}

// ValidateBatch pre-validates a batch against the serving data model
// before any split or fan-out, so a malformed claim rejects the whole
// batch up front — the all-or-nothing ingest contract survives the
// scatter (no partition has been written when validation fails).
func ValidateBatch(rows []model.Row) error {
	for i, r := range rows {
		if err := serve.ValidateRow(r); err != nil {
			return fmt.Errorf("claim %d: %w", i, err)
		}
	}
	return nil
}
