package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"latenttruth/internal/model"
	"latenttruth/internal/obs"
	"latenttruth/internal/query"
	"latenttruth/internal/serve"
)

// maxClaimsBody bounds a routed POST /claims body, matching serve's limit.
const maxClaimsBody = 32 << 20

// Config configures a Router.
type Config struct {
	// Partitions are the primaries' base URLs in partition order
	// (http://host:port). The order IS the partition map: entity e lives
	// at Partitions[PartitionOf(e, len(Partitions))], so it must be
	// identical across router replicas and stable across restarts.
	Partitions []string
	// Client is the HTTP client for partition calls; nil uses a default
	// with a 30s timeout.
	Client *http.Client
	// Logger receives router diagnostics; nil discards them.
	Logger *log.Logger
	// Obs tunes the router's own observability: its request middleware
	// (router_http_* families, distinct from the partitions' http_* that
	// arrive through the merged /metrics scrape), slow-request logging
	// and log level.
	Obs serve.ObsConfig
}

// Router is the stateless scatter-gather front of a partitioned cluster:
// it owns no data and no fit state, so any number of replicas can run
// behind a load balancer — the partition map is pure hashing.
type Router struct {
	cfg    Config
	client *http.Client

	// reg holds the router-owned families; met the fan-out instruments
	// (nil when Obs.Disabled) and httpMW the request middleware (ditto).
	reg    *obs.Registry
	logger *obs.Logger
	met    *routerMetrics
	httpMW *obs.HTTPMetrics
}

// NewRouter validates the partition map and returns a router.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Partitions) == 0 {
		return nil, errors.New("cluster: router needs at least one partition")
	}
	for i, p := range cfg.Partitions {
		if p == "" {
			return nil, fmt.Errorf("cluster: partition %d has an empty address", i)
		}
	}
	c := cfg.Client
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	rt := &Router{cfg: cfg, client: c}
	rt.reg = obs.NewRegistry()
	rt.logger = obs.NewLogger(cfg.Logger, cfg.Obs.LogLevel)
	if !cfg.Obs.Disabled {
		rt.met = newRouterMetrics(rt.reg)
		rt.httpMW = obs.NewHTTPMetrics(rt.reg, "router_http_", rt.logger, cfg.Obs.SlowRequest)
	}
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	rt.logger.Infof(format, args...)
}

func (rt *Router) warnf(format string, args ...any) {
	rt.logger.Warnf(format, args...)
}

// Handler returns the router's HTTP API — the same surface as one
// serve.Server, plus GET /cluster for topology:
//
//	POST /claims  — split by entity hash, fan out, sum acks
//	GET  /truth   — entity-scoped: proxied to the owner; full-table:
//	                scatter-gather (rows sorted by entity, attribute)
//	GET  /quality — merged cross-partition quality (Table 8 order)
//	GET  /records — entity-scoped: proxied; full-table: scatter-gather
//	GET  /stats   — field-wise merge per the documented rule table
//	GET  /healthz — cluster liveness (ready iff every partition is)
//	GET  /cluster — partition topology and per-partition health
//	GET  /metrics — cluster-wide exposition: every partition's /metrics
//	                merged by rule, plus the router's own families
//	POST /refit   — fan out to every partition
//
// With a single partition the router degenerates to a reverse proxy:
// every request is forwarded verbatim, so K=1 responses are
// byte-identical to the primary's own. Cursor pagination is
// per-partition state and does not survive a scatter; full-table reads
// with a cursor are rejected with 400 (entity-scoped cursors proxy fine).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /claims", rt.handleClaims)
	mux.HandleFunc("GET /truth", rt.handleTruth)
	mux.HandleFunc("GET /quality", rt.handleQuality)
	mux.HandleFunc("GET /records", rt.handleRecords)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /cluster", rt.handleCluster)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /refit", rt.handleRefit)
	if rt.httpMW != nil {
		return rt.httpMW.Wrap(mux)
	}
	return mux
}

// k returns the partition count.
func (rt *Router) k() int { return len(rt.cfg.Partitions) }

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		rt.warnf("cluster: encoding response: %v", err)
	}
}

// Stable machine-readable error codes for the router's own responses
// (mirroring serve's envelope contract). Proxied responses pass the owning
// partition's envelope through byte-identically and are not rewritten.
const (
	codeBadRequest = "bad_request"
	// codePartitionDown: the partition owning the requested range is
	// unreachable or failing; the rest of the cluster still serves.
	codePartitionDown = "partition_down"
	codeUnavailable   = "unavailable"
	codeInternal      = "internal"
)

func (rt *Router) writeError(w http.ResponseWriter, status int, code string, err error) {
	rt.writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// partitionError is a failed partition call, carrying the partition id so
// clients can tell a degraded range from a cluster-wide outage, and the
// partition's status code when it answered (0 when unreachable).
type partitionError struct {
	partition int
	status    int
	err       error
}

func (e partitionError) Error() string {
	return fmt.Sprintf("cluster: partition %d: %v", e.partition, e.err)
}
func (e partitionError) Unwrap() error { return e.err }

// writePartitionError maps a fan-out failure onto the router response: a
// 4xx from a partition is the client's error and passes through as 400
// (e.g. bad query parameters rejected by every partition alike); anything
// else — unreachable primary, 5xx — is 503 with the partition id, meaning
// the range that partition owns is unavailable while everything else
// still serves.
func (rt *Router) writePartitionError(w http.ResponseWriter, err error) {
	var pe partitionError
	if errors.As(err, &pe) {
		status, code := http.StatusServiceUnavailable, codePartitionDown
		if pe.status >= 400 && pe.status < 500 {
			status, code = http.StatusBadRequest, codeBadRequest
		}
		rt.writeJSON(w, status, map[string]any{
			"error":     err.Error(),
			"code":      code,
			"partition": pe.partition,
		})
		return
	}
	rt.writeError(w, http.StatusServiceUnavailable, codePartitionDown, err)
}

// proxy forwards the request verbatim to partition p and copies the
// response back byte-for-byte — entity-scoped reads keep the owner's
// exact semantics (404s, cursors, response bytes).
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, p int) {
	url := rt.cfg.Partitions[p] + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		rt.met.proxyError(p)
		rt.writePartitionError(w, partitionError{partition: p, err: err})
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.met.proxyError(p)
		rt.writePartitionError(w, partitionError{partition: p, err: err})
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		rt.warnf("cluster: proxying partition %d: %v", p, err)
	}
}

// getJSON fetches path (with query) from partition p and decodes the JSON
// response. Non-200 statuses become partitionErrors carrying the
// partition's own error body.
func (rt *Router) getJSON(ctx context.Context, p int, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.cfg.Partitions[p]+path, nil)
	if err != nil {
		return partitionError{partition: p, err: err}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return partitionError{partition: p, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxClaimsBody))
	if err != nil {
		return partitionError{partition: p, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return partitionError{partition: p, status: resp.StatusCode, err: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))}
	}
	if err := json.Unmarshal(body, v); err != nil {
		return partitionError{partition: p, err: err}
	}
	return nil
}

// fanout runs f(i) for every partition concurrently and returns the
// first error by partition order (deterministic when several fail).
func (rt *Router) fanout(f func(i int) error) error {
	errs := make([]error, rt.k())
	var wg sync.WaitGroup
	for i := 0; i < rt.k(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			errs[i] = f(i)
			rt.met.observeLeg(i, time.Since(start).Seconds(), errs[i])
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// firstPartitionError extracts the lowest-partition failure for the
// response envelope.
func firstPartitionError(err error) error {
	if err == nil {
		return nil
	}
	var pe partitionError
	if errors.As(err, &pe) {
		return pe
	}
	return err
}

// --- ingest ---

type claimJSON struct {
	Entity    string `json:"entity"`
	Attribute string `json:"attribute"`
	Source    string `json:"source"`
}

type ingestAck struct {
	Accepted int   `json:"accepted"`
	Pending  int   `json:"pending"`
	Total    int64 `json:"total"`
}

// handleClaims validates the batch, splits it by entity hash, and fans the
// sub-batches out concurrently. Acks sum across partitions. A failed
// partition yields 503 with its id; sub-batches already acknowledged
// elsewhere stay ingested — the cumulative database de-duplicates rows, so
// retrying the whole batch is safe and converges (documented at-least-once
// ingest, exactly-once effect).
func (rt *Router) handleClaims(w http.ResponseWriter, r *http.Request) {
	if rt.k() == 1 {
		rt.proxy(w, r, 0)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxClaimsBody)
	var raw json.RawMessage
	if err := json.NewDecoder(body).Decode(&raw); err != nil {
		rt.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var claims []claimJSON
	if len(raw) > 0 && raw[0] == '{' {
		var envelope struct {
			Claims []claimJSON `json:"claims"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			rt.writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		claims = envelope.Claims
	} else if err := json.Unmarshal(raw, &claims); err != nil {
		rt.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(claims) == 0 {
		rt.writeError(w, http.StatusBadRequest, codeBadRequest, errors.New("cluster: empty claim batch"))
		return
	}
	rows := make([]model.Row, len(claims))
	for i, c := range claims {
		rows[i] = model.Row{Entity: c.Entity, Attribute: c.Attribute, Source: c.Source}
	}
	if err := ValidateBatch(rows); err != nil {
		rt.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	parts := SplitBatch(rows, rt.k())
	acks := make([]ingestAck, rt.k())
	err := rt.fanout(func(i int) error {
		if len(parts[i]) == 0 {
			return nil
		}
		sub := make([]claimJSON, len(parts[i]))
		for j, row := range parts[i] {
			sub[j] = claimJSON{Entity: row.Entity, Attribute: row.Attribute, Source: row.Source}
		}
		payload, err := json.Marshal(map[string]any{"claims": sub})
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			rt.cfg.Partitions[i]+"/claims", bytes.NewReader(payload))
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		defer resp.Body.Close()
		rb, err := io.ReadAll(io.LimitReader(resp.Body, maxClaimsBody))
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		if resp.StatusCode != http.StatusAccepted {
			return partitionError{partition: i, status: resp.StatusCode, err: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(rb))}
		}
		return json.Unmarshal(rb, &acks[i])
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	var sum ingestAck
	for _, a := range acks {
		sum.Accepted += a.Accepted
		sum.Pending += a.Pending
		sum.Total += a.Total
	}
	rt.writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted": sum.Accepted,
		"pending":  sum.Pending,
		"total":    sum.Total,
	})
}

// --- truth ---

// truthPart is the decoded slice of one partition's /truth response the
// merge needs.
type truthPart struct {
	Seq       int64            `json:"seq"`
	Mode      string           `json:"mode"`
	FittedAt  time.Time        `json:"fitted_at"`
	Threshold float64          `json:"threshold"`
	Rows      []serve.TruthRow `json:"rows"`
}

// handleTruth routes entity-scoped queries to the owning partition
// verbatim and scatter-gathers everything else. Merged full-table rows
// are sorted by (entity, attribute) — a deterministic global order that,
// unlike a single primary's first-appearance order, does not depend on
// how batches interleaved across partitions. topk re-ranks by descending
// probability after gathering each partition's local top k.
func (rt *Router) handleTruth(w http.ResponseWriter, r *http.Request) {
	if rt.k() == 1 {
		rt.proxy(w, r, 0)
		return
	}
	q := r.URL.Query()
	if e := q.Get("entity"); e != "" {
		rt.proxy(w, r, PartitionOf(e, rt.k()))
		return
	}
	if q.Get("cursor") != "" {
		rt.writeError(w, http.StatusBadRequest, codeBadRequest,
			errors.New("cluster: cursor pagination is per-partition; scope the query with ?entity= or drop the cursor"))
		return
	}
	if agg := q.Get("agg"); agg != "" {
		rt.scatterAggregate(w, r, query.AggKind(agg))
		return
	}
	topk, _ := strconv.Atoi(q.Get("topk"))
	limit, _ := strconv.Atoi(q.Get("limit"))

	// topk scatters as-is (the global top k is a subset of the union of
	// per-partition top k), but limit must not: a partition cuts in its
	// local fact order, which could drop rows belonging to the global
	// sorted prefix — so the cut happens after the merge.
	q.Del("limit")
	path := "/truth"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	parts := make([]truthPart, rt.k())
	err := rt.fanout(func(i int) error {
		return rt.getJSON(r.Context(), i, path, &parts[i])
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	for i := 1; i < rt.k(); i++ {
		if parts[i].Threshold != parts[0].Threshold {
			rt.writeError(w, http.StatusServiceUnavailable, codeUnavailable,
				fmt.Errorf("cluster: partition %d threshold %v != partition 0 threshold %v",
					i, parts[i].Threshold, parts[0].Threshold))
			return
		}
	}
	var rows []serve.TruthRow
	for _, p := range parts {
		rows = append(rows, p.Rows...)
	}
	if topk > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			if rows[a].Probability != rows[b].Probability {
				return rows[a].Probability > rows[b].Probability
			}
			return lessEntityAttr(rows[a], rows[b])
		})
		if len(rows) > topk {
			rows = rows[:topk]
		}
	} else {
		sort.SliceStable(rows, func(a, b int) bool { return lessEntityAttr(rows[a], rows[b]) })
		if limit > 0 && len(rows) > limit {
			rows = rows[:limit]
		}
	}
	if rows == nil {
		rows = []serve.TruthRow{}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"seq":       minSeq(seqs(parts)),
		"mode":      commonMode(parts),
		"fitted_at": maxFitted(parts),
		"threshold": parts[0].Threshold,
		"facts":     len(rows),
		"rows":      rows,
	})
}

func lessEntityAttr(a, b serve.TruthRow) bool {
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	return a.Attribute < b.Attribute
}

func seqs(parts []truthPart) []int64 {
	out := make([]int64, len(parts))
	for i, p := range parts {
		out[i] = p.Seq
	}
	return out
}

func minSeq(seqs []int64) int64 {
	min := seqs[0]
	for _, s := range seqs[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

func commonMode(parts []truthPart) string {
	mode := parts[0].Mode
	for _, p := range parts[1:] {
		if p.Mode != mode {
			return "mixed"
		}
	}
	return mode
}

func maxFitted(parts []truthPart) time.Time {
	t := parts[0].FittedAt
	for _, p := range parts[1:] {
		if p.FittedAt.After(t) {
			t = p.FittedAt
		}
	}
	return t
}

// scatterAggregate merges per-partition rollups. Entity groups are
// partition-local (each entity lives in exactly one partition), so their
// concatenation is exact; source groups span partitions and merge by
// summing counts, taking the max of MaxProb, and fact-weighting MeanProb
// — exact up to float summation order. Groups sort by key.
func (rt *Router) scatterAggregate(w http.ResponseWriter, r *http.Request, agg query.AggKind) {
	type aggPart struct {
		Seq    int64         `json:"seq"`
		Groups []query.Group `json:"groups"`
	}
	parts := make([]aggPart, rt.k())
	err := rt.fanout(func(i int) error {
		return rt.getJSON(r.Context(), i, "/truth?"+r.URL.Query().Encode(), &parts[i])
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	var groups []query.Group
	if agg == query.AggBySource {
		merged := make(map[string]query.Group)
		for _, p := range parts {
			for _, g := range p.Groups {
				m, ok := merged[g.Key]
				if !ok {
					merged[g.Key] = g
					continue
				}
				m.MeanProb = weightedMean(m.MeanProb, m.Facts, g.MeanProb, g.Facts)
				m.Facts += g.Facts
				m.Predicted += g.Predicted
				if g.MaxProb > m.MaxProb {
					m.MaxProb = g.MaxProb
				}
				m.PositiveClaims += g.PositiveClaims
				m.NegativeClaims += g.NegativeClaims
				merged[g.Key] = m
			}
		}
		for _, g := range merged {
			groups = append(groups, g)
		}
	} else {
		for _, p := range parts {
			groups = append(groups, p.Groups...)
		}
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].Key < groups[b].Key })
	if groups == nil {
		groups = []query.Group{}
	}
	seqList := make([]int64, len(parts))
	for i, p := range parts {
		seqList[i] = p.Seq
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"seq": minSeq(seqList), "agg": agg, "count": len(groups), "groups": groups,
	})
}

func weightedMean(m1 float64, n1 int, m2 float64, n2 int) float64 {
	if n1+n2 == 0 {
		return 0
	}
	return (m1*float64(n1) + m2*float64(n2)) / float64(n1+n2)
}

// --- quality ---

// handleQuality gathers every partition's count basis and serves the
// merged Table 8 — the cross-partition reconciliation the package doc
// describes. The response shape matches a single server's /quality; seq
// is the cluster floor (min over partitions).
func (rt *Router) handleQuality(w http.ResponseWriter, r *http.Request) {
	if rt.k() == 1 {
		rt.proxy(w, r, 0)
		return
	}
	parts := make([]serve.PartitionQuality, rt.k())
	err := rt.fanout(func(i int) error {
		return rt.getJSON(r.Context(), i, "/partition/quality", &parts[i])
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	merged, err := MergeQuality(parts)
	if err != nil {
		rt.writeError(w, http.StatusServiceUnavailable, codeUnavailable, err)
		return
	}
	seqList := make([]int64, len(parts))
	for i, p := range parts {
		seqList[i] = p.Seq
	}
	type qualityJSON struct {
		Source      string  `json:"source"`
		Sensitivity float64 `json:"sensitivity"`
		Specificity float64 `json:"specificity"`
		Precision   float64 `json:"precision"`
		Accuracy    float64 `json:"accuracy"`
	}
	rows := make([]qualityJSON, len(merged))
	for i, s := range merged {
		rows[i] = qualityJSON{s.Source, s.Sensitivity, s.Specificity, s.Precision, s.Accuracy}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"seq": minSeq(seqList), "sources": rows})
}

// --- records ---

type recordPart struct {
	Seq     int64             `json:"seq"`
	Records []json.RawMessage `json:"records"`
}

// recordKey extracts the entity name for merge ordering without
// re-encoding the record (the owner's bytes pass through untouched).
func recordKey(raw json.RawMessage) string {
	var k struct {
		Entity string `json:"entity"`
	}
	_ = json.Unmarshal(raw, &k)
	return k.Entity
}

// handleRecords proxies entity-scoped lookups to the owner and
// scatter-gathers the full record table otherwise, sorted by entity name.
func (rt *Router) handleRecords(w http.ResponseWriter, r *http.Request) {
	if rt.k() == 1 {
		rt.proxy(w, r, 0)
		return
	}
	q := r.URL.Query()
	if e := q.Get("entity"); e != "" {
		rt.proxy(w, r, PartitionOf(e, rt.k()))
		return
	}
	if q.Get("cursor") != "" {
		rt.writeError(w, http.StatusBadRequest, codeBadRequest,
			errors.New("cluster: cursor pagination is per-partition; scope the query with ?entity= or drop the cursor"))
		return
	}
	limit, _ := strconv.Atoi(q.Get("limit"))
	// Fetch without limit so the global cut happens after the merge (a
	// per-partition limit would skew toward low partitions).
	q.Del("limit")
	path := "/records"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	parts := make([]recordPart, rt.k())
	err := rt.fanout(func(i int) error {
		return rt.getJSON(r.Context(), i, path, &parts[i])
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	var recs []json.RawMessage
	for _, p := range parts {
		recs = append(recs, p.Records...)
	}
	sort.SliceStable(recs, func(a, b int) bool { return recordKey(recs[a]) < recordKey(recs[b]) })
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	if recs == nil {
		recs = []json.RawMessage{}
	}
	seqList := make([]int64, len(parts))
	for i, p := range parts {
		seqList[i] = p.Seq
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"seq": minSeq(seqList), "records": recs, "count": len(recs),
	})
}

// --- stats / health / topology / refit ---

// handleStats merges the partitions' /stats per the documented rule table.
// The sources cardinality comes from the union of source names across the
// partitions' quality bases when every partition serves one; otherwise it
// falls back to the per-partition maximum (a lower bound).
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if rt.k() == 1 {
		rt.proxy(w, r, 0)
		return
	}
	parts := make([]map[string]any, rt.k())
	err := rt.fanout(func(i int) error {
		return rt.getJSON(r.Context(), i, "/stats", &parts[i])
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	sources := -1
	qparts := make([]serve.PartitionQuality, rt.k())
	if err := rt.fanout(func(i int) error {
		return rt.getJSON(r.Context(), i, "/partition/quality", &qparts[i])
	}); err == nil {
		union := make(map[string]struct{})
		for _, p := range qparts {
			for name := range p.Counts {
				union[name] = struct{}{}
			}
		}
		sources = len(union)
	}
	merged, err := MergeStats(parts, sources)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	merged["partitions"] = rt.k()
	rt.writeJSON(w, http.StatusOK, merged)
}

// partitionHealth is one partition's row in /healthz and /cluster.
type partitionHealth struct {
	Partition int    `json:"partition"`
	URL       string `json:"url"`
	Up        bool   `json:"up"`
	Ready     bool   `json:"ready"`
	Seq       int64  `json:"seq"`
	Error     string `json:"error,omitempty"`
}

func (rt *Router) partitionHealths(ctx context.Context) []partitionHealth {
	out := make([]partitionHealth, rt.k())
	_ = rt.fanout(func(i int) error {
		out[i] = partitionHealth{Partition: i, URL: rt.cfg.Partitions[i]}
		var h struct {
			Ready bool  `json:"ready"`
			Seq   int64 `json:"seq"`
		}
		if err := rt.getJSON(ctx, i, "/healthz", &h); err != nil {
			out[i].Error = err.Error()
			return nil
		}
		out[i].Up, out[i].Ready, out[i].Seq = true, h.Ready, h.Seq
		return nil
	})
	return out
}

// handleHealthz reports cluster liveness: ready iff every partition is up
// and ready; seq is the cluster floor. Always 200 — degraded state is in
// the body, per-partition.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hs := rt.partitionHealths(r.Context())
	ready := true
	var seq int64
	for i, h := range hs {
		if !h.Up || !h.Ready {
			ready = false
		}
		if i == 0 || h.Seq < seq {
			seq = h.Seq
		}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "ready": ready, "seq": seq, "partitions": hs,
	})
}

// handleCluster serves the partition topology — the hash map a client
// needs to talk to owners directly, plus live health.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"partitions": rt.k(),
		"hash":       "fnv1a32 % partitions",
		"members":    rt.partitionHealths(r.Context()),
	})
}

// handleRefit fans a refit out to every partition and gathers the
// results. Partition fits are independent — there is no cross-partition
// barrier — so a failure on one range 503s with its id while the others'
// refits stand.
func (rt *Router) handleRefit(w http.ResponseWriter, r *http.Request) {
	if rt.k() == 1 {
		rt.proxy(w, r, 0)
		return
	}
	results := make([]map[string]any, rt.k())
	err := rt.fanout(func(i int) error {
		path := rt.cfg.Partitions[i] + "/refit"
		if pol := r.URL.Query().Get("policy"); pol != "" {
			path += "?policy=" + pol
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, path, nil)
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		defer resp.Body.Close()
		rb, err := io.ReadAll(io.LimitReader(resp.Body, maxClaimsBody))
		if err != nil {
			return partitionError{partition: i, err: err}
		}
		// 409 (no data) is fine for an empty partition: entity hashing can
		// leave a range empty on small corpora.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
			return partitionError{partition: i, status: resp.StatusCode, err: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(rb))}
		}
		var v map[string]any
		if err := json.Unmarshal(rb, &v); err != nil {
			return partitionError{partition: i, err: err}
		}
		v["partition"] = i
		results[i] = v
		return nil
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"partitions": results})
}
