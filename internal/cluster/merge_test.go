package cluster

import (
	"reflect"
	"strings"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/serve"
	"latenttruth/internal/shard"
)

var testPriors = core.Priors{FP: 1, TN: 9, TP: 9, FN: 1, True: 1, Fls: 1}

func pq(seq int64, counts map[string][2][2]float64) serve.PartitionQuality {
	return serve.PartitionQuality{Seq: seq, Threshold: 0.5, Priors: testPriors, Counts: counts}
}

// TestMergeQualitySinglePartitionIdentity: merging one partition's counts
// reproduces exactly the rows the shared closed form gives on those
// counts — bit-identical, including the Table 8 ranking.
func TestMergeQualitySinglePartitionIdentity(t *testing.T) {
	counts := map[string][2][2]float64{
		"good":  {{30.2, 0.8}, {1.1, 40.9}},
		"messy": {{20.7, 10.3}, {3.9, 33.1}},
	}
	merged, err := MergeQuality([]serve.PartitionQuality{pq(3, counts)})
	if err != nil {
		t.Fatal(err)
	}
	want := core.RankedQuality([]model.SourceQuality{
		core.QualityFromCounts("good", counts["good"], testPriors),
		core.QualityFromCounts("messy", counts["messy"], testPriors),
	})
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged %+v != closed form %+v", merged, want)
	}
}

// TestMergeQualityEqualsJointCounts: splitting a count table between
// partitions and merging gives bit-identical quality to the closed form
// over the partition-order sum — MergeCounts is the fold, QualityFromCounts
// the read-off, so the equality is exact, not approximate.
func TestMergeQualityEqualsJointCounts(t *testing.T) {
	p0 := map[string][2][2]float64{
		"good":   {{10.25, 0.5}, {0.125, 20.75}},
		"shared": {{5.5, 1.25}, {0.75, 7.875}},
	}
	p1 := map[string][2][2]float64{
		"shared": {{4.125, 2.5}, {1.5, 9.25}},
		"other":  {{8.875, 3.75}, {2.25, 11.5}},
	}
	merged, err := MergeQuality([]serve.PartitionQuality{pq(2, p0), pq(2, p1)})
	if err != nil {
		t.Fatal(err)
	}
	joint := shard.MergeCounts(nil, p0)
	joint = shard.MergeCounts(joint, p1)
	byName := make(map[string]int)
	for i, row := range merged {
		byName[row.Source] = i
	}
	if len(merged) != 3 {
		t.Fatalf("got %d sources, want 3: %+v", len(merged), merged)
	}
	for name, e := range joint {
		want := core.QualityFromCounts(name, e, testPriors)
		got := merged[byName[name]]
		if got != want {
			t.Fatalf("source %s: merged %+v != joint closed form %+v", name, got, want)
		}
	}
	// The shared source's cells really are sums, not either side's.
	wantShared := [2][2]float64{{5.5 + 4.125, 1.25 + 2.5}, {0.75 + 1.5, 7.875 + 9.25}}
	if joint["shared"] != wantShared {
		t.Fatalf("shared counts %v, want %v", joint["shared"], wantShared)
	}
}

func TestMergeQualityRejectsConfigDrift(t *testing.T) {
	c := map[string][2][2]float64{"s": {{1, 1}, {1, 1}}}
	bad := pq(1, c)
	bad.Priors.TP++
	if _, err := MergeQuality([]serve.PartitionQuality{pq(1, c), bad}); err == nil {
		t.Fatal("mismatched priors must not merge")
	}
	bad = pq(1, c)
	bad.Threshold = 0.7
	if _, err := MergeQuality([]serve.PartitionQuality{pq(1, c), bad}); err == nil {
		t.Fatal("mismatched thresholds must not merge")
	}
	if _, err := MergeQuality(nil); err == nil {
		t.Fatal("empty merge must fail")
	}
}

// TestStatsMergeRules enumerates EVERY /stats field with explicit merged
// expectations over two synthetic partitions, so each rule is asserted by
// value — a field silently switched to the wrong rule fails here.
func TestStatsMergeRules(t *testing.T) {
	p0 := map[string]any{
		"ready": true, "seq": 5.0, "mode": "full", "policy": "dirty",
		"pending": 2.0, "ingested_total": 100.0, "refits": 5.0,
		"full_refits": 2.0, "dirty_refits": 3.0, "last_refit_ms": 120.0,
		"freshness_ms": 40.0, "dirty_entities": 7.0, "uptime_s": 400.0,
		"encode_failures": 1.0, "entities": 30.0, "sources": 3.0,
		"facts": 90.0, "claims": 300.0, "positive_claims": 200.0,
		"negative_claims": 100.0, "labeled": 10.0,
	}
	p1 := map[string]any{
		"ready": true, "seq": 7.0, "mode": "dirty", "policy": "dirty",
		"pending": 1.0, "ingested_total": 80.0, "refits": 7.0,
		"full_refits": 3.0, "dirty_refits": 4.0, "last_refit_ms": 90.0,
		"freshness_ms": 55.0, "dirty_entities": 2.0, "uptime_s": 350.0,
		"encode_failures": 0.0, "entities": 25.0, "sources": 3.0,
		"facts": 70.0, "claims": 250.0, "positive_claims": 180.0,
		"negative_claims": 70.0, "labeled": 8.0,
	}
	merged, err := MergeStats([]map[string]any{p0, p1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"ready":           true,    // AND: every partition ready
		"seq":             5.0,     // MIN: the refit round all partitions reached
		"mode":            "mixed", // COMMON: partitions disagree
		"policy":          "dirty", // COMMON: partitions agree
		"pending":         3.0,     // SUM
		"ingested_total":  180.0,   // SUM
		"refits":          12.0,    // SUM
		"full_refits":     5.0,     // SUM
		"dirty_refits":    7.0,     // SUM
		"last_refit_ms":   120.0,   // MAX: slowest refit anywhere
		"freshness_ms":    55.0,    // MAX: worst staleness bound anywhere
		"dirty_entities":  9.0,     // SUM
		"uptime_s":        350.0,   // MIN: youngest member bounds cluster uptime
		"encode_failures": 1.0,     // SUM
		"entities":        55.0,    // SUM: entities are partition-disjoint
		"sources":         4.0,     // UNION: sources span partitions (supplied)
		"facts":           160.0,   // SUM
		"claims":          550.0,   // SUM
		"positive_claims": 380.0,   // SUM
		"negative_claims": 170.0,   // SUM
		"labeled":         18.0,    // SUM
	}
	if !reflect.DeepEqual(merged, want) {
		for f, w := range want {
			if got, ok := merged[f]; !ok || !reflect.DeepEqual(got, w) {
				t.Errorf("field %q: merged %v, want %v", f, got, w)
			}
		}
		for f := range merged {
			if _, ok := want[f]; !ok {
				t.Errorf("unexpected merged field %q", f)
			}
		}
		t.FailNow()
	}

	// One partition not ready flips the cluster floor.
	p1["ready"] = false
	merged, err = MergeStats([]map[string]any{p0, p1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if merged["ready"] != false {
		t.Fatal("cluster must not be ready when any partition is not")
	}

	// Unknown sources union falls back to the per-partition max.
	delete(p1, "ready")
	p1["ready"] = true
	merged, err = MergeStats([]map[string]any{p0, p1}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if merged["sources"] != 3.0 {
		t.Fatalf("sources fallback %v, want max 3", merged["sources"])
	}
}

// TestStatsMergeRejectsUnknownField is the no-silent-default guard: a
// field serve starts emitting without a rule entry errors loudly.
func TestStatsMergeRejectsUnknownField(t *testing.T) {
	_, err := MergeStats([]map[string]any{{"brand_new_counter": 1.0}}, -1)
	if err == nil {
		t.Fatal("expected an error for a field with no merge rule")
	}
	if !strings.Contains(err.Error(), "brand_new_counter") {
		t.Fatalf("error should name the field: %v", err)
	}
}

// TestStatsMergeRejectsWrongTypes: rules are typed; a partition sending a
// mistyped field errors instead of being coerced.
func TestStatsMergeRejectsWrongTypes(t *testing.T) {
	for field, v := range map[string]any{
		"ready":  "yes",  // ruleAnd wants bool
		"mode":   1.0,    // ruleCommon wants string
		"claims": "many", // ruleSum wants number
	} {
		if _, err := MergeStats([]map[string]any{{field: v}}, -1); err == nil {
			t.Fatalf("field %q with %T value must error", field, v)
		}
	}
}
