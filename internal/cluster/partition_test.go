package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"testing/quick"

	"latenttruth/internal/model"
	"latenttruth/internal/store"
)

func TestPartitionOfRangeAndDeterminism(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 16} {
		for i := 0; i < 200; i++ {
			e := fmt.Sprintf("entity-%d", i)
			p := PartitionOf(e, k)
			if p < 0 || p >= k {
				t.Fatalf("PartitionOf(%q, %d) = %d out of range", e, k, p)
			}
			if q := PartitionOf(e, k); q != p {
				t.Fatalf("PartitionOf(%q, %d) not deterministic: %d then %d", e, k, p, q)
			}
		}
	}
	if PartitionOf("anything", 1) != 0 || PartitionOf("anything", 0) != 0 {
		t.Fatal("k <= 1 must collapse to partition 0")
	}
}

// rowKey is a claim's multiset identity.
func rowKey(r model.Row) string {
	return r.Entity + "\x00" + r.Attribute + "\x00" + r.Source
}

// multiset folds rows into occurrence counts.
func multiset(rows []model.Row) map[string]int {
	m := make(map[string]int)
	for _, r := range rows {
		m[rowKey(r)]++
	}
	return m
}

// checkSplit asserts the SplitBatch contract on rows/k: no claim dropped,
// duplicated, or cross-assigned; per-partition arrival order preserved;
// concatenation reproduces the input multiset. Returns a description of
// the first violation, empty when the split is lawful.
func checkSplit(rows []model.Row, k int) string {
	parts := SplitBatch(rows, k)
	if len(parts) != k {
		return fmt.Sprintf("got %d partitions, want %d", len(parts), k)
	}
	var concat []model.Row
	for p, part := range parts {
		for _, r := range part {
			if own := PartitionOf(r.Entity, k); own != p {
				return fmt.Sprintf("claim %+v cross-assigned to partition %d (owner %d)", r, p, own)
			}
		}
		concat = append(concat, part...)
	}
	if len(concat) != len(rows) {
		return fmt.Sprintf("split covers %d claims, input had %d", len(concat), len(rows))
	}
	want, got := multiset(rows), multiset(concat)
	for key, n := range want {
		if got[key] != n {
			return fmt.Sprintf("claim %q: input ×%d, split ×%d", key, n, got[key])
		}
	}
	// Arrival order within each partition must be the input's subsequence
	// order: replaying the input and consuming each partition's head must
	// drain every partition exactly.
	idx := make([]int, k)
	for _, r := range rows {
		p := PartitionOf(r.Entity, k)
		if idx[p] >= len(parts[p]) || parts[p][idx[p]] != r {
			return fmt.Sprintf("partition %d does not preserve arrival order", p)
		}
		idx[p]++
	}
	return ""
}

func TestSplitBatchProperty(t *testing.T) {
	f := func(seeds []uint16, k8 uint8) bool {
		k := int(k8)%8 + 1
		rows := make([]model.Row, len(seeds))
		for i, s := range seeds {
			rows[i] = model.Row{
				Entity:    fmt.Sprintf("e%d", s%97),
				Attribute: fmt.Sprintf("a%d", s%13),
				Source:    fmt.Sprintf("s%d", s%5),
			}
		}
		return checkSplit(rows, k) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSplitBatch hammers the splitter with arbitrary byte-derived batches:
// whatever the entity names, the split must never drop, duplicate, or
// cross-assign a claim, and the sub-batches must re-concatenate to the
// input multiset in per-partition arrival order.
func FuzzSplitBatch(f *testing.F) {
	f.Add([]byte("alpha,beta,gamma,alpha,delta"), uint8(2))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte("x,x,x,x,x,x"), uint8(7))
	f.Add([]byte("caf\xc3\xa9,\xff\xfe,\x00odd"), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, k8 uint8) {
		k := int(k8)%16 + 1
		var rows []model.Row
		for i, name := range strings.Split(string(data), ",") {
			rows = append(rows, model.Row{
				Entity:    name,
				Attribute: fmt.Sprintf("attr%d", i%3),
				Source:    fmt.Sprintf("src%d", i%2),
			})
		}
		if msg := checkSplit(rows, k); msg != "" {
			t.Fatalf("k=%d: %s", k, msg)
		}
	})
}

func TestValidateBatchNamesBadClaim(t *testing.T) {
	rows := []model.Row{
		{Entity: "ok", Attribute: "a", Source: "s"},
		{Entity: "", Attribute: "a", Source: "s"},
	}
	err := ValidateBatch(rows)
	if err == nil {
		t.Fatal("expected validation error")
	}
	if !strings.Contains(err.Error(), "claim 1") {
		t.Fatalf("error should name the claim index: %v", err)
	}
	if err := ValidateBatch(rows[:1]); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

// buildCorpus makes a deterministic conflicting dataset for the splitter
// property: entities with hash-diverse names, overlapping sources, labels.
func buildCorpus(nE int) *model.Dataset {
	db := model.NewRawDB()
	for e := 0; e < nE; e++ {
		entity := fmt.Sprintf("entity-%03d", e)
		for s := 0; s < 4; s++ {
			if (e+s)%3 == 0 {
				continue
			}
			db.Add(entity, fmt.Sprintf("attr-%d-0", e), fmt.Sprintf("source-%d", s))
			if s%2 == 0 {
				db.Add(entity, fmt.Sprintf("attr-%d-1", e), fmt.Sprintf("source-%d", s))
			}
		}
	}
	ds := model.Build(db)
	for _, f := range ds.FactsByEntity[0] {
		ds.Labels[f] = true
	}
	for _, f := range ds.FactsByEntity[2] {
		ds.Labels[f] = false
	}
	return ds
}

// claimSet and labelSet extract name-keyed multisets from a dataset, the
// representation that is invariant under entity/source re-indexing.
func claimSet(ds *model.Dataset) map[string]int {
	m := make(map[string]int)
	for _, c := range ds.Claims {
		f := ds.Facts[c.Fact]
		m[fmt.Sprintf("%s\x00%s\x00%s\x00%v",
			ds.Entities[f.Entity], f.Attribute, ds.Sources[c.Source], c.Observation)]++
	}
	return m
}

func labelSet(ds *model.Dataset) map[string]bool {
	m := make(map[string]bool)
	for f, v := range ds.Labels {
		fact := ds.Facts[f]
		m[ds.Entities[fact.Entity]+"\x00"+fact.Attribute] = v
	}
	return m
}

// TestClusterSplitterPreservesDatasetMultiset extends the split/merge
// property suite to the cluster splitter: partitioning a dataset by
// entity hash (store.SplitEntitiesFunc over PartitionOf) and merging the
// parts back preserves the claim/label multiset and the Summarize stats
// for any K.
func TestClusterSplitterPreservesDatasetMultiset(t *testing.T) {
	ds := buildCorpus(29)
	wantStats := store.Summarize(ds)
	wantClaims, wantLabels := claimSet(ds), labelSet(ds)
	for _, k := range []int{1, 2, 3, 4, 8, 31} {
		parts := store.SplitEntitiesFunc(ds, k, func(_ int, name string) int {
			return PartitionOf(name, k)
		})
		if len(parts) != k {
			t.Fatalf("k=%d: got %d parts", k, len(parts))
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			var err error
			if merged, err = store.Merge(merged, p); err != nil {
				t.Fatalf("k=%d: merge: %v", k, err)
			}
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("k=%d: merged dataset invalid: %v", k, err)
		}
		if got := store.Summarize(merged); got != wantStats {
			t.Fatalf("k=%d: stats drifted:\n got %+v\nwant %+v", k, got, wantStats)
		}
		gotClaims, gotLabels := claimSet(merged), labelSet(merged)
		if len(gotClaims) != len(wantClaims) {
			t.Fatalf("k=%d: claim multiset size %d != %d", k, len(gotClaims), len(wantClaims))
		}
		for key, n := range wantClaims {
			if gotClaims[key] != n {
				t.Fatalf("k=%d: claim %q ×%d != ×%d", k, key, gotClaims[key], n)
			}
		}
		if len(gotLabels) != len(wantLabels) {
			t.Fatalf("k=%d: label set size %d != %d", k, len(gotLabels), len(wantLabels))
		}
		for key, v := range wantLabels {
			if got, ok := gotLabels[key]; !ok || got != v {
				t.Fatalf("k=%d: label %q = %v, want %v", k, key, got, v)
			}
		}
		// Each part holds exactly the entities PartitionOf assigns it —
		// the hash map a router would use to find them again.
		for pi, p := range parts {
			for _, name := range p.Entities {
				if PartitionOf(name, k) != pi {
					t.Fatalf("k=%d: entity %q in part %d, owner %d", k, name, pi, PartitionOf(name, k))
				}
			}
		}
	}
}

// TestPartitionOfIsFNV1a pins the hash: the partition map is a wire-level
// contract (routers and operators must agree across processes and
// languages), so the function is FNV-1a 32-bit mod K, not an
// implementation detail free to drift.
func TestPartitionOfIsFNV1a(t *testing.T) {
	for _, e := range []string{"", "a", "entity-42", "café"} {
		h := fnv.New32a()
		h.Write([]byte(e))
		for _, k := range []int{2, 5, 16} {
			if want := int(h.Sum32() % uint32(k)); PartitionOf(e, k) != want {
				t.Fatalf("PartitionOf(%q, %d) = %d, want FNV-1a %d", e, k, PartitionOf(e, k), want)
			}
		}
	}
}
