package cluster

// Observability coverage for the cluster layer: the gauge merge rule
// table is pinned to the gauge families live processes actually expose
// (the /metrics analogue of TestStatsMergeRulesCoverLiveStats), and the
// router's merged GET /metrics is exercised on the in-process cluster
// harness — valid exposition, counters summed, gauges merged by rule,
// router families appended.

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"latenttruth/internal/obs"
	"latenttruth/internal/replica"
	"latenttruth/internal/serve"
	"latenttruth/internal/wal"
)

// scrapeProm fetches and parses url's Prometheus exposition.
func scrapeProm(t *testing.T, url string) []*obs.ParsedFamily {
	t.Helper()
	code, body := httpGet(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, code, body)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("GET %s: exposition does not parse: %v", url, err)
	}
	return fams
}

// promFamily finds a family by name, or nil.
func promFamily(fams []*obs.ParsedFamily, name string) *obs.ParsedFamily {
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// famSum adds every plain sample of a counter or gauge family.
func famSum(f *obs.ParsedFamily) float64 {
	var sum float64
	for _, s := range f.Samples {
		if s.Suffix == "" {
			sum += s.Value
		}
	}
	return sum
}

// TestGaugeMergeRulesCoverLiveMetrics pins the gauge rule table to the
// gauge families live processes actually expose: a durable primary (the
// richest serve registry — replication lag included) and a follower (the
// replica_* families). Every live gauge family must have a merge rule,
// and every rule must correspond to a family some live process emits.
// Adding a gauge without deciding its cluster semantics fails here (and
// the router's merged scrape errors loudly at runtime).
func TestGaugeMergeRulesCoverLiveMetrics(t *testing.T) {
	cfg := clusterServeConfig(serve.RefitFull)
	cfg.Durability = serve.Durability{DataDir: t.TempDir(), Fsync: wal.SyncNever}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	fcfg := clusterServeConfig(serve.RefitFull)
	fcfg.Durability = serve.Durability{DataDir: t.TempDir(), Fsync: wal.SyncNever}
	f, err := replica.Start(replica.Config{
		Primary:      ts.URL,
		Serve:        fcfg,
		PollWait:     300 * time.Millisecond,
		RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(func() { fts.Close(); f.Close() })

	live := make(map[string]bool)
	for _, url := range []string{ts.URL + "/metrics", fts.URL + "/metrics"} {
		for _, fam := range scrapeProm(t, url) {
			if fam.Kind == obs.KindGauge {
				live[fam.Name] = true
			}
		}
	}
	ruled := make(map[string]bool)
	for _, name := range GaugeMergeRuleNames() {
		ruled[name] = true
	}
	for name := range live {
		if !ruled[name] {
			t.Errorf("gauge family %q has no cluster merge rule (add it to gaugeMergeRules)", name)
		}
	}
	for name := range ruled {
		if !live[name] {
			t.Errorf("merge rule for %q, but no live process exposes such a gauge family", name)
		}
	}
}

// TestClusterMetricsMergedExposition drives ingest and refits through the
// router of a durable 2-partition cluster, then asserts the router's GET
// /metrics: a parseable exposition whose counters are the sum of the
// partitions', whose gauges follow the rule table, whose histograms keep
// the count == +Inf-bucket invariant, with the router's own families
// appended.
func TestClusterMetricsMergedExposition(t *testing.T) {
	const k = 2
	corpus := clusterCorpus(t)
	batches := chunkRows(positiveClaimRows(corpus.Dataset), 2)
	tc := newTestCluster(t, k, serve.RefitFull, true)
	for _, b := range batches {
		mustIngest(t, tc.router.URL, b)
		mustRefit(t, tc.router.URL)
	}

	// Direct partition scrapes first: monotone counters make them lower
	// bounds for the merged scrape taken afterwards, and gauges that only
	// move on refit (seq, dirty set) are exact.
	var partRequests float64
	minSeq := math.Inf(1)
	for i := 0; i < k; i++ {
		fams := scrapeProm(t, tc.url(i)+"/metrics")
		reqs := promFamily(fams, "http_requests_total")
		if reqs == nil {
			t.Fatalf("partition %d exposes no http_requests_total", i)
		}
		partRequests += famSum(reqs)
		seq := promFamily(fams, "snapshot_seq")
		if seq == nil || len(seq.Samples) != 1 {
			t.Fatalf("partition %d snapshot_seq missing or multi-sample: %+v", i, seq)
		}
		minSeq = math.Min(minSeq, seq.Samples[0].Value)
	}

	resp, err := http.Get(tc.router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("router /metrics Content-Type %q", ct)
	}
	merged, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}

	// Counters sum across partitions. refit_total is exact: every routed
	// /refit fans out to all k partitions, and nothing else refits.
	refits := promFamily(merged, "refit_total")
	if refits == nil {
		t.Fatal("merged exposition has no refit_total")
	}
	if got, want := famSum(refits), float64(k*len(batches)); got != want {
		t.Errorf("merged refit_total = %v, want %v (k=%d partitions x %d routed refits)", got, want, k, len(batches))
	}
	// http_requests_total only grows, so the merged sum must dominate the
	// earlier direct scrapes' total.
	reqs := promFamily(merged, "http_requests_total")
	if reqs == nil {
		t.Fatal("merged exposition has no http_requests_total")
	}
	if got := famSum(reqs); got < partRequests {
		t.Errorf("merged http_requests_total = %v < %v summed from direct partition scrapes", got, partRequests)
	}

	// Gauge rules: snapshot_seq is a GaugeMin (the refit round every
	// partition has reached) and build_info a GaugeSum whose constant-1
	// children count members per (version, commit) — one build here.
	seq := promFamily(merged, "snapshot_seq")
	if seq == nil || len(seq.Samples) != 1 {
		t.Fatalf("merged snapshot_seq missing or multi-sample: %+v", seq)
	}
	if seq.Samples[0].Value != minSeq {
		t.Errorf("merged snapshot_seq = %v, want partition minimum %v", seq.Samples[0].Value, minSeq)
	}
	build := promFamily(merged, "build_info")
	if build == nil || len(build.Samples) != 1 {
		t.Fatalf("merged build_info missing or split across builds: %+v", build)
	}
	if build.Samples[0].Value != float64(k) {
		t.Errorf("merged build_info = %v, want %d (one member per partition, same build)", build.Samples[0].Value, k)
	}

	// Histogram invariant survives the union re-bucketing: per labelset,
	// _count equals the +Inf bucket.
	hist := promFamily(merged, "http_request_seconds")
	if hist == nil || hist.Kind != obs.KindHistogram {
		t.Fatal("merged exposition has no http_request_seconds histogram")
	}
	counts := make(map[string]float64)
	infs := make(map[string]float64)
	for _, s := range hist.Samples {
		key := ""
		for _, l := range s.Labels {
			if l.Name != "le" {
				key += l.Name + "=" + l.Value + ","
			}
		}
		switch {
		case s.Suffix == "_count":
			counts[key] = s.Value
		case s.Suffix == "_bucket" && hasLabel(s.Labels, "le", "+Inf"):
			infs[key] = s.Value
		}
	}
	if len(counts) == 0 {
		t.Fatal("merged http_request_seconds has no _count samples")
	}
	for key, c := range counts {
		if infs[key] != c {
			t.Errorf("series {%s}: _count %v != +Inf bucket %v", key, c, infs[key])
		}
	}

	// The router's own families ride behind the merge: the fan-out legs
	// of this very scrape are observed before the registry is written.
	fanout := promFamily(merged, "cluster_fanout_seconds")
	if fanout == nil || len(fanout.Samples) == 0 {
		t.Fatal("router appended no cluster_fanout_seconds samples")
	}
	if promFamily(merged, "router_http_requests_total") == nil {
		t.Fatal("router appended no router_http_requests_total family")
	}
}

func hasLabel(labels []obs.Label, name, value string) bool {
	for _, l := range labels {
		if l.Name == name && l.Value == value {
			return true
		}
	}
	return false
}
