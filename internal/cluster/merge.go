package cluster

import (
	"fmt"
	"sort"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/serve"
	"latenttruth/internal/shard"
)

// MergeQuality folds the partitions' per-source expected confusion counts
// (their GET /partition/quality payloads, in partition order) into one
// global count table and reads the merged quality off the shared closed
// form — the cluster-level reconcile barrier of internal/shard, applied
// once at read time instead of every S sweeps.
//
// The sum is exact in the partition structure: every claim lives in
// exactly one partition, so no cell is counted twice, and summing in
// fixed partition order makes the float accumulation deterministic. The
// returned rows are in Table 8 order (decreasing sensitivity), matching
// a single server's /quality; for a single contributing partition the
// rows are bit-identical to that partition's own /quality table.
//
// All partitions must agree on priors and threshold — a mismatch means
// the cluster is misconfigured (the merged counts would mix incompatible
// Beta bases), and the merge fails loudly instead of averaging it away.
func MergeQuality(parts []serve.PartitionQuality) ([]model.SourceQuality, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cluster: no partition quality to merge")
	}
	base := parts[0]
	for i, p := range parts[1:] {
		if p.Priors != base.Priors {
			return nil, fmt.Errorf("cluster: partition %d priors %+v != partition 0 priors %+v",
				i+1, p.Priors, base.Priors)
		}
		if p.Threshold != base.Threshold {
			return nil, fmt.Errorf("cluster: partition %d threshold %v != partition 0 threshold %v",
				i+1, p.Threshold, base.Threshold)
		}
	}
	var global map[string][2][2]float64
	for _, p := range parts {
		global = shard.MergeCounts(global, p.Counts)
	}
	names := make([]string, 0, len(global))
	for name := range global {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]model.SourceQuality, 0, len(names))
	for _, name := range names {
		rows = append(rows, core.QualityFromCounts(name, global[name], base.Priors))
	}
	return core.RankedQuality(rows), nil
}

// mergeRule is how one /stats field combines across partitions.
type mergeRule int

const (
	// ruleSum adds the partitions' values: additive counters and corpus
	// sizes, valid because partitions are disjoint in entities/claims.
	ruleSum mergeRule = iota
	// ruleMin takes the minimum: cluster-wide floors, e.g. seq (the refit
	// round every partition has reached) and uptime (the youngest member
	// bounds how long the whole cluster has been continuously up).
	ruleMin
	// ruleMax takes the maximum: cluster-wide staleness/latency bounds,
	// e.g. freshness_ms (the worst ingest-to-publish wait anywhere is the
	// bound a cluster client must assume) and last_refit_ms.
	ruleMax
	// ruleAnd ANDs booleans: the cluster is ready iff every partition is.
	ruleAnd
	// ruleCommon keeps the value when all partitions agree and reports
	// "mixed" otherwise (policies can legitimately differ transiently,
	// e.g. one partition's last refit took the dirty path).
	ruleCommon
	// ruleSources is the per-source cardinality: sources span partitions,
	// so the merged value is the size of the union of source names (from
	// the merged quality counts), which the caller supplies — a sum would
	// double-count every source claiming in more than one partition.
	ruleSources
	// ruleStorage merges the nested storage object: its "kind" string
	// combines like ruleCommon (a cluster mixing memory and segment
	// backends reports "mixed"), and every numeric field sums — row,
	// segment, byte and skip counts are all additive across disjoint
	// partitions.
	ruleStorage
)

// statsMergeRules assigns every /stats field its merge rule. MergeStats
// fails loudly on a field absent from this table, so adding a field to
// serve's statsResponse without deciding its cluster merge semantics is
// an error surfaced by the first routed /stats call (and by the rule
// coverage test), never a silently wrong default.
var statsMergeRules = map[string]mergeRule{
	"ready":           ruleAnd,
	"seq":             ruleMin,
	"mode":            ruleCommon,
	"policy":          ruleCommon,
	"pending":         ruleSum,
	"ingested_total":  ruleSum,
	"refits":          ruleSum,
	"full_refits":     ruleSum,
	"dirty_refits":    ruleSum,
	"last_refit_ms":   ruleMax,
	"freshness_ms":    ruleMax,
	"dirty_entities":  ruleSum,
	"uptime_s":        ruleMin,
	"encode_failures": ruleSum,
	// A healthy cluster runs one build; "mixed" flags a rolling deploy.
	"version":         ruleCommon,
	"commit":          ruleCommon,
	"entities":        ruleSum,
	"sources":         ruleSources,
	"facts":           ruleSum,
	"claims":          ruleSum,
	"positive_claims": ruleSum,
	"negative_claims": ruleSum,
	"labeled":         ruleSum,
	"storage":         ruleStorage,
}

// MergeStats combines the partitions' decoded /stats payloads field by
// field per statsMergeRules. sources is the size of the merged source-name
// union (from MergeQuality's input), or -1 when unknown — then the field
// falls back to the per-partition maximum, a documented lower bound.
// A field with no rule is an error: new /stats fields must pick a rule.
func MergeStats(parts []map[string]any, sources int) (map[string]any, error) {
	out := make(map[string]any)
	for pi, part := range parts {
		for field, v := range part {
			rule, ok := statsMergeRules[field]
			if !ok {
				return nil, fmt.Errorf("cluster: no merge rule for /stats field %q (add one to statsMergeRules)", field)
			}
			prev, seen := out[field]
			switch rule {
			case ruleAnd:
				b, ok := v.(bool)
				if !ok {
					return nil, fmt.Errorf("cluster: /stats field %q: partition %d sent %T, want bool", field, pi, v)
				}
				if !seen {
					out[field] = b
				} else {
					out[field] = prev.(bool) && b
				}
			case ruleCommon:
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("cluster: /stats field %q: partition %d sent %T, want string", field, pi, v)
				}
				if !seen {
					out[field] = s
				} else if prev.(string) != s {
					out[field] = "mixed"
				}
			case ruleStorage:
				m, ok := v.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("cluster: /stats field %q: partition %d sent %T, want object", field, pi, v)
				}
				var acc map[string]any
				if !seen {
					acc = make(map[string]any, len(m))
					out[field] = acc
				} else {
					acc = prev.(map[string]any)
				}
				for k, sv := range m {
					cur, found := acc[k]
					switch val := sv.(type) {
					case string:
						if !found {
							acc[k] = val
						} else if cs, ok := cur.(string); !ok || cs != val {
							acc[k] = "mixed"
						}
					case float64:
						if !found {
							acc[k] = val
						} else if cf, ok := cur.(float64); ok {
							acc[k] = cf + val
						} else {
							return nil, fmt.Errorf("cluster: /stats storage field %q: partitions disagree on its type", k)
						}
					default:
						return nil, fmt.Errorf("cluster: /stats storage field %q: partition %d sent %T, want string or number", k, pi, sv)
					}
				}
			default:
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("cluster: /stats field %q: partition %d sent %T, want number", field, pi, v)
				}
				switch {
				case !seen:
					out[field] = f
				case rule == ruleMin && f < prev.(float64):
					out[field] = f
				case rule == ruleMax || rule == ruleSources:
					if f > prev.(float64) {
						out[field] = f
					}
				case rule == ruleSum:
					out[field] = prev.(float64) + f
				}
			}
		}
	}
	if sources >= 0 {
		out["sources"] = float64(sources)
	}
	return out, nil
}

// StatsMergeRuleNames returns the fields covered by the merge rule table,
// for the coverage test that pins the table to serve's statsResponse.
func StatsMergeRuleNames() []string {
	names := make([]string, 0, len(statsMergeRules))
	for f := range statsMergeRules {
		names = append(names, f)
	}
	sort.Strings(names)
	return names
}
