package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"latenttruth/internal/obs"
)

// routerMetrics is the router's own instrument set: fan-out latency and
// error counts per partition, plus the router_http_* request middleware.
// These live in a router-owned registry whose family names are disjoint
// from anything a partition exposes, so the merged partition scrape and
// the router's own families concatenate into one valid exposition.
type routerMetrics struct {
	fanout     *obs.HistogramVec // cluster_fanout_seconds{partition}
	partErrors *obs.CounterVec   // cluster_partition_errors_total{partition}
}

func newRouterMetrics(r *obs.Registry) *routerMetrics {
	return &routerMetrics{
		fanout: r.HistogramVec("cluster_fanout_seconds",
			"Per-partition call latency inside a scatter-gather fan-out.",
			nil, "partition"),
		partErrors: r.CounterVec("cluster_partition_errors_total",
			"Failed partition calls (fan-out legs and proxied requests).",
			"partition"),
	}
}

// observeLeg records one fan-out leg's outcome.
func (m *routerMetrics) observeLeg(partition int, seconds float64, err error) {
	if m == nil {
		return
	}
	p := strconv.Itoa(partition)
	m.fanout.With(p).Observe(seconds)
	if err != nil {
		m.partErrors.With(p).Inc()
	}
}

// proxyError records a failed proxied (non-fan-out) partition call.
func (m *routerMetrics) proxyError(partition int) {
	if m == nil {
		return
	}
	m.partErrors.With(strconv.Itoa(partition)).Inc()
}

// gaugeMergeRules assigns every gauge family a partition exposes its
// cross-partition merge rule, mirroring the statsMergeRules contract:
// counters and histograms always sum (partitions are disjoint in work),
// but a gauge's semantics decide between sum, max and min — and a gauge
// family absent from this table fails the merged /metrics scrape loudly,
// so adding a gauge to serve without deciding its cluster semantics is
// an error surfaced by the first scrape (and by the coverage test),
// never a silently wrong default.
var gaugeMergeRules = map[string]obs.GaugeRule{
	// One per build: summing the constant-1 children counts members per
	// (version, commit), which is exactly what a rolling deploy shows.
	"build_info": obs.GaugeSum,
	// The youngest member bounds how long the cluster has been up.
	"process_uptime_seconds": obs.GaugeMin,
	// Backlogs and workloads add across disjoint partitions.
	"pending_mutations":    obs.GaugeSum,
	"refit_dirty_entities": obs.GaugeSum,
	"http_in_flight":       obs.GaugeSum,
	// Cluster floors and staleness/lag bounds, matching /stats semantics
	// (seq is the refit round every partition has reached; freshness and
	// follower lag are the worst case a cluster client must assume).
	"snapshot_seq":                     obs.GaugeMin,
	"refit_freshness_seconds":          obs.GaugeMax,
	"replication_follower_lag_batches": obs.GaugeMax,
	// Follower families, for scraping a replica fleet through the same
	// merger: caught-up is an AND (min over 0/1), applied seq a head max.
	"replica_caught_up":        obs.GaugeMin,
	"replica_last_applied_seq": obs.GaugeMax,
	// Storage shape: rows, segments and bytes add across disjoint
	// partitions, same as the /stats storage block.
	"storage_resident_rows": obs.GaugeSum,
	"storage_disk_rows":     obs.GaugeSum,
	"storage_segments":      obs.GaugeSum,
	"storage_segment_bytes": obs.GaugeSum,
}

// GaugeMergeRuleNames returns the gauge families covered by the rule
// table, for the coverage test that pins the table to serve's registry.
func GaugeMergeRuleNames() []string {
	names := make([]string, 0, len(gaugeMergeRules))
	for n := range gaugeMergeRules {
		names = append(names, n)
	}
	return names
}

// getRaw fetches path from partition p as raw bytes (the /metrics scrape
// is text exposition, not JSON).
func (rt *Router) getRaw(r *http.Request, p int, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.cfg.Partitions[p]+path, nil)
	if err != nil {
		return nil, partitionError{partition: p, err: err}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, partitionError{partition: p, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxClaimsBody))
	if err != nil {
		return nil, partitionError{partition: p, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, partitionError{partition: p, status: resp.StatusCode,
			err: fmt.Errorf("status %d scraping %s", resp.StatusCode, path)}
	}
	return body, nil
}

// handleMetrics serves the cluster-wide exposition: every partition's
// /metrics scraped concurrently, merged per kind (counters and histogram
// series sum; gauges follow gaugeMergeRules; histogram bucket ladders
// union and re-bucket), followed by the router's own cluster_* and
// router_http_* families. One scrape shows the whole cluster.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	bodies := make([][]byte, rt.k())
	err := rt.fanout(func(i int) error {
		b, err := rt.getRaw(r, i, "/metrics")
		bodies[i] = b
		return err
	})
	if err != nil {
		rt.writePartitionError(w, firstPartitionError(err))
		return
	}
	merged, err := obs.Merge(bodies, gaugeMergeRules)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(merged); err != nil {
		return
	}
	rt.reg.WritePrometheus(w)
}
