// Package cluster scales the write path horizontally: N independent
// serve.Server primaries each own an entity-hash range of the corpus, and
// a stateless router splits ingest batches by entity hash, fans them out,
// and scatter-gathers reads.
//
// The partitioning is the cluster-level form of the entity sharding in
// internal/shard: every entity — and therefore every fact, claim, and
// label — belongs to exactly one partition, so per-partition truth tables
// concatenate losslessly and per-source expected confusion counts sum
// exactly (no cell is ever counted twice). The router merges /quality by
// summing each partition's count basis (GET /partition/quality) in
// partition order and re-applying the one shared closed form
// (core.QualityFromCounts) — the same reconcile-then-read-off shape as
// shard.Fitter's sync barrier, lifted over HTTP.
//
// Equivalence to a single primary comes in two grades, mirroring the
// repo's determinism ladder:
//
//   - Router losslessness (exact, any K, any policy): routed reads are
//     bit-identical to the union/merge of the partitions' own responses.
//     The cluster test suite asserts this at the byte level.
//   - Cluster vs single primary: with K=1 the router forwards everything
//     to the one partition in arrival order, so the fit — and every
//     response — is value-identical to a single primary. With K>1 the
//     partitions run uncoupled Gibbs chains (each estimates source
//     quality from its own range), so probabilities and quality agree
//     with a joint single-primary fit within a small drift bound and
//     thresholded decisions match — the same contract the S>1 sharded
//     fit documents, measured by the cluster equivalence suite.
//
// Each primary keeps its own WAL, checkpoints, refit loop and follower
// fleet (internal/serve and internal/wal are reused unchanged), so
// partition recovery is independent: killing one primary 503s writes to
// its range (with the partition id) while every other range keeps
// serving, and restarting it recovers bit-identically from its own log.
package cluster
