package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"strings"
	"time"

	"latenttruth/internal/wal"
)

// Sentinel outcomes of primary requests the follower loop branches on.
var (
	// errGone is a 410 from /replication/wal: the history this follower
	// needs was truncated (its cursor was evicted) — re-bootstrap.
	errGone = errors.New("replica: requested log history is gone")
	// errNoCheckpoint is a 404 from /replication/checkpoint: the primary
	// has never refitted, so there is nothing to bootstrap — start empty
	// and tail from sequence 1.
	errNoCheckpoint = errors.New("replica: primary has no checkpoint yet")
)

// client performs the two replication requests against one primary.
type client struct {
	base *url.URL
	hc   *http.Client
}

func newClient(primary string, hc *http.Client) (*client, error) {
	base, err := url.Parse(primary)
	if err != nil {
		return nil, fmt.Errorf("replica: primary URL %q: %w", primary, err)
	}
	if base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("replica: primary URL %q needs a scheme and host", primary)
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &client{base: base, hc: hc}, nil
}

// endpoint resolves a replication path plus query on the primary.
func (c *client) endpoint(path string, query url.Values) string {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = query.Encode()
	return u.String()
}

// checkpointBundle is a downloaded checkpoint, CRC-verified and ready to
// install. posterior is nil when the primary's checkpoint predates
// snapshot restoration (manifest PosteriorCRC zero).
type checkpointBundle struct {
	manifest  wal.Manifest
	triples   []byte
	quality   []byte
	posterior []byte
}

// fetchCheckpoint downloads and verifies the primary's newest checkpoint.
func (c *client) fetchCheckpoint(ctx context.Context) (*checkpointBundle, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint("/replication/checkpoint", nil), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: fetching checkpoint: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, errNoCheckpoint
	default:
		return nil, fmt.Errorf("replica: fetching checkpoint: status %d", resp.StatusCode)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		return nil, fmt.Errorf("replica: checkpoint response is not multipart (%v)", err)
	}
	parts := map[string][]byte{}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("replica: reading checkpoint stream: %w", err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			return nil, fmt.Errorf("replica: reading checkpoint part %q: %w", p.FileName(), err)
		}
		parts[p.FileName()] = data
	}

	b := &checkpointBundle{triples: parts["triples.csv"], quality: parts["quality.csv"],
		posterior: parts[wal.PosteriorName]}
	raw, ok := parts["MANIFEST.json"]
	if !ok {
		return nil, fmt.Errorf("replica: checkpoint stream is missing MANIFEST.json")
	}
	if err := json.Unmarshal(raw, &b.manifest); err != nil {
		return nil, fmt.Errorf("replica: checkpoint manifest: %w", err)
	}
	// Verify before installing: a truncated or corrupted transfer must
	// never become local state.
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	if got := crc32.Checksum(b.triples, castagnoli); got != b.manifest.TriplesCRC {
		return nil, fmt.Errorf("replica: checkpoint triples CRC %08x, manifest says %08x", got, b.manifest.TriplesCRC)
	}
	if got := crc32.Checksum(b.quality, castagnoli); got != b.manifest.QualityCRC {
		return nil, fmt.Errorf("replica: checkpoint quality CRC %08x, manifest says %08x", got, b.manifest.QualityCRC)
	}
	if b.manifest.PosteriorCRC != 0 {
		if b.posterior == nil {
			return nil, fmt.Errorf("replica: checkpoint stream is missing %s (manifest expects CRC %08x)",
				wal.PosteriorName, b.manifest.PosteriorCRC)
		}
		if got := crc32.Checksum(b.posterior, castagnoli); got != b.manifest.PosteriorCRC {
			return nil, fmt.Errorf("replica: checkpoint posterior CRC %08x, manifest says %08x", got, b.manifest.PosteriorCRC)
		}
	} else {
		b.posterior = nil // an unexpected part is not installed unverified
	}
	return b, nil
}

// pollWAL long-polls the primary's log from seq, identifying this
// follower so the primary maintains its truncation cursor. It returns the
// decoded records (possibly none) in sequence order.
func (c *client) pollWAL(ctx context.Context, from uint64, id string, wait time.Duration) ([]wal.Batch, error) {
	q := url.Values{}
	q.Set("from", fmt.Sprint(from))
	q.Set("follower", id)
	q.Set("wait", wait.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint("/replication/wal", q), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: polling wal: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return nil, errGone
	default:
		return nil, fmt.Errorf("replica: polling wal: status %d", resp.StatusCode)
	}
	var out []wal.Batch
	next := from
	br := bufio.NewReader(resp.Body)
	for {
		b, err := wal.DecodeBatch(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		// The log is contiguous, so a poll from N yields N, N+1, ...; any
		// other shape is a protocol violation worth failing loudly on.
		if b.Seq != next {
			return nil, fmt.Errorf("replica: stream out of order: got seq %d, want %d", b.Seq, next)
		}
		next++
		out = append(out, b)
	}
}
