package replica

import (
	"net/http"

	"latenttruth/internal/obs"
)

// replicaMetrics is the follower's own instrument set. It lives in a
// registry owned by the Follower, not the inner serve.Server: the server
// (and its registry) is replaced wholesale on re-bootstrap, while the
// replication counters must survive exactly that event — a re-bootstrap
// is the most interesting thing a follower's metrics can show.
type replicaMetrics struct {
	bootstraps  *obs.Counter
	batches     *obs.Counter
	rows        *obs.Counter
	refits      *obs.Counter
	polls       *obs.Counter
	pollErrors  *obs.Counter
	caughtUp    *obs.Gauge
	lastApplied *obs.Gauge
}

func newReplicaMetrics(r *obs.Registry) *replicaMetrics {
	return &replicaMetrics{
		bootstraps: r.Counter("replica_bootstraps_total",
			"Checkpoint bootstraps, initial and after cursor eviction."),
		batches: r.Counter("replica_applied_batches_total",
			"Replicated log records applied."),
		rows: r.Counter("replica_applied_rows_total",
			"Claim rows applied from replicated batches."),
		refits: r.Counter("replica_applied_refits_total",
			"Refit markers replayed from the primary's log."),
		polls: r.Counter("replica_polls_total",
			"Successful tail polls against the primary."),
		pollErrors: r.Counter("replica_poll_errors_total",
			"Failed polls and failed record applies (each retry counts)."),
		caughtUp: r.Gauge("replica_caught_up",
			"1 when the newest poll found this follower at the primary's head."),
		lastApplied: r.Gauge("replica_last_applied_seq",
			"Newest primary log sequence mirrored into the local WAL."),
	}
}

// handleMetrics serves the follower's merged exposition: the inner
// server's families (request latency, refit spans' histograms, WAL —
// whatever the current server has recorded since it was published)
// followed by the follower-owned replica_* families. The family sets are
// disjoint, so plain concatenation is a valid exposition.
func (f *Follower) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := f.Server().Registry().WritePrometheus(w); err != nil {
		return
	}
	f.reg.WritePrometheus(w)
}
