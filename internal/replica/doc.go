// Package replica turns the truth-serving daemon into a horizontally
// scalable read fleet: a follower bootstraps from a primary's newest
// checkpoint (GET /replication/checkpoint, CRC-verified against the
// manifest) and then tails the primary's write-ahead log over HTTP
// (GET /replication/wal, a long-poll streaming the WAL's own CRC32C
// record framing), mirroring every record — claim batches and refit
// markers alike — into its own durable log before applying it.
//
// Because the log carries the primary's refit schedule (refit-marker
// control records written at every drain cut), the follower does not just
// converge on the same data: it replays the same refits over the same
// cumulative datasets with the same accumulated source-quality state, so
// snapshot N on a follower is bit-identical to snapshot N on the primary
// — truth probabilities, predictions, quality tables and all. Reads
// (/truth, /quality, /records, /stats) are served locally from the
// follower's snapshot-swapped state; writes are rejected with 503 and the
// primary's address.
//
// The mirrored local log is what makes restarts cheap: a follower that
// comes back up recovers from its own checkpoints and WAL tail exactly
// like a primary would, then resumes tailing from where its log ends —
// it never re-downloads a checkpoint unless the primary evicted its
// cursor and truncated the history it still needs (410 Gone), in which
// case it re-bootstraps from a fresh checkpoint automatically. And since
// the follower's serve.Server is itself durable, it exposes the same
// /replication endpoints: followers can fan out behind followers,
// shipping one primary's log through a replication tree.
package replica
