package replica

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"latenttruth/internal/obs"
	"latenttruth/internal/serve"
	"latenttruth/internal/wal"
)

// Config parameterizes a follower.
type Config struct {
	// Primary is the primary's base URL (e.g. "http://primary:8080").
	// Required.
	Primary string
	// Serve is the follower's serving configuration. Durability.DataDir is
	// required (the mirrored log is the restart state); FollowerOf is set
	// automatically. For bit-identical snapshots the model-relevant fields
	// (LTM, Policy, FullEvery, Threshold, Shards, SyncEvery) must match
	// the primary's — a mismatch is detected via the checkpoint's config
	// hash and demotes the follower to re-deriving quality on its own.
	Serve serve.Config
	// ID identifies this follower to the primary (its truncation cursor
	// key). Empty generates one and persists it in DataDir/follower.id so
	// restarts keep the same cursor.
	ID string
	// PollWait is the long-poll bound requested from the primary when
	// caught up (default 10s; the primary may cap it lower).
	PollWait time.Duration
	// RetryBackoff is the pause after a failed poll or apply (default 1s).
	RetryBackoff time.Duration
	// HTTPClient overrides the client used against the primary.
	HTTPClient *http.Client
	// Logger receives replication diagnostics; nil discards them.
	Logger *log.Logger
	// LogLevel gates the follower's logger (default info). The inner
	// server's level is Serve.Obs.LogLevel, set independently.
	LogLevel obs.Level
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.PollWait <= 0 {
		c.PollWait = 10 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Second
	}
	return c
}

// Stats is a point-in-time summary of a follower's replication progress
// (the GET /replication/status payload).
type Stats struct {
	Primary string `json:"primary"`
	ID      string `json:"id"`
	// Bootstrapped reports whether THIS process downloaded a checkpoint at
	// start; a restart that resumed from local state reports false.
	Bootstrapped bool `json:"bootstrapped"`
	// BootstrapSeq is the snapshot sequence of the installed checkpoint
	// (0 when none was needed).
	BootstrapSeq int64 `json:"bootstrap_seq,omitempty"`
	// Rebootstraps counts mid-life re-bootstraps after cursor eviction.
	Rebootstraps int64 `json:"rebootstraps,omitempty"`
	// AppliedBatches / AppliedRows / AppliedRefits count replicated
	// records applied by this process.
	AppliedBatches int64 `json:"applied_batches"`
	AppliedRows    int64 `json:"applied_rows"`
	AppliedRefits  int64 `json:"applied_refits"`
	// LastAppliedSeq is the newest mirrored log record; NextSeq the next
	// one the follower will request.
	LastAppliedSeq uint64 `json:"last_applied_seq"`
	NextSeq        uint64 `json:"next_seq"`
	// Polls / PollErrors count tail requests; CaughtUp reports whether the
	// newest poll found the follower at the primary's head.
	Polls      int64 `json:"polls"`
	PollErrors int64 `json:"poll_errors,omitempty"`
	CaughtUp   bool  `json:"caught_up"`
	// LastContactMS is the time since the last successful poll (-1 before
	// the first).
	LastContactMS float64 `json:"last_contact_ms"`
}

// running pairs a serving server with its (cached) handler.
type running struct {
	srv *serve.Server
	h   http.Handler
}

// Follower is a read replica: a serve.Server in follower mode fed by a
// background loop tailing the primary's log.
type Follower struct {
	cfg    Config
	client *client
	id     string

	cur atomic.Pointer[running]

	// reg holds the follower-owned replica_* metric families; logger is
	// the leveled logger replication diagnostics route through.
	reg    *obs.Registry
	met    *replicaMetrics
	logger *obs.Logger

	mu          sync.Mutex
	stats       Stats
	lastContact time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Start bootstraps (if the data directory is cold) and launches a
// follower of cfg.Primary. The returned follower is already serving
// whatever state it recovered or bootstrapped; the tail loop catches it
// up and keeps it current. Call Close to stop.
func Start(cfg Config) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.Primary == "" {
		return nil, fmt.Errorf("replica: Config.Primary is required")
	}
	dataDir := cfg.Serve.Durability.DataDir
	if dataDir == "" {
		return nil, fmt.Errorf("replica: Serve.Durability.DataDir is required (the mirrored log is the restart state)")
	}
	cfg.Serve.FollowerOf = cfg.Primary
	cl, err := newClient(cfg.Primary, cfg.HTTPClient)
	if err != nil {
		return nil, err
	}
	id, err := followerID(dataDir, cfg.ID)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, client: cl, id: id, ctx: ctx, cancel: cancel}
	f.reg = obs.NewRegistry()
	f.met = newReplicaMetrics(f.reg)
	f.logger = obs.NewLogger(cfg.Logger, cfg.LogLevel)
	f.stats = Stats{Primary: cfg.Primary, ID: id}

	has, err := wal.HasState(dataDir)
	if err != nil {
		cancel()
		return nil, err
	}
	if !has {
		// Cold directory: bootstrap from the primary's newest checkpoint.
		// A checkpoint-less primary just means we tail from sequence 1.
		bundle, err := cl.fetchCheckpoint(ctx)
		switch {
		case errors.Is(err, errNoCheckpoint):
			f.logf("replica: primary has no checkpoint yet; starting empty")
		case err != nil:
			cancel()
			return nil, err
		default:
			if err := installCheckpoint(dataDir, bundle); err != nil {
				cancel()
				return nil, err
			}
			f.stats.Bootstrapped = true
			f.stats.BootstrapSeq = bundle.manifest.Seq
			f.met.bootstraps.Inc()
			f.logf("replica: bootstrapped from checkpoint seq=%d (wal_seq=%d)",
				bundle.manifest.Seq, bundle.manifest.WALSeq)
		}
	} else {
		f.logf("replica: resuming from local state in %s (no re-bootstrap)", dataDir)
	}

	srv, err := serve.New(cfg.Serve)
	if err != nil {
		cancel()
		return nil, err
	}
	f.publish(srv)
	f.wg.Add(1)
	go f.loop()
	return f, nil
}

// followerID returns the configured id, or loads/creates the persisted one.
func followerID(dataDir, configured string) (string, error) {
	if configured != "" {
		return configured, nil
	}
	path := filepath.Join(dataDir, "follower.id")
	if data, err := os.ReadFile(path); err == nil {
		if id := strings.TrimSpace(string(data)); id != "" {
			return id, nil
		}
	}
	raw := make([]byte, 8)
	if _, err := rand.Read(raw); err != nil {
		return "", fmt.Errorf("replica: generating follower id: %w", err)
	}
	id := "follower-" + hex.EncodeToString(raw)
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return "", fmt.Errorf("replica: %w", err)
	}
	if err := os.WriteFile(path, []byte(id+"\n"), 0o644); err != nil {
		return "", fmt.Errorf("replica: persisting follower id: %w", err)
	}
	return id, nil
}

// installCheckpoint writes a verified bundle into the data directory's
// checkpoint store, preserving the primary's manifest (sequence, WAL
// coverage, counters, config hash and policy state) so recovery restores
// the primary's exact post-checkpoint state.
func installCheckpoint(dataDir string, b *checkpointBundle) error {
	st, err := wal.OpenStore(wal.CheckpointDir(dataDir))
	if err != nil {
		return err
	}
	var posterior func(io.Writer) error
	if b.posterior != nil {
		posterior = func(w io.Writer) error { _, werr := w.Write(b.posterior); return werr }
	}
	return st.Write(b.manifest,
		func(w io.Writer) error { _, werr := w.Write(b.triples); return werr },
		func(w io.Writer) error { _, werr := w.Write(b.quality); return werr },
		posterior)
}

// publish swaps the serving server (and its cached handler).
func (f *Follower) publish(srv *serve.Server) {
	f.cur.Store(&running{srv: srv, h: srv.Handler()})
}

// Server returns the follower's current serving server. The pointer is
// replaced only by a re-bootstrap.
func (f *Follower) Server() *serve.Server { return f.cur.Load().srv }

// Handler serves the follower's read API plus GET /replication/status
// and a GET /metrics that concatenates the inner server's exposition
// with the follower-owned replica_* families.
// Writes are rejected with the primary's address by the underlying server;
// the /replication feed endpoints are live too, so further followers can
// chain off this one.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replication/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.Stats())
	})
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.cur.Load().h.ServeHTTP(w, r)
	}))
	return mux
}

// Stats returns a snapshot of the follower's replication progress.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	st := f.stats
	last := f.lastContact
	f.mu.Unlock()
	st.NextSeq = f.Server().NextReplicationSeq()
	if last.IsZero() {
		st.LastContactMS = -1
	} else {
		st.LastContactMS = float64(time.Since(last)) / float64(time.Millisecond)
	}
	return st
}

// Close stops the tail loop (aborting an in-flight long-poll) and shuts
// the serving server down. Reads against the last snapshot keep working
// on the underlying handler until the process exits.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
	f.Server().Close()
}

// logf logs at info through the configured logger, if any; warnf and
// errorf are the leveled variants. Message text is identical to the
// pre-leveled output.
func (f *Follower) logf(format string, args ...any) {
	f.logger.Infof(format, args...)
}

func (f *Follower) warnf(format string, args ...any) {
	f.logger.Warnf(format, args...)
}

func (f *Follower) errorf(format string, args ...any) {
	f.logger.Errorf(format, args...)
}

// sleep pauses for d or until Close.
func (f *Follower) sleep(d time.Duration) {
	select {
	case <-time.After(d):
	case <-f.ctx.Done():
	}
}

// loop is the tail loop: poll the primary from the first sequence the
// local log is missing, mirror and apply what arrives, re-bootstrap on
// 410, back off on errors.
func (f *Follower) loop() {
	defer f.wg.Done()
	for f.ctx.Err() == nil {
		srv := f.Server()
		next := srv.NextReplicationSeq()
		batches, err := f.client.pollWAL(f.ctx, next, f.id, f.cfg.PollWait)
		switch {
		case errors.Is(err, errGone):
			f.warnf("replica: history before seq %d is gone (cursor evicted); re-bootstrapping", next)
			if rerr := f.rebootstrap(); rerr != nil {
				f.errorf("replica: re-bootstrap: %v", rerr)
				f.sleep(f.cfg.RetryBackoff)
			}
			continue
		case err != nil:
			if f.ctx.Err() != nil {
				return
			}
			f.mu.Lock()
			f.stats.PollErrors++
			f.mu.Unlock()
			f.met.pollErrors.Inc()
			f.warnf("replica: poll from %d: %v", next, err)
			f.sleep(f.cfg.RetryBackoff)
			continue
		}
		f.mu.Lock()
		f.stats.Polls++
		f.stats.CaughtUp = len(batches) == 0
		f.lastContact = time.Now()
		f.mu.Unlock()
		f.met.polls.Inc()
		if len(batches) == 0 {
			f.met.caughtUp.Set(1)
		} else {
			f.met.caughtUp.Set(0)
		}
		for _, b := range batches {
			// Retry the same record until it applies: a refit marker is
			// mirrored into the local WAL before its refit runs, so
			// advancing past a transiently failed apply would skip that
			// refit forever and silently diverge from the primary.
			// (ApplyReplicated is idempotent for the log head, so the
			// retry re-runs the refit without re-appending.)
			for {
				err := srv.ApplyReplicated(b)
				if err == nil {
					break
				}
				f.warnf("replica: applying seq %d: %v (retrying)", b.Seq, err)
				f.mu.Lock()
				f.stats.PollErrors++
				f.mu.Unlock()
				f.met.pollErrors.Inc()
				f.sleep(f.cfg.RetryBackoff)
				if f.ctx.Err() != nil {
					return
				}
			}
			f.mu.Lock()
			f.stats.AppliedBatches++
			f.stats.AppliedRows += int64(len(b.Rows))
			if b.IsControl() {
				f.stats.AppliedRefits++
			}
			f.stats.LastAppliedSeq = b.Seq
			f.mu.Unlock()
			f.met.batches.Inc()
			f.met.rows.Add(uint64(len(b.Rows)))
			if b.IsControl() {
				f.met.refits.Inc()
			}
			f.met.lastApplied.Set(float64(b.Seq))
		}
	}
}

// rebootstrap replaces the follower's local state with the primary's
// newest checkpoint after the needed log history was truncated away. The
// checkpoint is downloaded before anything local is touched, and the old
// state directories are staged aside — not deleted — until the
// replacement server is up, so a failure part-way (disk full, transient
// I/O) restores the previous state instead of leaving a closed server
// published over a wiped directory. The swap is atomic for clients of
// Handler.
func (f *Follower) rebootstrap() error {
	bundle, err := f.client.fetchCheckpoint(f.ctx)
	if err != nil && !errors.Is(err, errNoCheckpoint) {
		return err
	}
	dataDir := f.cfg.Serve.Durability.DataDir
	dirs := []string{wal.LogDir(dataDir), wal.CheckpointDir(dataDir)}
	stage := func(dir string) string { return dir + ".pre-rebootstrap" }

	f.Server().Close() // release the WAL before touching its files
	for _, dir := range dirs {
		if err := os.RemoveAll(stage(dir)); err != nil {
			return fmt.Errorf("replica: clearing stale staging %s: %w", stage(dir), err)
		}
		if err := os.Rename(dir, stage(dir)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("replica: staging %s aside: %w", dir, err)
		}
	}
	restore := func() {
		for _, dir := range dirs {
			os.RemoveAll(dir)
			if _, err := os.Stat(stage(dir)); err == nil {
				os.Rename(stage(dir), dir)
			}
		}
		// Reopen the previous state so reads keep working and the tail
		// loop retries against a live server.
		if srv, rerr := serve.New(f.cfg.Serve); rerr == nil {
			f.publish(srv)
		} else {
			f.errorf("replica: restoring pre-rebootstrap state: %v", rerr)
		}
	}
	if bundle != nil {
		if err := installCheckpoint(dataDir, bundle); err != nil {
			restore()
			return err
		}
	}
	srv, err := serve.New(f.cfg.Serve)
	if err != nil {
		restore()
		return err
	}
	f.publish(srv)
	for _, dir := range dirs {
		os.RemoveAll(stage(dir))
	}
	f.mu.Lock()
	f.stats.Rebootstraps++
	if bundle != nil {
		f.stats.BootstrapSeq = bundle.manifest.Seq
	}
	f.mu.Unlock()
	f.met.bootstraps.Inc()
	if bundle != nil {
		f.logf("replica: re-bootstrapped from checkpoint seq=%d (wal_seq=%d)",
			bundle.manifest.Seq, bundle.manifest.WALSeq)
	}
	return nil
}
