package replica

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/serve"
	"latenttruth/internal/wal"
)

// primaryConfig is a durable manual-refit primary config with a fast
// sampler.
func primaryConfig(dir string) serve.Config {
	return serve.Config{
		LTM:           core.Config{Iterations: 40, Seed: 1},
		Policy:        serve.RefitFull,
		FullEvery:     3,
		RefitInterval: -1,
		Durability:    serve.Durability{DataDir: dir, Fsync: wal.SyncNever},
	}
}

// followerConfig mirrors the primary's model configuration over its own
// data directory, with snappy replication timing for tests.
func followerConfig(primary, dir string) Config {
	return Config{
		Primary:      primary,
		Serve:        primaryConfig(dir),
		PollWait:     300 * time.Millisecond,
		RetryBackoff: 50 * time.Millisecond,
	}
}

// batchRows builds deterministic, mildly conflicting claim batches.
func batchRows(i int) []model.Row {
	rows := make([]model.Row, 0, 12)
	for j := 0; j < 4; j++ {
		e := fmt.Sprintf("e%02d", (i*3+j)%17)
		for s := 0; s < 3; s++ {
			rows = append(rows, model.Row{
				Entity:    e,
				Attribute: fmt.Sprintf("a%d", (i+j+s)%5),
				Source:    fmt.Sprintf("s%d", (i+s)%4),
			})
		}
	}
	return rows
}

// newPrimary builds a durable primary with its HTTP front end.
func newPrimary(t *testing.T, dir string) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(primaryConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// ingestRefit pushes a batch and refits, returning the snapshot.
func ingestRefit(t *testing.T, s *serve.Server, i int) *serve.Snapshot {
	t.Helper()
	if _, err := s.Ingest(batchRows(i)); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitSnapshotSeq waits until the follower serves snapshot seq.
func waitSnapshotSeq(t *testing.T, f *Follower, seq int64) *serve.Snapshot {
	t.Helper()
	waitFor(t, fmt.Sprintf("follower snapshot seq %d", seq), func() bool {
		sn := f.Server().Snapshot()
		return sn != nil && sn.Seq >= seq && sn.Mode != serve.RefitIncremental
	})
	return f.Server().Snapshot()
}

// mustEqualSnapshots asserts two snapshots carry bit-identical model
// state.
func mustEqualSnapshots(t *testing.T, got, want *serve.Snapshot) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("nil snapshot (got=%v want=%v)", got != nil, want != nil)
	}
	if got.Seq != want.Seq || got.Mode != want.Mode {
		t.Fatalf("snapshot identity: got (seq=%d, %s), want (seq=%d, %s)", got.Seq, got.Mode, want.Seq, want.Mode)
	}
	gr, wr := got.AllTruth(), want.AllTruth()
	if len(gr) != len(wr) {
		t.Fatalf("truth rows: %d, want %d", len(gr), len(wr))
	}
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("truth row %d: %+v, want %+v", i, gr[i], wr[i])
		}
	}
	if len(got.Quality) != len(want.Quality) {
		t.Fatalf("quality rows: %d, want %d", len(got.Quality), len(want.Quality))
	}
	for i := range got.Quality {
		if got.Quality[i] != want.Quality[i] {
			t.Fatalf("quality row %d: %+v, want %+v", i, got.Quality[i], want.Quality[i])
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats: %+v, want %+v", got.Stats, want.Stats)
	}
}

// TestFollowerBitIdenticalTruth is the tentpole acceptance scenario in
// process: a follower bootstraps from the primary's checkpoint, tails its
// WAL over real HTTP, and after replaying through the primary's refit
// marker at sequence N serves a snapshot bit-identical to the primary's
// snapshot N.
func TestFollowerBitIdenticalTruth(t *testing.T) {
	prim, ts := newPrimary(t, t.TempDir())
	ingestRefit(t, prim, 0)
	ingestRefit(t, prim, 1)

	f, err := Start(followerConfig(ts.URL, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if st := f.Stats(); !st.Bootstrapped || st.BootstrapSeq != 2 {
		t.Fatalf("bootstrap stats %+v, want bootstrapped at seq 2", st)
	}
	// The bootstrap state serves immediately (the LTMinc posterior from
	// the checkpointed quality) while the follower catches up.
	waitFor(t, "warm bootstrap snapshot", func() bool { return f.Server().Snapshot() != nil })

	// Each primary refit ships a marker; the follower's replayed snapshot
	// must match the primary's bit for bit, seq for seq.
	want := ingestRefit(t, prim, 2)
	mustEqualSnapshots(t, waitSnapshotSeq(t, f, want.Seq), want)

	want = ingestRefit(t, prim, 3)
	mustEqualSnapshots(t, waitSnapshotSeq(t, f, want.Seq), want)

	// Reads are served locally; writes bounce to the primary.
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()
	resp, err := http.Get(fts.URL + "/truth")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /truth status %d", resp.StatusCode)
	}
	resp, err = http.Post(fts.URL+"/claims", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /claims status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(fts.URL + "/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /replication/status status %d", resp.StatusCode)
	}
}

// TestFollowerFromColdPrimary starts the follower before the primary has
// ever refitted: there is no checkpoint, so the follower starts empty and
// replays the log from sequence 1 — including the primary's very first
// refit, whose default priors are sized to the same dataset on both sides.
func TestFollowerFromColdPrimary(t *testing.T) {
	prim, ts := newPrimary(t, t.TempDir())
	f, err := Start(followerConfig(ts.URL, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if st := f.Stats(); st.Bootstrapped {
		t.Fatalf("follower of a cold primary reports a bootstrap: %+v", st)
	}
	want := ingestRefit(t, prim, 0)
	mustEqualSnapshots(t, waitSnapshotSeq(t, f, want.Seq), want)
}

// TestFollowerRestartResumesWithoutRebootstrap closes a caught-up
// follower, restarts it on the same directory, and asserts it resumed
// from its own mirrored log — no checkpoint download — and still tracks
// the primary bit-identically.
func TestFollowerRestartResumesWithoutRebootstrap(t *testing.T) {
	prim, ts := newPrimary(t, t.TempDir())
	ingestRefit(t, prim, 0)

	folDir := t.TempDir()
	f, err := Start(followerConfig(ts.URL, folDir))
	if err != nil {
		t.Fatal(err)
	}
	want := ingestRefit(t, prim, 1)
	mustEqualSnapshots(t, waitSnapshotSeq(t, f, want.Seq), want)
	id := f.Stats().ID
	f.Close()

	// More primary progress while the follower is down.
	want = ingestRefit(t, prim, 2)

	f2, err := Start(followerConfig(ts.URL, folDir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st := f2.Stats()
	if st.Bootstrapped || st.BootstrapSeq != 0 {
		t.Fatalf("restart re-bootstrapped: %+v", st)
	}
	if st.ID != id {
		t.Fatalf("follower id changed across restart: %q -> %q", id, st.ID)
	}
	// The recovered local state already serves (snapshot from its own
	// checkpoint + marker replay), and the tail catches up to the primary.
	mustEqualSnapshots(t, waitSnapshotSeq(t, f2, want.Seq), want)
}

// TestFollowerEvictionRebootstraps drives a follower far past the
// primary's lag bound while it is down: its cursor is evicted, the
// history it needs is truncated, and on return it gets 410 and
// re-bootstraps from a fresh checkpoint instead of wedging.
func TestFollowerEvictionRebootstraps(t *testing.T) {
	primDir := t.TempDir()
	cfg := primaryConfig(primDir)
	cfg.Durability.SegmentBytes = 4 << 10
	cfg.Durability.RetainCheckpoints = 1
	cfg.Replication = serve.Replication{MaxLagBatches: 4, CursorTTL: 10 * time.Millisecond}
	prim, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(prim.Handler())
	defer func() { ts.Close(); prim.Close() }()
	ingestRefit(t, prim, 0)

	folDir := t.TempDir()
	f, err := Start(followerConfig(ts.URL, folDir))
	if err != nil {
		t.Fatal(err)
	}
	want := ingestRefit(t, prim, 1)
	mustEqualSnapshots(t, waitSnapshotSeq(t, f, want.Seq), want)
	f.Close()

	// Push the log far past the lag bound; refits evict + truncate.
	for i := 2; i < 40; i++ {
		if _, err := prim.Ingest(batchRows(i)); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			time.Sleep(15 * time.Millisecond) // let the TTL lapse
			if _, err := prim.Refit(""); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(15 * time.Millisecond)
	if _, err := prim.Refit(""); err != nil {
		t.Fatal(err)
	}
	if first := prim.DurabilityStats().WAL.FirstSeq; first <= 3 {
		t.Skipf("history was not truncated (first_seq=%d)", first)
	}

	f2, err := Start(followerConfig(ts.URL, folDir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, "re-bootstrap after eviction", func() bool { return f2.Stats().Rebootstraps >= 1 })
	// The re-bootstrapped follower serves the checkpoint state right away
	// and replays the primary's next refit bit-identically.
	want = ingestRefit(t, prim, 50)
	mustEqualSnapshots(t, waitSnapshotSeq(t, f2, want.Seq), want)
}

// TestCascadedFollower chains a follower off another follower: the
// intermediate's durable mirror re-exposes the same /replication feed, so
// the leaf converges on the same bit-identical snapshots as the primary.
func TestCascadedFollower(t *testing.T) {
	prim, ts := newPrimary(t, t.TempDir())
	ingestRefit(t, prim, 0)

	mid, err := Start(followerConfig(ts.URL, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	mts := httptest.NewServer(mid.Handler())
	defer mts.Close()

	leaf, err := Start(followerConfig(mts.URL, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()

	want := ingestRefit(t, prim, 1)
	mustEqualSnapshots(t, waitSnapshotSeq(t, mid, want.Seq), want)
	mustEqualSnapshots(t, waitSnapshotSeq(t, leaf, want.Seq), want)
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Serve: primaryConfig(t.TempDir())}); err == nil {
		t.Fatal("missing primary accepted")
	}
	if _, err := Start(Config{Primary: "http://x.invalid"}); err == nil {
		t.Fatal("missing data dir accepted")
	}
	if _, err := Start(Config{Primary: "not a url", Serve: primaryConfig(t.TempDir())}); err == nil {
		t.Fatal("bogus primary URL accepted")
	}
}
