package stream

import (
	"encoding/json"
	"math"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/store"
	"latenttruth/internal/synth"
)

// testCorpus builds a small book-like corpus cheap enough for unit tests.
func testCorpus(t *testing.T, seed int64) *synth.Corpus {
	t.Helper()
	spec := synth.CorpusSpec{
		Name: "streamtest", NumEntities: 300,
		TrueAttrWeights:  []float64{0.5, 0.4, 0.1},
		FalseCandWeights: []float64{0.5, 0.4, 0.1},
		LabelEntities:    40,
		Seed:             seed,
		Sources: []synth.SourceProfile{
			{Name: "good", Coverage: 0.9, Sensitivity: 0.95, FPR: 0.02},
			{Name: "lazy", Coverage: 0.8, Sensitivity: 0.5, FPR: 0.02},
			{Name: "messy", Coverage: 0.8, Sensitivity: 0.85, FPR: 0.35},
			{Name: "ok", Coverage: 0.7, Sensitivity: 0.8, FPR: 0.05},
		},
	}
	c, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewOnlineRequiresPriors(t *testing.T) {
	if _, err := NewOnline(core.Config{}); err == nil {
		t.Fatal("expected error without priors")
	}
	if _, err := NewOnline(core.Config{Priors: core.Priors{FP: -1}}); err == nil {
		t.Fatal("expected error for invalid priors")
	}
	if _, err := NewOnline(core.Config{Priors: core.DefaultPriors(100)}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineAccumulatesQuality(t *testing.T) {
	c := testCorpus(t, 1)
	batches := store.SplitEntities(c.Dataset, 3)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(300), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if o.Batches() != 0 || o.FactsSeen() != 0 {
		t.Fatal("fresh online state not empty")
	}
	for i, b := range batches {
		if _, err := o.Step(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if o.Batches() != 3 {
		t.Fatalf("Batches = %d", o.Batches())
	}
	if o.FactsSeen() != c.Dataset.NumFacts() {
		t.Fatalf("FactsSeen = %d, want %d", o.FactsSeen(), c.Dataset.NumFacts())
	}
	// Accumulated quality must separate the generator's good and messy
	// sources on the specificity axis, and good vs lazy on sensitivity.
	q := map[string]struct{ sens, spec float64 }{}
	for _, sq := range o.Quality() {
		q[sq.Source] = struct{ sens, spec float64 }{sq.Sensitivity, sq.Specificity}
	}
	if q["good"].spec <= q["messy"].spec {
		t.Fatalf("specificity: good %v <= messy %v", q["good"].spec, q["messy"].spec)
	}
	if q["good"].sens <= q["lazy"].sens {
		t.Fatalf("sensitivity: good %v <= lazy %v", q["good"].sens, q["lazy"].sens)
	}
}

func TestOnlinePredictUsesAccumulatedQuality(t *testing.T) {
	c := testCorpus(t, 2)
	batches := store.SplitEntities(c.Dataset, 4)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(200), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:3] {
		if _, err := o.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	last := batches[3]
	res, err := o.Predict(last)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := c.TruthOf(last)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for f, v := range truth {
		if (res.Prob[f] >= 0.5) == v {
			correct++
		}
	}
	acc := float64(correct) / float64(len(truth))
	if acc < 0.9 {
		t.Fatalf("LTMinc accuracy on final batch = %v", acc)
	}
	// Predict must not mutate state.
	if o.Batches() != 3 {
		t.Fatalf("Predict changed batch count to %d", o.Batches())
	}
}

func TestOnlineStepImprovesOverColdPredict(t *testing.T) {
	// Predicting a batch from zero accumulated knowledge uses only prior
	// means; after warming up on other batches, prediction should be at
	// least as accurate.
	c := testCorpus(t, 3)
	batches := store.SplitEntities(c.Dataset, 4)
	cold, err := NewOnline(core.Config{Priors: core.DefaultPriors(200), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewOnline(core.Config{Priors: core.DefaultPriors(200), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:3] {
		if _, err := warm.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	last := batches[3]
	truth, err := c.TruthOf(last)
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(o *Online) float64 {
		res, err := o.Predict(last)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for f, v := range truth {
			if (res.Prob[f] >= 0.5) == v {
				correct++
			}
		}
		return float64(correct) / float64(len(truth))
	}
	coldAcc, warmAcc := accOf(cold), accOf(warm)
	if warmAcc < coldAcc-0.02 {
		t.Fatalf("warm accuracy %v worse than cold %v", warmAcc, coldAcc)
	}
}

func TestOnlineRefit(t *testing.T) {
	c := testCorpus(t, 5)
	batches := store.SplitEntities(c.Dataset, 3)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(300), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := o.Step(b); err != nil {
			t.Fatal(err)
		}
	}
	incrementalQ := o.Quality()
	// Periodic batch refit on the cumulative data.
	fit, err := o.Refit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if o.Batches() != 1 || o.FactsSeen() != c.Dataset.NumFacts() {
		t.Fatalf("counters after refit: %d batches, %d facts", o.Batches(), o.FactsSeen())
	}
	refitQ := o.Quality()
	if len(refitQ) != len(incrementalQ) {
		t.Fatalf("quality rows: %d vs %d", len(refitQ), len(incrementalQ))
	}
	// Refit and incremental quality must broadly agree (same data).
	byName := map[string]float64{}
	for _, q := range incrementalQ {
		byName[q.Source] = q.Sensitivity
	}
	for _, q := range refitQ {
		if d := q.Sensitivity - byName[q.Source]; d > 0.15 || d < -0.15 {
			t.Errorf("%s sensitivity drifted %v after refit", q.Source, d)
		}
	}
	// Refit accuracy on the full corpus is high.
	truth, err := c.TruthOf(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for f, v := range truth {
		if (fit.Prob[f] >= 0.5) == v {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(truth)); acc < 0.9 {
		t.Fatalf("refit accuracy %v", acc)
	}
}

func TestOnlineQualityBounds(t *testing.T) {
	c := testCorpus(t, 4)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(300), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(c.Dataset); err != nil {
		t.Fatal(err)
	}
	for _, q := range o.Quality() {
		for name, v := range map[string]float64{
			"sens": q.Sensitivity, "spec": q.Specificity,
			"prec": q.Precision, "acc": q.Accuracy,
		} {
			if v <= 0 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("%s %s = %v", q.Source, name, v)
			}
		}
	}
	// Quality list is sorted by source name.
	qs := o.Quality()
	for i := 1; i < len(qs); i++ {
		if qs[i-1].Source > qs[i].Source {
			t.Fatal("quality not sorted by source name")
		}
	}
}

// TestOnlineShardedRefit: a refit with sharding configured must behave
// like the single-engine refit — bit-identically in exact mode (S=1) and
// within posterior tolerance in parallel mode — and must leave the
// accumulated quality usable by Predict.
func TestOnlineShardedRefit(t *testing.T) {
	c := testCorpus(t, 4)
	base := core.Config{Priors: core.DefaultPriors(300), Seed: 5, Iterations: 40, BurnIn: 10}

	single, err := NewOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.Refit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}

	exact, err := NewOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	exact.SetSharding(3, 1)
	fit, err := exact.Refit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Prob {
		if fit.Prob[i] != ref.Prob[i] {
			t.Fatalf("exact sharded refit drifted at fact %d: %v != %v", i, fit.Prob[i], ref.Prob[i])
		}
	}
	qa, qb := single.Quality(), exact.Quality()
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("accumulated quality drifted for source %s", qa[i].Source)
		}
	}

	par, err := NewOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	par.SetSharding(3, 5)
	pfit, err := par.Refit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range ref.Prob {
		if d := math.Abs(pfit.Prob[i] - ref.Prob[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.25 {
		t.Fatalf("parallel sharded refit drifted by %v", worst)
	}
	if par.Batches() != 1 || par.FactsSeen() != c.Dataset.NumFacts() {
		t.Fatal("refit counters not reset")
	}
	if _, err := par.Predict(c.Dataset); err != nil {
		t.Fatalf("Predict after sharded refit: %v", err)
	}
}

func TestStateRoundTripIsBitIdentical(t *testing.T) {
	c := testCorpus(t, 7)
	batches := store.SplitEntities(c.Dataset, 4)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(300), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:3] {
		if _, err := o.Step(b); err != nil {
			t.Fatal(err)
		}
	}

	// Serialize through JSON exactly as the checkpoint manifest does.
	raw, err := json.Marshal(o.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(core.Config{Seed: 5}, st)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Batches() != o.Batches() || restored.FactsSeen() != o.FactsSeen() {
		t.Fatalf("counters: restored (%d, %d), want (%d, %d)",
			restored.Batches(), restored.FactsSeen(), o.Batches(), o.FactsSeen())
	}
	// Quality must match to the last bit: JSON float64 round-trips are
	// exact and the counts are copied verbatim.
	qa, qb := o.Quality(), restored.Quality()
	if len(qa) != len(qb) {
		t.Fatalf("quality rows: %d vs %d", len(qa), len(qb))
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("quality row %d differs: %+v vs %+v", i, qa[i], qb[i])
		}
	}
	// And so must downstream inference: Predict and Step from the restored
	// accumulator produce bit-identical results.
	last := batches[3]
	ra, err := o.Predict(last)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := restored.Predict(last)
	if err != nil {
		t.Fatal(err)
	}
	for f := range ra.Prob {
		if ra.Prob[f] != rb.Prob[f] {
			t.Fatalf("fact %d: %v vs %v", f, ra.Prob[f], rb.Prob[f])
		}
	}
	fa, err := o.Step(last)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := restored.Step(last)
	if err != nil {
		t.Fatal(err)
	}
	for f := range fa.Prob {
		if fa.Prob[f] != fb.Prob[f] {
			t.Fatalf("post-step fact %d: %v vs %v", f, fa.Prob[f], fb.Prob[f])
		}
	}
}

func TestRestoreOnlineRejectsBadPriors(t *testing.T) {
	if _, err := RestoreOnline(core.Config{}, State{}); err == nil {
		t.Fatal("expected error restoring a state with zero priors")
	}
}

// dirtyContrib computes the expected-count contribution of the given
// entities under a posterior — the serving layer's input to StepDirty.
func dirtyContrib(ds *model.Dataset, prob []float64, entities []int) map[string][2][2]float64 {
	out := make(map[string][2][2]float64)
	for _, e := range entities {
		for _, f := range ds.FactsByEntity[e] {
			pt := prob[f]
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				o := 0
				if c.Observation {
					o = 1
				}
				name := ds.Sources[c.Source]
				acc := out[name]
				acc[1][o] += pt
				acc[0][o] += 1 - pt
				out[name] = acc
			}
		}
	}
	return out
}

// TestStepDirtyReconcilesCounts: after a full Refit anchors the
// accumulator, a StepDirty over a subset of entities must (a) keep the
// accumulator close to the cumulative expected counts — within the float
// cancellation noise of subtracting a partial sum — and (b) produce a fit
// whose quality stays consistent with the generator's source separation.
func TestStepDirtyReconcilesCounts(t *testing.T) {
	c := testCorpus(t, 9)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(c.Dataset.NumFacts()), Seed: 3, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	full, err := o.Refit(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}

	// Re-estimate the first third of the entities as "dirty" against the
	// accumulated quality of the rest.
	n := c.Dataset.NumEntities() / 3
	var dirtyIDs []int
	for e := 0; e < n; e++ {
		dirtyIDs = append(dirtyIDs, e)
	}
	sub := store.FilterEntities(c.Dataset, func(e int, _ string) bool { return e < n })
	prev := dirtyContrib(c.Dataset, full.Prob, dirtyIDs)

	fit, err := o.StepDirty(sub, prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Prob) != sub.NumFacts() {
		t.Fatalf("dirty fit has %d probs for %d sub facts", len(fit.Prob), sub.NumFacts())
	}

	// Reconstruct what the accumulator should hold: cumulative counts with
	// the dirty entities' contribution replaced by the re-fit's.
	newContrib := core.ExpectedCounts(sub, fit.Prob)
	cum := core.ExpectedCounts(c.Dataset, full.Prob)
	st := o.State()
	for s, name := range c.Dataset.Sources {
		var want [2][2]float64
		want = cum[s]
		pc := prev[name]
		var nc [2][2]float64
		for si, sn := range sub.Sources {
			if sn == name {
				nc = newContrib[si]
				break
			}
		}
		got := st.Counts[name]
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				w := want[i][j] - pc[i][j] + nc[i][j]
				if w < 0 {
					w = 0
				}
				if math.Abs(got[i][j]-w) > 1e-6*(1+math.Abs(w)) {
					t.Fatalf("source %s counts[%d][%d] = %v, want %v", name, i, j, got[i][j], w)
				}
			}
		}
	}
	if o.Batches() != 2 {
		t.Fatalf("Batches = %d after Refit+StepDirty", o.Batches())
	}
}

// TestStepDirtyNoOpDelta: re-fitting a dirty subset whose posterior does
// not move must leave every clean source's accumulated counts exactly
// unchanged for cells untouched by the subset (x + (y − y) = x holds
// bitwise in IEEE arithmetic when y is finite).
func TestStepDirtyUntouchedSourcesUnchanged(t *testing.T) {
	c := testCorpus(t, 12)
	o, err := NewOnline(core.Config{Priors: core.DefaultPriors(c.Dataset.NumFacts()), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Refit(c.Dataset); err != nil {
		t.Fatal(err)
	}
	before := o.State()

	// A sub-dataset covering only entity 0, with a synthetic source no other
	// entity uses, must not perturb sources outside its cover at all beyond
	// the delta arithmetic on the covering ones.
	sub := store.FilterEntities(c.Dataset, func(e int, _ string) bool { return e == 0 })
	prev := dirtyContrib(c.Dataset, o.mustProb(t, c.Dataset), []int{0})
	if _, err := o.StepDirty(sub, prev); err != nil {
		t.Fatal(err)
	}
	after := o.State()
	covered := make(map[string]bool)
	for _, s := range sub.Sources {
		covered[s] = true
	}
	for name, b := range before.Counts {
		if covered[name] {
			continue
		}
		if after.Counts[name] != b {
			t.Fatalf("uncovered source %s counts changed: %v -> %v", name, b, after.Counts[name])
		}
	}
}

// mustProb recomputes the posterior the accumulator's quality implies for
// ds — a stand-in for "the previous snapshot's posterior" in tests.
func (o *Online) mustProb(t *testing.T, ds *model.Dataset) []float64 {
	t.Helper()
	res, err := o.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	return res.Prob
}
