// Package stream implements the online / incremental integration mode of
// §5.4: when data arrives as a stream of batches, source quality learned
// on already-integrated batches becomes the prior for new batches, so the
// model never needs to re-train on the cumulative data.
//
// Two §5.4 policies are provided:
//
//   - Online.Step: fit LTM on the new batch only, with each source's
//     hyperparameters set to prior + expected confusion counts accumulated
//     so far (full incremental learning);
//   - Online.Predict: assume quality is unchanged over the medium term and
//     apply the closed-form LTMinc posterior (Equation 3) — no sampling at
//     all, the fastest path (Table 9's LTMinc row).
//
// Online.Refit covers §5.4's "periodically the model can then be
// retrained batch-style on the total cumulative data"; with SetSharding
// it runs the entity-sharded parallel fitter (internal/shard) so the one
// unbounded sweep in the pipeline scales across cores.
package stream
