package stream

import (
	"fmt"
	"sort"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/shard"
)

// Online is a stateful incremental truth finder. It is not safe for
// concurrent use.
type Online struct {
	base core.Config
	// shards/syncEvery configure entity-sharded periodic refits; see
	// SetSharding.
	shards    int
	syncEvery int
	// counts[source][i][j] accumulates expected confusion counts over all
	// processed batches.
	counts map[string]*[2][2]float64
	// batches counts processed batches; factsSeen the cumulative facts.
	batches   int
	factsSeen int
}

// NewOnline returns an online truth finder with the given base
// configuration. The base Priors must be fully specified (use
// core.DefaultPriors sized to a typical batch when in doubt).
func NewOnline(base core.Config) (*Online, error) {
	if base.Priors == (core.Priors{}) {
		return nil, fmt.Errorf("stream: base configuration needs explicit priors")
	}
	if err := base.Priors.Validate(); err != nil {
		return nil, err
	}
	return &Online{base: base, counts: make(map[string]*[2][2]float64)}, nil
}

// SetSharding configures entity-sharded execution for Refit: shards > 1
// partitions the cumulative dataset by entity and sweeps the shards
// concurrently with per-source counts reconciled every syncEvery sweeps
// (internal/shard). shards <= 1 restores the single-engine refit;
// syncEvery 1 selects the exact (bit-identical) barrier mode and 0 the
// shard package's default interval. Step and Predict are unaffected —
// batches are small by construction; the cumulative refit is the sweep
// that grows without bound.
func (o *Online) SetSharding(shards, syncEvery int) {
	o.shards = shards
	o.syncEvery = syncEvery
}

// Batches returns the number of batches processed by Step so far.
func (o *Online) Batches() int { return o.batches }

// HasQuality reports whether any per-source quality has been accumulated
// yet. Serving layers use it to decide whether the sampling-free Predict
// fast path is meaningful or a full fit is needed first.
func (o *Online) HasQuality() bool { return len(o.counts) > 0 }

// SourcesSeen returns the number of distinct sources with accumulated
// quality.
func (o *Online) SourcesSeen() int { return len(o.counts) }

// FactsSeen returns the cumulative number of facts across processed batches.
func (o *Online) FactsSeen() int { return o.factsSeen }

// sourcePriors materializes per-source hyperparameters from the base
// priors plus accumulated expected counts.
func (o *Online) sourcePriors() map[string]core.Priors {
	if len(o.counts) == 0 {
		return nil
	}
	out := make(map[string]core.Priors, len(o.counts))
	for name, e := range o.counts {
		out[name] = core.Priors{
			FP:   o.base.Priors.FP + e[0][1],
			TN:   o.base.Priors.TN + e[0][0],
			TP:   o.base.Priors.TP + e[1][1],
			FN:   o.base.Priors.FN + e[1][0],
			True: o.base.Priors.True,
			Fls:  o.base.Priors.Fls,
		}
	}
	return out
}

// Step integrates a new batch: it fits LTM on the batch with the
// accumulated per-source quality priors, then folds the batch's expected
// confusion counts into the accumulator. It returns the batch fit.
func (o *Online) Step(batch *model.Dataset) (*core.FitResult, error) {
	cfg := o.base
	cfg.SourcePriors = o.sourcePriors()
	fit, err := core.New(cfg).Fit(batch)
	if err != nil {
		return nil, fmt.Errorf("stream: batch %d: %w", o.batches, err)
	}
	e := core.ExpectedCounts(batch, fit.Prob)
	for s, name := range batch.Sources {
		acc, ok := o.counts[name]
		if !ok {
			acc = new([2][2]float64)
			o.counts[name] = acc
		}
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				acc[i][j] += e[s][i][j]
			}
		}
	}
	o.batches++
	o.factsSeen += batch.NumFacts()
	return fit, nil
}

// StepDirty is the dirty-entity reconciliation of §5.4's incremental
// learning: sub is the sub-dataset of just the entities a batch touched,
// and prevContrib is those entities' expected-count contribution under the
// previous posterior (keyed by source name; as computed by the serving
// layer from the last published snapshot).
//
// The sub fit is conditioned on everything the accumulator knows about
// each source from the clean remainder of the corpus: the per-source
// priors are the base priors plus (accumulated counts − prevContrib), so
// the dirty entities are re-estimated against quality evidence they did
// not themselves produce. Afterwards the accumulator is reconciled with
// the delta — counts += newContrib − prevContrib — which keeps it tracking
// the cumulative expected counts without ever re-sweeping clean entities.
// Negative cells (float cancellation noise between a sum and its partial
// re-sum) are clamped to zero; the periodic full Refit re-anchors the
// accumulator exactly, bounding any drift.
//
// When sharding is configured, the sub fit runs the entity-sharded fitter
// with the shard count capped at the sub-dataset's entity count.
func (o *Online) StepDirty(sub *model.Dataset, prevContrib map[string][2][2]float64) (*core.FitResult, error) {
	cfg := o.base
	sp := make(map[string]core.Priors, sub.NumSources())
	for _, name := range sub.Sources {
		var acc [2][2]float64
		if a := o.counts[name]; a != nil {
			acc = *a
		}
		if pc, ok := prevContrib[name]; ok {
			for i := 0; i <= 1; i++ {
				for j := 0; j <= 1; j++ {
					acc[i][j] -= pc[i][j]
					if acc[i][j] < 0 {
						acc[i][j] = 0
					}
				}
			}
		}
		sp[name] = core.Priors{
			FP:   o.base.Priors.FP + acc[0][1],
			TN:   o.base.Priors.TN + acc[0][0],
			TP:   o.base.Priors.TP + acc[1][1],
			FN:   o.base.Priors.FN + acc[1][0],
			True: o.base.Priors.True,
			Fls:  o.base.Priors.Fls,
		}
	}
	cfg.SourcePriors = sp
	shards := o.shards
	if n := sub.NumEntities(); shards > n {
		shards = n
	}
	fit, err := shard.Fit(sub, shard.Config{Shards: shards, SyncEvery: o.syncEvery, LTM: cfg})
	if err != nil {
		return nil, fmt.Errorf("stream: dirty step: %w", err)
	}
	e := core.ExpectedCounts(sub, fit.Prob)
	for si, name := range sub.Sources {
		acc, ok := o.counts[name]
		if !ok {
			acc = new([2][2]float64)
			o.counts[name] = acc
		}
		pc := prevContrib[name]
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				acc[i][j] += e[si][i][j] - pc[i][j]
				if acc[i][j] < 0 {
					acc[i][j] = 0
				}
			}
		}
	}
	o.batches++
	o.factsSeen += sub.NumFacts()
	return fit, nil
}

// Refit performs §5.4's "periodically the model can then be retrained
// batch-style on the total cumulative data": it fits LTM once on the
// supplied cumulative dataset with the base priors (no carried
// per-source priors, so stale estimates cannot compound) and REPLACES the
// accumulated expected counts with the refit's. The caller is responsible
// for retaining and merging the arrived batches (see store.Merge).
// Batch and fact counters are reset to reflect the refit dataset.
//
// When sharding is configured (SetSharding), the refit runs the
// entity-sharded fitter over the cumulative dataset so the one
// whole-history sweep in the streaming pipeline scales across cores.
func (o *Online) Refit(cumulative *model.Dataset) (*core.FitResult, error) {
	fit, err := shard.Fit(cumulative, shard.Config{Shards: o.shards, SyncEvery: o.syncEvery, LTM: o.base})
	if err != nil {
		return nil, fmt.Errorf("stream: refit: %w", err)
	}
	e := core.ExpectedCounts(cumulative, fit.Prob)
	o.counts = make(map[string]*[2][2]float64, cumulative.NumSources())
	for s, name := range cumulative.Sources {
		acc := new([2][2]float64)
		*acc = e[s]
		o.counts[name] = acc
	}
	o.batches = 1
	o.factsSeen = cumulative.NumFacts()
	return fit, nil
}

// Predict applies the closed-form LTMinc posterior (Equation 3) to a batch
// using the quality accumulated so far, without updating any state. It is
// the "source quality remains relatively unchanged over the medium term"
// fast path of §5.4.
func (o *Online) Predict(batch *model.Dataset) (*model.Result, error) {
	inc, err := core.NewIncrementalFromQuality(o.Quality(), o.base.Priors)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	return inc.Infer(batch)
}

// State is the serializable part of an Online accumulator: everything
// needed to reconstruct it bit-identically in a fresh process. Counts are
// deep-copied in both directions; JSON round-trips are exact because Go
// marshals float64 with the shortest representation that parses back to
// the same bits.
type State struct {
	Batches   int                      `json:"batches"`
	FactsSeen int                      `json:"facts_seen"`
	Priors    core.Priors              `json:"priors"`
	Counts    map[string][2][2]float64 `json:"counts"`
}

// State captures the accumulator for checkpointing.
func (o *Online) State() State {
	st := State{
		Batches:   o.batches,
		FactsSeen: o.factsSeen,
		Priors:    o.base.Priors,
		Counts:    make(map[string][2][2]float64, len(o.counts)),
	}
	for name, e := range o.counts {
		st.Counts[name] = *e
	}
	return st
}

// RestoreOnline reconstructs an online truth finder from a checkpointed
// State: base supplies the fit configuration (iterations, seed, sharding
// defaults, ...) while the priors and accumulated counts come from the
// state, so a restored accumulator predicts and refits bit-identically to
// the one that was checkpointed.
func RestoreOnline(base core.Config, st State) (*Online, error) {
	base.Priors = st.Priors
	o, err := NewOnline(base)
	if err != nil {
		return nil, err
	}
	o.batches = st.Batches
	o.factsSeen = st.FactsSeen
	for name, e := range st.Counts {
		acc := new([2][2]float64)
		*acc = e
		o.counts[name] = acc
	}
	return o, nil
}

// Quality returns the current accumulated MAP quality estimate per source,
// in lexicographic source-name order. Rows come from the same closed form
// the batch estimator uses (core.QualityFromCounts), so a quality table
// derived from accumulated counts is bit-identical to one derived from a
// full fit whose expected counts match — the invariant the serving layer's
// cross-partition quality merge depends on.
func (o *Online) Quality() []model.SourceQuality {
	names := make([]string, 0, len(o.counts))
	for name := range o.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]model.SourceQuality, 0, len(names))
	for _, name := range names {
		out = append(out, core.QualityFromCounts(name, *o.counts[name], o.base.Priors))
	}
	return out
}
