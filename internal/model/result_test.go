package model

import (
	"math"
	"strings"
	"testing"
)

func TestResultPredictAndTruthTable(t *testing.T) {
	ds := Build(table1DB())
	r := NewResult("test", ds)
	if len(r.Prob) != ds.NumFacts() {
		t.Fatalf("Prob sized %d", len(r.Prob))
	}
	r.Prob = []float64{0.9, 0.5, 0.49, 0.1, 1}
	if !r.Predict(0, 0.5) || !r.Predict(1, 0.5) || r.Predict(2, 0.5) || r.Predict(3, 0.5) {
		t.Fatal("Predict threshold semantics wrong (>= threshold is true)")
	}
	tt := r.TruthTable(0.5)
	want := []bool{true, true, false, false, true}
	for i := range want {
		if tt[i] != want[i] {
			t.Fatalf("TruthTable = %v, want %v", tt, want)
		}
	}
}

func TestResultValidate(t *testing.T) {
	r := &Result{Method: "m", Prob: []float64{0, 0.5, 1}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.01, 1.01, math.NaN()} {
		r.Prob[1] = bad
		if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "probability") {
			t.Fatalf("Validate(%v) = %v", bad, err)
		}
	}
}

func TestSourceQualityDerived(t *testing.T) {
	q := SourceQuality{Sensitivity: 0.8, Specificity: 0.95}
	if !almost(q.FalseNegativeRate(), 0.2) || !almost(q.FalsePositiveRate(), 0.05) {
		t.Fatalf("derived rates: %v %v", q.FalseNegativeRate(), q.FalsePositiveRate())
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
