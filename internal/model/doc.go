// Package model implements the paper's data model (§2, Definitions 1–4):
// a raw database of (entity, attribute, source) triples (Definition 1,
// Table 1's raw cast listings), the derived fact table (Definition 2,
// distinct entity–attribute pairs), and the derived claim table with both
// positive and negative claims (Definition 3). Negative-claim generation —
// a source that asserted *some* fact of an entity implicitly denies that
// entity's other facts — is the structural ingredient that lets the
// Latent Truth Model score two-sided source quality (§4.1).
//
// Dataset is the immutable, fully indexed form every inference method
// consumes; Build derives it from a RawDB, and Validate/ValidateBasic
// check the Definition 2–3 invariants the rest of the system relies on.
package model
