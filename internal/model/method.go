package model

// Method is the interface implemented by every truth-finding algorithm in
// the library: the Latent Truth Model, its variants, and all baselines of
// the paper's evaluation. Infer assigns each fact of the dataset a truth
// probability in [0, 1]; implementations must not mutate the dataset.
type Method interface {
	// Name returns the display name used in tables and reports.
	Name() string
	// Infer runs the algorithm over ds and returns per-fact scores.
	Infer(ds *Dataset) (*Result, error)
}
