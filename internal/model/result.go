package model

import "fmt"

// Result is the output of a truth-finding method on a dataset: for every
// fact, a score in [0, 1] interpreted as the probability (or confidence)
// that the fact is true. Facts scoring at or above a threshold (0.5 in the
// paper's unsupervised setting) are predicted true.
type Result struct {
	// Method is the display name of the producing algorithm.
	Method string
	// Prob[f] is the truth probability of fact f.
	Prob []float64
}

// NewResult returns a Result with a zeroed probability vector sized for ds.
func NewResult(method string, ds *Dataset) *Result {
	return &Result{Method: method, Prob: make([]float64, ds.NumFacts())}
}

// Predict reports whether fact f is predicted true at the given threshold,
// i.e. whether its probability is >= threshold.
func (r *Result) Predict(f int, threshold float64) bool {
	return r.Prob[f] >= threshold
}

// Validate checks that all probabilities are finite and within [0, 1].
func (r *Result) Validate() error {
	for f, p := range r.Prob {
		if !(p >= 0 && p <= 1) { // also catches NaN
			return fmt.Errorf("model: %s assigns fact %d probability %v", r.Method, f, p)
		}
	}
	return nil
}

// TruthTable materializes the predicted truth value of every fact at the
// given threshold, in fact-id order — the paper's output artifact
// (Definition 4, Table 4).
func (r *Result) TruthTable(threshold float64) []bool {
	t := make([]bool, len(r.Prob))
	for f, p := range r.Prob {
		t[f] = p >= threshold
	}
	return t
}

// SourceQuality aggregates the two-sided quality estimates of one source
// (§3, §5.3). FalsePositiveRate is 1−Specificity and FalseNegativeRate is
// 1−Sensitivity; both are kept explicit because the model parameterizes
// φ0 as the false positive rate.
type SourceQuality struct {
	Source      string
	Sensitivity float64 // recall: P(claim true | fact true)
	Specificity float64 // P(claim false | fact false)
	Precision   float64 // P(fact true | claim true)
	Accuracy    float64 // P(claim correct)
}

// FalsePositiveRate returns 1 − Specificity.
func (q SourceQuality) FalsePositiveRate() float64 { return 1 - q.Specificity }

// FalseNegativeRate returns 1 − Sensitivity.
func (q SourceQuality) FalseNegativeRate() float64 { return 1 - q.Sensitivity }
