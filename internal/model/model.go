package model

import (
	"fmt"
	"sort"
)

// Row is one record of the raw database DB (Definition 1): source c claims
// that entity e has attribute value a.
type Row struct {
	Entity    string
	Attribute string
	Source    string
}

// RawDB is the raw input database: an ordered, de-duplicated collection of
// rows. Each (entity, attribute, source) triple appears at most once, as
// required by Definition 1.
type RawDB struct {
	rows []Row
	seen map[Row]struct{}
}

// NewRawDB returns an empty raw database.
func NewRawDB() *RawDB {
	return &RawDB{seen: make(map[Row]struct{})}
}

// Add appends the triple (entity, attribute, source) if it is not already
// present, and reports whether it was inserted. Empty components are
// rejected with a panic since they always indicate a loader bug.
func (db *RawDB) Add(entity, attribute, source string) bool {
	if entity == "" || attribute == "" || source == "" {
		panic(fmt.Sprintf("model: empty component in triple (%q, %q, %q)", entity, attribute, source))
	}
	r := Row{Entity: entity, Attribute: attribute, Source: source}
	if _, ok := db.seen[r]; ok {
		return false
	}
	db.seen[r] = struct{}{}
	db.rows = append(db.rows, r)
	return true
}

// AddRow is Add for a Row value.
func (db *RawDB) AddRow(r Row) bool { return db.Add(r.Entity, r.Attribute, r.Source) }

// Len returns the number of distinct rows.
func (db *RawDB) Len() int { return len(db.rows) }

// Rows returns the rows in insertion order. The returned slice is shared;
// callers must not modify it.
func (db *RawDB) Rows() []Row { return db.rows }

// Fact is a distinct entity–attribute pair (Definition 2). ID is the
// fact's primary key: its index into Dataset.Facts.
type Fact struct {
	ID        int
	Entity    int // index into Dataset.Entities
	Attribute string
}

// Claim records that a source asserted (Observation true) or implicitly
// denied (Observation false) a fact (Definition 3).
type Claim struct {
	Fact        int  // index into Dataset.Facts
	Source      int  // index into Dataset.Sources
	Observation bool // true: positive claim; false: negative claim
}

// Dataset is the fully derived, indexed form of a raw database: the fact
// table, the claim table, and the access paths every inference method needs.
// Datasets are immutable once built.
type Dataset struct {
	Entities []string // entity id -> name
	Sources  []string // source id -> name
	Facts    []Fact
	Claims   []Claim

	// ClaimsByFact[f] lists indices into Claims of fact f's claims (C_f).
	ClaimsByFact [][]int
	// ClaimsBySource[s] lists indices into Claims of source s's claims.
	ClaimsBySource [][]int
	// FactsByEntity[e] lists fact ids of entity e.
	FactsByEntity [][]int

	// Labels holds ground truth for the labeled evaluation subset:
	// fact id -> true/false. Facts absent from Labels are unlabeled.
	Labels map[int]bool
}

// NumEntities returns the number of distinct entities.
func (d *Dataset) NumEntities() int { return len(d.Entities) }

// NumSources returns the number of distinct sources.
func (d *Dataset) NumSources() int { return len(d.Sources) }

// NumFacts returns the number of distinct facts.
func (d *Dataset) NumFacts() int { return len(d.Facts) }

// NumClaims returns the number of claims, positive and negative.
func (d *Dataset) NumClaims() int { return len(d.Claims) }

// NumPositiveClaims returns the number of positive claims.
func (d *Dataset) NumPositiveClaims() int {
	n := 0
	for _, c := range d.Claims {
		if c.Observation {
			n++
		}
	}
	return n
}

// EntityName returns the name of the fact's entity.
func (d *Dataset) EntityName(f Fact) string { return d.Entities[f.Entity] }

// SourceIndex returns the id of the named source, or -1 when absent.
func (d *Dataset) SourceIndex(name string) int {
	for i, s := range d.Sources {
		if s == name {
			return i
		}
	}
	return -1
}

// FactIndex returns the id of the fact with the given entity and attribute
// names, or -1 when absent.
func (d *Dataset) FactIndex(entity, attribute string) int {
	for _, f := range d.Facts {
		if f.Attribute == attribute && d.Entities[f.Entity] == entity {
			return f.ID
		}
	}
	return -1
}

// LabeledFacts returns the ids of labeled facts in ascending order.
func (d *Dataset) LabeledFacts() []int {
	ids := make([]int, 0, len(d.Labels))
	for id := range d.Labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Build derives the Dataset from a raw database following Definitions 2–3:
//
//  1. facts are the distinct (entity, attribute) pairs, in first-appearance
//     order;
//  2. for each fact f and each source s that asserted f, a positive claim
//     (f, s, true) is emitted;
//  3. for each source s that did not assert f but asserted some other fact
//     of f's entity, a negative claim (f, s, false) is emitted;
//  4. sources unrelated to f's entity make no claim on f.
//
// Claim order is deterministic: facts in id order, and for each fact its
// claiming sources in source-id order.
func Build(db *RawDB) *Dataset { return BuildRows(db.Rows()) }

// BuildRows is Build over a bare row slice, for storage backends that hold
// rows outside a RawDB. Rows must be duplicate-free and in insertion order:
// ids are assigned by first appearance, so the same rows in the same order
// always derive the identical dataset regardless of where they were held.
func BuildRows(rows []Row) *Dataset {
	d := &Dataset{Labels: make(map[int]bool)}

	entityID := make(map[string]int)
	sourceID := make(map[string]int)
	factID := make(map[[2]string]int) // (entity, attribute) -> fact id

	// positives[f] is the set of sources with a positive claim on fact f.
	var positives []map[int]struct{}
	// entitySources[e] is the set of sources that asserted any fact of e.
	var entitySources []map[int]struct{}

	for _, r := range rows {
		e, ok := entityID[r.Entity]
		if !ok {
			e = len(d.Entities)
			entityID[r.Entity] = e
			d.Entities = append(d.Entities, r.Entity)
			d.FactsByEntity = append(d.FactsByEntity, nil)
			entitySources = append(entitySources, make(map[int]struct{}))
		}
		s, ok := sourceID[r.Source]
		if !ok {
			s = len(d.Sources)
			sourceID[r.Source] = s
			d.Sources = append(d.Sources, r.Source)
		}
		key := [2]string{r.Entity, r.Attribute}
		f, ok := factID[key]
		if !ok {
			f = len(d.Facts)
			factID[key] = f
			d.Facts = append(d.Facts, Fact{ID: f, Entity: e, Attribute: r.Attribute})
			d.FactsByEntity[e] = append(d.FactsByEntity[e], f)
			positives = append(positives, make(map[int]struct{}))
		}
		positives[f][s] = struct{}{}
		entitySources[e][s] = struct{}{}
	}

	// Emit claims in deterministic order.
	for f := range d.Facts {
		e := d.Facts[f].Entity
		srcs := make([]int, 0, len(entitySources[e]))
		for s := range entitySources[e] {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, s := range srcs {
			_, pos := positives[f][s]
			d.Claims = append(d.Claims, Claim{Fact: f, Source: s, Observation: pos})
		}
	}
	d.reindex()
	return d
}

// reindex rebuilds ClaimsByFact and ClaimsBySource from Claims.
func (d *Dataset) reindex() {
	d.ClaimsByFact = make([][]int, len(d.Facts))
	d.ClaimsBySource = make([][]int, len(d.Sources))
	for i, c := range d.Claims {
		d.ClaimsByFact[c.Fact] = append(d.ClaimsByFact[c.Fact], i)
		d.ClaimsBySource[c.Source] = append(d.ClaimsBySource[c.Source], i)
	}
}

// ValidateBasic checks the invariants every dataset must satisfy
// regardless of origin: index bounds, fact-id density, at most one claim
// per fact–source pair, and label references. Synthetic claim tables that
// do not come from a raw database (e.g. the dense §6.1.1 dataset, where a
// fact may receive only negative claims) satisfy ValidateBasic but not the
// stricter Validate.
func (d *Dataset) ValidateBasic() error {
	for i, f := range d.Facts {
		if f.ID != i {
			return fmt.Errorf("model: fact %d has id %d", i, f.ID)
		}
		if f.Entity < 0 || f.Entity >= len(d.Entities) {
			return fmt.Errorf("model: fact %d references entity %d of %d", i, f.Entity, len(d.Entities))
		}
	}
	type pair struct{ f, s int }
	seen := make(map[pair]struct{}, len(d.Claims))
	for i, c := range d.Claims {
		if c.Fact < 0 || c.Fact >= len(d.Facts) {
			return fmt.Errorf("model: claim %d references fact %d of %d", i, c.Fact, len(d.Facts))
		}
		if c.Source < 0 || c.Source >= len(d.Sources) {
			return fmt.Errorf("model: claim %d references source %d of %d", i, c.Source, len(d.Sources))
		}
		p := pair{c.Fact, c.Source}
		if _, dup := seen[p]; dup {
			return fmt.Errorf("model: duplicate claim for fact %d source %d", c.Fact, c.Source)
		}
		seen[p] = struct{}{}
	}
	for id := range d.Labels {
		if id < 0 || id >= len(d.Facts) {
			return fmt.Errorf("model: label references fact %d of %d", id, len(d.Facts))
		}
	}
	return nil
}

// Validate checks the structural invariants of a dataset derived from a
// raw database (Definitions 2–3): everything ValidateBasic checks, plus
// at least one positive claim per fact and a claim from every source
// covering the fact's entity. It returns the first violation found.
func (d *Dataset) Validate() error {
	if err := d.ValidateBasic(); err != nil {
		return err
	}
	hasPositive := make([]bool, len(d.Facts))
	for _, c := range d.Claims {
		if c.Observation {
			hasPositive[c.Fact] = true
		}
	}
	for f, ok := range hasPositive {
		if !ok {
			return fmt.Errorf("model: fact %d has no positive claim", f)
		}
	}
	// Every source claiming any fact of an entity must claim all its facts.
	for e, facts := range d.FactsByEntity {
		cover := make(map[int]struct{})
		for _, f := range facts {
			for _, ci := range d.ClaimsByFact[f] {
				cover[d.Claims[ci].Source] = struct{}{}
			}
		}
		for _, f := range facts {
			if len(d.ClaimsByFact[f]) != len(cover) {
				return fmt.Errorf("model: entity %d fact %d has %d claims, %d covering sources",
					e, f, len(d.ClaimsByFact[f]), len(cover))
			}
		}
	}
	return nil
}
