package model

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// table1DB reproduces the paper's Table 1 raw database.
func table1DB() *RawDB {
	db := NewRawDB()
	rows := [][3]string{
		{"Harry Potter", "Daniel Radcliffe", "IMDB"},
		{"Harry Potter", "Emma Watson", "IMDB"},
		{"Harry Potter", "Rupert Grint", "IMDB"},
		{"Harry Potter", "Daniel Radcliffe", "Netflix"},
		{"Harry Potter", "Daniel Radcliffe", "BadSource.com"},
		{"Harry Potter", "Emma Watson", "BadSource.com"},
		{"Harry Potter", "Johnny Depp", "BadSource.com"},
		{"Pirates 4", "Johnny Depp", "Hulu.com"},
	}
	for _, r := range rows {
		db.Add(r[0], r[1], r[2])
	}
	return db
}

func TestRawDBDeduplicates(t *testing.T) {
	db := NewRawDB()
	if !db.Add("e", "a", "s") {
		t.Fatal("first insert rejected")
	}
	if db.Add("e", "a", "s") {
		t.Fatal("duplicate insert accepted")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestRawDBPanicsOnEmptyComponent(t *testing.T) {
	for _, r := range []Row{{"", "a", "s"}, {"e", "", "s"}, {"e", "a", ""}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", r)
				}
			}()
			NewRawDB().AddRow(r)
		}()
	}
}

// TestBuildTable3 checks the derived claim table against the paper's
// Table 3 exactly.
func TestBuildTable3(t *testing.T) {
	ds := Build(table1DB())
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumEntities() != 2 || ds.NumSources() != 4 || ds.NumFacts() != 5 {
		t.Fatalf("sizes: %d entities, %d sources, %d facts",
			ds.NumEntities(), ds.NumSources(), ds.NumFacts())
	}
	// Fact ids follow first appearance: 0 Daniel, 1 Emma, 2 Rupert,
	// 3 Johnny@HP, 4 Johnny@Pirates (paper Table 2, ids shifted by 1).
	type claim struct {
		fact   string
		source string
		obs    bool
	}
	want := map[claim]bool{
		{"Daniel Radcliffe", "IMDB", true}:          true,
		{"Daniel Radcliffe", "Netflix", true}:       true,
		{"Daniel Radcliffe", "BadSource.com", true}: true,
		{"Emma Watson", "IMDB", true}:               true,
		{"Emma Watson", "Netflix", false}:           true,
		{"Emma Watson", "BadSource.com", true}:      true,
		{"Rupert Grint", "IMDB", true}:              true,
		{"Rupert Grint", "Netflix", false}:          true,
		{"Rupert Grint", "BadSource.com", false}:    true,
		{"Johnny Depp", "IMDB", false}:              true, // Harry Potter
		{"Johnny Depp", "Netflix", false}:           true,
		{"Johnny Depp", "BadSource.com", true}:      true,
	}
	// Plus the single Pirates 4 claim.
	got := 0
	for _, c := range ds.Claims {
		f := ds.Facts[c.Fact]
		if ds.EntityName(f) == "Pirates 4" {
			if f.Attribute != "Johnny Depp" || ds.Sources[c.Source] != "Hulu.com" || !c.Observation {
				t.Fatalf("unexpected Pirates 4 claim %+v", c)
			}
			continue
		}
		key := claim{f.Attribute, ds.Sources[c.Source], c.Observation}
		if !want[key] {
			t.Fatalf("unexpected claim %+v", key)
		}
		got++
	}
	if got != len(want) {
		t.Fatalf("%d Harry Potter claims, want %d", got, len(want))
	}
	if ds.NumClaims() != 13 {
		t.Fatalf("total claims = %d, want 13 (Table 3)", ds.NumClaims())
	}
	// Hulu.com must make no claims about Harry Potter (rule 3 of Def. 3).
	hulu := ds.SourceIndex("Hulu.com")
	for _, ci := range ds.ClaimsBySource[hulu] {
		f := ds.Facts[ds.Claims[ci].Fact]
		if ds.EntityName(f) != "Pirates 4" {
			t.Fatalf("Hulu.com claims about %s", ds.EntityName(f))
		}
	}
}

func TestBuildDeterministicOrder(t *testing.T) {
	a := Build(table1DB())
	b := Build(table1DB())
	if len(a.Claims) != len(b.Claims) {
		t.Fatal("claim counts differ")
	}
	for i := range a.Claims {
		if a.Claims[i] != b.Claims[i] {
			t.Fatalf("claim %d differs: %+v vs %+v", i, a.Claims[i], b.Claims[i])
		}
	}
}

func TestIndexesConsistent(t *testing.T) {
	ds := Build(table1DB())
	for f, claims := range ds.ClaimsByFact {
		for _, ci := range claims {
			if ds.Claims[ci].Fact != f {
				t.Fatalf("ClaimsByFact[%d] contains claim of fact %d", f, ds.Claims[ci].Fact)
			}
		}
	}
	for s, claims := range ds.ClaimsBySource {
		for _, ci := range claims {
			if ds.Claims[ci].Source != s {
				t.Fatalf("ClaimsBySource[%d] contains claim of source %d", s, ds.Claims[ci].Source)
			}
		}
	}
	total := 0
	for _, claims := range ds.ClaimsByFact {
		total += len(claims)
	}
	if total != ds.NumClaims() {
		t.Fatalf("index covers %d of %d claims", total, ds.NumClaims())
	}
}

func TestSourceAndFactIndex(t *testing.T) {
	ds := Build(table1DB())
	if ds.SourceIndex("IMDB") < 0 || ds.SourceIndex("nope") != -1 {
		t.Fatal("SourceIndex wrong")
	}
	if f := ds.FactIndex("Harry Potter", "Rupert Grint"); f < 0 || ds.Facts[f].Attribute != "Rupert Grint" {
		t.Fatal("FactIndex wrong")
	}
	if ds.FactIndex("Harry Potter", "nope") != -1 {
		t.Fatal("FactIndex found nonexistent fact")
	}
}

func TestLabeledFactsSorted(t *testing.T) {
	ds := Build(table1DB())
	ds.Labels[3] = false
	ds.Labels[0] = true
	ds.Labels[2] = true
	got := ds.LabeledFacts()
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("LabeledFacts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LabeledFacts = %v, want %v", got, want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Dataset)
		substr  string
	}{
		{"fact id", func(d *Dataset) { d.Facts[1].ID = 7 }, "has id"},
		{"entity ref", func(d *Dataset) { d.Facts[0].Entity = 99 }, "references entity"},
		{"claim fact ref", func(d *Dataset) { d.Claims[0].Fact = -1 }, "references fact"},
		{"claim source ref", func(d *Dataset) { d.Claims[0].Source = 99 }, "references source"},
		{"duplicate claim", func(d *Dataset) { d.Claims[1] = d.Claims[0] }, "duplicate claim"},
		{"label ref", func(d *Dataset) { d.Labels[99] = true }, "label references"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ds := Build(table1DB())
			c.corrupt(ds)
			err := ds.Validate()
			if err == nil || !strings.Contains(err.Error(), c.substr) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.substr)
			}
		})
	}
}

func TestValidateStrictOnlyViolations(t *testing.T) {
	// A fact with only negative claims passes ValidateBasic but not
	// Validate.
	ds := Build(table1DB())
	for i, c := range ds.Claims {
		if c.Fact == 0 && c.Observation {
			ds.Claims[i].Observation = false
		}
	}
	if err := ds.ValidateBasic(); err != nil {
		t.Fatalf("ValidateBasic: %v", err)
	}
	if err := ds.Validate(); err == nil || !strings.Contains(err.Error(), "no positive claim") {
		t.Fatalf("Validate = %v", err)
	}
}

// TestBuildProperty checks Definitions 2-3 on random raw databases: every
// (entity, source) pair with any assertion yields claims on ALL the
// entity's facts, positives exactly where asserted.
func TestBuildProperty(t *testing.T) {
	f := func(rows []struct{ E, A, S uint8 }) bool {
		if len(rows) == 0 {
			return true
		}
		db := NewRawDB()
		type key struct{ e, a, s string }
		asserted := map[key]bool{}
		for _, r := range rows {
			e := fmt.Sprintf("e%d", r.E%8)
			a := fmt.Sprintf("a%d", r.A%6)
			s := fmt.Sprintf("s%d", r.S%5)
			db.Add(e, a, s)
			asserted[key{e, a, s}] = true
		}
		ds := Build(db)
		if err := ds.Validate(); err != nil {
			return false
		}
		// Check each claim's observation against the raw assertions.
		for _, c := range ds.Claims {
			f := ds.Facts[c.Fact]
			k := key{ds.EntityName(f), f.Attribute, ds.Sources[c.Source]}
			if asserted[k] != c.Observation {
				return false
			}
		}
		// Count claims: for each entity, (#covering sources) x (#facts).
		wantClaims := 0
		for _, facts := range ds.FactsByEntity {
			cover := map[int]bool{}
			for _, fid := range facts {
				for _, ci := range ds.ClaimsByFact[fid] {
					cover[ds.Claims[ci].Source] = true
				}
			}
			wantClaims += len(cover) * len(facts)
		}
		return ds.NumClaims() == wantClaims
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNumPositiveClaims(t *testing.T) {
	ds := Build(table1DB())
	if got := ds.NumPositiveClaims(); got != 8 {
		t.Fatalf("NumPositiveClaims = %d, want 8 (raw rows)", got)
	}
}
