package shard

import (
	"fmt"
	"math"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/synth"
)

// propertyCorpus draws a randomized sparse corpus (uneven fan-out,
// negative claims, sources with partial coverage) with a fixed seed, the
// same shape the store property tests use. Varying the seed varies entity
// counts and densities.
func propertyCorpus(t *testing.T, seed int64) *model.Dataset {
	t.Helper()
	rng := stats.NewRNG(seed)
	spec := synth.CorpusSpec{
		Name:             fmt.Sprintf("shardprop-%d", seed),
		NumEntities:      40 + rng.Intn(120),
		TrueAttrWeights:  []float64{0.5, 0.3, 0.2},
		FalseCandWeights: []float64{0.4, 0.4, 0.2},
		LabelEntities:    5 + rng.Intn(20),
		Seed:             seed,
		Sources: []synth.SourceProfile{
			{Name: "alpha", Coverage: 0.5 + 0.5*rng.Float64(), Sensitivity: 0.9, FPR: 0.05},
			{Name: "beta", Coverage: 0.5 + 0.5*rng.Float64(), Sensitivity: 0.6, FPR: 0.1},
			{Name: "gamma", Coverage: rng.Float64(), Sensitivity: 0.8, FPR: 0.3},
			{Name: "delta", Coverage: 0.2 * rng.Float64(), Sensitivity: 0.7, FPR: 0.2},
		},
	}
	c, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c.Dataset
}

// shardConfigs spans the configuration surface the sharded fitter must
// reproduce exactly in S=1 mode: defaults, binary sampling, explicit
// schedules, per-source prior overrides.
func shardConfigs(srcName string) []core.Config {
	return []core.Config{
		{Seed: 1, Iterations: 40, BurnIn: 10},
		{Seed: 5, Iterations: 30, BurnIn: 5, BinarySamples: true},
		{Seed: 9, Iterations: 37, BurnIn: 11, SampleGap: 2},
		{Seed: 7, Iterations: 25, BurnIn: 5, SourcePriors: map[string]core.Priors{
			srcName: {FP: 1, TN: 199, TP: 30, FN: 5},
		}},
	}
}

// TestShardedFitExactMatchesReference: S=1 exact mode must be
// bit-identical to the single-engine fit — posteriors, quality read-off
// and kept-sample count — for any shard count.
func TestShardedFitExactMatchesReference(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		ds := propertyCorpus(t, seed)
		for _, cfg := range shardConfigs(ds.Sources[0]) {
			ref, err := core.New(cfg).Fit(ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 7} {
				f, err := Compile(ds, shards)
				if err != nil {
					t.Fatalf("Compile(%d): %v", shards, err)
				}
				fit, err := f.Fit(cfg, 1)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				for i := range ref.Prob {
					if fit.Prob[i] != ref.Prob[i] {
						t.Fatalf("seed=%d shards=%d fact %d: sharded %v, reference %v (Δ=%v)",
							seed, shards, i, fit.Prob[i], ref.Prob[i], math.Abs(fit.Prob[i]-ref.Prob[i]))
					}
				}
				if fit.SamplesKept != ref.SamplesKept {
					t.Fatalf("seed=%d shards=%d: kept %d samples, reference %d", seed, shards, fit.SamplesKept, ref.SamplesKept)
				}
				for s := range ref.Sensitivity {
					if fit.Sensitivity[s] != ref.Sensitivity[s] || fit.FalsePositiveRate[s] != ref.FalsePositiveRate[s] {
						t.Fatalf("seed=%d shards=%d source %d: quality drifted", seed, shards, s)
					}
				}
			}
		}
	}
}

// TestShardedSingleShardParallelMatchesReference: with one shard the
// parallel mode has no remote counts and an identical RNG stream, so even
// S>1 must reproduce the single-engine fit bit for bit.
func TestShardedSingleShardParallelMatchesReference(t *testing.T) {
	ds := propertyCorpus(t, 17)
	cfg := core.Config{Seed: 7, Iterations: 40, BurnIn: 10}
	ref, err := core.New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compile(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, syncEvery := range []int{2, 5, 100} {
		fit, err := f.Fit(cfg, syncEvery)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Prob {
			if fit.Prob[i] != ref.Prob[i] {
				t.Fatalf("syncEvery=%d fact %d: sharded %v, reference %v", syncEvery, i, fit.Prob[i], ref.Prob[i])
			}
		}
	}
}

// TestShardedFitCloseToReference: S>1 trades per-sweep synchronization for
// parallelism; the stale-count approximation must stay within a small
// posterior tolerance of the single-engine fit on the simulated book
// corpus, and must not move the labeled-subset decisions materially.
func TestShardedFitCloseToReference(t *testing.T) {
	corpus, err := synth.BookCorpus(42)
	if err != nil {
		t.Fatal(err)
	}
	ds := corpus.Dataset
	cfg := core.Config{Seed: 7}
	ref, err := core.New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ shards, syncEvery int }{{2, 5}, {4, 5}, {4, 10}} {
		f, err := Compile(ds, tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := f.Fit(cfg, tc.syncEvery)
		if err != nil {
			t.Fatal(err)
		}
		var sum, worst float64
		flips := 0
		for i := range ref.Prob {
			d := math.Abs(fit.Prob[i] - ref.Prob[i])
			sum += d
			if d > worst {
				worst = d
			}
			if (fit.Prob[i] >= 0.5) != (ref.Prob[i] >= 0.5) {
				flips++
			}
		}
		mean := sum / float64(len(ref.Prob))
		t.Logf("shards=%d S=%d: mean |Δp| = %.5f, max = %.5f, decision flips = %d/%d",
			tc.shards, tc.syncEvery, mean, worst, flips, len(ref.Prob))
		if mean > 0.02 {
			t.Errorf("shards=%d S=%d: mean posterior drift %.5f exceeds 0.02", tc.shards, tc.syncEvery, mean)
		}
		if float64(flips) > 0.02*float64(len(ref.Prob)) {
			t.Errorf("shards=%d S=%d: %d decision flips exceed 2%% of facts", tc.shards, tc.syncEvery, flips)
		}
	}
}

// TestShardedFitDeterministic: the parallel mode must be a pure function
// of (dataset, config, shards, syncEvery) regardless of scheduling.
func TestShardedFitDeterministic(t *testing.T) {
	ds := propertyCorpus(t, 29)
	cfg := core.Config{Seed: 3, Iterations: 40, BurnIn: 10}
	f1, err := Compile(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f1.Fit(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Compile(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f2.Fit(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Prob {
		if a.Prob[i] != b.Prob[i] {
			t.Fatalf("fact %d: run A %v, run B %v", i, a.Prob[i], b.Prob[i])
		}
	}
	// Refitting through the same compiled fitter must also reproduce.
	c, err := f1.Fit(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Prob {
		if a.Prob[i] != c.Prob[i] {
			t.Fatalf("refit through same fitter drifted at fact %d", i)
		}
	}
}

// claimKey identifies a claim by names, which survive re-indexing.
type claimKey struct {
	entity, attribute, source string
	observation               bool
}

func claimMultiset(ds *model.Dataset) map[claimKey]int {
	m := make(map[claimKey]int, ds.NumClaims())
	for _, c := range ds.Claims {
		f := ds.Facts[c.Fact]
		m[claimKey{ds.Entities[f.Entity], f.Attribute, ds.Sources[c.Source], c.Observation}]++
	}
	return m
}

// TestShardPartitionNeverDropsOrDuplicatesClaims: the partition property —
// across randomized corpora and shard counts, the union of shard claim
// tables is exactly the global claim table (no claim dropped, none
// duplicated), every global fact lands in exactly one shard, and the id
// mappings agree with the name-level identities.
func TestShardPartitionNeverDropsOrDuplicatesClaims(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ds := propertyCorpus(t, seed)
		rng := stats.NewRNG(seed * 997)
		for trial := 0; trial < 3; trial++ {
			shards := 1 + rng.Intn(9)
			f, err := Compile(ds, shards)
			if err != nil {
				t.Fatalf("seed=%d shards=%d: %v", seed, shards, err)
			}
			want := claimMultiset(ds)
			got := make(map[claimKey]int)
			facts := 0
			for _, p := range f.parts {
				for k, n := range claimMultiset(p.ds) {
					got[k] += n
				}
				facts += p.ds.NumFacts()
				// Mapped ids must agree with name identities.
				for i, g := range p.fact2g {
					pf, gf := p.ds.Facts[i], ds.Facts[g]
					if p.ds.Entities[pf.Entity] != ds.Entities[gf.Entity] || pf.Attribute != gf.Attribute {
						t.Fatalf("seed=%d shards=%d: fact mapping %d->%d names disagree", seed, shards, i, g)
					}
				}
				for s, g := range p.src2g {
					if p.ds.Sources[s] != ds.Sources[g] {
						t.Fatalf("seed=%d shards=%d: source mapping %d->%d names disagree", seed, shards, s, g)
					}
				}
			}
			if facts != ds.NumFacts() {
				t.Fatalf("seed=%d shards=%d: shards carry %d facts, dataset has %d", seed, shards, facts, ds.NumFacts())
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d shards=%d: claim multiset keys %d != %d", seed, shards, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("seed=%d shards=%d: claim %+v count %d != %d", seed, shards, k, got[k], n)
				}
			}
		}
	}
}

// TestShardedFitMoreShardsThanEntities: empty partitions are dropped and
// the fit still covers every fact.
func TestShardedFitMoreShardsThanEntities(t *testing.T) {
	corpus := synth.Table1Example()
	ds := corpus.Dataset
	f, err := Compile(ds, 50)
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() > ds.NumEntities() {
		t.Fatalf("%d non-empty shards from %d entities", f.Shards(), ds.NumEntities())
	}
	fit, err := f.Fit(core.Config{Seed: 7, Iterations: 30, BurnIn: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Prob) != ds.NumFacts() {
		t.Fatalf("fit covers %d facts, want %d", len(fit.Prob), ds.NumFacts())
	}
	for i, p := range fit.Prob {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("fact %d: probability %v out of range", i, p)
		}
	}
}

// TestShardedFitErrors: invalid arguments are rejected up front.
func TestShardedFitErrors(t *testing.T) {
	ds := propertyCorpus(t, 5)
	if _, err := Compile(ds, 0); err == nil {
		t.Error("Compile with 0 shards should fail")
	}
	if _, err := Compile(&model.Dataset{}, 2); err == nil {
		t.Error("Compile with empty dataset should fail")
	}
	f, err := Compile(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fit(core.Config{Seed: 1}, -3); err == nil {
		t.Error("negative syncEvery should fail")
	}
	if _, err := f.Fit(core.Config{Iterations: -1}, 2); err == nil {
		t.Error("invalid LTM config should fail")
	}
}

// TestShardFitFallback: the one-call Fit with Shards <= 1 delegates to the
// single-engine path and matches it exactly.
func TestShardFitFallback(t *testing.T) {
	ds := propertyCorpus(t, 23)
	cfg := core.Config{Seed: 11, Iterations: 30, BurnIn: 5}
	ref, err := core.New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(ds, Config{Shards: 1, LTM: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Prob {
		if fit.Prob[i] != ref.Prob[i] {
			t.Fatalf("fact %d: fallback %v, reference %v", i, fit.Prob[i], ref.Prob[i])
		}
	}
}
