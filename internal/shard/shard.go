package shard

import (
	"fmt"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/store"
)

// DefaultSyncEvery is the sync interval used when a caller leaves it zero:
// shards run 5 sweeps between count reconciliations, a good
// staleness/throughput tradeoff at the paper's default 100 iterations.
const DefaultSyncEvery = 5

// Config bundles the sharding knobs with the base fit configuration.
type Config struct {
	// Shards is the number of entity shards. Values <= 1 fall back to the
	// single-engine fit (no sharding machinery at all).
	Shards int
	// SyncEvery is the count-reconciliation interval S in sweeps; 1 selects
	// the exact (bit-identical, sequential) mode and 0 means
	// DefaultSyncEvery.
	SyncEvery int
	// LTM is the base fit configuration; zero-valued fields take the
	// paper's defaults sized to the global dataset.
	LTM core.Config
}

// part is one entity shard: its re-indexed dataset, compiled engine, and
// the mappings back to global ids.
type part struct {
	ds  *model.Dataset
	eng *core.Engine
	// fact2g[localFact] and src2g[localSource] map shard-local ids to
	// global dataset ids. src2g also routes the samplers' table views:
	// shard log tables are aliases of the once-built global tables
	// (core.NewGlobalTables), whose count domains are the global degrees —
	// necessary because reconciled counts include other shards'
	// contributions and so exceed shard-local degrees.
	fact2g []int32
	src2g  []int32

	// Per-fit state (parallel mode): the sampler, the remote baseline the
	// current count view was synchronized against, and reconciliation
	// scratch. All local-source indexed.
	smp          *core.Sampler
	baseN, baseT []int32
	contribN     []int32
	contribT     []int32
	scratchN     []int32
	scratchT     []int32
}

// Fitter is a dataset compiled for entity-sharded fitting: the shard
// datasets, one compiled engine per shard, and the id mappings needed to
// reconcile counts and reassemble global posteriors. Compile once and call
// Fit with as many configurations as needed, like core.Engine.
type Fitter struct {
	ds    *model.Dataset
	parts []*part
	// dispatch[globalFact] = (shard index, local fact id).
	dispatch [][2]int32
}

// Compile partitions ds into (at most) shards entity shards via
// store.SplitEntities, compiles a sampler engine per non-empty shard, and
// builds the global id mappings. Shards exceeding the entity count produce
// empty partitions, which are dropped.
func Compile(ds *model.Dataset, shards int) (*Fitter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: Compile requires shards >= 1, got %d", shards)
	}
	if ds.NumFacts() == 0 {
		return nil, fmt.Errorf("shard: dataset has no facts")
	}

	// Global id lookups. Fact identity is the (entity name, attribute)
	// pair — unique by Definition 2 — and source identity is the name.
	factID := make(map[[2]string]int32, ds.NumFacts())
	for _, f := range ds.Facts {
		factID[[2]string{ds.Entities[f.Entity], f.Attribute}] = int32(f.ID)
	}
	srcID := make(map[string]int32, ds.NumSources())
	for s, name := range ds.Sources {
		srcID[name] = int32(s)
	}

	f := &Fitter{
		ds:       ds,
		dispatch: make([][2]int32, ds.NumFacts()),
	}
	for i := range f.dispatch {
		f.dispatch[i] = [2]int32{-1, -1}
	}

	claims := 0
	for _, piece := range store.SplitEntities(ds, shards) {
		if piece.NumFacts() == 0 {
			continue
		}
		p := &part{
			ds:     piece,
			eng:    core.Compile(piece),
			fact2g: make([]int32, piece.NumFacts()),
			src2g:  make([]int32, piece.NumSources()),
		}
		k := int32(len(f.parts))
		for i, fact := range piece.Facts {
			g, ok := factID[[2]string{piece.Entities[fact.Entity], fact.Attribute}]
			if !ok {
				return nil, fmt.Errorf("shard: fact (%q, %q) missing from global dataset",
					piece.Entities[fact.Entity], fact.Attribute)
			}
			if f.dispatch[g][0] >= 0 {
				return nil, fmt.Errorf("shard: fact %d assigned to shards %d and %d", g, f.dispatch[g][0], k)
			}
			p.fact2g[i] = g
			f.dispatch[g] = [2]int32{k, int32(i)}
		}
		for s, name := range piece.Sources {
			g, ok := srcID[name]
			if !ok {
				return nil, fmt.Errorf("shard: source %q missing from global dataset", name)
			}
			p.src2g[s] = g
		}
		claims += piece.NumClaims()
		f.parts = append(f.parts, p)
	}
	// Every fact in exactly one shard, every claim accounted for: the
	// partition invariant the property tests assert from outside.
	for g, d := range f.dispatch {
		if d[0] < 0 {
			return nil, fmt.Errorf("shard: fact %d not assigned to any shard", g)
		}
	}
	if claims != ds.NumClaims() {
		return nil, fmt.Errorf("shard: partition carries %d claims, dataset has %d", claims, ds.NumClaims())
	}
	return f, nil
}

// Shards returns the number of non-empty shards actually compiled.
func (f *Fitter) Shards() int { return len(f.parts) }

// Dataset returns the global dataset this fitter was compiled from.
func (f *Fitter) Dataset() *model.Dataset { return f.ds }

// Fit runs entity-sharded collapsed Gibbs sampling under cfg. syncEvery is
// the reconciliation interval S: 1 selects the exact sequential mode
// (bit-identical to the single-engine fit), values >= 2 run the shards
// concurrently with counts reconciled every S sweeps, and 0 means
// DefaultSyncEvery.
func (f *Fitter) Fit(cfg core.Config, syncEvery int) (*core.FitResult, error) {
	if syncEvery == 0 {
		syncEvery = DefaultSyncEvery
	}
	if syncEvery < 1 {
		return nil, fmt.Errorf("shard: syncEvery = %d must be positive", syncEvery)
	}
	rcfg := cfg.WithDefaults(f.ds.NumFacts())
	if err := rcfg.Validate(); err != nil {
		return nil, err
	}

	var err error
	if syncEvery == 1 {
		err = f.fitExact(rcfg)
	} else {
		err = f.fitParallel(rcfg, syncEvery)
	}
	if err != nil {
		return nil, err
	}

	prob := make([]float64, f.ds.NumFacts())
	for _, p := range f.parts {
		pp := p.smp.Probabilities()
		for i, g := range p.fact2g {
			prob[g] = pp[i]
		}
	}
	samples := f.parts[0].smp.SamplesKept()
	return core.AssembleFit(f.ds, prob, rcfg, samples), nil
}

// fitExact is the S=1 barrier mode: one shared RNG and one globally
// synchronized count table, facts initialized and swept in global order.
// Per-flip synchronization serializes the sweep, so this mode does not
// parallelize — it exists as the bit-identical fallback and as the
// equivalence oracle for the shard bookkeeping.
func (f *Fitter) fitExact(rcfg core.Config) error {
	ns := f.ds.NumSources()
	n := make([]int32, 4*ns)
	tot := make([]int32, 2*ns)
	// One global log-table build shared by every shard: the per-shard
	// samplers alias per-source table slices through src2g, so table cost
	// does not multiply with the shard count.
	glob, err := core.NewGlobalTables(f.ds, rcfg)
	if err != nil {
		return err
	}
	for _, p := range f.parts {
		smp, err := p.eng.NewSampler(core.SamplerSpec{
			Config: rcfg, Shared: glob, Src2G: p.src2g, DeferInit: true,
		})
		if err != nil {
			return err
		}
		p.smp = smp
	}
	rng := stats.NewRNG(rcfg.Seed)
	for _, d := range f.dispatch {
		p := f.parts[d[0]]
		p.smp.InitFactShared(int(d[1]), rng, n, tot, p.src2g)
	}
	for iter := 1; iter <= rcfg.Iterations; iter++ {
		for _, d := range f.dispatch {
			p := f.parts[d[0]]
			p.smp.SampleFactShared(int(d[1]), rng, n, tot, p.src2g)
		}
		if core.KeepIteration(rcfg, iter) {
			for _, p := range f.parts {
				p.smp.Keep()
			}
		}
	}
	return nil
}

// fitParallel is the S>=2 mode: every shard runs an independent chain
// (seed + shard index) over its own claims, sweeping concurrently; every
// S sweeps a barrier reconciles the per-source confusion counts so each
// shard's next block samples against the freshly synchronized global
// tables plus its own live contribution.
func (f *Fitter) fitParallel(rcfg core.Config, syncEvery int) error {
	// See fitExact: one global table build, aliased by every shard.
	glob, err := core.NewGlobalTables(f.ds, rcfg)
	if err != nil {
		return err
	}
	for k, p := range f.parts {
		pcfg := rcfg
		pcfg.Seed = rcfg.Seed + int64(k)
		smp, err := p.eng.NewSampler(core.SamplerSpec{Config: pcfg, Shared: glob, Src2G: p.src2g})
		if err != nil {
			return err
		}
		p.smp = smp
		ls := p.ds.NumSources()
		p.baseN = make([]int32, 4*ls)
		p.baseT = make([]int32, 2*ls)
		p.contribN = make([]int32, 4*ls)
		p.contribT = make([]int32, 2*ls)
		p.scratchN = make([]int32, 4*ls)
		p.scratchT = make([]int32, 2*ls)
	}
	gn := make([]int32, 4*f.ds.NumSources())
	gt := make([]int32, 2*f.ds.NumSources())

	// Initial barrier: fold every shard's random initialization into the
	// global tables so the first block already samples against them.
	if err := f.reconcile(gn, gt); err != nil {
		return err
	}
	for start := 0; start < rcfg.Iterations; start += syncEvery {
		end := start + syncEvery
		if end > rcfg.Iterations {
			end = rcfg.Iterations
		}
		core.ParallelFor(len(f.parts), func(k int) {
			p := f.parts[k]
			for iter := start + 1; iter <= end; iter++ {
				p.smp.Sweep()
				if core.KeepIteration(rcfg, iter) {
					p.smp.Keep()
				}
			}
		})
		if err := f.reconcile(gn, gt); err != nil {
			return err
		}
	}
	return nil
}

// reconcile is the sync barrier: it recovers each shard's own count
// contribution (current view minus the baseline imported at the previous
// barrier), sums contributions into the global tables — exact, since every
// claim belongs to exactly one shard — and redistributes the synchronized
// view, recording the new baseline so the next barrier can separate own
// from remote again. Counts are integers, so reconciliation is exact and
// order-independent.
func (f *Fitter) reconcile(gn, gt []int32) error {
	for i := range gn {
		gn[i] = 0
	}
	for i := range gt {
		gt[i] = 0
	}
	for _, p := range f.parts {
		curN, curT := p.smp.Counts()
		for i := range curN {
			p.contribN[i] = curN[i] - p.baseN[i]
		}
		for i := range curT {
			p.contribT[i] = curT[i] - p.baseT[i]
		}
		for ls, gs := range p.src2g {
			for j := 0; j < 4; j++ {
				gn[int(gs)*4+j] += p.contribN[ls*4+j]
			}
			gt[int(gs)*2] += p.contribT[ls*2]
			gt[int(gs)*2+1] += p.contribT[ls*2+1]
		}
	}
	for _, p := range f.parts {
		for ls, gs := range p.src2g {
			for j := 0; j < 4; j++ {
				p.scratchN[ls*4+j] = gn[int(gs)*4+j]
			}
			p.scratchT[ls*2] = gt[int(gs)*2]
			p.scratchT[ls*2+1] = gt[int(gs)*2+1]
		}
		if err := p.smp.SetCounts(p.scratchN, p.scratchT); err != nil {
			return err
		}
		for i := range p.scratchN {
			p.baseN[i] = p.scratchN[i] - p.contribN[i]
		}
		for i := range p.scratchT {
			p.baseT[i] = p.scratchT[i] - p.contribT[i]
		}
	}
	return nil
}

// Fit is the convenience one-call form: it compiles cfg.Shards entity
// shards over ds and fits. cfg.Shards <= 1 falls back to the plain
// single-engine fit.
func Fit(ds *model.Dataset, cfg Config) (*core.FitResult, error) {
	if cfg.Shards <= 1 {
		return core.New(cfg.LTM).Fit(ds)
	}
	f, err := Compile(ds, cfg.Shards)
	if err != nil {
		return nil, err
	}
	return f.Fit(cfg.LTM, cfg.SyncEvery)
}

// MergeCounts is the exported, cluster-level form of the reconcile barrier:
// it folds one partition's per-source expected-count contribution into a
// global accumulator. Like reconcile, the merge is a plain sum and is exact
// in the sense that every claim belongs to exactly one partition, so no
// cell is ever counted twice; unlike the in-process barrier the cells are
// float64 expected counts (posterior-weighted), so cross-partition merges
// commute up to float addition order. Callers that need a deterministic
// result must fold contributions in a fixed partition order.
func MergeCounts(global map[string][2][2]float64, contrib map[string][2][2]float64) map[string][2][2]float64 {
	if global == nil {
		global = make(map[string][2][2]float64, len(contrib))
	}
	for name, e := range contrib {
		acc := global[name]
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				acc[i][j] += e[i][j]
			}
		}
		global[name] = acc
	}
	return global
}
