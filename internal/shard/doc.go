// Package shard implements entity-sharded parallel inference for the
// Latent Truth Model: the collapsed Gibbs sampler of §5.2 (Algorithm 1)
// executed over a claim store partitioned by entity, in the style of
// distributed-LDA samplers.
//
// Algorithm 1's conditional for a fact factorizes given the global
// per-source confusion counts n_{s,i,j} — the only state shared between
// facts of different entities. The fitter therefore partitions the dataset
// into entity shards (store.SplitEntities), compiles one sampler engine
// layout per shard, sweeps the shards concurrently against shard-local
// copies of the count tables, and reconciles the global (n_tp, n_fp,
// n_tn, n_fn) counts at a configurable sync interval: every S sweeps, a
// barrier sums each shard's own contribution into the global tables and
// redistributes the synchronized view. Between barriers each shard samples
// against counts that are exact for its own claims and up to S−1 sweeps
// stale for other shards' — the same approximation distributed LDA makes
// for its topic-word counts.
//
// Two operating modes:
//
//   - SyncEvery >= 2 (parallel): shards sweep concurrently on a worker
//     pool; per-shard chains draw from independent RNGs (seed + shard
//     index). Deterministic for a fixed (shards, sync interval, seed)
//     triple, and within a small posterior tolerance of the single-engine
//     fit (asserted by TestShardedFitCloseToReference).
//
//   - SyncEvery == 1 (exact): the barrier degenerates to per-flip
//     synchronization — facts are sampled in global order against fully
//     synchronized count tables from a single RNG stream, which is
//     bit-identical to the single-engine reference fit (asserted by
//     TestShardedFitExactMatchesReference). Exact mode exercises the full
//     shard bookkeeping (per-shard layouts, fact and source id mappings,
//     globally bounded log tables) and is the fallback for small data or
//     reproducibility-sensitive runs; it does not parallelize.
//
// The shard layer is consumed by stream.Online.Refit (periodic full
// retrains of §5.4) and by the serve daemon's full-refit policy, so
// truthserve refits scale across cores; cmd/truthfind and cmd/experiments
// expose it via -shards/-sync-every.
package shard
