package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"latenttruth/internal/model"
)

// TriplesHeader is the canonical header of a triples file.
var TriplesHeader = []string{"entity", "attribute", "source"}

// ReadTriples parses a triples CSV into a raw database. A header row equal
// to TriplesHeader is skipped if present. Duplicate triples are tolerated
// (the raw database de-duplicates).
func ReadTriples(r io.Reader) (*model.RawDB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	db := model.NewRawDB()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading triples: %w", err)
		}
		line++
		if line == 1 && rec[0] == TriplesHeader[0] && rec[1] == TriplesHeader[1] && rec[2] == TriplesHeader[2] {
			continue
		}
		if rec[0] == "" || rec[1] == "" || rec[2] == "" {
			return nil, fmt.Errorf("dataset: triples line %d: empty field", line)
		}
		db.Add(rec[0], rec[1], rec[2])
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("dataset: triples input contains no rows")
	}
	return db, nil
}

// WriteTriples writes the raw database with a header row.
func WriteTriples(w io.Writer, db *model.RawDB) error {
	return WriteTriplesRows(w, db.Rows())
}

// WriteTriplesRows is WriteTriples over a bare row slice, for storage
// backends that hold rows outside a RawDB.
func WriteTriplesRows(w io.Writer, rows []model.Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(TriplesHeader); err != nil {
		return fmt.Errorf("dataset: writing triples header: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Entity, r.Attribute, r.Source}); err != nil {
			return fmt.Errorf("dataset: writing triple: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LabelsHeader is the canonical header of a labels file.
var LabelsHeader = []string{"entity", "attribute", "truth"}

// ReadLabels parses a labels CSV and applies the labels to ds, matching
// facts by entity and attribute name. Labels referencing unknown facts are
// an error (they indicate a dataset/labels mismatch). Truth values accept
// strconv.ParseBool syntax.
func ReadLabels(r io.Reader, ds *model.Dataset) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	index := make(map[[2]string]int, ds.NumFacts())
	for _, f := range ds.Facts {
		index[[2]string{ds.Entities[f.Entity], f.Attribute}] = f.ID
	}
	if ds.Labels == nil {
		ds.Labels = make(map[int]bool)
	}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("dataset: reading labels: %w", err)
		}
		line++
		if line == 1 && rec[0] == LabelsHeader[0] && rec[1] == LabelsHeader[1] && rec[2] == LabelsHeader[2] {
			continue
		}
		f, ok := index[[2]string{rec[0], rec[1]}]
		if !ok {
			return fmt.Errorf("dataset: labels line %d: no fact (%s, %s) in dataset", line, rec[0], rec[1])
		}
		v, err := strconv.ParseBool(rec[2])
		if err != nil {
			return fmt.Errorf("dataset: labels line %d: bad truth value %q", line, rec[2])
		}
		ds.Labels[f] = v
	}
	return nil
}

// WriteLabels writes ds's labels with entity and attribute names.
func WriteLabels(w io.Writer, ds *model.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(LabelsHeader); err != nil {
		return fmt.Errorf("dataset: writing labels header: %w", err)
	}
	for _, f := range ds.LabeledFacts() {
		fact := ds.Facts[f]
		rec := []string{ds.Entities[fact.Entity], fact.Attribute, strconv.FormatBool(ds.Labels[f])}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing label: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TruthHeader is the canonical header of a truth-table file.
var TruthHeader = []string{"entity", "attribute", "probability", "predicted"}

// WriteTruth writes a method's result as a truth table at the given
// threshold, in fact-id order.
func WriteTruth(w io.Writer, ds *model.Dataset, res *model.Result, threshold float64) error {
	if len(res.Prob) != ds.NumFacts() {
		return fmt.Errorf("dataset: result has %d scores for %d facts", len(res.Prob), ds.NumFacts())
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(TruthHeader); err != nil {
		return fmt.Errorf("dataset: writing truth header: %w", err)
	}
	for _, f := range ds.Facts {
		rec := []string{
			ds.Entities[f.Entity],
			f.Attribute,
			strconv.FormatFloat(res.Prob[f.ID], 'f', 6, 64),
			strconv.FormatBool(res.Predict(f.ID, threshold)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing truth row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// PosteriorHeader is the canonical header of a posterior file.
var PosteriorHeader = []string{"entity", "attribute", "probability"}

// WritePosterior writes the per-fact posterior in fact-id order at full
// float64 precision: FormatFloat with precision -1 emits the shortest
// decimal that parses back to the identical bits, so a posterior written
// here and read back with ReadPosterior is bit-exact. This is the file
// that lets recovery and replication followers reconstruct the previous
// snapshot's probabilities exactly — the starting point a dirty refit's
// copy-on-write posterior is scattered into.
func WritePosterior(w io.Writer, ds *model.Dataset, prob []float64) error {
	if len(prob) != ds.NumFacts() {
		return fmt.Errorf("dataset: posterior has %d scores for %d facts", len(prob), ds.NumFacts())
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(PosteriorHeader); err != nil {
		return fmt.Errorf("dataset: writing posterior header: %w", err)
	}
	for _, f := range ds.Facts {
		rec := []string{
			ds.Entities[f.Entity],
			f.Attribute,
			strconv.FormatFloat(prob[f.ID], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing posterior row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPosterior parses a posterior CSV (as written by WritePosterior) and
// aligns it to ds, matching facts by entity and attribute name. Every fact
// of ds must be covered and every row must name a known fact — anything
// else means the posterior belongs to a different dataset.
func ReadPosterior(r io.Reader, ds *model.Dataset) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	index := make(map[[2]string]int, ds.NumFacts())
	for _, f := range ds.Facts {
		index[[2]string{ds.Entities[f.Entity], f.Attribute}] = f.ID
	}
	prob := make([]float64, ds.NumFacts())
	seen := make([]bool, ds.NumFacts())
	line, n := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading posterior: %w", err)
		}
		line++
		if line == 1 && rec[0] == PosteriorHeader[0] && rec[1] == PosteriorHeader[1] {
			continue
		}
		f, ok := index[[2]string{rec[0], rec[1]}]
		if !ok {
			return nil, fmt.Errorf("dataset: posterior line %d: unknown fact (%q, %q)", line, rec[0], rec[1])
		}
		if seen[f] {
			return nil, fmt.Errorf("dataset: posterior line %d: duplicate fact (%q, %q)", line, rec[0], rec[1])
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: posterior line %d: %w", line, err)
		}
		prob[f] = v
		seen[f] = true
		n++
	}
	if n != ds.NumFacts() {
		return nil, fmt.Errorf("dataset: posterior covers %d of %d facts", n, ds.NumFacts())
	}
	return prob, nil
}

// QualityHeader is the canonical header of a source-quality file.
var QualityHeader = []string{"source", "sensitivity", "specificity", "precision", "accuracy"}

// WriteQuality writes a source-quality table (Table 8 format plus
// precision and accuracy).
func WriteQuality(w io.Writer, quality []model.SourceQuality) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(QualityHeader); err != nil {
		return fmt.Errorf("dataset: writing quality header: %w", err)
	}
	ff := func(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
	for _, q := range quality {
		rec := []string{q.Source, ff(q.Sensitivity), ff(q.Specificity), ff(q.Precision), ff(q.Accuracy)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing quality row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadQuality parses a source-quality CSV (as written by WriteQuality).
func ReadQuality(r io.Reader) ([]model.SourceQuality, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var out []model.SourceQuality
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading quality: %w", err)
		}
		line++
		if line == 1 && rec[0] == QualityHeader[0] {
			continue
		}
		q := model.SourceQuality{Source: rec[0]}
		for i, dst := range []*float64{&q.Sensitivity, &q.Specificity, &q.Precision, &q.Accuracy} {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: quality line %d column %s: %w", line, QualityHeader[i+1], err)
			}
			*dst = v
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: quality input contains no rows")
	}
	return out, nil
}

// LoadTriplesFile reads a triples CSV from path and builds the dataset.
func LoadTriplesFile(path string) (*model.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	db, err := ReadTriples(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return model.Build(db), nil
}

// SaveFile writes the output of write to path, crash-safely: the content
// goes to a temporary file in the target directory, is fsynced, and is
// atomically renamed over path (with a directory fsync), so readers — and
// a post-crash filesystem — observe either the old file or the complete
// new one, never a truncated or half-written state. On any error the
// original file is left untouched and the temporary file is removed.
func SaveFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	// CreateTemp makes 0600 files; give the result normal output-file
	// permissions (preserving the target's mode when it already exists).
	perm := os.FileMode(0o644)
	if info, serr := os.Stat(path); serr == nil {
		perm = info.Mode().Perm()
	}
	if err := f.Chmod(perm); err != nil {
		return fail(fmt.Errorf("dataset: chmod %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("dataset: fsync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: %w", err)
	}
	// Make the rename itself durable.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("dataset: fsync %s: %w", dir, err)
	}
	return nil
}
