// Package dataset reads and writes the library's on-disk formats, all CSV:
//
//   - triples: entity,attribute,source — the raw database of Definition 1;
//   - labels: entity,attribute,truth — the human-labeled evaluation subset
//     (§6.1.2);
//   - truth tables: entity,attribute,probability,predicted — a method's
//     output at a threshold (Definition 4, Table 4);
//   - quality tables: source,sensitivity,specificity,precision,accuracy —
//     the §5.3 read-off (Table 8).
//
// All readers are strict about column counts and value syntax, and report
// the offending line number in errors; fuzz tests assert they never panic
// on arbitrary input.
package dataset
