package dataset

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latenttruth/internal/model"
)

func sampleDB() *model.RawDB {
	db := model.NewRawDB()
	db.Add("Harry Potter", "Daniel Radcliffe", "IMDB")
	db.Add("Harry Potter", "Emma Watson", "IMDB")
	db.Add("Harry Potter", "Emma Watson", "BadSource.com")
	db.Add("Pirates 4", "Johnny Depp", "Hulu.com")
	return db
}

func TestTriplesRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := WriteTriples(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", got.Len(), db.Len())
	}
	for i, r := range db.Rows() {
		if got.Rows()[i] != r {
			t.Fatalf("row %d: %v vs %v", i, got.Rows()[i], r)
		}
	}
}

func TestReadTriplesWithoutHeader(t *testing.T) {
	in := "e1,a1,s1\ne2,a2,s2\n"
	db, err := ReadTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("rows = %d", db.Len())
	}
}

func TestReadTriplesQuotedFields(t *testing.T) {
	in := "entity,attribute,source\n\"Book, The\",\"Smith, J.\",shop\n"
	db, err := ReadTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Rows()[0].Entity != "Book, The" || db.Rows()[0].Attribute != "Smith, J." {
		t.Fatalf("row = %+v", db.Rows()[0])
	}
}

func TestReadTriplesErrors(t *testing.T) {
	cases := map[string]string{
		"wrong column count": "a,b\n",
		"empty field":        "e,,s\n",
		"empty input":        "",
		"header only":        "entity,attribute,source\n",
	}
	for name, in := range cases {
		if _, err := ReadTriples(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	ds := model.Build(sampleDB())
	ds.Labels[0] = true
	ds.Labels[2] = false
	var buf bytes.Buffer
	if err := WriteLabels(&buf, ds); err != nil {
		t.Fatal(err)
	}
	ds2 := model.Build(sampleDB())
	if err := ReadLabels(&buf, ds2); err != nil {
		t.Fatal(err)
	}
	if len(ds2.Labels) != 2 || ds2.Labels[0] != true || ds2.Labels[2] != false {
		t.Fatalf("labels = %v", ds2.Labels)
	}
}

func TestReadLabelsUnknownFact(t *testing.T) {
	ds := model.Build(sampleDB())
	in := "entity,attribute,truth\nNope,Nothing,true\n"
	if err := ReadLabels(strings.NewReader(in), ds); err == nil ||
		!strings.Contains(err.Error(), "no fact") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadLabelsBadBool(t *testing.T) {
	ds := model.Build(sampleDB())
	in := "Harry Potter,Daniel Radcliffe,maybe\n"
	if err := ReadLabels(strings.NewReader(in), ds); err == nil ||
		!strings.Contains(err.Error(), "bad truth value") {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteTruth(t *testing.T) {
	ds := model.Build(sampleDB())
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.9, 0.4, 1}
	var buf bytes.Buffer
	if err := WriteTruth(&buf, ds, res, 0.5); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 facts
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "0.900000,true") {
		t.Fatalf("line 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "0.400000,false") {
		t.Fatalf("line 2 = %q", lines[2])
	}
}

func TestWriteTruthSizeMismatch(t *testing.T) {
	ds := model.Build(sampleDB())
	res := &model.Result{Method: "m", Prob: []float64{0.5}}
	if err := WriteTruth(&bytes.Buffer{}, ds, res, 0.5); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestQualityRoundTrip(t *testing.T) {
	in := []model.SourceQuality{
		{Source: "imdb", Sensitivity: 0.91, Specificity: 0.89, Precision: 0.95, Accuracy: 0.9},
		{Source: "netflix", Sensitivity: 0.89, Specificity: 0.93, Precision: 0.97, Accuracy: 0.91},
	}
	var buf bytes.Buffer
	if err := WriteQuality(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuality(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	for i := range in {
		if got[i].Source != in[i].Source ||
			math.Abs(got[i].Sensitivity-in[i].Sensitivity) > 1e-9 ||
			math.Abs(got[i].Specificity-in[i].Specificity) > 1e-9 ||
			math.Abs(got[i].Precision-in[i].Precision) > 1e-9 ||
			math.Abs(got[i].Accuracy-in[i].Accuracy) > 1e-9 {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], in[i])
		}
	}
}

func TestReadQualityErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "source,sensitivity,specificity,precision,accuracy\n",
		"bad float":    "s,x,0.5,0.5,0.5\n",
		"wrong fields": "s,0.5\n",
	}
	for name, in := range cases {
		if _, err := ReadQuality(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadTriplesFileAndSaveFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "triples.csv")
	db := sampleDB()
	if err := SaveFile(path, func(w io.Writer) error {
		return WriteTriples(w, db)
	}); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadTriplesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFacts() != 3 {
		t.Fatalf("facts = %d", ds.NumFacts())
	}
	if _, err := LoadTriplesFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A failing writer must leave the original untouched and no temp
	// files behind.
	boom := errors.New("boom")
	err := SaveFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("failed save clobbered the file: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}

	// A successful save replaces the content atomically, preserving the
	// target's permissions (CreateTemp alone would leave 0600).
	if err := SaveFile(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "fresh")
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "fresh" {
		t.Fatalf("content = %q, want fresh", got)
	}
	if info, err := os.Stat(path); err != nil || info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v (err=%v), want 0644", info.Mode(), err)
	}
	if entries, _ = os.ReadDir(dir); len(entries) != 1 {
		t.Fatalf("temp files left behind after success: %v", entries)
	}

	// A missing target directory fails up front.
	if err := SaveFile(filepath.Join(dir, "nope", "x.csv"), func(io.Writer) error { return nil }); err == nil {
		t.Fatal("expected error for missing directory")
	}
}
