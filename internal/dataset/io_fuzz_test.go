package dataset

import (
	"strings"
	"testing"

	"latenttruth/internal/model"
)

// FuzzReadTriples asserts the triples reader's robustness contract:
// whatever bytes arrive — malformed CSV, broken quoting, empty fields,
// wrong column counts, huge lines, binary garbage — ReadTriples either
// returns a valid raw database or an error. It must never panic, and any
// database it does return must rebuild into a dataset satisfying the
// Definition 2–3 invariants.
func FuzzReadTriples(f *testing.F) {
	// Seed corpus: the canonical shapes plus the malformations the strict
	// reader documents.
	seeds := []string{
		"entity,attribute,source\ne1,a1,s1\ne1,a2,s2\ne2,a1,s1\n",
		"e1,a1,s1\n",
		"e1,a1,s1",                  // no trailing newline
		"",                          // empty input
		"entity,attribute,source\n", // header only
		"e1,a1\n",                   // too few columns
		"e1,a1,s1,extra\n",          // too many columns
		"e1,,s1\n",                  // empty field
		",,\n",                      // all empty
		"\"e1\",\"a 1\",\"s,1\"\n",  // quoting, embedded comma
		"\"unterminated,a1,s1\n",    // broken quote
		"e\"mid\"quote,a1,s1\n",     // bare quote mid-field
		"e1,a1,s1\r\ne2,a2,s2\r\n",  // CRLF
		"e1,a\n1,s1\n",              // newline inside unquoted field
		"\"e\n1\",a1,s1\n",          // quoted newline
		"e1,a1," + strings.Repeat("x", 1<<16) + "\n",         // huge field
		strings.Repeat("e,a,s\n", 2000),                      // many duplicate rows
		"\xff\xfe\x00binary,a,b\n",                           // non-UTF8 bytes
		"entity,attribute,source\nentity,attribute,source\n", // header twice
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		db, err := ReadTriples(strings.NewReader(in))
		if err != nil {
			if db != nil {
				t.Fatalf("non-nil database alongside error %v", err)
			}
			return
		}
		if db.Len() == 0 {
			t.Fatal("reader returned an empty database without error")
		}
		for i, r := range db.Rows() {
			if r.Entity == "" || r.Attribute == "" || r.Source == "" {
				t.Fatalf("row %d has an empty component: %+v", i, r)
			}
		}
		// Accepted input must round-trip through the full data model.
		ds := buildFromDB(t, db)
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted input builds an invalid dataset: %v", err)
		}
		if ds.NumClaims() < db.Len() {
			t.Fatalf("%d claims derived from %d rows", ds.NumClaims(), db.Len())
		}
	})
}

// buildFromDB wraps model.Build, converting any panic (which would mean
// the reader accepted rows the model rejects) into a test failure.
func buildFromDB(t *testing.T, db *model.RawDB) *model.Dataset {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("model.Build panicked on reader-accepted input: %v", r)
		}
	}()
	return model.Build(db)
}

// FuzzReadQuality gives the quality-table reader the same never-panic
// treatment: arbitrary bytes yield a table or an error.
func FuzzReadQuality(f *testing.F) {
	seeds := []string{
		"source,sensitivity,specificity,precision,accuracy\ns1,0.9,0.8,0.7,0.6\n",
		"s1,0.9,0.8,0.7,0.6\n",
		"s1,0.9,0.8,0.7\n",   // too few columns
		"s1,x,0.8,0.7,0.6\n", // non-numeric
		"s1,NaN,Inf,-1,2\n",  // odd but parseable floats
		"",                   // empty
		"source,sensitivity,specificity,precision,accuracy\n", // header only
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		rows, err := ReadQuality(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(rows) == 0 {
			t.Fatal("reader returned an empty table without error")
		}
	})
}
