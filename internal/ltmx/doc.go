// Package ltmx implements the extensions the paper sketches in §7
// (Discussions): iterative filtering of adversarial sources, joint
// inference over multiple attribute types with a shared quality prior,
// entity clustering with cluster-specific source quality, and a
// real-valued (Gaussian) observation variant for numeric attributes.
// These go beyond the evaluated system and are benchmarked separately as
// ablations.
package ltmx
