package ltmx

import (
	"fmt"
	"math"
	"sort"
)

// The real-valued loss extension of §7: for numeric attribute types
// (release years, runtimes, populations) a 0/1 error model is wrong —
// "inexact matches of terms, numerical attributes" call for a Gaussian
// observation model. NumericClaim, GaussianConfig and GaussianTruth
// implement that variant: each entity has a latent real truth μ_e, each
// source a latent noise variance σ²_s (its quality — small variance means
// a reliable source), and every observation is drawn as
//
//	v_{s,e} ~ Normal(μ_e, σ²_s) .
//
// Inference is expectation-maximization with conjugate priors: a
// Normal(m0, 1/κ0) prior on each μ_e and an Inverse-Gamma(a0, b0) prior
// on each σ²_s. The E-step computes each entity's Gaussian posterior
// (mean m_e, variance V_e); the M-step updates each source's variance
// from E[(v − μ_e)²] = (v − m_e)² + V_e. Including V_e is essential: a
// pure MAP alternation (V_e omitted) has a degenerate optimum where a
// dense source pulls every entity mean onto itself and then claims
// near-zero variance, whereas the EM fixpoint recovers the generating
// variances exactly.

// NumericClaim is one numeric assertion: source claims that entity's
// attribute value is Value.
type NumericClaim struct {
	Entity string
	Source string
	Value  float64
}

// GaussianConfig holds the conjugate hyperparameters.
type GaussianConfig struct {
	// PriorMeanWeight is κ0, the pseudo-observation count of the entity
	// mean prior (default 0.01: nearly uninformative, centred on the
	// per-entity sample mean).
	PriorMeanWeight float64
	// VarShape and VarScale are a0 and b0 of the Inverse-Gamma prior on
	// source variance (defaults 2 and 1: mean variance 1 with infinite
	// variance of the prior itself — weakly informative).
	VarShape, VarScale float64
	// Iterations is the number of coordinate sweeps (default 50).
	Iterations int
	// Tolerance stops early when entity means move less (default 1e-9).
	Tolerance float64
}

// withDefaults fills unset fields.
func (c GaussianConfig) withDefaults() GaussianConfig {
	if c.PriorMeanWeight == 0 {
		c.PriorMeanWeight = 0.01
	}
	if c.VarShape == 0 {
		c.VarShape = 2
	}
	if c.VarScale == 0 {
		c.VarScale = 1
	}
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-9
	}
	return c
}

// GaussianResult is the output of GaussianTruth.
type GaussianResult struct {
	// Truth maps each entity to its inferred value.
	Truth map[string]float64
	// SourceVariance maps each source to its inferred noise variance; the
	// source-quality analogue (smaller is better).
	SourceVariance map[string]float64
	// Iterations is the number of sweeps actually run.
	Iterations int
}

// GaussianTruth infers numeric truths and source variances from claims.
// Every entity needs at least one claim; sources with a single claim are
// regularized entirely by the prior.
func GaussianTruth(claims []NumericClaim, cfg GaussianConfig) (*GaussianResult, error) {
	if len(claims) == 0 {
		return nil, fmt.Errorf("ltmx: no numeric claims")
	}
	cfg = cfg.withDefaults()
	if cfg.PriorMeanWeight < 0 || cfg.VarShape <= 0 || cfg.VarScale <= 0 {
		return nil, fmt.Errorf("ltmx: invalid Gaussian hyperparameters %+v", cfg)
	}
	// Index entities and sources.
	entIdx := make(map[string]int)
	srcIdx := make(map[string]int)
	var entities, sources []string
	for _, c := range claims {
		if c.Entity == "" || c.Source == "" {
			return nil, fmt.Errorf("ltmx: claim with empty entity or source")
		}
		if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return nil, fmt.Errorf("ltmx: claim (%s, %s) has non-finite value", c.Entity, c.Source)
		}
		if _, ok := entIdx[c.Entity]; !ok {
			entIdx[c.Entity] = len(entities)
			entities = append(entities, c.Entity)
		}
		if _, ok := srcIdx[c.Source]; !ok {
			srcIdx[c.Source] = len(sources)
			sources = append(sources, c.Source)
		}
	}
	type obs struct{ e, s int }
	idx := make([]obs, len(claims))
	byEntity := make([][]int, len(entities))
	bySource := make([][]int, len(sources))
	for i, c := range claims {
		idx[i] = obs{entIdx[c.Entity], srcIdx[c.Source]}
		byEntity[idx[i].e] = append(byEntity[idx[i].e], i)
		bySource[idx[i].s] = append(bySource[idx[i].s], i)
	}
	// Initialize μ at per-entity medians (robust start) and σ² by the
	// method of moments on pairwise differences: E[(v_s − v_s')²] =
	// σ²_s + σ²_s' over shared entities identifies the variances with
	// three or more sources, and starting EM there avoids the mirrored
	// local optimum where two sources swap noise levels.
	mu := make([]float64, len(entities))
	for e, cs := range byEntity {
		vals := make([]float64, len(cs))
		for i, ci := range cs {
			vals[i] = claims[ci].Value
		}
		sort.Float64s(vals)
		mu[e] = vals[len(vals)/2]
	}
	values := make([]float64, len(claims))
	srcs := make([]int, len(claims))
	for i := range claims {
		values[i] = claims[i].Value
		srcs[i] = idx[i].s
	}
	sigma2 := initVariances(values, srcs, byEntity, len(sources))
	prev := make([]float64, len(entities))
	// postVar[e] is V_e, the posterior variance of μ_e from the E-step.
	postVar := make([]float64, len(entities))
	// invVar[s] caches 1/σ²_s for the E-step: one division per source per
	// sweep instead of one per claim per sweep.
	invVar := make([]float64, len(sources))
	k0 := cfg.PriorMeanWeight
	iters := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		iters = iter + 1
		// E-step: Gaussian posterior of each entity mean, centred (with
		// tiny weight κ0) on the entity's unweighted claim mean.
		copy(prev, mu)
		for s := range sigma2 {
			invVar[s] = 1 / sigma2[s]
		}
		for e, cs := range byEntity {
			var ws, vs, plain float64
			for _, ci := range cs {
				w := invVar[idx[ci].s]
				ws += w
				vs += w * values[ci]
				plain += values[ci]
			}
			m0 := plain / float64(len(cs))
			mu[e] = (vs + k0*m0) / (ws + k0)
			postVar[e] = 1 / (ws + k0)
		}
		// M-step: Inverse-Gamma posterior mode with the expected squared
		// residual E[(v − μ_e)²] = (v − m_e)² + V_e.
		for s, cs := range bySource {
			ss := 0.0
			for _, ci := range cs {
				e := idx[ci].e
				d := values[ci] - mu[e]
				ss += d*d + postVar[e]
			}
			n := float64(len(cs))
			sigma2[s] = (2*cfg.VarScale + ss) / (2*cfg.VarShape + n + 2)
			if sigma2[s] < 1e-12 {
				sigma2[s] = 1e-12
			}
		}
		if maxDelta(prev, mu) < cfg.Tolerance {
			break
		}
	}
	res := &GaussianResult{
		Truth:          make(map[string]float64, len(entities)),
		SourceVariance: make(map[string]float64, len(sources)),
		Iterations:     iters,
	}
	for e, name := range entities {
		res.Truth[name] = mu[e]
	}
	for s, name := range sources {
		res.SourceVariance[name] = sigma2[s]
	}
	return res, nil
}

// initVariances seeds per-source variances by the method of moments:
// for each source pair sharing entities, the mean squared difference of
// their values estimates σ²_s + σ²_s'; the resulting linear system is
// solved by Gauss–Seidel sweeps. Sources with no shared entities start
// at 1.
func initVariances(values []float64, srcs []int, byEntity [][]int, nSources int) []float64 {
	type pair struct{ a, b int }
	sum := map[pair]float64{}
	cnt := map[pair]int{}
	for _, cs := range byEntity {
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				a, b := srcs[cs[i]], srcs[cs[j]]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				d := values[cs[i]] - values[cs[j]]
				sum[pair{a, b}] += d * d
				cnt[pair{a, b}]++
			}
		}
	}
	// partners[s] lists (other source, D estimate) with enough support.
	type edge struct {
		other int
		d     float64
	}
	partners := make([][]edge, nSources)
	for p, c := range cnt {
		if c < 3 {
			continue
		}
		d := sum[p] / float64(c)
		partners[p.a] = append(partners[p.a], edge{p.b, d})
		partners[p.b] = append(partners[p.b], edge{p.a, d})
	}
	x := make([]float64, nSources)
	for s := range x {
		if len(partners[s]) == 0 {
			x[s] = 1
			continue
		}
		// Start at half the smallest pairwise estimate.
		min := partners[s][0].d
		for _, e := range partners[s] {
			if e.d < min {
				min = e.d
			}
		}
		x[s] = min / 2
	}
	const floor = 1e-9
	for sweep := 0; sweep < 50; sweep++ {
		for s := range x {
			if len(partners[s]) == 0 {
				continue
			}
			acc := 0.0
			for _, e := range partners[s] {
				r := e.d - x[e.other]
				if r < floor {
					r = floor
				}
				acc += r
			}
			x[s] = acc / float64(len(partners[s]))
		}
	}
	for s := range x {
		if x[s] < floor {
			x[s] = floor
		}
	}
	return x
}

// maxDelta returns the largest absolute element-wise difference.
func maxDelta(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
