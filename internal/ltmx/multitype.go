package ltmx

import (
	"fmt"
	"sort"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
)

// MultiType implements §7's "Multiple attribute types" extension: several
// attribute types (e.g. a movie's directors and its cast) are integrated
// jointly. Each source has a quality signal per type, but all of a
// source's type-specific signals are tied through a shared source-level
// prior, so evidence about a source's reliability on one attribute type
// informs inference on the others.
//
// The paper sketches optimizing the per-source prior by Newton's method
// inside the sampler; this implementation uses the standard empirical-
// Bayes alternative: alternate (1) fitting each type with the current
// per-source priors and (2) re-estimating each source's prior as the base
// prior plus a damped share of the source's expected confusion counts
// pooled across all types. Two or three rounds suffice in practice.
type MultiType struct {
	// Config is the per-type LTM configuration (its Priors act as the
	// global base prior).
	Config core.Config
	// Rounds is the number of alternations (default 2).
	Rounds int
	// Transfer in (0, 1] scales how much of the pooled cross-type counts
	// flows into each type's per-source prior (default 0.5).
	Transfer float64
}

// NewMultiType returns a joint integrator over attribute types.
func NewMultiType(cfg core.Config) *MultiType {
	return &MultiType{Config: cfg, Rounds: 2, Transfer: 0.5}
}

// TypedFit is the per-type output of a joint fit.
type TypedFit struct {
	Type string
	Fit  *core.FitResult
}

// Fit jointly infers truth for every attribute type in types (a map from
// type name to its dataset). Results are keyed and ordered by type name.
func (mt *MultiType) Fit(types map[string]*model.Dataset) ([]TypedFit, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("ltmx: no attribute types given")
	}
	rounds := mt.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	transfer := mt.Transfer
	if transfer <= 0 || transfer > 1 {
		transfer = 0.5
	}
	names := make([]string, 0, len(types))
	for name := range types {
		names = append(names, name)
	}
	sort.Strings(names)

	// Compile each type's claim table once; the flat layout is reused by
	// every empirical-Bayes round (only the priors change between rounds).
	engines := make(map[string]*core.Engine, len(types))
	for _, name := range names {
		engines[name] = core.Compile(types[name])
	}

	// pooled[source][i][j] accumulates expected counts across types.
	var pooled map[string]*[2][2]float64
	var fits []TypedFit
	for round := 0; round < rounds; round++ {
		// Per-source priors from the previous round's pooled counts.
		var sp map[string]core.Priors
		if pooled != nil {
			base := mt.Config.Priors
			if base == (core.Priors{}) {
				// Mirror the sizing rule core uses at fit time.
				maxFacts := 0
				for _, ds := range types {
					if ds.NumFacts() > maxFacts {
						maxFacts = ds.NumFacts()
					}
				}
				base = core.DefaultPriors(maxFacts)
			}
			sp = make(map[string]core.Priors, len(pooled))
			for name, e := range pooled {
				sp[name] = core.Priors{
					FP:   base.FP + transfer*e[0][1],
					TN:   base.TN + transfer*e[0][0],
					TP:   base.TP + transfer*e[1][1],
					FN:   base.FN + transfer*e[1][0],
					True: base.True,
					Fls:  base.Fls,
				}
			}
		}
		// Types within a round are independent given the shared priors:
		// fit them concurrently, then pool counts in deterministic name
		// order.
		roundFits := make([]*core.FitResult, len(names))
		roundErrs := make([]error, len(names))
		core.ParallelFor(len(names), func(i int) {
			cfg := mt.Config
			cfg.SourcePriors = sp
			roundFits[i], roundErrs[i] = engines[names[i]].Fit(cfg)
		})
		for i, name := range names {
			if roundErrs[i] != nil {
				return nil, fmt.Errorf("ltmx: type %q round %d: %w", name, round, roundErrs[i])
			}
		}
		pooled = make(map[string]*[2][2]float64)
		fits = fits[:0]
		for i, name := range names {
			ds := types[name]
			fit := roundFits[i]
			fits = append(fits, TypedFit{Type: name, Fit: fit})
			e := core.ExpectedCounts(ds, fit.Prob)
			for s, src := range ds.Sources {
				acc, ok := pooled[src]
				if !ok {
					acc = new([2][2]float64)
					pooled[src] = acc
				}
				for i := 0; i <= 1; i++ {
					for j := 0; j <= 1; j++ {
						acc[i][j] += e[s][i][j]
					}
				}
			}
		}
	}
	return fits, nil
}
