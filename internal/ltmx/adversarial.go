package ltmx

import (
	"fmt"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
)

// AdversarialFilter implements §7's "Adversarial sources" remedy: run LTM,
// remove sources whose inferred specificity or precision falls below the
// configured floors (their presence artificially inflates the specificity
// of benign sources), and re-run on the surviving claims, iterating until
// no source is removed or MaxRounds is reached.
type AdversarialFilter struct {
	// Config configures the underlying LTM fits.
	Config core.Config
	// MinSpecificity and MinPrecision are the §7 removal floors.
	MinSpecificity float64
	MinPrecision   float64
	// MaxRounds bounds the iteration (default 5).
	MaxRounds int
}

// NewAdversarialFilter returns a filter with sensible floors: sources less
// than 50% specific or 50% precise are presumed adversarial.
func NewAdversarialFilter(cfg core.Config) *AdversarialFilter {
	return &AdversarialFilter{Config: cfg, MinSpecificity: 0.5, MinPrecision: 0.5, MaxRounds: 5}
}

// FilterResult reports one adversarial-filtering run.
type FilterResult struct {
	// Fit is the final LTM fit on the surviving dataset.
	Fit *core.FitResult
	// Dataset is the surviving dataset the fit refers to.
	Dataset *model.Dataset
	// Removed lists the names of sources removed, in removal order.
	Removed []string
	// Rounds is the number of LTM fits performed.
	Rounds int
}

// Run executes the iterative filter on ds.
func (af *AdversarialFilter) Run(ds *model.Dataset) (*FilterResult, error) {
	if af.MinSpecificity < 0 || af.MinSpecificity > 1 || af.MinPrecision < 0 || af.MinPrecision > 1 {
		return nil, fmt.Errorf("ltmx: removal floors (%v, %v) outside [0,1]", af.MinSpecificity, af.MinPrecision)
	}
	maxRounds := af.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 5
	}
	cur := ds
	out := &FilterResult{}
	for round := 0; round < maxRounds; round++ {
		// Each round fits a freshly rebuilt (shrunken) dataset, so the
		// engine compiles per round; the win here is the engine's faster
		// sweep, not layout reuse.
		fit, err := core.Compile(cur).Fit(af.Config)
		if err != nil {
			return nil, fmt.Errorf("ltmx: round %d: %w", round, err)
		}
		out.Fit, out.Dataset, out.Rounds = fit, cur, round+1
		bad := make(map[string]bool)
		for _, q := range fit.Quality {
			if q.Specificity < af.MinSpecificity || q.Precision < af.MinPrecision {
				bad[q.Source] = true
			}
		}
		if len(bad) == 0 {
			return out, nil
		}
		for _, q := range fit.Quality {
			if bad[q.Source] {
				out.Removed = append(out.Removed, q.Source)
			}
		}
		next, err := removeSources(cur, bad)
		if err != nil {
			return nil, err
		}
		if next.NumFacts() == 0 {
			return nil, fmt.Errorf("ltmx: removing %d sources emptied the dataset", len(out.Removed))
		}
		cur = next
	}
	// Final fit on the last surviving dataset.
	fit, err := core.Compile(cur).Fit(af.Config)
	if err != nil {
		return nil, fmt.Errorf("ltmx: final fit: %w", err)
	}
	out.Fit, out.Dataset, out.Rounds = fit, cur, out.Rounds+1
	return out, nil
}

// removeSources drops all positive assertions by the named sources and
// rebuilds the dataset from the remaining raw rows. Facts left with no
// positive claims disappear; entities left with no facts disappear.
func removeSources(ds *model.Dataset, bad map[string]bool) (*model.Dataset, error) {
	db := model.NewRawDB()
	for _, c := range ds.Claims {
		if !c.Observation || bad[ds.Sources[c.Source]] {
			continue
		}
		f := ds.Facts[c.Fact]
		db.Add(ds.Entities[f.Entity], f.Attribute, ds.Sources[c.Source])
	}
	if db.Len() == 0 {
		return &model.Dataset{Labels: map[int]bool{}}, nil
	}
	next := model.Build(db)
	// Carry labels over by (entity, attribute) name.
	byName := make(map[[2]string]bool, len(ds.Labels))
	for f, v := range ds.Labels {
		fact := ds.Facts[f]
		byName[[2]string{ds.Entities[fact.Entity], fact.Attribute}] = v
	}
	for _, f := range next.Facts {
		if v, ok := byName[[2]string{next.Entities[f.Entity], f.Attribute}]; ok {
			next.Labels[f.ID] = v
		}
	}
	if err := next.Validate(); err != nil {
		return nil, fmt.Errorf("ltmx: rebuilt dataset invalid: %w", err)
	}
	return next, nil
}

// InjectAdversary returns a copy of ds plus an adversarial source that
// positively asserts `perEntity` fabricated attributes on every entity it
// covers (a fraction `coverage` of entities, deterministic by stride).
// It is used by tests and ablation benches to exercise the filter.
func InjectAdversary(ds *model.Dataset, name string, coverage float64, perEntity int) (*model.Dataset, error) {
	if coverage <= 0 || coverage > 1 || perEntity <= 0 {
		return nil, fmt.Errorf("ltmx: adversary coverage %v / perEntity %d invalid", coverage, perEntity)
	}
	db := model.NewRawDB()
	for _, c := range ds.Claims {
		if !c.Observation {
			continue
		}
		f := ds.Facts[c.Fact]
		db.Add(ds.Entities[f.Entity], f.Attribute, ds.Sources[c.Source])
	}
	stride := int(1 / coverage)
	if stride < 1 {
		stride = 1
	}
	for e := 0; e < ds.NumEntities(); e += stride {
		for k := 0; k < perEntity; k++ {
			db.Add(ds.Entities[e], fmt.Sprintf("fabricated-%d", k), name)
		}
	}
	next := model.Build(db)
	byName := make(map[[2]string]bool, len(ds.Labels))
	for f, v := range ds.Labels {
		fact := ds.Facts[f]
		byName[[2]string{ds.Entities[fact.Entity], fact.Attribute}] = v
	}
	for _, f := range next.Facts {
		key := [2]string{next.Entities[f.Entity], f.Attribute}
		if v, ok := byName[key]; ok {
			next.Labels[f.ID] = v
		} else if len(f.Attribute) > 11 && f.Attribute[:11] == "fabricated-" {
			// Fabricated attributes are false by construction; label the
			// ones on entities that already had labels.
			if entityLabeled(ds, next.Entities[f.Entity]) {
				next.Labels[f.ID] = false
			}
		}
	}
	return next, nil
}

// entityLabeled reports whether any fact of the named entity is labeled in
// the original dataset.
func entityLabeled(ds *model.Dataset, entity string) bool {
	for e, name := range ds.Entities {
		if name != entity {
			continue
		}
		for _, f := range ds.FactsByEntity[e] {
			if _, ok := ds.Labels[f]; ok {
				return true
			}
		}
		return false
	}
	return false
}
