package ltmx

import (
	"fmt"
	"math"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/store"
)

// Clustered implements §7's "Entity-specific quality" extension: a source
// may be reliable for one kind of entity and unreliable for another (the
// paper's example: IMDB accurate on horror movies but not dramas). The
// entities are partitioned into K clusters, each cluster gets its own LTM
// fit (hence cluster-specific source quality), and the partition itself is
// inferred jointly by alternating:
//
//  1. fit LTM within each cluster and refresh the global truth estimates
//     from the per-cluster posteriors;
//  2. reassign every entity to the cluster under whose source quality its
//     claims have the highest marginal likelihood (truth integrated out
//     per fact with the β prior, Equation 3's evidence term).
//
// The partition is only partially identifiable without labels: an entity
// carrying few facts simply does not pin down which regime produced it
// (assignment with the *generating* parameters and *true* fact truths is
// itself imperfect), so expect purity well below 1 on small entities while
// cluster-specific quality and end-to-end accuracy still improve.
//
// The partition is initialized by seeded k-means over per-entity source
// agreement signatures (how often each source agrees with a flat LTM
// fit's truth estimates on the entity's facts) — a symmetric split such
// as round-robin gives every cluster the same mixture, leaving the
// alternation with no gradient to descend. Everything is seeded, so the
// procedure is fully reproducible.
type Clustered struct {
	// Config configures the per-cluster LTM fits.
	Config core.Config
	// Clusters is K, the number of entity clusters (required, >= 2).
	Clusters int
	// Rounds is the number of fit/reassign alternations (default 10;
	// the alternation stops early once no entity moves).
	Rounds int
}

// NewClustered returns a clustered integrator with K clusters.
func NewClustered(cfg core.Config, k int) *Clustered {
	return &Clustered{Config: cfg, Clusters: k, Rounds: 10}
}

// ClusteredResult is the output of a clustered fit.
type ClusteredResult struct {
	// Assignment[e] is the cluster of entity e (indexed as in the input
	// dataset).
	Assignment []int
	// Fits[k] is the final LTM fit of cluster k, over Datasets[k].
	Fits     []*core.FitResult
	Datasets []*model.Dataset
	// Result carries per-fact truth probabilities mapped back to the
	// input dataset's fact ids.
	Result *model.Result
	// Rounds is the number of alternations actually performed.
	Rounds int
}

// Fit runs the alternation on ds.
func (cl *Clustered) Fit(ds *model.Dataset) (*ClusteredResult, error) {
	k := cl.Clusters
	if k < 2 {
		return nil, fmt.Errorf("ltmx: clustered fit needs at least 2 clusters, got %d", k)
	}
	if k > ds.NumEntities() {
		return nil, fmt.Errorf("ltmx: %d clusters for %d entities", k, ds.NumEntities())
	}
	rounds := cl.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	assign, prob, err := cl.initialAssignment(ds, k)
	if err != nil {
		return nil, err
	}
	// factOf[(entity, attribute)] maps a sub-dataset fact back to ds.
	factOf := make(map[[2]string]int, ds.NumFacts())
	for _, f := range ds.Facts {
		factOf[[2]string{ds.Entities[f.Entity], f.Attribute}] = f.ID
	}
	out := &ClusteredResult{Assignment: assign}
	for round := 0; round < rounds; round++ {
		out.Rounds = round + 1
		// Build per-cluster datasets and fit them concurrently — the
		// clusters partition the entities, so the fits are independent and
		// each writes a disjoint set of fact probabilities. Refresh global
		// truth from the per-cluster posteriors.
		out.Datasets = make([]*model.Dataset, k)
		out.Fits = make([]*core.FitResult, k)
		errs := make([]error, k)
		core.ParallelFor(k, func(c int) {
			sub := store.FilterEntities(ds, func(e int, _ string) bool { return assign[e] == c })
			if sub.NumFacts() == 0 {
				// Empty cluster: leave nil; members cannot move here this
				// round and no reassignment uses it.
				return
			}
			fit, err := core.Compile(sub).Fit(cl.Config)
			if err != nil {
				errs[c] = err
				return
			}
			out.Datasets[c] = sub
			out.Fits[c] = fit
			for _, f := range sub.Facts {
				prob[factOf[[2]string{sub.Entities[f.Entity], f.Attribute}]] = fit.Prob[f.ID]
			}
		})
		for c, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("ltmx: cluster %d round %d: %w", c, round, err)
			}
		}
		if round == rounds-1 {
			break
		}
		// Reassign entities by marginal likelihood.
		moved := 0
		for e := 0; e < ds.NumEntities(); e++ {
			best, bestLL := assign[e], math.Inf(-1)
			for c := 0; c < k; c++ {
				if out.Fits[c] == nil {
					continue
				}
				ll := entityLogLikelihood(ds, e, out.Datasets[c], out.Fits[c])
				if ll > bestLL {
					best, bestLL = c, ll
				}
			}
			if best != assign[e] {
				assign[e] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	res := &model.Result{Method: "LTM-clustered", Prob: prob}
	out.Result = res
	out.Assignment = assign
	return out, nil
}

// initialAssignment seeds the partition: fit LTM flat, build each
// entity's signature vector (per source, the fraction of the entity's
// facts on which the source's claim agrees with the flat truth estimate;
// 0.5 when the source makes no claim), and run seeded k-means on the
// signatures.
func (cl *Clustered) initialAssignment(ds *model.Dataset, k int) ([]int, []float64, error) {
	flat, err := core.New(cl.Config).Fit(ds)
	if err != nil {
		return nil, nil, fmt.Errorf("ltmx: clustering seed fit: %w", err)
	}
	nS := ds.NumSources()
	sig := make([][]float64, ds.NumEntities())
	agree := make([]float64, nS)
	count := make([]float64, nS)
	for e := range sig {
		for s := 0; s < nS; s++ {
			agree[s], count[s] = 0, 0
		}
		for _, f := range ds.FactsByEntity[e] {
			truth := flat.Prob[f] >= 0.5
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				count[c.Source]++
				if c.Observation == truth {
					agree[c.Source]++
				}
			}
		}
		v := make([]float64, nS)
		for s := 0; s < nS; s++ {
			if count[s] > 0 {
				v[s] = agree[s] / count[s]
			} else {
				v[s] = 0.5
			}
		}
		sig[e] = v
	}
	seed := cl.Config.Seed
	if seed == 0 {
		seed = 1
	}
	prob := append([]float64(nil), flat.Prob...)
	return kmeans(sig, k, stats.NewRNG(seed).Split(101)), prob, nil
}

// kmeans is a small deterministic Lloyd's algorithm with k-means++
// seeding. Empty clusters are re-seeded from the farthest point.
func kmeans(points [][]float64, k int, rng *stats.RNG) []int {
	n := len(points)
	dim := len(points[0])
	centers := make([][]float64, 0, k)
	// k-means++ seeding.
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centers; spread arbitrarily.
			centers = append(centers, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		u := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if u < acc {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}
	assign := make([]int, n)
	for iter := 0; iter < 25; iter++ {
		moved := 0
		for i, p := range points {
			best, bestD := assign[i], math.Inf(1)
			for c := range centers {
				if d := sqDist(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				moved++
			}
		}
		// Recompute centers.
		counts := make([]int, k)
		for c := range centers {
			for j := 0; j < dim; j++ {
				centers[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, x := range p {
				centers[c][j] += x
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster from the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centers[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], points[far])
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
		if moved == 0 && iter > 0 {
			break
		}
	}
	return assign
}

// sqDist is the squared Euclidean distance.
func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// entityLogLikelihood scores entity e's claims under cluster fit `fit`
// (whose source indexes refer to sub) by the marginal likelihood: for
// each fact of e the truth is integrated out with the β prior,
//
//	p(o_f | c) = Σ_{t∈{0,1}} β_t/(β1+β0) · Π_{cl∈Cf} p(o_cl | φ^t) .
//
// Sources absent from the cluster fall back to the priors' means.
func entityLogLikelihood(ds *model.Dataset, e int, sub *model.Dataset, fit *core.FitResult) float64 {
	p := fit.Priors
	defSens := p.TP / (p.TP + p.FN)
	defFPR := p.FP / (p.FP + p.TN)
	sens := func(name string) float64 {
		if s := sub.SourceIndex(name); s >= 0 {
			return fit.Sensitivity[s]
		}
		return defSens
	}
	fpr := func(name string) float64 {
		if s := sub.SourceIndex(name); s >= 0 {
			return fit.FalsePositiveRate[s]
		}
		return defFPR
	}
	lprior1 := math.Log(p.True) - math.Log(p.True+p.Fls)
	lprior0 := math.Log(p.Fls) - math.Log(p.True+p.Fls)
	total := 0.0
	for _, f := range ds.FactsByEntity[e] {
		l1, l0 := lprior1, lprior0
		for _, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			name := ds.Sources[c.Source]
			s1, s0 := sens(name), fpr(name)
			if c.Observation {
				l1 += math.Log(s1)
				l0 += math.Log(s0)
			} else {
				l1 += math.Log1p(-s1)
				l0 += math.Log1p(-s0)
			}
		}
		m := l1
		if l0 > m {
			m = l0
		}
		total += m + math.Log(math.Exp(l1-m)+math.Exp(l0-m))
	}
	return total
}
