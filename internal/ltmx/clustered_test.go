package ltmx

import (
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/store"
	"latenttruth/internal/synth"
)

// twoRegimeCorpus builds a dataset whose sources behave very differently
// on two entity populations (e.g. horror vs drama): source "x" is expert
// on regime A and terrible on regime B, source "y" the reverse, and "z"
// mediocre everywhere. Entity names encode the regime for evaluation.
func twoRegimeCorpus(t *testing.T) (*model.Dataset, map[int]bool, []int) {
	t.Helper()
	mk := func(name string, seed int64, xSens, xFPR, ySens, yFPR float64) *synth.Corpus {
		spec := synth.CorpusSpec{
			Name: name, NumEntities: 150,
			// Several facts per entity: per-entity regime signal scales
			// with the number of claims an entity carries.
			TrueAttrWeights:  []float64{0.1, 0.2, 0.3, 0.4},
			FalseCandWeights: []float64{0.2, 0.4, 0.4},
			LabelEntities:    20,
			Seed:             seed,
			Sources: []synth.SourceProfile{
				{Name: "x", Coverage: 0.95, Sensitivity: xSens, FPR: xFPR},
				{Name: "y", Coverage: 0.95, Sensitivity: ySens, FPR: yFPR},
				{Name: "z", Coverage: 0.9, Sensitivity: 0.6, FPR: 0.15},
			},
		}
		c, err := synth.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mk("regimeA", 1, 0.95, 0.02, 0.45, 0.40)
	b := mk("regimeB", 2, 0.45, 0.40, 0.95, 0.02)
	merged, err := store.Merge(a.Dataset, b.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// Full generated truth per fact of the merged dataset.
	truth := make(map[int]bool, merged.NumFacts())
	ta, err := a.TruthOf(a.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.TruthOf(b.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range merged.Facts {
		name := merged.Entities[f.Entity]
		var v bool
		if fa := a.Dataset.FactIndex(name, f.Attribute); fa >= 0 {
			v = ta[fa]
		} else if fb := b.Dataset.FactIndex(name, f.Attribute); fb >= 0 {
			v = tb[fb]
		} else {
			t.Fatalf("fact (%s, %s) in neither regime", name, f.Attribute)
		}
		truth[f.ID] = v
	}
	// True regime per entity: 0 for A, 1 for B (by name prefix).
	regime := make([]int, merged.NumEntities())
	for e, name := range merged.Entities {
		if len(name) >= 7 && name[:7] == "regimeB" {
			regime[e] = 1
		}
	}
	return merged, truth, regime
}

func accuracyAgainst(truth map[int]bool, prob []float64) float64 {
	correct := 0
	for f, v := range truth {
		if (prob[f] >= 0.5) == v {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func TestClusteredRecoversRegimes(t *testing.T) {
	ds, truth, regime := twoRegimeCorpus(t)
	cfg := core.Config{Seed: 9, Iterations: 80, BurnIn: 15}
	cl := NewClustered(cfg, 2)
	out, err := cl.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster purity: the discovered partition must align with the true
	// regimes (up to label permutation).
	agree := 0
	for e := range regime {
		if out.Assignment[e] == regime[e] {
			agree++
		}
	}
	purity := float64(agree) / float64(len(regime))
	if purity < 0.5 {
		purity = 1 - purity
	}
	// Regime membership of a small entity is only partially identifiable
	// (assignment with the generating parameters themselves reaches ~0.75
	// here), so the bar is materially-better-than-chance, not purity 1.
	if purity < 0.7 {
		t.Errorf("cluster purity %v, want >= 0.7", purity)
	}
	// Accuracy: the clustered model must beat a flat fit, which is forced
	// to average x's and y's contradictory quality.
	flat, err := core.New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	flatAcc := accuracyAgainst(truth, flat.Prob)
	clAcc := accuracyAgainst(truth, out.Result.Prob)
	if clAcc < flatAcc {
		t.Errorf("clustered accuracy %v below flat %v", clAcc, flatAcc)
	}
}

func TestClusteredQualityIsClusterSpecific(t *testing.T) {
	ds, _, _ := twoRegimeCorpus(t)
	cl := NewClustered(core.Config{Seed: 9, Iterations: 80, BurnIn: 15}, 2)
	out, err := cl.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	// In one cluster x must dominate y on sensitivity, in the other the
	// reverse.
	sensOf := func(c int, name string) float64 {
		s := out.Datasets[c].SourceIndex(name)
		if s < 0 {
			t.Fatalf("source %s missing from cluster %d", name, c)
		}
		return out.Fits[c].Sensitivity[s]
	}
	d0 := sensOf(0, "x") - sensOf(0, "y")
	d1 := sensOf(1, "x") - sensOf(1, "y")
	if d0*d1 >= 0 {
		t.Errorf("cluster quality not regime-specific: Δ0=%v Δ1=%v", d0, d1)
	}
}

func TestClusteredValidation(t *testing.T) {
	ds, _, _ := twoRegimeCorpus(t)
	if _, err := NewClustered(core.Config{}, 1).Fit(ds); err == nil {
		t.Fatal("expected error for K < 2")
	}
	if _, err := NewClustered(core.Config{}, ds.NumEntities()+1).Fit(ds); err == nil {
		t.Fatal("expected error for K > entities")
	}
}

func TestClusteredResultCoversAllFacts(t *testing.T) {
	ds, _, _ := twoRegimeCorpus(t)
	out, err := NewClustered(core.Config{Seed: 3, Iterations: 40, BurnIn: 10}, 2).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Prob) != ds.NumFacts() {
		t.Fatalf("result covers %d of %d facts", len(out.Result.Prob), ds.NumFacts())
	}
	if err := out.Result.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every entity assigned to a valid cluster.
	for e, c := range out.Assignment {
		if c < 0 || c >= 2 {
			t.Fatalf("entity %d assigned to cluster %d", e, c)
		}
	}
}
