package ltmx

import (
	"math"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/synth"
)

// benignCorpus builds a small corpus of honest sources.
func benignCorpus(t *testing.T, seed int64) *synth.Corpus {
	t.Helper()
	spec := synth.CorpusSpec{
		Name: "benign", NumEntities: 250,
		TrueAttrWeights:  []float64{0.6, 0.4},
		FalseCandWeights: []float64{0.6, 0.4},
		LabelEntities:    30,
		Seed:             seed,
		Sources: []synth.SourceProfile{
			{Name: "a", Coverage: 0.9, Sensitivity: 0.92, FPR: 0.03},
			{Name: "b", Coverage: 0.8, Sensitivity: 0.85, FPR: 0.05},
			{Name: "c", Coverage: 0.8, Sensitivity: 0.7, FPR: 0.04},
		},
	}
	c, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInjectAdversary(t *testing.T) {
	c := benignCorpus(t, 1)
	before := c.Dataset.NumFacts()
	ds, err := InjectAdversary(c.Dataset, "evil", 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SourceIndex("evil") < 0 {
		t.Fatal("adversary missing")
	}
	if ds.NumFacts() <= before {
		t.Fatal("no fabricated facts added")
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := InjectAdversary(c.Dataset, "evil", 0, 1); err == nil {
		t.Fatal("expected error for zero coverage")
	}
}

func TestAdversarialFilterRemovesInjectedSource(t *testing.T) {
	c := benignCorpus(t, 2)
	ds, err := InjectAdversary(c.Dataset, "evil", 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	af := NewAdversarialFilter(core.Config{Seed: 3})
	out, err := af.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	removedEvil := false
	for _, name := range out.Removed {
		if name == "evil" {
			removedEvil = true
		}
		if name == "a" || name == "b" || name == "c" {
			t.Fatalf("benign source %q removed", name)
		}
	}
	if !removedEvil {
		t.Fatalf("adversary not removed (removed: %v)", out.Removed)
	}
	if out.Dataset.SourceIndex("evil") != -1 {
		t.Fatal("adversary still in surviving dataset")
	}
	// Fabricated facts disappear with their only supporter.
	for _, f := range out.Dataset.Facts {
		if len(f.Attribute) >= 11 && f.Attribute[:11] == "fabricated-" {
			t.Fatalf("fabricated fact %q survived", f.Attribute)
		}
	}
	if out.Rounds < 2 {
		t.Fatalf("rounds = %d, want at least 2 (remove + refit)", out.Rounds)
	}
}

func TestAdversarialFilterNoOpOnCleanData(t *testing.T) {
	c := benignCorpus(t, 3)
	af := NewAdversarialFilter(core.Config{Seed: 1})
	out, err := af.Run(c.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Removed) != 0 {
		t.Fatalf("removed %v from clean data", out.Removed)
	}
	if out.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", out.Rounds)
	}
	if out.Dataset != c.Dataset {
		t.Fatal("clean run should keep the original dataset")
	}
}

func TestAdversarialFilterValidation(t *testing.T) {
	af := NewAdversarialFilter(core.Config{Seed: 1})
	af.MinSpecificity = 1.5
	if _, err := af.Run(benignCorpus(t, 4).Dataset); err == nil {
		t.Fatal("expected floor validation error")
	}
}

func TestMultiTypeJointFit(t *testing.T) {
	// Two attribute types served by the same three sources. Type B is
	// sparse (low coverage), so cross-type quality transfer should help.
	mk := func(name string, seed int64, coverageScale float64) *synth.Corpus {
		spec := synth.CorpusSpec{
			Name: name, NumEntities: 200,
			TrueAttrWeights:  []float64{0.6, 0.4},
			FalseCandWeights: []float64{0.6, 0.4},
			LabelEntities:    20,
			Seed:             seed,
			Sources: []synth.SourceProfile{
				{Name: "a", Coverage: 0.9 * coverageScale, Sensitivity: 0.92, FPR: 0.03},
				{Name: "b", Coverage: 0.8 * coverageScale, Sensitivity: 0.8, FPR: 0.3},
				{Name: "c", Coverage: 0.8 * coverageScale, Sensitivity: 0.55, FPR: 0.05},
			},
		}
		c, err := synth.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	typeA := mk("directors", 5, 1.0)
	typeB := mk("genres", 6, 0.5)
	mt := NewMultiType(core.Config{Seed: 7})
	fits, err := mt.Fit(map[string]*model.Dataset{
		"directors": typeA.Dataset,
		"genres":    typeB.Dataset,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 {
		t.Fatalf("got %d typed fits", len(fits))
	}
	// Results are sorted by type name.
	if fits[0].Type != "directors" || fits[1].Type != "genres" {
		t.Fatalf("order: %s, %s", fits[0].Type, fits[1].Type)
	}
	for _, tf := range fits {
		if err := tf.Fit.Result.Validate(); err != nil {
			t.Fatalf("%s: %v", tf.Type, err)
		}
	}
	// The sloppy source "b" must be recognized as low-specificity in both
	// types, and accuracy on each type must be high.
	for _, tf := range fits {
		corpus := typeA
		if tf.Type == "genres" {
			corpus = typeB
		}
		truth, err := corpus.TruthOf(corpus.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for f, v := range truth {
			if (tf.Fit.Prob[f] >= 0.5) == v {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(truth)); acc < 0.85 {
			t.Errorf("%s joint accuracy %v", tf.Type, acc)
		}
		var bSpec, aSpec float64
		for _, q := range tf.Fit.Quality {
			switch q.Source {
			case "a":
				aSpec = q.Specificity
			case "b":
				bSpec = q.Specificity
			}
		}
		if bSpec >= aSpec {
			t.Errorf("%s: sloppy source specificity %v >= clean %v", tf.Type, bSpec, aSpec)
		}
	}
}

func TestMultiTypeValidation(t *testing.T) {
	mt := NewMultiType(core.Config{Seed: 1})
	if _, err := mt.Fit(nil); err == nil {
		t.Fatal("expected error for empty type map")
	}
}

func TestGaussianTruthRecoversValues(t *testing.T) {
	// Four sources report noisy numeric values with distinct noise levels.
	// (Enough entities that the pairwise moments identify the ordering:
	// with very few entities or an extremely noisy source, the variance
	// split between two good sources is genuinely not resolvable.)
	rng := stats.NewRNG(9)
	truth := map[string]float64{}
	var claims []NumericClaim
	for e := 0; e < 600; e++ {
		name := entityName(e)
		v := rng.NormFloat64()*10 + 100
		truth[name] = v
		claims = append(claims,
			NumericClaim{Entity: name, Source: "precise", Value: v + rng.NormFloat64()*0.5},
			NumericClaim{Entity: name, Source: "decent", Value: v + rng.NormFloat64()*1.5},
			NumericClaim{Entity: name, Source: "fair", Value: v + rng.NormFloat64()*2.2},
			NumericClaim{Entity: name, Source: "noisy", Value: v + rng.NormFloat64()*3.5},
		)
	}
	res, err := GaussianTruth(claims, GaussianConfig{Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Inferred variances must be ordered by true noise.
	if !(res.SourceVariance["precise"] < res.SourceVariance["decent"] &&
		res.SourceVariance["decent"] < res.SourceVariance["fair"] &&
		res.SourceVariance["fair"] < res.SourceVariance["noisy"]) {
		t.Fatalf("variance ordering wrong: %+v", res.SourceVariance)
	}
	// Each inferred variance must be in the right ballpark of its
	// generating value.
	for name, want := range map[string]float64{
		"precise": 0.25, "decent": 2.25, "fair": 4.84, "noisy": 12.25,
	} {
		got := res.SourceVariance[name]
		if got < want/2 || got > want*2 {
			t.Errorf("%s variance %v, want near %v", name, got, want)
		}
	}
	// Truth estimates must be close: RMSE near the best achievable
	// (precision-weighted) error, far below the naive mean's.
	var se float64
	for name, v := range truth {
		d := res.Truth[name] - v
		se += d * d
	}
	rmse := math.Sqrt(se / float64(len(truth)))
	if rmse > 1.0 {
		t.Fatalf("RMSE = %v", rmse)
	}
}

func TestGaussianTruthWeightsBeatPlainMean(t *testing.T) {
	rng := stats.NewRNG(10)
	var claims []NumericClaim
	truth := map[string]float64{}
	plainErr, n := 0.0, 0
	for e := 0; e < 200; e++ {
		name := entityName(e)
		v := float64(e)
		truth[name] = v
		a := v + rng.NormFloat64()*0.2
		b := v + rng.NormFloat64()*6
		c := v + rng.NormFloat64()*6
		claims = append(claims,
			NumericClaim{Entity: name, Source: "sharp", Value: a},
			NumericClaim{Entity: name, Source: "blur1", Value: b},
			NumericClaim{Entity: name, Source: "blur2", Value: c},
		)
		mean := (a + b + c) / 3
		plainErr += (mean - v) * (mean - v)
		n++
	}
	res, err := GaussianTruth(claims, GaussianConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var modelErr float64
	for name, v := range truth {
		d := res.Truth[name] - v
		modelErr += d * d
	}
	if modelErr >= plainErr {
		t.Fatalf("precision weighting (SSE %v) no better than plain mean (SSE %v)", modelErr, plainErr)
	}
}

func TestGaussianTruthValidation(t *testing.T) {
	if _, err := GaussianTruth(nil, GaussianConfig{}); err == nil {
		t.Fatal("expected error for no claims")
	}
	if _, err := GaussianTruth([]NumericClaim{{Entity: "", Source: "s", Value: 1}}, GaussianConfig{}); err == nil {
		t.Fatal("expected error for empty entity")
	}
	if _, err := GaussianTruth([]NumericClaim{{Entity: "e", Source: "s", Value: math.NaN()}}, GaussianConfig{}); err == nil {
		t.Fatal("expected error for NaN value")
	}
}

func TestGaussianSingleClaimRegularized(t *testing.T) {
	res, err := GaussianTruth([]NumericClaim{{Entity: "e", Source: "s", Value: 5}}, GaussianConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Truth["e"]-5) > 1e-9 {
		t.Fatalf("single-claim truth %v", res.Truth["e"])
	}
	if v := res.SourceVariance["s"]; v <= 0 || math.IsNaN(v) {
		t.Fatalf("variance %v", v)
	}
}

func entityName(i int) string {
	return "ent-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}
