package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type, named after its Prometheus TYPE token.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Version and Commit identify the build; stamped by the linker via
//
//	-ldflags "-X latenttruth/internal/obs.Version=v9 -X latenttruth/internal/obs.Commit=abc1234"
//
// and surfaced in /stats, the startup log line and the build_info metric.
var (
	Version = "dev"
	Commit  = "none"
)

// Registry is a set of metric families. All registration methods are
// idempotent per name: asking for an existing family returns the existing
// metric, and asking with a conflicting kind or label set panics (a wiring
// bug, not a runtime condition).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family with zero or more labeled children.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names; empty for scalar families

	mu       sync.RWMutex
	children map[string]metric // key: joined label values
	order    []string          // insertion order of keys; sorted at exposition

	collect func() []Sample // gauge families may be scrape-time functions
	buckets []float64       // histogram families share one bucket ladder
}

// Sample is one scrape-time value from a function-backed gauge family.
type Sample struct {
	LabelValues []string
	Value       float64
}

// metric is a single child: a Counter, Gauge or Histogram.
type metric interface{ kindOf() Kind }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) getOrCreate(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels,
		children: make(map[string]metric), buckets: buckets}
	r.families[name] = f
	return f
}

// child returns the metric for the given label values, creating it via
// mk on first use.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m = mk()
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// snapshot returns the family's children as (label values, metric) pairs
// in sorted label order, for deterministic exposition.
func (f *family) snapshot() []childSnap {
	f.mu.RLock()
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	snaps := make([]childSnap, 0, len(keys))
	for _, k := range keys {
		var values []string
		if k != "" {
			values = strings.Split(k, "\x00")
		}
		snaps = append(snaps, childSnap{values: values, m: f.children[k]})
	}
	f.mu.RUnlock()
	sort.Slice(snaps, func(i, j int) bool {
		return strings.Join(snaps[i].values, "\x00") < strings.Join(snaps[j].values, "\x00")
	})
	return snaps
}

type childSnap struct {
	values []string
	m      metric
}

// Counter is a monotonically increasing count. Inc and Add are single
// atomic adds — safe on hot paths.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) kindOf() Kind { return KindCounter }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as atomic float bits.
type Gauge struct{ bits atomic.Uint64 }

func (g *Gauge) kindOf() Kind { return KindGauge }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d via a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.getOrCreate(name, help, KindCounter, nil, nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.getOrCreate(name, help, KindCounter, labels, nil)}
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.getOrCreate(name, help, KindGauge, nil, nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.getOrCreate(name, help, KindGauge, labels, nil)}
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.getOrCreate(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.collect = func() []Sample { return []Sample{{Value: fn()}} }
	f.mu.Unlock()
}

// GaugeVecFunc registers a labeled gauge family whose children are
// enumerated at scrape time — the natural shape for per-follower lag,
// where the label set changes as followers register and get evicted.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []Sample) {
	f := r.getOrCreate(name, help, KindGauge, labels, nil)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabeled histogram over buckets
// (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getOrCreate(name, help, KindHistogram, nil, buckets)
	return f.child(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family over
// buckets (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.getOrCreate(name, help, KindHistogram, labels, buckets)}
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}
