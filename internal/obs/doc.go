// Package obs is the serving stack's dependency-free observability layer:
// a metrics registry, a Prometheus text exposition writer and parser, a
// rule-table exposition merger for cluster views, a structured span
// facility for multi-phase operations, and a minimal leveled logger.
//
// The registry holds three metric kinds, all safe for concurrent use and
// cheap enough to sit on the ingest hot path: counters (a single atomic
// add), gauges (an atomic float store, or a function evaluated at scrape
// time), and fixed-bucket histograms (one atomic add into a bucket found
// by binary search, plus a CAS loop for the running sum). Histograms
// expose exact bucket counts and interpolated quantiles (Quantile walks
// the cumulative counts to the requested rank); the default bucket ladder
// DefBuckets spans 100µs–60s, sized for request, refit and fsync
// latencies. Vector variants key children by label values; callers cache
// the child (With is a map lookup under RWMutex, the child itself is
// lock-free).
//
// WritePrometheus renders the registry in the Prometheus text exposition
// format (# HELP/# TYPE preambles, name{label="v"} samples, cumulative
// _bucket/_sum/_count histogram series), families and children in sorted
// order so output is deterministic. ParseExposition inverts it, and Merge
// combines several expositions into a cluster-wide view: counters and
// histogram series SUM, gauges follow an explicit per-name rule table
// (SUM, MAX or MIN) and unknown gauge names are a loud error — the same
// contract the /stats merge rules enforce, so adding a gauge without
// deciding its aggregation is impossible.
//
// Spans time multi-phase operations (a refit's drain → fit → publish):
// StartSpan allocates a random id, Phase closes the running phase and
// opens the next, End emits one JSON log event carrying the id, per-phase
// durations and any attributes — greppable, and join-able against the
// histogram the caller feeds the same durations into.
//
// The Logger wraps *log.Logger with debug/info/warn/error gating and a
// structured Event method (key=value pairs after the message). All
// methods are nil-receiver safe, so call sites never guard.
package obs
