package obs

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync/atomic"
)

// Level is a log severity. The zero value is LevelInfo — the default a
// nil config resolves to, keeping pre-leveled behavior unchanged.
type Level int32

const (
	LevelInfo  Level = iota // routine operation
	LevelDebug              // per-request / per-batch chatter
	LevelWarn               // degraded but serving
	LevelError              // a request or subsystem failed
)

// severity orders levels for gating (debug < info < warn < error).
func (l Level) severity() int {
	switch l {
	case LevelDebug:
		return 0
	case LevelWarn:
		return 2
	case LevelError:
		return 3
	}
	return 1
}

// String names the level as it appears in key=value output.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "info"
}

// ParseLevel reads a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// Logger gates a *log.Logger by level and adds a structured Event form.
// All methods are nil-receiver safe (a nil Logger drops everything), so
// call sites never guard. The printf family keeps messages byte-for-byte
// as an unleveled logger would print them — routing existing call sites
// through a level changes what can be silenced, not what is said.
type Logger struct {
	out *log.Logger
	min atomic.Int32
}

// NewLogger wraps out, dropping records below min. A nil out yields a
// logger that drops everything.
func NewLogger(out *log.Logger, min Level) *Logger {
	if out == nil {
		return nil
	}
	l := &Logger{out: out}
	l.min.Store(int32(min))
	return l
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level.severity() >= Level(l.min.Load()).severity()
}

// SetLevel changes the gate at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Printf logs at info — a drop-in for the *log.Logger call sites.
func (l *Logger) Printf(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs at debug.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	l.out.Output(3, fmt.Sprintf(format, args...))
}

// Event logs one structured record: `event=<name> level=<level>` followed
// by key=value pairs from alternating kv arguments. Values render via
// formatValue — strings are quoted only when they contain spaces or
// quotes, so the output stays greppable.
func (l *Logger) Event(level Level, name string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(name)
	b.WriteString(" level=")
	b.WriteString(level.String())
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
	l.out.Output(2, b.String())
}

// Output exposes the underlying writer for pre-formatted records (spans
// emit JSON through it). calldepth is as in log.Logger.Output.
func (l *Logger) Output(level Level, calldepth int, s string) {
	if !l.Enabled(level) {
		return
	}
	l.out.Output(calldepth+1, s)
}

func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \"=\n") || x == "" {
			return strconv.Quote(x)
		}
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case error:
		return strconv.Quote(x.Error())
	default:
		s := fmt.Sprintf("%v", x)
		if strings.ContainsAny(s, " \"=\n") || s == "" {
			return strconv.Quote(s)
		}
		return s
	}
}
