package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency ladder in seconds: log-spaced from
// 100µs to 60s, wide enough for fsyncs at the bottom and full refits over
// large corpora at the top. An implicit +Inf bucket catches the rest.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations into fixed buckets. Observe is one binary
// search plus two atomic ops; readers derive totals from the bucket
// counts, so a scrape never reports a count without its observation.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; per-bucket (not cumulative)
	sum    atomic.Uint64   // float64 bits, CAS loop
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram buckets must be sorted")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *Histogram) kindOf() Kind { return KindHistogram }

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns the cumulative bucket counts (aligned with Bounds,
// plus a final +Inf entry), the total count and the sum. The count is
// derived from the buckets, so count == last cumulative entry always.
func (h *Histogram) Snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return cumulative, acc, math.Float64frombits(h.sum.Load())
}

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	_, n, _ := h.Snapshot()
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	_, _, s := h.Snapshot()
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated from the bucket
// counts by locating the bucket holding the rank ⌈q·n⌉ and interpolating
// linearly inside it (the first bucket interpolates from zero). With no
// observations it returns 0; a rank landing in the +Inf bucket returns
// the largest finite bound — the histogram cannot see past its ladder.
func (h *Histogram) Quantile(q float64) float64 {
	cum, n, _ := h.Snapshot()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	if rank < 1 {
		rank = 1
	}
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(h.bounds) { // +Inf bucket
		if len(h.bounds) == 0 {
			return 0
		}
		return h.bounds[len(h.bounds)-1]
	}
	lo := 0.0
	var below uint64
	if i > 0 {
		lo = h.bounds[i-1]
		below = cum[i-1]
	}
	in := cum[i] - below // observations inside bucket i; > 0 by construction
	frac := (rank - float64(below)) / float64(in)
	return lo + (h.bounds[i]-lo)*frac
}
