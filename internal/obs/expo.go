package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE preamble
// per family, then one sample line per child, families sorted by name and
// children by label values so output is deterministic under a stable
// metric set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	collect := f.collect
	f.mu.RUnlock()
	if collect != nil {
		samples := collect()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].LabelValues, "\x00") < strings.Join(samples[j].LabelValues, "\x00")
		})
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.LabelValues, "", 0), formatFloat(s.Value)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range f.snapshot() {
		switch m := c.m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, c.values, "", 0), m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, c.values, "", 0), formatFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			cum, count, sum := m.Snapshot()
			for i, bound := range m.Bounds() {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "le", bound), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.values, "le", inf), count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, c.values, "", 0), formatFloat(sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, c.values, "", 0), count); err != nil {
				return err
			}
		}
	}
	return nil
}

// inf marks the +Inf bucket bound for labelString.
var inf = math.Inf(1)

// labelString renders {k="v",...}, appending an le pair when leName is
// non-empty. Returns "" for a label-free sample.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value: shortest round-trip form, with the
// spec's spelling for infinities.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
