package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Span times one multi-phase operation and emits a single structured
// JSON log event when it ends: span name, random id, per-phase and total
// durations (ms), and any attributes attached along the way. The id lets
// operators join the log line against concurrent records; the one-line
// shape keeps it greppable (`grep '"span":"refit"'`).
//
// A Span is used by one goroutine; the emitted event goes through the
// Logger, which is safe for concurrent use. A nil-logger span still
// accumulates timings (End returns the total), it just logs nothing.
type Span struct {
	logger *Logger
	level  Level
	name   string
	id     string
	start  time.Time

	phases   []spanPhase
	cur      string
	curStart time.Time
	attrKeys []string
	attrVals []any
}

type spanPhase struct {
	name string
	dur  time.Duration
}

// StartSpan opens a span. The first phase begins immediately under the
// given name; call Phase to close it and open the next.
func StartSpan(logger *Logger, name, firstPhase string) *Span {
	now := time.Now()
	return &Span{
		logger:   logger,
		level:    LevelInfo,
		name:     name,
		id:       newSpanID(),
		start:    now,
		cur:      firstPhase,
		curStart: now,
	}
}

// ID returns the span's random id.
func (s *Span) ID() string { return s.id }

// Phase closes the running phase and opens the next, returning the
// closed phase's duration.
func (s *Span) Phase(next string) time.Duration {
	now := time.Now()
	d := now.Sub(s.curStart)
	s.phases = append(s.phases, spanPhase{name: s.cur, dur: d})
	s.cur, s.curStart = next, now
	return d
}

// SetAttr attaches a key/value to the emitted event. Calling it again
// with the same key overwrites.
func (s *Span) SetAttr(key string, value any) *Span {
	for i, k := range s.attrKeys {
		if k == key {
			s.attrVals[i] = value
			return s
		}
	}
	s.attrKeys = append(s.attrKeys, key)
	s.attrVals = append(s.attrVals, value)
	return s
}

// PhaseDurations returns the closed phases in order (for feeding the
// same numbers into a histogram the event was logged against).
func (s *Span) PhaseDurations() map[string]time.Duration {
	out := make(map[string]time.Duration, len(s.phases))
	for _, p := range s.phases {
		out[p.name] = p.dur
	}
	return out
}

// End closes the running phase, emits the event, and returns the span's
// total duration.
func (s *Span) End() time.Duration {
	now := time.Now()
	s.phases = append(s.phases, spanPhase{name: s.cur, dur: now.Sub(s.curStart)})
	total := now.Sub(s.start)

	if s.logger.Enabled(s.level) {
		var b strings.Builder
		b.WriteString(`{"span":`)
		writeJSONString(&b, s.name)
		b.WriteString(`,"id":`)
		writeJSONString(&b, s.id)
		fmt.Fprintf(&b, `,"total_ms":%s`, formatMs(total))
		b.WriteString(`,"phases":{`)
		for i, p := range s.phases {
			if i > 0 {
				b.WriteByte(',')
			}
			writeJSONString(&b, p.name)
			b.WriteByte(':')
			b.WriteString(formatMs(p.dur))
		}
		b.WriteByte('}')
		for i, k := range s.attrKeys {
			b.WriteByte(',')
			writeJSONString(&b, k)
			b.WriteByte(':')
			writeJSONValue(&b, s.attrVals[i])
		}
		b.WriteByte('}')
		s.logger.Output(s.level, 2, b.String())
	}
	return total
}

func formatMs(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

func writeJSONString(b *strings.Builder, s string) {
	enc, _ := json.Marshal(s)
	b.Write(enc)
}

func writeJSONValue(b *strings.Builder, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(enc)
}

// newSpanID returns 8 random hex bytes (16 chars).
func newSpanID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(buf[:])
}
