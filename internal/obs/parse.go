package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedFamily is one metric family read back from exposition text.
type ParsedFamily struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []ParsedSample
}

// ParsedSample is one sample line. For histogram families Suffix is
// "_bucket", "_sum" or "_count"; otherwise it is empty.
type ParsedSample struct {
	Suffix string
	Labels []Label // in source order, including any le pair
	Value  float64
}

// Label is one name="value" pair.
type Label struct{ Name, Value string }

// ParseExposition reads Prometheus text exposition format back into
// families, in source order. Samples must follow their family's # TYPE
// line — the shape WritePrometheus produces and the scrape merge needs;
// an untyped or out-of-order sample is an error.
func ParseExposition(r io.Reader) ([]*ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var fams []*ParsedFamily
	byName := make(map[string]*ParsedFamily)
	var cur *ParsedFamily
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := byName[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				byName[name] = f
				fams = append(fams, f)
			}
			f.Help = unescapeHelp(help)
			cur = f
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			f := byName[name]
			if f == nil {
				f = &ParsedFamily{Name: name}
				byName[name] = f
				fams = append(fams, f)
			}
			switch Kind(kind) {
			case KindCounter, KindGauge, KindHistogram:
				f.Kind = Kind(kind)
			default:
				return nil, fmt.Errorf("obs: line %d: unsupported metric type %q for %s", lineNo, kind, name)
			}
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments
		}
		sample, name, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		f, suffix, err := resolveFamily(cur, name)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		sample.Suffix = suffix
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// resolveFamily matches a sample name against the family whose preamble
// precedes it, peeling the histogram series suffixes.
func resolveFamily(cur *ParsedFamily, name string) (*ParsedFamily, string, error) {
	if cur == nil {
		return nil, "", fmt.Errorf("sample %s before any # TYPE line", name)
	}
	if name == cur.Name {
		if cur.Kind == KindHistogram {
			return nil, "", fmt.Errorf("histogram %s has a bare sample", name)
		}
		return cur, "", nil
	}
	if cur.Kind == KindHistogram {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if name == cur.Name+suffix {
				return cur, suffix, nil
			}
		}
	}
	return nil, "", fmt.Errorf("sample %s does not belong to preceding family %s", name, cur.Name)
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (ParsedSample, string, error) {
	var s ParsedSample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, "", fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, "", fmt.Errorf("sample %s: %w", name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; keep the value only.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, "", fmt.Errorf("sample %s: %w", name, err)
	}
	s.Value = v
	return s, name, nil
}

// parseLabels consumes a {k="v",...} block, returning the index just
// past the closing brace.
func parseLabels(s string) (int, []Label, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: missing opening quote", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return inf, nil
	case "-Inf":
		return -inf, nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
