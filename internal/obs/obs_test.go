package obs

import (
	"bytes"
	"encoding/json"
	"log"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- histogram bucket + quantile math ---

func TestHistogramBucketAssignment(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// Buckets are ≤-inclusive: 0.5,1 → le=1; 1.5,2 → le=2; 3,4 → le=4; 100 → +Inf.
	cum, count, sum := h.Snapshot()
	if want := []uint64{2, 4, 6, 7}; len(cum) != 4 || cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] || cum[3] != want[3] {
		t.Fatalf("cumulative = %v, want %v", cum, want)
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 3 + 4 + 100; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	cases := []struct{ q, want float64 }{
		{0.5, 10},  // rank 10 = exactly the last of bucket one → its upper bound
		{0.25, 5},  // rank 5 of 10 inside (0,10] → 0 + 10*(5/10)
		{0.75, 15}, // rank 15: 5 into bucket two of 10 → 10 + 10*(5/10)
		{1.0, 20},  // rank 20 = top of bucket two
		{0.05, 1},  // rank 1 of 10 in the first bucket → 10*(1/10)
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %v, want largest finite bound 2", got)
	}
}

// TestHistogramConcurrentObservationsNeverLost is the -race property
// test: every observation from every writer is visible in the bucket
// counts and the sum once the writers join.
func TestHistogramConcurrentObservationsNeverLost(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", []float64{0.001, 0.01, 0.1, 1})
	c := r.Counter("t_total", "test")
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%4) * 0.004)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != writers*per {
		t.Fatalf("histogram count = %d, want %d (observations lost)", got, writers*per)
	}
	wantSum := float64(writers) * per / 4 * (0 + 0.004 + 0.008 + 0.012)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
	if got := c.Value(); got != writers*per {
		t.Fatalf("counter = %d, want %d", got, writers*per)
	}
	// The exposed _count equals the +Inf bucket by construction.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t_seconds_count 40000") {
		t.Fatalf("exposition missing exact count:\n%s", buf.String())
	}
}

// --- exposition format ---

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Requests served.").Add(3)
	v := r.CounterVec("errors_total", "Errors by route.", "route")
	v.With("/truth").Add(2)
	v.With("/qual\"ity\n").Inc()
	r.Gauge("in_flight", "In-flight requests.").Set(1.5)
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP errors_total Errors by route.
# TYPE errors_total counter
errors_total{route="/qual\"ity\n"} 1
errors_total{route="/truth"} 2
# HELP in_flight In-flight requests.
# TYPE in_flight gauge
in_flight 1.5
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 3
# HELP uptime_seconds Uptime.
# TYPE uptime_seconds gauge
uptime_seconds 42
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(7)
	r.GaugeVec("lag", "Lag.", "follower").With("f 1").Set(12)
	r.Histogram("h_seconds", "H.", []float64{0.5}).Observe(0.25)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["a_total"]; f == nil || f.Kind != KindCounter || len(f.Samples) != 1 || f.Samples[0].Value != 7 {
		t.Fatalf("a_total parsed wrong: %+v", byName["a_total"])
	}
	lag := byName["lag"]
	if lag == nil || lag.Kind != KindGauge || len(lag.Samples) != 1 {
		t.Fatalf("lag parsed wrong: %+v", lag)
	}
	if ls := lag.Samples[0].Labels; len(ls) != 1 || ls[0] != (Label{"follower", "f 1"}) {
		t.Fatalf("lag labels = %+v", lag.Samples[0].Labels)
	}
	h := byName["h_seconds"]
	if h == nil || h.Kind != KindHistogram || len(h.Samples) != 4 {
		t.Fatalf("h_seconds parsed wrong: %+v", h)
	}
	suffixes := map[string]int{}
	for _, s := range h.Samples {
		suffixes[s.Suffix]++
	}
	if suffixes["_bucket"] != 2 || suffixes["_sum"] != 1 || suffixes["_count"] != 1 {
		t.Fatalf("h_seconds suffixes = %v", suffixes)
	}
}

// --- merge rules ---

func expose(build func(r *Registry)) []byte {
	r := NewRegistry()
	build(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestMergeCountersAndHistogramsSum(t *testing.T) {
	a := expose(func(r *Registry) {
		r.Counter("req_total", "R.").Add(3)
		h := r.Histogram("lat_seconds", "L.", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
	})
	b := expose(func(r *Registry) {
		r.Counter("req_total", "R.").Add(4)
		h := r.Histogram("lat_seconds", "L.", []float64{0.1, 1})
		h.Observe(2)
	})
	out, err := Merge([][]byte{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{
		"req_total 7",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "lat_seconds_sum 2.55") {
		t.Errorf("merged sum wrong:\n%s", text)
	}
}

func TestMergeGaugeRules(t *testing.T) {
	a := expose(func(r *Registry) {
		r.Gauge("in_flight", "I.").Set(2)
		r.Gauge("uptime_seconds", "U.").Set(100)
		r.Gauge("lag", "L.").Set(5)
	})
	b := expose(func(r *Registry) {
		r.Gauge("in_flight", "I.").Set(3)
		r.Gauge("uptime_seconds", "U.").Set(40)
		r.Gauge("lag", "L.").Set(9)
	})
	rules := map[string]GaugeRule{"in_flight": GaugeSum, "uptime_seconds": GaugeMin, "lag": GaugeMax}
	out, err := Merge([][]byte{a, b}, rules)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{"in_flight 5", "uptime_seconds 40", "lag 9"} {
		if !strings.Contains(text, want) {
			t.Errorf("merged output missing %q:\n%s", want, text)
		}
	}
}

func TestMergeUnknownGaugeErrors(t *testing.T) {
	a := expose(func(r *Registry) { r.Gauge("mystery", "M.").Set(1) })
	_, err := Merge([][]byte{a}, map[string]GaugeRule{})
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("want loud unknown-gauge error naming the family, got %v", err)
	}
}

func TestMergeUnionRebucketLowerBound(t *testing.T) {
	// Source A has bounds {1, 4}; source B has {2, 4}. At the union
	// bound 2, A contributes its count at its next-lower bound 1.
	a := expose(func(r *Registry) {
		h := r.Histogram("m_seconds", "M.", []float64{1, 4})
		h.Observe(0.5) // ≤1
		h.Observe(3)   // ≤4
	})
	b := expose(func(r *Registry) {
		h := r.Histogram("m_seconds", "M.", []float64{2, 4})
		h.Observe(1.5) // ≤2
	})
	out, err := Merge([][]byte{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{
		`m_seconds_bucket{le="1"} 1`, // A's 1 + B's step at 1 (0)
		`m_seconds_bucket{le="2"} 2`, // A's step at 2 (count@1 = 1) + B's 1
		`m_seconds_bucket{le="4"} 3`,
		`m_seconds_bucket{le="+Inf"} 3`,
		"m_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged output missing %q:\n%s", want, text)
		}
	}
}

func TestMergeKindConflictErrors(t *testing.T) {
	a := expose(func(r *Registry) { r.Counter("x", "X.").Inc() })
	b := expose(func(r *Registry) { r.Gauge("x", "X.").Set(1) })
	if _, err := Merge([][]byte{a, b}, map[string]GaugeRule{"x": GaugeSum}); err == nil {
		t.Fatal("want kind-conflict error, got nil")
	}
}

// Merged output is itself parseable — the router can sit behind another
// router.
func TestMergeOutputReparses(t *testing.T) {
	a := expose(func(r *Registry) {
		r.Counter("c_total", "C.").Inc()
		r.Histogram("h_seconds", "H.", []float64{1}).Observe(0.5)
		r.Gauge("g", "G.").Set(2)
	})
	out, err := Merge([][]byte{a, a}, map[string]GaugeRule{"g": GaugeMax})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(bytes.NewReader(out)); err != nil {
		t.Fatalf("merged output does not reparse: %v", err)
	}
}

// --- logger ---

func TestLoggerLevelGating(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(log.New(&buf, "", 0), LevelWarn)
	l.Debugf("d")
	l.Infof("i")
	l.Warnf("w %d", 1)
	l.Errorf("e")
	if got := buf.String(); got != "w 1\ne\n" {
		t.Fatalf("gated output = %q", got)
	}
	l.SetLevel(LevelDebug)
	buf.Reset()
	l.Debugf("d2")
	if got := buf.String(); got != "d2\n" {
		t.Fatalf("after SetLevel: %q", got)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Infof("dropped")
	l.Event(LevelError, "x", "k", "v")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if NewLogger(nil, LevelInfo) != nil {
		t.Fatal("NewLogger(nil) should be nil")
	}
}

func TestLoggerEventKeyValue(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(log.New(&buf, "", 0), LevelInfo)
	l.Event(LevelInfo, "refit", "policy", "dirty", "dirty", 12, "msg", "two words")
	want := `event=refit level=info policy=dirty dirty=12 msg="two words"` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("event output = %q, want %q", got, want)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("want error for unknown level")
	}
}

// --- spans ---

func TestSpanEmitsJSONEvent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(log.New(&buf, "", 0), LevelInfo)
	sp := StartSpan(l, "refit", "drain")
	time.Sleep(time.Millisecond)
	sp.Phase("fit")
	sp.SetAttr("policy", "dirty").SetAttr("dirty", 3)
	sp.Phase("publish")
	total := sp.End()
	if total <= 0 {
		t.Fatal("total duration not positive")
	}
	line := strings.TrimSpace(buf.String())
	var ev struct {
		Span    string             `json:"span"`
		ID      string             `json:"id"`
		TotalMs float64            `json:"total_ms"`
		Phases  map[string]float64 `json:"phases"`
		Policy  string             `json:"policy"`
		Dirty   int                `json:"dirty"`
	}
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("span event is not one JSON line: %v\n%s", err, line)
	}
	if ev.Span != "refit" || len(ev.ID) != 16 || ev.Policy != "dirty" || ev.Dirty != 3 {
		t.Fatalf("span event fields wrong: %+v", ev)
	}
	for _, ph := range []string{"drain", "fit", "publish"} {
		if _, ok := ev.Phases[ph]; !ok {
			t.Fatalf("span event missing phase %s: %+v", ph, ev)
		}
	}
	if ev.Phases["drain"] < 0.5 {
		t.Fatalf("drain phase should have ≥1ms, got %v", ev.Phases["drain"])
	}
	if ev.TotalMs < ev.Phases["drain"] {
		t.Fatalf("total %v < drain %v", ev.TotalMs, ev.Phases["drain"])
	}
}

func TestSpanNilLoggerStillTimes(t *testing.T) {
	sp := StartSpan(nil, "x", "p")
	sp.Phase("q")
	if sp.End() < 0 {
		t.Fatal("negative duration")
	}
	if d := sp.PhaseDurations(); len(d) != 2 {
		t.Fatalf("phases = %v", d)
	}
}
