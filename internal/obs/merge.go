package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
)

// GaugeRule says how a gauge family aggregates across partitions. There
// is no default: Merge refuses gauges absent from the rule table, so a
// new gauge cannot ship without an explicit aggregation decision — the
// same loud-on-unknown contract the /stats merge rules enforce.
type GaugeRule int

const (
	// GaugeSum adds the partitions' values (e.g. in-flight requests).
	GaugeSum GaugeRule = iota
	// GaugeMax keeps the worst/largest value (e.g. replication lag).
	GaugeMax
	// GaugeMin keeps the smallest value (e.g. uptime: the youngest
	// process bounds how long the whole fleet has been stable).
	GaugeMin
)

// String names the rule for error messages and docs.
func (g GaugeRule) String() string {
	switch g {
	case GaugeSum:
		return "sum"
	case GaugeMax:
		return "max"
	case GaugeMin:
		return "min"
	}
	return fmt.Sprintf("GaugeRule(%d)", int(g))
}

// Merge combines several Prometheus text expositions into one cluster
// view: counter samples and histogram series SUM per label set, gauges
// aggregate per label set under the family's entry in gaugeRules, and a
// gauge family with no entry is an error. Histogram bucket ladders are
// merged over the union of bounds; a source lacking a bound contributes
// its cumulative count at its own next-lower bound (a documented lower
// bound on the true value — exact in practice, since every partition
// runs the same binary and therefore the same ladder). Families need not
// appear in every exposition, but a name must keep one kind everywhere.
func Merge(expositions [][]byte, gaugeRules map[string]GaugeRule) ([]byte, error) {
	type mergedFam struct {
		name    string
		help    string
		kind    Kind
		sets    map[string]*labelSet // key: canonical labels sans le
		setKeys []string
	}
	byName := make(map[string]*mergedFam)
	var order []string

	for pi, text := range expositions {
		fams, err := ParseExposition(bytes.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("obs: merge: exposition %d: %w", pi, err)
		}
		for _, f := range fams {
			mf := byName[f.Name]
			if mf == nil {
				mf = &mergedFam{name: f.Name, help: f.Help, kind: f.Kind, sets: make(map[string]*labelSet)}
				byName[f.Name] = mf
				order = append(order, f.Name)
			}
			if f.Kind != mf.kind {
				return nil, fmt.Errorf("obs: merge: family %s is %s in exposition %d, %s elsewhere", f.Name, f.Kind, pi, mf.kind)
			}
			if mf.kind == KindGauge {
				if _, ok := gaugeRules[f.Name]; !ok {
					return nil, fmt.Errorf("obs: merge: gauge %s has no merge rule — add it to the rule table", f.Name)
				}
			}
			for _, s := range f.Samples {
				key, labels, le, hasLe := splitLe(s.Labels)
				ls := mf.sets[key]
				if ls == nil {
					ls = &labelSet{labels: labels, buckets: make(map[float64]float64)}
					mf.sets[key] = ls
					mf.setKeys = append(mf.setKeys, key)
				}
				switch {
				case mf.kind == KindHistogram && s.Suffix == "_bucket":
					if !hasLe {
						return nil, fmt.Errorf("obs: merge: %s_bucket sample without le label", f.Name)
					}
					ls.addBucket(pi, le, s.Value)
				case mf.kind == KindHistogram && s.Suffix == "_sum":
					ls.sum += s.Value
				case mf.kind == KindHistogram && s.Suffix == "_count":
					ls.count += s.Value
				case mf.kind == KindCounter:
					ls.sum += s.Value
				default: // gauge
					ls.aggregate(gaugeRules[f.Name], s.Value)
				}
			}
		}
	}

	var out bytes.Buffer
	sort.Strings(order)
	for _, name := range order {
		mf := byName[name]
		fmt.Fprintf(&out, "# HELP %s %s\n# TYPE %s %s\n", mf.name, escapeHelp(mf.help), mf.name, mf.kind)
		sort.Strings(mf.setKeys)
		for _, key := range mf.setKeys {
			ls := mf.sets[key]
			switch mf.kind {
			case KindHistogram:
				ls.writeHistogram(&out, mf.name)
			case KindCounter:
				fmt.Fprintf(&out, "%s%s %s\n", mf.name, renderLabels(ls.labels), formatFloat(ls.sum))
			default:
				fmt.Fprintf(&out, "%s%s %s\n", mf.name, renderLabels(ls.labels), formatFloat(ls.gauge))
			}
		}
	}
	return out.Bytes(), nil
}

// labelSet accumulates one label combination of one family across
// expositions.
type labelSet struct {
	labels []Label
	sum    float64 // counter value, or histogram _sum
	count  float64 // histogram _count
	gauge  float64 // gauge under its rule
	gaugeN int
	// buckets holds, per le bound, the summed cumulative count; perSrc
	// tracks each source's own (bound → cumulative) step function so
	// union re-bucketing can evaluate it at foreign bounds.
	buckets map[float64]float64
	perSrc  []map[float64]float64
}

func (ls *labelSet) addBucket(src int, le, cum float64) {
	for len(ls.perSrc) <= src {
		ls.perSrc = append(ls.perSrc, nil)
	}
	if ls.perSrc[src] == nil {
		ls.perSrc[src] = make(map[float64]float64)
	}
	ls.perSrc[src][le] = cum
	ls.buckets[le] = 0 // mark the bound; summed in writeHistogram
}

func (ls *labelSet) aggregate(rule GaugeRule, v float64) {
	if ls.gaugeN == 0 {
		ls.gauge = v
	} else {
		switch rule {
		case GaugeSum:
			ls.gauge += v
		case GaugeMax:
			ls.gauge = math.Max(ls.gauge, v)
		case GaugeMin:
			ls.gauge = math.Min(ls.gauge, v)
		}
	}
	ls.gaugeN++
}

// writeHistogram renders the union-re-bucketed series: each source's
// cumulative step function is evaluated at every union bound (value at
// the next-lower owned bound, 0 below the first) and the evaluations sum.
func (ls *labelSet) writeHistogram(out *bytes.Buffer, name string) {
	bounds := make([]float64, 0, len(ls.buckets))
	for b := range ls.buckets {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	for _, b := range bounds {
		var total float64
		for _, src := range ls.perSrc {
			total += stepValue(src, b)
		}
		fmt.Fprintf(out, "%s_bucket%s %s\n", name, renderLabelsLe(ls.labels, b), formatFloat(total))
	}
	fmt.Fprintf(out, "%s_sum%s %s\n", name, renderLabels(ls.labels), formatFloat(ls.sum))
	fmt.Fprintf(out, "%s_count%s %s\n", name, renderLabels(ls.labels), formatFloat(ls.count))
}

// stepValue evaluates one source's cumulative bucket step function at
// bound b: its count at the largest owned bound ≤ b.
func stepValue(src map[float64]float64, b float64) float64 {
	if src == nil {
		return 0
	}
	if v, ok := src[b]; ok {
		return v
	}
	best := math.Inf(-1)
	var val float64
	for bound, v := range src {
		if bound <= b && bound > best {
			best, val = bound, v
		}
	}
	return val
}

// splitLe canonicalizes a sample's labels: the le pair (if any) is
// peeled off, the rest are sorted into a map key.
func splitLe(labels []Label) (key string, rest []Label, le float64, hasLe bool) {
	for _, l := range labels {
		if l.Name == "le" {
			le, _ = parseValue(l.Value)
			hasLe = true
			continue
		}
		rest = append(rest, l)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	parts := make([]string, len(rest))
	for i, l := range rest {
		parts[i] = l.Name + "\x00" + l.Value
	}
	return strings.Join(parts, "\x01"), rest, le, hasLe
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelsLe renders the labels with the le pair re-attached last,
// matching WritePrometheus's bucket-line shape.
func renderLabelsLe(labels []Label, le float64) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	if len(labels) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, `le="%s"`, formatFloat(le))
	b.WriteByte('}')
	return b.String()
}
