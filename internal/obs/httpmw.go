package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments an http.Handler: per-route/per-status request
// counts, a per-route latency histogram, an in-flight gauge, and
// per-route response bytes. Routes are labeled by the ServeMux pattern
// that matched (Go ≥1.23 sets Request.Pattern on the request the
// middleware already holds), so label cardinality is bounded by the
// route table, not by URLs. Unmatched requests share one "unmatched"
// label.
//
// With a non-zero slow threshold, any request slower than it is logged
// as a structured warn event with its route, status and duration.
type HTTPMetrics struct {
	requests *CounterVec   // <prefix>requests_total{route,code}
	latency  *HistogramVec // <prefix>request_seconds{route}
	bytes    *CounterVec   // <prefix>response_bytes_total{route}
	inFlight *Gauge        // <prefix>in_flight
	slow     time.Duration
	logger   *Logger
}

// NewHTTPMetrics registers the middleware's families under prefix
// (e.g. "http_" on a serving daemon, "router_http_" on a router whose
// merged view also carries its partitions' "http_" series).
func NewHTTPMetrics(r *Registry, prefix string, logger *Logger, slow time.Duration) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec(prefix+"requests_total",
			"Requests served, by route pattern and status code.", "route", "code"),
		latency: r.HistogramVec(prefix+"request_seconds",
			"Request latency in seconds, by route pattern.", nil, "route"),
		bytes: r.CounterVec(prefix+"response_bytes_total",
			"Response body bytes written, by route pattern.", "route"),
		inFlight: r.Gauge(prefix+"in_flight", "Requests currently being served."),
		slow:     slow,
		logger:   logger,
	}
}

// Wrap returns next instrumented.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		m.inFlight.Add(-1)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		elapsed := time.Since(start)
		m.requests.With(route, strconv.Itoa(sw.status())).Inc()
		m.latency.With(route).Observe(elapsed.Seconds())
		m.bytes.With(route).Add(uint64(sw.bytes))
		if m.slow > 0 && elapsed >= m.slow {
			m.logger.Event(LevelWarn, "slow_request",
				"route", route,
				"path", r.URL.Path,
				"status", sw.status(),
				"ms", float64(elapsed)/float64(time.Millisecond))
		}
	})
}

// statusWriter records the status code and body bytes as they pass
// through. Flush is forwarded so streamed responses keep streaming, and
// Unwrap keeps http.ResponseController working.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// MetricsHandler serves reg in the Prometheus text exposition format —
// the GET /metrics endpoint.
func MetricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	}
}
