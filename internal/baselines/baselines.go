package baselines

import (
	"latenttruth/internal/model"
)

// common precomputes the positive-claim bipartite structure shared by the
// fact-finder baselines.
type common struct {
	ds *model.Dataset
	// factSources[f] lists sources with a positive claim on f.
	factSources [][]int
	// sourceFacts[s] lists facts source s positively claims.
	sourceFacts [][]int
}

func newCommon(ds *model.Dataset) *common {
	c := &common{
		ds:          ds,
		factSources: make([][]int, ds.NumFacts()),
		sourceFacts: make([][]int, ds.NumSources()),
	}
	for _, cl := range ds.Claims {
		if cl.Observation {
			c.factSources[cl.Fact] = append(c.factSources[cl.Fact], cl.Source)
			c.sourceFacts[cl.Source] = append(c.sourceFacts[cl.Source], cl.Fact)
		}
	}
	return c
}

// maxAbsDelta returns the largest absolute element-wise difference between
// a and b, used for convergence checks.
func maxAbsDelta(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// normalizeMax divides xs by its maximum when positive, leaving xs
// untouched otherwise, and returns the maximum.
func normalizeMax(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if m > 0 {
		for i := range xs {
			xs[i] /= m
		}
	}
	return m
}
