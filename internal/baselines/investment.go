package baselines

import (
	"math"

	"latenttruth/internal/model"
)

// Investment implements the Investment fact-finder of Pasternack & Roth
// (COLING 2010) on positive claims. Each source invests its trust
// uniformly across its claims; beliefs grow by G(x) = x^g with g = 1.2 —
// the published setting — and sources collect returns proportional to
// their share of each fact's investment:
//
//	B_i(f) = G( Σ_{s∈S_f} T_{i-1}(s) / |F_s| )
//	T_i(s) = Σ_{f∈F_s} B_i(f) · (T_{i-1}(s)/|F_s|) / (Σ_{s'∈S_f} T_{i-1}(s')/|F_{s'}|)
//
// Trust and belief are mean-normalized each round for numerical
// stability; without normalization the x^1.2 growth compounded over the
// fixpoint rounds sends every supported fact's belief to overflow, which
// is precisely why the paper observes Investment predicting everything
// true regardless of threshold ("consistently thinks everything is true
// even at a higher threshold", §6.2.1/Figure 2). The probability mapping
// reproduces that saturation faithfully: every fact with positive support
// scores in [0.99, 1] (belief ranking preserved within the band, giving
// the bottom-rank AUC of Figure 3), and only facts nobody asserts fall to
// the prior 0.5.
type Investment struct {
	// Growth is the belief-growth exponent g (default 1.2).
	Growth float64
	// MaxIterations bounds the fixpoint loop (default 100).
	MaxIterations int
	// Tolerance stops iteration early when beliefs change less (default 1e-9).
	Tolerance float64
}

// NewInvestment returns an Investment baseline with the published settings.
func NewInvestment() *Investment {
	return &Investment{Growth: 1.2, MaxIterations: 100, Tolerance: 1e-9}
}

// Name implements model.Method.
func (*Investment) Name() string { return "Investment" }

// Infer runs the investment fixpoint.
func (inv *Investment) Infer(ds *model.Dataset) (*model.Result, error) {
	c := newCommon(ds)
	nS, nF := ds.NumSources(), ds.NumFacts()
	trust := make([]float64, nS)
	for s := range trust {
		trust[s] = 1
	}
	belief := make([]float64, nF)
	invested := make([]float64, nF) // Σ_s T(s)/|F_s| per fact
	prev := make([]float64, nF)
	for iter := 0; iter < inv.MaxIterations; iter++ {
		for f := range invested {
			invested[f] = 0
		}
		for s := range trust {
			facts := c.sourceFacts[s]
			if len(facts) == 0 {
				continue
			}
			share := trust[s] / float64(len(facts))
			for _, f := range facts {
				invested[f] += share
			}
		}
		copy(prev, belief)
		for f := range belief {
			belief[f] = math.Pow(invested[f], inv.Growth)
		}
		// Returns to sources.
		next := make([]float64, nS)
		for s := range trust {
			facts := c.sourceFacts[s]
			if len(facts) == 0 {
				continue
			}
			share := trust[s] / float64(len(facts))
			sum := 0.0
			for _, f := range facts {
				if invested[f] > 0 {
					sum += belief[f] * share / invested[f]
				}
			}
			next[s] = sum
		}
		normalizeMean(next)
		trust = next
		normalizeMean(belief)
		if maxAbsDelta(prev, belief) < inv.Tolerance {
			break
		}
	}
	res := model.NewResult(inv.Name(), ds)
	maxB := 0.0
	for _, x := range belief {
		if x > maxB {
			maxB = x
		}
	}
	for f := range belief {
		switch {
		case len(c.factSources[f]) == 0:
			// No positive claim at all: only the prior speaks.
			res.Prob[f] = 0.5
		case maxB > 0:
			res.Prob[f] = 0.99 + 0.01*belief[f]/maxB
		default:
			res.Prob[f] = 0.99
		}
	}
	return res, res.Validate()
}

// normalizeMean scales xs so its mean is 1 (no-op on a zero vector).
func normalizeMean(xs []float64) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum <= 0 {
		return
	}
	scale := float64(len(xs)) / sum
	for i := range xs {
		xs[i] *= scale
	}
}
