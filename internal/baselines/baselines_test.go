package baselines

import (
	"math"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/synth"
)

// table1 returns the paper's running example dataset.
func table1(t *testing.T) *model.Dataset {
	t.Helper()
	return synth.Table1Example().Dataset
}

// syntheticDS draws a medium synthetic dataset for behavioural tests.
func syntheticDS(t *testing.T, seed int64) *model.Dataset {
	t.Helper()
	ds, _, err := synth.PaperSynthetic(synth.PaperSyntheticConfig{
		NumFacts: 400, NumSources: 12,
		Alpha0: [2]float64{5, 95}, Alpha1: [2]float64{85, 15},
		Beta: [2]float64{10, 10}, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func accuracy(ds *model.Dataset, res *model.Result) float64 {
	correct := 0
	for f, v := range ds.Labels {
		if (res.Prob[f] >= 0.5) == v {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Labels))
}

func TestAllMethodsProduceValidResults(t *testing.T) {
	ds := syntheticDS(t, 1)
	for _, m := range All(core.Config{Seed: 1}) {
		res, err := m.Infer(ds)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res.Prob) != ds.NumFacts() {
			t.Fatalf("%s: %d scores for %d facts", m.Name(), len(res.Prob), ds.NumFacts())
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Method != m.Name() {
			t.Fatalf("%s: result reports method %q", m.Name(), res.Method)
		}
	}
}

func TestVotingExactFractions(t *testing.T) {
	ds := table1(t)
	res, err := NewVoting().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Claim table (Table 3): Daniel 3/3, Emma 2/3, Rupert 1/3,
	// Johnny@HP 1/3, Johnny@P4 1/1.
	want := map[string]float64{
		"Daniel Radcliffe": 1,
		"Emma Watson":      2.0 / 3,
		"Rupert Grint":     1.0 / 3,
	}
	for attr, w := range want {
		f := ds.FactIndex("Harry Potter", attr)
		if math.Abs(res.Prob[f]-w) > 1e-12 {
			t.Errorf("vote(%s) = %v, want %v", attr, res.Prob[f], w)
		}
	}
	if f := ds.FactIndex("Pirates 4", "Johnny Depp"); res.Prob[f] != 1 {
		t.Errorf("vote(Pirates) = %v", res.Prob[f])
	}
}

func TestVotingIllustratesThresholdDilemma(t *testing.T) {
	// The paper's Example 1: at threshold 1/2, voting rejects both Rupert
	// (true) and Johnny@HP (false); at 1/3 it accepts both. No threshold
	// separates them.
	ds := table1(t)
	res, err := NewVoting().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	rupert := ds.FactIndex("Harry Potter", "Rupert Grint")
	johnny := ds.FactIndex("Harry Potter", "Johnny Depp")
	if res.Prob[rupert] != res.Prob[johnny] {
		t.Fatalf("voting separates Rupert (%v) from Johnny (%v)",
			res.Prob[rupert], res.Prob[johnny])
	}
}

func TestTruthFinderAlwaysAboveHalf(t *testing.T) {
	// σ(f) >= 0 implies conf(f) = 1/(1+exp(-γσ)) >= 0.5: the structural
	// reason TruthFinder floods Table 7 with positives.
	ds := syntheticDS(t, 2)
	res, err := NewTruthFinder().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f, p := range res.Prob {
		hasPos := false
		for _, ci := range ds.ClaimsByFact[f] {
			if ds.Claims[ci].Observation {
				hasPos = true
			}
		}
		if hasPos && p < 0.5 {
			t.Fatalf("fact %d with positive support scored %v < 0.5", f, p)
		}
	}
}

func TestTruthFinderMoreSupportMoreConfidence(t *testing.T) {
	ds := table1(t)
	res, err := NewTruthFinder().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	daniel := ds.FactIndex("Harry Potter", "Daniel Radcliffe")
	rupert := ds.FactIndex("Harry Potter", "Rupert Grint")
	if res.Prob[daniel] <= res.Prob[rupert] {
		t.Fatalf("3-source fact (%v) not above 1-source fact (%v)",
			res.Prob[daniel], res.Prob[rupert])
	}
}

func TestInvestmentOptimistic(t *testing.T) {
	ds := syntheticDS(t, 3)
	res, err := NewInvestment().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	below := 0
	for _, p := range res.Prob {
		if p < 0.5 {
			below++
		}
	}
	if below != 0 {
		t.Fatalf("Investment scored %d facts below 0.5; the adaptation should be optimistic", below)
	}
}

func TestHubAuthorityConservative(t *testing.T) {
	ds := syntheticDS(t, 4)
	res, err := NewHubAuthority().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Global max normalization: exactly one fact (the argmax) scores 1.
	max := 0.0
	for _, p := range res.Prob {
		if p > max {
			max = p
		}
	}
	if math.Abs(max-1) > 1e-9 {
		t.Fatalf("max score %v, want 1", max)
	}
}

func TestHubAuthorityOrdersBySupport(t *testing.T) {
	ds := table1(t)
	res, err := NewHubAuthority().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	daniel := ds.FactIndex("Harry Potter", "Daniel Radcliffe")
	rupert := ds.FactIndex("Harry Potter", "Rupert Grint")
	if res.Prob[daniel] <= res.Prob[rupert] {
		t.Fatal("authority ordering violated")
	}
}

func TestAvgLogSingleClaimSourcesGetZeroTrust(t *testing.T) {
	// A source with exactly one claim has log(1) = 0 trust, so a fact
	// supported only by such sources scores 0.
	db := model.NewRawDB()
	db.Add("e1", "a", "lonely") // lonely claims only this fact
	db.Add("e2", "b", "busy")   // busy claims two facts
	db.Add("e3", "c", "busy")
	ds := model.Build(db)
	res, err := NewAvgLog().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	fa := ds.FactIndex("e1", "a")
	if res.Prob[fa] != 0 {
		t.Fatalf("lonely-supported fact scored %v, want 0", res.Prob[fa])
	}
}

func TestPooledInvestmentSharesWithinEntity(t *testing.T) {
	ds := syntheticDS(t, 5)
	res, err := NewPooledInvestment().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Pooled shares within each entity sum to at most 1 (exactly 1 when
	// any fact of the entity has support).
	for e, facts := range ds.FactsByEntity {
		sum := 0.0
		for _, f := range facts {
			sum += res.Prob[f]
		}
		if sum > 1+1e-9 {
			t.Fatalf("entity %d pooled shares sum to %v", e, sum)
		}
	}
}

func TestPooledInvestmentSingleCandidateDominates(t *testing.T) {
	// An entity with a single supported fact gives it the whole pool.
	db := model.NewRawDB()
	db.Add("e", "only", "s1")
	db.Add("e2", "x", "s1") // keep s1 busy elsewhere too
	ds := model.Build(db)
	res, err := NewPooledInvestment().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	f := ds.FactIndex("e", "only")
	if math.Abs(res.Prob[f]-1) > 1e-9 {
		t.Fatalf("single candidate share %v, want 1", res.Prob[f])
	}
}

func TestThreeEstimatesPerfectSources(t *testing.T) {
	// When all sources agree with the truth, 3-Estimates must recover it.
	db := model.NewRawDB()
	for e := 0; e < 20; e++ {
		for s := 0; s < 4; s++ {
			db.Add(entityName(e), "good", sourceName(s))
		}
	}
	ds := model.Build(db)
	res, err := NewThreeEstimates().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f, p := range res.Prob {
		if p < 0.9 {
			t.Fatalf("unanimous fact %d scored %v", f, p)
		}
	}
}

func TestThreeEstimatesUsesNegativeClaims(t *testing.T) {
	// A fact asserted by one source but denied by three consistent ones
	// should score below one asserted by all.
	ds := table1(t)
	res, err := NewThreeEstimates().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	daniel := ds.FactIndex("Harry Potter", "Daniel Radcliffe")
	johnny := ds.FactIndex("Harry Potter", "Johnny Depp")
	if res.Prob[daniel] <= res.Prob[johnny] {
		t.Fatalf("3-Estimates: unanimous fact %v not above contested %v",
			res.Prob[daniel], res.Prob[johnny])
	}
}

func TestThreeEstimatesAccuracyOnSynthetic(t *testing.T) {
	ds := syntheticDS(t, 6)
	res, err := NewThreeEstimates().Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(ds, res); acc < 0.9 {
		t.Fatalf("3-Estimates accuracy %v on easy synthetic", acc)
	}
}

func TestRenormalize(t *testing.T) {
	xs := []float64{0.2, 0.4, 0.6}
	renormalize(xs, 0.001)
	if math.Abs(xs[0]-0.001) > 1e-12 || math.Abs(xs[2]-0.999) > 1e-12 {
		t.Fatalf("renormalized to %v", xs)
	}
	if math.Abs(xs[1]-0.5) > 1e-12 {
		t.Fatalf("midpoint %v, want 0.5", xs[1])
	}
	// Constant input untouched.
	ys := []float64{0.3, 0.3}
	renormalize(ys, 0.001)
	if ys[0] != 0.3 || ys[1] != 0.3 {
		t.Fatalf("constant input changed: %v", ys)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"LTM", "3-Estimates", "Voting", "TruthFinder", "Investment",
		"LTMpos", "HubAuthority", "AvgLog", "PooledInvestment"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		m, err := ByName(n, core.Config{})
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if m.Name() != n {
			t.Fatalf("ByName(%s).Name() = %s", n, m.Name())
		}
	}
	if _, err := ByName("nope", core.Config{}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestBaselinesRankEasySynthetic(t *testing.T) {
	// All reasonable methods should beat coin-flipping on easy data at
	// their respective operating points; the score-ranking methods should
	// order true facts above false ones (sanity on scores, not thresholds).
	ds := syntheticDS(t, 7)
	for _, m := range []model.Method{NewVoting(), NewThreeEstimates(), NewTruthFinder(), NewAvgLog(), NewHubAuthority()} {
		res, err := m.Infer(ds)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		// Mean score of true facts must exceed mean score of false facts.
		var st, sf, nt, nf float64
		for f, v := range ds.Labels {
			if v {
				st += res.Prob[f]
				nt++
			} else {
				sf += res.Prob[f]
				nf++
			}
		}
		if st/nt <= sf/nf {
			t.Errorf("%s: true-fact mean score %v <= false-fact mean %v",
				m.Name(), st/nt, sf/nf)
		}
	}
}

func entityName(i int) string { return "e" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }
func sourceName(i int) string { return "s" + string(rune('0'+i)) }
