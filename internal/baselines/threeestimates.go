package baselines

import (
	"latenttruth/internal/model"
)

// ThreeEstimates implements the 3-Estimates algorithm of Galland,
// Abiteboul, Marian & Senellart (WSDM 2010). Unlike the positive-only
// fact-finders it consumes negative claims too, and it estimates three
// mutually dependent quantities: the truth value t_f of each fact, the
// error factor ε_s of each source (a scalar accuracy-style quality, the
// limitation §3.3 discusses), and the difficulty δ_f of each fact, under
// the factorization
//
//	P(source s is wrong about fact f) = ε_s · δ_f .
//
// One round alternates three estimates, each the least-squares solution
// given the other two (err(s,f) is t_f when s denies f, 1−t_f when s
// asserts it):
//
//	t_f = Σ_{s∈S_f} [ o_sf·(1 − ε_s δ_f) + (1−o_sf)·ε_s δ_f ] / |S_f|
//	δ_f = Σ_{s∈S_f} ε_s·err(s,f) / Σ_{s∈S_f} ε_s²
//	ε_s = Σ_{f∈F_s} δ_f·err(s,f) / Σ_{f∈F_s} δ_f²
//
// After each round ε and δ are linearly renormalized onto [λ, 1−λ]
// (Galland et al.'s normalization, needed to escape the trivial fixpoint
// where every source is perfect), and t is clamped to [0, 1]. The truth
// estimate t_f is the output probability.
type ThreeEstimates struct {
	// Rounds is the number of alternation rounds (default 100).
	Rounds int
	// Lambda bounds the renormalized range of ε and δ away from the
	// degenerate endpoints 0 and 1 (default 0.001).
	Lambda float64
	// InitialError seeds every source's error factor (default 0.1).
	InitialError float64
	// Tolerance stops early when truth estimates move less (default 1e-9).
	Tolerance float64
}

// NewThreeEstimates returns the baseline with the published settings.
func NewThreeEstimates() *ThreeEstimates {
	return &ThreeEstimates{Rounds: 100, Lambda: 0.001, InitialError: 0.1, Tolerance: 1e-9}
}

// Name implements model.Method.
func (*ThreeEstimates) Name() string { return "3-Estimates" }

// Infer runs the three-way alternation over positive and negative claims.
func (te *ThreeEstimates) Infer(ds *model.Dataset) (*model.Result, error) {
	nF, nS := ds.NumFacts(), ds.NumSources()
	truth := make([]float64, nF)
	diff := make([]float64, nF)
	eps := make([]float64, nS)
	for f := range diff {
		diff[f] = 0.5
	}
	for s := range eps {
		eps[s] = te.InitialError
	}
	// Initialize truth from voting.
	for f := range truth {
		pos, tot := 0, 0
		for _, ci := range ds.ClaimsByFact[f] {
			tot++
			if ds.Claims[ci].Observation {
				pos++
			}
		}
		if tot > 0 {
			truth[f] = float64(pos) / float64(tot)
		}
	}
	prev := make([]float64, nF)
	for round := 0; round < te.Rounds; round++ {
		// Truth given ε, δ.
		copy(prev, truth)
		for f := range truth {
			claims := ds.ClaimsByFact[f]
			if len(claims) == 0 {
				continue
			}
			sum := 0.0
			for _, ci := range claims {
				c := ds.Claims[ci]
				wrong := eps[c.Source] * diff[f]
				if c.Observation {
					sum += 1 - wrong
				} else {
					sum += wrong
				}
			}
			truth[f] = clamp01(sum / float64(len(claims)))
		}
		// Difficulty given t, ε: least squares of err(s,f) ≈ ε_s·δ_f.
		for f := range diff {
			num, den := 0.0, 0.0
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				e := eps[c.Source]
				num += e * errTerm(c.Observation, truth[f])
				den += e * e
			}
			if den > 0 {
				diff[f] = clamp01(num / den)
			}
		}
		renormalize(diff, te.Lambda)
		// Source error given t, δ.
		for s := 0; s < nS; s++ {
			num, den := 0.0, 0.0
			for _, ci := range ds.ClaimsBySource[s] {
				c := ds.Claims[ci]
				d := diff[c.Fact]
				num += d * errTerm(c.Observation, truth[c.Fact])
				den += d * d
			}
			if den > 0 {
				eps[s] = clamp01(num / den)
			}
		}
		renormalize(eps, te.Lambda)
		if maxAbsDelta(prev, truth) < te.Tolerance {
			break
		}
	}
	res := &model.Result{Method: te.Name(), Prob: truth}
	return res, res.Validate()
}

// errTerm is the observed disagreement between a claim and the current
// truth estimate: 1−t for a positive claim, t for a negative claim.
func errTerm(observation bool, t float64) float64 {
	if observation {
		return 1 - t
	}
	return t
}

// renormalize linearly rescales xs onto [lambda, 1−lambda]; when all
// values coincide it leaves them unchanged (already a fixpoint).
func renormalize(xs []float64, lambda float64) {
	if len(xs) == 0 {
		return
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi <= lo {
		return
	}
	span := hi - lo
	for i := range xs {
		xs[i] = lambda + (1-2*lambda)*(xs[i]-lo)/span
	}
}

// clamp01 limits x to [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
