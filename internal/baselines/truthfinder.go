package baselines

import (
	"fmt"
	"math"

	"latenttruth/internal/model"
)

// TruthFinder implements Yin, Han & Yu (KDD 2007) as adapted by the paper:
// only positive claims are considered, and a fact's confidence is the
// (dampened) probability that at least one of its positive claims is
// correct given the trustworthiness of the claiming sources.
//
// Per the original publication: source trustworthiness t(s) is the mean
// confidence of the facts it claims; the trustworthiness score is
// τ(s) = −ln(1 − t(s)); a fact's score is σ(f) = Σ_{s∈S_f} τ(s); and the
// final confidence applies the logistic dampening
// conf(f) = 1 / (1 + exp(−γ·σ(f))) with γ = 0.3 to compensate for source
// dependence. Because σ(f) ≥ 0 always, every confidence is ≥ 0.5 — which
// is exactly why the paper observes TruthFinder predicting everything true
// at threshold 0.5 (Table 7).
type TruthFinder struct {
	// Gamma is the dampening factor (default 0.3).
	Gamma float64
	// InitialTrust seeds every source's trustworthiness (default 0.9).
	InitialTrust float64
	// MaxIterations bounds the fixpoint loop (default 100).
	MaxIterations int
	// Tolerance stops iteration when no trust changes more than this
	// (default 1e-6).
	Tolerance float64
}

// NewTruthFinder returns a TruthFinder with the original paper's settings.
func NewTruthFinder() *TruthFinder {
	return &TruthFinder{Gamma: 0.3, InitialTrust: 0.9, MaxIterations: 100, Tolerance: 1e-6}
}

// Name implements model.Method.
func (*TruthFinder) Name() string { return "TruthFinder" }

// Infer runs the trust/confidence fixpoint over positive claims.
func (tf *TruthFinder) Infer(ds *model.Dataset) (*model.Result, error) {
	if tf.Gamma <= 0 || tf.InitialTrust <= 0 || tf.InitialTrust >= 1 {
		return nil, fmt.Errorf("baselines: TruthFinder parameters gamma=%v trust0=%v invalid", tf.Gamma, tf.InitialTrust)
	}
	c := newCommon(ds)
	trust := make([]float64, ds.NumSources())
	for s := range trust {
		trust[s] = tf.InitialTrust
	}
	conf := make([]float64, ds.NumFacts())
	prev := make([]float64, ds.NumSources())
	for iter := 0; iter < tf.MaxIterations; iter++ {
		// Fact confidence from source trust.
		for f := range conf {
			sigma := 0.0
			for _, s := range c.factSources[f] {
				t := trust[s]
				if t > 1-1e-12 {
					t = 1 - 1e-12
				}
				sigma += -math.Log1p(-t)
			}
			conf[f] = 1.0 / (1.0 + math.Exp(-tf.Gamma*sigma))
		}
		// Source trust from fact confidence.
		copy(prev, trust)
		for s := range trust {
			facts := c.sourceFacts[s]
			if len(facts) == 0 {
				continue
			}
			sum := 0.0
			for _, f := range facts {
				sum += conf[f]
			}
			trust[s] = sum / float64(len(facts))
		}
		if maxAbsDelta(prev, trust) < tf.Tolerance {
			break
		}
	}
	res := &model.Result{Method: tf.Name(), Prob: conf}
	return res, res.Validate()
}
