package baselines

import (
	"math"

	"latenttruth/internal/model"
)

// AvgLog implements the Average·Log fact-finder of Pasternack & Roth
// (COLING 2010) on positive claims:
//
//	T_i(s) = log(|F_s|) · Σ_{f∈F_s} B_{i-1}(f) / |F_s|
//	B_i(f) = Σ_{s∈S_f} T_i(s)
//
// where F_s are the facts source s claims and S_f the sources claiming f.
// Trust and belief are max-normalized each round to keep the fixpoint
// bounded; a source with a single claim has log(1) = 0 trust, exactly as
// published. The final probability of a fact is its belief relative to the
// global maximum belief — the mapping under which the method exhibits the
// strongly conservative behaviour (perfect precision, low recall) reported
// in Table 7.
type AvgLog struct {
	// MaxIterations bounds the fixpoint loop (default 100).
	MaxIterations int
	// Tolerance stops iteration early when beliefs change less (default 1e-9).
	Tolerance float64
}

// NewAvgLog returns an AvgLog baseline with standard settings.
func NewAvgLog() *AvgLog { return &AvgLog{MaxIterations: 100, Tolerance: 1e-9} }

// Name implements model.Method.
func (*AvgLog) Name() string { return "AvgLog" }

// Infer runs the Average·Log fixpoint.
func (a *AvgLog) Infer(ds *model.Dataset) (*model.Result, error) {
	c := newCommon(ds)
	belief := make([]float64, ds.NumFacts())
	// Pasternack & Roth initialize beliefs uniformly.
	for f := range belief {
		belief[f] = 1
	}
	trust := make([]float64, ds.NumSources())
	prev := make([]float64, ds.NumFacts())
	for iter := 0; iter < a.MaxIterations; iter++ {
		for s := range trust {
			facts := c.sourceFacts[s]
			if len(facts) == 0 {
				trust[s] = 0
				continue
			}
			sum := 0.0
			for _, f := range facts {
				sum += belief[f]
			}
			trust[s] = math.Log(float64(len(facts))) * sum / float64(len(facts))
		}
		normalizeMax(trust)
		copy(prev, belief)
		for f := range belief {
			sum := 0.0
			for _, s := range c.factSources[f] {
				sum += trust[s]
			}
			belief[f] = sum
		}
		normalizeMax(belief)
		if maxAbsDelta(prev, belief) < a.Tolerance {
			break
		}
	}
	res := &model.Result{Method: a.Name(), Prob: belief}
	return res, res.Validate()
}
