// Package baselines implements every comparison method of the paper's
// evaluation (§6.2, Table 7): Voting, TruthFinder [14], HubAuthority [9,10],
// AvgLog [10,11], Investment [10], PooledInvestment [10,11], and
// 3-Estimates [7]. All methods satisfy model.Method and output per-fact
// truth probabilities so they can be swept over thresholds (Figure 2) and
// ranked by AUC (Figure 3).
//
// The original fact-finders were designed for single-truth settings and
// emit unbounded belief scores, not probabilities. Following the paper's
// adaptation, positive-claim-only methods see only positive claims, and
// belief scores are mapped to [0,1] in the way that preserves each
// method's published behaviour at threshold 0.5 (optimistic for
// TruthFinder/Investment, conservative for HubAuthority/AvgLog/
// PooledInvestment); the mapping used is documented on each type.
package baselines
