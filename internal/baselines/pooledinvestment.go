package baselines

import (
	"math"

	"latenttruth/internal/model"
)

// PooledInvestment implements the PooledInvestment fact-finder of
// Pasternack & Roth with growth exponent g = 1.4 (the published setting).
// Sources invest trust uniformly across claims as in Investment; the
// linear belief H(f) is then pooled within each mutual-exclusion set —
// here, the facts of the same entity, the natural adaptation for
// multi-valued attributes — and redistributed superlinearly:
//
//	B_i(f) = H_i(f) · G(H_i(f)) / Σ_{f'∈mutex(f)} G(H_i(f'))
//
// The final probability of a fact is its pooled share
// G(H(f)) / Σ_{f'∈mutex(f)} G(H(f')), so an entity's probability mass sums
// to one across its candidate attributes. When an entity genuinely has
// several true attributes each share falls below 0.5 — which is why the
// paper finds PooledInvestment the most conservative method in Table 7
// (perfect precision, recall as low as 0.025).
type PooledInvestment struct {
	// Growth is the pooling exponent g (default 1.4).
	Growth float64
	// MaxIterations bounds the fixpoint loop (default 100).
	MaxIterations int
	// Tolerance stops iteration early when beliefs change less (default 1e-9).
	Tolerance float64
}

// NewPooledInvestment returns the baseline with the published settings.
func NewPooledInvestment() *PooledInvestment {
	return &PooledInvestment{Growth: 1.4, MaxIterations: 100, Tolerance: 1e-9}
}

// Name implements model.Method.
func (*PooledInvestment) Name() string { return "PooledInvestment" }

// Infer runs the pooled investment fixpoint.
func (pi *PooledInvestment) Infer(ds *model.Dataset) (*model.Result, error) {
	c := newCommon(ds)
	nS, nF := ds.NumSources(), ds.NumFacts()
	trust := make([]float64, nS)
	for s := range trust {
		trust[s] = 1
	}
	linear := make([]float64, nF) // H(f)
	belief := make([]float64, nF) // B(f)
	share := make([]float64, nF)  // pooled share, the output probability
	prev := make([]float64, nF)
	for iter := 0; iter < pi.MaxIterations; iter++ {
		for f := range linear {
			linear[f] = 0
		}
		for s := range trust {
			facts := c.sourceFacts[s]
			if len(facts) == 0 {
				continue
			}
			inv := trust[s] / float64(len(facts))
			for _, f := range facts {
				linear[f] += inv
			}
		}
		// Pool within each entity's facts.
		copy(prev, belief)
		for _, facts := range pi.mutexSets(c) {
			total := 0.0
			for _, f := range facts {
				total += math.Pow(linear[f], pi.Growth)
			}
			for _, f := range facts {
				if total > 0 {
					share[f] = math.Pow(linear[f], pi.Growth) / total
				} else {
					share[f] = 0
				}
				belief[f] = linear[f] * share[f] * float64(len(facts))
			}
		}
		// Returns to sources, proportional to invested share as in Investment.
		next := make([]float64, nS)
		for s := range trust {
			facts := c.sourceFacts[s]
			if len(facts) == 0 {
				continue
			}
			inv := trust[s] / float64(len(facts))
			sum := 0.0
			for _, f := range facts {
				if linear[f] > 0 {
					sum += belief[f] * inv / linear[f]
				}
			}
			next[s] = sum
		}
		normalizeMean(next)
		trust = next
		if maxAbsDelta(prev, belief) < pi.Tolerance {
			break
		}
	}
	res := &model.Result{Method: pi.Name(), Prob: share}
	return res, res.Validate()
}

// mutexSets returns the mutual-exclusion sets: the facts of each entity.
func (pi *PooledInvestment) mutexSets(c *common) [][]int {
	return c.ds.FactsByEntity
}
