package baselines

import (
	"fmt"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
)

// All returns the batch methods of the paper's evaluation in Table 7's
// row order (LTMinc is excluded: it is a prediction protocol that needs a
// previously fitted model, and is driven by the experiments harness).
func All(ltmCfg core.Config) []model.Method {
	return []model.Method{
		core.New(ltmCfg),
		NewThreeEstimates(),
		NewVoting(),
		NewTruthFinder(),
		NewInvestment(),
		core.NewPos(ltmCfg),
		NewHubAuthority(),
		NewAvgLog(),
		NewPooledInvestment(),
	}
}

// ByName returns the method with the given display name (as reported by
// Name), constructing LTM variants with ltmCfg. Recognized names:
// LTM, LTMpos, 3-Estimates, Voting, TruthFinder, Investment,
// HubAuthority, AvgLog, PooledInvestment.
func ByName(name string, ltmCfg core.Config) (model.Method, error) {
	for _, m := range All(ltmCfg) {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown method %q", name)
}

// Names lists the display names returned by All, in order.
func Names() []string {
	names := make([]string, 0, 9)
	for _, m := range All(core.Config{}) {
		names = append(names, m.Name())
	}
	return names
}
