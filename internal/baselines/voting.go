package baselines

import (
	"fmt"

	"latenttruth/internal/model"
)

// Voting scores each fact by the proportion of its claims (positive and
// negative) that are positive — the paper's strengthened voting baseline
// (§6.2), which counts votes per individual attribute rather than per
// concatenated attribute list.
type Voting struct{}

// NewVoting returns the voting baseline.
func NewVoting() *Voting { return &Voting{} }

// Name implements model.Method.
func (*Voting) Name() string { return "Voting" }

// Infer computes the positive-claim fraction of every fact.
func (v *Voting) Infer(ds *model.Dataset) (*model.Result, error) {
	res := model.NewResult(v.Name(), ds)
	for f := range ds.Facts {
		claims := ds.ClaimsByFact[f]
		if len(claims) == 0 {
			return nil, fmt.Errorf("baselines: fact %d has no claims", f)
		}
		pos := 0
		for _, ci := range claims {
			if ds.Claims[ci].Observation {
				pos++
			}
		}
		res.Prob[f] = float64(pos) / float64(len(claims))
	}
	return res, nil
}
