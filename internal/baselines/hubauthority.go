package baselines

import (
	"math"

	"latenttruth/internal/model"
)

// HubAuthority runs Kleinberg's HITS on the bipartite graph between
// sources (hubs) and facts (authorities) induced by positive claims, as
// adapted to fact-finding by Pasternack & Roth: a source's hub score is
// the sum of its claimed facts' authorities, and a fact's authority is the
// sum of its claiming sources' hub scores, with L2 normalization each
// round.
//
// Authorities are not probabilities; following the conservative behaviour
// the paper reports for this method (perfect precision, moderate-to-low
// recall), the final score of a fact is its authority relative to the
// globally strongest authority, so at threshold 0.5 only facts with at
// least half the support of the best-attested fact in the dataset are
// predicted true.
type HubAuthority struct {
	// MaxIterations bounds the power iteration (default 100).
	MaxIterations int
	// Tolerance stops iteration when authorities change less (default 1e-9).
	Tolerance float64
}

// NewHubAuthority returns a HITS baseline with standard settings.
func NewHubAuthority() *HubAuthority {
	return &HubAuthority{MaxIterations: 100, Tolerance: 1e-9}
}

// Name implements model.Method.
func (*HubAuthority) Name() string { return "HubAuthority" }

// Infer runs HITS power iteration to convergence.
func (h *HubAuthority) Infer(ds *model.Dataset) (*model.Result, error) {
	c := newCommon(ds)
	auth := make([]float64, ds.NumFacts())
	hub := make([]float64, ds.NumSources())
	for f := range auth {
		auth[f] = 1
	}
	prev := make([]float64, ds.NumFacts())
	for iter := 0; iter < h.MaxIterations; iter++ {
		for s := range hub {
			sum := 0.0
			for _, f := range c.sourceFacts[s] {
				sum += auth[f]
			}
			hub[s] = sum
		}
		normalizeL2(hub)
		copy(prev, auth)
		for f := range auth {
			sum := 0.0
			for _, s := range c.factSources[f] {
				sum += hub[s]
			}
			auth[f] = sum
		}
		normalizeL2(auth)
		if maxAbsDelta(prev, auth) < h.Tolerance {
			break
		}
	}
	res := model.NewResult(h.Name(), ds)
	copy(res.Prob, auth)
	normalizeMax(res.Prob)
	return res, res.Validate()
}

// normalizeL2 scales xs to unit Euclidean norm (no-op on a zero vector).
func normalizeL2(xs []float64) {
	ss := 0.0
	for _, x := range xs {
		ss += x * x
	}
	if ss == 0 {
		return
	}
	inv := 1 / math.Sqrt(ss)
	for i := range xs {
		xs[i] *= inv
	}
}
