package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/wal"
)

// durableConfig returns a manual-refit config persisting under dir.
func durableConfig(policy RefitPolicy, dir string) Config {
	cfg := testConfig(policy)
	cfg.Durability = Durability{DataDir: dir, Fsync: wal.SyncNever}
	return cfg
}

// batchRows builds deterministic, mildly conflicting claim batches: batch
// i asserts attributes for a rotating window of entities from a rotating
// subset of sources.
func batchRows(i int) []model.Row {
	rows := make([]model.Row, 0, 12)
	for j := 0; j < 4; j++ {
		e := fmt.Sprintf("e%02d", (i*3+j)%17)
		for s := 0; s < 3; s++ {
			rows = append(rows, model.Row{
				Entity:    e,
				Attribute: fmt.Sprintf("a%d", (i+j+s)%5),
				Source:    fmt.Sprintf("s%d", (i+s)%4),
			})
		}
	}
	return rows
}

// mustIngest ingests rows or fails the test.
func mustIngest(t *testing.T, s *Server, rows []model.Row) {
	t.Helper()
	if _, err := s.Ingest(rows); err != nil {
		t.Fatalf("ingest: %v", err)
	}
}

// mustRefit forces a refit or fails the test.
func mustRefit(t *testing.T, s *Server) *Snapshot {
	t.Helper()
	sn, err := s.Refit("")
	if err != nil {
		t.Fatalf("refit: %v", err)
	}
	return sn
}

// mustEqualSnapshots asserts two snapshots carry bit-identical model
// state: same sequence, mode, truth probabilities, predictions and source
// quality.
func mustEqualSnapshots(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Seq != want.Seq || got.Mode != want.Mode {
		t.Fatalf("snapshot identity: got (seq=%d, %s), want (seq=%d, %s)",
			got.Seq, got.Mode, want.Seq, want.Mode)
	}
	gr, wr := got.AllTruth(), want.AllTruth()
	if len(gr) != len(wr) {
		t.Fatalf("truth rows: %d, want %d", len(gr), len(wr))
	}
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("truth row %d: %+v, want %+v", i, gr[i], wr[i])
		}
	}
	if len(got.Quality) != len(want.Quality) {
		t.Fatalf("quality rows: %d, want %d", len(got.Quality), len(want.Quality))
	}
	for i := range got.Quality {
		if got.Quality[i] != want.Quality[i] {
			t.Fatalf("quality row %d: %+v, want %+v", i, got.Quality[i], want.Quality[i])
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats: %+v, want %+v", got.Stats, want.Stats)
	}
}

// crash "kills" a durable server without any shutdown path: the test just
// stops using it. Nothing is flushed or closed — exactly the state a
// SIGKILL leaves behind (appends went through write(2), so they are in
// the page cache; Close was never called).
func crash(*Server) {}

func TestDurableColdStartMatchesMemoryServer(t *testing.T) {
	dir := t.TempDir()
	d, err := New(durableConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m, err := New(testConfig(RefitFull))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if !d.RecoveryStats().ColdStart {
		t.Fatalf("expected cold start, got %+v", d.RecoveryStats())
	}
	for i := 0; i < 4; i++ {
		mustIngest(t, d, batchRows(i))
		mustIngest(t, m, batchRows(i))
	}
	mustEqualSnapshots(t, mustRefit(t, d), mustRefit(t, m))

	// The durable server left a WAL segment and a checkpoint behind.
	if segs, err := os.ReadDir(wal.LogDir(dir)); err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (err=%v)", err)
	}
	cps, err := os.ReadDir(wal.CheckpointDir(dir))
	if err != nil || len(cps) == 0 {
		t.Fatalf("no checkpoints (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(wal.CheckpointDir(dir), cps[0].Name(), "MANIFEST.json")); err != nil {
		t.Fatalf("checkpoint manifest missing: %v", err)
	}
}

// TestDurableRestartBitIdentical is the acceptance scenario run fully
// in-process for every policy: ingest, refit, ingest more, crash with the
// second batch acknowledged but uncompacted, restart, refit — and compare
// against an uninterrupted run of the identical schedule.
func TestDurableRestartBitIdentical(t *testing.T) {
	for _, policy := range []RefitPolicy{RefitFull, RefitIncremental, RefitOnline} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()

			// Reference: one uninterrupted server.
			ref, err := New(testConfig(policy))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()

			// Durable run: same schedule with a crash in the middle.
			a, err := New(durableConfig(policy, dir))
			if err != nil {
				t.Fatal(err)
			}
			// Refits 1..3 happen before the crash so the incremental and
			// online policies are past their initial full fit and have real
			// accumulated quality in the checkpoint.
			for r := 0; r < 3; r++ {
				mustIngest(t, a, batchRows(r))
				mustIngest(t, ref, batchRows(r))
				mustRefit(t, a)
				mustRefit(t, ref)
			}
			// Two more acknowledged batches that never see a refit before
			// the crash: they exist only in the WAL tail.
			mustIngest(t, a, batchRows(10))
			mustIngest(t, a, batchRows(11))
			mustIngest(t, ref, batchRows(10))
			mustIngest(t, ref, batchRows(11))
			crash(a)

			b, err := New(durableConfig(policy, dir))
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			rs := b.RecoveryStats()
			if rs.ColdStart || rs.ReplayedBatches != 2 {
				t.Fatalf("recovery stats %+v, want 2 replayed batches", rs)
			}
			if b.Pending() != a.Pending() {
				t.Fatalf("pending after recovery = %d, want %d", b.Pending(), a.Pending())
			}
			if b.Refits() != ref.Refits() {
				t.Fatalf("refit counters after recovery %+v, want %+v", b.Refits(), ref.Refits())
			}

			// The 4th refit folds the replayed tail exactly as the
			// uninterrupted server folds its pending rows.
			mustEqualSnapshots(t, mustRefit(t, b), mustRefit(t, ref))

			// And the runs stay in lockstep afterwards (cadence counters,
			// accumulated quality and sequence numbers all survived).
			mustIngest(t, b, batchRows(20))
			mustIngest(t, ref, batchRows(20))
			mustEqualSnapshots(t, mustRefit(t, b), mustRefit(t, ref))
		})
	}
}

func TestDurableRecoveryAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustIngest(t, a, batchRows(i))
	}
	mustRefit(t, a)
	mustIngest(t, a, batchRows(3))
	mustIngest(t, a, batchRows(4))
	crash(a)

	// Tear the final record: the crash happened mid-write. The active
	// segment is preallocated (zero-padded), so find the end of the real
	// data first and cut into it.
	segs, err := os.ReadDir(wal.LogDir(dir))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err=%v)", err)
	}
	path := filepath.Join(wal.LogDir(dir), segs[len(segs)-1].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	end := len(data)
	for end > 0 && data[end-1] == 0 {
		end--
	}
	if err := os.Truncate(path, int64(end-4)); err != nil {
		t.Fatal(err)
	}

	b, err := New(durableConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rs := b.RecoveryStats()
	if rs.TornBytes == 0 || rs.ReplayedBatches != 1 {
		t.Fatalf("recovery stats %+v, want torn bytes and exactly 1 replayed batch", rs)
	}
	// Batch 3 survived, batch 4 (torn) is gone; the server still refits
	// and serves.
	if b.Pending() != len(batchRows(3)) {
		t.Fatalf("pending = %d, want %d", b.Pending(), len(batchRows(3)))
	}
	mustRefit(t, b)
}

func TestDurableConfigChangeDropsQualityKeepsData(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableConfig(RefitIncremental, dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustIngest(t, a, batchRows(i))
		mustRefit(t, a)
	}
	claims := a.Snapshot().Stats.Claims
	crash(a)

	cfg := durableConfig(RefitIncremental, dir)
	cfg.LTM = core.Config{Iterations: 60, Seed: 9} // different model config
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !b.DurabilityStats().QualityDropped {
		t.Fatal("expected QualityDropped on config change")
	}
	// Triples are config-independent and fully recovered; the next refit
	// must be a full re-anchor (the accumulated quality is gone).
	sn := mustRefit(t, b)
	if sn.Stats.Claims != claims {
		t.Fatalf("claims after config change = %d, want %d", sn.Stats.Claims, claims)
	}
	if sn.Mode != RefitFull {
		t.Fatalf("first refit after quality drop ran %q, want full", sn.Mode)
	}
}

func TestIngestIsAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	bad := []model.Row{
		{Entity: "e1", Attribute: "a", Source: "s"},
		{Entity: "", Attribute: "a", Source: "s"}, // invalid mid-batch
		{Entity: "e2", Attribute: "a", Source: "s"},
	}
	if _, err := s.Ingest(bad); err == nil {
		t.Fatal("expected validation error")
	}
	multiline := []model.Row{{Entity: "e\nvil", Attribute: "a", Source: "s"}}
	if _, err := s.Ingest(multiline); err == nil {
		t.Fatal("expected line-break rejection")
	}
	// Nothing leaked: no pending rows, no lifetime count, no WAL record.
	if s.Pending() != 0 || s.ingest.Total() != 0 {
		t.Fatalf("partial accept: pending=%d total=%d", s.Pending(), s.ingest.Total())
	}
	if st := s.DurabilityStats(); st.WAL.LastSeq != 0 {
		t.Fatalf("rejected batch reached the WAL: %+v", st.WAL)
	}
	// A subsequent valid batch is accepted cleanly.
	mustIngest(t, s, batchRows(0))
	if st := s.DurabilityStats(); st.WAL.LastSeq != 1 {
		t.Fatalf("valid batch did not reach the WAL: %+v", st.WAL)
	}
}

// TestDurableRecoveryProperty drives random batch/refit sequences under
// random policies and asserts recover(checkpoint, walTail) reproduces the
// in-memory state bit-identically for every one of them.
func TestDurableRecoveryProperty(t *testing.T) {
	policies := []RefitPolicy{RefitFull, RefitIncremental, RefitOnline}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		policy := policies[trial%len(policies)]
		t.Run(fmt.Sprintf("trial%d_%s", trial, policy), func(t *testing.T) {
			dir := t.TempDir()
			a, err := New(durableConfig(policy, dir))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New(testConfig(policy))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()

			refits := 0
			for op, nb := 0, 0; op < 14; op++ {
				if rng.Float64() < 0.65 || refits == 0 {
					rows := batchRows(rng.Intn(40))
					if rng.Float64() < 0.2 { // occasional duplicate batch
						rows = append(rows, rows[:rng.Intn(len(rows))+1]...)
					}
					mustIngest(t, a, rows)
					mustIngest(t, ref, rows)
					nb++
				} else if nb > 0 {
					mustRefit(t, a)
					mustRefit(t, ref)
					refits++
				}
			}
			crash(a)

			b, err := New(durableConfig(policy, dir))
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if b.Pending() != a.Pending() {
				t.Fatalf("pending %d, want %d", b.Pending(), a.Pending())
			}
			if b.Refits() != a.Refits() {
				t.Fatalf("counters %+v, want %+v", b.Refits(), a.Refits())
			}
			// One more refit from recovered state vs uninterrupted state
			// must agree to the bit.
			mustEqualSnapshots(t, mustRefit(t, b), mustRefit(t, ref))
		})
	}
}

// TestDurableConcurrentIngest exercises the write-ahead path under
// concurrency (meaningful under -race) and checks the recovered claim
// count matches everything that was acknowledged.
func TestDurableConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := a.Ingest(batchRows(w*perWriter + i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i == perWriter/2 && w == 0 {
					if _, err := a.Refit(""); err != nil {
						t.Errorf("mid-stream refit: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	want := mustRefit(t, a)
	total := a.ingest.Total()
	crash(a)

	b, err := New(durableConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.ingest.Total() != total {
		t.Fatalf("recovered total %d, want %d", b.ingest.Total(), total)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending %d, want 0 (everything was refitted)", b.Pending())
	}
	// No tail to replay: recovery must reproduce the checkpointed claim
	// set exactly, and the next refit re-derives the same truth table.
	sn := mustRefit(t, b)
	if sn.Stats.Claims != want.Stats.Claims || sn.Stats.Facts != want.Stats.Facts {
		t.Fatalf("recovered corpus %+v, want %+v", sn.Stats, want.Stats)
	}
	for i, r := range sn.AllTruth() {
		if r != want.AllTruth()[i] {
			t.Fatalf("truth row %d: %+v, want %+v", i, r, want.AllTruth()[i])
		}
	}
}

func TestDurabilityEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, durableConfig(RefitFull, dir))
	mustIngest(t, s, batchRows(0))
	mustRefit(t, s)

	resp, err := http.Get(ts.URL + "/durability")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Enabled bool   `json:"enabled"`
		Fsync   string `json:"fsync"`
		WAL     struct {
			LastSeq  uint64 `json:"last_seq"`
			Segments int    `json:"segments"`
		} `json:"wal"`
		Checkpoints       int64 `json:"checkpoints"`
		LastCheckpointSeq int64 `json:"last_checkpoint_seq"`
		Recovery          struct {
			ColdStart bool `json:"cold_start"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	// LastSeq is 2: the ingested batch at seq 1 plus the refit's marker
	// control record at seq 2 (the drain cut replication followers replay).
	if !body.Enabled || body.Fsync != "never" || body.WAL.LastSeq != 2 ||
		body.WAL.Segments != 1 || body.Checkpoints != 1 ||
		body.LastCheckpointSeq != 1 || !body.Recovery.ColdStart {
		t.Fatalf("durability payload %+v", body)
	}

	// Memory-only servers report disabled.
	_, mts := newTestServer(t, testConfig(RefitFull))
	resp2, err := http.Get(mts.URL + "/durability")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var mem struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&mem); err != nil {
		t.Fatal(err)
	}
	if mem.Enabled {
		t.Fatal("memory-only server reports durability enabled")
	}
}

func TestNewRejectsBadFsyncPolicy(t *testing.T) {
	cfg := testConfig(RefitFull)
	cfg.Durability = Durability{DataDir: t.TempDir(), Fsync: "sometimes"}
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for bogus fsync policy")
	}
}
