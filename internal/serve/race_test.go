package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
)

// TestServerConcurrentReadsDuringRefits is the serving layer's core
// guarantee under stress: with writers continuously POSTing claims and a
// goroutine forcing refits (exercising both the full Gibbs path and the
// stream.Online fast paths), concurrent GET /truth readers must never
// block on a refit and never observe a torn snapshot — every response's
// fact count, row count and sequence number must be mutually consistent,
// and sequence numbers must never go backwards for a reader.
//
// Run under -race (CI does) to also check the memory-model side of the
// atomic snapshot swap.
func TestServerConcurrentReadsDuringRefits(t *testing.T) {
	c := testCorpus(t, 7)
	s, err := New(Config{
		LTM:           core.Config{Iterations: 25, Seed: 1},
		Policy:        RefitIncremental,
		FullEvery:     2, // alternate full and incremental under stress
		RefitInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Seed the server so readers always have a snapshot to hit.
	if _, err := s.Ingest(positiveRows(c.Dataset)); err != nil {
		t.Fatal(err)
	}
	first, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	probe := first.Dataset.Entities[0] // known entity, present in every later snapshot

	ts := newHTTPServer(t, s)

	const (
		writers        = 3
		batchesPerW    = 20
		rowsPerBatch   = 6
		readers        = 4
		readsPerReader = 120
		forcedRefits   = 12
	)

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers+1)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Writers: continuous POST /claims traffic on fresh entities.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPerW; b++ {
				rows := make([]model.Row, rowsPerBatch)
				for i := range rows {
					rows[i] = model.Row{
						Entity:    fmt.Sprintf("stress-e%d-%d", w, b/2),
						Attribute: fmt.Sprintf("v%d", i),
						Source:    fmt.Sprintf("stress-s%d", (w+i)%4),
					}
				}
				resp := postClaims(t, ts, rows)
				if resp.StatusCode != http.StatusAccepted {
					fail("writer %d: status %d", w, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}

	// Refitter: forced refits racing the readers and writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < forcedRefits; i++ {
			resp, err := http.Post(ts+"/refit", "", nil)
			if err != nil {
				fail("refit %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				fail("refit %d: status %d", i, resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()

	// Readers: every response must be internally consistent and seq must
	// be monotone per reader.
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastSeq int64
			for i := 0; i < readsPerReader; i++ {
				var truth struct {
					Seq   int64      `json:"seq"`
					Facts int        `json:"facts"`
					Rows  []TruthRow `json:"rows"`
				}
				url := ts + "/truth"
				if i%3 == 1 {
					url += "?entity=" + urlQuery(probe)
				}
				resp, err := http.Get(url)
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail("reader %d: status %d (a complete snapshot must always be served)", r, resp.StatusCode)
					resp.Body.Close()
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&truth); err != nil {
					fail("reader %d: decode: %v", r, err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				if truth.Seq < lastSeq {
					fail("reader %d: seq went backwards: %d after %d", r, truth.Seq, lastSeq)
					return
				}
				lastSeq = truth.Seq
				if truth.Facts != len(truth.Rows) || truth.Facts == 0 {
					fail("reader %d: torn read: facts=%d rows=%d seq=%d", r, truth.Facts, len(truth.Rows), truth.Seq)
					return
				}
				for _, row := range truth.Rows {
					if row.Entity == "" || row.Attribute == "" || row.Probability < 0 || row.Probability > 1 {
						fail("reader %d: corrupt row %+v at seq %d", r, row, truth.Seq)
						return
					}
				}
				reads.Add(1)
			}
		}(r)
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if reads.Load() != int64(readers*readsPerReader) {
		t.Fatalf("only %d/%d reads completed", reads.Load(), readers*readsPerReader)
	}

	// Everything the writers sent is either still pending or compacted;
	// one final refit folds the rest in and the snapshot stays complete.
	sn, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshotComplete(t, sn)
	for w := 0; w < writers; w++ {
		if _, err := sn.EntityTruth(fmt.Sprintf("stress-e%d-0", w)); err != nil {
			t.Fatalf("writer %d's entities never became visible: %v", w, err)
		}
	}
}

// TestSnapshotSwapInProcess hammers the atomic snapshot swap without HTTP
// in the way: in-process readers validate complete snapshots while refits
// run, which under -race directly checks the publication ordering of every
// field reachable from the snapshot pointer.
func TestSnapshotSwapInProcess(t *testing.T) {
	c := testCorpus(t, 8)
	s, err := New(Config{
		LTM:           core.Config{Iterations: 20, Seed: 2},
		Policy:        RefitOnline,
		FullEvery:     3,
		RefitInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(positiveRows(c.Dataset)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refit(""); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				if sn == nil {
					continue
				}
				if sn.Seq < lastSeq {
					errs <- fmt.Errorf("seq went backwards: %d after %d", sn.Seq, lastSeq)
					return
				}
				lastSeq = sn.Seq
				if len(sn.Result.Prob) != sn.Dataset.NumFacts() ||
					len(sn.Records) != sn.Dataset.NumEntities() ||
					len(sn.factByName) != sn.Dataset.NumFacts() {
					errs <- fmt.Errorf("torn snapshot at seq %d", sn.Seq)
					return
				}
			}
		}()
	}

	for i := 0; i < 8; i++ {
		rows := make([]model.Row, 5)
		for j := range rows {
			rows[j] = model.Row{
				Entity:    fmt.Sprintf("swap-e%d", i),
				Attribute: fmt.Sprintf("a%d", j),
				Source:    fmt.Sprintf("s%d", j%3),
			}
		}
		if _, err := s.Ingest(rows); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Refit(""); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// newHTTPServer starts an httptest server for s and returns its base URL.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
