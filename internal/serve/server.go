package serve

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/obs"
	"latenttruth/internal/store"
	"latenttruth/internal/stream"
)

// RefitPolicy selects how the background refit turns accumulated claims
// into a new snapshot.
type RefitPolicy string

const (
	// RefitFull runs the full collapsed Gibbs engine over the cumulative
	// dataset on every refit — the most accurate and most expensive policy.
	RefitFull RefitPolicy = "full"
	// RefitIncremental serves the closed-form LTMinc posterior (Equation 3)
	// over the cumulative dataset from the accumulated source quality — no
	// sampling at all — and re-anchors with a full fit every FullEvery
	// refits (§5.4's "quality remains relatively unchanged" fast path).
	RefitIncremental RefitPolicy = "incremental"
	// RefitOnline additionally Gibbs-fits each newly arrived batch with the
	// accumulated per-source quality priors (stream.Online.Step, §5.4's full
	// incremental learning) before serving the LTMinc posterior, so source
	// quality keeps learning from new claims between full refits.
	RefitOnline RefitPolicy = "online"
	// RefitDirty re-sweeps only the entities touched since the last refit:
	// the cumulative dataset is extended in place (store.ExtendDirty), just
	// the dirty-entity sub-dataset is re-fit against the accumulated
	// per-source counts (stream.Online.StepDirty), and clean entities keep
	// their posterior rows from the previous snapshot. Refit cost scales
	// with the dirty set, not the corpus; FullEvery full refits remain the
	// drift backstop.
	RefitDirty RefitPolicy = "dirty"
)

// valid reports whether p names a known policy.
func (p RefitPolicy) valid() bool {
	switch p {
	case RefitFull, RefitIncremental, RefitOnline, RefitDirty:
		return true
	}
	return false
}

// Config parameterizes a truth-serving daemon.
type Config struct {
	// LTM is the base fit configuration; zero-valued fields take the
	// paper's defaults (priors are sized to the first fitted dataset).
	LTM core.Config
	// Threshold is the integration threshold truth tables are cut at
	// (default 0.5).
	Threshold float64
	// Policy selects the refit strategy (default RefitFull).
	Policy RefitPolicy
	// FullEvery forces a full engine refit every n-th refit under the
	// incremental, online and dirty policies (default 10; the first refit
	// is always full). Ignored under RefitFull.
	FullEvery int
	// RefitInterval is the background refit period (default 2s). Zero or
	// negative disables the timer; refits then only happen via Refit (the
	// POST /refit endpoint).
	RefitInterval time.Duration
	// MinBatch is the number of pending mutations required before a timed
	// refit fires (default 1: any pending claim triggers a refit). Forced
	// refits ignore it.
	MinBatch int
	// Shards, when > 1, runs every full refit through the entity-sharded
	// fitter (internal/shard): the cumulative dataset is partitioned by
	// entity and swept concurrently, with per-source counts reconciled
	// every SyncEvery sweeps. 0 or 1 keeps the single-engine refit.
	Shards int
	// SyncEvery is the shard count-reconciliation interval in sweeps:
	// 1 forces the exact (bit-identical, sequential) barrier mode, 0 the
	// shard package's default. Ignored unless Shards > 1.
	SyncEvery int
	// Durability, when DataDir is set, makes the server crash-safe: every
	// accepted batch is written ahead to a segmented WAL before it is
	// acknowledged, every published snapshot is checkpointed, and startup
	// recovers the exact pre-crash state (checkpoint + WAL tail replay).
	Durability Durability
	// Storage selects the claim-store backend: store.StorageMemory (the
	// default) keeps the corpus purely heap-resident and checkpoints it as
	// CSV; store.StorageSegments additionally seals ingested rows into
	// immutable on-disk segments at checkpoint time — checkpoints then
	// cost O(new rows), recovery reopens segments instead of re-parsing
	// CSV, and entity/source-scoped scans skip segments via zone maps and
	// bloom filters. Segments require Durability.DataDir and are not yet
	// supported on replication primaries' checkpoint bootstrap (followers
	// of a segment primary cannot cold-bootstrap) or on followers.
	// Backends are bit-identical: every query answer is the same under
	// either kind.
	Storage string
	// Replication tunes the primary side of WAL log shipping (the
	// /replication/checkpoint and /replication/wal endpoints a durable
	// server always exposes). Zero values take defaults.
	Replication Replication
	// FollowerOf, when non-empty, is the primary's base URL and puts the
	// server in read-only follower mode: Ingest and Refit are rejected
	// (clients are pointed at the primary), batches and refit markers
	// arrive through ApplyReplicated instead, and the background refit
	// timer stays off — the refit schedule is the primary's, replayed.
	// Requires Durability: the replicated log is what makes a follower
	// restart resume instead of re-bootstrapping.
	FollowerOf string
	// Logger receives refit-loop diagnostics; nil discards them.
	Logger *log.Logger
	// Obs tunes observability: metric collection, slow-request logging
	// and the log level. The zero value is fully instrumented.
	Obs ObsConfig
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.Policy == "" {
		c.Policy = RefitFull
	}
	if c.FullEvery == 0 {
		c.FullEvery = 10
	}
	if c.RefitInterval == 0 {
		c.RefitInterval = 2 * time.Second
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 1
	}
	if c.Storage == "" {
		c.Storage = store.StorageMemory
	}
	return c
}

// Server is the truth-serving daemon state. Readers load the current
// snapshot with a single atomic pointer read and never take locks; writers
// append to the mutation log; the refit path is serialized by mu and
// publishes complete snapshots only.
type Server struct {
	cfg Config

	// snap is the atomically swapped serving state; nil until first refit.
	snap atomic.Pointer[Snapshot]
	// ingest is the mutation log of arrived-but-uncompacted triples.
	ingest *ingestLog

	// mu serializes refits and guards db, online and the refit counters.
	mu sync.Mutex
	// db is the cumulative claim store every snapshot is compacted from,
	// behind the storage API: heap-resident rows either way, plus sealed
	// on-disk segments under the segments kind. Appends happen under mu;
	// db.Reader() and db.Stats() are lock-free for queries and scrapes.
	db store.Backend
	// online carries accumulated source quality across refits (§5.4). It is
	// created lazily at the first refit so default priors can be sized to
	// the data actually seen; stream.Online is not concurrency-safe, so all
	// access happens under mu.
	online *stream.Online
	// refits counts completed refits; fullRefits the full-engine subset and
	// dirtyRefits the dirty-fast-path subset.
	// Written under mu, read atomically so /stats never waits on a refit.
	refits      atomic.Int64
	fullRefits  atomic.Int64
	dirtyRefits atomic.Int64
	// carry holds the unpublished remainder of a refit attempt that failed
	// after its drain: the rows are already folded into db (and, on a
	// durable primary, the refit marker is already in the WAL), so the next
	// refit must publish them — without a second marker — before draining
	// anything new. Guarded by mu.
	carry refitCarry
	// testFitErr, when non-nil, is consulted once per fit attempt; a
	// non-nil return aborts the refit after the drain. Test-only injection
	// point for the carry/orphan-marker paths.
	testFitErr func() error
	// encodeFailures counts responses whose JSON encoding or socket write
	// failed mid-body; surfaced in /stats so truncated responses are
	// observable instead of silently dropped.
	encodeFailures atomic.Int64

	// dur is the durability runtime (WAL + checkpoint store); nil when the
	// server is memory-only. walSeqCompacted / totalCompacted are the
	// newest WAL sequence number and lifetime row total ever drained into
	// db — the watermark the next checkpoint covers. Written under mu;
	// walSeqCompacted is atomic so NextReplicationSeq (and through it a
	// follower's /replication/status) is never blocked by an in-flight
	// refit — same discipline as the refit counters.
	dur             *durable
	walSeqCompacted atomic.Uint64
	totalCompacted  int64

	// walNotify wakes /replication/wal long-polls after every accepted
	// batch; repl tracks connected follower cursors (nil unless durable).
	walNotify *notifier
	repl      *replTracker

	// reg is the metric registry GET /metrics serves; logger the leveled
	// logger every diagnostic routes through; met the instrument set (nil
	// when ObsConfig.Disabled) and httpMW the request middleware (ditto).
	reg    *obs.Registry
	logger *obs.Logger
	met    *serveMetrics
	httpMW *obs.HTTPMetrics

	started time.Time

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New returns a server with the given configuration. Call Start to run the
// background refit loop, Handler for the HTTP API, and Close to shut down.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if !cfg.Policy.valid() {
		return nil, fmt.Errorf("serve: unknown refit policy %q", cfg.Policy)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("serve: threshold %v outside [0,1]", cfg.Threshold)
	}
	if cfg.FullEvery < 0 {
		return nil, fmt.Errorf("serve: FullEvery = %d must be non-negative", cfg.FullEvery)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("serve: Shards = %d must be non-negative", cfg.Shards)
	}
	if cfg.SyncEvery < 0 {
		return nil, fmt.Errorf("serve: SyncEvery = %d must be non-negative", cfg.SyncEvery)
	}
	if f := cfg.Durability.Fsync; f != "" && !f.Valid() {
		return nil, fmt.Errorf("serve: unknown fsync policy %q", f)
	}
	if cfg.FollowerOf != "" && !cfg.Durability.Enabled() {
		return nil, fmt.Errorf("serve: follower mode requires Durability.DataDir (the replicated log is the restart state)")
	}
	switch cfg.Storage {
	case store.StorageMemory:
	case store.StorageSegments:
		if !cfg.Durability.Enabled() {
			return nil, fmt.Errorf("serve: storage %q requires Durability.DataDir (segments live beside the WAL)", cfg.Storage)
		}
		if cfg.FollowerOf != "" {
			return nil, fmt.Errorf("serve: storage %q is not supported in follower mode (bootstrap ships CSV checkpoints)", cfg.Storage)
		}
	default:
		return nil, fmt.Errorf("serve: unknown storage kind %q (want %q or %q)",
			cfg.Storage, store.StorageMemory, store.StorageSegments)
	}
	s := &Server{
		cfg:       cfg,
		ingest:    &ingestLog{},
		db:        store.NewMemory(),
		started:   time.Now(),
		stop:      make(chan struct{}),
		walNotify: newNotifier(),
	}
	s.ingest.notify = s.walNotify.Wake
	s.initObs()
	if cfg.Durability.Enabled() {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// logf logs at info through the configured logger, if any. warnf and
// errorf are the leveled variants the degraded-but-serving and failure
// sites use; all three keep message text identical to the pre-leveled
// output, a level only changes what -log-level can silence.
func (s *Server) logf(format string, args ...any) {
	s.logger.Infof(format, args...)
}

func (s *Server) warnf(format string, args ...any) {
	s.logger.Warnf(format, args...)
}

func (s *Server) errorf(format string, args ...any) {
	s.logger.Errorf(format, args...)
}

// Ingest appends a batch of triples to the mutation log. The batch is
// validated as a unit and accepted all-or-nothing; when the server is
// durable it is written ahead to the WAL before Ingest returns, so an
// acknowledged batch survives a crash. It becomes visible to queries after
// the next refit.
func (s *Server) Ingest(rows []model.Row) (int, error) {
	select {
	case <-s.stop:
		return 0, fmt.Errorf("serve: server is shut down")
	default:
	}
	if s.cfg.FollowerOf != "" {
		return 0, ErrFollower
	}
	n, err := s.ingest.Append(rows)
	s.met.ingested(n, err)
	return n, err
}

// Snapshot returns the current serving snapshot, or nil before the first
// successful refit. The returned snapshot is immutable and remains valid
// (and consistent) regardless of concurrent refits.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Pending returns the number of mutations awaiting compaction.
func (s *Server) Pending() int { return s.ingest.Len() }

// Start launches the background refit loop. It is a no-op when
// RefitInterval is disabled and on a follower, whose refits are driven by
// the primary's replicated markers.
func (s *Server) Start() {
	if s.cfg.RefitInterval <= 0 || s.cfg.FollowerOf != "" {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.cfg.RefitInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				if s.ingest.Len() < s.cfg.MinBatch && s.Snapshot() != nil {
					continue
				}
				if _, err := s.Refit(""); err != nil && err != ErrNoData {
					s.errorf("serve: background refit: %v", err)
				}
			}
		}
	}()
}

// Close stops the background refit loop, syncs and closes the WAL (when
// durable), and rejects further ingestion. Queries against the last
// published snapshot keep working.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.dur != nil {
		// Let any in-flight forced refit finish before closing the log.
		s.mu.Lock()
		if err := s.dur.log.Close(); err != nil {
			s.errorf("serve: closing WAL: %v", err)
		}
		s.mu.Unlock()
	}
}
