package serve

import (
	"fmt"
	"strings"
	"sync"

	"latenttruth/internal/model"
	"latenttruth/internal/wal"
)

// ingestLog is the server's mutation log: arriving triples are appended
// here by request handlers and drained by the refit loop, which compacts
// them into the next snapshot's cumulative dataset. When the server is
// durable, the append is write-ahead: the batch is framed into the WAL —
// and on disk, per the configured fsync policy — before it becomes visible
// in memory, so a batch is never acknowledged that a restart would lose.
type ingestLog struct {
	mu      sync.Mutex
	pending []model.Row
	// log, when non-nil, receives every batch before it is accepted.
	log *wal.Log
	// lastSeq is the WAL sequence number of the newest accepted batch
	// (0 when not durable or nothing accepted yet).
	lastSeq uint64
	// total counts rows accepted over the server's lifetime (restored
	// across restarts from the checkpoint manifest plus the replayed tail).
	total int64
}

// validateRow rejects triples that the data model cannot represent.
// Carriage returns and newlines are rejected because checkpoint files are
// CSV and Go's CSV reader normalizes \r\n inside quoted fields — allowing
// them would break the bit-exact recovery guarantee.
func validateRow(r model.Row) error {
	if r.Entity == "" || r.Attribute == "" || r.Source == "" {
		return fmt.Errorf("serve: claim (%q, %q, %q) has an empty component",
			r.Entity, r.Attribute, r.Source)
	}
	for _, s := range [3]string{r.Entity, r.Attribute, r.Source} {
		if strings.ContainsAny(s, "\r\n") {
			return fmt.Errorf("serve: claim (%q, %q, %q) contains a line break",
				r.Entity, r.Attribute, r.Source)
		}
	}
	return nil
}

// badBatchError marks a client-side validation failure: the request was
// malformed, not the server. The HTTP layer maps it to 400 where every
// other ingest failure (WAL I/O, shutdown) is a retryable 503.
type badBatchError struct{ err error }

func (e badBatchError) Error() string { return e.err.Error() }
func (e badBatchError) Unwrap() error { return e.err }

// Append validates and appends rows, returning the number accepted.
//
// The batch is all-or-nothing: every row is validated before anything is
// appended, and a durable append that fails leaves no trace in memory
// either — the caller sees an error if and only if no row of the batch was
// accepted, so a retry can never double-apply a prefix. (Exactly-once WAL
// replay depends on this: a batch is on disk iff it was acknowledged.)
func (l *ingestLog) Append(rows []model.Row) (int, error) {
	for i, r := range rows {
		if err := validateRow(r); err != nil {
			return 0, badBatchError{fmt.Errorf("claim %d: %w", i, err)}
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log != nil {
		// Under l.mu, so WAL order and in-memory order are identical.
		seq, err := l.log.Append(rows)
		if err != nil {
			return 0, err
		}
		l.lastSeq = seq
	}
	l.pending = append(l.pending, rows...)
	l.total += int64(len(rows))
	return len(rows), nil
}

// replay re-applies a recovered WAL batch without re-logging it. Called
// only during startup recovery, before the server is reachable.
func (l *ingestLog) replay(b wal.Batch) {
	l.mu.Lock()
	l.pending = append(l.pending, b.Rows...)
	l.lastSeq = b.Seq
	l.total += int64(len(b.Rows))
	l.mu.Unlock()
}

// restoreTotal seeds the lifetime row counter from a checkpoint manifest.
func (l *ingestLog) restoreTotal(total int64) {
	l.mu.Lock()
	l.total = total
	l.mu.Unlock()
}

// drainResult is a consistent cut of the log: the drained rows, the WAL
// sequence number of the newest drained batch, and the lifetime total at
// the instant of the cut. Refits persist lastSeq/total into the checkpoint
// manifest so recovery replays exactly the batches after the cut.
type drainResult struct {
	rows    []model.Row
	lastSeq uint64
	total   int64
}

// Drain removes and returns all pending rows with their WAL watermark.
func (l *ingestLog) Drain() drainResult {
	l.mu.Lock()
	dr := drainResult{rows: l.pending, lastSeq: l.lastSeq, total: l.total}
	l.pending = nil
	l.mu.Unlock()
	return dr
}

// Len returns the number of pending rows.
func (l *ingestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Total returns the lifetime number of accepted rows.
func (l *ingestLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
