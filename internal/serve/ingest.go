package serve

import (
	"fmt"
	"sync"

	"latenttruth/internal/model"
)

// ingestLog is the server's mutation log: arriving triples are appended
// here by request handlers and drained by the refit loop, which compacts
// them into the next snapshot's cumulative dataset. Appends never touch the
// dataset, so ingestion stays cheap and lock contention is limited to a
// slice append.
type ingestLog struct {
	mu      sync.Mutex
	pending []model.Row
	// total counts rows accepted over the server's lifetime.
	total int64
}

// validateRow rejects triples that the data model cannot represent.
func validateRow(r model.Row) error {
	if r.Entity == "" || r.Attribute == "" || r.Source == "" {
		return fmt.Errorf("serve: claim (%q, %q, %q) has an empty component",
			r.Entity, r.Attribute, r.Source)
	}
	return nil
}

// Append validates and appends rows, returning the number accepted. The
// batch is all-or-nothing: the first invalid row rejects the whole request
// so callers can retry without partial state.
func (l *ingestLog) Append(rows []model.Row) (int, error) {
	for i, r := range rows {
		if err := validateRow(r); err != nil {
			return 0, fmt.Errorf("claim %d: %w", i, err)
		}
	}
	l.mu.Lock()
	l.pending = append(l.pending, rows...)
	l.total += int64(len(rows))
	n := len(rows)
	l.mu.Unlock()
	return n, nil
}

// Drain removes and returns all pending rows.
func (l *ingestLog) Drain() []model.Row {
	l.mu.Lock()
	rows := l.pending
	l.pending = nil
	l.mu.Unlock()
	return rows
}

// Len returns the number of pending rows.
func (l *ingestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Total returns the lifetime number of accepted rows.
func (l *ingestLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
