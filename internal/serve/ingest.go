package serve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"latenttruth/internal/model"
	"latenttruth/internal/wal"
)

// ingestLog is the server's mutation log: arriving triples are appended
// here by request handlers and drained by the refit loop, which compacts
// them into the next snapshot's cumulative dataset. When the server is
// durable, the append is write-ahead: the batch is framed into the WAL —
// and on disk, per the configured fsync policy — before it becomes visible
// in memory, so a batch is never acknowledged that a restart would lose.
type ingestLog struct {
	mu      sync.Mutex
	pending []model.Row
	// log, when non-nil, receives every batch before it is accepted.
	log *wal.Log
	// lastSeq is the WAL sequence number of the newest accepted batch
	// (0 when not durable or nothing accepted yet).
	lastSeq uint64
	// total counts rows accepted over the server's lifetime (restored
	// across restarts from the checkpoint manifest plus the replayed tail).
	total int64
	// dirty is the set of entities touched by pending rows — the §5.4
	// dirty-entity watermark the next refit's fast path re-sweeps. It is
	// tracked on every accept path (primary, replicated, replay) so a
	// follower or recovered process derives the same set the primary did.
	dirty map[string]struct{}
	// oldest is the arrival time of the oldest pending row (zero when
	// nothing is pending); snapshot freshness is measured from it.
	oldest time.Time
	// notify, when non-nil, is invoked after every accepted append so
	// replication long-polls wake without polling delay.
	notify func()
}

// markDirty records rows' entities in the dirty set and stamps the
// oldest-pending clock. Called under mu on every accept path.
func (l *ingestLog) markDirty(rows []model.Row) {
	if len(rows) == 0 {
		return
	}
	if l.dirty == nil {
		l.dirty = make(map[string]struct{})
	}
	for _, r := range rows {
		l.dirty[r.Entity] = struct{}{}
	}
	if l.oldest.IsZero() {
		l.oldest = time.Now()
	}
}

// validateRow rejects triples that the data model cannot represent.
// Carriage returns and newlines are rejected because checkpoint files are
// CSV and Go's CSV reader normalizes \r\n inside quoted fields — allowing
// them would break the bit-exact recovery guarantee.
func validateRow(r model.Row) error { return ValidateRow(r) }

// ValidateRow rejects triples that the serving data model cannot
// represent: empty components, and carriage returns or newlines (which
// would break CSV checkpoint round-trips). It is exported so a cluster
// router can pre-validate a batch before splitting it across partitions —
// rejecting the whole batch up front preserves the all-or-nothing ingest
// contract across a fan-out.
func ValidateRow(r model.Row) error {
	if r.Entity == "" || r.Attribute == "" || r.Source == "" {
		return fmt.Errorf("serve: claim (%q, %q, %q) has an empty component",
			r.Entity, r.Attribute, r.Source)
	}
	for _, s := range [3]string{r.Entity, r.Attribute, r.Source} {
		if strings.ContainsAny(s, "\r\n") {
			return fmt.Errorf("serve: claim (%q, %q, %q) contains a line break",
				r.Entity, r.Attribute, r.Source)
		}
	}
	return nil
}

// badBatchError marks a client-side validation failure: the request was
// malformed, not the server. The HTTP layer maps it to 400 where every
// other ingest failure (WAL I/O, shutdown) is a retryable 503.
type badBatchError struct{ err error }

func (e badBatchError) Error() string { return e.err.Error() }
func (e badBatchError) Unwrap() error { return e.err }

// Append validates and appends rows, returning the number accepted.
//
// The batch is all-or-nothing: every row is validated before anything is
// appended, and a durable append that fails leaves no trace in memory
// either — the caller sees an error if and only if no row of the batch was
// accepted, so a retry can never double-apply a prefix. (Exactly-once WAL
// replay depends on this: a batch is on disk iff it was acknowledged.)
func (l *ingestLog) Append(rows []model.Row) (int, error) {
	for i, r := range rows {
		if err := validateRow(r); err != nil {
			return 0, badBatchError{fmt.Errorf("claim %d: %w", i, err)}
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log != nil {
		// Under l.mu, so WAL order and in-memory order are identical.
		seq, err := l.log.Append(rows)
		if err != nil {
			return 0, err
		}
		l.lastSeq = seq
	}
	l.pending = append(l.pending, rows...)
	l.markDirty(rows)
	l.total += int64(len(rows))
	if l.notify != nil {
		l.notify()
	}
	return len(rows), nil
}

// appendReplicated mirrors one primary log record into a follower: the
// batch lands in the follower's own WAL under the primary's sequence
// number (so a restart resumes, and cascaded followers replicate, from
// local disk), then in the pending log. Control records advance the
// watermark without contributing rows.
func (l *ingestLog) appendReplicated(b wal.Batch) error {
	for i, r := range b.Rows {
		if err := validateRow(r); err != nil {
			return fmt.Errorf("serve: replicated claim %d: %w", i, err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return fmt.Errorf("serve: replication requires a durable follower")
	}
	if err := l.log.AppendBatch(b); err != nil {
		return err
	}
	l.lastSeq = b.Seq
	l.pending = append(l.pending, b.Rows...)
	l.markDirty(b.Rows)
	l.total += int64(len(b.Rows))
	if l.notify != nil {
		l.notify()
	}
	return nil
}

// replay re-applies a recovered WAL batch without re-logging it. Called
// only during startup recovery, before the server is reachable.
func (l *ingestLog) replay(b wal.Batch) {
	l.mu.Lock()
	l.pending = append(l.pending, b.Rows...)
	l.markDirty(b.Rows)
	l.lastSeq = b.Seq
	l.total += int64(len(b.Rows))
	l.mu.Unlock()
}

// LastSeq returns the WAL sequence number of the newest accepted batch.
func (l *ingestLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// restoreTotal seeds the lifetime row counter from a checkpoint manifest.
func (l *ingestLog) restoreTotal(total int64) {
	l.mu.Lock()
	l.total = total
	l.mu.Unlock()
}

// drainResult is a consistent cut of the log: the drained rows, the
// entities they touched, the arrival time of the oldest drained row, the
// WAL sequence number of the newest drained batch, and the lifetime total
// at the instant of the cut. Refits persist lastSeq/total into the
// checkpoint manifest so recovery replays exactly the batches after the
// cut; the dirty set and oldest stamp drive the dirty fast path and the
// freshness metric.
type drainResult struct {
	rows    []model.Row
	dirty   map[string]struct{}
	oldest  time.Time
	lastSeq uint64
	total   int64
}

// cut captures and resets the drainable state. Called under mu.
func (l *ingestLog) cut() drainResult {
	dr := drainResult{rows: l.pending, dirty: l.dirty, oldest: l.oldest,
		lastSeq: l.lastSeq, total: l.total}
	l.pending = nil
	l.dirty = nil
	l.oldest = time.Time{}
	return dr
}

// Drain removes and returns all pending rows with their WAL watermark.
func (l *ingestLog) Drain() drainResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cut()
}

// DrainMark drains like Drain and, in the same critical section, appends a
// refit-marker control record to the WAL, with the note built from the
// dirty-entity count at the cut (the watermark followers check their own
// derived set against). The marker sits exactly at the drain cut, so a
// replication follower replaying the log refits over precisely the rows
// this refit drained — the mechanism that makes follower snapshots
// bit-identical to the primary's. A marker append failure is returned
// alongside the (still valid) drain: the refit proceeds, followers just
// wait for the next successful marker.
func (l *ingestLog) DrainMark(note func(dirtyEntities int) string) (drainResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.log != nil {
		var seq uint64
		if seq, err = l.log.AppendNote(note(len(l.dirty))); err == nil {
			l.lastSeq = seq
			if l.notify != nil {
				l.notify()
			}
		}
	}
	return l.cut(), err
}

// DirtyLen returns the number of distinct entities pending rows touch.
func (l *ingestLog) DirtyLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.dirty)
}

// Len returns the number of pending rows.
func (l *ingestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// Total returns the lifetime number of accepted rows.
func (l *ingestLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
