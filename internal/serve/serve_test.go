package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/store"
	"latenttruth/internal/synth"
)

// testCorpus generates a small conflicting corpus cheap enough to Gibbs-fit
// many times per test.
func testCorpus(t *testing.T, seed int64) *synth.Corpus {
	t.Helper()
	c, err := synth.Generate(synth.CorpusSpec{
		Name: "servetest", NumEntities: 60,
		TrueAttrWeights:  []float64{0.6, 0.3, 0.1},
		FalseCandWeights: []float64{0.5, 0.4, 0.1},
		LabelEntities:    10,
		Seed:             seed,
		Sources: []synth.SourceProfile{
			{Name: "good", Coverage: 0.9, Sensitivity: 0.95, FPR: 0.02},
			{Name: "lazy", Coverage: 0.8, Sensitivity: 0.5, FPR: 0.02},
			{Name: "messy", Coverage: 0.8, Sensitivity: 0.85, FPR: 0.35},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// positiveRows extracts the raw (entity, attribute, source) triples of a
// dataset's positive claims — the wire form a client would POST.
func positiveRows(ds *model.Dataset) []model.Row {
	var rows []model.Row
	for _, c := range ds.Claims {
		if !c.Observation {
			continue
		}
		f := ds.Facts[c.Fact]
		rows = append(rows, model.Row{
			Entity:    ds.Entities[f.Entity],
			Attribute: f.Attribute,
			Source:    ds.Sources[c.Source],
		})
	}
	return rows
}

// testConfig returns a manual-refit config with a fast sampler.
func testConfig(policy RefitPolicy) Config {
	return Config{
		LTM:           core.Config{Iterations: 40, Seed: 1},
		Policy:        policy,
		FullEvery:     3,
		RefitInterval: -1, // manual refits only
	}
}

// newTestServer builds a server plus its HTTP front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postClaims POSTs rows as a JSON envelope and returns the response.
func postClaims(t *testing.T, url string, rows []model.Row) *http.Response {
	t.Helper()
	type claim struct{ Entity, Attribute, Source string }
	claims := make([]map[string]string, len(rows))
	for i, r := range rows {
		claims[i] = map[string]string{"entity": r.Entity, "attribute": r.Attribute, "source": r.Source}
	}
	body, err := json.Marshal(map[string]any{"claims": claims})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/claims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeJSON decodes and closes a response body.
func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// wantStatus fails unless the response has the given code.
func wantStatus(t *testing.T, resp *http.Response, code int) {
	t.Helper()
	if resp.StatusCode != code {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, code, body)
	}
}

func TestServerEndToEnd(t *testing.T) {
	c := testCorpus(t, 1)
	s, ts := newTestServer(t, testConfig(RefitFull))

	// Before any data: reads are 503, healthz reports not ready.
	resp, err := http.Get(ts.URL + "/truth")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusServiceUnavailable)
	resp.Body.Close()

	var health struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &health)
	if health.Status != "ok" || health.Ready {
		t.Fatalf("healthz before data = %+v", health)
	}

	// Refit with nothing ingested is a conflict.
	resp, err = http.Post(ts.URL+"/refit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()

	// Ingest the corpus and force the first refit.
	rows := positiveRows(c.Dataset)
	resp = postClaims(t, ts.URL, rows)
	wantStatus(t, resp, http.StatusAccepted)
	var ing struct {
		Accepted int   `json:"accepted"`
		Pending  int   `json:"pending"`
		Total    int64 `json:"total"`
	}
	decodeJSON(t, resp, &ing)
	if ing.Accepted != len(rows) || ing.Pending < len(rows) {
		t.Fatalf("ingest response %+v for %d rows", ing, len(rows))
	}

	var refit struct {
		Seq   int64       `json:"seq"`
		Mode  RefitPolicy `json:"mode"`
		Facts int         `json:"facts"`
	}
	resp, err = http.Post(ts.URL+"/refit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &refit)
	if refit.Seq != 1 || refit.Mode != RefitFull || refit.Facts == 0 {
		t.Fatalf("first refit = %+v", refit)
	}

	// The served truth table is complete and self-consistent.
	var truth struct {
		Seq   int64      `json:"seq"`
		Facts int        `json:"facts"`
		Rows  []TruthRow `json:"rows"`
	}
	resp, err = http.Get(ts.URL + "/truth")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &truth)
	if truth.Seq != 1 || truth.Facts != len(truth.Rows) || truth.Facts == 0 {
		t.Fatalf("truth: seq=%d facts=%d rows=%d", truth.Seq, truth.Facts, len(truth.Rows))
	}
	sn := s.Snapshot()
	if truth.Facts != sn.Dataset.NumFacts() {
		t.Fatalf("served %d facts, snapshot has %d", truth.Facts, sn.Dataset.NumFacts())
	}
	for _, row := range truth.Rows {
		if row.Entity == "" || row.Attribute == "" || row.Probability < 0 || row.Probability > 1 {
			t.Fatalf("bad truth row %+v", row)
		}
	}

	// Entity and fact filters.
	ent := truth.Rows[0].Entity
	resp, err = http.Get(ts.URL + "/truth?entity=" + urlQuery(ent))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	var entTruth struct {
		Facts int        `json:"facts"`
		Rows  []TruthRow `json:"rows"`
	}
	decodeJSON(t, resp, &entTruth)
	if entTruth.Facts == 0 {
		t.Fatalf("no rows for entity %q", ent)
	}
	for _, row := range entTruth.Rows {
		if row.Entity != ent {
			t.Fatalf("entity filter leaked row %+v", row)
		}
	}
	resp, err = http.Get(ts.URL + "/truth?entity=" + urlQuery(ent) + "&attribute=" + urlQuery(entTruth.Rows[0].Attribute))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()
	for _, bad := range []string{
		"/truth?entity=no-such-entity",
		"/truth?entity=" + urlQuery(ent) + "&attribute=no-such-attr",
		"/records?entity=no-such-entity",
	} {
		resp, err = http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		wantStatus(t, resp, http.StatusNotFound)
		resp.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/truth?attribute=orphaned")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	// Quality is ranked by decreasing sensitivity and covers the sources.
	var qual struct {
		Sources []struct {
			Source      string  `json:"source"`
			Sensitivity float64 `json:"sensitivity"`
			Specificity float64 `json:"specificity"`
		} `json:"sources"`
	}
	resp, err = http.Get(ts.URL + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &qual)
	if len(qual.Sources) != sn.Dataset.NumSources() {
		t.Fatalf("%d quality rows for %d sources", len(qual.Sources), sn.Dataset.NumSources())
	}
	for i := 1; i < len(qual.Sources); i++ {
		if qual.Sources[i].Sensitivity > qual.Sources[i-1].Sensitivity {
			t.Fatalf("quality not ranked: %v", qual.Sources)
		}
	}

	// Records serve the cached integration output.
	var recResp struct {
		Record struct {
			Entity     string `json:"entity"`
			Attributes []struct {
				Value string `json:"value"`
			} `json:"attributes"`
		} `json:"record"`
	}
	resp, err = http.Get(ts.URL + "/records?entity=" + urlQuery(ent))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &recResp)
	if recResp.Record.Entity != ent {
		t.Fatalf("record for %q, want %q", recResp.Record.Entity, ent)
	}

	// Stats reflect the snapshot.
	var stats statsResponse
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &stats)
	if !stats.Ready || stats.Seq != 1 || stats.Refits != 1 || stats.FullRefits != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Facts != sn.Stats.Facts || stats.Claims != sn.Stats.Claims {
		t.Fatalf("stats facts/claims = %d/%d, snapshot %d/%d",
			stats.Facts, stats.Claims, sn.Stats.Facts, sn.Stats.Claims)
	}

	// A refit with no new data still publishes a fresh snapshot.
	resp, err = http.Post(ts.URL+"/refit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	decodeJSON(t, resp, &refit)
	if refit.Seq != 2 {
		t.Fatalf("second refit seq = %d", refit.Seq)
	}
}

func TestServerRejectsBadIngest(t *testing.T) {
	_, ts := newTestServer(t, testConfig(RefitFull))
	for name, body := range map[string]string{
		"malformed":   `{"claims": [`,
		"empty batch": `{"claims": []}`,
		"empty field": `{"claims": [{"entity":"e","attribute":"","source":"s"}]}`,
		"not json":    `hello`,
	} {
		resp, err := http.Post(ts.URL+"/claims", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// A bare JSON array is accepted too.
	resp, err := http.Post(ts.URL+"/claims", "application/json",
		strings.NewReader(`[{"entity":"e","attribute":"a","source":"s"}]`))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/refit?policy=bogus", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
}

func TestServerIncrementalAndOnlinePolicies(t *testing.T) {
	for _, policy := range []RefitPolicy{RefitIncremental, RefitOnline} {
		t.Run(string(policy), func(t *testing.T) {
			c := testCorpus(t, 2)
			batches := store.SplitEntities(c.Dataset, 4)
			s, err := New(testConfig(policy))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// FullEvery = 3: expected modes per refit are full, policy,
			// policy, full, ...
			want := []RefitPolicy{RefitFull, policy, policy, RefitFull}
			for i, b := range batches {
				if _, err := s.Ingest(positiveRows(b)); err != nil {
					t.Fatal(err)
				}
				sn, err := s.Refit("")
				if err != nil {
					t.Fatalf("refit %d: %v", i, err)
				}
				if sn.Mode != want[i] {
					t.Fatalf("refit %d mode = %s, want %s", i, sn.Mode, want[i])
				}
				if sn.Seq != int64(i+1) {
					t.Fatalf("refit %d seq = %d", i, sn.Seq)
				}
				if err := sn.Result.Validate(); err != nil {
					t.Fatal(err)
				}
				if len(sn.Result.Prob) != sn.Dataset.NumFacts() {
					t.Fatalf("refit %d: %d probs for %d facts", i, len(sn.Result.Prob), sn.Dataset.NumFacts())
				}
				if len(sn.Quality) == 0 {
					t.Fatalf("refit %d: empty quality table", i)
				}
			}
			rs := s.Refits()
			if rs.Refits != 4 || rs.FullRefits != 2 {
				t.Fatalf("counters = %+v", rs)
			}
		})
	}
}

func TestServerPolicyOverride(t *testing.T) {
	c := testCorpus(t, 3)
	s, err := New(testConfig(RefitIncremental))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(positiveRows(c.Dataset)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refit(""); err != nil {
		t.Fatal(err)
	}
	// An explicit full override mid-stream re-anchors regardless of policy.
	sn, err := s.Refit(RefitFull)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Mode != RefitFull {
		t.Fatalf("override mode = %s", sn.Mode)
	}
}

// TestOnlineSkipsDuplicateBatches: a retried POST of an already-compacted
// batch must not feed the quality accumulator twice — only rows new to the
// cumulative database count.
func TestOnlineSkipsDuplicateBatches(t *testing.T) {
	c := testCorpus(t, 6)
	s, err := New(testConfig(RefitOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rows := positiveRows(c.Dataset)
	if _, err := s.Ingest(rows); err != nil {
		t.Fatal(err)
	}
	first, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	if first.Compacted != len(rows) {
		t.Fatalf("first refit compacted %d of %d rows", first.Compacted, len(rows))
	}
	// Retry the identical batch: everything is a duplicate.
	if _, err := s.Ingest(rows); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Compacted != 0 {
		t.Fatalf("duplicate batch compacted %d rows, want 0", sn.Compacted)
	}
	if sn.Stats != first.Stats {
		t.Fatalf("duplicate batch changed the dataset: %+v vs %+v", sn.Stats, first.Stats)
	}
}

func TestSnapshotInvariants(t *testing.T) {
	c := testCorpus(t, 4)
	s, err := New(testConfig(RefitFull))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(positiveRows(c.Dataset)); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshotComplete(t, sn)

	// Point lookups agree with the full table.
	for _, row := range sn.AllTruth() {
		got, err := sn.Truth(row.Entity, row.Attribute)
		if err != nil || got != row {
			t.Fatalf("Truth(%q, %q) = %+v/%v, want %+v", row.Entity, row.Attribute, got, err, row)
		}
	}
	ent := sn.Dataset.Entities[0]
	rows, err := sn.EntityTruth(ent)
	if err != nil || len(rows) != len(sn.Dataset.FactsByEntity[0]) {
		t.Fatalf("EntityTruth(%q) = %d rows/%v", ent, len(rows), err)
	}
	if _, err := sn.Record(ent); err != nil {
		t.Fatalf("Record(%q) missing: %v", ent, err)
	}
}

// checkSnapshotComplete asserts the structural invariants every published
// snapshot must satisfy — the "no torn reads" contract.
func checkSnapshotComplete(t *testing.T, sn *Snapshot) {
	t.Helper()
	if sn == nil {
		t.Fatal("nil snapshot")
	}
	nf := sn.Dataset.NumFacts()
	if len(sn.Result.Prob) != nf {
		t.Fatalf("snapshot %d: %d probs for %d facts", sn.Seq, len(sn.Result.Prob), nf)
	}
	if len(sn.Records) != sn.Dataset.NumEntities() {
		t.Fatalf("snapshot %d: %d records for %d entities", sn.Seq, len(sn.Records), sn.Dataset.NumEntities())
	}
	if len(sn.factByName) != nf {
		t.Fatalf("snapshot %d: truth index has %d entries for %d facts", sn.Seq, len(sn.factByName), nf)
	}
	if got := store.Summarize(sn.Dataset); got != sn.Stats {
		t.Fatalf("snapshot %d: stats %+v, recomputed %+v", sn.Seq, sn.Stats, got)
	}
	if err := sn.Result.Validate(); err != nil {
		t.Fatalf("snapshot %d: %v", sn.Seq, err)
	}
}

func TestServerBackgroundRefitLoop(t *testing.T) {
	c := testCorpus(t, 5)
	cfg := testConfig(RefitFull)
	cfg.RefitInterval = 20 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	if _, err := s.Ingest(positiveRows(c.Dataset)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background loop never produced a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkSnapshotComplete(t, s.Snapshot())
}

func TestIngestAfterCloseFails(t *testing.T) {
	s, err := New(testConfig(RefitFull))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Ingest([]model.Row{{Entity: "e", Attribute: "a", Source: "s"}}); err == nil {
		t.Fatal("ingest after close succeeded")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := New(Config{Threshold: 1.5}); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if _, err := New(Config{FullEvery: -1}); err == nil {
		t.Fatal("negative FullEvery accepted")
	}
}

// urlQuery escapes a query parameter value.
func urlQuery(s string) string { return url.QueryEscape(s) }

// TestServerShardedRefit: a server with Shards configured must publish,
// in exact mode (SyncEvery=1), snapshots with the same truth table as an
// unsharded server fed the same claims, and must reject negative
// sharding knobs.
func TestServerShardedRefit(t *testing.T) {
	rows := positiveRows(testCorpus(t, 8).Dataset)

	snapshotOf := func(cfg Config) *Snapshot {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Ingest(rows); err != nil {
			t.Fatal(err)
		}
		snap, err := s.Refit("")
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	plain := snapshotOf(testConfig(RefitFull))
	cfg := testConfig(RefitFull)
	cfg.Shards, cfg.SyncEvery = 3, 1
	sharded := snapshotOf(cfg)

	want, got := plain.AllTruth(), sharded.AllTruth()
	if len(want) != len(got) {
		t.Fatalf("truth table sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("truth row %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}

	// Parallel mode serves a valid snapshot too (tolerance asserted at the
	// shard layer; here we only require a complete, consistent table).
	cfg = testConfig(RefitFull)
	cfg.Shards, cfg.SyncEvery = 3, 5
	if par := snapshotOf(cfg).AllTruth(); len(par) != len(want) {
		t.Fatalf("parallel sharded truth table has %d rows, want %d", len(par), len(want))
	}

	if _, err := New(Config{Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := New(Config{SyncEvery: -1}); err == nil {
		t.Fatal("negative SyncEvery accepted")
	}
}
