package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"latenttruth/internal/model"
	"latenttruth/internal/wal"
)

// injectFitFailure arms the server's test-only fit hook to fail exactly
// once, after the drain cut but before any model work — the spot where a
// real engine error (OOM, shard panic recovery, bad priors) would surface.
func injectFitFailure(s *Server) error {
	boom := errors.New("injected fit failure")
	s.testFitErr = func() error {
		s.testFitErr = nil // one-shot
		return boom
	}
	return boom
}

// freshCount returns how many of rows are new to a database that has
// already absorbed each batch in prior — the number a snapshot's Compacted
// stat must report after those rows are drained.
func freshCount(prior [][]model.Row, rows []model.Row) int {
	db := model.NewRawDB()
	for _, b := range prior {
		for _, r := range b {
			db.AddRow(r)
		}
	}
	n := 0
	for _, r := range rows {
		if db.AddRow(r) {
			n++
		}
	}
	return n
}

// TestOrphanRefitMarkerKeepsFollowerAligned is the regression test for the
// orphan-marker bug: a durable primary appends its refit marker at the
// drain cut, and if the fit then fails the marker is already in the WAL —
// followers replay it and publish a snapshot the primary never produced.
// The fix resolves the failed attempt (same rows, no second marker) before
// the next refit drains, so primary and follower snapshot sequences can
// never diverge. Run under both the full and dirty policies: the dirty
// path additionally exercises carry resolution through StepDirty.
func TestOrphanRefitMarkerKeepsFollowerAligned(t *testing.T) {
	for _, policy := range []RefitPolicy{RefitFull, RefitDirty} {
		t.Run(string(policy), func(t *testing.T) {
			cfg := durableConfig(policy, t.TempDir())
			cfg.FullEvery = 100 // keep post-anchor refits on the fast path
			prim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer prim.Close()

			// Seed corpus and a successful first refit (always a full fit).
			for i := 0; i < 3; i++ {
				mustIngest(t, prim, batchRows(i))
			}
			if sn := mustRefit(t, prim); sn.Seq != 1 {
				t.Fatalf("first refit seq %d, want 1", sn.Seq)
			}

			// A batch arrives and its refit fails AFTER the marker append.
			mustIngest(t, prim, batchRows(3))
			boom := injectFitFailure(prim)
			if _, err := prim.Refit(""); !errors.Is(err, boom) {
				t.Fatalf("injected refit error = %v, want %v", err, boom)
			}
			if sn := prim.Snapshot(); sn.Seq != 1 {
				t.Fatalf("failed refit advanced the snapshot to seq %d", sn.Seq)
			}

			// The orphan is real: the WAL already holds 2 markers (one per
			// attempt) even though only 1 snapshot was ever published.
			if n := countMarkers(t, prim); n != 2 {
				t.Fatalf("%d markers after failed refit, want 2 (one orphaned)", n)
			}

			// Next refit must resolve the orphan first (seq 2, batch 3's
			// rows, NO new marker) and only then drain batch 4 under a new
			// marker (seq 3).
			mustIngest(t, prim, batchRows(4))
			if sn := mustRefit(t, prim); sn.Seq != 3 {
				t.Fatalf("post-recovery seq %d, want 3 (orphan resolved as 2)", sn.Seq)
			}
			if n := countMarkers(t, prim); n != 3 {
				t.Fatalf("%d markers after recovery, want 3 (resolution must not re-mark)", n)
			}
			if got := prim.Refits().Refits; got != 3 {
				t.Fatalf("refit counter %d, want 3", got)
			}

			// A follower replaying the primary's WAL verbatim — orphan
			// marker included — must land on the identical serving state.
			folCfg := durableConfig(policy, t.TempDir())
			folCfg.FullEvery = 100
			folCfg.FollowerOf = "http://primary.invalid"
			fol, err := New(folCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer fol.Close()
			if err := prim.dur.log.Replay(1, func(b wal.Batch) error {
				return fol.ApplyReplicated(b)
			}); err != nil {
				t.Fatal(err)
			}
			mustEqualSnapshots(t, fol.Snapshot(), prim.Snapshot())
		})
	}
}

// countMarkers replays a durable server's WAL and counts refit markers.
func countMarkers(t *testing.T, s *Server) int {
	t.Helper()
	n := 0
	if err := s.dur.log.Replay(1, func(b wal.Batch) error {
		if _, _, ok := parseRefitNote(b); ok {
			n++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCompactedCountSurvivesFailedFit is the regression test for the lost
// compacted stat: a refit drains rows, folds them into the database, then
// fails — the next successful snapshot must still report those rows as
// compacted by it, not silently absorb them with Compacted = 0.
func TestCompactedCountSurvivesFailedFit(t *testing.T) {
	s, err := New(testConfig(RefitFull))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mustIngest(t, s, batchRows(0))
	want0 := freshCount(nil, batchRows(0))
	if sn := mustRefit(t, s); sn.Compacted != want0 {
		t.Fatalf("refit 1 compacted %d, want %d", sn.Compacted, want0)
	}

	mustIngest(t, s, batchRows(1))
	want1 := freshCount([][]model.Row{batchRows(0)}, batchRows(1))
	boom := injectFitFailure(s)
	if _, err := s.Refit(""); !errors.Is(err, boom) {
		t.Fatalf("injected refit error = %v, want %v", err, boom)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d rows still pending after drain; carry should hold them", s.Pending())
	}

	// The retry publishes the carried attempt: same rows, same count.
	sn := mustRefit(t, s)
	if sn.Seq != 2 {
		t.Fatalf("retry seq %d, want 2", sn.Seq)
	}
	if sn.Compacted != want1 {
		t.Fatalf("retry compacted %d, want %d (count lost across the failed attempt)", sn.Compacted, want1)
	}
}

// TestDirtyRefitAllDirtyMatchesFull is the equivalence property anchoring
// the fast path: when every entity is dirty there is no clean remainder to
// keep, and the dirty policy must produce a snapshot bit-identical to a
// full-policy server fed the same batches — across shard counts, since the
// sharded and single-engine fits are both deterministic.
func TestDirtyRefitAllDirtyMatchesFull(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mk := func(policy RefitPolicy) *Server {
				cfg := testConfig(policy)
				cfg.Shards = shards
				cfg.FullEvery = 100
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { s.Close() })
				return s
			}
			d, f := mk(RefitDirty), mk(RefitFull)

			rows := positiveRows(testCorpus(t, 7).Dataset)
			entities := map[string]struct{}{}
			for _, r := range rows {
				entities[r.Entity] = struct{}{}
			}
			mustIngest(t, d, rows)
			mustIngest(t, f, rows)
			mustEqualSnapshots(t, mustRefit(t, d), mustRefit(t, f))

			// Two rounds of batches that touch EVERY entity: the dirty
			// server must detect the degenerate case and match the full
			// server exactly.
			for r := 0; r < 2; r++ {
				var batch []model.Row
				for e := range entities {
					batch = append(batch,
						model.Row{Entity: e, Attribute: fmt.Sprintf("x%d", r), Source: "good"},
						model.Row{Entity: e, Attribute: fmt.Sprintf("x%d", r), Source: "messy"})
				}
				mustIngest(t, d, batch)
				mustIngest(t, f, batch)
				sd, sf := mustRefit(t, d), mustRefit(t, f)
				if sd.Mode != RefitFull {
					t.Fatalf("round %d: all-dirty refit mode %q, want full fallback", r, sd.Mode)
				}
				mustEqualSnapshots(t, sd, sf)
			}
		})
	}
}

// TestDirtyRefitCleanEntitiesUnchanged is the isolation property: a dirty
// refit may only move posteriors of entities the drained batches touched.
// Every clean entity's truth rows must be bitwise identical to the
// previous snapshot — not approximately stable, identical.
func TestDirtyRefitCleanEntitiesUnchanged(t *testing.T) {
	cfg := testConfig(RefitDirty)
	cfg.FullEvery = 100
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mustIngest(t, s, positiveRows(testCorpus(t, 9).Dataset))
	prev := mustRefit(t, s)
	if prev.Mode != RefitFull {
		t.Fatalf("first refit mode %q, want full anchor", prev.Mode)
	}

	// Pick a stable trio of entities to keep dirtying.
	dirtySet := map[string]struct{}{}
	for _, row := range prev.AllTruth() {
		if len(dirtySet) == 3 {
			break
		}
		dirtySet[row.Entity] = struct{}{}
	}

	for round := 0; round < 3; round++ {
		var batch []model.Row
		for e := range dirtySet {
			batch = append(batch,
				model.Row{Entity: e, Attribute: fmt.Sprintf("fresh%d", round), Source: "good"},
				model.Row{Entity: e, Attribute: fmt.Sprintf("fresh%d", round), Source: "lazy"})
		}
		mustIngest(t, s, batch)
		sn := mustRefit(t, s)
		if sn.Mode != RefitDirty {
			t.Fatalf("round %d: mode %q, want dirty", round, sn.Mode)
		}
		if sn.DirtyEntities != len(dirtySet) {
			t.Fatalf("round %d: %d dirty entities, want %d", round, sn.DirtyEntities, len(dirtySet))
		}
		if sn.Freshness <= 0 {
			t.Fatalf("round %d: freshness %v, want > 0 after a pending ingest", round, sn.Freshness)
		}

		was := map[[2]string]TruthRow{}
		for _, row := range prev.AllTruth() {
			was[[2]string{row.Entity, row.Attribute}] = row
		}
		cleanNow, cleanWas := 0, 0
		for _, row := range sn.AllTruth() {
			if _, dirty := dirtySet[row.Entity]; dirty {
				continue
			}
			cleanNow++
			old, ok := was[[2]string{row.Entity, row.Attribute}]
			if !ok {
				t.Fatalf("round %d: clean fact %s/%s appeared from nowhere", round, row.Entity, row.Attribute)
			}
			if row != old {
				t.Fatalf("round %d: clean entity moved: %+v was %+v", round, row, old)
			}
		}
		for key := range was {
			if _, dirty := dirtySet[key[0]]; !dirty {
				cleanWas++
			}
		}
		if cleanNow != cleanWas {
			t.Fatalf("round %d: %d clean facts, want %d (clean facts must be preserved)", round, cleanNow, cleanWas)
		}
		// The dirty entities' new facts did land.
		for e := range dirtySet {
			if _, err := sn.Truth(e, fmt.Sprintf("fresh%d", round)); err != nil {
				t.Fatalf("round %d: dirty entity %s's new fact missing: %v", round, e, err)
			}
		}
		prev = sn
	}
	if got := s.Refits(); got.DirtyRefits != 3 || got.FullRefits != 1 {
		t.Fatalf("refit counters %+v, want 3 dirty / 1 full", got)
	}
}

// TestDirtyRefitRestartBitIdentical extends the durability acceptance
// scenario to the dirty policy: the checkpointed posterior plus the WAL's
// dirty-set markers must let a crashed server replay partial refits
// bit-identically to an uninterrupted twin — including dirty refits that
// extend the restored snapshot after recovery.
func TestDirtyRefitRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	mk := func(durableDir string) *Server {
		var cfg Config
		if durableDir != "" {
			cfg = durableConfig(RefitDirty, durableDir)
		} else {
			cfg = testConfig(RefitDirty)
		}
		cfg.FullEvery = 100
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := mk("")
	defer ref.Close()
	a := mk(dir)

	// Full anchor, then two dirty refits, then two acknowledged batches
	// that never see a refit before the crash.
	for r := 0; r < 3; r++ {
		mustIngest(t, a, batchRows(r))
		mustIngest(t, ref, batchRows(r))
		mustEqualSnapshots(t, mustRefit(t, a), mustRefit(t, ref))
	}
	mustIngest(t, a, batchRows(10))
	mustIngest(t, a, batchRows(11))
	mustIngest(t, ref, batchRows(10))
	mustIngest(t, ref, batchRows(11))
	crash(a)

	b := mk(dir)
	defer b.Close()
	// Recovery restored the published snapshot itself — before the next
	// refit runs, the server already serves what it served pre-crash.
	restored := b.Snapshot()
	if restored == nil {
		t.Fatal("no snapshot restored from the checkpointed posterior")
	}
	mustEqualSnapshots(t, restored, a.Snapshot())
	if b.Pending() != a.Pending() {
		t.Fatalf("pending after recovery = %d, want %d", b.Pending(), a.Pending())
	}
	// The refit counters — including the dirty-refit count, which feeds
	// /stats — survive alongside the snapshot they describe.
	if got, want := b.Refits(), a.Refits(); got != want {
		t.Fatalf("refit counters after recovery = %+v, want %+v", got, want)
	}

	// The next refit is a DIRTY refit over the restored snapshot: it only
	// works bit-identically if the posterior, the accumulated counts and
	// the replayed dirty set all survived.
	sb, sr := mustRefit(t, b), mustRefit(t, ref)
	if sb.Mode != RefitDirty {
		t.Fatalf("post-recovery refit mode %q, want dirty", sb.Mode)
	}
	mustEqualSnapshots(t, sb, sr)

	// And the runs stay in lockstep, including a forced full re-anchor —
	// proof the reconciled confusion counts did not drift.
	mustIngest(t, b, batchRows(20))
	mustIngest(t, ref, batchRows(20))
	mustEqualSnapshots(t, mustRefit(t, b), mustRefit(t, ref))
	fb, err := b.Refit(RefitFull)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := ref.Refit(RefitFull)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSnapshots(t, fb, fr)
}

// TestDirtyRefitUnderConcurrentReads wires the dirty policy into the -race
// suite: in-process readers validate snapshot integrity while dirty refits
// (and their copy-on-write posterior scatter) run, checking the publication
// ordering of everything reachable from the snapshot pointer.
func TestDirtyRefitUnderConcurrentReads(t *testing.T) {
	cfg := testConfig(RefitDirty)
	cfg.FullEvery = 100
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustIngest(t, s, positiveRows(testCorpus(t, 11).Dataset))
	mustRefit(t, s)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				if sn == nil {
					continue
				}
				if sn.Seq < lastSeq {
					errs <- fmt.Errorf("seq went backwards: %d after %d", sn.Seq, lastSeq)
					return
				}
				lastSeq = sn.Seq
				if len(sn.Result.Prob) != sn.Dataset.NumFacts() ||
					len(sn.Records) != sn.Dataset.NumEntities() {
					errs <- fmt.Errorf("torn snapshot at seq %d", sn.Seq)
					return
				}
			}
		}()
	}

	for i := 0; i < 8; i++ {
		rows := make([]model.Row, 0, 4)
		for j := 0; j < 2; j++ {
			rows = append(rows, model.Row{
				Entity:    fmt.Sprintf("dirty-e%d", i%3),
				Attribute: fmt.Sprintf("a%d-%d", i, j),
				Source:    fmt.Sprintf("s%d", j),
			})
		}
		mustIngest(t, s, rows)
		if sn := mustRefit(t, s); sn.Mode != RefitDirty {
			t.Fatalf("refit %d mode %q, want dirty", i, sn.Mode)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
