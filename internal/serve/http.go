package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/integrate"
	"latenttruth/internal/model"
	"latenttruth/internal/obs"
	"latenttruth/internal/query"
	"latenttruth/internal/store"
)

// maxClaimsBody bounds a POST /claims request body (32 MiB).
const maxClaimsBody = 32 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /claims  — ingest a batch of triples
//	GET  /claims  — raw claims from storage (?entity=|?prefix=, ?source=, ?limit=)
//	GET  /truth   — the truth table (optionally ?entity= and ?attribute=)
//	GET  /quality — the per-source quality table (Table 8 order)
//	GET  /records — one entity's integrated record (?entity=)
//	GET  /stats   — corpus and serving statistics
//	GET  /healthz — liveness and readiness
//	GET  /durability — WAL, checkpoint and recovery state
//	GET  /metrics — Prometheus text exposition of the metric registry
//	POST /refit   — force a synchronous refit (optionally ?policy=)
//
// Durable servers additionally expose the replication feed read replicas
// bootstrap and tail from (any durable server can be a primary, including
// a follower — replication cascades):
//
//	GET  /replication/checkpoint — newest checkpoint, multipart
//	GET  /replication/wal        — long-poll framed log records (?from=)
//
// On a follower, POST /claims and POST /refit return 503 with the
// primary's address: reads are local, writes belong to the primary.
//
// All read endpoints serve from the current immutable snapshot: one atomic
// pointer load, no locks, never blocked by a background refit.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /claims", s.handleClaims)
	mux.HandleFunc("GET /claims", s.handleClaimsQuery)
	mux.HandleFunc("GET /truth", s.handleTruth)
	mux.HandleFunc("GET /quality", s.handleQuality)
	mux.HandleFunc("GET /records", s.handleRecords)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /durability", s.handleDurability)
	mux.HandleFunc("POST /refit", s.handleRefit)
	mux.HandleFunc("GET /partition/quality", s.handlePartitionQuality)
	mux.HandleFunc("GET /metrics", obs.MetricsHandler(s.reg))
	if s.dur != nil {
		mux.HandleFunc("GET /replication/checkpoint", s.handleReplCheckpoint)
		mux.HandleFunc("GET /replication/wal", s.handleReplWAL)
	}
	if s.httpMW != nil {
		return s.httpMW.Wrap(mux)
	}
	return mux
}

// Stable machine-readable error codes. Every non-2xx response body is
// the envelope {"error": <human message>, "code": <one of these>}, with
// endpoint-specific supplementary fields ("primary", "restart") added
// alongside — never replacing — the envelope. Clients branch on the
// code; the message is free to improve without breaking them.
const (
	// codeBadRequest: malformed parameters, bodies or cursors (400).
	codeBadRequest = "bad_request"
	// codeNotFound: the named entity/fact/source/resource does not exist (404).
	codeNotFound = "not_found"
	// codeStaleCursor: a pagination cursor from a superseded snapshot (410).
	codeStaleCursor = "stale_cursor"
	// codeFollowerReadonly: a write endpoint on a replication follower (503).
	codeFollowerReadonly = "follower_readonly"
	// codeNotReady: no snapshot published yet; retry after a refit (503).
	codeNotReady = "not_ready"
	// codeNoData: a refit was forced with nothing ever ingested (409).
	codeNoData = "no_data"
	// codeUnavailable: a transient server-side failure worth retrying (503).
	codeUnavailable = "unavailable"
	// codeInternal: an unexpected server-side failure (500).
	codeInternal = "internal"
	// codeWALTruncated: the requested replication history was truncated;
	// re-bootstrap from /replication/checkpoint (410).
	codeWALTruncated = "wal_truncated"
	// codeFollowerAhead: the follower holds records past this primary's log
	// head — primary state was lost or replaced (409).
	codeFollowerAhead = "follower_ahead"
	// codeStorageUnsupported: the operation is not implemented for this
	// storage backend (501).
	codeStorageUnsupported = "storage_unsupported"
)

// rejectOnFollower writes the 503 a write endpoint returns in follower
// mode, pointing the client at the primary. It reports whether the
// request was rejected.
func (s *Server) rejectOnFollower(w http.ResponseWriter) bool {
	if s.cfg.FollowerOf == "" {
		return false
	}
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":   ErrFollower.Error(),
		"code":    codeFollowerReadonly,
		"primary": s.cfg.FollowerOf,
	})
	return true
}

// writeJSON writes v as a JSON response. Encode failures cannot change the
// already-written status line, but they are never silent: each one is
// logged and counted into the /stats encode_failures counter, so a
// truncated large response (client gone, connection reset mid-stream) is
// observable instead of masquerading as a clean 200.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.encodeFailure(err)
	}
}

// encodeFailure accounts one failed response encode.
func (s *Server) encodeFailure(err error) {
	s.encodeFailures.Add(1)
	if s.met != nil {
		s.met.encodeFailures.Inc()
	}
	s.warnf("serve: encoding response: %v", err)
}

// writeError writes the standard JSON error envelope {"error","code"}.
func (s *Server) writeError(w http.ResponseWriter, status int, code string, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// writeQueryError maps a query-engine error onto its HTTP status: the
// typed not-found errors become 404, a stale cursor becomes 410 Gone with
// an explicit restart signal, and anything else (bad parameters, malformed
// cursors) is the client's 400.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoEntity), errors.Is(err, ErrNoFact), errors.Is(err, ErrNoSource):
		s.writeError(w, http.StatusNotFound, codeNotFound, err)
	case errors.Is(err, ErrStaleCursor):
		s.writeJSON(w, http.StatusGone, map[string]any{
			"error": err.Error(), "code": codeStaleCursor, "restart": true,
		})
	default:
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
	}
}

// jsonStream writes one JSON response incrementally: raw structural bytes
// interleaved with values encoded one at a time through a reused buffer,
// with the same encoding semantics as writeJSON (SetEscapeHTML off). The
// first error latches and suppresses further writes.
type jsonStream struct {
	w   io.Writer
	buf bytes.Buffer
	enc *json.Encoder
	err error
}

func newJSONStream(w io.Writer) *jsonStream {
	js := &jsonStream{w: w}
	js.enc = json.NewEncoder(&js.buf)
	js.enc.SetEscapeHTML(false)
	return js
}

// raw writes structural JSON verbatim.
func (js *jsonStream) raw(s string) {
	if js.err == nil {
		_, js.err = io.WriteString(js.w, s)
	}
}

// val encodes one value (without the encoder's trailing newline).
func (js *jsonStream) val(v any) {
	if js.err != nil {
		return
	}
	js.buf.Reset()
	if err := js.enc.Encode(v); err != nil {
		js.err = err
		return
	}
	b := js.buf.Bytes()
	_, js.err = js.w.Write(b[:len(b)-1])
}

// finish accounts any latched stream error.
func (s *Server) finish(js *jsonStream) {
	if js.err != nil {
		s.encodeFailure(js.err)
	}
}

// errNoSnapshot is the 503 payload served before the first refit.
var errNoSnapshot = errors.New("serve: no snapshot yet (ingest claims and refit first)")

// claimJSON is the wire form of one triple.
type claimJSON struct {
	Entity    string `json:"entity"`
	Attribute string `json:"attribute"`
	Source    string `json:"source"`
}

// handleClaims ingests a batch: either {"claims": [...]} or a bare array.
func (s *Server) handleClaims(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxClaimsBody)
	dec := json.NewDecoder(body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var claims []claimJSON
	if len(raw) > 0 && raw[0] == '{' {
		var envelope struct {
			Claims []claimJSON `json:"claims"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		claims = envelope.Claims
	} else if err := json.Unmarshal(raw, &claims); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(claims) == 0 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, errors.New("serve: empty claim batch"))
		return
	}
	rows := make([]model.Row, len(claims))
	for i, c := range claims {
		rows[i] = model.Row{Entity: c.Entity, Attribute: c.Attribute, Source: c.Source}
	}
	n, err := s.Ingest(rows)
	if err != nil {
		// Malformed claims are the client's fault; anything else (WAL I/O
		// failure, shutdown) is a server-side condition worth retrying.
		status, code := http.StatusServiceUnavailable, codeUnavailable
		var bad badBatchError
		if errors.As(err, &bad) {
			status, code = http.StatusBadRequest, codeBadRequest
		}
		s.writeError(w, status, code, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted": n,
		"pending":  s.ingest.Len(),
		"total":    s.ingest.Total(),
	})
}

// handleClaimsQuery serves raw claims straight from the storage backend —
// the compacted corpus, not the fitted snapshot: it answers even when no
// snapshot is published, and batches still pending in the ingest log
// appear once the next refit drains them into the store. Filters
// push down into the backend: on the segment store an ?entity= or
// ?prefix= scan skips every segment whose zone map or bloom filter rules
// it out. Rows are returned in (entity, attribute, source) order, which
// is backend-independent.
func (s *Server) handleClaimsQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opts := query.ClaimsOptions{
		Entity: q.Get("entity"),
		Prefix: q.Get("prefix"),
		Source: q.Get("source"),
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: bad limit %q", v))
			return
		}
		opts.Limit = n
	}
	rows, err := query.ScanClaims(s.db.Reader(), opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	claims := make([]claimJSON, len(rows))
	for i, r := range rows {
		claims[i] = claimJSON{Entity: r.Entity, Attribute: r.Attribute, Source: r.Source}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"count": len(claims), "claims": claims})
}

// truthResponse is the GET /truth payload. Facts always equals len(Rows);
// the race tests use this pairing to detect torn snapshots. Filtered and
// paginated responses carry "facts" (and "next_cursor" when more rows
// remain) after "rows", because a streamed count is only known at
// exhaustion; JSON field order is irrelevant to decoders and the
// unfiltered layout is byte-identical to the pre-engine output.
type truthResponse struct {
	Seq       int64       `json:"seq"`
	Mode      RefitPolicy `json:"mode"`
	FittedAt  time.Time   `json:"fitted_at"`
	Threshold float64     `json:"threshold"`
	Facts     int         `json:"facts"`
	Rows      []TruthRow  `json:"rows"`
}

// truthQueryParams parses the query-engine parameters of GET /truth.
func truthQueryParams(r *http.Request) (query.TruthOptions, query.AggKind, error) {
	q := r.URL.Query()
	opts := query.TruthOptions{
		Entity:    q.Get("entity"),
		Attribute: q.Get("attribute"),
		Source:    q.Get("source"),
		Cursor:    q.Get("cursor"),
	}
	if v := q.Get("min_prob"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return opts, "", fmt.Errorf("serve: bad min_prob %q", v)
		}
		opts.MinProb = p
	}
	if v := q.Get("predicted"); v != "" {
		p, err := strconv.ParseBool(v)
		if err != nil {
			return opts, "", fmt.Errorf("serve: bad predicted %q", v)
		}
		opts.Predicted = &p
	}
	if v := q.Get("topk"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return opts, "", fmt.Errorf("serve: bad topk %q", v)
		}
		opts.TopK = k
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return opts, "", fmt.Errorf("serve: bad limit %q", v)
		}
		opts.Limit = n
	}
	agg := query.AggKind(q.Get("agg"))
	if agg != "" && !agg.Valid() {
		return opts, "", fmt.Errorf("serve: unknown aggregation %q", agg)
	}
	return opts, agg, nil
}

// legacyShape reports whether opts uses only the pre-engine parameters
// (entity/attribute), whose response layout is kept byte-identical.
func legacyShape(opts query.TruthOptions) bool {
	return opts.Source == "" && opts.MinProb == 0 && opts.Predicted == nil &&
		opts.TopK == 0 && opts.Limit == 0 && opts.Cursor == ""
}

func (s *Server) handleTruth(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		s.writeError(w, http.StatusServiceUnavailable, codeNotReady, errNoSnapshot)
		return
	}
	opts, agg, err := truthQueryParams(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if agg != "" {
		groups, err := sn.QueryAggregate(agg, opts)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"seq": sn.Seq, "agg": agg, "count": len(groups), "groups": groups,
		})
		return
	}
	rows, err := sn.QueryTruth(opts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	// The unconstrained count is known up front, which lets the legacy
	// field order stream unchanged; filtered streams learn theirs at
	// exhaustion.
	known := -1
	if legacyShape(opts) {
		switch {
		case opts.Entity != "" && opts.Attribute != "":
			known = 1
		case opts.Entity != "":
			known = len(sn.Dataset.FactsByEntity[sn.entityByName[opts.Entity]])
		default:
			known = sn.Dataset.NumFacts()
		}
	}
	s.streamTruth(w, sn, rows, known)
}

// streamTruth writes a truth result straight into the response: envelope
// prefix, one row at a time off the iterator, then the trailing count and
// resume cursor when the count was not known up front. No row slice ever
// exists; memory is O(1) in the result size.
func (s *Server) streamTruth(w http.ResponseWriter, sn *Snapshot, rows *query.Rows, known int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	js := newJSONStream(w)
	js.raw(`{"seq":`)
	js.val(sn.Seq)
	js.raw(`,"mode":`)
	js.val(sn.Mode)
	js.raw(`,"fitted_at":`)
	js.val(sn.FittedAt)
	js.raw(`,"threshold":`)
	js.val(sn.Threshold)
	if known >= 0 {
		js.raw(`,"facts":`)
		js.val(known)
	}
	js.raw(`,"rows":[`)
	n := 0
	for {
		row, ok := rows.Next()
		if !ok {
			break
		}
		if n > 0 {
			js.raw(",")
		}
		js.val(TruthRow{
			Entity:      row.Entity,
			Attribute:   row.Attribute,
			Probability: row.Probability,
			Predicted:   row.Predicted,
		})
		n++
	}
	js.raw("]")
	if known < 0 {
		js.raw(`,"facts":`)
		js.val(n)
		if c := rows.NextCursor(); c != "" {
			js.raw(`,"next_cursor":`)
			js.val(c)
		}
	}
	js.raw("}\n")
	s.finish(js)
}

// qualityJSON is the wire form of one source-quality row.
type qualityJSON struct {
	Source      string  `json:"source"`
	Sensitivity float64 `json:"sensitivity"`
	Specificity float64 `json:"specificity"`
	Precision   float64 `json:"precision"`
	Accuracy    float64 `json:"accuracy"`
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		s.writeError(w, http.StatusServiceUnavailable, codeNotReady, errNoSnapshot)
		return
	}
	rows := make([]qualityJSON, len(sn.Quality))
	for i, q := range sn.Quality {
		rows[i] = qualityJSON{
			Source:      q.Source,
			Sensitivity: q.Sensitivity,
			Specificity: q.Specificity,
			Precision:   q.Precision,
			Accuracy:    q.Accuracy,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"seq": sn.Seq, "sources": rows})
}

// PartitionQuality is the GET /partition/quality payload: the expected
// confusion-count basis of the published quality table, for cluster-level
// cross-partition merging. Counts and priors round-trip bit-exactly
// through JSON (Go emits the shortest float64 representation that parses
// back to the same bits), so a router that sums partitions' counts and
// applies core.QualityFromCounts reconstructs each partition's own
// /quality rows exactly when given a single partition's counts. Threshold
// and priors let the router reject misconfigured clusters loudly instead
// of merging incompatible bases.
type PartitionQuality struct {
	Seq       int64                    `json:"seq"`
	Policy    RefitPolicy              `json:"policy"`
	Threshold float64                  `json:"threshold"`
	Priors    core.Priors              `json:"priors"`
	Counts    map[string][2][2]float64 `json:"counts"`
}

// handlePartitionQuality serves the snapshot's quality-count basis. 503
// before the first refit, or when recovery dropped the accumulator (a
// config-hash mismatch) — the basis reappears at the next refit.
func (s *Server) handlePartitionQuality(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		s.writeError(w, http.StatusServiceUnavailable, codeNotReady, errNoSnapshot)
		return
	}
	if sn.QualityCounts == nil {
		s.writeError(w, http.StatusServiceUnavailable, codeNotReady,
			errors.New("serve: no quality counts on this snapshot (refit to rebuild)"))
		return
	}
	s.writeJSON(w, http.StatusOK, PartitionQuality{
		Seq:       sn.Seq,
		Policy:    s.cfg.Policy,
		Threshold: sn.Threshold,
		Priors:    sn.QualityPriors,
		Counts:    sn.QualityCounts,
	})
}

// attributeJSON and recordJSON are the wire forms of an integrated record.
type attributeJSON struct {
	Value       string   `json:"value"`
	Probability float64  `json:"probability"`
	Supporters  []string `json:"supporters,omitempty"`
	Deniers     []string `json:"deniers,omitempty"`
}

type recordJSON struct {
	Entity     string          `json:"entity"`
	Attributes []attributeJSON `json:"attributes"`
	Rejected   []attributeJSON `json:"rejected,omitempty"`
}

func toAttrJSON(attrs []integrate.Attribute) []attributeJSON {
	out := make([]attributeJSON, len(attrs))
	for i, a := range attrs {
		out[i] = attributeJSON{
			Value:       a.Value,
			Probability: a.Probability,
			Supporters:  a.Supporters,
			Deniers:     a.Deniers,
		}
	}
	return out
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		s.writeError(w, http.StatusServiceUnavailable, codeNotReady, errNoSnapshot)
		return
	}
	q := r.URL.Query()
	opts := query.RecordOptions{Entity: q.Get("entity"), Cursor: q.Get("cursor")}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: bad limit %q", v))
			return
		}
		opts.Limit = n
	}
	// The pre-engine single-record lookup keeps its exact response shape.
	if opts.Entity != "" && opts.Limit == 0 && opts.Cursor == "" {
		rec, err := sn.Record(opts.Entity)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"seq": sn.Seq,
			"record": recordJSON{
				Entity:     rec.Entity,
				Attributes: toAttrJSON(rec.Attributes),
				Rejected:   toAttrJSON(rec.Rejected),
			},
		})
		return
	}
	rows, err := sn.QueryRecords(opts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	js := newJSONStream(w)
	js.raw(`{"seq":`)
	js.val(sn.Seq)
	js.raw(`,"records":[`)
	n := 0
	for {
		rec, ok := rows.Next()
		if !ok {
			break
		}
		if n > 0 {
			js.raw(",")
		}
		js.val(recordJSON{
			Entity:     rec.Entity,
			Attributes: toAttrJSON(rec.Attributes),
			Rejected:   toAttrJSON(rec.Rejected),
		})
		n++
	}
	js.raw(`],"count":`)
	js.val(n)
	if c := rows.NextCursor(); c != "" {
		js.raw(`,"next_cursor":`)
		js.val(c)
	}
	js.raw("}\n")
	s.finish(js)
}

// statsResponse is the GET /stats payload.
type statsResponse struct {
	Ready         bool        `json:"ready"`
	Seq           int64       `json:"seq"`
	Mode          RefitPolicy `json:"mode,omitempty"`
	Policy        RefitPolicy `json:"policy"`
	Pending       int         `json:"pending"`
	IngestedTotal int64       `json:"ingested_total"`
	Refits        int64       `json:"refits"`
	FullRefits    int64       `json:"full_refits"`
	DirtyRefits   int64       `json:"dirty_refits"`
	LastRefitMS   float64     `json:"last_refit_ms"`
	// FreshnessMS is the published snapshot's ingest-to-publish staleness
	// bound: how long its oldest folded row waited for publication.
	FreshnessMS float64 `json:"freshness_ms"`
	// DirtyEntities is the number of entities the last dirty refit
	// re-swept (0 after a full/incremental/online refit).
	DirtyEntities int     `json:"dirty_entities"`
	UptimeS       float64 `json:"uptime_s"`
	// Version and Commit identify the running build (linker-stamped via
	// internal/obs; "dev"/"none" on an unstamped build).
	Version string `json:"version"`
	Commit  string `json:"commit"`
	// EncodeFailures counts responses whose JSON encoding (or socket
	// write) failed after the status line was sent — the client saw a
	// truncated body even though the status said OK.
	EncodeFailures int64 `json:"encode_failures"`

	Entities       int `json:"entities"`
	Sources        int `json:"sources"`
	Facts          int `json:"facts"`
	Claims         int `json:"claims"`
	PositiveClaims int `json:"positive_claims"`
	NegativeClaims int `json:"negative_claims"`
	Labeled        int `json:"labeled"`

	// Storage reports the claim-storage backend's shape: resident (heap)
	// vs on-disk row counts are kept separate, and the skipping counters
	// show how much I/O the zone maps and blooms pruned. Always present,
	// even before the first refit.
	Storage store.StorageStats `json:"storage"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rs := s.Refits()
	resp := statsResponse{
		Policy:         s.cfg.Policy,
		Pending:        s.ingest.Len(),
		IngestedTotal:  s.ingest.Total(),
		Refits:         rs.Refits,
		FullRefits:     rs.FullRefits,
		DirtyRefits:    rs.DirtyRefits,
		EncodeFailures: s.encodeFailures.Load(),
		UptimeS:        time.Since(s.started).Seconds(),
		Version:        obs.Version,
		Commit:         obs.Commit,
		Storage:        s.db.Stats(),
	}
	if sn := s.Snapshot(); sn != nil {
		resp.Ready = true
		resp.Seq = sn.Seq
		resp.Mode = sn.Mode
		resp.LastRefitMS = float64(sn.RefitDuration) / float64(time.Millisecond)
		resp.FreshnessMS = float64(sn.Freshness) / float64(time.Millisecond)
		resp.DirtyEntities = sn.DirtyEntities
		resp.Entities = sn.Stats.Entities
		resp.Sources = sn.Stats.Sources
		resp.Facts = sn.Stats.Facts
		resp.Claims = sn.Stats.Claims
		resp.PositiveClaims = sn.Stats.PositiveClaims
		resp.NegativeClaims = sn.Stats.NegativeClaims
		resp.Labeled = sn.Stats.Labeled
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var seq int64
	ready := false
	if sn := s.Snapshot(); sn != nil {
		ready, seq = true, sn.Seq
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"ready":    ready,
		"seq":      seq,
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

// handleDurability reports the WAL, checkpoint and recovery state:
// {"enabled":false} on a memory-only server.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.DurabilityStats())
}

func (s *Server) handleRefit(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	override := RefitPolicy(r.URL.Query().Get("policy"))
	if override != "" && !override.valid() {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: unknown refit policy %q", override))
		return
	}
	sn, err := s.Refit(override)
	switch {
	case err == ErrNoData:
		s.writeError(w, http.StatusConflict, codeNoData, err)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"seq":            sn.Seq,
		"mode":           sn.Mode,
		"compacted":      sn.Compacted,
		"dirty_entities": sn.DirtyEntities,
		"facts":          sn.Stats.Facts,
		"refit_ms":       float64(sn.RefitDuration) / float64(time.Millisecond),
		"freshness_ms":   float64(sn.Freshness) / float64(time.Millisecond),
	})
}
