package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"latenttruth/internal/integrate"
	"latenttruth/internal/model"
)

// maxClaimsBody bounds a POST /claims request body (32 MiB).
const maxClaimsBody = 32 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /claims  — ingest a batch of triples
//	GET  /truth   — the truth table (optionally ?entity= and ?attribute=)
//	GET  /quality — the per-source quality table (Table 8 order)
//	GET  /records — one entity's integrated record (?entity=)
//	GET  /stats   — corpus and serving statistics
//	GET  /healthz — liveness and readiness
//	GET  /durability — WAL, checkpoint and recovery state
//	POST /refit   — force a synchronous refit (optionally ?policy=)
//
// Durable servers additionally expose the replication feed read replicas
// bootstrap and tail from (any durable server can be a primary, including
// a follower — replication cascades):
//
//	GET  /replication/checkpoint — newest checkpoint, multipart
//	GET  /replication/wal        — long-poll framed log records (?from=)
//
// On a follower, POST /claims and POST /refit return 503 with the
// primary's address: reads are local, writes belong to the primary.
//
// All read endpoints serve from the current immutable snapshot: one atomic
// pointer load, no locks, never blocked by a background refit.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /claims", s.handleClaims)
	mux.HandleFunc("GET /truth", s.handleTruth)
	mux.HandleFunc("GET /quality", s.handleQuality)
	mux.HandleFunc("GET /records", s.handleRecords)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /durability", s.handleDurability)
	mux.HandleFunc("POST /refit", s.handleRefit)
	if s.dur != nil {
		mux.HandleFunc("GET /replication/checkpoint", s.handleReplCheckpoint)
		mux.HandleFunc("GET /replication/wal", s.handleReplWAL)
	}
	return mux
}

// rejectOnFollower writes the 503 a write endpoint returns in follower
// mode, pointing the client at the primary. It reports whether the
// request was rejected.
func (s *Server) rejectOnFollower(w http.ResponseWriter) bool {
	if s.cfg.FollowerOf == "" {
		return false
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":   ErrFollower.Error(),
		"primary": s.cfg.FollowerOf,
	})
	return true
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errNoSnapshot is the 503 payload served before the first refit.
var errNoSnapshot = errors.New("serve: no snapshot yet (ingest claims and refit first)")

// claimJSON is the wire form of one triple.
type claimJSON struct {
	Entity    string `json:"entity"`
	Attribute string `json:"attribute"`
	Source    string `json:"source"`
}

// handleClaims ingests a batch: either {"claims": [...]} or a bare array.
func (s *Server) handleClaims(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxClaimsBody)
	dec := json.NewDecoder(body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var claims []claimJSON
	if len(raw) > 0 && raw[0] == '{' {
		var envelope struct {
			Claims []claimJSON `json:"claims"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		claims = envelope.Claims
	} else if err := json.Unmarshal(raw, &claims); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(claims) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty claim batch"))
		return
	}
	rows := make([]model.Row, len(claims))
	for i, c := range claims {
		rows[i] = model.Row{Entity: c.Entity, Attribute: c.Attribute, Source: c.Source}
	}
	n, err := s.Ingest(rows)
	if err != nil {
		// Malformed claims are the client's fault; anything else (WAL I/O
		// failure, shutdown) is a server-side condition worth retrying.
		code := http.StatusServiceUnavailable
		var bad badBatchError
		if errors.As(err, &bad) {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted": n,
		"pending":  s.ingest.Len(),
		"total":    s.ingest.Total(),
	})
}

// truthResponse is the GET /truth payload. Facts always equals len(Rows);
// the race tests use this pairing to detect torn snapshots.
type truthResponse struct {
	Seq       int64       `json:"seq"`
	Mode      RefitPolicy `json:"mode"`
	FittedAt  time.Time   `json:"fitted_at"`
	Threshold float64     `json:"threshold"`
	Facts     int         `json:"facts"`
	Rows      []TruthRow  `json:"rows"`
}

func (s *Server) handleTruth(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		writeError(w, http.StatusServiceUnavailable, errNoSnapshot)
		return
	}
	entity := r.URL.Query().Get("entity")
	attribute := r.URL.Query().Get("attribute")
	var rows []TruthRow
	switch {
	case entity != "" && attribute != "":
		row, ok := sn.Truth(entity, attribute)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("serve: no such fact"))
			return
		}
		rows = []TruthRow{row}
	case entity != "":
		var ok bool
		if rows, ok = sn.EntityTruth(entity); !ok {
			writeError(w, http.StatusNotFound, errors.New("serve: no such entity"))
			return
		}
	case attribute != "":
		writeError(w, http.StatusBadRequest, errors.New("serve: attribute filter requires entity"))
		return
	default:
		rows = sn.AllTruth()
	}
	writeJSON(w, http.StatusOK, truthResponse{
		Seq:       sn.Seq,
		Mode:      sn.Mode,
		FittedAt:  sn.FittedAt,
		Threshold: sn.Threshold,
		Facts:     len(rows),
		Rows:      rows,
	})
}

// qualityJSON is the wire form of one source-quality row.
type qualityJSON struct {
	Source      string  `json:"source"`
	Sensitivity float64 `json:"sensitivity"`
	Specificity float64 `json:"specificity"`
	Precision   float64 `json:"precision"`
	Accuracy    float64 `json:"accuracy"`
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		writeError(w, http.StatusServiceUnavailable, errNoSnapshot)
		return
	}
	rows := make([]qualityJSON, len(sn.Quality))
	for i, q := range sn.Quality {
		rows[i] = qualityJSON{
			Source:      q.Source,
			Sensitivity: q.Sensitivity,
			Specificity: q.Specificity,
			Precision:   q.Precision,
			Accuracy:    q.Accuracy,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": sn.Seq, "sources": rows})
}

// attributeJSON and recordJSON are the wire forms of an integrated record.
type attributeJSON struct {
	Value       string   `json:"value"`
	Probability float64  `json:"probability"`
	Supporters  []string `json:"supporters,omitempty"`
	Deniers     []string `json:"deniers,omitempty"`
}

type recordJSON struct {
	Entity     string          `json:"entity"`
	Attributes []attributeJSON `json:"attributes"`
	Rejected   []attributeJSON `json:"rejected,omitempty"`
}

func toAttrJSON(attrs []integrate.Attribute) []attributeJSON {
	out := make([]attributeJSON, len(attrs))
	for i, a := range attrs {
		out[i] = attributeJSON{
			Value:       a.Value,
			Probability: a.Probability,
			Supporters:  a.Supporters,
			Deniers:     a.Deniers,
		}
	}
	return out
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if sn == nil {
		writeError(w, http.StatusServiceUnavailable, errNoSnapshot)
		return
	}
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: records requires ?entity="))
		return
	}
	rec, ok := sn.Record(entity)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such entity"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seq": sn.Seq,
		"record": recordJSON{
			Entity:     rec.Entity,
			Attributes: toAttrJSON(rec.Attributes),
			Rejected:   toAttrJSON(rec.Rejected),
		},
	})
}

// statsResponse is the GET /stats payload.
type statsResponse struct {
	Ready         bool        `json:"ready"`
	Seq           int64       `json:"seq"`
	Mode          RefitPolicy `json:"mode,omitempty"`
	Policy        RefitPolicy `json:"policy"`
	Pending       int         `json:"pending"`
	IngestedTotal int64       `json:"ingested_total"`
	Refits        int64       `json:"refits"`
	FullRefits    int64       `json:"full_refits"`
	LastRefitMS   float64     `json:"last_refit_ms"`
	UptimeS       float64     `json:"uptime_s"`

	Entities       int `json:"entities"`
	Sources        int `json:"sources"`
	Facts          int `json:"facts"`
	Claims         int `json:"claims"`
	PositiveClaims int `json:"positive_claims"`
	NegativeClaims int `json:"negative_claims"`
	Labeled        int `json:"labeled"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rs := s.Refits()
	resp := statsResponse{
		Policy:        s.cfg.Policy,
		Pending:       s.ingest.Len(),
		IngestedTotal: s.ingest.Total(),
		Refits:        rs.Refits,
		FullRefits:    rs.FullRefits,
		UptimeS:       time.Since(s.started).Seconds(),
	}
	if sn := s.Snapshot(); sn != nil {
		resp.Ready = true
		resp.Seq = sn.Seq
		resp.Mode = sn.Mode
		resp.LastRefitMS = float64(sn.RefitDuration) / float64(time.Millisecond)
		resp.Entities = sn.Stats.Entities
		resp.Sources = sn.Stats.Sources
		resp.Facts = sn.Stats.Facts
		resp.Claims = sn.Stats.Claims
		resp.PositiveClaims = sn.Stats.PositiveClaims
		resp.NegativeClaims = sn.Stats.NegativeClaims
		resp.Labeled = sn.Stats.Labeled
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var seq int64
	ready := false
	if sn := s.Snapshot(); sn != nil {
		ready, seq = true, sn.Seq
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"ready":    ready,
		"seq":      seq,
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

// handleDurability reports the WAL, checkpoint and recovery state:
// {"enabled":false} on a memory-only server.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DurabilityStats())
}

func (s *Server) handleRefit(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	override := RefitPolicy(r.URL.Query().Get("policy"))
	if override != "" && !override.valid() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown refit policy %q", override))
		return
	}
	sn, err := s.Refit(override)
	switch {
	case err == ErrNoData:
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seq":       sn.Seq,
		"mode":      sn.Mode,
		"compacted": sn.Compacted,
		"facts":     sn.Stats.Facts,
		"refit_ms":  float64(sn.RefitDuration) / float64(time.Millisecond),
	})
}
