package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"testing"
	"time"

	"latenttruth/internal/wal"
)

// replConfig is a durable manual-refit primary config with fast eviction
// bounds for the tests that need them.
func replConfig(dir string) Config {
	cfg := durableConfig(RefitFull, dir)
	cfg.Replication = Replication{LongPoll: 2 * time.Second}
	return cfg
}

// fetchCheckpointParts downloads /replication/checkpoint and returns the
// parts by file name.
func fetchCheckpointParts(t *testing.T, url string) map[string][]byte {
	t.Helper()
	resp, err := http.Get(url + "/replication/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /replication/checkpoint: status %d", resp.StatusCode)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	parts := map[string][]byte{}
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		parts[p.FileName()] = data
	}
	return parts
}

// pollWAL fetches /replication/wal and decodes the framed records.
func pollWAL(t *testing.T, url string, from uint64, id string) []wal.Batch {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/replication/wal?from=%d&follower=%s&wait=0s", url, from, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /replication/wal: status %d", resp.StatusCode)
	}
	var out []wal.Batch
	br := bufio.NewReader(resp.Body)
	for {
		b, err := wal.DecodeBatch(br)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

func TestReplicationCheckpointEndpoint(t *testing.T) {
	s, ts := newTestServer(t, replConfig(t.TempDir()))

	// Before the first refit there is nothing to bootstrap from.
	resp, err := http.Get(ts.URL + "/replication/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-refit checkpoint status %d, want 404", resp.StatusCode)
	}

	mustIngest(t, s, batchRows(0))
	mustIngest(t, s, batchRows(1))
	mustRefit(t, s)

	parts := fetchCheckpointParts(t, ts.URL)
	if len(parts) != 4 {
		t.Fatalf("checkpoint has %d parts, want 4 (manifest, triples, quality, posterior): %v", len(parts), parts)
	}
	var m wal.Manifest
	if err := json.Unmarshal(parts["MANIFEST.json"], &m); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if m.Seq != 1 {
		t.Fatalf("manifest seq %d, want 1", m.Seq)
	}
	// The streamed files verify against the manifest's CRCs — the same
	// check a bootstrapping follower performs.
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	if got := crc32.Checksum(parts["triples.csv"], castagnoli); got != m.TriplesCRC {
		t.Fatalf("triples CRC %08x, manifest %08x", got, m.TriplesCRC)
	}
	if got := crc32.Checksum(parts["quality.csv"], castagnoli); got != m.QualityCRC {
		t.Fatalf("quality CRC %08x, manifest %08x", got, m.QualityCRC)
	}
	if got := crc32.Checksum(parts["posterior.csv"], castagnoli); got != m.PosteriorCRC {
		t.Fatalf("posterior CRC %08x, manifest %08x", got, m.PosteriorCRC)
	}

	// Memory-only servers don't expose the endpoint at all.
	_, mts := newTestServer(t, testConfig(RefitFull))
	resp2, err := http.Get(mts.URL + "/replication/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("memory-only checkpoint status %d, want 404", resp2.StatusCode)
	}
}

func TestReplicationWALEndpoint(t *testing.T) {
	s, ts := newTestServer(t, replConfig(t.TempDir()))
	mustIngest(t, s, batchRows(0))
	mustRefit(t, s) // marker at seq 2
	mustIngest(t, s, batchRows(1))

	got := pollWAL(t, ts.URL, 1, "f1")
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (batch, marker, batch)", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 || got[2].Seq != 3 {
		t.Fatalf("sequences %d,%d,%d", got[0].Seq, got[1].Seq, got[2].Seq)
	}
	if ov, _, ok := parseRefitNote(got[1]); !ok || ov != "" {
		t.Fatalf("record 2 is not a bare refit marker: %+v", got[1])
	}
	if len(got[0].Rows) != len(batchRows(0)) {
		t.Fatalf("batch 1 carries %d rows, want %d", len(got[0].Rows), len(batchRows(0)))
	}

	// from= filters; a caught-up follower gets an empty 200.
	if got := pollWAL(t, ts.URL, 3, "f1"); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("from=3 returned %+v", got)
	}
	if got := pollWAL(t, ts.URL, 4, "f1"); len(got) != 0 {
		t.Fatalf("caught-up poll returned %d records", len(got))
	}

	// The follower's cursor is registered at from-1 and visible.
	st := s.DurabilityStats()
	if len(st.ReplicationCursors) != 1 || st.ReplicationCursors[0].ID != "f1" ||
		st.ReplicationCursors[0].AckedSeq != 3 {
		t.Fatalf("replication cursors %+v", st.ReplicationCursors)
	}

	// Bad requests.
	for _, q := range []string{"", "?from=0", "?from=x", "?from=1&wait=bogus"} {
		resp, err := http.Get(ts.URL + "/replication/wal" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /replication/wal%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestReplicationWALLongPollWakesOnIngest(t *testing.T) {
	s, ts := newTestServer(t, replConfig(t.TempDir()))
	mustIngest(t, s, batchRows(0))
	mustRefit(t, s)

	type result struct {
		batches []wal.Batch
		elapsed time.Duration
	}
	done := make(chan result, 1)
	go func() {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/replication/wal?from=3&wait=5s")
		if err != nil {
			done <- result{}
			return
		}
		defer resp.Body.Close()
		var out []wal.Batch
		br := bufio.NewReader(resp.Body)
		for {
			b, derr := wal.DecodeBatch(br)
			if derr != nil {
				break
			}
			out = append(out, b)
		}
		done <- result{batches: out, elapsed: time.Since(start)}
	}()

	time.Sleep(150 * time.Millisecond) // let the poll park
	mustIngest(t, s, batchRows(7))

	select {
	case r := <-done:
		if len(r.batches) != 1 || r.batches[0].Seq != 3 {
			t.Fatalf("long poll returned %+v", r.batches)
		}
		if r.elapsed >= 5*time.Second {
			t.Fatalf("long poll only returned at the deadline (%s), not on ingest", r.elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never returned after ingest")
	}
}

func TestReplicationTruncationGapIs410(t *testing.T) {
	dir := t.TempDir()
	cfg := replConfig(dir)
	cfg.Durability.SegmentBytes = 4 << 10
	cfg.Durability.RetainCheckpoints = 1
	s, ts := newTestServer(t, cfg)

	// Enough batches and refits that truncation discards early segments.
	for i := 0; i < 40; i++ {
		mustIngest(t, s, batchRows(i))
		if i%8 == 7 {
			mustRefit(t, s)
		}
	}
	mustRefit(t, s)
	st := s.DurabilityStats()
	if st.WAL.FirstSeq <= 1 {
		t.Skipf("no truncation happened (first_seq=%d); segment size too large for this corpus", st.WAL.FirstSeq)
	}

	resp, err := http.Get(ts.URL + "/replication/wal?from=1&wait=0s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("truncated-history poll status %d, want 410", resp.StatusCode)
	}
	// The surviving history still streams.
	if got := pollWAL(t, ts.URL, st.WAL.FirstSeq, "late"); len(got) == 0 {
		t.Fatal("poll at first_seq returned nothing")
	}
}

func TestReplicationCursorPinsAndEviction(t *testing.T) {
	dir := t.TempDir()
	cfg := replConfig(dir)
	cfg.Durability.SegmentBytes = 4 << 10
	cfg.Durability.RetainCheckpoints = 1
	cfg.Replication.MaxLagBatches = 8
	cfg.Replication.CursorTTL = time.Hour // lag, not staleness, evicts here
	s, ts := newTestServer(t, cfg)

	mustIngest(t, s, batchRows(0))
	mustRefit(t, s)
	pollWAL(t, ts.URL, 1, "slow") // cursor registered at 0

	// While the follower is within the lag bound its history is pinned.
	mustIngest(t, s, batchRows(1))
	mustRefit(t, s)
	if got := pollWAL(t, ts.URL, 1, "slow"); len(got) == 0 || got[0].Seq != 1 {
		t.Fatalf("pinned history unavailable: %+v", got)
	}

	// Push the log far past MaxLagBatches without further polls: the next
	// checkpoint evicts the cursor and truncation proceeds.
	for i := 2; i < 30; i++ {
		mustIngest(t, s, batchRows(i))
		if i%4 == 0 {
			mustRefit(t, s)
		}
	}
	mustRefit(t, s)
	if cs := s.DurabilityStats().ReplicationCursors; len(cs) != 0 {
		t.Fatalf("lagging cursor survived eviction: %+v", cs)
	}
}

func TestFollowerModeRejectsWritesAndRefits(t *testing.T) {
	cfg := replConfig(t.TempDir())
	cfg.FollowerOf = "http://primary.example:8080"
	s, ts := newTestServer(t, cfg)

	if _, err := s.Ingest(batchRows(0)); err != ErrFollower {
		t.Fatalf("Ingest on follower: %v, want ErrFollower", err)
	}
	if _, err := s.Refit(""); err != ErrFollower {
		t.Fatalf("Refit on follower: %v, want ErrFollower", err)
	}

	resp := postClaims(t, ts.URL, batchRows(0))
	var body struct {
		Error   string `json:"error"`
		Primary string `json:"primary"`
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /claims on follower: status %d, want 503", resp.StatusCode)
	}
	decodeJSON(t, resp, &body)
	if body.Primary != "http://primary.example:8080" {
		t.Fatalf("claims rejection payload %+v", body)
	}
	resp2, err := http.Post(ts.URL+"/refit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /refit on follower: status %d, want 503", resp2.StatusCode)
	}
}

func TestFollowerModeRequiresDurability(t *testing.T) {
	cfg := testConfig(RefitFull)
	cfg.FollowerOf = "http://primary.example:8080"
	if _, err := New(cfg); err == nil {
		t.Fatal("follower without durability was accepted")
	}
}

// TestApplyReplicatedMirrorsPrimary drives a follower directly through
// ApplyReplicated with the primary's own log records and asserts the
// snapshots come out bit-identical, marker for marker.
func TestApplyReplicatedMirrorsPrimary(t *testing.T) {
	prim, _ := newTestServer(t, replConfig(t.TempDir()))
	folCfg := replConfig(t.TempDir())
	folCfg.FollowerOf = "http://primary.invalid"
	fol, _ := newTestServer(t, folCfg)

	for i := 0; i < 3; i++ {
		mustIngest(t, prim, batchRows(i))
		if i%2 == 1 {
			mustRefit(t, prim)
		}
	}
	mustRefit(t, prim)

	// Ship the primary's WAL verbatim.
	var shipped []wal.Batch
	if err := prim.dur.log.Replay(1, func(b wal.Batch) error {
		shipped = append(shipped, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, b := range shipped {
		if err := fol.ApplyReplicated(b); err != nil {
			t.Fatalf("ApplyReplicated(seq=%d): %v", b.Seq, err)
		}
	}
	mustEqualSnapshots(t, fol.Snapshot(), prim.Snapshot())
	if next := fol.NextReplicationSeq(); next != shipped[len(shipped)-1].Seq+1 {
		t.Fatalf("NextReplicationSeq = %d, want %d", next, shipped[len(shipped)-1].Seq+1)
	}

	// Out-of-order and gapped records are rejected, not applied.
	if err := fol.ApplyReplicated(wal.Batch{Seq: shipped[len(shipped)-1].Seq + 5, Rows: batchRows(9)}); err == nil {
		t.Fatal("gapped record applied")
	}
}

// TestReplicationWireFormatMatchesLog confirms what the endpoint streams
// is byte-identical to the log's on-disk framing: a follower can append
// the received frames to its own log without re-encoding.
func TestReplicationWireFormatMatchesLog(t *testing.T) {
	s, ts := newTestServer(t, replConfig(t.TempDir()))
	mustIngest(t, s, batchRows(3))
	mustRefit(t, s)

	resp, err := http.Get(ts.URL + "/replication/wal?from=1&wait=0s")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var local []byte
	if err := s.dur.log.Replay(1, func(b wal.Batch) error {
		local = wal.EncodeBatch(local, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, local) {
		t.Fatalf("wire bytes (%d) differ from log framing (%d)", len(wire), len(local))
	}
}
