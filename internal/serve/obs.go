package serve

import (
	"time"

	"latenttruth/internal/obs"
	"latenttruth/internal/wal"
)

// ObsConfig tunes the server's observability surface. The zero value is
// fully instrumented with defaults — metrics cost a handful of atomic
// adds per operation, cheap enough to leave on everywhere.
type ObsConfig struct {
	// Disabled turns off metric collection and the HTTP middleware. The
	// registry still exists (GET /metrics serves build info and uptime),
	// but nothing on the ingest/refit/WAL paths records — this is the
	// uninstrumented comparator the instrumentation-overhead benchmark
	// measures against.
	Disabled bool
	// SlowRequest logs any request slower than this as a structured warn
	// event with its route, status and duration. Zero disables.
	SlowRequest time.Duration
	// LogLevel gates the server's logger (default info).
	LogLevel obs.Level
}

// serveMetrics is the server's instrument set. A nil *serveMetrics (the
// ObsConfig.Disabled state) makes every helper a no-op, so call sites
// never branch.
type serveMetrics struct {
	ingestRows     *obs.Counter
	ingestBatches  *obs.Counter
	ingestRejected *obs.Counter

	refits         *obs.CounterVec // {mode}
	refitErrors    *obs.Counter
	refitSeconds   *obs.Histogram
	refitPhase     *obs.HistogramVec // {phase}
	refitDirty     *obs.Gauge
	refitFreshness *obs.Gauge
	decisionFlips  *obs.Counter

	checkpoints    *obs.Counter
	checkpointErrs *obs.Counter
	checkpointSecs *obs.Histogram

	walAppend *obs.Histogram
	walFsync  *obs.Histogram
	walRolls  *obs.Counter

	longpollSecs *obs.Histogram

	encodeFailures *obs.Counter
}

// walBuckets resolves the microsecond scale of WAL appends and fsyncs,
// which the request-latency ladder (starting at 100µs) would flatten.
var walBuckets = []float64{
	0.000001, 0.000005, 0.00001, 0.00005, 0.0001, 0.0005,
	0.001, 0.005, 0.025, 0.1, 0.5,
}

func newServeMetrics(r *obs.Registry) *serveMetrics {
	return &serveMetrics{
		ingestRows: r.Counter("ingest_rows_total",
			"Claim rows accepted into the mutation log."),
		ingestBatches: r.Counter("ingest_batches_total",
			"Claim batches accepted into the mutation log."),
		ingestRejected: r.Counter("ingest_rejected_batches_total",
			"Claim batches rejected by validation or WAL append failure."),
		refits: r.CounterVec("refit_total",
			"Published refits, by the mode that produced the snapshot.", "mode"),
		refitErrors: r.Counter("refit_errors_total",
			"Refit attempts that failed after their drain (resolved by carry)."),
		refitSeconds: r.Histogram("refit_seconds",
			"End-to-end refit duration: drain, fit and publish.", nil),
		refitPhase: r.HistogramVec("refit_phase_seconds",
			"Refit duration by lifecycle phase.", nil, "phase"),
		refitDirty: r.Gauge("refit_dirty_entities",
			"Entities the last dirty refit re-swept (0 after a full refit)."),
		refitFreshness: r.Gauge("refit_freshness_seconds",
			"Ingest-to-publish staleness bound of the published snapshot."),
		decisionFlips: r.Counter("refit_decision_flips_total",
			"Facts whose thresholded truth decision changed across a refit."),
		checkpoints: r.Counter("checkpoint_total",
			"Checkpoints written and retained."),
		checkpointErrs: r.Counter("checkpoint_errors_total",
			"Checkpoint attempts that failed (the WAL still covers the state)."),
		checkpointSecs: r.Histogram("checkpoint_seconds",
			"Checkpoint write + prune + WAL truncation duration.", nil),
		walAppend: r.Histogram("wal_append_seconds",
			"WAL batch append latency, including any inline fsync.", walBuckets),
		walFsync: r.Histogram("wal_fsync_seconds",
			"WAL fsync latency.", walBuckets),
		walRolls: r.Counter("wal_segment_rolls_total",
			"WAL segment rotations (seal + new segment)."),
		longpollSecs: r.Histogram("replication_longpoll_seconds",
			"Time /replication/wal polls spent waiting and streaming.", nil),
		encodeFailures: r.Counter("encode_failures_total",
			"Responses whose JSON encoding or socket write failed mid-body."),
	}
}

// walMetrics adapts the instrument set to the WAL's callback hooks; nil
// when metrics are disabled, which keeps the WAL entirely hook-free.
func (m *serveMetrics) walMetrics() *wal.Metrics {
	if m == nil {
		return nil
	}
	return &wal.Metrics{
		AppendSeconds: m.walAppend.Observe,
		FsyncSeconds:  m.walFsync.Observe,
		SegmentRoll:   m.walRolls.Inc,
	}
}

// ingested accounts one Ingest outcome.
func (m *serveMetrics) ingested(rows int, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.ingestRejected.Inc()
		return
	}
	m.ingestBatches.Inc()
	m.ingestRows.Add(uint64(rows))
}

// initObs builds the server's registry, leveled logger, instrument set
// and HTTP middleware. Called from New before openDurable, which hangs
// WAL hooks and scrape-time gauges off the instruments created here.
func (s *Server) initObs() {
	s.reg = obs.NewRegistry()
	s.logger = obs.NewLogger(s.cfg.Logger, s.cfg.Obs.LogLevel)
	s.reg.GaugeVec("build_info",
		"Build identity; the value is always 1, the identity is in the labels.",
		"version", "commit").With(obs.Version, obs.Commit).Set(1)
	s.reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	if s.cfg.Obs.Disabled {
		return
	}
	s.met = newServeMetrics(s.reg)
	s.httpMW = obs.NewHTTPMetrics(s.reg, "http_", s.logger, s.cfg.Obs.SlowRequest)
	s.reg.GaugeFunc("pending_mutations",
		"Mutations awaiting compaction into the next snapshot.",
		func() float64 { return float64(s.ingest.Len()) })
	s.reg.GaugeFunc("snapshot_seq",
		"Refit sequence number of the published snapshot (0 before the first).",
		func() float64 {
			if sn := s.snap.Load(); sn != nil {
				return float64(sn.Seq)
			}
			return 0
		})
	// Storage-backend gauges read Backend.Stats(), which is atomics-only —
	// a scrape never contends with an in-flight refit or seal. They are
	// registered on every instrumented server (a memory backend reports
	// zero disk rows/segments) so the cluster-level merge rules always see
	// the family.
	s.reg.GaugeFunc("storage_resident_rows",
		"Claim rows resident on the heap (memory backend: the whole corpus).",
		func() float64 { return float64(s.db.Stats().Resident) })
	s.reg.GaugeFunc("storage_disk_rows",
		"Claim rows covered by sealed on-disk segments.",
		func() float64 { return float64(s.db.Stats().OnDisk) })
	s.reg.GaugeFunc("storage_segments",
		"Sealed claim segments currently open.",
		func() float64 { return float64(s.db.Stats().Segments) })
	s.reg.GaugeFunc("storage_segment_bytes",
		"Total bytes of the sealed claim segments.",
		func() float64 { return float64(s.db.Stats().SegmentBytes) })
}

// Registry returns the server's metric registry (never nil). A follower
// embedder concatenates its own families onto this one's exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// startRefitSpan opens the per-refit trace span: drain → fit → publish,
// one structured JSON log line at End carrying the span id, per-phase
// durations and the refit's identity attributes.
func (s *Server) startRefitSpan() *obs.Span {
	return obs.StartSpan(s.logger, "refit", "drain")
}

// decisionFlips counts facts whose thresholded truth decision changed
// between two snapshots, over the shared fact-id prefix (fact ids are
// stable: the cumulative database only appends). A flip is the unit of
// churn a downstream consumer of /truth actually experiences, which is
// why it is worth a counter next to the refit timings.
func decisionFlips(prev, next *Snapshot) int {
	if prev == nil || next == nil {
		return 0
	}
	n := min(len(prev.Result.Prob), len(next.Result.Prob))
	flips := 0
	for f := 0; f < n; f++ {
		if prev.Result.Predict(f, prev.Threshold) != next.Result.Predict(f, next.Threshold) {
			flips++
		}
	}
	return flips
}
