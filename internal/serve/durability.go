package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/dataset"
	"latenttruth/internal/model"
	"latenttruth/internal/obs"
	"latenttruth/internal/segment"
	"latenttruth/internal/store"
	"latenttruth/internal/stream"
	"latenttruth/internal/wal"
)

// Durability configures write-ahead logging and checkpointing. The zero
// value (empty DataDir) keeps the server memory-only: a restart then loses
// all ingested state, exactly the pre-durability behavior.
type Durability struct {
	// DataDir is the state directory; the WAL lives in DataDir/wal and
	// checkpoints in DataDir/checkpoints. Empty disables durability.
	DataDir string
	// Fsync is the WAL fsync policy (default wal.SyncInterval): "always"
	// survives power loss per acknowledged batch, "interval" bounds loss to
	// FsyncInterval, "never" leaves syncing to the OS — all three survive a
	// SIGKILL of the process, because records hit the page cache per batch.
	Fsync wal.SyncPolicy
	// FsyncInterval bounds unsynced time under the interval policy
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation size (default 64 MiB).
	SegmentBytes int64
	// RetainCheckpoints is how many checkpoints to keep (default 3). WAL
	// segments are only deleted once every retained checkpoint covers
	// them, so recovery can always fall back to an older checkpoint.
	RetainCheckpoints int
}

// Enabled reports whether durability is configured.
func (d Durability) Enabled() bool { return d.DataDir != "" }

// withDefaults fills unset fields.
func (d Durability) withDefaults() Durability {
	if d.Fsync == "" {
		d.Fsync = wal.SyncInterval
	}
	if d.RetainCheckpoints == 0 {
		d.RetainCheckpoints = 3
	}
	return d
}

// durable is the server's durability runtime: nil when not configured.
type durable struct {
	cfg   Durability
	log   *wal.Log
	store *wal.Store
	// recovery is what startup found; immutable after New.
	recovery wal.RecoveryStats
	// qualityDropped is set when a checkpoint's policy state was discarded
	// because the configuration hash did not match.
	qualityDropped bool
	// configHash fingerprints the model-relevant configuration.
	configHash string

	// Checkpoint counters: written under Server.mu (only refits touch
	// them) but read atomically, so GET /durability is never blocked by an
	// in-flight refit — same discipline as the refit counters.
	checkpoints   atomic.Int64
	checkpointErr atomic.Int64
	lastSeq       atomic.Int64
	lastWALSeq    atomic.Uint64
	lastDurationN atomic.Int64 // nanoseconds
}

// configHash fingerprints every configuration field that shapes the model
// state a checkpoint captures. Restoring policy state under a different
// fingerprint would silently change inference, so recovery drops the
// accumulated quality (keeping the triples, which are config-independent)
// when the hash differs.
func configHash(c Config) string {
	h := sha256.New()
	ltm := c.LTM
	fmt.Fprintf(h, "priors=%v|iter=%d|burnin=%d|gap=%d|seed=%d|binary=%t|",
		ltm.Priors, ltm.Iterations, ltm.BurnIn, ltm.SampleGap, ltm.Seed, ltm.BinarySamples)
	names := make([]string, 0, len(ltm.SourcePriors))
	for name := range ltm.SourcePriors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "src:%q=%v|", name, ltm.SourcePriors[name])
	}
	fmt.Fprintf(h, "threshold=%v|policy=%s|fullevery=%d|shards=%d|sync=%d",
		c.Threshold, c.Policy, c.FullEvery, c.Shards, c.SyncEvery)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// openDurable recovers the durable state under cfg.Durability.DataDir and
// installs it into the server: the cumulative database, the accumulated
// quality and refit counters from the newest readable checkpoint, and the
// acknowledged-but-uncheckpointed WAL tail as pending mutations. After it
// returns, the server's in-memory state is bit-identical to the crashed
// process's at its last acknowledged batch (modulo the published snapshot,
// which the next refit reconstructs deterministically).
func (s *Server) openDurable() error {
	dcfg := s.cfg.Durability.withDefaults()
	rec, err := wal.Recover(dcfg.DataDir, wal.Options{
		SegmentBytes: dcfg.SegmentBytes,
		Sync:         dcfg.Fsync,
		SyncInterval: dcfg.FsyncInterval,
		Metrics:      s.met.walMetrics(),
	})
	if err != nil {
		return fmt.Errorf("serve: recovering %s: %w", dcfg.DataDir, err)
	}
	d := &durable{
		cfg:        dcfg,
		log:        rec.Log,
		store:      rec.Store,
		recovery:   rec.Stats,
		configHash: configHash(s.cfg),
	}
	d.checkpoints.Store(int64(rec.Store.Count()))

	// Reconcile the configured storage kind with what the directory was
	// written by: adopting a memory checkpoint under -storage=segments (or
	// vice versa) would be a silent format migration, so it errors loudly.
	// A cold directory accepts either kind.
	diskKind := rec.Storage
	if diskKind == "" && rec.Checkpoint != nil {
		diskKind = store.StorageMemory
	}
	if diskKind != "" && diskKind != s.cfg.Storage {
		rec.Log.Close()
		return fmt.Errorf("serve: %s was written by storage kind %q but the server is configured for %q; refusing to mix formats",
			dcfg.DataDir, diskKind, s.cfg.Storage)
	}
	switch s.cfg.Storage {
	case store.StorageSegments:
		segDir := wal.SegmentDir(dcfg.DataDir)
		if err := os.MkdirAll(segDir, 0o755); err != nil {
			rec.Log.Close()
			return fmt.Errorf("serve: creating segment directory: %w", err)
		}
		sb, err := store.OpenSegmentBacked(segDir, rec.Segments, rec.DB)
		if err != nil {
			rec.Log.Close()
			return fmt.Errorf("serve: opening segments under %s: %w", dcfg.DataDir, err)
		}
		s.db = sb
		if n := len(rec.Segments); n > 0 {
			st := sb.Stats()
			s.logf("serve: storage=segments: opened %d segments (%d rows on disk, %d bytes, no CSV replay)",
				n, st.OnDisk, st.SegmentBytes)
		}
	default:
		s.db = store.NewMemoryFrom(rec.DB)
	}
	s.ingest.log = rec.Log
	if cp := rec.Checkpoint; cp != nil {
		m := cp.Manifest
		s.refits.Store(m.Refits)
		s.fullRefits.Store(m.FullRefits)
		s.dirtyRefits.Store(m.DirtyRefits)
		s.walSeqCompacted.Store(m.WALSeq)
		s.totalCompacted = m.IngestedTotal
		s.ingest.restoreTotal(m.IngestedTotal)
		d.lastSeq.Store(m.Seq)
		d.lastWALSeq.Store(m.WALSeq)
		switch {
		case len(m.Policy) == 0:
			// Nothing to restore; the first refit will be full.
		case m.ConfigHash != d.configHash:
			d.qualityDropped = true
			s.warnf("serve: checkpoint %d config hash %s != %s; discarding accumulated quality (next refit is full)",
				m.Seq, m.ConfigHash, d.configHash)
		default:
			var st stream.State
			if err := json.Unmarshal(m.Policy, &st); err != nil {
				rec.Log.Close()
				return fmt.Errorf("serve: checkpoint %d policy state: %w", m.Seq, err)
			}
			online, err := stream.RestoreOnline(s.cfg.LTM, st)
			if err != nil {
				rec.Log.Close()
				return fmt.Errorf("serve: checkpoint %d policy state: %w", m.Seq, err)
			}
			online.SetSharding(s.cfg.Shards, s.cfg.SyncEvery)
			s.online = online
		}
	}
	s.dur = d
	s.repl = newReplTracker(rec.Log, s.cfg.Replication.withDefaults())
	if s.met != nil {
		// Follower lag is scraped, not maintained: the cursor set changes
		// as followers register and get evicted, so the gauge family
		// enumerates its children at exposition time.
		s.reg.GaugeVecFunc("replication_follower_lag_batches",
			"WAL records each registered follower trails the log head by.",
			[]string{"follower"}, func() []obs.Sample {
				cursors := s.repl.cursors(d.log.Stats().LastSeq)
				out := make([]obs.Sample, len(cursors))
				for i, c := range cursors {
					out[i] = obs.Sample{LabelValues: []string{c.ID}, Value: float64(c.LagBatches)}
				}
				return out
			})
	}
	// Restore the published snapshot from the checkpoint's posterior before
	// replaying the tail, so a refit marker replayed below (or the first
	// dirty refit after startup) extends the exact previous posterior the
	// checkpointed process had published. Requires restored policy state:
	// without the accumulator the posterior alone cannot continue the
	// fast-path refit chain, and the next (full) refit rebuilds everything.
	if cp := rec.Checkpoint; cp != nil && s.online != nil {
		if err := s.restoreSnapshot(cp); err != nil {
			s.warnf("serve: checkpoint %d: restoring published snapshot: %v (serving resumes at the next refit)",
				cp.Manifest.Seq, err)
		}
	}
	for _, b := range rec.Tail {
		s.ingest.replay(b)
		// A refit marker in the tail is a refit whose checkpoint never
		// landed (the checkpoint write failed or the crash beat it):
		// re-running it here reproduces the exact post-refit state — and
		// re-attempts the missing checkpoint.
		if ov, _, ok := parseRefitNote(b); ok {
			if _, err := s.refit(ov, false); err != nil && err != ErrNoData {
				s.warnf("serve: recovery: replaying refit marker seq=%d: %v", b.Seq, err)
			}
		}
	}
	if err := s.bootstrapFollowerSnapshot(); err != nil {
		s.warnf("serve: follower bootstrap snapshot: %v", err)
	}
	if rec.Stats.ColdStart {
		s.logf("serve: durability on (%s, fsync=%s): cold start", dcfg.DataDir, dcfg.Fsync)
	} else {
		s.logf("serve: recovered %s: checkpoint seq=%d wal_seq=%d, replayed %d batches (%d rows), torn=%dB corrupt=%d",
			dcfg.DataDir, rec.Stats.CheckpointSeq, rec.Stats.CheckpointWALSeq,
			rec.Stats.ReplayedBatches, rec.Stats.ReplayedRows, rec.Stats.TornBytes, rec.Stats.CorruptRecords)
	}
	return nil
}

// restoreSnapshot reconstructs the checkpointed serving snapshot: the
// dataset is rebuilt from the recovered database (checkpoint triples only
// at this point — the tail replays after), the posterior comes from the
// checkpoint's posterior.csv bit-exactly, and the quality table from the
// restored accumulator. Checkpoints without a posterior (pre-existing
// directories) restore nothing and the server starts unpublished, exactly
// the old behavior. Called during openDurable, before tail replay.
func (s *Server) restoreSnapshot(cp *wal.Checkpoint) error {
	if s.db.Len() == 0 {
		return nil
	}
	ds := model.BuildRows(s.db.Rows())
	prob, ok, err := cp.ReadPosterior(ds)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	m := cp.Manifest
	// Dirty snapshots inherit the method label of the full anchor whose
	// posterior they extend, so only the closed-form policies report LTMinc.
	method := "LTM"
	if mode := RefitPolicy(m.Mode); mode == RefitIncremental || mode == RefitOnline {
		method = "LTMinc"
	}
	snap, err := newSnapshot(m.Seq, ds, &model.Result{Method: method, Prob: prob},
		core.RankedQuality(s.online.Quality()), s.cfg.Threshold, RefitPolicy(m.Mode), 0, 0, 0, nil)
	if err != nil {
		return err
	}
	snap.DirtyEntities = m.DirtyEntities
	st := s.online.State()
	snap.QualityCounts, snap.QualityPriors = st.Counts, st.Priors
	s.snap.Store(snap)
	return nil
}

// checkpoint persists the just-published snapshot's inputs and advances
// the log: manifest + triples + quality land atomically in the checkpoint
// store, old checkpoints beyond the retention count are pruned, and WAL
// segments covered by every surviving checkpoint are deleted. Called under
// Server.mu right after the snapshot swap. A checkpoint failure does not
// fail the refit — the snapshot is already live and the WAL still covers
// everything — it is logged and counted for /durability.
//
// Cost note: under memory storage every checkpoint serializes the WHOLE
// cumulative database as triples.csv, so the per-refit I/O is O(history).
// Segment storage removes that: rows sealed by earlier checkpoints live
// in immutable segment files that are simply referenced again, and only
// the tail ingested since the previous checkpoint is sealed into one new
// segment — O(new rows) per checkpoint, with the same bit-identical
// restart guarantee. For very large histories on the memory kind, stretch
// RefitInterval / MinBatch; the WAL alone keeps every acknowledged batch
// durable between refits.
func (s *Server) checkpoint(snap *Snapshot) {
	d := s.dur
	start := time.Now()
	m := wal.Manifest{
		Seq:           snap.Seq,
		WALSeq:        s.walSeqCompacted.Load(),
		ConfigHash:    d.configHash,
		Refits:        s.refits.Load(),
		FullRefits:    s.fullRefits.Load(),
		DirtyRefits:   s.dirtyRefits.Load(),
		IngestedTotal: s.totalCompacted,
		Mode:          string(snap.Mode),
		DirtyEntities: snap.DirtyEntities,
	}
	state, err := json.Marshal(s.online.State())
	if err != nil {
		s.checkpointFailed(fmt.Errorf("encoding policy state: %w", err))
		return
	}
	m.Policy = state
	// Corpus coverage: the segment backend seals the rows ingested since
	// the previous checkpoint into one new immutable segment and records
	// the full (append-only) segment list in the manifest instead of a
	// CSV copy; the memory backend keeps writing triples.csv wholesale.
	var triples func(io.Writer) error
	if sb, ok := s.db.(*store.SegmentBacked); ok {
		refs, err := sb.Seal(uint64(snap.Seq))
		if err != nil {
			s.checkpointFailed(fmt.Errorf("sealing segment: %w", err))
			return
		}
		m.Storage = store.StorageSegments
		m.Segments = refs
	} else {
		rows := s.db.Rows()
		triples = func(w io.Writer) error { return dataset.WriteTriplesRows(w, rows) }
	}
	// The posterior makes the checkpoint a full snapshot restore point:
	// recovery (and a bootstrapping follower) reconstructs the published
	// probabilities bit-exactly, so a subsequent dirty refit extends the
	// same previous posterior the primary extended.
	err = d.store.Write(m, triples,
		func(w io.Writer) error { return dataset.WriteQuality(w, s.online.Quality()) },
		func(w io.Writer) error { return dataset.WritePosterior(w, snap.Dataset, snap.Result.Prob) })
	if err != nil {
		s.checkpointFailed(err)
		return
	}
	left, err := d.store.Prune(d.cfg.RetainCheckpoints)
	if err != nil || len(left) == 0 {
		s.checkpointFailed(fmt.Errorf("pruning checkpoints: %w", err))
		return
	}
	// Evict dead or hopelessly lagging follower cursors first, so one
	// stuck follower cannot pin the WAL forever (it re-bootstraps from a
	// checkpoint instead); the survivors then bound the truncation floor
	// inside TruncateBefore.
	for _, name := range s.repl.evict(d.log.Stats().LastSeq) {
		s.warnf("serve: evicted replication cursor %q (stale or past max lag)", name)
	}
	// Truncate behind the OLDEST retained checkpoint so recovery can fall
	// back across the whole retention window.
	if err := d.log.TruncateBefore(left[0].Manifest.WALSeq + 1); err != nil {
		s.checkpointFailed(err)
		return
	}
	// With the new checkpoint published and older ones pruned, any segment
	// file the newest manifest does not reference is garbage — a seal
	// whose checkpoint never committed, or a stale temp. (Retained older
	// checkpoints reference prefixes of the newest list, so keeping only
	// the newest coverage is safe for fallback recovery.)
	if len(m.Segments) > 0 {
		if n, err := segment.Clean(wal.SegmentDir(d.cfg.DataDir), m.Segments); err != nil {
			s.warnf("serve: cleaning orphan segments: %v", err)
		} else if n > 0 {
			s.logf("serve: removed %d orphan segment file(s)", n)
		}
	}
	d.checkpoints.Store(int64(len(left)))
	d.lastSeq.Store(m.Seq)
	d.lastWALSeq.Store(m.WALSeq)
	dur := time.Since(start)
	d.lastDurationN.Store(int64(dur))
	if s.met != nil {
		s.met.checkpoints.Inc()
		s.met.checkpointSecs.Observe(dur.Seconds())
	}
	s.logf("serve: checkpoint seq=%d wal_seq=%d (%d retained, %s)",
		m.Seq, m.WALSeq, len(left), dur.Round(time.Millisecond))
}

// checkpointFailed records a failed checkpoint attempt.
func (s *Server) checkpointFailed(err error) {
	s.dur.checkpointErr.Add(1)
	if s.met != nil {
		s.met.checkpointErrs.Inc()
	}
	s.errorf("serve: checkpoint failed: %v", err)
}

// DurabilityStats is the GET /durability payload.
type DurabilityStats struct {
	Enabled bool   `json:"enabled"`
	DataDir string `json:"data_dir,omitempty"`
	Fsync   string `json:"fsync,omitempty"`

	WAL *wal.Stats `json:"wal,omitempty"`

	Checkpoints       int64   `json:"checkpoints,omitempty"`
	CheckpointErrors  int64   `json:"checkpoint_errors,omitempty"`
	LastCheckpointSeq int64   `json:"last_checkpoint_seq,omitempty"`
	LastCheckpointWAL uint64  `json:"last_checkpoint_wal_seq,omitempty"`
	LastCheckpointMS  float64 `json:"last_checkpoint_ms,omitempty"`

	Recovery       *wal.RecoveryStats `json:"recovery,omitempty"`
	QualityDropped bool               `json:"quality_dropped,omitempty"`

	// ReplicationCursors lists the follower positions currently pinning
	// the WAL's truncation floor (primary side of log shipping).
	ReplicationCursors []ReplicationCursor `json:"replication_cursors,omitempty"`
}

// DurabilityStats reports the WAL, checkpoint and recovery state. It
// reads atomics and the log's own synchronized snapshot — like /stats, it
// is never blocked by an in-flight refit.
func (s *Server) DurabilityStats() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	walStats := d.log.Stats()
	rec := d.recovery
	return DurabilityStats{
		Enabled:            true,
		DataDir:            d.cfg.DataDir,
		Fsync:              string(d.cfg.Fsync),
		WAL:                &walStats,
		Checkpoints:        d.checkpoints.Load(),
		CheckpointErrors:   d.checkpointErr.Load(),
		LastCheckpointSeq:  d.lastSeq.Load(),
		LastCheckpointWAL:  d.lastWALSeq.Load(),
		LastCheckpointMS:   float64(d.lastDurationN.Load()) / float64(time.Millisecond),
		Recovery:           &rec,
		QualityDropped:     d.qualityDropped,
		ReplicationCursors: s.repl.cursors(walStats.LastSeq),
	}
}

// RecoveryStats returns what startup recovery found (zero value when the
// server is not durable).
func (s *Server) RecoveryStats() wal.RecoveryStats {
	if s.dur == nil {
		return wal.RecoveryStats{}
	}
	return s.dur.recovery
}
