package serve

import (
	"errors"
	"fmt"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/stream"
)

// ErrNoData is returned by Refit when no claims have ever been ingested.
var ErrNoData = errors.New("serve: no claims ingested yet")

// Refit drains the mutation log, compacts it into the cumulative dataset,
// fits per the configured policy (override selects a specific policy for
// this refit only; empty means "use the configured one"), and publishes a
// new snapshot. Refits are serialized; readers keep serving the previous
// snapshot until the atomic swap. Drained rows are folded into the
// cumulative database before fitting, so a failed fit loses nothing — the
// next refit covers them. On a durable server every published snapshot is
// also checkpointed and the WAL truncated behind the retention window,
// and a refit-marker control record is written at the drain cut so
// replication followers replay the same refit over the same rows.
//
// On a follower, Refit returns ErrFollower: the refit schedule is
// replicated from the primary (ApplyReplicated), never local.
func (s *Server) Refit(override RefitPolicy) (*Snapshot, error) {
	if s.cfg.FollowerOf != "" {
		return nil, ErrFollower
	}
	return s.refit(override, s.dur != nil)
}

// refit is the shared refit path. mark selects whether a refit marker is
// appended at the drain cut: true on a durable primary, false when the
// marker already exists in the log (follower marker replay, startup
// recovery of a marker the last checkpoint missed).
func (s *Server) refit(override RefitPolicy, mark bool) (*Snapshot, error) {
	if override != "" && !override.valid() {
		return nil, fmt.Errorf("serve: unknown refit policy %q", override)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// The no-data check precedes the drain so an empty server never logs a
	// no-op refit marker.
	if s.db.Len() == 0 && s.ingest.Len() == 0 {
		return nil, ErrNoData
	}

	// fresh keeps only the rows the cumulative database had not seen, so
	// the online fast path never double-counts a retried batch.
	var dr drainResult
	if mark {
		var err error
		if dr, err = s.ingest.DrainMark(refitNote(override)); err != nil {
			s.logf("serve: refit marker: %v (followers lag until the next marker)", err)
		}
	} else {
		dr = s.ingest.Drain()
	}
	var fresh []model.Row
	for _, r := range dr.rows {
		if s.db.AddRow(r) {
			fresh = append(fresh, r)
		}
	}
	// Drained rows are in db from here on (even if the fit below fails),
	// so the watermark the next successful checkpoint covers advances now.
	if dr.lastSeq > s.walSeqCompacted.Load() {
		s.walSeqCompacted.Store(dr.lastSeq)
	}
	if dr.total > s.totalCompacted {
		s.totalCompacted = dr.total
	}
	compacted := len(fresh)
	ds := model.Build(s.db)
	if err := s.ensureOnline(ds.NumFacts()); err != nil {
		return nil, err
	}

	policy := s.cfg.Policy
	if override != "" {
		policy = override
	}
	// The first refit (no accumulated quality yet), and every FullEvery-th
	// one under the fast-path policies, re-anchors quality with a full
	// engine fit.
	done := s.refits.Load()
	full := policy == RefitFull || !s.online.HasQuality() ||
		(s.cfg.FullEvery > 0 && done%int64(s.cfg.FullEvery) == 0)

	start := time.Now()
	var (
		res     *model.Result
		quality []model.SourceQuality
		mode    RefitPolicy
		err     error
	)
	if full {
		var fit *core.FitResult
		if fit, err = s.online.Refit(ds); err != nil {
			return nil, fmt.Errorf("serve: full refit: %w", err)
		}
		res, quality, mode = fit.Result, fit.Quality, RefitFull
	} else {
		if policy == RefitOnline && len(fresh) > 0 {
			if err = s.stepBatch(fresh); err != nil {
				return nil, err
			}
		}
		if res, err = s.online.Predict(ds); err != nil {
			return nil, fmt.Errorf("serve: incremental refit: %w", err)
		}
		quality, mode = s.online.Quality(), policy
	}

	snap, err := newSnapshot(done+1, ds, res, core.RankedQuality(quality),
		s.cfg.Threshold, mode, time.Since(start), compacted)
	if err != nil {
		return nil, fmt.Errorf("serve: building snapshot: %w", err)
	}
	s.snap.Store(snap)
	s.refits.Add(1)
	if full {
		s.fullRefits.Add(1)
	}
	if s.dur != nil {
		s.checkpoint(snap)
	}
	s.logf("serve: refit %d (%s): %d new rows, %s, %s",
		snap.Seq, mode, compacted, snap.Stats, snap.RefitDuration.Round(time.Millisecond))
	return snap, nil
}

// stepBatch runs §5.4 full incremental learning on just the newly arrived
// rows: a Gibbs fit of the batch with the accumulated per-source quality
// priors, folding the batch's expected confusion counts into the
// accumulator (stream.Online.Step). Called under mu.
func (s *Server) stepBatch(rows []model.Row) error {
	batch := model.NewRawDB()
	for _, r := range rows {
		batch.AddRow(r)
	}
	bds := model.Build(batch)
	if _, err := s.online.Step(bds); err != nil {
		return fmt.Errorf("serve: online step: %w", err)
	}
	return nil
}

// ensureOnline lazily creates the §5.4 online state, sizing default priors
// to the first fitted dataset when the base config leaves them zero.
// Called under mu.
func (s *Server) ensureOnline(numFacts int) error {
	if s.online != nil {
		return nil
	}
	base := s.cfg.LTM
	if base.Priors == (core.Priors{}) {
		base.Priors = core.DefaultPriors(numFacts)
	}
	o, err := stream.NewOnline(base)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	o.SetSharding(s.cfg.Shards, s.cfg.SyncEvery)
	s.online = o
	return nil
}

// RefitStats reports the server's refit counters.
type RefitStats struct {
	Refits     int64 `json:"refits"`
	FullRefits int64 `json:"full_refits"`
}

// Refits returns the completed refit counters. It reads atomics, not mu,
// so stats queries are never blocked by an in-flight refit.
func (s *Server) Refits() RefitStats {
	return RefitStats{Refits: s.refits.Load(), FullRefits: s.fullRefits.Load()}
}
