package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/integrate"
	"latenttruth/internal/model"
	"latenttruth/internal/obs"
	"latenttruth/internal/store"
	"latenttruth/internal/stream"
)

// ErrNoData is returned by Refit when no claims have ever been ingested.
var ErrNoData = errors.New("serve: no claims ingested yet")

// refitCarry is the unpublished remainder of a refit attempt that failed
// after its drain cut. The drained rows are already folded into the
// cumulative database and, on a durable primary, the refit marker is
// already in the WAL — so the failed attempt must be resolved (re-fit and
// published, without a second marker or drain) before any new refit runs.
// This is what keeps a live failed-fit primary from diverging against
// followers that replayed the orphan marker, and keeps the compacted
// row count from being lost across attempts.
type refitCarry struct {
	pending   bool
	override  RefitPolicy
	fresh     []model.Row
	dirty     map[string]struct{}
	oldest    time.Time
	compacted int
}

// Refit drains the mutation log, compacts it into the cumulative dataset,
// fits per the configured policy (override selects a specific policy for
// this refit only; empty means "use the configured one"), and publishes a
// new snapshot. Refits are serialized; readers keep serving the previous
// snapshot until the atomic swap. Drained rows are folded into the
// cumulative database before fitting, so a failed fit loses nothing — the
// next refit resolves the failed attempt first (same rows, same marker)
// and only then drains anew. On a durable server every published snapshot
// is also checkpointed and the WAL truncated behind the retention window,
// and a refit-marker control record is written at the drain cut so
// replication followers replay the same refit over the same rows.
//
// On a follower, Refit returns ErrFollower: the refit schedule is
// replicated from the primary (ApplyReplicated), never local.
func (s *Server) Refit(override RefitPolicy) (*Snapshot, error) {
	if s.cfg.FollowerOf != "" {
		return nil, ErrFollower
	}
	return s.refit(override, s.dur != nil)
}

// refit is the shared refit path. mark selects whether a refit marker is
// appended at the drain cut: true on a durable primary, false when the
// marker already exists in the log (follower marker replay, startup
// recovery of a marker the last checkpoint missed).
func (s *Server) refit(override RefitPolicy, mark bool) (*Snapshot, error) {
	if override != "" && !override.valid() {
		return nil, fmt.Errorf("serve: unknown refit policy %q", override)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// The no-data check precedes the drain so an empty server never logs a
	// no-op refit marker.
	if s.db.Len() == 0 && s.ingest.Len() == 0 && !s.carry.pending {
		return nil, ErrNoData
	}

	// A pending carry is a drained-but-unpublished refit: its marker (if
	// any) is already in the log, so it is resolved under its own override
	// and WITHOUT a new marker. Followers replaying that orphan marker run
	// the very refit this resolution reproduces, which is what keeps
	// snapshot Seq aligned seq-for-seq. When the caller is itself a marker
	// replay (mark=false) with nothing further pending, the resolution IS
	// the requested refit. The resolution is its own traced span — its
	// drain phase is ~0 because the rows were drained by the failed
	// attempt it resolves.
	if s.carry.pending {
		snap, err := s.fitPublish(s.carry.override, drainResult{}, s.startRefitSpan())
		if err != nil {
			return nil, err
		}
		if !mark && s.ingest.Len() == 0 {
			return snap, nil
		}
	}

	// The span opens before the drain so its first phase times the drain
	// cut (and the marker append, on a durable primary).
	sp := s.startRefitSpan()
	var dr drainResult
	if mark {
		var err error
		if dr, err = s.ingest.DrainMark(func(dirty int) string {
			return refitNote(override, dirty)
		}); err != nil {
			s.warnf("serve: refit marker: %v (followers lag until the next marker)", err)
		}
	} else {
		dr = s.ingest.Drain()
	}
	return s.fitPublish(override, dr, sp)
}

// fitPublish runs one traced, instrumented fit-and-publish attempt:
// fitLocked does the work while sp tracks its drain → fit → publish
// phases; this wrapper closes the span (attaching the refit's identity
// attributes, or the error) and feeds the same durations into the refit
// histograms. Called under mu.
func (s *Server) fitPublish(override RefitPolicy, dr drainResult, sp *obs.Span) (*Snapshot, error) {
	snap, flips, err := s.fitLocked(override, dr, sp)
	if err != nil {
		if s.met != nil {
			s.met.refitErrors.Inc()
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.SetAttr("seq", snap.Seq).
		SetAttr("mode", string(snap.Mode)).
		SetAttr("policy", string(override)).
		SetAttr("compacted", snap.Compacted).
		SetAttr("dirty", snap.DirtyEntities).
		SetAttr("freshness_ms", float64(snap.Freshness)/float64(time.Millisecond)).
		SetAttr("flips", flips)
	total := sp.End()
	if s.met != nil {
		s.met.refits.With(string(snap.Mode)).Inc()
		s.met.refitSeconds.Observe(total.Seconds())
		for phase, d := range sp.PhaseDurations() {
			s.met.refitPhase.With(phase).Observe(d.Seconds())
		}
		s.met.refitDirty.Set(float64(snap.DirtyEntities))
		s.met.refitFreshness.Set(snap.Freshness.Seconds())
		s.met.decisionFlips.Add(uint64(flips))
	}
	return snap, nil
}

// fitLocked folds the drained rows into the cumulative database, merges
// any carried-over failed attempt, fits per policy, and publishes the
// snapshot, reporting how many thresholded truth decisions the publish
// flipped. Called under mu. On failure the merged drain state is stored
// in s.carry so nothing — rows, dirty set, freshness clock, or the
// compacted count — is lost across attempts.
func (s *Server) fitLocked(override RefitPolicy, dr drainResult, sp *obs.Span) (*Snapshot, int, error) {
	// fresh keeps only the rows the cumulative database had not seen, so
	// the online fast path never double-counts a retried batch.
	var newFresh []model.Row
	for _, r := range dr.rows {
		if s.db.AddRow(r) {
			newFresh = append(newFresh, r)
		}
	}
	// Drained rows are in db from here on (even if the fit below fails),
	// so the watermark the next successful checkpoint covers advances now.
	if dr.lastSeq > s.walSeqCompacted.Load() {
		s.walSeqCompacted.Store(dr.lastSeq)
	}
	if dr.total > s.totalCompacted {
		s.totalCompacted = dr.total
	}

	// Merge the carried failed attempt (if any) with this drain; from here
	// until the publish succeeds, the merged state IS the carry.
	fresh := append(append([]model.Row(nil), s.carry.fresh...), newFresh...)
	dirty := make(map[string]struct{}, len(s.carry.dirty)+len(dr.dirty))
	for e := range s.carry.dirty {
		dirty[e] = struct{}{}
	}
	for e := range dr.dirty {
		dirty[e] = struct{}{}
	}
	for _, r := range fresh {
		dirty[r.Entity] = struct{}{}
	}
	oldest := s.carry.oldest
	if oldest.IsZero() || (!dr.oldest.IsZero() && dr.oldest.Before(oldest)) {
		oldest = dr.oldest
	}
	compacted := s.carry.compacted + len(newFresh)
	s.carry = refitCarry{pending: true, override: override, fresh: fresh,
		dirty: dirty, oldest: oldest, compacted: compacted}

	policy := s.cfg.Policy
	if override != "" {
		policy = override
	}
	// The first refit (no accumulated quality yet), and every FullEvery-th
	// one under the fast-path policies, re-anchors quality with a full
	// engine fit.
	done := s.refits.Load()
	full := policy == RefitFull || s.online == nil || !s.online.HasQuality() ||
		(s.cfg.FullEvery > 0 && done%int64(s.cfg.FullEvery) == 0)
	prev := s.snap.Load()
	if policy == RefitDirty && prev == nil {
		// No previous snapshot to extend (first refit, or recovery without
		// restorable serving state).
		full = true
	}

	// The drain phase ends here: rows folded, carry merged, policy
	// chosen. Everything until the snapshot swap is the fit.
	sp.Phase("fit")
	start := time.Now()
	if s.testFitErr != nil {
		if err := s.testFitErr(); err != nil {
			return nil, 0, err
		}
	}
	var (
		ds            *model.Dataset
		res           *model.Result
		quality       []model.SourceQuality
		mode          RefitPolicy
		dirtyEntities int
		records       []integrate.Record
	)
	fullFit := func(prepared *model.Dataset) error {
		ds = prepared
		if ds == nil {
			ds = model.BuildRows(s.db.Rows())
		}
		if err := s.ensureOnline(ds.NumFacts()); err != nil {
			return err
		}
		fit, err := s.online.Refit(ds)
		if err != nil {
			return fmt.Errorf("serve: full refit: %w", err)
		}
		res, quality, mode = fit.Result, fit.Quality, RefitFull
		return nil
	}
	switch {
	case full:
		if err := fullFit(nil); err != nil {
			return nil, 0, err
		}
	case policy == RefitDirty:
		out, err := s.dirtyFit(prev, fresh, dirty)
		if err != nil {
			return nil, 0, err
		}
		if out.fallback {
			if err := fullFit(out.fallbackDS); err != nil {
				return nil, 0, err
			}
			break
		}
		ds, res, quality, records = out.ds, out.res, out.quality, out.records
		mode, dirtyEntities = RefitDirty, out.dirtyEntities
	default:
		ds = model.BuildRows(s.db.Rows())
		if policy == RefitOnline && len(fresh) > 0 {
			if err := s.stepBatch(fresh); err != nil {
				return nil, 0, err
			}
		}
		var err error
		if res, err = s.online.Predict(ds); err != nil {
			return nil, 0, fmt.Errorf("serve: incremental refit: %w", err)
		}
		quality, mode = s.online.Quality(), policy
	}

	// The fit is done; building the read models, swapping the snapshot
	// and checkpointing is the publish phase.
	sp.Phase("publish")
	var freshness time.Duration
	if !oldest.IsZero() {
		freshness = time.Since(oldest)
	}
	snap, err := newSnapshot(done+1, ds, res, core.RankedQuality(quality),
		s.cfg.Threshold, mode, time.Since(start), compacted, freshness, records)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: building snapshot: %w", err)
	}
	snap.DirtyEntities = dirtyEntities
	// Every policy's published quality is core.QualityFromCounts over the
	// online accumulator's state (Refit replaces the counts with the full
	// fit's expected counts; the fast paths serve the accumulator
	// directly), so that state is the snapshot's quality basis for the
	// cluster-level cross-partition merge.
	if s.online != nil {
		st := s.online.State()
		snap.QualityCounts, snap.QualityPriors = st.Counts, st.Priors
	}
	flips := decisionFlips(prev, snap)
	s.carry = refitCarry{}
	s.snap.Store(snap)
	s.refits.Add(1)
	if mode == RefitFull {
		s.fullRefits.Add(1)
	}
	if mode == RefitDirty {
		s.dirtyRefits.Add(1)
	}
	if s.dur != nil {
		s.checkpoint(snap)
	}
	s.logf("serve: refit %d (%s): %d new rows (%d dirty entities), %s, %s",
		snap.Seq, mode, compacted, len(dirty), snap.Stats, snap.RefitDuration.Round(time.Millisecond))
	return snap, flips, nil
}

// dirtyOutcome is the result of the dirty fast path; fallback asks the
// caller to run a full fit instead (with fallbackDS when the extension
// already produced the full dataset).
type dirtyOutcome struct {
	ds      *model.Dataset
	res     *model.Result
	quality []model.SourceQuality
	// records are the merged records for ds, scattered incrementally from
	// the previous snapshot (clean entities keep their record untouched).
	records       []integrate.Record
	dirtyEntities int
	fallback      bool
	fallbackDS    *model.Dataset
}

// dirtyFit is §5.4's incremental learning scoped to the entities a batch
// touched: the previous snapshot's dataset is extended with the fresh rows
// (clean entities' facts and claims are shared, not rebuilt), only the
// dirty-entity sub-dataset is re-swept against the accumulated per-source
// counts, and the new posteriors are scattered into a copy of the previous
// probability vector — clean entities keep their truth bit-for-bit.
// Called under mu.
func (s *Server) dirtyFit(prev *Snapshot, fresh []model.Row, dirty map[string]struct{}) (dirtyOutcome, error) {
	if len(dirty) == 0 {
		// A forced refit with nothing pending: republish the previous
		// serving state under the next sequence number.
		return dirtyOutcome{ds: prev.Dataset, res: prev.Result, quality: prev.Quality,
			records: prev.Records}, nil
	}
	var ext *store.Extension
	var err error
	if _, ok := s.db.(*store.SegmentBacked); ok {
		// On the segment backend the dirty entities' claim history is
		// re-read through the reader, whose zone maps and blooms skip every
		// segment (and page) that holds no dirty entity — the refit's I/O is
		// proportional to the dirty set, not the corpus.
		ext, err = store.ExtendDirtyScan(prev.Dataset, fresh, dirty, s.db.Reader())
	} else {
		ext, err = store.ExtendDirty(prev.Dataset, fresh, dirty)
	}
	if err != nil {
		// A tracking invariant broke (should not happen); the full path is
		// always correct, so fall back loudly rather than fail the refit.
		s.warnf("serve: dirty refit: %v; falling back to a full refit", err)
		return dirtyOutcome{fallback: true}, nil
	}
	if ext.DirtyEntities == ext.Full.NumEntities() {
		// Everything is dirty: there is no clean remainder to condition on,
		// and a full fit over the (already extended) dataset is the exact
		// answer.
		return dirtyOutcome{fallback: true, fallbackDS: ext.Full}, nil
	}
	fit, err := s.online.StepDirty(ext.Sub, dirtyContribution(prev, dirty))
	if err != nil {
		return dirtyOutcome{}, fmt.Errorf("serve: dirty refit: %w", err)
	}
	// Copy-on-write posterior: prev facts are a prefix of the extended
	// fact table, so the previous probabilities land index-for-index and
	// the dirty facts are overwritten from the sub fit.
	prob := make([]float64, ext.Full.NumFacts())
	copy(prob, prev.Result.Prob)
	for i, gf := range ext.SubFacts {
		prob[gf] = fit.Prob[i]
	}
	// Copy-on-write read models: prev entities are a prefix of the extended
	// entity table, so clean entities keep their merged record untouched and
	// only the dirty (and new) entities' records are re-derived — from the
	// sub fit alone, keeping snapshot construction O(dirty), not O(corpus).
	subRecs, err := integrate.Merge(ext.Sub, fit.Result, s.cfg.Threshold)
	if err != nil {
		return dirtyOutcome{}, fmt.Errorf("serve: dirty refit: %w", err)
	}
	records := make([]integrate.Record, ext.Full.NumEntities())
	copy(records, prev.Records)
	for i, ge := range ext.SubEntities {
		records[ge] = subRecs[i]
	}
	return dirtyOutcome{
		ds:            ext.Full,
		res:           &model.Result{Method: prev.Result.Method, Prob: prob},
		quality:       s.online.Quality(),
		records:       records,
		dirtyEntities: ext.DirtyEntities,
	}, nil
}

// dirtyContribution computes the dirty entities' expected confusion-count
// contribution under the previous snapshot's posterior, keyed by source
// name — the quantity StepDirty subtracts before re-fitting and replaces
// after (counts += new − prev). Entities are walked in ascending id order
// so the float accumulation order is deterministic across primaries,
// followers and recovery.
func dirtyContribution(prev *Snapshot, dirty map[string]struct{}) map[string][2][2]float64 {
	ids := make([]int, 0, len(dirty))
	for name := range dirty {
		if e, ok := prev.entityByName[name]; ok {
			ids = append(ids, e)
		}
	}
	sort.Ints(ids)
	ds, prob := prev.Dataset, prev.Result.Prob
	out := make(map[string][2][2]float64)
	for _, e := range ids {
		for _, f := range ds.FactsByEntity[e] {
			pt := prob[f]
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				o := 0
				if c.Observation {
					o = 1
				}
				acc := out[ds.Sources[c.Source]]
				acc[1][o] += pt
				acc[0][o] += 1 - pt
				out[ds.Sources[c.Source]] = acc
			}
		}
	}
	return out
}

// stepBatch runs §5.4 full incremental learning on just the newly arrived
// rows: a Gibbs fit of the batch with the accumulated per-source quality
// priors, folding the batch's expected confusion counts into the
// accumulator (stream.Online.Step). Called under mu.
func (s *Server) stepBatch(rows []model.Row) error {
	batch := model.NewRawDB()
	for _, r := range rows {
		batch.AddRow(r)
	}
	bds := model.Build(batch)
	if _, err := s.online.Step(bds); err != nil {
		return fmt.Errorf("serve: online step: %w", err)
	}
	return nil
}

// ensureOnline lazily creates the §5.4 online state, sizing default priors
// to the first fitted dataset when the base config leaves them zero.
// Called under mu.
func (s *Server) ensureOnline(numFacts int) error {
	if s.online != nil {
		return nil
	}
	base := s.cfg.LTM
	if base.Priors == (core.Priors{}) {
		base.Priors = core.DefaultPriors(numFacts)
	}
	o, err := stream.NewOnline(base)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	o.SetSharding(s.cfg.Shards, s.cfg.SyncEvery)
	s.online = o
	return nil
}

// RefitStats reports the server's refit counters.
type RefitStats struct {
	Refits      int64 `json:"refits"`
	FullRefits  int64 `json:"full_refits"`
	DirtyRefits int64 `json:"dirty_refits"`
}

// Refits returns the completed refit counters. It reads atomics, not mu,
// so stats queries are never blocked by an in-flight refit.
func (s *Server) Refits() RefitStats {
	return RefitStats{
		Refits:      s.refits.Load(),
		FullRefits:  s.fullRefits.Load(),
		DirtyRefits: s.dirtyRefits.Load(),
	}
}
