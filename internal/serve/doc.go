// Package serve implements the always-on truth-serving layer: a long-lived
// HTTP/JSON daemon that ingests (entity, attribute, source) triples while
// they arrive, periodically refits the Latent Truth Model in the background
// (full engine refit — optionally entity-sharded across cores via
// internal/shard — or the §5.4 incremental/online fast paths, policy
// configurable), and answers truth, quality and stats queries from an
// immutable fitted Snapshot swapped in with an atomic pointer — readers are
// never blocked by a refit and never observe a half-updated model.
//
// The daemon is the production embodiment of the paper's streaming story:
// RefitFull re-anchors on cumulative data (§5.4's periodic retrain),
// RefitIncremental serves Equation 3's closed form from accumulated
// quality, and RefitOnline adds per-batch incremental learning. The truth
// tables served are Definition 4's integrated output (Table 4); quality
// responses follow Table 8's presentation order.
//
// With Config.Durability set, the server is crash-safe (internal/wal):
// every accepted batch is written ahead to a segmented, CRC-framed log
// before the HTTP acknowledgment, every published snapshot checkpoints its
// inputs (cumulative triples, accumulated quality, refit-policy state and
// counters), and startup recovers by loading the newest readable
// checkpoint and replaying the log tail — reconstructing model state
// bit-identical to an uninterrupted run, with torn or corrupt log tails
// detected by CRC and cleanly discarded.
//
// A durable server is also a replication primary: it streams its newest
// checkpoint (GET /replication/checkpoint) and its log
// (GET /replication/wal, long-poll, the WAL's own record framing) to read
// replicas, writes a refit-marker control record at every refit's drain
// cut so followers replay the primary's exact refit schedule, and never
// truncates the log past the slowest live follower (truncation is a
// minimum over the checkpoint bound and per-follower cursors, with
// TTL/max-lag eviction). Config.FollowerOf selects the other side: a
// read-only follower whose batches and refits arrive via ApplyReplicated
// (see internal/replica for the client that drives it).
package serve
