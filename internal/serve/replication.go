package serve

import (
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/model"
	"latenttruth/internal/store"
	"latenttruth/internal/wal"
)

// Primary side of WAL log shipping. A durable server exposes two extra
// endpoints:
//
//	GET /replication/checkpoint        stream the newest checkpoint
//	                                   (MANIFEST.json, triples.csv,
//	                                   quality.csv as one multipart body)
//	GET /replication/wal?from=N        long-poll the log from sequence N,
//	    [&follower=ID][&wait=10s]      streamed in the WAL's own CRC32C
//	                                   record framing (wal.DecodeBatch)
//
// A follower bootstraps from the checkpoint, then tails the log. Each
// poll's from parameter doubles as an acknowledgement: every record below
// it is durably on the follower, so the primary advances (or registers)
// the follower's truncation cursor at from-1 — the WAL is never truncated
// past the slowest live follower. Cursors of followers that stop polling
// (CursorTTL) or fall hopelessly behind (MaxLagBatches) are evicted at
// the next checkpoint; an evicted follower that returns gets 410 Gone and
// re-bootstraps from a fresh checkpoint.
//
// The log carries refit markers (control records written at every drain
// cut), so a follower replays not just the primary's data but its refit
// schedule — snapshot N on the follower is bit-identical to snapshot N on
// the primary.

// ErrFollower is returned by Ingest and Refit on a read-only follower.
var ErrFollower = errors.New("serve: read-only follower (writes and refits go to the primary)")

// Replication tunes the primary side of log shipping. The zero value
// takes all defaults; it only applies to durable servers (the WAL is the
// shipped artifact).
type Replication struct {
	// MaxLagBatches evicts a follower's truncation cursor once it falls
	// this many records behind the newest WAL record, bounding how much
	// log one dead-slow follower can pin (default 65536). The evicted
	// follower re-bootstraps from a checkpoint when it returns.
	MaxLagBatches uint64
	// CursorTTL evicts cursors of followers that stopped polling
	// (default 1m).
	CursorTTL time.Duration
	// LongPoll caps how long GET /replication/wal waits for new records
	// when the follower is caught up (default 10s; ?wait= lowers it).
	LongPoll time.Duration
	// MaxBatchesPerPoll and MaxBytesPerPoll bound one poll response
	// (defaults 1024 records / 4 MiB); a lagging follower just polls
	// again immediately.
	MaxBatchesPerPoll int
	MaxBytesPerPoll   int64
}

// withDefaults fills unset fields.
func (r Replication) withDefaults() Replication {
	if r.MaxLagBatches == 0 {
		r.MaxLagBatches = 65536
	}
	if r.CursorTTL <= 0 {
		r.CursorTTL = time.Minute
	}
	if r.LongPoll <= 0 {
		r.LongPoll = 10 * time.Second
	}
	if r.MaxBatchesPerPoll <= 0 {
		r.MaxBatchesPerPoll = 1024
	}
	if r.MaxBytesPerPoll <= 0 {
		r.MaxBytesPerPoll = 4 << 20
	}
	return r
}

// refitNotePrefix tags refit-marker control records in the WAL.
const refitNotePrefix = "refit:"

// refitNote encodes a refit marker's note: the policy override the refit
// ran under (empty for the configured policy) and the dirty-set watermark —
// the number of distinct entities the drained rows touched at the cut. A
// follower derives its own dirty set from the replicated batches; the
// watermark lets it detect (and log) a divergence instead of silently
// re-sweeping a different entity set.
func refitNote(override RefitPolicy, dirtyEntities int) string {
	return fmt.Sprintf("%s%s|dirty=%d", refitNotePrefix, override, dirtyEntities)
}

// parseRefitNote reports whether b is a refit marker and, if so, the
// policy override and dirty-set watermark it carries (-1 when the marker
// predates the watermark). Unknown control records are not markers:
// they replicate and persist but trigger nothing, which is what lets a
// future primary add new control types without breaking old followers.
func parseRefitNote(b wal.Batch) (RefitPolicy, int, bool) {
	if !b.IsControl() || !strings.HasPrefix(b.Note, refitNotePrefix) {
		return "", -1, false
	}
	rest := strings.TrimPrefix(b.Note, refitNotePrefix)
	policy, attrs, ok := strings.Cut(rest, "|")
	dirty := -1
	if ok {
		if v, found := strings.CutPrefix(attrs, "dirty="); found {
			if n, err := strconv.Atoi(v); err == nil {
				dirty = n
			}
		}
	}
	return RefitPolicy(policy), dirty, true
}

// notifier is a broadcast edge: Wait returns a channel that closes at the
// next Wake. Replication long-polls park on it instead of spinning.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func newNotifier() *notifier { return &notifier{ch: make(chan struct{})} }

// Wait returns the channel the next Wake will close.
func (n *notifier) Wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ch
}

// Wake releases every current waiter.
func (n *notifier) Wake() {
	n.mu.Lock()
	close(n.ch)
	n.ch = make(chan struct{})
	n.mu.Unlock()
}

// replTracker manages the follower cursors registered on the WAL. The
// wal.Log owns the truncation arithmetic; the tracker owns the lifecycle
// (refresh on poll, eviction by TTL or lag).
type replTracker struct {
	log *wal.Log
	cfg Replication

	mu        sync.Mutex
	followers map[string]*followerCursor
}

type followerCursor struct {
	cur      *wal.Cursor
	lastSeen time.Time
}

func newReplTracker(log *wal.Log, cfg Replication) *replTracker {
	return &replTracker{log: log, cfg: cfg, followers: make(map[string]*followerCursor)}
}

// touch registers or refreshes follower id's cursor: the follower has
// acknowledged every record up to and including acked.
func (t *replTracker) touch(id string, acked uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.followers[id]
	if !ok {
		f = &followerCursor{cur: t.log.OpenCursor(id, acked)}
		t.followers[id] = f
	}
	f.cur.Advance(acked)
	f.lastSeen = time.Now()
}

// evict closes cursors of followers that stopped polling or fell past the
// lag bound, returning the evicted ids. Called from the checkpoint path,
// right before truncation.
func (t *replTracker) evict(lastSeq uint64) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var evicted []string
	now := time.Now()
	for id, f := range t.followers {
		stale := now.Sub(f.lastSeen) > t.cfg.CursorTTL
		lagging := lastSeq > f.cur.Seq() && lastSeq-f.cur.Seq() > t.cfg.MaxLagBatches
		if stale || lagging {
			f.cur.Close()
			delete(t.followers, id)
			evicted = append(evicted, id)
		}
	}
	return evicted
}

// ReplicationCursor is one follower's position as seen by the primary.
type ReplicationCursor struct {
	ID string `json:"id"`
	// AckedSeq is the newest WAL record the follower has durably applied.
	AckedSeq uint64 `json:"acked_seq"`
	// LagBatches is how many records the follower trails the log head by.
	LagBatches uint64 `json:"lag_batches"`
	// IdleMS is the time since the follower's last poll.
	IdleMS float64 `json:"idle_ms"`
}

// cursors reports the registered follower cursors, sorted by id.
func (t *replTracker) cursors(lastSeq uint64) []ReplicationCursor {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	idle := make(map[string]time.Duration, len(t.followers))
	now := time.Now()
	for id, f := range t.followers {
		idle[id] = now.Sub(f.lastSeen)
	}
	t.mu.Unlock()
	out := make([]ReplicationCursor, 0, len(idle))
	for _, ci := range t.log.Cursors() {
		d, ok := idle[ci.Name]
		if !ok {
			continue // a cursor this tracker doesn't own
		}
		c := ReplicationCursor{ID: ci.Name, AckedSeq: ci.Seq, IdleMS: float64(d) / float64(time.Millisecond)}
		if lastSeq > ci.Seq {
			c.LagBatches = lastSeq - ci.Seq
		}
		out = append(out, c)
	}
	return out
}

// ApplyReplicated applies one primary log record to a follower: the
// record is mirrored into the follower's own WAL under the primary's
// sequence number, then a claim batch joins the pending set while a refit
// marker runs the refit it stands for — the same refit, over the same
// rows, that the primary ran at this point in its log. Records must
// arrive in sequence order (the replication client guarantees it).
//
// The call is idempotent for the newest record: re-applying a refit
// marker that is already the local log head skips the (duplicate) append
// and just re-runs the refit, so a caller can retry a marker whose refit
// failed transiently instead of advancing past it and silently diverging.
func (s *Server) ApplyReplicated(b wal.Batch) error {
	select {
	case <-s.stop:
		return fmt.Errorf("serve: server is shut down")
	default:
	}
	if s.dur == nil {
		return fmt.Errorf("serve: ApplyReplicated requires durability")
	}
	if !b.IsControl() || b.Seq != s.ingest.LastSeq() {
		if err := s.ingest.appendReplicated(b); err != nil {
			return err
		}
	}
	if ov, wantDirty, ok := parseRefitNote(b); ok {
		// The watermark check is advisory: a mismatch means the follower's
		// derived dirty set differs from what the primary drained at this
		// marker (lost batch, divergent validation, version skew). The refit
		// still runs — the FullEvery backstop re-converges state — but the
		// divergence is surfaced instead of silent.
		if wantDirty >= 0 && !s.carryPending() {
			if have := s.ingest.DirtyLen(); have != wantDirty {
				s.warnf("serve: refit marker seq=%d carries dirty watermark %d, local pending set has %d entities (divergence?)",
					b.Seq, wantDirty, have)
			}
		}
		if _, err := s.refit(ov, false); err != nil && err != ErrNoData {
			return fmt.Errorf("serve: replicated refit (marker seq=%d): %w", b.Seq, err)
		}
	}
	return nil
}

// carryPending reports whether a drained-but-unpublished refit attempt is
// outstanding (its dirty set has already left the ingest log).
func (s *Server) carryPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.carry.pending
}

// NextReplicationSeq returns the sequence number of the first log record
// this server still needs from its primary: everything below it is either
// checkpoint-covered or in the local WAL.
func (s *Server) NextReplicationSeq() uint64 {
	next := s.walSeqCompacted.Load()
	if ls := s.ingest.LastSeq(); ls > next {
		next = ls
	}
	return next + 1
}

// bootstrapFollowerSnapshot publishes a follower's initial serving state
// after recovery when no refit marker did: the LTMinc posterior over the
// recovered database from the checkpointed source quality. It touches no
// accumulator state, so replaying the primary's next marker still lands
// bit-identically; it just means a freshly bootstrapped follower serves
// immediately instead of returning 503 until the primary next refits.
func (s *Server) bootstrapFollowerSnapshot() error {
	if s.cfg.FollowerOf == "" || s.Snapshot() != nil || s.db.Len() == 0 {
		return nil
	}
	if s.online == nil || !s.online.HasQuality() {
		s.warnf("serve: follower has no reusable policy state (config mismatch?); serving starts at the first replicated refit")
		return nil
	}
	ds := model.BuildRows(s.db.Rows())
	res, err := s.online.Predict(ds)
	if err != nil {
		return err
	}
	snap, err := newSnapshot(s.refits.Load(), ds, res, core.RankedQuality(s.online.Quality()),
		s.cfg.Threshold, RefitIncremental, 0, 0, 0, nil)
	if err != nil {
		return err
	}
	s.snap.Store(snap)
	return nil
}

// checkpointFiles is the fixed part order of a /replication/checkpoint
// response: the manifest first so the receiver can verify the rest. The
// posterior part is optional — checkpoints written before snapshot
// restoration existed don't have one, and the manifest's PosteriorCRC
// tells the receiver whether to expect it.
var checkpointFiles = []string{"MANIFEST.json", "triples.csv", "quality.csv", wal.PosteriorName}

// handleReplCheckpoint streams the newest checkpoint as a multipart body.
// The files are opened before anything is written, so a concurrent prune
// cannot tear the response (unlinked files stay readable through the open
// descriptors).
func (s *Server) handleReplCheckpoint(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.db.(*store.SegmentBacked); ok {
		// Segment checkpoints carry no triples.csv, so there is nothing a
		// follower could bootstrap its corpus from; replicated primaries
		// must run -storage=memory (enforced for followers at config time,
		// surfaced here for primaries a follower is pointed at anyway).
		s.writeError(w, http.StatusNotImplemented, codeStorageUnsupported, errors.New(
			"serve: checkpoint bootstrap is not supported from a segment-storage primary; run the primary with -storage=memory to replicate"))
		return
	}
	cps, _, err := s.dur.store.Checkpoints()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	if len(cps) == 0 {
		s.writeError(w, http.StatusNotFound, codeNotFound, errors.New("serve: no checkpoint yet (the primary has not refitted)"))
		return
	}
	cp := cps[len(cps)-1]
	names := make([]string, 0, len(checkpointFiles))
	files := make([]*os.File, 0, len(checkpointFiles))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, name := range checkpointFiles {
		f, err := os.Open(filepath.Join(cp.Dir, name))
		if os.IsNotExist(err) && name == wal.PosteriorName {
			continue // older checkpoint without a posterior part
		}
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		names = append(names, name)
		files = append(files, f)
	}
	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set("X-Checkpoint-Seq", strconv.FormatInt(cp.Manifest.Seq, 10))
	for i, name := range names {
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Disposition", fmt.Sprintf(`attachment; filename=%q`, name))
		hdr.Set("Content-Type", "application/octet-stream")
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			return // connection-level failure; nothing useful to send
		}
		if _, err := io.Copy(pw, files[i]); err != nil {
			return
		}
	}
	mw.Close()
}

// errPollFull stops a replay once the per-poll response bounds are hit.
var errPollFull = errors.New("poll response full")

// handleReplWAL streams log records from ?from= in the WAL's own record
// framing, long-polling up to the configured bound when the follower is
// caught up. ?follower= registers the caller's truncation cursor with
// from-1 acknowledged. 410 Gone means the requested history has been
// truncated away (the follower was evicted): re-bootstrap from
// /replication/checkpoint.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if s.met != nil {
		// Entry-to-response time: dominated by the long-poll wait on a
		// caught-up follower, so the histogram reads as "how long do
		// followers park here".
		defer s.met.longpollSecs.ObserveSince(time.Now())
	}
	cfg := s.repl.cfg
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, errors.New("serve: replication requires ?from=<seq> >= 1"))
		return
	}
	wait := cfg.LongPoll
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: bad wait %q", ws))
			return
		}
		if d < wait {
			wait = d
		}
	}
	if id := r.URL.Query().Get("follower"); id != "" {
		// Registering before reading also pins records >= from against a
		// concurrent truncation for the duration of the poll.
		s.repl.touch(id, from-1)
	}

	deadline := time.Now().Add(wait)
	for {
		wake := s.walNotify.Wait() // arm before reading: no lost wakeups
		st := s.dur.log.Stats()
		if (st.Segments > 0 && from < st.FirstSeq) || (st.Segments == 0 && from <= st.LastSeq) {
			s.writeError(w, http.StatusGone, codeWALTruncated, fmt.Errorf(
				"serve: log history before seq %d is truncated; re-bootstrap from /replication/checkpoint", st.FirstSeq))
			return
		}
		// A follower asking past head+1 holds records this log never wrote:
		// the primary lost state (restored from an older backup, wiped data
		// dir). Erroring — instead of long-polling empty responses forever —
		// surfaces the divergence in the follower's logs and poll_errors.
		if from > st.LastSeq+1 {
			s.writeError(w, http.StatusConflict, codeFollowerAhead, fmt.Errorf(
				"serve: follower is ahead of this log (from=%d, head=%d): primary state was lost or replaced", from, st.LastSeq))
			return
		}
		var buf []byte
		n := 0
		err := s.dur.log.Replay(from, func(b wal.Batch) error {
			if n >= cfg.MaxBatchesPerPoll || int64(len(buf)) >= cfg.MaxBytesPerPoll {
				return errPollFull
			}
			buf = wal.EncodeBatch(buf, b)
			n++
			return nil
		})
		if err != nil && err != errPollFull {
			s.writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		if remaining := time.Until(deadline); n == 0 && remaining > 0 {
			select {
			case <-wake:
				continue // new records (or a marker) landed; re-read
			case <-time.After(remaining):
				// Deadline: fall through to the empty response.
			case <-s.stop:
				// Shutting down: the empty response tells the follower to
				// retry (and find the connection refused, and back off).
			case <-r.Context().Done():
				return
			}
		}
		// n may be 0 here: an empty 200 tells a caught-up follower to poll
		// again.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-WAL-Records", strconv.Itoa(n))
		w.Write(buf)
		return
	}
}
