package serve

import (
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/integrate"
	"latenttruth/internal/model"
	"latenttruth/internal/query"
	"latenttruth/internal/store"
)

// Typed not-found and cursor errors, shared with the query engine so the
// snapshot accessors, the engine and the HTTP layer walk one error path
// (the HTTP layer maps the not-found triple to 404 and the stale cursor
// to 410 with a restart signal).
var (
	ErrNoEntity    = query.ErrNoEntity
	ErrNoFact      = query.ErrNoFact
	ErrNoSource    = query.ErrNoSource
	ErrStaleCursor = query.ErrStaleCursor
)

// TruthRow is one row of the served truth table: a fact with its posterior
// truth probability and thresholded prediction (Definition 4).
type TruthRow struct {
	Entity      string  `json:"entity"`
	Attribute   string  `json:"attribute"`
	Probability float64 `json:"probability"`
	Predicted   bool    `json:"predicted"`
}

// Snapshot is one immutable serving state: the compacted dataset paired
// with the fit that produced the current truth estimates, plus the derived
// read models (truth index, integrated record table, corpus stats) that
// make hot queries map lookups instead of recomputation. Snapshots are
// built off the request path and published wholesale via an atomic pointer
// swap; all fields and methods are read-only after publication.
type Snapshot struct {
	// Seq is the monotonically increasing refit sequence number.
	Seq int64
	// Dataset is the compacted cumulative dataset the fit ran on.
	Dataset *model.Dataset
	// Result holds the per-fact truth probabilities.
	Result *model.Result
	// Quality is the per-source quality table in Table 8 order
	// (decreasing sensitivity).
	Quality []model.SourceQuality
	// Records is the cached integrated record table: one merged record per
	// entity at Threshold, in dataset entity order.
	Records []integrate.Record
	// Stats summarizes the dataset's shape.
	Stats store.Stats
	// Threshold is the integration threshold the truth table was cut at.
	Threshold float64
	// Mode is the refit policy that produced this snapshot ("full",
	// "incremental", "online" or "dirty").
	Mode RefitPolicy
	// FittedAt and RefitDuration record when and how long the refit ran.
	FittedAt      time.Time
	RefitDuration time.Duration
	// Compacted is the number of mutation-log rows folded into this
	// snapshot's dataset (new rows, after de-duplication), including rows
	// carried over from failed refit attempts.
	Compacted int
	// Freshness is the ingest-to-publish staleness bound: how long the
	// oldest row folded into this snapshot waited between acceptance and
	// publication (zero when the refit drained nothing).
	Freshness time.Duration
	// DirtyEntities is the number of entities the dirty fast path re-swept
	// to produce this snapshot (zero for full/incremental/online refits).
	DirtyEntities int
	// QualityCounts is the per-source expected confusion-count basis of
	// Quality — the streaming accumulator's state at publish time, keyed by
	// source name and indexed [truth][observation]. Under every refit
	// policy Quality equals core.QualityFromCounts over these cells plus
	// QualityPriors, which is what lets a cluster router sum counts across
	// partitions and re-apply the closed form to get a merged quality table
	// on the same footing as a single fit. Nil on snapshots that predate a
	// fit (e.g. recovery with a dropped accumulator).
	QualityCounts map[string][2][2]float64
	// QualityPriors are the base Beta priors paired with QualityCounts.
	QualityPriors core.Priors

	// factByName indexes fact ids by (entity, attribute) name.
	factByName map[[2]string]int
	// entityByName indexes entity ids by name; Records shares the same
	// order (integrate.Merge emits one record per entity in entity order).
	entityByName map[string]int
	// view is the query engine's window onto this snapshot (shares the
	// dataset and indexes above; built once at publication).
	view query.View
}

// newSnapshot derives the read models and freezes the serving state.
// records, when non-nil, are the precomputed merged records for ds (the
// dirty fast path scatters them incrementally instead of re-merging the
// whole corpus); nil derives them here.
func newSnapshot(seq int64, ds *model.Dataset, res *model.Result,
	quality []model.SourceQuality, threshold float64, mode RefitPolicy,
	dur time.Duration, compacted int, freshness time.Duration,
	records []integrate.Record) (*Snapshot, error) {

	if records == nil {
		var err error
		records, err = integrate.Merge(ds, res, threshold)
		if err != nil {
			return nil, err
		}
	}
	sn := &Snapshot{
		Seq:           seq,
		Dataset:       ds,
		Result:        res,
		Quality:       quality,
		Records:       records,
		Stats:         store.Summarize(ds),
		Threshold:     threshold,
		Mode:          mode,
		FittedAt:      time.Now(),
		RefitDuration: dur,
		Compacted:     compacted,
		Freshness:     freshness,
		factByName:    make(map[[2]string]int, ds.NumFacts()),
		entityByName:  make(map[string]int, len(ds.Entities)),
	}
	for _, f := range ds.Facts {
		sn.factByName[[2]string{ds.Entities[f.Entity], f.Attribute}] = f.ID
	}
	for e, name := range ds.Entities {
		sn.entityByName[name] = e
	}
	sn.view = query.View{
		Seq:          sn.Seq,
		Dataset:      ds,
		Prob:         res.Prob,
		Threshold:    threshold,
		Records:      records,
		FactByName:   sn.factByName,
		EntityByName: sn.entityByName,
	}
	return sn, nil
}

// NewQuerySnapshot builds a standalone queryable snapshot from a fitted
// dataset — the library entry point for running the streaming query engine
// (QueryTruth, QueryRecords, QueryAggregate) over any fit without a
// daemon. Seq is zero; pagination cursors minted by the snapshot stay
// valid for its lifetime.
func NewQuerySnapshot(ds *model.Dataset, res *model.Result, threshold float64) (*Snapshot, error) {
	return newSnapshot(0, ds, res, nil, threshold, "", 0, 0, 0, nil)
}

// row materializes the truth row of fact f.
func (sn *Snapshot) row(f int) TruthRow {
	fact := sn.Dataset.Facts[f]
	return TruthRow{
		Entity:      sn.Dataset.Entities[fact.Entity],
		Attribute:   fact.Attribute,
		Probability: sn.Result.Prob[f],
		Predicted:   sn.Result.Predict(f, sn.Threshold),
	}
}

// Truth returns the truth row of the named fact. It fails with ErrNoEntity
// when the entity is unknown and ErrNoFact when the entity exists but has
// no such attribute.
func (sn *Snapshot) Truth(entity, attribute string) (TruthRow, error) {
	f, ok := sn.factByName[[2]string{entity, attribute}]
	if !ok {
		if _, ok := sn.entityByName[entity]; !ok {
			return TruthRow{}, ErrNoEntity
		}
		return TruthRow{}, ErrNoFact
	}
	return sn.row(f), nil
}

// EntityTruth returns the truth rows of every fact of the named entity, in
// fact-id order, or ErrNoEntity.
func (sn *Snapshot) EntityTruth(entity string) ([]TruthRow, error) {
	e, ok := sn.entityByName[entity]
	if !ok {
		return nil, ErrNoEntity
	}
	facts := sn.Dataset.FactsByEntity[e]
	rows := make([]TruthRow, 0, len(facts))
	for _, f := range facts {
		rows = append(rows, sn.row(f))
	}
	return rows, nil
}

// AllTruth materializes the full truth table in fact-id order.
func (sn *Snapshot) AllTruth() []TruthRow {
	rows := make([]TruthRow, 0, sn.Dataset.NumFacts())
	for f := range sn.Dataset.Facts {
		rows = append(rows, sn.row(f))
	}
	return rows
}

// Record returns the cached integrated record of the named entity, or
// ErrNoEntity.
func (sn *Snapshot) Record(entity string) (integrate.Record, error) {
	e, ok := sn.entityByName[entity]
	if !ok {
		return integrate.Record{}, ErrNoEntity
	}
	return sn.Records[e], nil
}

// QueryTruth compiles opts against this snapshot and returns a streaming
// result: predicates are evaluated inside the scan (using the snapshot's
// fact/entity indexes to skip rather than scan when a filter is
// selective), and nothing is materialized beyond the rows the caller
// pulls. Pagination cursors minted here resume exactly on this snapshot
// and fail with ErrStaleCursor on any other.
func (sn *Snapshot) QueryTruth(opts query.TruthOptions) (*query.Rows, error) {
	return query.Truth(&sn.view, opts)
}

// QueryRecords streams the integrated record table under the same
// filter/pagination contract as QueryTruth.
func (sn *Snapshot) QueryRecords(opts query.RecordOptions) (*query.RecordRows, error) {
	return query.Records(&sn.view, opts)
}

// QueryAggregate folds the facts matching opts into per-entity or
// per-source rollups without materializing any intermediate rows.
func (sn *Snapshot) QueryAggregate(by query.AggKind, opts query.TruthOptions) ([]query.Group, error) {
	return query.Aggregate(&sn.view, by, opts)
}
