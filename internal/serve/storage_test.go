package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"latenttruth/internal/store"
	"latenttruth/internal/wal"
)

// segmentConfig returns a manual-refit config on the segment backend.
func segmentConfig(policy RefitPolicy, dir string) Config {
	cfg := durableConfig(policy, dir)
	cfg.Storage = store.StorageSegments
	return cfg
}

// getBody fetches path from ts and returns the status code and body.
func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// fittedAtRe masks the one wall-clock field in snapshot responses.
var fittedAtRe = regexp.MustCompile(`"fitted_at":"[^"]*"`)

// TestSegmentBackendBitIdentical is the storage acceptance property: a
// segment-backed server and a memory server fed the identical schedule
// publish bit-identical snapshots and serve byte-identical /truth,
// /quality, /records and /claims responses, across every refit policy.
// /stats is compared modulo its timing fields and the storage block,
// which reports the (deliberately different) physical shape.
func TestSegmentBackendBitIdentical(t *testing.T) {
	for _, policy := range []RefitPolicy{RefitFull, RefitIncremental, RefitOnline, RefitDirty} {
		t.Run(string(policy), func(t *testing.T) {
			mem, err := New(durableConfig(policy, t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer mem.Close()
			seg, err := New(segmentConfig(policy, t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer seg.Close()

			for r := 0; r < 5; r++ {
				mustIngest(t, mem, batchRows(r))
				mustIngest(t, seg, batchRows(r))
				mustEqualSnapshots(t, mustRefit(t, seg), mustRefit(t, mem))
			}

			tsMem := httptest.NewServer(mem.Handler())
			defer tsMem.Close()
			tsSeg := httptest.NewServer(seg.Handler())
			defer tsSeg.Close()
			for _, path := range []string{
				"/truth",
				"/truth?min_prob=0.4&limit=20",
				"/quality",
				"/records?limit=100",
				"/claims",
				"/claims?entity=e03",
				"/claims?prefix=e0",
				"/claims?source=s1&limit=5",
			} {
				cm, bm := getBody(t, tsMem, path)
				cs, bs := getBody(t, tsSeg, path)
				if cm != http.StatusOK || cs != http.StatusOK {
					t.Fatalf("GET %s: status memory=%d segments=%d", path, cm, cs)
				}
				// fitted_at is the one wall-clock field; everything else
				// must match byte for byte.
				bm = fittedAtRe.ReplaceAll(bm, []byte(`"fitted_at":"T"`))
				bs = fittedAtRe.ReplaceAll(bs, []byte(`"fitted_at":"T"`))
				if string(bm) != string(bs) {
					t.Fatalf("GET %s differs across backends:\nmemory:   %s\nsegments: %s", path, bm, bs)
				}
			}

			// /stats must agree on everything except uptime/timings and the
			// storage block (which reports the physical shape by design).
			var sm, ss map[string]any
			_, bm := getBody(t, tsMem, "/stats")
			_, bs := getBody(t, tsSeg, "/stats")
			if err := json.Unmarshal(bm, &sm); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(bs, &ss); err != nil {
				t.Fatal(err)
			}
			segStorage := ss["storage"].(map[string]any)
			if segStorage["kind"] != store.StorageSegments || segStorage["disk_rows"].(float64) == 0 {
				t.Fatalf("segment server /stats storage block: %v", segStorage)
			}
			if memKind := sm["storage"].(map[string]any)["kind"]; memKind != store.StorageMemory {
				t.Fatalf("memory server /stats storage kind: %v", memKind)
			}
			for _, k := range []string{"storage", "uptime_s", "last_refit_ms", "freshness_ms"} {
				delete(sm, k)
				delete(ss, k)
			}
			if !reflect.DeepEqual(sm, ss) {
				t.Fatalf("/stats differs across backends:\nmemory:   %v\nsegments: %v", sm, ss)
			}
		})
	}
}

// TestSegmentRecoveryReplaysOnlyTail is the recovery acceptance scenario:
// checkpoints seal segments (no triples.csv), a crash-restart reopens the
// segments and replays only the acknowledged-but-uncompacted WAL tail,
// and the recovered server stays in bit-identical lockstep with an
// uninterrupted reference.
func TestSegmentRecoveryReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	ref, err := New(testConfig(RefitFull))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	a, err := New(segmentConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		mustIngest(t, a, batchRows(r))
		mustIngest(t, ref, batchRows(r))
		mustRefit(t, a)
		mustRefit(t, ref)
	}
	// After a checkpoint every compacted row is sealed on disk.
	st := a.db.Stats()
	if st.Kind != store.StorageSegments || st.OnDisk != a.db.Len() || st.Segments == 0 {
		t.Fatalf("post-checkpoint storage stats: %+v (db len %d)", st, a.db.Len())
	}
	// Segment checkpoints write no triples.csv: the segments ARE the corpus.
	cps, err := os.ReadDir(wal.CheckpointDir(dir))
	if err != nil || len(cps) == 0 {
		t.Fatalf("no checkpoints (err=%v)", err)
	}
	newest := cps[len(cps)-1].Name()
	if _, err := os.Stat(filepath.Join(wal.CheckpointDir(dir), newest, "triples.csv")); !os.IsNotExist(err) {
		t.Fatalf("segment checkpoint %s has a triples.csv (err=%v)", newest, err)
	}
	segs, err := os.ReadDir(wal.SegmentDir(dir))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}

	// Two acknowledged batches that only exist in the WAL tail.
	mustIngest(t, a, batchRows(10))
	mustIngest(t, a, batchRows(11))
	mustIngest(t, ref, batchRows(10))
	mustIngest(t, ref, batchRows(11))
	crash(a)

	b, err := New(segmentConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rs := b.RecoveryStats()
	if rs.ColdStart || rs.ReplayedBatches != 2 {
		t.Fatalf("recovery stats %+v, want 2 replayed batches", rs)
	}
	// The corpus came back from segments, not CSV, fully covered on disk.
	bst := b.db.Stats()
	if bst.Kind != store.StorageSegments || bst.OnDisk != b.db.Len() || bst.OnDisk != st.OnDisk {
		t.Fatalf("post-recovery storage stats: %+v, want %d rows on disk", bst, st.OnDisk)
	}
	mustEqualSnapshots(t, mustRefit(t, b), mustRefit(t, ref))
	// Lockstep continues: the next checkpoint seals only the new rows into
	// one more segment rather than rewriting history.
	segsBefore := b.db.Stats().Segments
	mustIngest(t, b, batchRows(20))
	mustIngest(t, ref, batchRows(20))
	mustEqualSnapshots(t, mustRefit(t, b), mustRefit(t, ref))
	if got := b.db.Stats().Segments; got != segsBefore+1 {
		t.Fatalf("segments after incremental checkpoint: %d, want %d", got, segsBefore+1)
	}
}

// TestSegmentCorruptionRefusesToOpen flips one byte of a sealed segment
// and asserts the restart fails loudly instead of serving corrupt rows.
func TestSegmentCorruptionRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	a, err := New(segmentConfig(RefitFull, dir))
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, a, batchRows(0))
	mustRefit(t, a)
	crash(a)

	segs, err := os.ReadDir(wal.SegmentDir(dir))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}
	path := filepath.Join(wal.SegmentDir(dir), segs[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(segmentConfig(RefitFull, dir)); err == nil {
		t.Fatal("restart over a corrupt segment succeeded")
	} else if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("corruption error should mention the unreadable checkpoint state: %v", err)
	}
}

// TestStorageConfigValidation pins the construction-time guard rails.
func TestStorageConfigValidation(t *testing.T) {
	if _, err := New(Config{Storage: store.StorageSegments}); err == nil ||
		!strings.Contains(err.Error(), "DataDir") {
		t.Fatalf("segments without a data dir: %v", err)
	}
	cfg := segmentConfig(RefitFull, t.TempDir())
	cfg.FollowerOf = "http://primary:8080"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "follower") {
		t.Fatalf("segments in follower mode: %v", err)
	}
	if _, err := New(Config{Storage: "papyrus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown storage kind") {
		t.Fatalf("unknown storage kind: %v", err)
	}
}

// TestStorageKindMismatchRefused asserts a data directory written under
// one storage kind cannot be silently reopened under the other.
func TestStorageKindMismatchRefused(t *testing.T) {
	for _, tc := range []struct{ write, reopen string }{
		{store.StorageMemory, store.StorageSegments},
		{store.StorageSegments, store.StorageMemory},
	} {
		t.Run(tc.write+"_then_"+tc.reopen, func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(RefitFull, dir)
			cfg.Storage = tc.write
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mustIngest(t, a, batchRows(0))
			mustRefit(t, a) // leaves a checkpoint stamped with the kind
			crash(a)
			cfg.Storage = tc.reopen
			if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "refusing to mix formats") {
				t.Fatalf("reopening a %s directory as %s: %v", tc.write, tc.reopen, err)
			}
		})
	}
}

// wantEnvelope asserts the response is the standard error envelope with
// the given status and stable code, and a non-empty human message.
func wantEnvelope(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, status, body)
	}
	var env map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	if env["code"] != code {
		t.Fatalf("error code %v, want %q (envelope %v)", env["code"], code, env)
	}
	if msg, _ := env["error"].(string); msg == "" {
		t.Fatalf("error envelope without a message: %v", env)
	}
}

// mustGet GETs path or fails.
func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestErrorEnvelopeTable drives every distinct 4xx/5xx path of the HTTP
// API and asserts each returns the {"error","code"} envelope with its
// stable code.
func TestErrorEnvelopeTable(t *testing.T) {
	s, ts := newTestServer(t, testConfig(RefitFull))

	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Before any data or snapshot.
	wantEnvelope(t, mustGet(t, ts.URL+"/truth"), http.StatusServiceUnavailable, codeNotReady)
	wantEnvelope(t, mustGet(t, ts.URL+"/quality"), http.StatusServiceUnavailable, codeNotReady)
	wantEnvelope(t, mustGet(t, ts.URL+"/records?entity=x"), http.StatusServiceUnavailable, codeNotReady)
	wantEnvelope(t, mustGet(t, ts.URL+"/partition/quality"), http.StatusServiceUnavailable, codeNotReady)
	wantEnvelope(t, post("/refit", ""), http.StatusConflict, codeNoData)
	wantEnvelope(t, post("/claims", "{not json"), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, post("/claims", `{"claims":[]}`), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, post("/claims", `[{"entity":"","attribute":"a","source":"s"}]`),
		http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, post("/refit?policy=nope", ""), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, mustGet(t, ts.URL+"/claims?entity=a&prefix=b"), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, mustGet(t, ts.URL+"/claims?limit=many"), http.StatusBadRequest, codeBadRequest)

	// With a snapshot: name misses, bad query params, stale cursors.
	mustIngest(t, s, batchRows(0))
	mustRefit(t, s)
	wantEnvelope(t, mustGet(t, ts.URL+"/records?entity=no-such-entity"), http.StatusNotFound, codeNotFound)
	wantEnvelope(t, mustGet(t, ts.URL+"/truth?entity=no-such-entity"), http.StatusNotFound, codeNotFound)
	wantEnvelope(t, mustGet(t, ts.URL+"/truth?limit=many"), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, mustGet(t, ts.URL+"/truth?min_prob=high"), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, mustGet(t, ts.URL+"/truth?cursor=garbage"), http.StatusBadRequest, codeBadRequest)

	var page struct {
		NextCursor string `json:"next_cursor"`
	}
	decodeJSON(t, mustGet(t, ts.URL+"/truth?limit=1"), &page)
	if page.NextCursor == "" {
		t.Fatal("no cursor to go stale")
	}
	mustIngest(t, s, batchRows(1))
	mustRefit(t, s)
	staleResp := mustGet(t, ts.URL+"/truth?limit=1&cursor="+page.NextCursor)
	wantEnvelope(t, staleResp, http.StatusGone, codeStaleCursor)

	// Replication feed errors (durable memory server).
	dm, tsDur := newTestServer(t, durableConfig(RefitFull, t.TempDir()))
	mustIngest(t, dm, batchRows(0))
	mustRefit(t, dm)
	wantEnvelope(t, mustGet(t, tsDur.URL+"/replication/wal"), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, mustGet(t, tsDur.URL+"/replication/wal?from=1&wait=bogus"), http.StatusBadRequest, codeBadRequest)
	wantEnvelope(t, mustGet(t, tsDur.URL+"/replication/wal?from=999"), http.StatusConflict, codeFollowerAhead)

	// WAL history truncated behind the retention window: 410.
	trCfg := durableConfig(RefitFull, t.TempDir())
	trCfg.Durability.RetainCheckpoints = 1
	trCfg.Durability.SegmentBytes = 4 << 10 // roll often so truncation can bite
	tr, tsTr := newTestServer(t, trCfg)
	for r := 0; r < 40; r++ {
		mustIngest(t, tr, batchRows(r))
		if r%8 == 7 {
			mustRefit(t, tr)
		}
	}
	mustRefit(t, tr)
	if tr.DurabilityStats().WAL.FirstSeq > 1 {
		wantEnvelope(t, mustGet(t, tsTr.URL+"/replication/wal?from=1&wait=0s"),
			http.StatusGone, codeWALTruncated)
	} else {
		t.Log("no WAL truncation happened; skipping the 410 case")
	}

	// A segment-storage primary cannot serve follower bootstraps: 501.
	sg, tsSeg := newTestServer(t, segmentConfig(RefitFull, t.TempDir()))
	mustIngest(t, sg, batchRows(0))
	mustRefit(t, sg)
	wantEnvelope(t, mustGet(t, tsSeg.URL+"/replication/checkpoint"),
		http.StatusNotImplemented, codeStorageUnsupported)

	// Follower mode: writes are redirected with the primary's address.
	fCfg := durableConfig(RefitFull, t.TempDir())
	fCfg.FollowerOf = "http://primary.example:8080"
	f, err := New(fCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tsF := httptest.NewServer(f.Handler())
	defer tsF.Close()
	followerResp, err := http.Post(tsF.URL+"/claims", "application/json", strings.NewReader(`[{"entity":"e","attribute":"a","source":"s"}]`))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	decodeJSON(t, followerResp, &env)
	if followerResp.StatusCode != http.StatusServiceUnavailable ||
		env["code"] != codeFollowerReadonly || env["primary"] != fCfg.FollowerOf {
		t.Fatalf("follower rejection: status %d, envelope %v", followerResp.StatusCode, env)
	}
}

// TestClaimsEndpointPushdown exercises GET /claims filters end to end on
// the segment backend, including the skipping counters it should move.
func TestClaimsEndpointPushdown(t *testing.T) {
	s, ts := newTestServer(t, segmentConfig(RefitFull, t.TempDir()))
	for r := 0; r < 4; r++ {
		mustIngest(t, s, batchRows(r))
		mustRefit(t, s) // checkpoint → seal: rows live in segments
	}
	var out struct {
		Count  int `json:"count"`
		Claims []struct{ Entity, Attribute, Source string } `json:"claims"`
	}
	decodeJSON(t, mustGet(t, ts.URL+"/claims?entity=e03"), &out)
	if out.Count == 0 {
		t.Fatal("no claims for e03")
	}
	for _, c := range out.Claims {
		if c.Entity != "e03" {
			t.Fatalf("entity filter leaked %+v", c)
		}
	}
	decodeJSON(t, mustGet(t, ts.URL+"/claims?prefix=e0&source=s1"), &out)
	for _, c := range out.Claims {
		if !strings.HasPrefix(c.Entity, "e0") || c.Source != "s1" {
			t.Fatalf("prefix+source filter leaked %+v", c)
		}
	}
	var stats struct {
		Storage store.StorageStats `json:"storage"`
	}
	decodeJSON(t, mustGet(t, ts.URL+"/stats"), &stats)
	if stats.Storage.SegmentsScanned+stats.Storage.SegmentsSkipped == 0 {
		t.Fatalf("scans moved no skipping counters: %+v", stats.Storage)
	}
}

// TestStorageGaugesExposed asserts the storage gauge families appear in
// /metrics with the backend's live values.
func TestStorageGaugesExposed(t *testing.T) {
	s, ts := newTestServer(t, segmentConfig(RefitFull, t.TempDir()))
	mustIngest(t, s, batchRows(0))
	mustRefit(t, s)
	_, body := getBody(t, ts, "/metrics")
	text := string(body)
	st := s.db.Stats()
	for metric, want := range map[string]int{
		"storage_resident_rows": st.Resident,
		"storage_disk_rows":     st.OnDisk,
		"storage_segments":      st.Segments,
	} {
		if !strings.Contains(text, fmt.Sprintf("%s %d", metric, want)) {
			t.Fatalf("/metrics missing %s %d:\n%s", metric, want, text)
		}
	}
}
