package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"

	"latenttruth/internal/query"
)

// queryTestServer stands up a fitted server for the query-engine HTTP
// tests and returns it with its base URL and current snapshot.
func queryTestServer(t *testing.T) (*Server, string, *Snapshot) {
	t.Helper()
	c := testCorpus(t, 11)
	s, ts := newTestServer(t, testConfig(RefitFull))
	resp := postClaims(t, ts.URL, positiveRows(c.Dataset))
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
	sn, err := s.Refit("")
	if err != nil {
		t.Fatal(err)
	}
	return s, ts.URL, sn
}

// get issues a GET and returns the response without decoding it.
func get(t *testing.T, rawURL string) *http.Response {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// body reads and closes a response body.
func body(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// encodeLegacy encodes v exactly like the pre-engine writeJSON did: one
// json.Encoder pass with HTML escaping off (trailing newline included).
func encodeLegacy(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruthByteIdentical locks the unfiltered (and legacy entity-filtered)
// GET /truth output to the exact bytes the pre-engine materializing
// handler produced.
func TestTruthByteIdentical(t *testing.T) {
	_, base, sn := queryTestServer(t)

	legacy := func(rows []TruthRow) []byte {
		return encodeLegacy(t, truthResponse{
			Seq:       sn.Seq,
			Mode:      sn.Mode,
			FittedAt:  sn.FittedAt,
			Threshold: sn.Threshold,
			Facts:     len(rows),
			Rows:      rows,
		})
	}

	got := body(t, get(t, base+"/truth"))
	if want := legacy(sn.AllTruth()); !bytes.Equal(got, want) {
		t.Fatalf("unfiltered /truth diverged from legacy bytes:\ngot  %s\nwant %s", got, want)
	}

	ent := sn.Dataset.Entities[3]
	entRows, err := sn.EntityTruth(ent)
	if err != nil {
		t.Fatal(err)
	}
	got = body(t, get(t, base+"/truth?entity="+url.QueryEscape(ent)))
	if want := legacy(entRows); !bytes.Equal(got, want) {
		t.Fatalf("/truth?entity= diverged from legacy bytes:\ngot  %s\nwant %s", got, want)
	}

	attr := sn.Dataset.Facts[sn.Dataset.FactsByEntity[3][0]].Attribute
	row, err := sn.Truth(ent, attr)
	if err != nil {
		t.Fatal(err)
	}
	got = body(t, get(t, base+"/truth?entity="+url.QueryEscape(ent)+"&attribute="+url.QueryEscape(attr)))
	if want := legacy([]TruthRow{row}); !bytes.Equal(got, want) {
		t.Fatalf("/truth?entity=&attribute= diverged from legacy bytes:\ngot  %s\nwant %s", got, want)
	}
}

// truthPage is the decoded form of a streamed /truth response.
type truthPage struct {
	Seq        int64      `json:"seq"`
	Facts      int        `json:"facts"`
	Rows       []TruthRow `json:"rows"`
	NextCursor string     `json:"next_cursor"`
}

// TestTruthQueryParams exercises the engine-backed /truth parameters
// end to end against the materialized table.
func TestTruthQueryParams(t *testing.T) {
	_, base, sn := queryTestServer(t)
	all := sn.AllTruth()

	t.Run("min_prob and predicted", func(t *testing.T) {
		var page truthPage
		decodeJSON(t, get(t, base+"/truth?min_prob=0.5&predicted=true"), &page)
		want := 0
		for _, r := range all {
			if r.Probability >= 0.5 && r.Predicted {
				want++
			}
		}
		if page.Facts != want || len(page.Rows) != want {
			t.Fatalf("filtered facts = %d (rows %d), want %d", page.Facts, len(page.Rows), want)
		}
		for _, r := range page.Rows {
			if r.Probability < 0.5 || !r.Predicted {
				t.Fatalf("row %+v violates filter", r)
			}
		}
	})

	t.Run("source filter", func(t *testing.T) {
		var page truthPage
		decodeJSON(t, get(t, base+"/truth?source=good"), &page)
		if page.Facts == 0 {
			t.Fatal("source filter returned no rows")
		}
		if page.Facts >= len(all) {
			t.Fatalf("source filter matched everything (%d)", page.Facts)
		}
	})

	t.Run("topk", func(t *testing.T) {
		var page truthPage
		decodeJSON(t, get(t, base+"/truth?topk=5"), &page)
		if len(page.Rows) != 5 {
			t.Fatalf("topk=5 returned %d rows", len(page.Rows))
		}
		for i := 1; i < len(page.Rows); i++ {
			if page.Rows[i].Probability > page.Rows[i-1].Probability {
				t.Fatalf("topk rows not sorted by probability at %d", i)
			}
		}
	})

	t.Run("pagination to exhaustion", func(t *testing.T) {
		var rows []TruthRow
		cursor := ""
		pages := 0
		for {
			u := base + "/truth?limit=7"
			if cursor != "" {
				u += "&cursor=" + url.QueryEscape(cursor)
			}
			var page truthPage
			decodeJSON(t, get(t, u), &page)
			rows = append(rows, page.Rows...)
			pages++
			if page.NextCursor == "" {
				break
			}
			cursor = page.NextCursor
			if pages > len(all) {
				t.Fatal("pagination did not terminate")
			}
		}
		if len(rows) != len(all) {
			t.Fatalf("paginated scan yielded %d rows, want %d", len(rows), len(all))
		}
		for i := range rows {
			if rows[i] != all[i] {
				t.Fatalf("paginated row %d = %+v, want %+v", i, rows[i], all[i])
			}
		}
	})

	t.Run("aggregate by source", func(t *testing.T) {
		var resp struct {
			Agg    string        `json:"agg"`
			Count  int           `json:"count"`
			Groups []query.Group `json:"groups"`
		}
		decodeJSON(t, get(t, base+"/truth?agg=source"), &resp)
		if resp.Agg != "source" || resp.Count != len(resp.Groups) {
			t.Fatalf("agg response header %+v", resp)
		}
		if len(resp.Groups) != len(sn.Dataset.Sources) {
			t.Fatalf("%d source groups, want %d", len(resp.Groups), len(sn.Dataset.Sources))
		}
	})

	t.Run("aggregate by entity respects filters", func(t *testing.T) {
		ent := sn.Dataset.Entities[0]
		var resp struct {
			Groups []query.Group `json:"groups"`
		}
		decodeJSON(t, get(t, base+"/truth?agg=entity&entity="+url.QueryEscape(ent)), &resp)
		if len(resp.Groups) != 1 || resp.Groups[0].Key != ent {
			t.Fatalf("entity-filtered rollup = %+v", resp.Groups)
		}
		if want := len(sn.Dataset.FactsByEntity[0]); resp.Groups[0].Facts != want {
			t.Fatalf("rollup counted %d facts, want %d", resp.Groups[0].Facts, want)
		}
	})
}

// TestTruthQueryErrors checks the HTTP status mapping of engine errors.
func TestTruthQueryErrors(t *testing.T) {
	s, base, sn := queryTestServer(t)

	for name, tc := range map[string]struct {
		path string
		code int
	}{
		"unknown entity":            {"/truth?entity=nope", http.StatusNotFound},
		"unknown fact":              {"/truth?entity=" + url.QueryEscape(sn.Dataset.Entities[0]) + "&attribute=nope", http.StatusNotFound},
		"unknown source":            {"/truth?source=nope", http.StatusNotFound},
		"attribute without entity":  {"/truth?attribute=x", http.StatusBadRequest},
		"bad min_prob":              {"/truth?min_prob=high", http.StatusBadRequest},
		"out-of-range min_prob":     {"/truth?min_prob=1.5", http.StatusBadRequest},
		"bad predicted":             {"/truth?predicted=maybe", http.StatusBadRequest},
		"negative topk":             {"/truth?topk=-1", http.StatusBadRequest},
		"unknown agg":               {"/truth?agg=attribute", http.StatusBadRequest},
		"agg with limit":            {"/truth?agg=entity&limit=5", http.StatusBadRequest},
		"malformed cursor":          {"/truth?cursor=garbage", http.StatusBadRequest},
		"records unknown entity":    {"/records?entity=nope", http.StatusNotFound},
		"records malformed cursor":  {"/records?limit=2&cursor=garbage", http.StatusBadRequest},
		"topk combined with cursor": {"/truth?topk=3&cursor=garbage", http.StatusBadRequest},
	} {
		resp := get(t, base+tc.path)
		if resp.StatusCode != tc.code {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status %d, want %d: %s", name, resp.StatusCode, tc.code, b)
		}
		resp.Body.Close()
	}

	// A cursor minted on one snapshot is refused with 410 and an explicit
	// restart signal once a refit swaps the snapshot out.
	var page truthPage
	decodeJSON(t, get(t, base+"/truth?limit=3"), &page)
	if page.NextCursor == "" {
		t.Fatal("no cursor to invalidate")
	}
	if _, err := s.Refit(""); err != nil {
		t.Fatal(err)
	}
	resp := get(t, base+"/truth?limit=3&cursor="+url.QueryEscape(page.NextCursor))
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor status %d, want %d", resp.StatusCode, http.StatusGone)
	}
	var stale struct {
		Error   string `json:"error"`
		Restart bool   `json:"restart"`
	}
	decodeJSON(t, resp, &stale)
	if !stale.Restart || stale.Error == "" {
		t.Fatalf("stale cursor payload %+v, want restart signal", stale)
	}
}

// TestRecordsListing exercises the engine-backed /records listing and its
// legacy single-entity path.
func TestRecordsListing(t *testing.T) {
	_, base, sn := queryTestServer(t)

	// Legacy single-record lookup keeps its exact shape.
	ent := sn.Dataset.Entities[1]
	rec, err := sn.Record(ent)
	if err != nil {
		t.Fatal(err)
	}
	got := body(t, get(t, base+"/records?entity="+url.QueryEscape(ent)))
	want := encodeLegacy(t, map[string]any{
		"seq": sn.Seq,
		"record": recordJSON{
			Entity:     rec.Entity,
			Attributes: toAttrJSON(rec.Attributes),
			Rejected:   toAttrJSON(rec.Rejected),
		},
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("/records?entity= diverged from legacy bytes:\ngot  %s\nwant %s", got, want)
	}

	// Paginated listing walks every record exactly once.
	type page struct {
		Records    []recordJSON `json:"records"`
		Count      int          `json:"count"`
		NextCursor string       `json:"next_cursor"`
	}
	var names []string
	cursor := ""
	for {
		u := base + "/records?limit=9"
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		var p page
		decodeJSON(t, get(t, u), &p)
		if p.Count != len(p.Records) {
			t.Fatalf("page count %d, records %d", p.Count, len(p.Records))
		}
		for _, r := range p.Records {
			names = append(names, r.Entity)
		}
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if len(names) != len(sn.Records) {
		t.Fatalf("listing yielded %d records, want %d", len(names), len(sn.Records))
	}
	for i, n := range names {
		if n != sn.Records[i].Entity {
			t.Fatalf("record %d = %q, want %q", i, n, sn.Records[i].Entity)
		}
	}
}

// failingWriter fails every write after the first n bytes.
type failingWriter struct {
	header http.Header
	n      int
}

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}
func (f *failingWriter) WriteHeader(int) {}
func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("connection reset by test")
	}
	n := f.n
	if n > len(p) {
		n = len(p)
	}
	f.n -= n
	if n < len(p) {
		return n, errors.New("connection reset by test")
	}
	return n, nil
}

// TestWriteJSONEncodeFailure checks that a failed response write is
// counted and surfaced in /stats instead of being silently discarded.
func TestWriteJSONEncodeFailure(t *testing.T) {
	s, base, _ := queryTestServer(t)

	var before struct {
		EncodeFailures int64 `json:"encode_failures"`
	}
	decodeJSON(t, get(t, base+"/stats"), &before)

	s.writeJSON(&failingWriter{}, http.StatusOK, map[string]string{"k": "v"})

	// The streaming path latches mid-body write errors the same way.
	js := newJSONStream(&failingWriter{n: 4})
	js.raw(`{"rows":[`)
	js.val(TruthRow{Entity: "e", Attribute: "a"})
	js.raw("]}\n")
	if js.err == nil {
		t.Fatal("stream over failing writer latched no error")
	}
	s.finish(js)

	var after struct {
		EncodeFailures int64 `json:"encode_failures"`
	}
	decodeJSON(t, get(t, base+"/stats"), &after)
	if got := after.EncodeFailures - before.EncodeFailures; got != 2 {
		t.Fatalf("encode_failures advanced by %d, want 2", got)
	}
}

// TestStreamTruthMemoryShape is a coarse guard that the unfiltered stream
// does not rebuild the whole row slice: a paginated page over a corpus of
// N facts must allocate far less than the full materialized table.
func TestStreamTruthMemoryShape(t *testing.T) {
	_, base, sn := queryTestServer(t)
	resp := get(t, fmt.Sprintf("%s/truth?limit=1", base))
	var page truthPage
	decodeJSON(t, resp, &page)
	if len(page.Rows) != 1 || page.Facts != 1 {
		t.Fatalf("limit=1 page carried %d rows (facts %d)", len(page.Rows), page.Facts)
	}
	if page.Seq != sn.Seq {
		t.Fatalf("page seq %d, want %d", page.Seq, sn.Seq)
	}
}
