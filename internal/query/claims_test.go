package query

import (
	"fmt"
	"reflect"
	"testing"

	"latenttruth/internal/model"
	"latenttruth/internal/store"
)

// claimBackends returns the same small corpus behind both backend kinds,
// with the segment backend split across two sealed segments plus an
// unsealed heap tail, so scans cross every residency boundary.
func claimBackends(t *testing.T) map[string]store.Backend {
	t.Helper()
	rows := []model.Row{
		{Entity: "apple", Attribute: "red", Source: "s1"},
		{Entity: "apple", Attribute: "green", Source: "s2"},
		{Entity: "banana", Attribute: "yellow", Source: "s1"},
		{Entity: "cherry", Attribute: "red", Source: "s3"},
		{Entity: "date", Attribute: "brown", Source: "s2"},
		{Entity: "elder", Attribute: "black", Source: "s3"},
	}
	mem := store.NewMemory()
	for _, r := range rows {
		mem.AddRow(r)
	}
	seg := store.NewSegmentBacked(t.TempDir())
	for i, r := range rows {
		seg.AddRow(r)
		if i == 1 || i == 3 { // seal after apple rows, then after cherry
			if _, err := seg.Seal(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return map[string]store.Backend{"memory": mem, "segments": seg}
}

func TestScanClaims(t *testing.T) {
	row := func(e, a, s string) model.Row { return model.Row{Entity: e, Attribute: a, Source: s} }
	cases := []struct {
		name string
		opts ClaimsOptions
		want []model.Row
	}{
		{"all", ClaimsOptions{}, []model.Row{
			row("apple", "green", "s2"), row("apple", "red", "s1"),
			row("banana", "yellow", "s1"), row("cherry", "red", "s3"),
			row("date", "brown", "s2"), row("elder", "black", "s3"),
		}},
		{"entity", ClaimsOptions{Entity: "apple"}, []model.Row{
			row("apple", "green", "s2"), row("apple", "red", "s1"),
		}},
		{"entity_miss", ClaimsOptions{Entity: "kiwi"}, nil},
		{"prefix", ClaimsOptions{Prefix: "a"}, []model.Row{
			row("apple", "green", "s2"), row("apple", "red", "s1"),
		}},
		{"prefix_spanning", ClaimsOptions{Prefix: "b"}, []model.Row{
			row("banana", "yellow", "s1"),
		}},
		{"source", ClaimsOptions{Source: "s3"}, []model.Row{
			row("cherry", "red", "s3"), row("elder", "black", "s3"),
		}},
		{"entity_and_source", ClaimsOptions{Entity: "apple", Source: "s1"}, []model.Row{
			row("apple", "red", "s1"),
		}},
		{"prefix_and_source", ClaimsOptions{Prefix: "a", Source: "s2"}, []model.Row{
			row("apple", "green", "s2"),
		}},
		{"limit", ClaimsOptions{Limit: 2}, []model.Row{
			row("apple", "green", "s2"), row("apple", "red", "s1"),
		}},
	}
	for kind, be := range claimBackends(t) {
		for _, tc := range cases {
			t.Run(kind+"/"+tc.name, func(t *testing.T) {
				got, err := ScanClaims(be.Reader(), tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) == 0 && len(tc.want) == 0 {
					return
				}
				if !reflect.DeepEqual(got, tc.want) {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			})
		}
	}
}

func TestScanClaimsRejectsBadOptions(t *testing.T) {
	rd := store.NewMemory().Reader()
	if _, err := ScanClaims(rd, ClaimsOptions{Entity: "a", Prefix: "b"}); err == nil {
		t.Fatal("entity+prefix accepted")
	}
	if _, err := ScanClaims(rd, ClaimsOptions{Limit: -1}); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestPrefixUpper(t *testing.T) {
	for _, tc := range []struct{ prefix, want string }{
		{"a", "b"},
		{"ab", "ac"},
		{"a\xff", "b"},   // trailing 0xff: bump the byte before it
		{"\xff\xff", ""}, // all-0xff: unbounded above
	} {
		if got := PrefixUpper(tc.prefix); got != tc.want {
			t.Errorf("PrefixUpper(%q) = %q, want %q", tc.prefix, got, tc.want)
		}
	}
	// The bound is tight: every string with the prefix sorts below it.
	for _, s := range []string{"a", "a\xff\xff\xff", "azzz"} {
		if up := PrefixUpper("a"); !(s >= "a" && s < up) {
			t.Errorf("%q escapes [a, %q)", s, up)
		}
	}
}

var sinkRows []model.Row

func BenchmarkScanClaimsEntity(b *testing.B) {
	seg := store.NewSegmentBacked(b.TempDir())
	for i := 0; i < 50_000; i++ {
		seg.AddRow(model.Row{
			Entity:    fmt.Sprintf("e%05d", i%10_000),
			Attribute: fmt.Sprintf("a%d", i%7),
			Source:    fmt.Sprintf("s%d", i%31),
		})
		if i%10_000 == 9_999 {
			if _, err := seg.Seal(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	rd := seg.Reader()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := ScanClaims(rd, ClaimsOptions{Entity: "e00042"})
		if err != nil {
			b.Fatal(err)
		}
		sinkRows = rows
	}
}
