package query

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrStaleCursor reports a cursor minted by a different snapshot. Fact ids
// are only stable within one refit sequence number, so the caller must
// restart pagination against the current snapshot; the HTTP layer maps
// this to 410 Gone with a restart signal.
var ErrStaleCursor = errors.New("query: cursor is from a different snapshot; restart pagination")

// ErrBadCursor reports a cursor that does not decode at all (truncated,
// corrupted, or not one of ours).
var ErrBadCursor = errors.New("query: malformed cursor")

// cursorV1 tags the cursor wire format: version, snapshot seq, next id.
const cursorV1 = "q1"

// encodeCursor packs a resume point — the snapshot's seq and the first id
// not yet served — into an opaque URL-safe token.
func encodeCursor(seq int64, next int) string {
	raw := fmt.Sprintf("%s:%d:%d", cursorV1, seq, next)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursor unpacks a token minted by encodeCursor.
func decodeCursor(s string) (seq int64, next int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	parts := strings.Split(string(raw), ":")
	if len(parts) != 3 || parts[0] != cursorV1 {
		return 0, 0, ErrBadCursor
	}
	seq, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, ErrBadCursor
	}
	next, err = strconv.Atoi(parts[2])
	if err != nil || next < 0 {
		return 0, 0, ErrBadCursor
	}
	return seq, next, nil
}

// resolveCursor validates a request cursor against the view: empty means
// start from the beginning, a matching seq yields the exact resume id, a
// mismatched seq is the restart signal.
func resolveCursor(v *View, cursor string) (next int, err error) {
	if cursor == "" {
		return 0, nil
	}
	seq, next, err := decodeCursor(cursor)
	if err != nil {
		return 0, err
	}
	if seq != v.Seq {
		return 0, ErrStaleCursor
	}
	return next, nil
}
