package query

import (
	"fmt"
	"sort"
	"strings"

	"latenttruth/internal/model"
	"latenttruth/internal/store"
)

// ClaimsOptions selects raw claims from a storage reader. Entity and
// Prefix are mutually exclusive; Source composes with either (or stands
// alone). A zero options value selects everything.
type ClaimsOptions struct {
	// Entity selects claims about exactly this entity.
	Entity string
	// Prefix selects claims about entities with this name prefix.
	Prefix string
	// Source selects claims asserted by this source.
	Source string
	// Limit caps the number of returned rows (0 = unlimited).
	Limit int
}

// ScanClaims executes a raw-claims query against rd with predicate
// pushdown: an entity filter becomes a point scan, a prefix filter
// becomes a range scan bounded by PrefixUpper, and a bare source filter
// becomes a source scan — on a segment-backed reader each of those
// consults the per-segment zone maps and bloom filters, so segments (and
// pages) that cannot contain a match are never read. Results are
// returned in (entity, attribute, source) order, which is a total order
// over the de-duplicated corpus and therefore identical across backends
// regardless of their physical scan order.
func ScanClaims(rd store.Reader, opts ClaimsOptions) ([]model.Row, error) {
	if opts.Entity != "" && opts.Prefix != "" {
		return nil, fmt.Errorf("query: entity and prefix are mutually exclusive")
	}
	if opts.Limit < 0 {
		return nil, fmt.Errorf("query: negative limit %d", opts.Limit)
	}
	var out []model.Row
	collect := func(r model.Row) {
		if opts.Source != "" && r.Source != opts.Source {
			return
		}
		out = append(out, r)
	}
	var err error
	switch {
	case opts.Entity != "":
		err = rd.ScanEntities(map[string]struct{}{opts.Entity: {}}, collect)
	case opts.Prefix != "":
		// The range scan over-approximates (its upper bound is a whole
		// string, not a prefix language), so the exact prefix test stays.
		err = rd.ScanEntityRange(opts.Prefix, PrefixUpper(opts.Prefix), func(r model.Row) {
			if strings.HasPrefix(r.Entity, opts.Prefix) {
				collect(r)
			}
		})
	case opts.Source != "":
		err = rd.ScanSource(opts.Source, func(r model.Row) { out = append(out, r) })
	default:
		for _, r := range rd.Rows() {
			collect(r)
		}
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		if a.Attribute != b.Attribute {
			return a.Attribute < b.Attribute
		}
		return a.Source < b.Source
	})
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}

// PrefixUpper returns the smallest string greater than every string with
// the given prefix, for use as an inclusive range upper bound: the prefix
// with its last non-0xff byte incremented (and the bytes after it
// dropped). An all-0xff prefix has no such bound and returns "", which
// ScanEntityRange treats as unbounded above.
func PrefixUpper(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}
