package query

import (
	"latenttruth/internal/integrate"
	"latenttruth/internal/model"
)

// View is the read surface a query executes against: one immutable
// snapshot's dataset, truth probabilities and name indexes. The maps are
// shared with the snapshot that built the view — a View is a window, not a
// copy — so construction is O(1) and the engine reuses the access paths
// (FactByName, EntityByName, Dataset.FactsByEntity, Dataset.ClaimsBySource)
// the serving layer already maintains.
//
// All fields are read-only after construction, matching the snapshot
// immutability contract; a View may be queried concurrently.
type View struct {
	// Seq is the refit sequence number cursors are bound to.
	Seq int64
	// Dataset is the fact/claim store the probabilities index into.
	Dataset *model.Dataset
	// Prob[f] is the truth probability of fact f.
	Prob []float64
	// Threshold is the prediction cut: Prob[f] >= Threshold is "true".
	Threshold float64
	// Records is the integrated record table in entity-id order; may be
	// nil on views that only serve truth queries.
	Records []integrate.Record

	// FactByName indexes fact ids by (entity, attribute) name.
	FactByName map[[2]string]int
	// EntityByName indexes entity ids by name.
	EntityByName map[string]int
}

// Row is one streamed truth row: the fact id plus the served fields. The
// engine yields rows one at a time; callers that need a page materialize
// exactly that page.
type Row struct {
	// Fact is the fact id within the view's snapshot (the pagination key).
	Fact int
	// Entity and Attribute name the fact.
	Entity    string
	Attribute string
	// Probability is the posterior truth probability.
	Probability float64
	// Predicted reports Probability >= the view's threshold.
	Predicted bool
}

// row materializes the truth row of fact f.
func (v *View) row(f int) Row {
	fact := v.Dataset.Facts[f]
	return Row{
		Fact:        f,
		Entity:      v.Dataset.Entities[fact.Entity],
		Attribute:   fact.Attribute,
		Probability: v.Prob[f],
		Predicted:   v.Prob[f] >= v.Threshold,
	}
}
