package query

import (
	"errors"
	"fmt"

	"latenttruth/internal/integrate"
)

// RecordOptions selects and pages the integrated record table.
type RecordOptions struct {
	// Entity restricts to the single named record.
	Entity string
	// Limit, when > 0, ends the stream after Limit records.
	Limit int
	// Cursor resumes a previous listing on the same snapshot (entity-id
	// based, same staleness contract as truth cursors).
	Cursor string
}

// RecordRows streams integrated records in entity-id order.
type RecordRows struct {
	v *View
	p pager
}

// Next returns the next record. The pointer aliases the snapshot's cached
// record table; callers must not modify it.
func (r *RecordRows) Next() (*integrate.Record, bool) {
	e, ok := r.p.nextID()
	if !ok {
		return nil, false
	}
	return &r.v.Records[e], true
}

// NextCursor returns the resume token after the stream ends, or "".
func (r *RecordRows) NextCursor() string { return r.p.next }

// Records compiles opts into a streaming listing of the snapshot's
// integrated record table (one merged record per entity, Definition 4).
// Entity ids play the role fact ids play for truth queries: stable within
// one snapshot, increasing along the stream.
func Records(v *View, opts RecordOptions) (*RecordRows, error) {
	if v.Records == nil {
		return nil, errors.New("query: view has no record table")
	}
	if opts.Limit < 0 {
		return nil, fmt.Errorf("query: limit %d must be non-negative", opts.Limit)
	}
	start, err := resolveCursor(v, opts.Cursor)
	if err != nil {
		return nil, err
	}
	var it factIter
	if opts.Entity != "" {
		e, ok := v.EntityByName[opts.Entity]
		if !ok {
			return nil, ErrNoEntity
		}
		it = &sliceIter{ids: []int{e}}
	} else {
		it = &rangeIter{limit: len(v.Records)}
	}
	if start > 0 {
		it.seek(start)
	}
	return &RecordRows{v: v, p: pager{seq: v.Seq, it: it, limit: opts.Limit}}, nil
}
