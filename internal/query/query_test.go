package query

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"

	"latenttruth/internal/integrate"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/synth"
)

// testView builds a view over a generated conflicting corpus with
// deterministic pseudo-posterior probabilities.
func testView(t testing.TB, seed int64) *View {
	t.Helper()
	c, err := synth.Generate(synth.CorpusSpec{
		Name: "querytest", NumEntities: 40,
		TrueAttrWeights:  []float64{0.5, 0.3, 0.2},
		FalseCandWeights: []float64{0.5, 0.4, 0.1},
		LabelEntities:    5,
		Seed:             seed,
		Sources: []synth.SourceProfile{
			{Name: "good", Coverage: 0.9, Sensitivity: 0.95, FPR: 0.02},
			{Name: "lazy", Coverage: 0.7, Sensitivity: 0.5, FPR: 0.05},
			{Name: "messy", Coverage: 0.8, Sensitivity: 0.85, FPR: 0.35},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return viewOf(t, c.Dataset, seed)
}

// viewOf derives a View (with record table and name indexes) from a
// dataset plus rng-generated probabilities.
func viewOf(t testing.TB, ds *model.Dataset, seed int64) *View {
	t.Helper()
	rng := stats.NewRNG(seed + 1000)
	res := model.NewResult("test", ds)
	for f := range res.Prob {
		res.Prob[f] = math.Round(rng.Float64()*100) / 100 // coarse: force ties
	}
	records, err := integrate.Merge(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v := &View{
		Seq:          7,
		Dataset:      ds,
		Prob:         res.Prob,
		Threshold:    0.5,
		Records:      records,
		FactByName:   make(map[[2]string]int, ds.NumFacts()),
		EntityByName: make(map[string]int, len(ds.Entities)),
	}
	for _, f := range ds.Facts {
		v.FactByName[[2]string{ds.Entities[f.Entity], f.Attribute}] = f.ID
	}
	for e, name := range ds.Entities {
		v.EntityByName[name] = e
	}
	return v
}

// refTruth is the materialize-then-filter reference the streaming engine
// must match: build every row, filter, (optionally) sort for top-k.
func refTruth(v *View, opts TruthOptions) []Row {
	ds := v.Dataset
	srcID := -1
	if opts.Source != "" {
		srcID = ds.SourceIndex(opts.Source)
	}
	positive := func(f int) bool {
		for _, ci := range ds.ClaimsByFact[f] {
			if c := ds.Claims[ci]; c.Source == srcID {
				return c.Observation
			}
		}
		return false
	}
	var rows []Row
	for f := range ds.Facts {
		r := v.row(f)
		if opts.Entity != "" && r.Entity != opts.Entity {
			continue
		}
		if opts.Attribute != "" && r.Attribute != opts.Attribute {
			continue
		}
		if opts.Source != "" && !positive(f) {
			continue
		}
		if opts.MinProb > 0 && r.Probability < opts.MinProb {
			continue
		}
		if opts.Predicted != nil && r.Predicted != *opts.Predicted {
			continue
		}
		rows = append(rows, r)
	}
	if opts.TopK > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Probability != rows[j].Probability {
				return rows[i].Probability > rows[j].Probability
			}
			return rows[i].Fact < rows[j].Fact
		})
		if len(rows) > opts.TopK {
			rows = rows[:opts.TopK]
		}
	}
	return rows
}

// drain pulls every row of a result.
func drain(t *testing.T, r *Rows) []Row {
	t.Helper()
	var rows []Row
	for {
		row, ok := r.Next()
		if !ok {
			return rows
		}
		rows = append(rows, row)
	}
}

// paginate walks a query to exhaustion through cursors of the given page
// size and returns every row seen.
func paginate(t *testing.T, v *View, opts TruthOptions, page int) []Row {
	t.Helper()
	opts.Limit = page
	opts.Cursor = ""
	var rows []Row
	for steps := 0; ; steps++ {
		if steps > v.Dataset.NumFacts()+2 {
			t.Fatal("pagination did not terminate")
		}
		r, err := Truth(v, opts)
		if err != nil {
			t.Fatalf("page %d: %v", steps, err)
		}
		got := drain(t, r)
		if len(got) > page {
			t.Fatalf("page %d: %d rows exceeds limit %d", steps, len(got), page)
		}
		rows = append(rows, got...)
		if r.NextCursor() == "" {
			return rows
		}
		if len(got) < page {
			t.Fatalf("page %d: short page (%d < %d) but cursor %q", steps, len(got), page, r.NextCursor())
		}
		opts.Cursor = r.NextCursor()
	}
}

func sameRows(t *testing.T, label string, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestTruthUnfilteredMatchesReference(t *testing.T) {
	v := testView(t, 1)
	r, err := Truth(v, TruthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "scan", drain(t, r), refTruth(v, TruthOptions{}))
	if r.NextCursor() != "" {
		t.Fatalf("exhausted scan has cursor %q", r.NextCursor())
	}
}

func TestTruthPushdownPaths(t *testing.T) {
	v := testView(t, 2)
	ds := v.Dataset
	ent := ds.Entities[3]
	attr := ds.Facts[ds.FactsByEntity[3][0]].Attribute
	yes, no := true, false
	cases := []TruthOptions{
		{Entity: ent},
		{Entity: ent, Attribute: attr},
		{Source: "good"},
		{Source: "messy", MinProb: 0.6},
		{Entity: ent, Source: "good"},
		{MinProb: 0.8},
		{Predicted: &yes},
		{Predicted: &no, MinProb: 0.2},
		{Source: "lazy", Predicted: &yes},
	}
	for i, opts := range cases {
		r, err := Truth(v, opts)
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, opts, err)
		}
		sameRows(t, "pushdown", drain(t, r), refTruth(v, opts))
	}
}

func TestTruthNotFoundErrors(t *testing.T) {
	v := testView(t, 3)
	if _, err := Truth(v, TruthOptions{Entity: "nope"}); !errors.Is(err, ErrNoEntity) {
		t.Fatalf("unknown entity: %v", err)
	}
	if _, err := Truth(v, TruthOptions{Entity: v.Dataset.Entities[0], Attribute: "nope"}); !errors.Is(err, ErrNoFact) {
		t.Fatalf("unknown fact: %v", err)
	}
	if _, err := Truth(v, TruthOptions{Source: "nope"}); !errors.Is(err, ErrNoSource) {
		t.Fatalf("unknown source: %v", err)
	}
	if _, err := Truth(v, TruthOptions{Entity: v.Dataset.Entities[1], Source: "nope"}); !errors.Is(err, ErrNoSource) {
		t.Fatalf("unknown residual source: %v", err)
	}
	if _, err := Records(v, RecordOptions{Entity: "nope"}); !errors.Is(err, ErrNoEntity) {
		t.Fatalf("unknown record entity: %v", err)
	}
}

func TestTruthOptionValidation(t *testing.T) {
	v := testView(t, 4)
	bad := []TruthOptions{
		{Attribute: "a"},
		{MinProb: 1.5},
		{MinProb: -0.1},
		{TopK: -1},
		{Limit: -1},
		{TopK: 3, Cursor: encodeCursor(v.Seq, 0)},
	}
	for i, opts := range bad {
		if _, err := Truth(v, opts); err == nil {
			t.Fatalf("case %d (%+v): no error", i, opts)
		}
	}
}

func TestCursorStaleAndMalformed(t *testing.T) {
	v := testView(t, 5)
	// A cursor minted under another seq is the restart signal.
	if _, err := Truth(v, TruthOptions{Cursor: encodeCursor(v.Seq+1, 4)}); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("stale cursor: %v", err)
	}
	for _, c := range []string{"garbage!!", "cXl6", encodeCursor(v.Seq, 3) + "x"} {
		if _, err := Truth(v, TruthOptions{Cursor: c}); !errors.Is(err, ErrBadCursor) {
			t.Fatalf("cursor %q: %v", c, err)
		}
	}
}

func TestTruthPaginationExactness(t *testing.T) {
	v := testView(t, 6)
	for _, page := range []int{1, 3, 7, 1000} {
		for _, opts := range []TruthOptions{
			{},
			{MinProb: 0.5},
			{Source: "good"},
			{Entity: v.Dataset.Entities[2]},
		} {
			want := refTruth(v, opts)
			sameRows(t, "paginated", paginate(t, v, opts, page), want)
		}
	}
}

func TestTruthTopK(t *testing.T) {
	v := testView(t, 7)
	for _, k := range []int{1, 5, 17, 100000} {
		for _, opts := range []TruthOptions{{TopK: k}, {TopK: k, Source: "messy"}, {TopK: k, MinProb: 0.3}} {
			r, err := Truth(v, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, "topk", drain(t, r), refTruth(v, opts))
			if r.NextCursor() != "" {
				t.Fatal("top-k result minted a cursor")
			}
		}
	}
}

func TestAggregateMatchesReference(t *testing.T) {
	v := testView(t, 8)
	for _, opts := range []TruthOptions{{}, {MinProb: 0.4}, {Entity: v.Dataset.Entities[1]}} {
		rows := refTruth(v, opts)

		// Entity rollup reference.
		var wantEnt []Group
		byEnt := map[string][]Row{}
		for _, r := range rows {
			byEnt[r.Entity] = append(byEnt[r.Entity], r)
		}
		for _, name := range v.Dataset.Entities {
			if rs := byEnt[name]; len(rs) > 0 {
				wantEnt = append(wantEnt, refGroup(name, rs))
			}
		}
		got, err := Aggregate(v, AggByEntity, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantEnt) {
			t.Fatalf("entity agg (%+v):\n got %+v\nwant %+v", opts, got, wantEnt)
		}

		// Source rollup reference.
		ds := v.Dataset
		var wantSrc []Group
		for s, name := range ds.Sources {
			var pos []Row
			neg := 0
			for _, r := range rows {
				for _, ci := range ds.ClaimsByFact[r.Fact] {
					if c := ds.Claims[ci]; c.Source == s {
						if c.Observation {
							pos = append(pos, r)
						} else {
							neg++
						}
					}
				}
			}
			if len(pos) == 0 && neg == 0 {
				continue
			}
			g := refGroup(name, pos)
			g.PositiveClaims = len(pos)
			g.NegativeClaims = neg
			wantSrc = append(wantSrc, g)
		}
		gotSrc, err := Aggregate(v, AggBySource, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotSrc, wantSrc) {
			t.Fatalf("source agg (%+v):\n got %+v\nwant %+v", opts, gotSrc, wantSrc)
		}
	}
}

// refGroup folds rows into a Group the straightforward way.
func refGroup(key string, rows []Row) Group {
	g := Group{Key: key, Facts: len(rows)}
	for i, r := range rows {
		if r.Predicted {
			g.Predicted++
		}
		g.MeanProb += r.Probability
		if i == 0 || r.Probability > g.MaxProb {
			g.MaxProb = r.Probability
		}
	}
	if len(rows) > 0 {
		g.MeanProb /= float64(len(rows))
	}
	return g
}

func TestAggregateRejectsPagination(t *testing.T) {
	v := testView(t, 9)
	for _, opts := range []TruthOptions{{TopK: 2}, {Limit: 2}, {Cursor: encodeCursor(v.Seq, 0)}} {
		if _, err := Aggregate(v, AggBySource, opts); err == nil {
			t.Fatalf("aggregate accepted %+v", opts)
		}
	}
	if _, err := Aggregate(v, AggKind("weird"), TruthOptions{}); err == nil {
		t.Fatal("aggregate accepted unknown kind")
	}
}

func TestRecordsListing(t *testing.T) {
	v := testView(t, 10)
	// Full listing equals the cached table in entity order.
	r, err := Records(v, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got []*integrate.Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, rec)
	}
	if len(got) != len(v.Records) {
		t.Fatalf("%d records, want %d", len(got), len(v.Records))
	}
	for e := range got {
		if got[e] != &v.Records[e] {
			t.Fatalf("record %d is not the cached row", e)
		}
	}

	// Single-entity path.
	one, err := Records(v, RecordOptions{Entity: v.Dataset.Entities[4]})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := one.Next()
	if !ok || rec.Entity != v.Dataset.Entities[4] {
		t.Fatalf("single record = %v, %v", rec, ok)
	}
	if _, ok := one.Next(); ok {
		t.Fatal("single-entity listing yielded a second record")
	}

	// Paginated walk covers every record exactly once.
	var walked []string
	cursor := ""
	for {
		rs, err := Records(v, RecordOptions{Limit: 3, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for {
			rec, ok := rs.Next()
			if !ok {
				break
			}
			walked = append(walked, rec.Entity)
		}
		if cursor = rs.NextCursor(); cursor == "" {
			break
		}
	}
	if len(walked) != len(v.Records) {
		t.Fatalf("walked %d records, want %d", len(walked), len(v.Records))
	}
	for e, name := range walked {
		if name != v.Records[e].Entity {
			t.Fatalf("walked[%d] = %q, want %q", e, name, v.Records[e].Entity)
		}
	}
}

// TestPropertyStreamEqualsReference is the randomized equivalence
// property: for random filter/pagination/top-k combinations the streaming
// engine returns exactly the materialize-then-filter reference.
func TestPropertyStreamEqualsReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		v := testView(t, 100+seed)
		rng := stats.NewRNG(555 + seed)
		ds := v.Dataset
		for trial := 0; trial < 40; trial++ {
			var opts TruthOptions
			if rng.Bool(0.3) {
				opts.Entity = ds.Entities[rng.Intn(len(ds.Entities))]
				if rng.Bool(0.3) {
					facts := ds.FactsByEntity[v.EntityByName[opts.Entity]]
					opts.Attribute = ds.Facts[facts[rng.Intn(len(facts))]].Attribute
				}
			}
			if rng.Bool(0.3) {
				opts.Source = ds.Sources[rng.Intn(len(ds.Sources))]
			}
			if rng.Bool(0.4) {
				opts.MinProb = math.Round(rng.Float64()*100) / 100
			}
			if rng.Bool(0.3) {
				p := rng.Bool(0.5)
				opts.Predicted = &p
			}
			want := refTruth(v, opts)
			switch rng.Intn(3) {
			case 0: // single stream
				r, err := Truth(v, opts)
				if err != nil {
					t.Fatalf("seed %d trial %d (%+v): %v", seed, trial, opts, err)
				}
				sameRows(t, "stream", drain(t, r), want)
			case 1: // paginated walk
				sameRows(t, "paginated", paginate(t, v, opts, 1+rng.Intn(9)), want)
			case 2: // top-k
				opts.TopK = 1 + rng.Intn(len(want)+3)
				r, err := Truth(v, opts)
				if err != nil {
					t.Fatalf("seed %d trial %d (%+v): %v", seed, trial, opts, err)
				}
				want := refTruth(v, opts)
				sameRows(t, "topk", drain(t, r), want)
			}
		}
	}
}

// TestPropertyCursorMonotone: cutting any stream at any point and
// resuming through the minted cursor never drops or duplicates a row
// within one snapshot's seq.
func TestPropertyCursorMonotone(t *testing.T) {
	v := testView(t, 42)
	rng := stats.NewRNG(4242)
	for trial := 0; trial < 60; trial++ {
		opts := TruthOptions{}
		if rng.Bool(0.5) {
			opts.MinProb = rng.Float64()
		}
		if rng.Bool(0.3) {
			opts.Source = v.Dataset.Sources[rng.Intn(len(v.Dataset.Sources))]
		}
		want := refTruth(v, opts)
		cut := rng.Intn(len(want) + 1)
		first := opts
		first.Limit = cut
		if cut == 0 {
			continue // Limit 0 means unlimited; covered elsewhere
		}
		r, err := Truth(v, first)
		if err != nil {
			t.Fatal(err)
		}
		head := drain(t, r)
		rest := opts
		rest.Cursor = r.NextCursor()
		var tail []Row
		if rest.Cursor != "" {
			r2, err := Truth(v, rest)
			if err != nil {
				t.Fatal(err)
			}
			tail = drain(t, r2)
		}
		sameRows(t, "cut+resume", append(head, tail...), want)
	}
}
