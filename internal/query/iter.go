package query

import "sort"

// factIter is the pull iterator every stage of a truth query pipeline
// speaks: next returns fact ids in strictly increasing order until
// exhaustion. Increasing order is the invariant pagination relies on — a
// cursor is "resume at the first fact id >= n", which every source below
// supports as a seek rather than a skip-scan.
type factIter interface {
	// next returns the next fact id, or ok=false at exhaustion.
	next() (f int, ok bool)
	// seek discards every fact id < n. It may only move forward.
	seek(n int)
}

// rangeIter scans the dense fact-id space [pos, limit): the unconstrained
// access path. seek is O(1).
type rangeIter struct {
	pos, limit int
}

func (it *rangeIter) next() (int, bool) {
	if it.pos >= it.limit {
		return 0, false
	}
	f := it.pos
	it.pos++
	return f, true
}

func (it *rangeIter) seek(n int) {
	if n > it.pos {
		it.pos = n
	}
}

// sliceIter walks a pre-sorted fact-id list (an entity's fact list, or a
// single resolved fact). seek binary-searches.
type sliceIter struct {
	ids []int
	pos int
}

func (it *sliceIter) next() (int, bool) {
	if it.pos >= len(it.ids) {
		return 0, false
	}
	f := it.ids[it.pos]
	it.pos++
	return f, true
}

func (it *sliceIter) seek(n int) {
	it.pos += sort.SearchInts(it.ids[it.pos:], n)
}

// postingsIter walks one source's claim postings and yields the facts the
// source made a positive claim on. Claim indices are emitted in claim-table
// order, which is fact-id order (model.Build emits claims fact-major), so
// the increasing-id invariant holds and seek can binary-search the
// postings by their claimed fact.
type postingsIter struct {
	facts func(claimIdx int) int // claim index -> fact id
	pos   func(claimIdx int) bool
	ids   []int // claim indices of the source, increasing
	at    int
}

func (it *postingsIter) next() (int, bool) {
	for it.at < len(it.ids) {
		ci := it.ids[it.at]
		it.at++
		if it.pos(ci) {
			return it.facts(ci), true
		}
	}
	return 0, false
}

func (it *postingsIter) seek(n int) {
	it.at += sort.Search(len(it.ids)-it.at, func(i int) bool {
		return it.facts(it.ids[it.at+i]) >= n
	})
}

// filterIter applies a residual predicate inside the pull loop — the
// filter-during-scan discipline; rejected ids are skipped without any row
// materialization.
type filterIter struct {
	in   factIter
	keep func(f int) bool
}

func (it *filterIter) next() (int, bool) {
	for {
		f, ok := it.in.next()
		if !ok {
			return 0, false
		}
		if it.keep(f) {
			return f, true
		}
	}
}

func (it *filterIter) seek(n int) { it.in.seek(n) }

// emptyIter yields nothing (a name that resolved to no fact).
type emptyIter struct{}

func (emptyIter) next() (int, bool) { return 0, false }
func (emptyIter) seek(int)          {}
