package query

import (
	"errors"
	"fmt"
)

// AggKind names a streaming rollup dimension.
type AggKind string

const (
	// AggByEntity groups matching facts by their entity.
	AggByEntity AggKind = "entity"
	// AggBySource groups matching facts by the sources that claimed them.
	AggBySource AggKind = "source"
)

// Valid reports whether k names a known rollup.
func (k AggKind) Valid() bool { return k == AggByEntity || k == AggBySource }

// Group is one rollup row. For AggByEntity, Facts counts the entity's
// matching facts and the claim counters stay zero; for AggBySource, Facts
// counts the facts the source positively claimed among the matches, and
// PositiveClaims/NegativeClaims count all its claims on them.
type Group struct {
	Key       string  `json:"key"`
	Facts     int     `json:"facts"`
	Predicted int     `json:"predicted"`
	MeanProb  float64 `json:"mean_prob"`
	MaxProb   float64 `json:"max_prob"`

	PositiveClaims int `json:"positive_claims,omitempty"`
	NegativeClaims int `json:"negative_claims,omitempty"`
}

// accum is one group's running state.
type accum struct {
	facts     int
	predicted int
	sum       float64
	max       float64
	pos, neg  int
}

// fold adds fact f (probability p) to the accumulator.
func (a *accum) fold(p float64, predicted bool) {
	a.facts++
	if predicted {
		a.predicted++
	}
	a.sum += p
	if a.facts == 1 || p > a.max {
		a.max = p
	}
}

// Aggregate streams the facts matching opts through a rollup keyed by
// entity or source and returns the non-empty groups in id order. The
// pipeline carries fact ids only: no intermediate row slice exists at any
// point, and memory is O(groups) in the accumulator array.
//
// TopK, Limit and Cursor have no defined meaning for a rollup and are
// rejected.
func Aggregate(v *View, by AggKind, opts TruthOptions) ([]Group, error) {
	if !by.Valid() {
		return nil, fmt.Errorf("query: unknown aggregation %q", by)
	}
	if opts.TopK > 0 || opts.Limit > 0 || opts.Cursor != "" {
		return nil, errors.New("query: aggregation cannot be combined with topk, limit or cursor")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	it, err := compile(v, opts)
	if err != nil {
		return nil, err
	}
	ds := v.Dataset
	var names []string
	if by == AggByEntity {
		names = ds.Entities
	} else {
		names = ds.Sources
	}
	accs := make([]accum, len(names))
	for {
		f, ok := it.next()
		if !ok {
			break
		}
		p := v.Prob[f]
		predicted := p >= v.Threshold
		if by == AggByEntity {
			accs[ds.Facts[f].Entity].fold(p, predicted)
			continue
		}
		for _, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			a := &accs[c.Source]
			if c.Observation {
				a.pos++
				a.fold(p, predicted)
			} else {
				a.neg++
			}
		}
	}
	groups := make([]Group, 0)
	for id, a := range accs {
		if a.facts == 0 && a.neg == 0 {
			continue
		}
		g := Group{
			Key:            names[id],
			Facts:          a.facts,
			Predicted:      a.predicted,
			MaxProb:        a.max,
			PositiveClaims: a.pos,
			NegativeClaims: a.neg,
		}
		if a.facts > 0 {
			g.MeanProb = a.sum / float64(a.facts)
		}
		groups = append(groups, g)
	}
	return groups, nil
}
