// Package query is the streaming query engine over immutable serving
// snapshots: composable lazy iterators that answer filtered, paginated,
// top-k and aggregated reads of the truth table (Definition 4) without
// materializing intermediate row slices.
//
// The design follows the Volcano-to-lazy-sequences discipline: a query
// compiles into a pull pipeline of fact-id iterators, predicates are
// evaluated inside the scan (never on materialized rows), and the most
// selective access path available is chosen first — a (entity, attribute)
// name pair resolves to a single fact through the snapshot's fact index,
// an entity filter walks only that entity's fact list, a source filter
// walks the source's claim postings, and only a fully unconstrained query
// scans the fact table. Rows are materialized one at a time at the sink
// (an HTTP encoder, a bounded top-k heap, or a streaming aggregator), so
// memory stays O(page) — or O(k), or O(groups) — regardless of corpus
// size.
//
// Pagination cursors are opaque tokens binding the snapshot's refit
// sequence number to the next fact id. Fact ids are stable within one
// snapshot (every iterator yields them in increasing order), so a cursor
// resumes exactly on the snapshot that minted it; presented to a later
// snapshot it fails with ErrStaleCursor, the restart signal, because a
// refit may renumber facts.
package query
