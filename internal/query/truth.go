package query

import (
	"errors"
	"fmt"
	"sort"
)

// Typed not-found errors: the single error path the engine, the snapshot
// accessors and the HTTP layer share (the HTTP layer maps all three to
// 404).
var (
	// ErrNoEntity reports an entity name absent from the snapshot.
	ErrNoEntity = errors.New("query: no such entity")
	// ErrNoFact reports an (entity, attribute) pair absent from the snapshot.
	ErrNoFact = errors.New("query: no such fact")
	// ErrNoSource reports a source name absent from the snapshot.
	ErrNoSource = errors.New("query: no such source")
)

// TruthOptions selects, orders and pages the truth table. The zero value
// streams every fact in id order.
type TruthOptions struct {
	// Entity restricts to one entity's facts (served via the entity
	// index, not a scan). Attribute additionally resolves to the single
	// (Entity, Attribute) fact and requires Entity.
	Entity    string
	Attribute string
	// Source restricts to facts the named source positively claimed
	// (served via the source's claim postings when it is the most
	// selective path available).
	Source string
	// MinProb keeps only facts with probability >= MinProb.
	MinProb float64
	// Predicted, when non-nil, keeps only facts whose thresholded
	// prediction equals *Predicted.
	Predicted *bool
	// TopK, when > 0, returns the k highest-probability matches in
	// decreasing order (ties broken by fact id) through a bounded heap.
	// Top-k output has no stable resume point, so it cannot be combined
	// with Cursor.
	TopK int
	// Limit, when > 0, ends the stream after Limit rows and makes
	// NextCursor return a resume token if matches remain.
	Limit int
	// Cursor resumes a previous query on the same snapshot. A cursor
	// minted by a different snapshot fails with ErrStaleCursor.
	Cursor string
}

// validate rejects option combinations with no defined meaning.
func (o TruthOptions) validate() error {
	if o.Attribute != "" && o.Entity == "" {
		return errors.New("query: attribute filter requires entity")
	}
	if o.MinProb < 0 || o.MinProb > 1 {
		return fmt.Errorf("query: min_prob %v outside [0,1]", o.MinProb)
	}
	if o.TopK < 0 {
		return fmt.Errorf("query: topk %d must be non-negative", o.TopK)
	}
	if o.Limit < 0 {
		return fmt.Errorf("query: limit %d must be non-negative", o.Limit)
	}
	if o.TopK > 0 && o.Cursor != "" {
		return errors.New("query: topk cannot be paginated with a cursor")
	}
	return nil
}

// compile builds the pushdown pipeline for opts: the most selective access
// path as the source, remaining predicates fused into one residual filter
// evaluated inside the scan.
func compile(v *View, opts TruthOptions) (factIter, error) {
	ds := v.Dataset
	var it factIter
	residualSource := false
	switch {
	case opts.Entity != "" && opts.Attribute != "":
		f, ok := v.FactByName[[2]string{opts.Entity, opts.Attribute}]
		if !ok {
			if _, ok := v.EntityByName[opts.Entity]; !ok {
				return nil, ErrNoEntity
			}
			return nil, ErrNoFact
		}
		it = &sliceIter{ids: []int{f}}
		residualSource = opts.Source != ""
	case opts.Entity != "":
		e, ok := v.EntityByName[opts.Entity]
		if !ok {
			return nil, ErrNoEntity
		}
		it = &sliceIter{ids: ds.FactsByEntity[e]}
		residualSource = opts.Source != ""
	case opts.Source != "":
		s := ds.SourceIndex(opts.Source)
		if s < 0 {
			return nil, ErrNoSource
		}
		it = &postingsIter{
			ids:   ds.ClaimsBySource[s],
			facts: func(ci int) int { return ds.Claims[ci].Fact },
			pos:   func(ci int) bool { return ds.Claims[ci].Observation },
		}
	default:
		it = &rangeIter{limit: ds.NumFacts()}
	}

	var preds []func(int) bool
	if residualSource {
		s := ds.SourceIndex(opts.Source)
		if s < 0 {
			return nil, ErrNoSource
		}
		preds = append(preds, func(f int) bool {
			for _, ci := range ds.ClaimsByFact[f] {
				if c := ds.Claims[ci]; c.Source == s {
					return c.Observation
				}
			}
			return false
		})
	}
	if opts.MinProb > 0 {
		floor := opts.MinProb
		preds = append(preds, func(f int) bool { return v.Prob[f] >= floor })
	}
	if opts.Predicted != nil {
		want := *opts.Predicted
		preds = append(preds, func(f int) bool { return (v.Prob[f] >= v.Threshold) == want })
	}
	switch len(preds) {
	case 0:
	case 1:
		it = &filterIter{in: it, keep: preds[0]}
	default:
		it = &filterIter{in: it, keep: func(f int) bool {
			for _, p := range preds {
				if !p(f) {
					return false
				}
			}
			return true
		}}
	}
	return it, nil
}

// pager pulls ids from a pipeline under a page limit and mints the resume
// cursor. When the limit is hit it peeks exactly one id further: if one
// exists the cursor points AT it, so the next page seeks straight to the
// first unserved match without re-evaluating any predicate.
type pager struct {
	seq     int64
	it      factIter
	limit   int
	emitted int
	done    bool
	next    string
}

func (p *pager) nextID() (int, bool) {
	if p.done {
		return 0, false
	}
	if p.limit > 0 && p.emitted == p.limit {
		if f, ok := p.it.next(); ok {
			p.next = encodeCursor(p.seq, f)
		}
		p.done = true
		return 0, false
	}
	f, ok := p.it.next()
	if !ok {
		p.done = true
		return 0, false
	}
	p.emitted++
	return f, true
}

// Rows is a streaming truth result: call Next until it reports false, then
// NextCursor for the resume token ("" when the result set is exhausted).
type Rows struct {
	v *View
	p pager
	// sorted holds top-k results (already ordered); nil for streams.
	sorted []scored
	pos    int
}

// scored is a heap/sort element: probability plus fact id.
type scored struct {
	p float64
	f int
}

// Next returns the next row of the result.
func (r *Rows) Next() (Row, bool) {
	if r.sorted != nil {
		if r.pos >= len(r.sorted) {
			return Row{}, false
		}
		f := r.sorted[r.pos].f
		r.pos++
		return r.v.row(f), true
	}
	f, ok := r.p.nextID()
	if !ok {
		return Row{}, false
	}
	return r.v.row(f), true
}

// NextCursor returns the opaque resume token after the stream ends, or ""
// when there is nothing left (top-k results never paginate).
func (r *Rows) NextCursor() string { return r.p.next }

// Truth compiles opts against v and returns the streaming result. Filters
// are evaluated inside the scan; nothing is materialized except the rows
// the caller pulls (or, for top-k, a k-bounded heap).
func Truth(v *View, opts TruthOptions) (*Rows, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	start, err := resolveCursor(v, opts.Cursor)
	if err != nil {
		return nil, err
	}
	it, err := compile(v, opts)
	if err != nil {
		return nil, err
	}
	if start > 0 {
		it.seek(start)
	}
	r := &Rows{v: v, p: pager{seq: v.Seq, it: it, limit: opts.Limit}}
	if opts.TopK > 0 {
		r.sorted = topK(v, it, opts.TopK)
		r.p.done = true
	}
	return r, nil
}

// topK drains the pipeline through a bounded min-heap: the root is always
// the weakest kept element, and a candidate only enters if it beats the
// root — O(n log k) time, O(k) space, no row materialization.
func topK(v *View, it factIter, k int) []scored {
	h := make([]scored, 0, k)
	// weaker orders by (probability, then higher fact id loses ties), so
	// the final sort — decreasing probability, increasing fact id — keeps
	// exactly the k best under a deterministic total order.
	weaker := func(a, b scored) bool {
		if a.p != b.p {
			return a.p < b.p
		}
		return a.f > b.f
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && weaker(h[l], h[m]) {
				m = l
			}
			if r < len(h) && weaker(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for {
		f, ok := it.next()
		if !ok {
			break
		}
		c := scored{p: v.Prob[f], f: f}
		if len(h) < k {
			h = append(h, c)
			// Sift up.
			for i := len(h) - 1; i > 0; {
				parent := (i - 1) / 2
				if !weaker(h[i], h[parent]) {
					break
				}
				h[i], h[parent] = h[parent], h[i]
				i = parent
			}
			continue
		}
		if weaker(h[0], c) {
			h[0] = c
			siftDown(0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return weaker(h[j], h[i]) })
	return h
}
