// Package core implements the paper's primary contribution: the Latent
// Truth Model (§4), its collapsed Gibbs sampling inference (§5.2,
// Algorithm 1, Equation 2), maximum-a-posteriori source-quality estimation
// (§5.3, the read-off behind Table 8), the incremental predictor LTMinc
// (§5.4, Equation 3), and the positive-claims-only truncation LTMpos used
// as an ablation in §6.2.
//
// The generative process being inverted is:
//
//	for each source s:   φ0_s ~ Beta(α0,1, α0,0)   // false positive rate
//	                     φ1_s ~ Beta(α1,1, α1,0)   // sensitivity
//	for each fact f:     θ_f  ~ Beta(β1, β0)
//	                     t_f  ~ Bernoulli(θ_f)
//	for each claim c∈Cf: o_c  ~ Bernoulli(φ^{t_f}_{s_c})
//
// θ and φ are integrated out analytically (Beta–Bernoulli conjugacy), so
// the sampler only walks the space of truth assignments t, with per-source
// confusion counts as sufficient statistics.
//
// Inference runs on a compiled engine (engine.go): the claim table
// flattened once into a CSR-style layout and every log(count + α) of
// Equation 2 memoized per source, with a verbatim Algorithm 1
// transcription retained in reference.go as the bit-identical oracle.
// Alongside the one-call LTM.Fit, the package exposes a step-level Sampler
// (sampler.go) — single sweeps, sample keeps, confusion-count
// export/import, shared log tables — which is the substrate the
// entity-sharded parallel fitter (internal/shard) drives. Multi-chain
// fits with Gelman–Rubin diagnostics (chains.go), the uncollapsed naive
// sampler and an EM alternative (§5.2 design-choice ablations) round out
// the inference surface.
package core
