package core

import (
	"math"
	"testing"

	"latenttruth/internal/model"
)

func TestNaiveGibbsMatchesExactPosterior(t *testing.T) {
	// The uncollapsed sampler targets the same posterior; with a long
	// chain its marginals must also agree with exact enumeration (it
	// mixes more slowly, hence the longer chain and looser tolerance).
	ds := exactTestDataset()
	priors := Priors{FP: 2, TN: 8, TP: 6, FN: 4, True: 3, Fls: 5}
	exact := exactMarginals(ds, priors)
	cfg := Config{
		Priors:     priors,
		Iterations: 120000,
		BurnIn:     5000,
		SampleGap:  0,
		Seed:       31,
	}
	fit, err := NewNaive(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range exact {
		if d := math.Abs(fit.Prob[f] - exact[f]); d > 0.02 {
			t.Errorf("fact %d: naive %v vs exact %v (|Δ| = %v)",
				f, fit.Prob[f], exact[f], d)
		}
	}
}

func TestNaiveAgreesWithCollapsedOnEasyData(t *testing.T) {
	ds := easySynthetic(t, 300, 41)
	collapsed, err := New(Config{Seed: 5}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewNaive(Config{Seed: 5, Iterations: 200, BurnIn: 50}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for f := range collapsed.Prob {
		if (collapsed.Prob[f] >= 0.5) != (naive.Prob[f] >= 0.5) {
			flips++
		}
	}
	if flips > 9 {
		t.Fatalf("collapsed and naive disagree on %d/300 facts", flips)
	}
}

func TestNaiveName(t *testing.T) {
	var m model.Method = NewNaive(Config{})
	if m.Name() != "LTM-naive" {
		t.Fatalf("name = %q", m.Name())
	}
}

func TestEMRecoversSyntheticTruth(t *testing.T) {
	ds := easySynthetic(t, 600, 42)
	fit, err := NewEM(Config{}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, ds, fit.Prob); acc < 0.95 {
		t.Fatalf("EM accuracy %v on easy synthetic", acc)
	}
	if err := fit.Result.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEMIsDeterministic(t *testing.T) {
	ds := easySynthetic(t, 200, 43)
	a, err := NewEM(Config{}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEM(Config{}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Prob {
		if a.Prob[f] != b.Prob[f] {
			t.Fatalf("EM not deterministic at fact %d", f)
		}
	}
}

func TestEMAgreesWithGibbs(t *testing.T) {
	ds := easySynthetic(t, 400, 44)
	em, err := NewEM(Config{}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	gibbs, err := New(Config{Seed: 2}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for f := range em.Prob {
		if (em.Prob[f] >= 0.5) != (gibbs.Prob[f] >= 0.5) {
			flips++
		}
	}
	if flips > 12 {
		t.Fatalf("EM and Gibbs disagree on %d/400 facts", flips)
	}
	// Quality estimates must agree closely too.
	for s := range em.Sensitivity {
		if d := math.Abs(em.Sensitivity[s] - gibbs.Sensitivity[s]); d > 0.1 {
			t.Fatalf("source %d sensitivity differs by %v", s, d)
		}
	}
}

func TestEMValidation(t *testing.T) {
	if _, err := NewEM(Config{Priors: Priors{FP: -1}}).Fit(easySynthetic(t, 50, 45)); err == nil {
		t.Fatal("expected prior validation error")
	}
	if _, err := NewEM(Config{}).Fit(&model.Dataset{Labels: map[int]bool{}}); err == nil {
		t.Fatal("expected empty-dataset error")
	}
	var m model.Method = NewEM(Config{})
	if m.Name() != "LTM-EM" {
		t.Fatalf("name = %q", m.Name())
	}
}
