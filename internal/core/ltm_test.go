package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"latenttruth/internal/model"
	"latenttruth/internal/synth"
)

// easySynthetic returns a small, well-separated synthetic dataset drawn
// from the model's own generative process: 15 reliable sources.
func easySynthetic(t *testing.T, facts int, seed int64) *model.Dataset {
	t.Helper()
	ds, _, err := synth.PaperSynthetic(synth.PaperSyntheticConfig{
		NumFacts:   facts,
		NumSources: 15,
		Alpha0:     [2]float64{5, 95},  // E[FPR] = 0.05
		Alpha1:     [2]float64{85, 15}, // E[sens] = 0.85
		Beta:       [2]float64{10, 10},
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func accuracyOf(t *testing.T, ds *model.Dataset, prob []float64) float64 {
	t.Helper()
	correct := 0
	for f, v := range ds.Labels {
		if (prob[f] >= 0.5) == v {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Labels))
}

func TestLTMRecoversSyntheticTruth(t *testing.T) {
	ds := easySynthetic(t, 800, 3)
	fit, err := New(Config{Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, ds, fit.Prob); acc < 0.97 {
		t.Fatalf("accuracy %v on easy synthetic data, want >= 0.97", acc)
	}
	if err := fit.Result.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLTMDeterministicGivenSeed(t *testing.T) {
	ds := easySynthetic(t, 200, 4)
	a, err := New(Config{Seed: 9}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 9}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Prob {
		if a.Prob[f] != b.Prob[f] {
			t.Fatalf("fact %d: %v vs %v", f, a.Prob[f], b.Prob[f])
		}
	}
}

func TestLTMDifferentSeedsAgreeOnEasyData(t *testing.T) {
	ds := easySynthetic(t, 400, 5)
	a, err := New(Config{Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 2}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	disagree := 0
	for f := range a.Prob {
		if (a.Prob[f] >= 0.5) != (b.Prob[f] >= 0.5) {
			disagree++
		}
	}
	if disagree > 8 {
		t.Fatalf("%d/400 predictions flipped across seeds", disagree)
	}
}

func TestLTMProbabilitiesInRange(t *testing.T) {
	ds := easySynthetic(t, 300, 6)
	fit, err := New(Config{Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f, p := range fit.Prob {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("fact %d probability %v", f, p)
		}
	}
	for s := range fit.Sensitivity {
		if fit.Sensitivity[s] <= 0 || fit.Sensitivity[s] >= 1 {
			t.Fatalf("source %d sensitivity %v", s, fit.Sensitivity[s])
		}
		if fit.FalsePositiveRate[s] <= 0 || fit.FalsePositiveRate[s] >= 1 {
			t.Fatalf("source %d FPR %v", s, fit.FalsePositiveRate[s])
		}
	}
}

// TestLTMTable4WithPriorKnowledge is the paper's Example 1 as a regression
// test: with per-source prior knowledge, LTM reproduces the Table 4 truth
// (Johnny Depp false in Harry Potter, true in Pirates 4; Rupert Grint
// true despite minority support).
func TestLTMTable4WithPriorKnowledge(t *testing.T) {
	corpus := synth.Table1Example()
	ds := corpus.Dataset
	cfg := Config{
		Priors:     DefaultPriors(ds.NumFacts()),
		Iterations: 500,
		Seed:       7,
		SourcePriors: map[string]Priors{
			"IMDB":          {TP: 90, FN: 10, FP: 1, TN: 99},
			"Netflix":       {TP: 30, FN: 70, FP: 1, TN: 99},
			"BadSource.com": {TP: 50, FN: 50, FP: 30, TN: 70},
		},
	}
	fit, err := New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f, want := range ds.Labels {
		got := fit.Prob[f] >= 0.5
		if got != want {
			fact := ds.Facts[f]
			t.Errorf("(%s, %s): p=%.3f, want truth %v",
				ds.EntityName(fact), fact.Attribute, fit.Prob[f], want)
		}
	}
}

func TestLTMStrongTruthPriorFlipsSmallData(t *testing.T) {
	// With an overwhelming prior that facts are false, everything should
	// be predicted false on weak data; with a true prior, true.
	corpus := synth.Table1Example()
	ds := corpus.Dataset
	// Uniform quality priors so individual claims carry little evidence
	// and the truth prior dominates.
	base := Priors{FP: 1, TN: 1, TP: 1, FN: 1}
	base.True, base.Fls = 1, 10000
	fit, err := New(Config{Priors: base, Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f, p := range fit.Prob {
		if p >= 0.5 {
			t.Fatalf("fact %d predicted true (p=%v) under overwhelming false prior", f, p)
		}
	}
	base.True, base.Fls = 10000, 1
	fit, err = New(Config{Priors: base, Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f, p := range fit.Prob {
		if p < 0.5 {
			t.Fatalf("fact %d predicted false (p=%v) under overwhelming true prior", f, p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ds := easySynthetic(t, 50, 7)
	cases := []Config{
		{Iterations: -1},
		{Iterations: 10, BurnIn: 10},
		{Iterations: 10, BurnIn: -2}, // -1 is the NoBurnIn sentinel, valid
		{Iterations: 10, SampleGap: -2},
		{Priors: Priors{FP: -1, TN: 1, TP: 1, FN: 1, True: 1, Fls: 1}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg).Fit(ds); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestConfigDefaultsAndSentinels(t *testing.T) {
	// The zero value takes the paper's schedule.
	d := Config{}.withDefaults(1000)
	if d.Iterations != 100 || d.BurnIn != 20 || d.SampleGap != 4 || d.Seed != 1 {
		t.Fatalf("zero-value defaults = %+v", d)
	}
	// BurnIn: 0 with Iterations > 20 still means "default 20" (documented
	// behavior, relied on by every zero-valued Config in the repo) ...
	d = Config{Iterations: 100}.withDefaults(1000)
	if d.BurnIn != 20 {
		t.Fatalf("BurnIn 0 with 100 iterations = %d, want default 20", d.BurnIn)
	}
	// ... and at most 20 iterations, zero burn-in is kept as-is.
	d = Config{Iterations: 20}.withDefaults(1000)
	if d.BurnIn != 0 {
		t.Fatalf("BurnIn 0 with 20 iterations = %d, want 0", d.BurnIn)
	}
	// The sentinels make the explicit zeros expressible.
	d = Config{Iterations: 100, BurnIn: NoBurnIn, SampleGap: NoSampleGap}.withDefaults(1000)
	if d.BurnIn != 0 || d.SampleGap != 0 {
		t.Fatalf("sentinels resolved to BurnIn=%d SampleGap=%d, want 0, 0", d.BurnIn, d.SampleGap)
	}
}

func TestNoBurnInSentinelKeepsAllSweeps(t *testing.T) {
	ds := easySynthetic(t, 80, 12)
	// Default schedule: (100-20)/(4+1) = 16 kept samples.
	def, err := New(Config{Seed: 1, Iterations: 100}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if def.SamplesKept != 16 {
		t.Fatalf("default schedule kept %d samples, want 16", def.SamplesKept)
	}
	// NoBurnIn keeps samples from the first sweep on: 100/(4+1) = 20.
	nb, err := New(Config{Seed: 1, Iterations: 100, BurnIn: NoBurnIn}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if nb.SamplesKept != 20 {
		t.Fatalf("NoBurnIn kept %d samples, want 20", nb.SamplesKept)
	}
	// NoSampleGap keeps every post-burn-in sweep: 100-20 = 80.
	ng, err := New(Config{Seed: 1, Iterations: 100, SampleGap: NoSampleGap}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ng.SamplesKept != 80 {
		t.Fatalf("NoSampleGap kept %d samples, want 80", ng.SamplesKept)
	}
}

func TestSourcePriorValidation(t *testing.T) {
	ds := easySynthetic(t, 50, 8)
	cfg := Config{SourcePriors: map[string]Priors{
		"source00": {TP: -5, FN: 1, FP: 1, TN: 1},
	}}
	if _, err := New(cfg).Fit(ds); err == nil || !strings.Contains(err.Error(), "source00") {
		t.Fatalf("err = %v", err)
	}
}

func TestFitEmptyDataset(t *testing.T) {
	ds := &model.Dataset{Labels: map[int]bool{}}
	if _, err := New(Config{}).Fit(ds); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestDefaultPriors(t *testing.T) {
	p := DefaultPriors(33526)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Specificity prior mean 0.99.
	if mean := p.TN / (p.TN + p.FP); math.Abs(mean-0.99) > 1e-9 {
		t.Fatalf("specificity prior mean %v", mean)
	}
	// Prior total on the order of the number of facts (paper: (100, 10000)
	// for the 33526-fact movie corpus).
	if total := p.FP + p.TN; total < 5000 || total > 20000 {
		t.Fatalf("prior total %v out of the paper's scale", total)
	}
	// Small datasets get the floor.
	small := DefaultPriors(10)
	if small.FP+small.TN != 100 {
		t.Fatalf("small-data prior total %v, want 100", small.FP+small.TN)
	}
	// Uniform sensitivity and truth priors.
	if p.TP != p.FN || p.True != p.Fls {
		t.Fatalf("sensitivity/truth priors not uniform: %+v", p)
	}
}

func TestPriorsAlphaIndexing(t *testing.T) {
	p := Priors{FP: 1, TN: 2, TP: 3, FN: 4, True: 5, Fls: 6}
	if p.alpha(0, 1) != 1 || p.alpha(0, 0) != 2 || p.alpha(1, 1) != 3 || p.alpha(1, 0) != 4 {
		t.Fatal("alpha indexing wrong")
	}
	if p.alphaTotal(0) != 3 || p.alphaTotal(1) != 7 {
		t.Fatal("alphaTotal wrong")
	}
	if p.beta(1) != 5 || p.beta(0) != 6 {
		t.Fatal("beta indexing wrong")
	}
}

func TestGibbsCountsStayConsistent(t *testing.T) {
	// After running, the internal counts must equal a fresh recount from
	// the final truth assignment — the bookkeeping invariant of
	// Algorithm 1's incremental updates.
	ds := easySynthetic(t, 200, 9)
	cfg := Config{Seed: 3}.withDefaults(ds.NumFacts())
	lay := compileLayout(ds)
	g := newEngine(lay, newTables(ds, lay, cfg), cfg)
	g.run(nil)
	want := make([]int32, 4*ds.NumSources())
	for _, c := range ds.Claims {
		o := 0
		if c.Observation {
			o = 1
		}
		want[c.Source*4+int(g.truth[c.Fact])*2+o]++
	}
	for i := range want {
		if want[i] != g.n[i] {
			t.Fatalf("count cell %d drifted: have %v, recount %v", i, g.n[i], want[i])
		}
	}
}

func TestGibbsCountInvariantProperty(t *testing.T) {
	// Property: for any seed and small synthetic dataset, counts remain
	// consistent and probabilities in range.
	f := func(seedRaw uint16) bool {
		ds, _, err := synth.PaperSynthetic(synth.PaperSyntheticConfig{
			NumFacts: 60, NumSources: 5,
			Alpha0: [2]float64{10, 90}, Alpha1: [2]float64{80, 20},
			Beta: [2]float64{10, 10}, Seed: int64(seedRaw) + 1,
		})
		if err != nil {
			return false
		}
		cfg := Config{Seed: int64(seedRaw)*7 + 1, Iterations: 30, BurnIn: 5}.withDefaults(ds.NumFacts())
		lay := compileLayout(ds)
		g := newEngine(lay, newTables(ds, lay, cfg), cfg)
		g.run(nil)
		recount := make([]int32, 4*ds.NumSources())
		for _, c := range ds.Claims {
			o := 0
			if c.Observation {
				o = 1
			}
			recount[c.Source*4+int(g.truth[c.Fact])*2+o]++
		}
		for i := range recount {
			if recount[i] != g.n[i] {
				return false
			}
		}
		for _, p := range g.probabilities() {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySamplesMatchesExpectation(t *testing.T) {
	// Binary averaging and Rao-Blackwellized averaging must agree on
	// confident predictions of easy data.
	ds := easySynthetic(t, 300, 10)
	bin, err := New(Config{Seed: 2, BinarySamples: true}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := New(Config{Seed: 2}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for f := range bin.Prob {
		if (bin.Prob[f] >= 0.5) != (rb.Prob[f] >= 0.5) {
			flips++
		}
	}
	if flips > 6 {
		t.Fatalf("binary vs RB disagree on %d/300 facts", flips)
	}
}

func TestFitCheckpoints(t *testing.T) {
	ds := easySynthetic(t, 200, 11)
	cps := []Checkpoint{
		{Iterations: 7, BurnIn: 2, SampleGap: 0},
		{Iterations: 20, BurnIn: 5, SampleGap: 0},
		{Iterations: 100, BurnIn: 20, SampleGap: 4},
	}
	results, err := New(Config{Seed: 3}).FitCheckpoints(ds, cps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Accuracy should be high at the last checkpoint and not decrease
	// dramatically from first to last (convergence).
	last := accuracyOf(t, ds, results[2].Prob)
	if last < 0.95 {
		t.Fatalf("checkpoint@100 accuracy %v", last)
	}
	for i, r := range results {
		if err := r.Validate(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	// Names encode the iteration counts.
	if !strings.Contains(results[0].Method, "@7") {
		t.Fatalf("method name %q", results[0].Method)
	}
}

func TestFitCheckpointsValidation(t *testing.T) {
	ds := easySynthetic(t, 50, 12)
	m := New(Config{Seed: 1})
	if _, err := m.FitCheckpoints(ds, nil); err == nil {
		t.Fatal("expected error for no checkpoints")
	}
	if _, err := m.FitCheckpoints(ds, []Checkpoint{{Iterations: 10, BurnIn: 10}}); err == nil {
		t.Fatal("expected error for burn-in >= iterations")
	}
	if _, err := m.FitCheckpoints(ds, []Checkpoint{
		{Iterations: 20, BurnIn: 2}, {Iterations: 10, BurnIn: 2},
	}); err == nil {
		t.Fatal("expected error for unsorted checkpoints")
	}
}

func TestCheckpointMatchesDirectRun(t *testing.T) {
	// A single checkpoint with the default schedule must reproduce the
	// probabilities of a direct Fit with BinarySamples (checkpoints use
	// binary accumulation).
	ds := easySynthetic(t, 150, 13)
	cfg := Config{Seed: 5, Iterations: 100, BurnIn: 20, SampleGap: 4, BinarySamples: true}
	direct, err := New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	viaCp, err := New(cfg).FitCheckpoints(ds, []Checkpoint{{Iterations: 100, BurnIn: 20, SampleGap: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for f := range direct.Prob {
		if math.Abs(direct.Prob[f]-viaCp[0].Prob[f]) > 1e-12 {
			t.Fatalf("fact %d: direct %v vs checkpoint %v", f, direct.Prob[f], viaCp[0].Prob[f])
		}
	}
}

func TestPositiveOnly(t *testing.T) {
	corpus := synth.Table1Example()
	pos := PositiveOnly(corpus.Dataset)
	if pos.NumClaims() != corpus.Dataset.NumPositiveClaims() {
		t.Fatalf("positive-only claims = %d", pos.NumClaims())
	}
	for _, c := range pos.Claims {
		if !c.Observation {
			t.Fatal("negative claim survived")
		}
	}
	// Fact table unchanged so ids align.
	if pos.NumFacts() != corpus.Dataset.NumFacts() {
		t.Fatal("fact table changed")
	}
}

func TestLTMPosPredictsEverythingTrue(t *testing.T) {
	// The headline ablation: without negative claims, LTMpos cannot
	// discriminate and predicts essentially everything true (Table 7).
	ds := easySynthetic(t, 300, 14)
	res, err := NewPos(Config{Seed: 1}).Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	trueRate := 0
	for f := range ds.Facts {
		// Facts with no positive claims at all have no evidence; skip.
		hasPos := false
		for _, ci := range ds.ClaimsByFact[f] {
			if ds.Claims[ci].Observation {
				hasPos = true
				break
			}
		}
		if hasPos && res.Prob[f] >= 0.5 {
			trueRate++
		}
	}
	withPos := 0
	for f := range ds.Facts {
		for _, ci := range ds.ClaimsByFact[f] {
			if ds.Claims[ci].Observation {
				withPos++
				break
			}
		}
	}
	if float64(trueRate) < 0.95*float64(withPos) {
		t.Fatalf("LTMpos predicted %d/%d positively-claimed facts true, want nearly all",
			trueRate, withPos)
	}
}

func TestNamesAndInterfaces(t *testing.T) {
	var _ model.Method = New(Config{})
	var _ model.Method = NewPos(Config{})
	if New(Config{}).Name() != "LTM" || NewPos(Config{}).Name() != "LTMpos" {
		t.Fatal("method names wrong")
	}
}
