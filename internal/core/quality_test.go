package core

import (
	"math"
	"testing"

	"latenttruth/internal/model"
	"latenttruth/internal/synth"
)

// handDataset builds a tiny dataset with known claim structure for
// hand-computing expected counts: two facts, two sources, full coverage.
func handDataset(t *testing.T) *model.Dataset {
	t.Helper()
	db := model.NewRawDB()
	db.Add("e1", "x", "A") // A asserts fact 0
	db.Add("e1", "y", "B") // B asserts fact 1; A denies 1, B denies 0
	ds := model.Build(db)
	if ds.NumFacts() != 2 || ds.NumClaims() != 4 {
		t.Fatalf("unexpected shape: %d facts %d claims", ds.NumFacts(), ds.NumClaims())
	}
	return ds
}

func TestExpectedCountsHandComputed(t *testing.T) {
	ds := handDataset(t)
	// prob[0] = 0.8, prob[1] = 0.25.
	prob := []float64{0.8, 0.25}
	e := ExpectedCounts(ds, prob)
	a := ds.SourceIndex("A")
	b := ds.SourceIndex("B")
	// Source A: positive on fact0 (p=.8) -> E[n_{1,1}] += .8, E[n_{0,1}] += .2;
	// negative on fact1 (p=.25) -> E[n_{1,0}] += .25, E[n_{0,0}] += .75.
	if !approxEq(e[a][1][1], 0.8) || !approxEq(e[a][0][1], 0.2) ||
		!approxEq(e[a][1][0], 0.25) || !approxEq(e[a][0][0], 0.75) {
		t.Fatalf("source A counts %v", e[a])
	}
	// Source B: negative on fact0, positive on fact1.
	if !approxEq(e[b][1][0], 0.8) || !approxEq(e[b][0][0], 0.2) ||
		!approxEq(e[b][1][1], 0.25) || !approxEq(e[b][0][1], 0.75) {
		t.Fatalf("source B counts %v", e[b])
	}
}

func TestEstimateQualityClosedForm(t *testing.T) {
	ds := handDataset(t)
	prob := []float64{1, 0} // fact0 true, fact1 false, no uncertainty
	p := Priors{FP: 1, TN: 9, TP: 2, FN: 2, True: 1, Fls: 1}
	quality, sens, fpr := EstimateQuality(ds, prob, p)
	a := ds.SourceIndex("A")
	// A: TP=1 (fact0 positive), FN=0, FP=0, TN=1 (fact1 negative).
	wantSens := (1 + p.TP) / (1 + 0 + p.TP + p.FN)
	wantFPR := (0 + p.FP) / (0 + 1 + p.FP + p.TN)
	if !approxEq(sens[a], wantSens) || !approxEq(fpr[a], wantFPR) {
		t.Fatalf("A: sens %v (want %v), fpr %v (want %v)", sens[a], wantSens, fpr[a], wantFPR)
	}
	wantPrec := (1 + p.TP) / (1 + 0 + p.TP + p.FP)
	if !approxEq(quality[a].Precision, wantPrec) {
		t.Fatalf("A precision %v want %v", quality[a].Precision, wantPrec)
	}
	if !approxEq(quality[a].Specificity, 1-fpr[a]) {
		t.Fatal("specificity != 1-fpr")
	}
	// B is A's mirror image: positive on the false fact, negative on the
	// true one.
	b := ds.SourceIndex("B")
	wantSensB := (0 + p.TP) / (0 + 1 + p.TP + p.FN)
	wantFPRB := (1 + p.FP) / (1 + 0 + p.FP + p.TN)
	if !approxEq(sens[b], wantSensB) || !approxEq(fpr[b], wantFPRB) {
		t.Fatalf("B: sens %v (want %v), fpr %v (want %v)", sens[b], wantSensB, fpr[b], wantFPRB)
	}
}

func TestQualityRecoversGeneratorParameters(t *testing.T) {
	// On dense synthetic data with many facts, inferred quality should be
	// close to the generator's drawn quality for every source.
	cfg := synth.PaperSyntheticConfig{
		NumFacts: 3000, NumSources: 10,
		Alpha0: [2]float64{10, 90}, Alpha1: [2]float64{70, 30},
		Beta: [2]float64{10, 10}, Seed: 21,
	}
	ds, gen, err := synth.PaperSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := New(Config{Seed: 2, Priors: Priors{
		FP: 10, TN: 990, TP: 50, FN: 50, True: 10, Fls: 10,
	}}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for s, g := range gen {
		if d := math.Abs(fit.Quality[s].Sensitivity - g.Sensitivity); d > 0.08 {
			t.Errorf("source %d sensitivity off by %v (inferred %v, true %v)",
				s, d, fit.Quality[s].Sensitivity, g.Sensitivity)
		}
		if d := math.Abs(fit.Quality[s].Specificity - g.Specificity); d > 0.08 {
			t.Errorf("source %d specificity off by %v (inferred %v, true %v)",
				s, d, fit.Quality[s].Specificity, g.Specificity)
		}
	}
}

func TestRankedQuality(t *testing.T) {
	in := []model.SourceQuality{
		{Source: "low", Sensitivity: 0.2},
		{Source: "high", Sensitivity: 0.9},
		{Source: "mid", Sensitivity: 0.5},
	}
	out := RankedQuality(in)
	if out[0].Source != "high" || out[1].Source != "mid" || out[2].Source != "low" {
		t.Fatalf("order: %v %v %v", out[0].Source, out[1].Source, out[2].Source)
	}
	// Input untouched.
	if in[0].Source != "low" {
		t.Fatal("RankedQuality mutated input")
	}
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
