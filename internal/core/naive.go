package core

import (
	"fmt"
	"math"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// NaiveLTM is the uncollapsed Gibbs sampler for the same graphical model:
// instead of integrating out θ (truth probabilities) and φ (source
// quality) analytically, it samples them explicitly from their Beta
// conditionals each sweep, then samples every t_f from its Bernoulli
// conditional. It targets the same posterior as the collapsed sampler but
// mixes more slowly and costs more per sweep — the design-choice ablation
// for §5.2's "collapsed Gibbs sampler ... yields even greater efficiency".
type NaiveLTM struct {
	cfg Config
}

// NewNaive returns an uncollapsed-sampler estimator with the given
// configuration (the same Config as the collapsed LTM).
func NewNaive(cfg Config) *NaiveLTM { return &NaiveLTM{cfg: cfg} }

// Name implements model.Method.
func (m *NaiveLTM) Name() string { return "LTM-naive" }

// Infer implements model.Method.
func (m *NaiveLTM) Infer(ds *model.Dataset) (*model.Result, error) {
	fit, err := m.Fit(ds)
	if err != nil {
		return nil, err
	}
	return fit.Result, nil
}

// Fit runs uncollapsed Gibbs sampling and returns posterior truth
// probabilities with MAP source quality (computed the same way as the
// collapsed fit, from the averaged truth probabilities).
func (m *NaiveLTM) Fit(ds *model.Dataset) (*FitResult, error) {
	cfg := m.cfg.withDefaults(ds.NumFacts())
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ds.NumFacts() == 0 {
		return nil, fmt.Errorf("core: dataset has no facts")
	}
	rng := stats.NewRNG(cfg.Seed)
	nF, nS := ds.NumFacts(), ds.NumSources()

	truth := make([]int8, nF)
	theta := make([]float64, nF)
	sens := make([]float64, nS) // φ1
	fpr := make([]float64, nS)  // φ0
	// Per-source confusion counts under the current truth assignment.
	n := make([][2][2]int, nS)
	apply := func(f, i, delta int) {
		for _, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			o := 0
			if c.Observation {
				o = 1
			}
			n[c.Source][i][o] += delta
		}
	}
	p := cfg.Priors
	alphaOf := func(s int) Priors {
		if sp, ok := cfg.SourcePriors[ds.Sources[s]]; ok {
			sp.True, sp.Fls = p.True, p.Fls
			return sp
		}
		return p
	}
	for f := range truth {
		if rng.Float64() < 0.5 {
			truth[f] = 1
		}
		apply(f, int(truth[f]), +1)
	}

	sum := make([]float64, nF)
	samples := 0
	for iter := 1; iter <= cfg.Iterations; iter++ {
		// Sample φ for every source from Beta conditionals.
		for s := 0; s < nS; s++ {
			a := alphaOf(s)
			sens[s] = rng.Beta(float64(n[s][1][1])+a.TP, float64(n[s][1][0])+a.FN)
			fpr[s] = rng.Beta(float64(n[s][0][1])+a.FP, float64(n[s][0][0])+a.TN)
			sens[s] = clampOpen(sens[s])
			fpr[s] = clampOpen(fpr[s])
		}
		// Sample θ and t for every fact.
		for f := range truth {
			cur := int(truth[f])
			theta[f] = rng.Beta(p.True+float64(cur), p.Fls+float64(1-cur))
			theta[f] = clampOpen(theta[f])
			l1 := math.Log(theta[f])
			l0 := math.Log1p(-theta[f])
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				if c.Observation {
					l1 += math.Log(sens[c.Source])
					l0 += math.Log(fpr[c.Source])
				} else {
					l1 += math.Log1p(-sens[c.Source])
					l0 += math.Log1p(-fpr[c.Source])
				}
			}
			pTrue := 1.0 / (1.0 + math.Exp(l0-l1))
			next := 0
			if rng.Float64() < pTrue {
				next = 1
			}
			if next != cur {
				apply(f, cur, -1)
				truth[f] = int8(next)
				apply(f, next, +1)
			}
		}
		if iter > cfg.BurnIn && (iter-cfg.BurnIn-1)%(cfg.SampleGap+1) == 0 {
			samples++
			for f, v := range truth {
				sum[f] += float64(v)
			}
		}
	}
	prob := make([]float64, nF)
	if samples == 0 {
		for f, v := range truth {
			prob[f] = float64(v)
		}
	} else {
		for f := range prob {
			prob[f] = sum[f] / float64(samples)
		}
	}
	res := &model.Result{Method: m.Name(), Prob: prob}
	fit := &FitResult{Result: res, SamplesKept: samples, Priors: p}
	fit.Quality, fit.Sensitivity, fit.FalsePositiveRate = estimateQuality(ds, prob, cfg)
	return fit, nil
}

// clampOpen keeps a probability strictly inside (0, 1) so its logs are
// finite.
func clampOpen(x float64) float64 {
	const eps = 1e-12
	if x < eps {
		return eps
	}
	if x > 1-eps {
		return 1 - eps
	}
	return x
}
