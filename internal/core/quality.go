package core

import (
	"sort"

	"latenttruth/internal/model"
)

// EstimateQuality implements the MAP source-quality read-off of §5.3.
// Given posterior truth probabilities p(t_f = 1) for every fact, the
// expected confusion counts of source s are
//
//	E[n_{s,i,j}] = Σ_{c: s_c = s, o_c = j} p(t_{f_c} = i)
//
// and the Beta-posterior MAP estimates follow in closed form:
//
//	sensitivity(s) = (E[n_{s,1,1}] + α1,1) / (E[n_{s,1,·}] + α1,·)
//	specificity(s) = (E[n_{s,0,0}] + α0,0) / (E[n_{s,0,·}] + α0,·)
//	precision(s)   = (E[n_{s,1,1}] + α1,1) / (E[n_{s,·,1}] + α0,1 + α1,1)
//	accuracy(s)    = (E[n_{s,1,1}] + E[n_{s,0,0}] + α1,1 + α0,0) / (E[n_s] + α)
//
// It returns the per-source quality table plus the raw model parameters:
// sens[s] = φ1_s and fpr[s] = φ0_s.
func EstimateQuality(ds *model.Dataset, prob []float64, p Priors) (quality []model.SourceQuality, sens, fpr []float64) {
	return estimateQuality(ds, prob, Config{Priors: p})
}

// estimateQuality is EstimateQuality with per-source prior overrides.
func estimateQuality(ds *model.Dataset, prob []float64, cfg Config) (quality []model.SourceQuality, sens, fpr []float64) {
	nSources := ds.NumSources()
	e := ExpectedCounts(ds, prob)
	quality = make([]model.SourceQuality, nSources)
	sens = make([]float64, nSources)
	fpr = make([]float64, nSources)
	for s := 0; s < nSources; s++ {
		p := cfg.Priors
		if sp, ok := cfg.SourcePriors[ds.Sources[s]]; ok {
			sp.True, sp.Fls = p.True, p.Fls
			p = sp
		}
		quality[s] = QualityFromCounts(ds.Sources[s], e[s], p)
		tp, fn := e[s][1][1], e[s][1][0]
		fp, tn := e[s][0][1], e[s][0][0]
		sens[s] = (tp + p.TP) / (tp + fn + p.TP + p.FN)
		fpr[s] = (fp + p.FP) / (fp + tn + p.FP + p.TN)
	}
	return quality, sens, fpr
}

// QualityFromCounts returns the MAP quality row of one source given its
// expected confusion counts e (indexed [truth][observation]) and priors p.
// It is the single closed form shared by the batch estimator
// (EstimateQuality), the streaming accumulator (stream.Online.Quality) and
// the cluster-level cross-partition quality merge, so all of them produce
// bit-identical rows from the same counts — the property the cluster
// equivalence suite asserts.
func QualityFromCounts(source string, e [2][2]float64, p Priors) model.SourceQuality {
	tp, fn := e[1][1], e[1][0]
	fp, tn := e[0][1], e[0][0]
	return model.SourceQuality{
		Source:      source,
		Sensitivity: (tp + p.TP) / (tp + fn + p.TP + p.FN),
		Specificity: 1 - (fp+p.FP)/(fp+tn+p.FP+p.TN),
		Precision:   (tp + p.TP) / (tp + fp + p.TP + p.FP),
		Accuracy:    (tp + tn + p.TP + p.TN) / (tp + tn + fp + fn + p.TP + p.TN + p.FP + p.FN),
	}
}

// ExpectedCounts returns, for each source s, the expected confusion counts
// E[n_{s,i,j}] under the posterior truth probabilities prob: index [s][i][j]
// with i the truth label and j the observation.
func ExpectedCounts(ds *model.Dataset, prob []float64) [][2][2]float64 {
	e := make([][2][2]float64, ds.NumSources())
	for _, c := range ds.Claims {
		pt := prob[c.Fact]
		o := 0
		if c.Observation {
			o = 1
		}
		e[c.Source][1][o] += pt
		e[c.Source][0][o] += 1 - pt
	}
	return e
}

// RankedQuality returns a copy of quality sorted by decreasing sensitivity,
// the presentation order of Table 8.
func RankedQuality(quality []model.SourceQuality) []model.SourceQuality {
	out := append([]model.SourceQuality(nil), quality...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sensitivity > out[j].Sensitivity })
	return out
}
