package core

import (
	"fmt"
	"math"

	"latenttruth/internal/model"
)

// Incremental is LTMinc (§5.4): it predicts truth on new data directly
// from previously learned source quality, without any sampling, via the
// closed-form posterior of Equation 3:
//
//	p(t_f = 1 | o, s) ∝ β1 · Π_{c∈Cf} (φ1_{s_c})^{o_c} (1 − φ1_{s_c})^{1−o_c}
//	p(t_f = 0 | o, s) ∝ β0 · Π_{c∈Cf} (φ0_{s_c})^{o_c} (1 − φ0_{s_c})^{1−o_c}
//
// Sources are matched by name; claims from sources never seen during
// training fall back to the prior means implied by the hyperparameters.
type Incremental struct {
	priors Priors
	// sens and fpr are φ1 and φ0 per known source name.
	sens map[string]float64
	fpr  map[string]float64
}

// NewIncremental builds an LTMinc predictor from a fitted model's quality
// table. ds must be the dataset the fit was produced on (it supplies the
// source names).
func NewIncremental(ds *model.Dataset, fit *FitResult) (*Incremental, error) {
	if len(fit.Sensitivity) != ds.NumSources() || len(fit.FalsePositiveRate) != ds.NumSources() {
		return nil, fmt.Errorf("core: fit has %d/%d source parameters for %d sources",
			len(fit.Sensitivity), len(fit.FalsePositiveRate), ds.NumSources())
	}
	inc := &Incremental{
		priors: fit.Priors,
		sens:   make(map[string]float64, ds.NumSources()),
		fpr:    make(map[string]float64, ds.NumSources()),
	}
	for s, name := range ds.Sources {
		inc.sens[name] = fit.Sensitivity[s]
		inc.fpr[name] = fit.FalsePositiveRate[s]
	}
	return inc, nil
}

// NewIncrementalFromQuality builds an LTMinc predictor from an explicit
// quality table, e.g. one loaded from disk or supplied as domain knowledge.
func NewIncrementalFromQuality(quality []model.SourceQuality, priors Priors) (*Incremental, error) {
	if err := priors.Validate(); err != nil {
		return nil, err
	}
	inc := &Incremental{
		priors: priors,
		sens:   make(map[string]float64, len(quality)),
		fpr:    make(map[string]float64, len(quality)),
	}
	for _, q := range quality {
		if q.Source == "" {
			return nil, fmt.Errorf("core: quality entry with empty source name")
		}
		if !(q.Sensitivity > 0 && q.Sensitivity < 1) || !(q.Specificity > 0 && q.Specificity < 1) {
			return nil, fmt.Errorf("core: source %q quality (sens=%v, spec=%v) must lie strictly inside (0,1)",
				q.Source, q.Sensitivity, q.Specificity)
		}
		inc.sens[q.Source] = q.Sensitivity
		inc.fpr[q.Source] = 1 - q.Specificity
	}
	return inc, nil
}

// Name implements model.Method.
func (inc *Incremental) Name() string { return "LTMinc" }

// Infer computes the closed-form truth posterior of every fact in ds.
//
// The per-claim work is hoisted out of the fact loop: source names are
// resolved and the four per-source log-likelihood terms of Equation 3 are
// computed once per source (instead of two map lookups and two logs per
// claim), so the sweep over claims is pure table additions — the same
// flat-layout discipline as the Gibbs engine, with identical results.
func (inc *Incremental) Infer(ds *model.Dataset) (*model.Result, error) {
	res := model.NewResult(inc.Name(), ds)
	// Prior-mean fallbacks for unseen sources.
	defSens := inc.priors.TP / (inc.priors.TP + inc.priors.FN)
	defFPR := inc.priors.FP / (inc.priors.FP + inc.priors.TN)
	lbeta1 := math.Log(inc.priors.True)
	lbeta0 := math.Log(inc.priors.Fls)
	// lpos[s*2+t] and lneg[s*2+t] are the log-likelihood contributions of a
	// positive/negative claim by source s under truth label t.
	nS := ds.NumSources()
	lpos := make([]float64, 2*nS)
	lneg := make([]float64, 2*nS)
	for s, name := range ds.Sources {
		sens, ok := inc.sens[name]
		if !ok {
			sens = defSens
		}
		fpr, ok := inc.fpr[name]
		if !ok {
			fpr = defFPR
		}
		lpos[s*2+1] = math.Log(sens)
		lpos[s*2] = math.Log(fpr)
		lneg[s*2+1] = math.Log1p(-sens)
		lneg[s*2] = math.Log1p(-fpr)
	}
	for f := range ds.Facts {
		l1, l0 := lbeta1, lbeta0
		for _, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			s2 := c.Source * 2
			if c.Observation {
				l1 += lpos[s2+1]
				l0 += lpos[s2]
			} else {
				l1 += lneg[s2+1]
				l0 += lneg[s2]
			}
		}
		res.Prob[f] = 1.0 / (1.0 + math.Exp(l0-l1))
	}
	return res, nil
}

// QualityPriors implements the full incremental re-training hand-off of
// §5.4: the expected confusion counts accumulated on already-processed
// data are added to the hyperparameters, so a fresh LTM fit on only the
// new data starts from the learned quality. prob must be the posterior
// truth probabilities for ds.
func QualityPriors(ds *model.Dataset, prob []float64, base Priors) map[string]Priors {
	out := make(map[string]Priors, ds.NumSources())
	e := ExpectedCounts(ds, prob)
	for s, name := range ds.Sources {
		out[name] = Priors{
			FP:   base.FP + e[s][0][1],
			TN:   base.TN + e[s][0][0],
			TP:   base.TP + e[s][1][1],
			FN:   base.FN + e[s][1][0],
			True: base.True,
			Fls:  base.Fls,
		}
	}
	return out
}
