package core

import (
	"fmt"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// MultiChainResult is the output of running several independent Gibbs
// chains in parallel: the pooled truth probabilities, per-chain results,
// and the Gelman–Rubin mixing diagnostic per fact.
type MultiChainResult struct {
	*FitResult
	// Chains holds each chain's own truth probabilities.
	Chains [][]float64
	// RHat[f] is the potential scale reduction factor of fact f's kept
	// samples across chains; values near 1 indicate the chains agree.
	// Facts whose chains are all constant and identical get exactly 1;
	// constant chains stuck at different values get +Inf.
	RHat []float64
	// MaxRHat is the largest R̂ over facts with disagreement, a single
	// mixing summary.
	MaxRHat float64
}

// FitChains runs `chains` independent samplers (seeds Seed, Seed+1, ...)
// on a worker pool sized to the machine, pools their kept samples into the
// final probabilities, and computes per-fact Gelman–Rubin diagnostics from
// the per-iteration binary sample traces. All chains share one compiled
// claim layout and one read-only log-table set, so the per-chain cost is
// sampling only. Results are deterministic: chain seeds are fixed and
// pooling is order-independent.
func (m *LTM) FitChains(ds *model.Dataset, chains int) (*MultiChainResult, error) {
	return m.fitChainsCompiled(ds, nil, chains)
}

// fitChainsCompiled is FitChains over an optionally pre-compiled layout
// (nil compiles ds here).
func (m *LTM) fitChainsCompiled(ds *model.Dataset, lay *layout, chains int) (*MultiChainResult, error) {
	if chains < 2 {
		return nil, fmt.Errorf("core: FitChains needs >= 2 chains, got %d", chains)
	}
	cfg := m.cfg.withDefaults(ds.NumFacts())
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ds.NumFacts() == 0 {
		return nil, fmt.Errorf("core: dataset has no facts")
	}
	// Compile once; the layout and tables are immutable and shared by
	// every chain (the tables depend on the priors but not on the seed).
	if lay == nil {
		lay = compileLayout(ds)
	}
	tab := newTables(ds, lay, cfg)
	type chainOut struct {
		prob  []float64
		trace [][]float64 // trace[f] = kept binary samples of fact f
	}
	outs := make([]chainOut, chains)
	ParallelFor(chains, func(c int) {
		ccfg := cfg
		ccfg.Seed = cfg.Seed + int64(c)
		g := newEngine(lay, tab, ccfg)
		trace := make([][]float64, ds.NumFacts())
		g.run(func(iter int, t []int8) {
			if iter <= ccfg.BurnIn || (iter-ccfg.BurnIn-1)%(ccfg.SampleGap+1) != 0 {
				return
			}
			for f, v := range t {
				trace[f] = append(trace[f], float64(v))
			}
		})
		outs[c] = chainOut{prob: g.probabilities(), trace: trace}
	})

	nF := ds.NumFacts()
	pooled := make([]float64, nF)
	for _, o := range outs {
		for f, p := range o.prob {
			pooled[f] += p
		}
	}
	for f := range pooled {
		pooled[f] /= float64(chains)
	}
	res := &model.Result{Method: m.Name(), Prob: pooled}
	fit := &FitResult{Result: res, Priors: cfg.Priors}
	fit.Quality, fit.Sensitivity, fit.FalsePositiveRate = estimateQuality(ds, pooled, cfg)

	out := &MultiChainResult{FitResult: fit, RHat: make([]float64, nF), MaxRHat: 1}
	out.Chains = make([][]float64, chains)
	for c, o := range outs {
		out.Chains[c] = o.prob
	}
	perFact := make([][]float64, chains)
	for f := 0; f < nF; f++ {
		for c := range outs {
			perFact[c] = outs[c].trace[f]
		}
		r, err := stats.GelmanRubin(perFact)
		if err != nil {
			return nil, fmt.Errorf("core: R-hat for fact %d: %w", f, err)
		}
		out.RHat[f] = r
		if r > out.MaxRHat {
			out.MaxRHat = r
		}
	}
	return out, nil
}

// FitChains runs cfg with `chains` parallel chains over this pre-compiled
// engine, like LTM.FitChains but skipping the per-call flattening.
func (e *Engine) FitChains(cfg Config, chains int) (*MultiChainResult, error) {
	return New(cfg).fitChainsCompiled(e.ds, e.lay, chains)
}
