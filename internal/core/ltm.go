package core

import (
	"fmt"
	"math"

	"latenttruth/internal/model"
)

// Priors holds the Beta hyperparameters of LTM. Names follow the confusion
// matrix rather than the paper's subscripts to keep call sites readable:
//
//	FP = α0,1 (prior false positive count)   TN = α0,0 (prior true negative count)
//	TP = α1,1 (prior true positive count)    FN = α1,0 (prior false negative count)
//	True = β1 (prior true count)             False = β0 (prior false count)
type Priors struct {
	FP, TN    float64
	TP, FN    float64
	True, Fls float64
}

// alpha returns α_{truth,observation}.
func (p Priors) alpha(truth, obs int) float64 {
	switch {
	case truth == 0 && obs == 1:
		return p.FP
	case truth == 0 && obs == 0:
		return p.TN
	case truth == 1 && obs == 1:
		return p.TP
	default:
		return p.FN
	}
}

// alphaTotal returns α_{truth,1} + α_{truth,0}.
func (p Priors) alphaTotal(truth int) float64 {
	if truth == 0 {
		return p.FP + p.TN
	}
	return p.TP + p.FN
}

// beta returns β_truth.
func (p Priors) beta(truth int) float64 {
	if truth == 0 {
		return p.Fls
	}
	return p.True
}

// Validate checks all hyperparameters are positive.
func (p Priors) Validate() error {
	for _, v := range []struct {
		name string
		x    float64
	}{{"FP", p.FP}, {"TN", p.TN}, {"TP", p.TP}, {"FN", p.FN}, {"True", p.True}, {"False", p.Fls}} {
		if !(v.x > 0) || math.IsInf(v.x, 0) {
			return fmt.Errorf("core: prior %s = %v must be positive and finite", v.name, v.x)
		}
	}
	return nil
}

// DefaultPriors returns the paper's recommended hyperparameters scaled to a
// dataset with numFacts facts (§6.2): a strong specificity prior with mean
// 0.99 whose total count is on the order of the number of facts
// (α0 = (10, 1000) for the 2420-fact book corpus, (100, 10000) for the
// 33526-fact movie corpus), a uniform sensitivity prior α1 = (50, 50), and
// a uniform truth prior β = (10, 10).
func DefaultPriors(numFacts int) Priors {
	total := float64(numFacts) / 3.0
	if total < 100 {
		total = 100
	}
	return Priors{
		FP:   0.01 * total,
		TN:   0.99 * total,
		TP:   50,
		FN:   50,
		True: 10,
		Fls:  10,
	}
}

// Config controls LTM inference.
type Config struct {
	// Priors are the Beta hyperparameters; zero value means
	// DefaultPriors(numFacts) chosen at fit time.
	Priors Priors
	// SourcePriors optionally overrides the α hyperparameters for specific
	// sources by name — the §5.4 mechanism by which quality learned on
	// already-integrated data becomes the prior for new data (and the §4.2.1
	// avenue for plugging in domain knowledge about individual sources).
	// The β (truth) components of per-source entries are ignored.
	SourcePriors map[string]Priors
	// Iterations is the total number of Gibbs sweeps (default 100).
	Iterations int
	// BurnIn is the number of initial sweeps discarded. The zero value
	// means "default": 20 when Iterations > 20, otherwise 0. To request an
	// explicitly zero burn-in with more than 20 iterations, set
	// BurnIn: NoBurnIn.
	BurnIn int
	// SampleGap is the number of sweeps skipped between kept samples after
	// burn-in. The zero value means "default": 4, the paper's Figure 5
	// setting for 100 iterations. To keep every post-burn-in sweep, set
	// SampleGap: NoSampleGap.
	SampleGap int
	// Seed makes the sampler deterministic (default 1).
	Seed int64
	// BinarySamples, when true, averages the binary truth samples exactly
	// as in the paper's Algorithm 1. The default (false) averages the
	// conditional probabilities p(t_f = 1 | t_−f) instead — a
	// Rao-Blackwellized estimator of the same posterior expectation with
	// strictly lower variance, which also gives fact scores a finer
	// granularity than 1/samples (relevant for the ROC ranking of
	// Figure 3).
	BinarySamples bool
}

// NoBurnIn and NoSampleGap are sentinel Config values requesting an
// explicit zero where the zero value itself means "use the default":
// Config{BurnIn: NoBurnIn} discards no sweeps, and
// Config{SampleGap: NoSampleGap} keeps every post-burn-in sweep.
const (
	NoBurnIn    = -1
	NoSampleGap = -1
)

// WithDefaults returns c with every zero-valued field replaced by the
// paper's default, exactly as Fit resolves it at fit time; numFacts sizes
// the default priors. Distributed fitters (internal/shard) resolve the
// configuration once against the GLOBAL dataset and hand the result to
// per-shard samplers, so every shard works under identical priors and
// schedule.
func (c Config) WithDefaults(numFacts int) Config { return c.withDefaults(numFacts) }

// Validate rejects inconsistent settings; call on a WithDefaults-resolved
// configuration.
func (c Config) Validate() error { return c.validate() }

// withDefaults fills unset fields. numFacts sizes the default priors.
func (c Config) withDefaults(numFacts int) Config {
	if c.Priors == (Priors{}) {
		c.Priors = DefaultPriors(numFacts)
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	switch {
	case c.BurnIn == NoBurnIn:
		c.BurnIn = 0
	case c.BurnIn == 0 && c.Iterations > 20:
		c.BurnIn = 20
	}
	switch {
	case c.SampleGap == NoSampleGap:
		c.SampleGap = 0
	case c.SampleGap == 0:
		c.SampleGap = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validate rejects inconsistent settings.
func (c Config) validate() error {
	if err := c.Priors.Validate(); err != nil {
		return err
	}
	for name, p := range c.SourcePriors {
		q := p
		// Per-source entries only carry α; borrow the global β so that a
		// counts-only override validates.
		q.True, q.Fls = c.Priors.True, c.Priors.Fls
		if err := q.Validate(); err != nil {
			return fmt.Errorf("core: source %q: %w", name, err)
		}
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("core: Iterations = %d must be positive", c.Iterations)
	}
	if c.BurnIn < 0 || c.BurnIn >= c.Iterations {
		return fmt.Errorf("core: BurnIn = %d must be in [0, Iterations=%d)", c.BurnIn, c.Iterations)
	}
	if c.SampleGap < 0 {
		return fmt.Errorf("core: SampleGap = %d must be non-negative", c.SampleGap)
	}
	return nil
}

// LTM is the Latent Truth Model estimator. The zero value is not usable;
// construct with New.
type LTM struct {
	cfg Config
}

// New returns an LTM with the given configuration. Zero-valued fields of
// cfg are replaced by the paper's defaults at fit time.
func New(cfg Config) *LTM { return &LTM{cfg: cfg} }

// Name implements model.Method.
func (m *LTM) Name() string { return "LTM" }

// FitResult is the full output of LTM inference: posterior truth
// probabilities, MAP source quality, and sampler diagnostics.
type FitResult struct {
	*model.Result
	// Quality holds per-source MAP quality estimates (§5.3), indexed like
	// Dataset.Sources.
	Quality []model.SourceQuality
	// Sensitivity[s] is φ1_s and FalsePositiveRate[s] is φ0_s, the raw
	// model parameters (specificity = 1 − φ0).
	Sensitivity       []float64
	FalsePositiveRate []float64
	// SamplesKept is the number of post burn-in samples averaged into the
	// truth probabilities.
	SamplesKept int
	// Priors echoes the hyperparameters actually used.
	Priors Priors
}

// Infer implements model.Method by returning the truth probabilities of a
// full fit.
func (m *LTM) Infer(ds *model.Dataset) (*model.Result, error) {
	fit, err := m.Fit(ds)
	if err != nil {
		return nil, err
	}
	return fit.Result, nil
}

// Fit runs collapsed Gibbs sampling over ds and returns posterior truth
// probabilities together with MAP source quality.
func (m *LTM) Fit(ds *model.Dataset) (*FitResult, error) {
	return m.fitCompiled(ds, nil)
}

// fitCompiled is Fit over an optionally pre-compiled layout (nil compiles
// ds here); it is the common path of LTM.Fit and Engine.Fit.
func (m *LTM) fitCompiled(ds *model.Dataset, lay *layout) (*FitResult, error) {
	cfg := m.cfg.withDefaults(ds.NumFacts())
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ds.NumFacts() == 0 {
		return nil, fmt.Errorf("core: dataset has no facts")
	}
	if lay == nil {
		lay = compileLayout(ds)
	}
	g := newEngine(lay, newTables(ds, lay, cfg), cfg)
	g.run(nil)
	prob := g.probabilities()
	res := &model.Result{Method: m.Name(), Prob: prob}
	fit := &FitResult{
		Result:      res,
		SamplesKept: g.samples,
		Priors:      cfg.Priors,
	}
	fit.Quality, fit.Sensitivity, fit.FalsePositiveRate = estimateQuality(ds, prob, cfg)
	return fit, nil
}

// Checkpoint describes one of the sequential predictions of Figure 5: use
// the samples from the first Iterations sweeps with the given burn-in and
// sample gap.
type Checkpoint struct {
	Iterations int
	BurnIn     int
	SampleGap  int
}

// FitCheckpoints runs a single chain for the maximum requested number of
// iterations and returns, for each checkpoint, the prediction that would
// have been made had sampling stopped there — exactly the protocol of
// §6.3.1. Checkpoints must be sorted by increasing Iterations.
func (m *LTM) FitCheckpoints(ds *model.Dataset, cps []Checkpoint) ([]*model.Result, error) {
	if len(cps) == 0 {
		return nil, fmt.Errorf("core: no checkpoints given")
	}
	maxIter := 0
	for i, cp := range cps {
		if cp.Iterations <= 0 || cp.BurnIn < 0 || cp.BurnIn >= cp.Iterations || cp.SampleGap < 0 {
			return nil, fmt.Errorf("core: invalid checkpoint %+v", cp)
		}
		if i > 0 && cp.Iterations < cps[i-1].Iterations {
			return nil, fmt.Errorf("core: checkpoints must be sorted by Iterations")
		}
		if cp.Iterations > maxIter {
			maxIter = cp.Iterations
		}
	}
	cfg := m.cfg.withDefaults(ds.NumFacts())
	cfg.Iterations = maxIter
	if cfg.BurnIn >= maxIter {
		cfg.BurnIn = 0
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lay := compileLayout(ds)
	g := newEngine(lay, newTables(ds, lay, cfg), cfg)

	sums := make([][]float64, len(cps))
	counts := make([]int, len(cps))
	for i := range sums {
		sums[i] = make([]float64, ds.NumFacts())
	}
	g.run(func(iter int, t []int8) {
		for i, cp := range cps {
			if iter > cp.Iterations || iter <= cp.BurnIn {
				continue
			}
			if (iter-cp.BurnIn-1)%(cp.SampleGap+1) != 0 {
				continue
			}
			counts[i]++
			for f, v := range t {
				sums[i][f] += float64(v)
			}
		}
	})
	out := make([]*model.Result, len(cps))
	for i := range cps {
		prob := make([]float64, ds.NumFacts())
		if counts[i] > 0 {
			for f := range prob {
				prob[f] = sums[i][f] / float64(counts[i])
			}
		} else {
			// No kept samples: fall back to the final state.
			for f, v := range g.truth {
				prob[f] = float64(v)
			}
		}
		out[i] = &model.Result{
			Method: fmt.Sprintf("%s@%d", m.Name(), cps[i].Iterations),
			Prob:   prob,
		}
	}
	return out, nil
}
