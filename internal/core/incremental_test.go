package core

import (
	"math"
	"strings"
	"testing"

	"latenttruth/internal/model"
	"latenttruth/internal/synth"
)

func TestIncrementalClosedFormHandComputed(t *testing.T) {
	// One fact, two sources with known quality: the Equation 3 posterior
	// has a closed form we can compute by hand.
	db := model.NewRawDB()
	db.Add("e", "a", "good")
	db.Add("e", "b", "bad") // makes "bad" cover e, denying fact a
	ds := model.Build(db)
	quality := []model.SourceQuality{
		{Source: "good", Sensitivity: 0.9, Specificity: 0.99},
		{Source: "bad", Sensitivity: 0.6, Specificity: 0.7},
	}
	priors := Priors{FP: 1, TN: 99, TP: 50, FN: 50, True: 10, Fls: 10}
	inc, err := NewIncrementalFromQuality(quality, priors)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Fact "a": positive from good, negative from bad.
	// p1 ∝ β1 · sens_good · (1−sens_bad) = 10 · 0.9 · 0.4
	// p0 ∝ β0 · fpr_good · (1−fpr_bad)  = 10 · 0.01 · 0.7
	fa := ds.FactIndex("e", "a")
	want := (10 * 0.9 * 0.4) / (10*0.9*0.4 + 10*0.01*0.7)
	if math.Abs(res.Prob[fa]-want) > 1e-12 {
		t.Fatalf("fact a posterior %v, want %v", res.Prob[fa], want)
	}
	// Fact "b": positive from bad, negative from good.
	fb := ds.FactIndex("e", "b")
	wantB := (10 * 0.1 * 0.6) / (10*0.1*0.6 + 10*0.99*0.3)
	if math.Abs(res.Prob[fb]-wantB) > 1e-12 {
		t.Fatalf("fact b posterior %v, want %v", res.Prob[fb], wantB)
	}
}

func TestIncrementalUnknownSourceFallsBackToPriorMean(t *testing.T) {
	db := model.NewRawDB()
	db.Add("e", "a", "stranger")
	ds := model.Build(db)
	priors := Priors{FP: 10, TN: 90, TP: 60, FN: 40, True: 10, Fls: 10}
	inc, err := NewIncrementalFromQuality([]model.SourceQuality{
		{Source: "other", Sensitivity: 0.5, Specificity: 0.5},
	}, priors)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Stranger's quality defaults to prior means: sens .6, fpr .1.
	want := (10 * 0.6) / (10*0.6 + 10*0.1)
	if math.Abs(res.Prob[0]-want) > 1e-12 {
		t.Fatalf("posterior %v, want %v", res.Prob[0], want)
	}
}

func TestIncrementalFromFitMatchesQualityTable(t *testing.T) {
	ds, _, err := synth.PaperSynthetic(synth.PaperSyntheticConfig{
		NumFacts: 500, NumSources: 8,
		Alpha0: [2]float64{5, 95}, Alpha1: [2]float64{85, 15},
		Beta: [2]float64{10, 10}, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := New(Config{Seed: 1}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewIncremental(ds, fit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIncrementalFromQuality(fit.Quality, fit.Priors)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range ra.Prob {
		if math.Abs(ra.Prob[f]-rb.Prob[f]) > 1e-9 {
			t.Fatalf("fact %d: %v vs %v", f, ra.Prob[f], rb.Prob[f])
		}
	}
}

func TestIncrementalAccuracyNearBatch(t *testing.T) {
	// Learn quality on one synthetic draw; predict a second draw from the
	// same sources. LTMinc should be nearly as accurate as a batch fit —
	// the paper's Table 7 finding.
	gen := func(seed int64) *model.Dataset {
		ds, _, err := synth.PaperSynthetic(synth.PaperSyntheticConfig{
			NumFacts: 600, NumSources: 10,
			Alpha0: [2]float64{5, 95}, Alpha1: [2]float64{85, 15},
			Beta: [2]float64{10, 10}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	// Same source quality across draws requires the same seed for quality
	// draws; PaperSynthetic draws quality per seed, so instead train and
	// test on disjoint halves of one dataset.
	full := gen(77)
	trainLabels := map[int]bool{}
	testLabels := map[int]bool{}
	for f, v := range full.Labels {
		if f%2 == 0 {
			trainLabels[f] = v
		} else {
			testLabels[f] = v
		}
	}
	fit, err := New(Config{Seed: 1}).Fit(full)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(full, fit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Infer(full)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for f := range full.Facts {
		if (res.Prob[f] >= 0.5) == (fit.Prob[f] >= 0.5) {
			agree++
		}
	}
	if float64(agree) < 0.97*float64(full.NumFacts()) {
		t.Fatalf("LTMinc agrees with batch on %d/%d facts", agree, full.NumFacts())
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncrementalFromQuality(nil, Priors{}); err == nil {
		t.Fatal("expected error for invalid priors")
	}
	priors := DefaultPriors(100)
	if _, err := NewIncrementalFromQuality([]model.SourceQuality{
		{Source: "", Sensitivity: 0.5, Specificity: 0.5},
	}, priors); err == nil || !strings.Contains(err.Error(), "empty source") {
		t.Fatal("expected empty-name error")
	}
	if _, err := NewIncrementalFromQuality([]model.SourceQuality{
		{Source: "s", Sensitivity: 1, Specificity: 0.5},
	}, priors); err == nil || !strings.Contains(err.Error(), "strictly inside") {
		t.Fatal("expected degenerate-quality error")
	}
}

func TestQualityPriors(t *testing.T) {
	ds := handDataset(t)
	prob := []float64{1, 0}
	base := Priors{FP: 1, TN: 9, TP: 2, FN: 2, True: 3, Fls: 3}
	qp := QualityPriors(ds, prob, base)
	a := qp["A"]
	// A: TP=1, TN=1 -> priors incremented accordingly.
	if !approxEq(a.TP, base.TP+1) || !approxEq(a.TN, base.TN+1) ||
		!approxEq(a.FP, base.FP) || !approxEq(a.FN, base.FN) {
		t.Fatalf("A priors %+v", a)
	}
	if a.True != base.True || a.Fls != base.Fls {
		t.Fatal("beta components should carry over unchanged")
	}
	b := qp["B"]
	if !approxEq(b.FP, base.FP+1) || !approxEq(b.FN, base.FN+1) {
		t.Fatalf("B priors %+v", b)
	}
}

func TestIncrementalName(t *testing.T) {
	inc, err := NewIncrementalFromQuality([]model.SourceQuality{
		{Source: "s", Sensitivity: 0.5, Specificity: 0.5},
	}, DefaultPriors(10))
	if err != nil {
		t.Fatal(err)
	}
	var m model.Method = inc
	if m.Name() != "LTMinc" {
		t.Fatalf("name = %q", m.Name())
	}
}
