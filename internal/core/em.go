package core

import (
	"fmt"
	"math"

	"latenttruth/internal/model"
)

// EM is a deterministic expectation-maximization alternative to Gibbs
// sampling for the same model: the E-step computes every fact's truth
// posterior in closed form given current source quality (Equation 3), and
// the M-step re-estimates each source's MAP quality from the expected
// confusion counts (§5.3). It is equivalent to iterating LTMinc to a
// fixpoint, needs no random numbers, and converges in a handful of
// rounds — a useful deterministic mode for production pipelines, at the
// cost of point estimates instead of posterior samples (it can get stuck
// in local optima the sampler escapes).
type EM struct {
	cfg Config
	// Rounds is the number of E/M alternations (default 30).
	Rounds int
	// Tolerance stops early when no truth posterior moves more (default
	// 1e-9).
	Tolerance float64
}

// NewEM returns an EM estimator. The Config's sampling fields
// (Iterations, BurnIn, SampleGap, Seed, BinarySamples) are ignored.
func NewEM(cfg Config) *EM { return &EM{cfg: cfg, Rounds: 30, Tolerance: 1e-9} }

// Name implements model.Method.
func (m *EM) Name() string { return "LTM-EM" }

// Infer implements model.Method.
func (m *EM) Infer(ds *model.Dataset) (*model.Result, error) {
	fit, err := m.Fit(ds)
	if err != nil {
		return nil, err
	}
	return fit.Result, nil
}

// Fit alternates Equation 3 and the §5.3 quality read-off to a fixpoint.
func (m *EM) Fit(ds *model.Dataset) (*FitResult, error) {
	cfg := m.cfg
	if cfg.Priors == (Priors{}) {
		cfg.Priors = DefaultPriors(ds.NumFacts())
	}
	if err := cfg.Priors.Validate(); err != nil {
		return nil, err
	}
	if ds.NumFacts() == 0 {
		return nil, fmt.Errorf("core: dataset has no facts")
	}
	rounds := m.Rounds
	if rounds <= 0 {
		rounds = 30
	}
	tol := m.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	nF := ds.NumFacts()
	prob := make([]float64, nF)
	// Initialize truth posteriors at the prior mean.
	p0 := cfg.Priors.True / (cfg.Priors.True + cfg.Priors.Fls)
	for f := range prob {
		prob[f] = p0
	}
	var sens, fpr []float64
	prev := make([]float64, nF)
	lbeta1 := math.Log(cfg.Priors.True)
	lbeta0 := math.Log(cfg.Priors.Fls)
	for round := 0; round < rounds; round++ {
		// M-step: MAP source quality from expected counts.
		_, sens, fpr = estimateQuality(ds, prob, cfg)
		// E-step: closed-form truth posterior (Equation 3).
		copy(prev, prob)
		for f := range prob {
			l1, l0 := lbeta1, lbeta0
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				if c.Observation {
					l1 += math.Log(sens[c.Source])
					l0 += math.Log(fpr[c.Source])
				} else {
					l1 += math.Log1p(-sens[c.Source])
					l0 += math.Log1p(-fpr[c.Source])
				}
			}
			prob[f] = 1.0 / (1.0 + math.Exp(l0-l1))
		}
		if maxAbsDiff(prev, prob) < tol {
			break
		}
	}
	res := &model.Result{Method: m.Name(), Prob: prob}
	fit := &FitResult{Result: res, Priors: cfg.Priors}
	fit.Quality, fit.Sensitivity, fit.FalsePositiveRate = estimateQuality(ds, prob, cfg)
	return fit, nil
}

// maxAbsDiff returns the largest absolute element-wise difference.
func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
