package core

// The reference sweep: the direct transcription of Algorithm 1 that the
// engine (engine.go) replaces on the hot path. It is retained verbatim as
// the sampler's executable specification — the equivalence tests assert
// that for any fixed seed the engine's posteriors match this implementation
// exactly, so any future engine optimization can be validated against it.

import (
	"math"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// referenceGibbs is the uncompiled collapsed Gibbs sampler state
// (Algorithm 1), walking the dataset's index structures directly.
type referenceGibbs struct {
	ds  *model.Dataset
	cfg Config
	rng *stats.RNG

	// truth[f] ∈ {0,1} is the current assignment of t_f.
	truth []int8
	// n[s][i][j] counts source s's claims with truth label i and
	// observation j — the sufficient statistics of Equation 2.
	n [][2][2]int
	// alpha[s][i][j] and alphaTot[s][i] are the per-source hyperparameters
	// (global priors unless Config.SourcePriors overrides a source).
	alpha    [][2][2]float64
	alphaTot [][2]float64
	// cond[f] is the last conditional probability p(t_f = 1 | t_−f)
	// computed for f in the current sweep (Rao-Blackwellized estimate).
	cond []float64
	// sum[f] accumulates kept samples of t_f; samples counts them.
	sum     []float64
	samples int
}

func newReferenceGibbs(ds *model.Dataset, cfg Config) *referenceGibbs {
	g := &referenceGibbs{
		ds:       ds,
		cfg:      cfg,
		rng:      stats.NewRNG(cfg.Seed),
		truth:    make([]int8, ds.NumFacts()),
		n:        make([][2][2]int, ds.NumSources()),
		alpha:    make([][2][2]float64, ds.NumSources()),
		alphaTot: make([][2]float64, ds.NumSources()),
		cond:     make([]float64, ds.NumFacts()),
		sum:      make([]float64, ds.NumFacts()),
	}
	for s := range g.alpha {
		p := cfg.Priors
		if sp, ok := cfg.SourcePriors[ds.Sources[s]]; ok {
			sp.True, sp.Fls = p.True, p.Fls
			p = sp
		}
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				g.alpha[s][i][j] = p.alpha(i, j)
			}
			g.alphaTot[s][i] = p.alphaTotal(i)
		}
	}
	// Initialization: sample each t_f uniformly and set up counts.
	for f := range g.truth {
		if g.rng.Float64() < 0.5 {
			g.truth[f] = 0
		} else {
			g.truth[f] = 1
		}
		g.applyFact(f, int(g.truth[f]), +1)
	}
	return g
}

// applyFact adds delta to the counts of all claims of fact f under truth
// label i.
func (g *referenceGibbs) applyFact(f, i, delta int) {
	for _, ci := range g.ds.ClaimsByFact[f] {
		c := g.ds.Claims[ci]
		o := 0
		if c.Observation {
			o = 1
		}
		g.n[c.Source][i][o] += delta
	}
}

// run performs cfg.Iterations sweeps. After each sweep it invokes observe
// (when non-nil) with the 1-based iteration number and the current truth
// assignment, and accumulates the default-schedule sample average.
func (g *referenceGibbs) run(observe func(iter int, t []int8)) {
	cfg := g.cfg
	p := cfg.Priors
	for iter := 1; iter <= cfg.Iterations; iter++ {
		for f := range g.truth {
			cur := int(g.truth[f])
			alt := 1 - cur
			// Log-space accumulation keeps long claim lists (hundreds of
			// sources per fact) from underflowing the direct product in
			// Algorithm 1.
			lcur := math.Log(p.beta(cur))
			lalt := math.Log(p.beta(alt))
			for _, ci := range g.ds.ClaimsByFact[f] {
				c := g.ds.Claims[ci]
				o := 0
				if c.Observation {
					o = 1
				}
				s := c.Source
				// Current label: this fact's claim is included in the
				// counts, so discount it (the −1 terms of Algorithm 1).
				numCur := float64(g.n[s][cur][o]-1) + g.alpha[s][cur][o]
				denCur := float64(g.n[s][cur][0]+g.n[s][cur][1]-1) + g.alphaTot[s][cur]
				lcur += math.Log(numCur) - math.Log(denCur)
				// Alternative label: counts exclude this fact already.
				numAlt := float64(g.n[s][alt][o]) + g.alpha[s][alt][o]
				denAlt := float64(g.n[s][alt][0]+g.n[s][alt][1]) + g.alphaTot[s][alt]
				lalt += math.Log(numAlt) - math.Log(denAlt)
			}
			// P(flip) = exp(lalt) / (exp(lcur) + exp(lalt)).
			pFlip := 1.0 / (1.0 + math.Exp(lcur-lalt))
			if cur == 1 {
				g.cond[f] = 1 - pFlip
			} else {
				g.cond[f] = pFlip
			}
			if g.rng.Float64() < pFlip {
				g.applyFact(f, cur, -1)
				g.truth[f] = int8(alt)
				g.applyFact(f, alt, +1)
			}
		}
		if iter > cfg.BurnIn && (iter-cfg.BurnIn-1)%(cfg.SampleGap+1) == 0 {
			g.samples++
			if cfg.BinarySamples {
				for f, v := range g.truth {
					g.sum[f] += float64(v)
				}
			} else {
				for f, p := range g.cond {
					g.sum[f] += p
				}
			}
		}
		if observe != nil {
			observe(iter, g.truth)
		}
	}
}

// probabilities returns the posterior mean of each t_f over kept samples,
// falling back to the final state if no samples were kept.
func (g *referenceGibbs) probabilities() []float64 {
	prob := make([]float64, len(g.truth))
	if g.samples == 0 {
		for f, v := range g.truth {
			prob[f] = float64(v)
		}
		return prob
	}
	for f := range prob {
		prob[f] = g.sum[f] / float64(g.samples)
	}
	return prob
}
