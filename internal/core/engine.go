package core

// The sampler engine: a cache-conscious execution layer for Algorithm 1.
//
// The straightforward sweep (retained in reference.go) pays, per claim per
// iteration, two levels of pointer-chasing (ClaimsByFact[f] -> claim index
// -> Claims[ci] -> .Source/.Observation), a bool-to-int branch, and four
// math.Log calls. None of that work depends on anything but (a) the static
// shape of the claim table and (b) small integer confusion counts that move
// by at most one per flip. The engine therefore splits the sampler into
// three layers:
//
//   - layout: the dataset's claim table compiled once into a CSR-style flat
//     form — one contiguous []packedClaim per fact behind a shared offsets
//     array, with the observation pre-decoded to an integer. Immutable and
//     shareable across fits and chains.
//
//   - tables: every logarithm the sweep can ever need, memoized per source
//     over integer count offsets. The conditional of Equation 2 only ever
//     evaluates log(m + α_{s,i,j}) and log(m + α_{s,i,·}) for integer m in
//     [0, deg(s)], so the full domain is tabulated up front (cost: one
//     math.Log per entry, about 1.5 sweeps' worth of logs, amortized over
//     the default 100 iterations) and the hot loop performs four array
//     reads instead of four math.Log calls. Tables depend only on the
//     layout and the priors — not on sampler state — so they need no
//     invalidation and are shared read-only by parallel chains.
//
//   - engine: the per-chain mutable state (truth vector, flat confusion
//     counts, RNG, sample accumulators).
//
// The engine consumes randomness in exactly the same order as the reference
// sweep and performs the same floating-point operations on the same values
// in the same order, so for a fixed seed its posteriors are bit-identical
// to the reference implementation (asserted by TestEngineMatchesReference*).

import (
	"math"
	"runtime"
	"sync"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// packedClaim is one claim in the compiled layout: the source id and the
// observation pre-decoded to 0/1.
type packedClaim struct {
	source int32
	obs    uint8
}

// layout is the CSR-compiled claim table of one dataset: claims grouped by
// fact in ClaimsByFact order, delimited by offsets (len numFacts+1).
// Immutable once built.
type layout struct {
	numFacts   int
	numSources int
	claims     []packedClaim
	offsets    []int32
	// deg[s] is source s's total claim count; obsDeg[s*2+o] its count of
	// claims with observation o. They bound the count domains the log
	// tables must cover.
	deg    []int32
	obsDeg []int32
}

// compileLayout flattens ds into a layout. Claim order within a fact is the
// ClaimsByFact order, preserving the reference sweep's summation order.
func compileLayout(ds *model.Dataset) *layout {
	nf, ns := ds.NumFacts(), ds.NumSources()
	lay := &layout{
		numFacts:   nf,
		numSources: ns,
		claims:     make([]packedClaim, 0, ds.NumClaims()),
		offsets:    make([]int32, nf+1),
		deg:        make([]int32, ns),
		obsDeg:     make([]int32, 2*ns),
	}
	for f := 0; f < nf; f++ {
		for _, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			o := uint8(0)
			if c.Observation {
				o = 1
			}
			lay.claims = append(lay.claims, packedClaim{source: int32(c.Source), obs: o})
			lay.deg[c.Source]++
			lay.obsDeg[c.Source*2+int(o)]++
		}
		lay.offsets[f+1] = int32(len(lay.claims))
	}
	return lay
}

// tables holds the memoized logarithms and per-source hyperparameters for
// one (layout, priors) pair. Indexing is flat: cell (s, i, j) lives at
// s*4+i*2+j and margin (s, i) at s*2+i. Read-only after construction.
type tables struct {
	logBeta [2]float64 // log β_i
	// alpha[s*4+i*2+j] = α_{s,i,j}; alphaTot[s*2+i] = α_{s,i,0}+α_{s,i,1}.
	alpha    []float64
	alphaTot []float64
	// logNum[s*4+i*2+j][m] = log(m + α_{s,i,j}) for m in [0, obsDeg(s,j)].
	logNum [][]float64
	// logDen[s*2+i][m] = log(m + α_{s,i,·}) for m in [0, deg(s)].
	logDen [][]float64
}

// newTables memoizes every log the sweep over lay can evaluate under cfg's
// priors (including per-source overrides, resolved via ds's source names).
func newTables(ds *model.Dataset, lay *layout, cfg Config) *tables {
	return newTablesBounded(ds, lay, cfg, lay.deg, lay.obsDeg)
}

// newTablesBounded is newTables with explicit count domains: deg[s] and
// obsDeg[s*2+j] bound the table sizes instead of the layout's own degrees.
// The sharded fitter passes each source's GLOBAL degrees here, because a
// shard's conditional evaluates counts that include other shards'
// contributions and therefore exceed the shard-local degree.
func newTablesBounded(ds *model.Dataset, lay *layout, cfg Config, deg, obsDeg []int32) *tables {
	ns := lay.numSources
	t := &tables{
		alpha:    make([]float64, 4*ns),
		alphaTot: make([]float64, 2*ns),
		logNum:   make([][]float64, 4*ns),
		logDen:   make([][]float64, 2*ns),
	}
	t.logBeta[0] = math.Log(cfg.Priors.beta(0))
	t.logBeta[1] = math.Log(cfg.Priors.beta(1))
	for s := 0; s < ns; s++ {
		p := cfg.Priors
		if sp, ok := cfg.SourcePriors[ds.Sources[s]]; ok {
			sp.True, sp.Fls = p.True, p.Fls
			p = sp
		}
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				a := p.alpha(i, j)
				t.alpha[s*4+i*2+j] = a
				tab := make([]float64, obsDeg[s*2+j]+1)
				for m := range tab {
					tab[m] = math.Log(float64(m) + a)
				}
				t.logNum[s*4+i*2+j] = tab
			}
			at := p.alphaTotal(i)
			t.alphaTot[s*2+i] = at
			tab := make([]float64, deg[s]+1)
			for m := range tab {
				tab[m] = math.Log(float64(m) + at)
			}
			t.logDen[s*2+i] = tab
		}
	}
	return t
}

// engine is one chain's sampler state over a shared layout and tables. It
// is the drop-in replacement for the reference gibbs struct.
type engine struct {
	lay *layout
	tab *tables
	cfg Config
	rng *stats.RNG

	// truth[f] ∈ {0,1} is the current assignment of t_f.
	truth []int8
	// n[s*4+i*2+j] and tot[s*2+i] are the confusion counts of Equation 2
	// and their per-label margins, maintained incrementally.
	n   []int32
	tot []int32
	// cond[f] is the last conditional p(t_f = 1 | t_−f) of the sweep.
	cond []float64
	// sum[f] accumulates kept samples of t_f; samples counts them.
	sum     []float64
	samples int
}

// newEngine initializes a chain exactly as the reference sampler does: one
// uniform draw per fact, counts built incrementally.
func newEngine(lay *layout, tab *tables, cfg Config) *engine {
	e := newEngineState(lay, tab, cfg)
	e.initTruth()
	return e
}

// newEngineState allocates a chain's state without drawing the initial
// truth assignment. The step-driven Sampler uses it when the caller owns
// initialization (the sharded fitter's exact mode initializes facts in
// global order from a shared RNG).
func newEngineState(lay *layout, tab *tables, cfg Config) *engine {
	return &engine{
		lay:   lay,
		tab:   tab,
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed),
		truth: make([]int8, lay.numFacts),
		n:     make([]int32, 4*lay.numSources),
		tot:   make([]int32, 2*lay.numSources),
		cond:  make([]float64, lay.numFacts),
		sum:   make([]float64, lay.numFacts),
	}
}

// initTruth draws the uniform initial assignment for every fact from the
// engine's own RNG, building counts incrementally.
func (e *engine) initTruth() {
	for f := range e.truth {
		if e.rng.Float64() < 0.5 {
			e.truth[f] = 0
		} else {
			e.truth[f] = 1
		}
		e.applyFact(f, int(e.truth[f]), +1)
	}
}

// applyFact adds delta to the counts of all claims of fact f under truth
// label i.
func (e *engine) applyFact(f, i, delta int) {
	d := int32(delta)
	i2 := i * 2
	for _, c := range e.lay.claims[e.lay.offsets[f]:e.lay.offsets[f+1]] {
		s := int(c.source)
		e.n[s*4+i2+int(c.obs)] += d
		e.tot[s*2+i] += d
	}
}

// run performs cfg.Iterations sweeps, mirroring the reference sweep's
// floating-point and RNG order operation for operation. After each sweep it
// invokes observe (when non-nil) with the 1-based iteration number and the
// current truth assignment, and accumulates the default-schedule sample
// average.
func (e *engine) run(observe func(iter int, t []int8)) {
	for iter := 1; iter <= e.cfg.Iterations; iter++ {
		e.sweep()
		if keepIteration(e.cfg, iter) {
			e.keep()
		}
		if observe != nil {
			observe(iter, e.truth)
		}
	}
}

// keepIteration reports whether the default sampling schedule keeps the
// sample produced by the given 1-based sweep number.
func keepIteration(cfg Config, iter int) bool {
	return iter > cfg.BurnIn && (iter-cfg.BurnIn-1)%(cfg.SampleGap+1) == 0
}

// sweep resamples every fact once against the engine's own count tables.
func (e *engine) sweep() {
	lay, tab := e.lay, e.tab
	for f := range e.truth {
		cur := int(e.truth[f])
		alt := 1 - cur
		// Log-space accumulation keeps long claim lists from
		// underflowing the direct product of Algorithm 1. Every
		// log(count + α) is a table read; no logs in the loop.
		lcur := tab.logBeta[cur]
		lalt := tab.logBeta[alt]
		for _, c := range lay.claims[lay.offsets[f]:lay.offsets[f+1]] {
			s4 := int(c.source) * 4
			s2 := int(c.source) * 2
			o := int(c.obs)
			// Current label: this fact's claim is included in the
			// counts, so discount it (the −1 terms of Algorithm 1).
			icur := s4 + cur*2
			lcur += tab.logNum[icur+o][e.n[icur+o]-1] - tab.logDen[s2+cur][e.tot[s2+cur]-1]
			// Alternative label: counts exclude this fact already.
			ialt := s4 + alt*2
			lalt += tab.logNum[ialt+o][e.n[ialt+o]] - tab.logDen[s2+alt][e.tot[s2+alt]]
		}
		// P(flip) = exp(lalt) / (exp(lcur) + exp(lalt)).
		pFlip := 1.0 / (1.0 + math.Exp(lcur-lalt))
		if cur == 1 {
			e.cond[f] = 1 - pFlip
		} else {
			e.cond[f] = pFlip
		}
		if e.rng.Float64() < pFlip {
			e.applyFact(f, cur, -1)
			e.truth[f] = int8(alt)
			e.applyFact(f, alt, +1)
		}
	}
}

// keep accumulates the current state as one kept sample.
func (e *engine) keep() {
	e.samples++
	if e.cfg.BinarySamples {
		for f, v := range e.truth {
			e.sum[f] += float64(v)
		}
	} else {
		for f, p := range e.cond {
			e.sum[f] += p
		}
	}
}

// probabilities returns the posterior mean of each t_f over kept samples,
// falling back to the final state if no samples were kept.
func (e *engine) probabilities() []float64 {
	prob := make([]float64, len(e.truth))
	if e.samples == 0 {
		for f, v := range e.truth {
			prob[f] = float64(v)
		}
		return prob
	}
	for f := range prob {
		prob[f] = e.sum[f] / float64(e.samples)
	}
	return prob
}

// Engine is a dataset compiled for repeated sampling. Compile once and call
// Fit with as many configurations as needed — consumers that refit the same
// dataset under changing priors (e.g. the multi-type integrator's
// empirical-Bayes rounds) skip the per-fit flattening cost, and parallel
// chains share one layout.
type Engine struct {
	ds  *model.Dataset
	lay *layout
}

// Compile flattens ds's claim table into the engine's layout.
func Compile(ds *model.Dataset) *Engine {
	return &Engine{ds: ds, lay: compileLayout(ds)}
}

// Dataset returns the dataset this engine was compiled from.
func (e *Engine) Dataset() *model.Dataset { return e.ds }

// Fit runs collapsed Gibbs sampling under cfg (zero-valued fields take the
// paper's defaults) and returns the full fit, exactly as LTM.Fit does.
func (e *Engine) Fit(cfg Config) (*FitResult, error) {
	return New(cfg).fitCompiled(e.ds, e.lay)
}

// chainWorkers bounds a worker pool: one worker per core, never more
// workers than tasks.
func chainWorkers(tasks int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	if w > tasks {
		w = tasks
	}
	return w
}

// ParallelFor executes fn(i) for i in [0, n) on a worker pool bounded by
// GOMAXPROCS. It is the shared fan-out primitive for sampler-sized work —
// multi-chain fits, per-cluster fits, per-type fits — bounding how many
// full Gibbs states are live at once regardless of n.
func ParallelFor(n int, fn func(i int)) {
	workers := chainWorkers(n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
