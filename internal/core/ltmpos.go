package core

import (
	"latenttruth/internal/model"
)

// LTMPos is the truncated variant evaluated in §6.2 to demonstrate the
// value of negative claims: it discards every negative claim before
// running the standard LTM sampler. With only positive observations the
// model loses the signal that distinguishes false positives from omitted
// truths, and — as the paper reports — it degenerates to predicting
// essentially everything true.
type LTMPos struct {
	cfg Config
}

// NewPos returns an LTMpos estimator with the given configuration.
func NewPos(cfg Config) *LTMPos { return &LTMPos{cfg: cfg} }

// Name implements model.Method.
func (m *LTMPos) Name() string { return "LTMpos" }

// Infer drops negative claims from ds and runs the sampler engine on the
// truncation. Fact ids are preserved, so the result aligns with the
// original dataset.
func (m *LTMPos) Infer(ds *model.Dataset) (*model.Result, error) {
	pos := PositiveOnly(ds)
	fit, err := Compile(pos).Fit(m.cfg)
	if err != nil {
		return nil, err
	}
	return &model.Result{Method: m.Name(), Prob: fit.Prob}, nil
}

// PositiveOnly returns a copy of ds containing only positive claims. The
// entity, source, and fact tables (and labels) are unchanged, so fact ids
// remain valid in the original dataset.
func PositiveOnly(ds *model.Dataset) *model.Dataset {
	out := &model.Dataset{
		Entities:      ds.Entities,
		Sources:       ds.Sources,
		Facts:         ds.Facts,
		FactsByEntity: ds.FactsByEntity,
		Labels:        ds.Labels,
	}
	out.Claims = make([]model.Claim, 0, ds.NumClaims())
	for _, c := range ds.Claims {
		if c.Observation {
			out.Claims = append(out.Claims, c)
		}
	}
	out.ClaimsByFact = make([][]int, len(out.Facts))
	out.ClaimsBySource = make([][]int, len(out.Sources))
	for i, c := range out.Claims {
		out.ClaimsByFact[c.Fact] = append(out.ClaimsByFact[c.Fact], i)
		out.ClaimsBySource[c.Source] = append(out.ClaimsBySource[c.Source], i)
	}
	return out
}
