package core

// Step-level sampler API for distributed fitters.
//
// LTM.Fit owns the whole inference loop; the entity-sharded fitter
// (internal/shard) instead needs to drive the loop itself: sweep each
// shard independently, export and re-import the per-source confusion
// counts at reconciliation barriers, and — in its exact mode — sample
// single facts in global order against externally synchronized count
// tables. Sampler exposes exactly those steps over a compiled Engine
// without opening up the engine's internals.

import (
	"fmt"
	"math"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// Tables is an opaque, read-only handle over a fully memoized log-table
// set built against a dataset's global source ids and global count
// domains. Building the tables costs one math.Log per (source, count)
// cell — a sizable fraction of a short fit — so a sharded fitter builds
// them ONCE per fit and shares them across all shard samplers via
// SamplerSpec.Shared; each sampler's per-source table slices then alias
// the global backing arrays instead of being recomputed per shard.
type Tables struct {
	t   *tables
	cfg Config
}

// NewGlobalTables memoizes every logarithm a sweep over ds can evaluate
// under cfg's priors (including per-source overrides), with count domains
// sized to each source's global claim degrees. cfg is resolved with
// WithDefaults against ds; pass the same Config to every sampler sharing
// the tables.
func NewGlobalTables(ds *model.Dataset, cfg Config) (*Tables, error) {
	cfg = cfg.withDefaults(ds.NumFacts())
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ns := ds.NumSources()
	deg := make([]int32, ns)
	obsDeg := make([]int32, 2*ns)
	for _, c := range ds.Claims {
		o := 0
		if c.Observation {
			o = 1
		}
		deg[c.Source]++
		obsDeg[c.Source*2+o]++
	}
	t := newTablesBounded(ds, &layout{numSources: ns}, cfg, deg, obsDeg)
	return &Tables{t: t, cfg: cfg}, nil
}

// view builds a local-source-indexed alias of the global tables: slice
// headers are copied through src2g, the float backing arrays are shared.
func (gt *Tables) view(src2g []int32) *tables {
	ns := len(src2g)
	t := &tables{
		logBeta:  gt.t.logBeta,
		alpha:    make([]float64, 4*ns),
		alphaTot: make([]float64, 2*ns),
		logNum:   make([][]float64, 4*ns),
		logDen:   make([][]float64, 2*ns),
	}
	for ls, gs := range src2g {
		for j := 0; j < 4; j++ {
			t.alpha[ls*4+j] = gt.t.alpha[int(gs)*4+j]
			t.logNum[ls*4+j] = gt.t.logNum[int(gs)*4+j]
		}
		for j := 0; j < 2; j++ {
			t.alphaTot[ls*2+j] = gt.t.alphaTot[int(gs)*2+j]
			t.logDen[ls*2+j] = gt.t.logDen[int(gs)*2+j]
		}
	}
	return t
}

// SamplerSpec configures a step-driven sampler over a compiled engine.
type SamplerSpec struct {
	// Config is the fit configuration. Zero-valued fields take the paper's
	// defaults sized to the engine's own dataset; distributed callers
	// should pass a Config already resolved with WithDefaults against the
	// global dataset so every shard agrees on priors and schedule.
	Config Config
	// Shared, when non-nil, reuses an already-built global table set
	// instead of building tables for this sampler: the per-source table
	// slices alias the shared backing arrays through Src2G
	// (Src2G[localSource] = globalSource), giving the sampler global
	// count domains — required when its counts include other shards'
	// contributions. The spec's Config must be the same resolved
	// configuration the tables were built under. Nil builds private
	// tables over the engine's own degrees (the single-engine behaviour).
	Shared *Tables
	Src2G  []int32
	// DeferInit skips the uniform initial truth draw. The caller must then
	// initialize every fact exactly once (InitFactShared) before sweeping.
	DeferInit bool
}

// Sampler is one chain's sampler state with step-level control: single
// sweeps, sample keeps, and confusion-count export/import. It is the
// building block of the entity-sharded fitter; LTM.Fit remains the
// one-call path. Not safe for concurrent use.
type Sampler struct {
	e *engine
}

// NewSampler returns a step-driven sampler over the compiled engine.
func (e *Engine) NewSampler(spec SamplerSpec) (*Sampler, error) {
	cfg := spec.Config.withDefaults(e.ds.NumFacts())
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var tab *tables
	if spec.Shared != nil {
		if len(spec.Src2G) != e.lay.numSources {
			return nil, fmt.Errorf("core: sampler Src2G sized %d, want %d", len(spec.Src2G), e.lay.numSources)
		}
		tab = spec.Shared.view(spec.Src2G)
	} else {
		tab = newTablesBounded(e.ds, e.lay, cfg, e.lay.deg, e.lay.obsDeg)
	}
	g := newEngineState(e.lay, tab, cfg)
	if !spec.DeferInit {
		g.initTruth()
	}
	return &Sampler{e: g}, nil
}

// Config returns the fully resolved configuration the sampler runs under.
func (s *Sampler) Config() Config { return s.e.cfg }

// NumFacts returns the number of facts this sampler sweeps.
func (s *Sampler) NumFacts() int { return len(s.e.truth) }

// Sweep resamples every fact once against the sampler's own count tables
// (the per-shard step of the sharded fitter's parallel mode).
func (s *Sampler) Sweep() { s.e.sweep() }

// Keep accumulates the current state as one kept sample, exactly as the
// engine's default schedule does. The caller owns the schedule; use
// KeepIteration to reproduce the default one.
func (s *Sampler) Keep() { s.e.keep() }

// KeepIteration reports whether the default sampling schedule of cfg keeps
// the sample produced by the given 1-based sweep number.
func KeepIteration(cfg Config, iter int) bool { return keepIteration(cfg, iter) }

// Counts returns copies of the confusion-count tables: n[s*4+i*2+j] is the
// count of source s's claims with observation j on facts currently labeled
// i, and tot[s*2+i] its per-label margin, indexed by the engine's own
// (local) source ids.
func (s *Sampler) Counts() (n, tot []int32) {
	n = append([]int32(nil), s.e.n...)
	tot = append([]int32(nil), s.e.tot...)
	return n, tot
}

// SetCounts replaces the confusion-count tables, e.g. with globally
// reconciled counts at a sync barrier. The slices are copied in.
func (s *Sampler) SetCounts(n, tot []int32) error {
	if len(n) != len(s.e.n) || len(tot) != len(s.e.tot) {
		return fmt.Errorf("core: SetCounts sized %d/%d, want %d/%d", len(n), len(tot), len(s.e.n), len(s.e.tot))
	}
	copy(s.e.n, n)
	copy(s.e.tot, tot)
	return nil
}

// Probabilities returns the posterior mean of each fact over kept samples
// (falling back to the final state when none were kept), indexed by the
// engine's own fact ids.
func (s *Sampler) Probabilities() []float64 { return s.e.probabilities() }

// SamplesKept returns the number of samples accumulated by Keep.
func (s *Sampler) SamplesKept() int { return s.e.samples }

// InitFactShared draws fact f's uniform initial truth from rng and counts
// its claims into the shared tables n and tot, which are indexed by GLOBAL
// source ids through src2g (src2g[localSource] = globalSource). It is the
// exact-mode counterpart of the engine's own initialization and consumes
// one rng draw, like it.
func (s *Sampler) InitFactShared(f int, rng *stats.RNG, n, tot []int32, src2g []int32) {
	e := s.e
	if rng.Float64() < 0.5 {
		e.truth[f] = 0
	} else {
		e.truth[f] = 1
	}
	e.applyFactShared(f, int(e.truth[f]), +1, n, tot, src2g)
}

// SampleFactShared resamples local fact f against the shared, globally
// indexed count tables n and tot, drawing from rng and updating the tables
// in place on a flip. The per-claim log reads go through the sampler's own
// tables (indexed by local source ids — hence the tables must have been
// built with global count domains via SamplerSpec.Deg/ObsDeg), so the
// floating-point operations are bit-identical to the single-engine sweep's
// when the shared counts are kept globally synchronized. This is the
// sharded fitter's exact (S=1 barrier) mode.
func (s *Sampler) SampleFactShared(f int, rng *stats.RNG, n, tot []int32, src2g []int32) {
	e := s.e
	lay, tab := e.lay, e.tab
	cur := int(e.truth[f])
	alt := 1 - cur
	lcur := tab.logBeta[cur]
	lalt := tab.logBeta[alt]
	for _, c := range lay.claims[lay.offsets[f]:lay.offsets[f+1]] {
		ls4 := int(c.source) * 4
		ls2 := int(c.source) * 2
		gs4 := int(src2g[c.source]) * 4
		gs2 := int(src2g[c.source]) * 2
		o := int(c.obs)
		icur := cur * 2
		lcur += tab.logNum[ls4+icur+o][n[gs4+icur+o]-1] - tab.logDen[ls2+cur][tot[gs2+cur]-1]
		ialt := alt * 2
		lalt += tab.logNum[ls4+ialt+o][n[gs4+ialt+o]] - tab.logDen[ls2+alt][tot[gs2+alt]]
	}
	pFlip := 1.0 / (1.0 + math.Exp(lcur-lalt))
	if cur == 1 {
		e.cond[f] = 1 - pFlip
	} else {
		e.cond[f] = pFlip
	}
	if rng.Float64() < pFlip {
		e.applyFactShared(f, cur, -1, n, tot, src2g)
		e.truth[f] = int8(alt)
		e.applyFactShared(f, alt, +1, n, tot, src2g)
	}
}

// applyFactShared adds delta to the globally indexed shared counts for all
// claims of fact f under truth label i.
func (e *engine) applyFactShared(f, i, delta int, n, tot []int32, src2g []int32) {
	d := int32(delta)
	i2 := i * 2
	for _, c := range e.lay.claims[e.lay.offsets[f]:e.lay.offsets[f+1]] {
		gs := int(src2g[c.source])
		n[gs*4+i2+int(c.obs)] += d
		tot[gs*2+i] += d
	}
}

// AssembleFit builds a FitResult from already computed posterior truth
// probabilities exactly as LTM.Fit does — shared by the single-engine and
// sharded fitters so both report identical quality read-offs. cfg must be
// the WithDefaults-resolved configuration the probabilities were sampled
// under (its SourcePriors participate in the §5.3 quality estimate).
func AssembleFit(ds *model.Dataset, prob []float64, cfg Config, samples int) *FitResult {
	fit := &FitResult{
		Result:      &model.Result{Method: "LTM", Prob: prob},
		SamplesKept: samples,
		Priors:      cfg.Priors,
	}
	fit.Quality, fit.Sensitivity, fit.FalsePositiveRate = estimateQuality(ds, prob, cfg)
	return fit
}
