package core

import (
	"math"
	"testing"
)

func TestFitChainsPoolsAndDiagnoses(t *testing.T) {
	ds := easySynthetic(t, 300, 71)
	mc, err := New(Config{Seed: 3}).FitChains(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Chains) != 4 {
		t.Fatalf("chains = %d", len(mc.Chains))
	}
	if len(mc.RHat) != ds.NumFacts() {
		t.Fatalf("R-hat for %d facts", len(mc.RHat))
	}
	// Pooled probabilities are the mean of the chains'.
	for f := range mc.Prob {
		sum := 0.0
		for _, c := range mc.Chains {
			sum += c[f]
		}
		if math.Abs(mc.Prob[f]-sum/4) > 1e-12 {
			t.Fatalf("fact %d pooled %v vs mean %v", f, mc.Prob[f], sum/4)
		}
	}
	// On easy, well-identified data the chains must mix: the bulk of
	// facts should show R-hat close to 1 (a handful of genuinely
	// ambiguous facts may not).
	bad := 0
	for _, r := range mc.RHat {
		if r > 1.2 {
			bad++
		}
	}
	if bad > ds.NumFacts()/10 {
		t.Fatalf("%d/%d facts with R-hat > 1.2", bad, ds.NumFacts())
	}
	if acc := accuracyOf(t, ds, mc.Prob); acc < 0.97 {
		t.Fatalf("pooled accuracy %v", acc)
	}
}

func TestFitChainsDeterministic(t *testing.T) {
	ds := easySynthetic(t, 120, 72)
	a, err := New(Config{Seed: 9}).FitChains(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 9}).FitChains(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Prob {
		if a.Prob[f] != b.Prob[f] {
			t.Fatalf("fact %d pooled prob differs across runs", f)
		}
		if a.RHat[f] != b.RHat[f] {
			t.Fatalf("fact %d R-hat differs across runs", f)
		}
	}
}

func TestFitChainsValidation(t *testing.T) {
	ds := easySynthetic(t, 50, 73)
	if _, err := New(Config{Seed: 1}).FitChains(ds, 1); err == nil {
		t.Fatal("expected error for a single chain")
	}
}

func TestFitChainsQualityMatchesSingleChain(t *testing.T) {
	ds := easySynthetic(t, 300, 74)
	mc, err := New(Config{Seed: 3}).FitChains(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(Config{Seed: 3}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for s := range single.Sensitivity {
		if d := math.Abs(mc.Sensitivity[s] - single.Sensitivity[s]); d > 0.05 {
			t.Fatalf("source %d sensitivity differs by %v between pooled and single", s, d)
		}
	}
}
