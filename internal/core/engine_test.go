package core

import (
	"math"
	"testing"

	"latenttruth/internal/synth"
)

// The engine claims more than statistical equivalence with the reference
// sweep: for a fixed seed it performs the same floating-point operations on
// the same values in the same order, so posteriors must match exactly. Any
// drift — even 1 ulp — would let the chains diverge (Gibbs trajectories
// are chaotic in the sample decisions), so exact equality is both the
// strongest and the only stable assertion.

// engineConfigs spans the sampler's configuration surface: defaults,
// binary-sample averaging, explicit schedules (including the NoBurnIn
// sentinel), and per-source prior overrides.
func engineConfigs(srcName string) []Config {
	return []Config{
		{Seed: 1},
		{Seed: 5, BinarySamples: true},
		{Seed: 9, Iterations: 37, BurnIn: 11, SampleGap: 2},
		{Seed: 3, Iterations: 50, BurnIn: NoBurnIn, SampleGap: NoSampleGap},
		{Seed: 7, SourcePriors: map[string]Priors{
			srcName: {FP: 1, TN: 199, TP: 30, FN: 5},
		}},
	}
}

func TestEngineMatchesReferenceFit(t *testing.T) {
	for _, facts := range []int{60, 400} {
		ds := easySynthetic(t, facts, int64(facts))
		for ci, cfg := range engineConfigs(ds.Sources[0]) {
			fit, err := New(cfg).Fit(ds)
			if err != nil {
				t.Fatalf("facts=%d cfg %d: %v", facts, ci, err)
			}
			ref := newReferenceGibbs(ds, cfg.withDefaults(ds.NumFacts()))
			ref.run(nil)
			want := ref.probabilities()
			for f := range want {
				if fit.Prob[f] != want[f] {
					t.Fatalf("facts=%d cfg %d fact %d: engine %v, reference %v (Δ=%v)",
						facts, ci, f, fit.Prob[f], want[f], math.Abs(fit.Prob[f]-want[f]))
				}
			}
		}
	}
}

func TestEngineMatchesReferenceOnSparseClaims(t *testing.T) {
	// The simulated book corpus exercises the non-dense claim structure
	// (per-entity negative claims, uneven fan-out) rather than the dense
	// synthetic grid.
	corpus, err := synth.BookCorpus(21)
	if err != nil {
		t.Fatal(err)
	}
	ds := corpus.Dataset
	cfg := Config{Seed: 7, Iterations: 30, BurnIn: 5}
	fit, err := New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	ref := newReferenceGibbs(ds, cfg.withDefaults(ds.NumFacts()))
	ref.run(nil)
	want := ref.probabilities()
	for f := range want {
		if fit.Prob[f] != want[f] {
			t.Fatalf("fact %d: engine %v, reference %v", f, fit.Prob[f], want[f])
		}
	}
}

func TestEngineMatchesReferenceCheckpoints(t *testing.T) {
	ds := easySynthetic(t, 150, 31)
	cps := []Checkpoint{
		{Iterations: 7, BurnIn: 2, SampleGap: 0},
		{Iterations: 40, BurnIn: 10, SampleGap: 3},
	}
	got, err := New(Config{Seed: 4}).FitCheckpoints(ds, cps)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the checkpoint protocol on the reference sweep.
	cfg := Config{Seed: 4}.withDefaults(ds.NumFacts())
	cfg.Iterations = 40
	ref := newReferenceGibbs(ds, cfg)
	sums := make([][]float64, len(cps))
	counts := make([]int, len(cps))
	for i := range sums {
		sums[i] = make([]float64, ds.NumFacts())
	}
	ref.run(func(iter int, tr []int8) {
		for i, cp := range cps {
			if iter > cp.Iterations || iter <= cp.BurnIn {
				continue
			}
			if (iter-cp.BurnIn-1)%(cp.SampleGap+1) != 0 {
				continue
			}
			counts[i]++
			for f, v := range tr {
				sums[i][f] += float64(v)
			}
		}
	})
	for i := range cps {
		if counts[i] == 0 {
			t.Fatalf("checkpoint %d kept no samples", i)
		}
		for f := range got[i].Prob {
			want := sums[i][f] / float64(counts[i])
			if got[i].Prob[f] != want {
				t.Fatalf("checkpoint %d fact %d: engine %v, reference %v", i, f, got[i].Prob[f], want)
			}
		}
	}
}

func TestEngineMatchesReferenceChains(t *testing.T) {
	ds := easySynthetic(t, 200, 41)
	const chains = 3
	mc, err := New(Config{Seed: 6}).FitChains(ds, chains)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 6}.withDefaults(ds.NumFacts())
	pooled := make([]float64, ds.NumFacts())
	for c := 0; c < chains; c++ {
		ccfg := cfg
		ccfg.Seed = cfg.Seed + int64(c)
		ref := newReferenceGibbs(ds, ccfg)
		ref.run(nil)
		prob := ref.probabilities()
		for f, p := range prob {
			pooled[f] += p
		}
		for f, p := range prob {
			if mc.Chains[c][f] != p {
				t.Fatalf("chain %d fact %d: engine %v, reference %v", c, f, mc.Chains[c][f], p)
			}
		}
	}
	for f := range pooled {
		if want := pooled[f] / chains; mc.Prob[f] != want {
			t.Fatalf("pooled fact %d: engine %v, reference %v", f, mc.Prob[f], want)
		}
	}
}

func TestEngineReuseAcrossConfigs(t *testing.T) {
	// A compiled engine must be reusable for many fits with different
	// priors and seeds, each equivalent to a fresh LTM fit.
	ds := easySynthetic(t, 120, 51)
	eng := Compile(ds)
	for _, cfg := range engineConfigs(ds.Sources[1]) {
		fromEngine, err := eng.Fit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(cfg).Fit(ds)
		if err != nil {
			t.Fatal(err)
		}
		for f := range fresh.Prob {
			if fromEngine.Prob[f] != fresh.Prob[f] {
				t.Fatalf("fact %d: engine reuse %v, fresh fit %v", f, fromEngine.Prob[f], fresh.Prob[f])
			}
		}
	}
	// And the chains entry point too.
	a, err := eng.FitChains(Config{Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 2}).FitChains(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Prob {
		if a.Prob[f] != b.Prob[f] {
			t.Fatalf("fact %d: engine chains %v, LTM chains %v", f, a.Prob[f], b.Prob[f])
		}
	}
}

func TestCompileLayoutShape(t *testing.T) {
	ds := easySynthetic(t, 80, 61)
	lay := compileLayout(ds)
	if len(lay.claims) != ds.NumClaims() {
		t.Fatalf("layout has %d claims, dataset %d", len(lay.claims), ds.NumClaims())
	}
	if got, want := int(lay.offsets[len(lay.offsets)-1]), ds.NumClaims(); got != want {
		t.Fatalf("final offset %d, want %d", got, want)
	}
	for f := 0; f < ds.NumFacts(); f++ {
		cs := lay.claims[lay.offsets[f]:lay.offsets[f+1]]
		if len(cs) != len(ds.ClaimsByFact[f]) {
			t.Fatalf("fact %d: %d packed claims, %d claim indices", f, len(cs), len(ds.ClaimsByFact[f]))
		}
		for k, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			o := uint8(0)
			if c.Observation {
				o = 1
			}
			if cs[k].source != int32(c.Source) || cs[k].obs != o {
				t.Fatalf("fact %d claim %d: packed (%d,%d), want (%d,%d)",
					f, k, cs[k].source, cs[k].obs, c.Source, o)
			}
		}
	}
	var deg, pos int32
	for s := 0; s < ds.NumSources(); s++ {
		deg += lay.deg[s]
		pos += lay.obsDeg[s*2+1]
	}
	if int(deg) != ds.NumClaims() || int(pos) != ds.NumPositiveClaims() {
		t.Fatalf("degree totals %d/%d, want %d/%d", deg, pos, ds.NumClaims(), ds.NumPositiveClaims())
	}
}

func TestLogTablesMatchDirectLogs(t *testing.T) {
	ds := easySynthetic(t, 70, 71)
	cfg := Config{Seed: 1, SourcePriors: map[string]Priors{
		ds.Sources[2]: {FP: 2, TN: 300, TP: 12, FN: 7},
	}}.withDefaults(ds.NumFacts())
	lay := compileLayout(ds)
	tab := newTables(ds, lay, cfg)
	for s := 0; s < lay.numSources; s++ {
		p := cfg.Priors
		if sp, ok := cfg.SourcePriors[ds.Sources[s]]; ok {
			sp.True, sp.Fls = p.True, p.Fls
			p = sp
		}
		for i := 0; i <= 1; i++ {
			for j := 0; j <= 1; j++ {
				for m, got := range tab.logNum[s*4+i*2+j] {
					if want := math.Log(float64(m) + p.alpha(i, j)); got != want {
						t.Fatalf("logNum[s=%d,i=%d,j=%d][%d] = %v, want %v", s, i, j, m, got, want)
					}
				}
			}
			for m, got := range tab.logDen[s*2+i] {
				if want := math.Log(float64(m) + p.alphaTotal(i)); got != want {
					t.Fatalf("logDen[s=%d,i=%d][%d] = %v, want %v", s, i, m, got, want)
				}
			}
		}
	}
}
