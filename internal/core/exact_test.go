package core

import (
	"math"
	"testing"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// exactMarginals computes the exact posterior marginals p(t_f = 1 | o) by
// enumerating all 2^F truth assignments and integrating out θ and φ in
// closed form (Beta-Bernoulli conjugacy):
//
//	p(t | o) ∝ Π_f β_{t_f} · Π_s Π_i B(n_{s,i,1}+α_{i,1}, n_{s,i,0}+α_{i,0})
//
// where n_{s,i,j} counts source s's claims with truth label i and
// observation j under assignment t. This is the ground truth the collapsed
// Gibbs sampler (Equation 2) must converge to.
func exactMarginals(ds *model.Dataset, p Priors) []float64 {
	nF := ds.NumFacts()
	if nF > 16 {
		panic("exactMarginals: too many facts to enumerate")
	}
	nS := ds.NumSources()
	logw := make([]float64, 1<<uint(nF))
	marg := make([]float64, nF)
	maxLog := math.Inf(-1)
	counts := make([][2][2]float64, nS)
	for mask := 0; mask < 1<<uint(nF); mask++ {
		for s := range counts {
			counts[s] = [2][2]float64{}
		}
		lw := 0.0
		for f := 0; f < nF; f++ {
			if mask&(1<<uint(f)) != 0 {
				lw += math.Log(p.beta(1))
			} else {
				lw += math.Log(p.beta(0))
			}
		}
		for _, c := range ds.Claims {
			i := 0
			if mask&(1<<uint(c.Fact)) != 0 {
				i = 1
			}
			j := 0
			if c.Observation {
				j = 1
			}
			counts[c.Source][i][j]++
		}
		for s := 0; s < nS; s++ {
			for i := 0; i <= 1; i++ {
				a1 := counts[s][i][1] + p.alpha(i, 1)
				a0 := counts[s][i][0] + p.alpha(i, 0)
				lw += stats.LogBeta(a1, a0) - stats.LogBeta(p.alpha(i, 1), p.alpha(i, 0))
			}
		}
		logw[mask] = lw
		if lw > maxLog {
			maxLog = lw
		}
	}
	var z float64
	for mask, lw := range logw {
		w := math.Exp(lw - maxLog)
		z += w
		for f := 0; f < nF; f++ {
			if mask&(1<<uint(f)) != 0 {
				marg[f] += w
			}
		}
	}
	for f := range marg {
		marg[f] /= z
	}
	return marg
}

// exactTestDataset builds a small dataset with interesting structure:
// 3 entities, 6 facts, 4 sources with asymmetric behaviour.
func exactTestDataset() *model.Dataset {
	db := model.NewRawDB()
	rows := [][3]string{
		{"e1", "a", "s1"}, {"e1", "a", "s2"}, {"e1", "a", "s3"},
		{"e1", "b", "s1"},
		{"e2", "c", "s1"}, {"e2", "c", "s2"},
		{"e2", "d", "s4"},
		{"e3", "e", "s2"}, {"e3", "e", "s3"}, {"e3", "e", "s4"},
		{"e3", "f", "s3"},
	}
	for _, r := range rows {
		db.Add(r[0], r[1], r[2])
	}
	return model.Build(db)
}

// TestGibbsMatchesExactPosterior is the strongest correctness test of the
// collapsed sampler: with a long chain, the sampled marginals must agree
// with exact enumeration on every fact.
func TestGibbsMatchesExactPosterior(t *testing.T) {
	ds := exactTestDataset()
	priors := Priors{FP: 2, TN: 8, TP: 6, FN: 4, True: 3, Fls: 5}
	exact := exactMarginals(ds, priors)
	cfg := Config{
		Priors:     priors,
		Iterations: 60000,
		BurnIn:     2000,
		SampleGap:  0,
		Seed:       17,
	}
	fit, err := New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range exact {
		if d := math.Abs(fit.Prob[f] - exact[f]); d > 0.01 {
			t.Errorf("fact %d: Gibbs %v vs exact %v (|Δ| = %v)",
				f, fit.Prob[f], exact[f], d)
		}
	}
}

// TestGibbsMatchesExactPosteriorBinary repeats the check with the paper's
// binary sample averaging, at a looser tolerance (higher variance).
func TestGibbsMatchesExactPosteriorBinary(t *testing.T) {
	ds := exactTestDataset()
	priors := Priors{FP: 2, TN: 8, TP: 6, FN: 4, True: 3, Fls: 5}
	exact := exactMarginals(ds, priors)
	cfg := Config{
		Priors:        priors,
		Iterations:    60000,
		BurnIn:        2000,
		SampleGap:     0,
		Seed:          23,
		BinarySamples: true,
	}
	fit, err := New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range exact {
		if d := math.Abs(fit.Prob[f] - exact[f]); d > 0.02 {
			t.Errorf("fact %d: Gibbs %v vs exact %v (|Δ| = %v)",
				f, fit.Prob[f], exact[f], d)
		}
	}
}

// TestExactMarginalsSanity validates the enumerator itself on a dataset
// with one fact and symmetric priors: the posterior must favour truth when
// the only claim is positive and the sensitivity prior is optimistic.
func TestExactMarginalsSanity(t *testing.T) {
	db := model.NewRawDB()
	db.Add("e", "a", "s")
	ds := model.Build(db)
	// Symmetric everything: positive claim, sens prior mean = fpr prior
	// mean = 0.5, uniform truth prior -> marginal exactly 0.5.
	sym := Priors{FP: 5, TN: 5, TP: 5, FN: 5, True: 7, Fls: 7}
	m := exactMarginals(ds, sym)
	if math.Abs(m[0]-0.5) > 1e-12 {
		t.Fatalf("symmetric marginal %v, want 0.5", m[0])
	}
	// Optimistic sensitivity, pessimistic FPR: positive claim implies
	// truth. p(o=1|t=1) = 0.9, p(o=1|t=0) = 0.1 -> posterior 0.9.
	skew := Priors{FP: 1, TN: 9, TP: 9, FN: 1, True: 5, Fls: 5}
	m = exactMarginals(ds, skew)
	if math.Abs(m[0]-0.9) > 1e-12 {
		t.Fatalf("skewed marginal %v, want 0.9", m[0])
	}
}
