package core

import (
	"math"
	"testing"

	"latenttruth/internal/synth"
)

// TestSourcePriorsUniformEquivalence: supplying every source's prior
// explicitly equal to the global prior must be bit-identical to supplying
// no per-source priors at all (same seed, same sampler path).
func TestSourcePriorsUniformEquivalence(t *testing.T) {
	ds := easySynthetic(t, 250, 61)
	base := Config{Seed: 5}
	plain, err := New(base).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	withMap := base
	withMap.Priors = plain.Priors // the defaults resolved at fit time
	withMap.SourcePriors = make(map[string]Priors, ds.NumSources())
	for _, name := range ds.Sources {
		withMap.SourcePriors[name] = plain.Priors
	}
	mapped, err := New(withMap).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for f := range plain.Prob {
		if plain.Prob[f] != mapped.Prob[f] {
			t.Fatalf("fact %d: %v vs %v", f, plain.Prob[f], mapped.Prob[f])
		}
	}
	for s := range plain.Sensitivity {
		if plain.Sensitivity[s] != mapped.Sensitivity[s] {
			t.Fatalf("source %d sensitivity differs", s)
		}
	}
}

// TestSourcePriorsSteerInference: a strong per-source prior stating a
// source fabricates should measurably lower that source's inferred
// specificity relative to the uninformed fit, and weaken its positives.
func TestSourcePriorsSteerInference(t *testing.T) {
	ds := easySynthetic(t, 250, 62)
	name := ds.Sources[0]
	base := Config{Seed: 5}
	plain, err := New(base).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	biased := base
	biased.Priors = plain.Priors
	biased.SourcePriors = map[string]Priors{
		// Overwhelming prior: source 0 has a 60% false positive rate.
		name: {FP: 6000, TN: 4000, TP: 50, FN: 50},
	}
	skew, err := New(biased).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if skew.Quality[0].Specificity >= plain.Quality[0].Specificity {
		t.Fatalf("prior did not lower specificity: %v vs %v",
			skew.Quality[0].Specificity, plain.Quality[0].Specificity)
	}
	if skew.Quality[0].Specificity > 0.55 {
		t.Fatalf("specificity %v despite overwhelming fabrication prior",
			skew.Quality[0].Specificity)
	}
}

// TestDefaultPriorsMatchPaperSettings pins the published hyperparameters:
// the paper uses α0=(10, 1000) for the 2420-fact book data and
// α0=(100, 10000) for the 33526-fact movie data.
func TestDefaultPriorsMatchPaperSettings(t *testing.T) {
	book := DefaultPriors(2420)
	if math.Abs(book.FP-8.07) > 0.1 || math.Abs(book.TN-798.6) > 1 {
		t.Fatalf("book-scale priors (%v, %v), want ≈(10, 1000) scale", book.FP, book.TN)
	}
	movie := DefaultPriors(33526)
	if movie.FP < 80 || movie.FP > 130 || movie.TN < 8000 || movie.TN > 13000 {
		t.Fatalf("movie-scale priors (%v, %v), want ≈(100, 10000) scale", movie.FP, movie.TN)
	}
	// α1 = (50, 50) and β = (10, 10) exactly as published.
	if movie.TP != 50 || movie.FN != 50 || movie.True != 10 || movie.Fls != 10 {
		t.Fatalf("uniform priors %+v, want TP=FN=50, True=Fls=10", movie)
	}
}

// TestQualityPriorCarryOver: fitting the second half of a dataset with
// per-source priors carried from the first half must preserve the quality
// ranking learned there even before seeing much new evidence.
func TestQualityPriorCarryOver(t *testing.T) {
	ds, _, err := synth.PaperSynthetic(synth.PaperSyntheticConfig{
		NumFacts: 800, NumSources: 8,
		Alpha0: [2]float64{10, 90}, Alpha1: [2]float64{60, 40},
		Beta: [2]float64{10, 10}, Seed: 63,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := New(Config{Seed: 2}).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	carried := QualityPriors(ds, first.Prob, first.Priors)
	cfg := Config{Seed: 3, Priors: first.Priors, SourcePriors: carried, Iterations: 5, BurnIn: 1}
	// Only five iterations on the SAME data: the carried priors dominate,
	// and inferred quality must correlate with the first fit's.
	second, err := New(cfg).Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for s := range first.Sensitivity {
		if d := math.Abs(first.Sensitivity[s] - second.Sensitivity[s]); d > 0.1 {
			t.Errorf("source %d sensitivity drifted %v despite carried priors", s, d)
		}
	}
}
