package integrate

import (
	"strings"
	"testing"

	"latenttruth/internal/model"
	"latenttruth/internal/synth"
)

func table1Result() (*model.Dataset, *model.Result) {
	ds := synth.Table1Example().Dataset
	res := model.NewResult("test", ds)
	for f, v := range ds.Labels {
		if v {
			res.Prob[f] = 0.95
		} else {
			res.Prob[f] = 0.1
		}
	}
	return ds, res
}

func TestMergeTable1(t *testing.T) {
	ds, res := table1Result()
	records, err := Merge(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d", len(records))
	}
	byEntity := map[string]Record{}
	for _, r := range records {
		byEntity[r.Entity] = r
	}
	hp := byEntity["Harry Potter"]
	if len(hp.Attributes) != 3 || len(hp.Rejected) != 1 {
		t.Fatalf("Harry Potter: %d accepted, %d rejected", len(hp.Attributes), len(hp.Rejected))
	}
	if hp.Rejected[0].Value != "Johnny Depp" {
		t.Fatalf("rejected %q", hp.Rejected[0].Value)
	}
	p4 := byEntity["Pirates 4"]
	if len(p4.Attributes) != 1 || p4.Attributes[0].Value != "Johnny Depp" {
		t.Fatalf("Pirates 4 record wrong: %+v", p4)
	}
}

func TestMergeSupportLists(t *testing.T) {
	ds, res := table1Result()
	records, err := Merge(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var emma Attribute
	for _, r := range records {
		for _, a := range r.Attributes {
			if a.Value == "Emma Watson" {
				emma = a
			}
		}
	}
	wantSup := []string{"BadSource.com", "IMDB"}
	wantDen := []string{"Netflix"}
	if strings.Join(emma.Supporters, "|") != strings.Join(wantSup, "|") {
		t.Fatalf("supporters = %v", emma.Supporters)
	}
	if strings.Join(emma.Deniers, "|") != strings.Join(wantDen, "|") {
		t.Fatalf("deniers = %v", emma.Deniers)
	}
}

func TestMergeOrdering(t *testing.T) {
	ds, res := table1Result()
	// Distinct probabilities force a deterministic order check.
	res.Prob[0], res.Prob[1], res.Prob[2] = 0.99, 0.7, 0.9
	records, err := Merge(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var hp Record
	for _, r := range records {
		if r.Entity == "Harry Potter" {
			hp = r
		}
	}
	for i := 1; i < len(hp.Attributes); i++ {
		if hp.Attributes[i-1].Probability < hp.Attributes[i].Probability {
			t.Fatalf("accepted attributes unsorted: %+v", hp.Attributes)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	ds, res := table1Result()
	if _, err := Merge(ds, res, 1.5); err == nil {
		t.Fatal("expected threshold error")
	}
	bad := &model.Result{Method: "m", Prob: []float64{0.5}}
	if _, err := Merge(ds, bad, 0.5); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestConflicts(t *testing.T) {
	ds, res := table1Result()
	records, err := Merge(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	conflicts := Conflicts(records)
	// Harry Potter has a rejected value and denied accepted values;
	// Pirates 4 is uncontested.
	if len(conflicts) != 1 || conflicts[0].Entity != "Harry Potter" {
		t.Fatalf("conflicts = %+v", conflicts)
	}
}

func TestConflictsIncludesDeniedAccepted(t *testing.T) {
	// An entity with no rejected values but a denied accepted value is
	// still contested.
	db := model.NewRawDB()
	db.Add("e", "a", "s1")
	db.Add("e", "b", "s1")
	db.Add("e", "a", "s2") // s2 denies b
	ds := model.Build(db)
	res := model.NewResult("m", ds)
	res.Prob[0], res.Prob[1] = 0.9, 0.9 // accept both
	records, err := Merge(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	conflicts := Conflicts(records)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(conflicts))
	}
}
