package integrate

import (
	"fmt"
	"sort"

	"latenttruth/internal/model"
)

// Attribute is one attribute value of a merged record.
type Attribute struct {
	Value string
	// Probability is the method's truth probability for this value.
	Probability float64
	// Supporters and Deniers are the names of sources with positive and
	// negative claims on this value, sorted.
	Supporters []string
	Deniers    []string
}

// Record is the merged record of one entity: its attribute values
// predicted true at the integration threshold, ordered by decreasing
// probability (ties broken by value).
type Record struct {
	Entity     string
	Attributes []Attribute
	// Rejected lists the candidate values predicted false, same ordering.
	Rejected []Attribute
}

// Merge builds merged records for every entity of ds from a method's
// result at the given threshold. Entities appear in dataset order.
func Merge(ds *model.Dataset, res *model.Result, threshold float64) ([]Record, error) {
	if len(res.Prob) != ds.NumFacts() {
		return nil, fmt.Errorf("integrate: result has %d scores for %d facts", len(res.Prob), ds.NumFacts())
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("integrate: threshold %v outside [0,1]", threshold)
	}
	records := make([]Record, 0, ds.NumEntities())
	for e, facts := range ds.FactsByEntity {
		rec := Record{Entity: ds.Entities[e]}
		for _, f := range facts {
			attr := Attribute{
				Value:       ds.Facts[f].Attribute,
				Probability: res.Prob[f],
			}
			for _, ci := range ds.ClaimsByFact[f] {
				c := ds.Claims[ci]
				if c.Observation {
					attr.Supporters = append(attr.Supporters, ds.Sources[c.Source])
				} else {
					attr.Deniers = append(attr.Deniers, ds.Sources[c.Source])
				}
			}
			sort.Strings(attr.Supporters)
			sort.Strings(attr.Deniers)
			if res.Predict(f, threshold) {
				rec.Attributes = append(rec.Attributes, attr)
			} else {
				rec.Rejected = append(rec.Rejected, attr)
			}
		}
		sortAttrs(rec.Attributes)
		sortAttrs(rec.Rejected)
		records = append(records, rec)
	}
	return records, nil
}

// sortAttrs orders by decreasing probability, then value.
func sortAttrs(attrs []Attribute) {
	sort.SliceStable(attrs, func(i, j int) bool {
		if attrs[i].Probability != attrs[j].Probability {
			return attrs[i].Probability > attrs[j].Probability
		}
		return attrs[i].Value < attrs[j].Value
	})
}

// Conflict describes an entity on which sources disagreed: some candidate
// value was both supported and denied, or multiple candidates competed.
type Conflict struct {
	Entity string
	// Accepted and Rejected are the resolved candidate values.
	Accepted []Attribute
	Rejected []Attribute
}

// Conflicts returns the subset of merged records where resolution actually
// discarded or disambiguated information: entities with at least one
// rejected candidate or one denied accepted value.
func Conflicts(records []Record) []Conflict {
	var out []Conflict
	for _, r := range records {
		contested := len(r.Rejected) > 0
		if !contested {
			for _, a := range r.Attributes {
				if len(a.Deniers) > 0 {
					contested = true
					break
				}
			}
		}
		if contested {
			out = append(out, Conflict{Entity: r.Entity, Accepted: r.Attributes, Rejected: r.Rejected})
		}
	}
	return out
}
