// Package integrate turns inferred truth back into the data-integration
// end product the paper's introduction motivates (§1, the integrated view
// of Tables 1–3): one merged record per entity carrying the attribute
// values predicted true at the decision threshold (Definition 4), plus a
// conflict report explaining how each disputed value was resolved and
// which sources supported or contradicted it.
package integrate
