package experiments

import (
	"fmt"
	"time"

	"latenttruth/internal/baselines"
	"latenttruth/internal/core"
	"latenttruth/internal/eval"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/store"
	"latenttruth/internal/synth"
)

// Table7 reproduces Table 7: one-sided (precision, recall, FPR) and
// two-sided (accuracy, F1) error metrics per method at threshold 0.5.
type Table7 struct {
	Dataset string
	Rows    []eval.Metrics
}

// RunTable7 evaluates all methods on one corpus.
func RunTable7(c *synth.Corpus, cfg Config) (*Table7, error) {
	cfg = cfg.WithDefaults()
	runs, err := runAllMethods(c.Dataset, cfg)
	if err != nil {
		return nil, err
	}
	out := &Table7{Dataset: c.Spec.Name}
	for _, r := range runs {
		m, err := evaluateRun(r, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, m)
	}
	return out, nil
}

// Render produces the paper-style text table.
func (t *Table7) Render() string {
	tb := table{
		title:  fmt.Sprintf("Table 7 (%s data): inference results with threshold 0.5", t.Dataset),
		header: []string{"Method", "Precision", "Recall", "FPR", "Accuracy", "F1"},
	}
	for _, r := range t.Rows {
		tb.addRow(r.Method, f3(r.Precision), f3(r.Recall), f3(r.FPR), f3(r.Accuracy), f3(r.F1))
	}
	return tb.render()
}

// Table8Row pairs LTM's inferred quality for a source with the generator's
// achieved quality — the upgrade the simulated corpus permits over the
// paper's qualitative case study.
type Table8Row struct {
	Source          string
	Sensitivity     float64
	Specificity     float64
	TrueSensitivity float64
	TrueSpecificity float64
}

// Table8 reproduces Table 8 (source quality on the movie data, sorted by
// decreasing inferred sensitivity) plus the quantitative agreement between
// inferred and generator-true quality.
type Table8 struct {
	Rows []Table8Row
	// SensSpearman and SpecSpearman are rank correlations between inferred
	// and true quality across sources; SensMAE and SpecMAE the mean
	// absolute errors.
	SensSpearman, SpecSpearman float64
	SensMAE, SpecMAE           float64
}

// RunTable8 fits LTM on the movie corpus and reads off source quality.
func RunTable8(movie *synth.Corpus, cfg Config) (*Table8, error) {
	cfg = cfg.WithDefaults()
	fit, err := core.New(cfg.LTM).Fit(movie.Dataset)
	if err != nil {
		return nil, err
	}
	trueQ, err := movie.TrueQuality(movie.Dataset)
	if err != nil {
		return nil, err
	}
	trueBy := make(map[string]model.SourceQuality, len(trueQ))
	for _, q := range trueQ {
		trueBy[q.Source] = q
	}
	out := &Table8{}
	var sensI, sensT, specI, specT []float64
	for _, q := range core.RankedQuality(fit.Quality) {
		tq := trueBy[q.Source]
		out.Rows = append(out.Rows, Table8Row{
			Source:          q.Source,
			Sensitivity:     q.Sensitivity,
			Specificity:     q.Specificity,
			TrueSensitivity: tq.Sensitivity,
			TrueSpecificity: tq.Specificity,
		})
		sensI = append(sensI, q.Sensitivity)
		sensT = append(sensT, tq.Sensitivity)
		specI = append(specI, q.Specificity)
		specT = append(specT, tq.Specificity)
	}
	if out.SensSpearman, err = stats.SpearmanCorrelation(sensI, sensT); err != nil {
		return nil, err
	}
	if out.SpecSpearman, err = stats.SpearmanCorrelation(specI, specT); err != nil {
		return nil, err
	}
	if out.SensMAE, err = stats.MeanAbsoluteError(sensI, sensT); err != nil {
		return nil, err
	}
	if out.SpecMAE, err = stats.MeanAbsoluteError(specI, specT); err != nil {
		return nil, err
	}
	return out, nil
}

// Render produces the paper-style text table plus the agreement summary.
func (t *Table8) Render() string {
	tb := table{
		title:  "Table 8 (movie data): LTM source quality, sorted by sensitivity",
		header: []string{"Source", "Sensitivity", "Specificity", "TrueSens", "TrueSpec"},
	}
	for _, r := range t.Rows {
		tb.addRow(r.Source, f4(r.Sensitivity), f4(r.Specificity), f4(r.TrueSensitivity), f4(r.TrueSpecificity))
	}
	return tb.render() + fmt.Sprintf(
		"agreement: sens Spearman=%.3f MAE=%.3f | spec Spearman=%.3f MAE=%.3f\n",
		t.SensSpearman, t.SensMAE, t.SpecSpearman, t.SpecMAE)
}

// Table9Row is one method's mean runtime per subsampled dataset size.
type Table9Row struct {
	Method string
	// Seconds[i] is the mean wall-clock runtime on Sizes[i] entities.
	Seconds []float64
}

// Table9 reproduces Table 9: runtimes versus entity count. Claims[i]
// records the claim count of each subsample, used by Figure 6.
type Table9 struct {
	Sizes  []int
	Claims []int
	Rows   []Table9Row
	// LTMSeconds[i] is LTM's mean runtime on subsample i (convenience for
	// Figure 6).
	LTMSeconds []float64
}

// RunTable9 times every method on entity subsamples of the movie corpus
// (3k/6k/9k/12k/15k in the paper, truncated to the corpus size), averaging
// cfg.Repeats runs. LTMinc is timed on prediction only, with quality
// learned once beforehand — matching the paper's protocol ("we run LTMinc
// ... by assuming the data is incremental and source quality is given").
func RunTable9(movie *synth.Corpus, cfg Config) (*Table9, error) {
	cfg = cfg.WithDefaults()
	full := movie.Dataset
	sizes := cfg.Table9Sizes
	out := &Table9{}
	subs := make([]*model.Dataset, 0, len(sizes))
	rng := corpusRNG(cfg, 9)
	for _, n := range sizes {
		if n > full.NumEntities() {
			n = full.NumEntities()
		}
		sub := store.SubsampleEntities(full, n, rng)
		subs = append(subs, sub)
		out.Sizes = append(out.Sizes, n)
		out.Claims = append(out.Claims, sub.NumClaims())
	}
	// Learn quality once on the full corpus for LTMinc.
	fit, err := core.New(cfg.LTM).Fit(full)
	if err != nil {
		return nil, err
	}
	inc, err := core.NewIncremental(full, fit)
	if err != nil {
		return nil, err
	}
	type timed struct {
		name string
		run  func(*model.Dataset) error
	}
	methods := []timed{
		{"Voting", infer(baselines.NewVoting())},
		{"LTMinc", infer(inc)},
		{"AvgLog", infer(baselines.NewAvgLog())},
		{"HubAuthority", infer(baselines.NewHubAuthority())},
		{"PooledInvestment", infer(baselines.NewPooledInvestment())},
		{"TruthFinder", infer(baselines.NewTruthFinder())},
		{"Investment", infer(baselines.NewInvestment())},
		{"3-Estimates", infer(baselines.NewThreeEstimates())},
		{"LTM", infer(core.New(cfg.LTM))},
	}
	for _, m := range methods {
		row := Table9Row{Method: m.name}
		for _, sub := range subs {
			var total time.Duration
			for rep := 0; rep < cfg.Repeats; rep++ {
				start := time.Now()
				if err := m.run(sub); err != nil {
					return nil, fmt.Errorf("experiments: timing %s: %w", m.name, err)
				}
				total += time.Since(start)
			}
			row.Seconds = append(row.Seconds, total.Seconds()/float64(cfg.Repeats))
		}
		out.Rows = append(out.Rows, row)
		if m.name == "LTM" {
			out.LTMSeconds = row.Seconds
		}
	}
	return out, nil
}

// infer adapts a model.Method to a timing closure.
func infer(m model.Method) func(*model.Dataset) error {
	return func(ds *model.Dataset) error {
		_, err := m.Infer(ds)
		return err
	}
}

// Render produces the paper-style runtime table.
func (t *Table9) Render() string {
	header := []string{"Method"}
	for _, n := range t.Sizes {
		header = append(header, fmt.Sprintf("%dk", n/1000))
	}
	tb := table{
		title:  fmt.Sprintf("Table 9 (movie data): mean runtime in seconds vs #entities (claims: %v)", t.Claims),
		header: header,
	}
	for _, r := range t.Rows {
		cells := []string{r.Method}
		for _, s := range r.Seconds {
			cells = append(cells, fmt.Sprintf("%.3f", s))
		}
		tb.addRow(cells...)
	}
	return tb.render()
}
