package experiments

import (
	"fmt"

	"latenttruth/internal/core"
	"latenttruth/internal/eval"
	"latenttruth/internal/stats"
	"latenttruth/internal/synth"
)

// Figure2 reproduces Figure 2: accuracy as a function of the decision
// threshold for every method on one dataset. (The paper omits the F1 plot
// as near-identical; F1 is recorded here as well.)
type Figure2 struct {
	Dataset    string
	Thresholds []float64
	// Accuracy[m][i] is method m's accuracy at Thresholds[i]; F1 likewise.
	Methods  []string
	Accuracy [][]float64
	F1       [][]float64
}

// RunFigure2 sweeps thresholds 0.05..0.95 in steps of 0.05.
func RunFigure2(c *synth.Corpus, cfg Config) (*Figure2, error) {
	cfg = cfg.WithDefaults()
	runs, err := runAllMethods(c.Dataset, cfg)
	if err != nil {
		return nil, err
	}
	out := &Figure2{Dataset: c.Spec.Name}
	for t := 0.05; t < 1.0; t += 0.05 {
		out.Thresholds = append(out.Thresholds, t)
	}
	for _, r := range runs {
		pts, err := eval.ThresholdSweep(r.ds, r.res, out.Thresholds)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweeping %s: %w", r.name, err)
		}
		acc := make([]float64, len(pts))
		f1 := make([]float64, len(pts))
		for i, p := range pts {
			acc[i] = p.Accuracy
			f1[i] = p.F1
		}
		out.Methods = append(out.Methods, r.name)
		out.Accuracy = append(out.Accuracy, acc)
		out.F1 = append(out.F1, f1)
	}
	return out, nil
}

// Render lists accuracy per threshold, one row per method.
func (f *Figure2) Render() string {
	header := []string{"Method"}
	for _, t := range f.Thresholds {
		header = append(header, fmt.Sprintf("%.2f", t))
	}
	tb := table{
		title:  fmt.Sprintf("Figure 2 (%s data): accuracy vs decision threshold", f.Dataset),
		header: header,
	}
	for i, m := range f.Methods {
		cells := []string{m}
		for _, a := range f.Accuracy[i] {
			cells = append(cells, fmt.Sprintf("%.3f", a))
		}
		tb.addRow(cells...)
	}
	return tb.render()
}

// Figure3 reproduces Figure 3: the area under the ROC curve per method per
// dataset, sorted by decreasing mean AUC.
type Figure3 struct {
	// Methods[i] pairs with BookAUC[i] and MovieAUC[i].
	Methods  []string
	BookAUC  []float64
	MovieAUC []float64
}

// RunFigure3 computes AUCs on both corpora.
func RunFigure3(corpora *Corpora, cfg Config) (*Figure3, error) {
	cfg = cfg.WithDefaults()
	aucsFor := func(c *synth.Corpus) (map[string]float64, error) {
		runs, err := runAllMethods(c.Dataset, cfg)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, len(runs))
		for _, r := range runs {
			a, err := eval.AUC(r.ds, r.res)
			if err != nil {
				return nil, fmt.Errorf("experiments: AUC of %s: %w", r.name, err)
			}
			out[r.name] = a
		}
		return out, nil
	}
	book, err := aucsFor(corpora.Book)
	if err != nil {
		return nil, err
	}
	movie, err := aucsFor(corpora.Movie)
	if err != nil {
		return nil, err
	}
	out := &Figure3{}
	for name := range book {
		out.Methods = append(out.Methods, name)
	}
	// Sort by decreasing mean AUC, the paper's presentation order.
	for i := 1; i < len(out.Methods); i++ {
		for j := i; j > 0; j-- {
			a, b := out.Methods[j], out.Methods[j-1]
			if book[a]+movie[a] > book[b]+movie[b] {
				out.Methods[j], out.Methods[j-1] = b, a
			} else {
				break
			}
		}
	}
	for _, name := range out.Methods {
		out.BookAUC = append(out.BookAUC, book[name])
		out.MovieAUC = append(out.MovieAUC, movie[name])
	}
	return out, nil
}

// Render lists AUC per dataset per method.
func (f *Figure3) Render() string {
	tb := table{
		title:  "Figure 3: area under the ROC curve per method per dataset",
		header: []string{"Method", "BookAUC", "MovieAUC"},
	}
	for i, m := range f.Methods {
		tb.addRow(m, f3(f.BookAUC[i]), f3(f.MovieAUC[i]))
	}
	return tb.render()
}

// Figure4Point is one synthetic setting of Figure 4.
type Figure4Point struct {
	// Varied is the expected value of the varied quality measure.
	Varied   float64
	Accuracy float64
}

// Figure4 reproduces Figure 4: LTM accuracy on synthetic data while one of
// expected sensitivity / expected specificity is varied from 0.1 to 0.9
// with the other fixed at 0.9.
type Figure4 struct {
	VaryingSensitivity []Figure4Point
	VaryingSpecificity []Figure4Point
}

// RunFigure4 runs the two synthetic sweeps of §6.1.1 / Figure 4.
func RunFigure4(cfg Config) (*Figure4, error) {
	cfg = cfg.WithDefaults()
	out := &Figure4{}
	for step := 1; step <= 9; step++ {
		q := float64(step) / 10
		a := float64(step * 10)
		// Varying sensitivity, expected specificity fixed at 0.9.
		sc := synth.DefaultPaperSynthetic()
		sc.NumFacts = cfg.SyntheticFacts
		sc.NumSources = cfg.SyntheticSources
		sc.Seed = cfg.Seed
		sc.Alpha1 = [2]float64{a, 100 - a} // E[sensitivity] = q
		sc.Alpha0 = [2]float64{10, 90}     // E[specificity] = 0.9
		acc, err := ltmSyntheticAccuracy(sc, cfg)
		if err != nil {
			return nil, err
		}
		out.VaryingSensitivity = append(out.VaryingSensitivity, Figure4Point{Varied: q, Accuracy: acc})
		// Varying specificity, expected sensitivity fixed at 0.9.
		sc = synth.DefaultPaperSynthetic()
		sc.NumFacts = cfg.SyntheticFacts
		sc.NumSources = cfg.SyntheticSources
		sc.Seed = cfg.Seed + 1
		sc.Alpha1 = [2]float64{90, 10}     // E[sensitivity] = 0.9
		sc.Alpha0 = [2]float64{100 - a, a} // E[FPR] = 1−q, E[specificity] = q
		acc, err = ltmSyntheticAccuracy(sc, cfg)
		if err != nil {
			return nil, err
		}
		out.VaryingSpecificity = append(out.VaryingSpecificity, Figure4Point{Varied: q, Accuracy: acc})
	}
	return out, nil
}

// ltmSyntheticAccuracy generates one synthetic dataset and returns LTM's
// accuracy over all (fully labeled) facts at the configured threshold.
func ltmSyntheticAccuracy(sc synth.PaperSyntheticConfig, cfg Config) (float64, error) {
	ds, _, err := synth.PaperSynthetic(sc)
	if err != nil {
		return 0, err
	}
	fit, err := core.New(cfg.LTM).Fit(ds)
	if err != nil {
		return 0, err
	}
	m, err := eval.Evaluate(ds, fit.Result, cfg.Threshold)
	if err != nil {
		return 0, err
	}
	return m.Accuracy, nil
}

// Render lists the two sweeps side by side.
func (f *Figure4) Render() string {
	tb := table{
		title:  "Figure 4: LTM accuracy under degraded synthetic source quality",
		header: []string{"ExpectedQuality", "Acc(vary sens, spec=0.9)", "Acc(vary spec, sens=0.9)"},
	}
	for i := range f.VaryingSensitivity {
		tb.addRow(
			fmt.Sprintf("%.1f", f.VaryingSensitivity[i].Varied),
			f3(f.VaryingSensitivity[i].Accuracy),
			f3(f.VaryingSpecificity[i].Accuracy),
		)
	}
	return tb.render()
}

// Figure5Point is one checkpoint of the convergence study.
type Figure5Point struct {
	Iterations int
	BurnIn     int
	SampleGap  int
	// Accuracy is the mean over repeats with its 95% confidence interval.
	Accuracy stats.CI
}

// Figure5 reproduces Figure 5: accuracy of sequential predictions made
// from the first 7/10/20/50/100/200/500 iterations of a single chain,
// repeated to quantify sampling variation.
type Figure5 struct {
	Points  []Figure5Point
	Repeats int
}

// RunFigure5 runs the convergence protocol of §6.3.1 on the movie corpus:
// checkpoints at 7, 10, 20, 50, 100, 200, 500 iterations with burn-ins
// 2, 2, 5, 10, 20, 50, 100 and sample gaps 0, 0, 0, 1, 4, 4, 9, repeated
// cfg.Repeats times with different sampler seeds. Binary sample averaging
// is used, matching Algorithm 1 exactly.
func RunFigure5(movie *synth.Corpus, cfg Config) (*Figure5, error) {
	cfg = cfg.WithDefaults()
	cps := []core.Checkpoint{
		{Iterations: 7, BurnIn: 2, SampleGap: 0},
		{Iterations: 10, BurnIn: 2, SampleGap: 0},
		{Iterations: 20, BurnIn: 5, SampleGap: 0},
		{Iterations: 50, BurnIn: 10, SampleGap: 1},
		{Iterations: 100, BurnIn: 20, SampleGap: 4},
		{Iterations: 200, BurnIn: 50, SampleGap: 4},
		{Iterations: 500, BurnIn: 100, SampleGap: 9},
	}
	acc := make([][]float64, len(cps))
	for rep := 0; rep < cfg.Repeats; rep++ {
		ltmCfg := cfg.LTM
		ltmCfg.Seed = cfg.Seed + int64(rep)*101 + 1
		ltmCfg.BinarySamples = true
		results, err := core.New(ltmCfg).FitCheckpoints(movie.Dataset, cps)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			m, err := eval.Evaluate(movie.Dataset, res, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			acc[i] = append(acc[i], m.Accuracy)
		}
	}
	out := &Figure5{Repeats: cfg.Repeats}
	for i, cp := range cps {
		out.Points = append(out.Points, Figure5Point{
			Iterations: cp.Iterations,
			BurnIn:     cp.BurnIn,
			SampleGap:  cp.SampleGap,
			Accuracy:   stats.MeanCI(acc[i], 0.95),
		})
	}
	return out, nil
}

// Render lists mean accuracy and 95% CI per checkpoint.
func (f *Figure5) Render() string {
	tb := table{
		title:  fmt.Sprintf("Figure 5 (movie data): convergence of LTM, %d repeats, 95%% CIs", f.Repeats),
		header: []string{"Iterations", "BurnIn", "Gap", "MeanAcc", "CI95Lo", "CI95Hi"},
	}
	for _, p := range f.Points {
		tb.addRow(
			fmt.Sprintf("%d", p.Iterations),
			fmt.Sprintf("%d", p.BurnIn),
			fmt.Sprintf("%d", p.SampleGap),
			f4(p.Accuracy.Mean), f4(p.Accuracy.Lower), f4(p.Accuracy.Upper),
		)
	}
	return tb.render()
}

// Figure6 reproduces Figure 6: LTM runtime as a function of the number of
// claims, with the least-squares fit and its R².
type Figure6 struct {
	Claims  []int
	Seconds []float64
	Fit     stats.Regression
}

// RunFigure6 times LTM (100 iterations) on entity subsamples of the movie
// corpus and fits runtime = a + b·claims. The paper reports R² = 0.9913 on
// its hardware; the reproduction target is R² close to 1.
func RunFigure6(movie *synth.Corpus, cfg Config) (*Figure6, error) {
	cfg = cfg.WithDefaults()
	t9cfg := cfg
	t9, err := RunTable9(movie, t9cfg)
	if err != nil {
		return nil, err
	}
	out := &Figure6{Claims: t9.Claims, Seconds: t9.LTMSeconds}
	x := make([]float64, len(t9.Claims))
	for i, c := range t9.Claims {
		x[i] = float64(c)
	}
	out.Fit, err = stats.LinearRegression(x, t9.LTMSeconds)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render lists the measurements and the fit.
func (f *Figure6) Render() string {
	tb := table{
		title:  "Figure 6 (movie data): LTM runtime vs number of claims",
		header: []string{"Claims", "Seconds"},
	}
	for i, c := range f.Claims {
		tb.addRow(fmt.Sprintf("%d", c), fmt.Sprintf("%.4f", f.Seconds[i]))
	}
	return tb.render() + fmt.Sprintf("linear fit: seconds = %.3g + %.3g*claims, R^2 = %.4f\n",
		f.Fit.Intercept, f.Fit.Slope, f.Fit.R2)
}
