package experiments

// The entity-sharded inference study: not a paper artifact but the scaling
// experiment behind the shard layer (internal/shard) — single-engine fit
// vs sharded fits at increasing shard counts, measuring wall-clock
// speedup, labeled-subset quality, and posterior drift against the
// single-engine reference.

import (
	"fmt"
	"math"
	"time"

	"latenttruth/internal/core"
	"latenttruth/internal/eval"
	"latenttruth/internal/shard"
	"latenttruth/internal/synth"
)

// ShardedRow is one configuration of the sharded-inference study.
type ShardedRow struct {
	// Shards and SyncEvery identify the configuration; Shards = 1 is the
	// single-engine baseline (SyncEvery is then meaningless and 0).
	Shards    int
	SyncEvery int
	// Seconds is the mean fit wall-clock over cfg.Repeats runs; Speedup is
	// the baseline's Seconds divided by this row's.
	Seconds float64
	Speedup float64
	// Accuracy and F1 are labeled-subset quality at threshold 0.5.
	Accuracy float64
	F1       float64
	// MeanDrift and MaxDrift are the mean and maximum |Δp| against the
	// single-engine posteriors (0 for the baseline row and for exact mode).
	MeanDrift float64
	MaxDrift  float64
}

// Sharded is the study's result table.
type Sharded struct {
	Rows []ShardedRow
}

// RunSharded fits the corpus once per configuration: single-engine
// baseline, then an entity-sharded fit per requested shard count at the
// given sync interval. Timings average cfg.Repeats runs.
func RunSharded(c *synth.Corpus, cfg Config, shardCounts []int, syncEvery int) (*Sharded, error) {
	cfg = cfg.WithDefaults()
	if syncEvery == 0 {
		syncEvery = shard.DefaultSyncEvery
	}
	ds := c.Dataset
	out := &Sharded{}

	timeFit := func(fit func() (*core.FitResult, error)) (*core.FitResult, float64, error) {
		var last *core.FitResult
		start := time.Now()
		for r := 0; r < cfg.Repeats; r++ {
			var err error
			if last, err = fit(); err != nil {
				return nil, 0, err
			}
		}
		return last, time.Since(start).Seconds() / float64(cfg.Repeats), nil
	}

	ref, baseSec, err := timeFit(func() (*core.FitResult, error) { return core.New(cfg.LTM).Fit(ds) })
	if err != nil {
		return nil, err
	}
	row, err := shardedRow(c, cfg, ref, ref)
	if err != nil {
		return nil, err
	}
	row.Shards, row.Seconds, row.Speedup = 1, baseSec, 1
	out.Rows = append(out.Rows, row)

	for _, k := range shardCounts {
		if k <= 1 {
			continue
		}
		fitter, err := shard.Compile(ds, k)
		if err != nil {
			return nil, err
		}
		fit, sec, err := timeFit(func() (*core.FitResult, error) { return fitter.Fit(cfg.LTM, syncEvery) })
		if err != nil {
			return nil, err
		}
		row, err := shardedRow(c, cfg, fit, ref)
		if err != nil {
			return nil, err
		}
		row.Shards, row.SyncEvery, row.Seconds, row.Speedup = k, syncEvery, sec, baseSec/sec
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// shardedRow evaluates one fit against the labels and the single-engine
// posteriors.
func shardedRow(c *synth.Corpus, cfg Config, fit, ref *core.FitResult) (ShardedRow, error) {
	m, err := eval.Evaluate(c.Dataset, fit.Result, cfg.Threshold)
	if err != nil {
		return ShardedRow{}, err
	}
	row := ShardedRow{Accuracy: m.Accuracy, F1: m.F1}
	var sum float64
	for i := range ref.Prob {
		d := math.Abs(fit.Prob[i] - ref.Prob[i])
		sum += d
		if d > row.MaxDrift {
			row.MaxDrift = d
		}
	}
	row.MeanDrift = sum / float64(len(ref.Prob))
	return row, nil
}

// Render produces the aligned text table.
func (s *Sharded) Render() string {
	tb := table{
		title:  "Sharded inference: entity shards vs single engine (same data, same iterations)",
		header: []string{"Shards", "SyncEvery", "Seconds", "Speedup", "Accuracy", "F1", "MeanDrift", "MaxDrift"},
	}
	for _, r := range s.Rows {
		sync := "-"
		if r.Shards > 1 {
			sync = fmt.Sprintf("%d", r.SyncEvery)
		}
		tb.addRow(fmt.Sprintf("%d", r.Shards), sync,
			fmt.Sprintf("%.3f", r.Seconds), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.4f", r.Accuracy), fmt.Sprintf("%.4f", r.F1),
			fmt.Sprintf("%.5f", r.MeanDrift), fmt.Sprintf("%.5f", r.MaxDrift))
	}
	return tb.render()
}
