package experiments

import (
	"strings"
	"testing"

	"latenttruth/internal/core"
	"latenttruth/internal/synth"
)

// testCorpus builds a small conflict-rich corpus cheap enough for unit
// tests while exercising the same code paths as the full corpora.
func testCorpus(t *testing.T, name string, seed int64) *synth.Corpus {
	t.Helper()
	spec := synth.CorpusSpec{
		Name: name, NumEntities: 400,
		TrueAttrWeights:   []float64{0.5, 0.4, 0.1},
		FalseCandWeights:  []float64{0.4, 0.4, 0.2},
		LabelEntities:     60,
		Seed:              seed,
		HotCandidateProb:  0.3,
		HotCandidateBoost: 4,
		Sources: []synth.SourceProfile{
			{Name: "wide", Coverage: 0.8, Sensitivity: 0.9, FPR: 0.08},
			{Name: "tidy", Coverage: 0.5, Sensitivity: 0.85, FPR: 0.02},
			{Name: "messy", Coverage: 0.6, Sensitivity: 0.8, FPR: 0.3},
			{Name: "lazy", Coverage: 0.5, Sensitivity: 0.5, FPR: 0.02, PositionDecay: 0.5},
			{Name: "meh", Coverage: 0.4, Sensitivity: 0.7, FPR: 0.1},
		},
	}
	c, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fastCfg keeps LTM cheap in tests.
func fastCfg() Config {
	return Config{
		Seed:    11,
		Repeats: 2,
		LTM:     core.Config{Iterations: 60, BurnIn: 10, SampleGap: 1, Seed: 3},
	}
}

func TestRunTable7(t *testing.T) {
	c := testCorpus(t, "t7", 1)
	tbl, err := RunTable7(c, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (LTMinc + 9 batch methods)", len(tbl.Rows))
	}
	if tbl.Rows[0].Method != "LTMinc" || tbl.Rows[1].Method != "LTM" {
		t.Fatalf("row order: %s, %s", tbl.Rows[0].Method, tbl.Rows[1].Method)
	}
	byName := map[string]float64{}
	for _, r := range tbl.Rows {
		if r.Accuracy < 0 || r.Accuracy > 1 || r.F1 < 0 || r.F1 > 1 {
			t.Fatalf("%s metrics out of range: %+v", r.Method, r)
		}
		byName[r.Method] = r.Accuracy
	}
	// The paper's headline: LTM beats voting on conflict-rich data.
	if byName["LTM"] <= byName["Voting"]-0.02 {
		t.Errorf("LTM accuracy %v not ahead of Voting %v", byName["LTM"], byName["Voting"])
	}
	out := tbl.Render()
	for _, want := range []string{"Table 7", "Method", "LTM", "Voting", "Accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable8(t *testing.T) {
	c := testCorpus(t, "t8", 2)
	tbl, err := RunTable8(c, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Sorted by decreasing inferred sensitivity.
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i-1].Sensitivity < tbl.Rows[i].Sensitivity {
			t.Fatal("Table 8 not sorted by sensitivity")
		}
	}
	// Quality inference must correlate with generator truth.
	if tbl.SensSpearman < 0.5 {
		t.Errorf("sensitivity Spearman = %v", tbl.SensSpearman)
	}
	if tbl.SpecSpearman < 0.5 {
		t.Errorf("specificity Spearman = %v", tbl.SpecSpearman)
	}
	if tbl.SensMAE > 0.25 || tbl.SpecMAE > 0.25 {
		t.Errorf("MAE too large: sens %v spec %v", tbl.SensMAE, tbl.SpecMAE)
	}
	if !strings.Contains(tbl.Render(), "Spearman") {
		t.Fatal("render missing agreement line")
	}
}

func TestRunTable9AndFigure6(t *testing.T) {
	c := testCorpus(t, "t9", 3)
	cfg := fastCfg()
	cfg.Repeats = 1
	cfg.Table9Sizes = []int{100, 200, 300, 400}
	tbl, err := RunTable9(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("methods = %d", len(tbl.Rows))
	}
	if len(tbl.Sizes) != 4 || len(tbl.Claims) != 4 {
		t.Fatalf("sizes/claims: %v %v", tbl.Sizes, tbl.Claims)
	}
	for _, r := range tbl.Rows {
		if len(r.Seconds) != 4 {
			t.Fatalf("%s has %d timings", r.Method, len(r.Seconds))
		}
		for _, s := range r.Seconds {
			if s < 0 {
				t.Fatalf("%s negative runtime", r.Method)
			}
		}
	}
	if len(tbl.LTMSeconds) != 4 {
		t.Fatal("LTM seconds not captured")
	}
	// Claims grow with size.
	for i := 1; i < len(tbl.Claims); i++ {
		if tbl.Claims[i] <= tbl.Claims[i-1] {
			t.Fatalf("claims not increasing: %v", tbl.Claims)
		}
	}
	fig, err := RunFigure6(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Fit.Slope <= 0 {
		t.Fatalf("runtime slope %v not positive", fig.Fit.Slope)
	}
	if !strings.Contains(fig.Render(), "R^2") {
		t.Fatal("figure 6 render missing fit line")
	}
}

func TestRunFigure2(t *testing.T) {
	c := testCorpus(t, "f2", 4)
	fig, err := RunFigure2(c, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Thresholds) != 19 {
		t.Fatalf("thresholds = %d", len(fig.Thresholds))
	}
	if len(fig.Methods) != 10 || len(fig.Accuracy) != 10 {
		t.Fatalf("methods = %d", len(fig.Methods))
	}
	for i, accs := range fig.Accuracy {
		for j, a := range accs {
			if a < 0 || a > 1 {
				t.Fatalf("%s accuracy[%d] = %v", fig.Methods[i], j, a)
			}
		}
	}
	if !strings.Contains(fig.Render(), "0.50") {
		t.Fatal("render missing thresholds")
	}
}

func TestRunFigure3(t *testing.T) {
	corpora := &Corpora{Book: testCorpus(t, "f3b", 5), Movie: testCorpus(t, "f3m", 6)}
	fig, err := RunFigure3(corpora, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Methods) != 10 {
		t.Fatalf("methods = %d", len(fig.Methods))
	}
	// Sorted by decreasing mean AUC.
	for i := 1; i < len(fig.Methods); i++ {
		prev := fig.BookAUC[i-1] + fig.MovieAUC[i-1]
		cur := fig.BookAUC[i] + fig.MovieAUC[i]
		if cur > prev+1e-12 {
			t.Fatal("Figure 3 not sorted by mean AUC")
		}
	}
	// LTM must be in the upper half of the ranking.
	for i, m := range fig.Methods {
		if m == "LTM" && i > 4 {
			t.Errorf("LTM ranked %d of %d by AUC", i+1, len(fig.Methods))
		}
	}
}

func TestRunFigure4(t *testing.T) {
	cfg := fastCfg()
	cfg.SyntheticFacts = 400
	cfg.SyntheticSources = 12
	fig, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.VaryingSensitivity) != 9 || len(fig.VaryingSpecificity) != 9 {
		t.Fatalf("points: %d / %d", len(fig.VaryingSensitivity), len(fig.VaryingSpecificity))
	}
	// The paper's finding: accuracy near 1 at high quality, degrading as
	// quality drops, with a faster drop for specificity than sensitivity.
	sens, spec := fig.VaryingSensitivity, fig.VaryingSpecificity
	if sens[8].Accuracy < 0.9 || spec[8].Accuracy < 0.9 {
		t.Errorf("high-quality accuracy: sens %v spec %v", sens[8].Accuracy, spec[8].Accuracy)
	}
	if spec[0].Accuracy > 0.75 {
		t.Errorf("accuracy %v at specificity 0.1, expected collapse", spec[0].Accuracy)
	}
	// LTM tolerates low sensitivity better than low specificity (mean
	// over the degraded half).
	var sensLow, specLow float64
	for i := 0; i < 4; i++ {
		sensLow += sens[i].Accuracy
		specLow += spec[i].Accuracy
	}
	if sensLow <= specLow {
		t.Errorf("low-sensitivity mean %v not above low-specificity mean %v", sensLow/4, specLow/4)
	}
}

func TestRunFigure5(t *testing.T) {
	c := testCorpus(t, "f5", 7)
	cfg := fastCfg()
	cfg.Repeats = 3
	fig, err := RunFigure5(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 7 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	if fig.Points[0].Iterations != 7 || fig.Points[6].Iterations != 500 {
		t.Fatalf("iteration schedule wrong: %+v", fig.Points)
	}
	for _, p := range fig.Points {
		ci := p.Accuracy
		if !(ci.Lower <= ci.Mean && ci.Mean <= ci.Upper) {
			t.Fatalf("CI disordered at %d iterations: %+v", p.Iterations, ci)
		}
		if ci.Mean < 0 || ci.Mean > 1 {
			t.Fatalf("mean accuracy %v", ci.Mean)
		}
	}
	// Converged accuracy must be at least as good as the 7-iteration one
	// (allowing noise).
	if fig.Points[6].Accuracy.Mean < fig.Points[0].Accuracy.Mean-0.05 {
		t.Fatalf("accuracy degraded with iterations: %v -> %v",
			fig.Points[0].Accuracy.Mean, fig.Points[6].Accuracy.Mean)
	}
}

func TestHoldoutSplit(t *testing.T) {
	c := testCorpus(t, "split", 8)
	train, test := holdoutSplit(c.Dataset)
	if train.NumEntities()+test.NumEntities() != c.Dataset.NumEntities() {
		t.Fatal("split lost entities")
	}
	if len(train.Labels) != 0 {
		t.Fatalf("train has %d labels", len(train.Labels))
	}
	if len(test.Labels) != len(c.Dataset.Labels) {
		t.Fatalf("test labels %d of %d", len(test.Labels), len(c.Dataset.Labels))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Seed == 0 || cfg.Repeats == 0 || cfg.Threshold != 0.5 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.SyntheticFacts != 10000 || cfg.SyntheticSources != 20 {
		t.Fatalf("synthetic defaults: %+v", cfg)
	}
	if len(cfg.Table9Sizes) != 5 {
		t.Fatalf("table9 sizes: %v", cfg.Table9Sizes)
	}
}

func TestRenderTable(t *testing.T) {
	tb := table{title: "T", header: []string{"A", "LongHeader"}}
	tb.addRow("x", "1")
	tb.addRow("longer-cell")
	out := tb.render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "LongHeader") {
		t.Fatalf("header line %q", lines[1])
	}
}
