package experiments

import (
	"fmt"
	"time"

	"latenttruth/internal/baselines"
	"latenttruth/internal/core"
	"latenttruth/internal/eval"
	"latenttruth/internal/model"
	"latenttruth/internal/stats"
	"latenttruth/internal/store"
	"latenttruth/internal/synth"
)

// Config controls the experiment harness.
type Config struct {
	// Seed drives corpus generation and all samplers (default 42).
	Seed int64
	// Repeats is the number of repetitions for runtime and convergence
	// experiments (the paper uses 10; default 10).
	Repeats int
	// LTM configures the Latent Truth Model fits. Zero-valued fields take
	// the paper's defaults (100 iterations, burn-in 20, sample gap 4,
	// priors scaled to the dataset).
	LTM core.Config
	// Threshold is the unsupervised decision threshold (default 0.5).
	Threshold float64
	// SyntheticFacts and SyntheticSources override the size of the §6.1.1
	// synthetic dataset used by Figure 4 (defaults: the paper's 10,000
	// facts and 20 sources). Reduced sizes keep unit tests fast.
	SyntheticFacts   int
	SyntheticSources int
	// Table9Sizes overrides the entity subsample sizes of Table 9 /
	// Figure 6 (default: the paper's 3k/6k/9k/12k/15k).
	Table9Sizes []int
}

// WithDefaults returns cfg with unset fields filled.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.SyntheticFacts == 0 {
		c.SyntheticFacts = 10000
	}
	if c.SyntheticSources == 0 {
		c.SyntheticSources = 20
	}
	if len(c.Table9Sizes) == 0 {
		c.Table9Sizes = []int{3000, 6000, 9000, 12000, 15000}
	}
	return c
}

// Corpora bundles the two evaluation corpora.
type Corpora struct {
	Book  *synth.Corpus
	Movie *synth.Corpus
}

// LoadCorpora generates both corpora from the configured seed.
func LoadCorpora(cfg Config) (*Corpora, error) {
	cfg = cfg.WithDefaults()
	book, err := synth.BookCorpus(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: book corpus: %w", err)
	}
	movie, err := synth.MovieCorpus(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: movie corpus: %w", err)
	}
	return &Corpora{Book: book, Movie: movie}, nil
}

// holdoutSplit partitions a corpus dataset into the unlabeled training
// part and the labeled evaluation part, the LTMinc protocol of §6.2: LTM
// learns source quality on everything except the labeled entities, then
// predicts the labeled entities with Equation 3.
func holdoutSplit(ds *model.Dataset) (train, test *model.Dataset) {
	labeledEntity := make(map[int]bool)
	for f := range ds.Labels {
		labeledEntity[ds.Facts[f].Entity] = true
	}
	train = store.FilterEntities(ds, func(e int, _ string) bool { return !labeledEntity[e] })
	test = store.FilterEntities(ds, func(e int, _ string) bool { return labeledEntity[e] })
	return train, test
}

// runLTMinc executes the LTMinc protocol and returns the result on the
// held-out labeled dataset (whose labels drive evaluation).
func runLTMinc(ds *model.Dataset, ltmCfg core.Config) (*model.Result, *model.Dataset, error) {
	train, test := holdoutSplit(ds)
	if train.NumFacts() == 0 || test.NumFacts() == 0 {
		return nil, nil, fmt.Errorf("experiments: degenerate holdout split (%d train, %d test facts)",
			train.NumFacts(), test.NumFacts())
	}
	fit, err := core.New(ltmCfg).Fit(train)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: LTMinc training: %w", err)
	}
	inc, err := core.NewIncremental(train, fit)
	if err != nil {
		return nil, nil, err
	}
	res, err := inc.Infer(test)
	if err != nil {
		return nil, nil, err
	}
	return res, test, nil
}

// methodRun is one evaluated method: its result plus the dataset whose
// labels the metrics refer to (the full corpus for batch methods, the
// holdout for LTMinc).
type methodRun struct {
	name    string
	res     *model.Result
	ds      *model.Dataset
	elapsed time.Duration
}

// runAllMethods executes LTMinc plus every batch method on ds, in the
// paper's Table 7 row order.
func runAllMethods(ds *model.Dataset, cfg Config) ([]methodRun, error) {
	cfg = cfg.WithDefaults()
	var runs []methodRun
	start := time.Now()
	incRes, incDS, err := runLTMinc(ds, cfg.LTM)
	if err != nil {
		return nil, err
	}
	runs = append(runs, methodRun{name: "LTMinc", res: incRes, ds: incDS, elapsed: time.Since(start)})
	for _, m := range baselines.All(cfg.LTM) {
		start := time.Now()
		res, err := m.Infer(ds)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m.Name(), err)
		}
		runs = append(runs, methodRun{name: m.Name(), res: res, ds: ds, elapsed: time.Since(start)})
	}
	return runs, nil
}

// corpusRNG derives the rng used for corpus subsampling.
func corpusRNG(cfg Config, label int64) *stats.RNG {
	return stats.NewRNG(cfg.Seed).Split(label)
}

// evaluateRun computes Table 7 metrics for one method run.
func evaluateRun(r methodRun, threshold float64) (eval.Metrics, error) {
	m, err := eval.Evaluate(r.ds, r.res, threshold)
	if err != nil {
		return eval.Metrics{}, fmt.Errorf("experiments: evaluating %s: %w", r.name, err)
	}
	m.Method = r.name
	return m, nil
}
