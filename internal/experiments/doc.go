// Package experiments reproduces every table and figure of the paper's
// evaluation section (§6) on the simulated corpora:
//
//	Table 7  — per-method inference quality at threshold 0.5
//	Table 8  — LTM source quality on the movie data (+ quantitative check)
//	Table 9  — runtime vs entity count per method
//	Figure 2 — accuracy vs decision threshold per method
//	Figure 3 — AUC per method per dataset
//	Figure 4 — LTM accuracy under degraded synthetic source quality
//	Figure 5 — convergence: accuracy vs Gibbs iterations, 95% CIs
//	Figure 6 — LTM runtime vs number of claims, linear fit R²
//
// plus the sharded-inference scaling study (sharded.go, not a paper
// artifact): single-engine vs entity-sharded fits, reporting wall-clock
// speedup and posterior drift.
//
// Each experiment is a pure function from a configuration to a result
// struct with a Render method producing an aligned text table; cmd/
// experiments and the root bench suite are thin wrappers around these.
package experiments
