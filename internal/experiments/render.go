package experiments

import (
	"fmt"
	"strings"
)

// table renders rows as an aligned, pipe-less text table: header row,
// separator, data rows. Cells are left-aligned strings; numeric formatting
// is the caller's responsibility.
type table struct {
	title  string
	header []string
	rows   [][]string
}

// addRow appends a data row, padding or truncating to the header width.
func (t *table) addRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// render produces the aligned text form.
func (t *table) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// f3 formats a float with three decimals, the paper's table precision.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f4 formats a float with four decimals.
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
