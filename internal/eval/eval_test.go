package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"latenttruth/internal/model"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// table1Dataset rebuilds the paper's running example with Table 4 labels.
func table1Dataset() *model.Dataset {
	db := model.NewRawDB()
	rows := [][3]string{
		{"Harry Potter", "Daniel Radcliffe", "IMDB"},
		{"Harry Potter", "Emma Watson", "IMDB"},
		{"Harry Potter", "Rupert Grint", "IMDB"},
		{"Harry Potter", "Daniel Radcliffe", "Netflix"},
		{"Harry Potter", "Daniel Radcliffe", "BadSource.com"},
		{"Harry Potter", "Emma Watson", "BadSource.com"},
		{"Harry Potter", "Johnny Depp", "BadSource.com"},
		{"Pirates 4", "Johnny Depp", "Hulu.com"},
	}
	for _, r := range rows {
		db.Add(r[0], r[1], r[2])
	}
	ds := model.Build(db)
	// Table 4: facts 0,1,2 true; 3 (Johnny@HP) false; 4 (Johnny@P4) true.
	for f, v := range map[int]bool{0: true, 1: true, 2: true, 3: false, 4: true} {
		ds.Labels[f] = v
	}
	return ds
}

func TestConfusionCounting(t *testing.T) {
	var m Confusion
	m.Add(true, true)
	m.Add(true, false)
	m.Add(false, true)
	m.Add(false, false)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 || m.Total() != 4 {
		t.Fatalf("confusion = %+v", m)
	}
	if !almostEqual(m.Precision(), 0.5) || !almostEqual(m.Recall(), 0.5) ||
		!almostEqual(m.Specificity(), 0.5) || !almostEqual(m.Accuracy(), 0.5) ||
		!almostEqual(m.F1(), 0.5) || !almostEqual(m.FalsePositiveRate(), 0.5) {
		t.Fatalf("derived metrics wrong: %+v", m)
	}
}

// TestTable6SourceQuality reproduces the paper's Table 6 exactly: the
// confusion matrices and quality measures of IMDB, Netflix and
// BadSource.com graded against the Table 4 truth.
func TestTable6SourceQuality(t *testing.T) {
	ds := table1Dataset()
	cs := SourceConfusions(ds)
	want := map[string]struct {
		m                               Confusion
		precision, accuracy, sens, spec float64
	}{
		"IMDB":          {Confusion{TP: 3, FP: 0, FN: 0, TN: 1}, 1, 1, 1, 1},
		"Netflix":       {Confusion{TP: 1, FP: 0, FN: 2, TN: 1}, 1, 0.5, 1.0 / 3, 1},
		"BadSource.com": {Confusion{TP: 2, FP: 1, FN: 1, TN: 0}, 2.0 / 3, 0.5, 2.0 / 3, 0},
	}
	for name, w := range want {
		s := ds.SourceIndex(name)
		if s < 0 {
			t.Fatalf("source %s missing", name)
		}
		got := cs[s]
		if got != w.m {
			t.Errorf("%s confusion = %+v, want %+v", name, got, w.m)
		}
		if !almostEqual(got.Precision(), w.precision) {
			t.Errorf("%s precision = %v, want %v", name, got.Precision(), w.precision)
		}
		if !almostEqual(got.Accuracy(), w.accuracy) {
			t.Errorf("%s accuracy = %v, want %v", name, got.Accuracy(), w.accuracy)
		}
		if !almostEqual(got.Recall(), w.sens) {
			t.Errorf("%s sensitivity = %v, want %v", name, got.Recall(), w.sens)
		}
		if !almostEqual(got.Specificity(), w.spec) {
			t.Errorf("%s specificity = %v, want %v", name, got.Specificity(), w.spec)
		}
	}
}

func TestEvaluatePerfectPredictor(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("oracle", ds)
	for f, v := range ds.Labels {
		if v {
			res.Prob[f] = 1
		}
	}
	m, err := Evaluate(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 1 || m.Recall != 1 || m.FPR != 0 || m.Accuracy != 1 || m.F1 != 1 {
		t.Fatalf("oracle metrics = %+v", m)
	}
}

func TestEvaluateAllTruePredictor(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("optimist", ds)
	for f := range res.Prob {
		res.Prob[f] = 1
	}
	m, err := Evaluate(ds, res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 4 of 5 labeled facts are true.
	if !almostEqual(m.Precision, 0.8) || m.Recall != 1 || m.FPR != 1 || !almostEqual(m.Accuracy, 0.8) {
		t.Fatalf("optimist metrics = %+v", m)
	}
}

func TestEvaluateNoLabelsError(t *testing.T) {
	ds := table1Dataset()
	ds.Labels = map[int]bool{}
	res := model.NewResult("m", ds)
	if _, err := Evaluate(ds, res, 0.5); err == nil || !strings.Contains(err.Error(), "no labeled") {
		t.Fatalf("err = %v", err)
	}
}

func TestThresholdSweepMonotoneRecall(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.9, 0.7, 0.55, 0.4, 0.95}
	ths := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pts, err := ThresholdSweep(ds, res, ths)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ths) {
		t.Fatalf("got %d points", len(pts))
	}
	// At threshold 0.5 predictions are TTTF T -> perfect.
	if !almostEqual(pts[2].Accuracy, 1) {
		t.Fatalf("accuracy@0.5 = %v", pts[2].Accuracy)
	}
	// At 0.1 everything is true -> accuracy 0.8.
	if !almostEqual(pts[0].Accuracy, 0.8) {
		t.Fatalf("accuracy@0.1 = %v", pts[0].Accuracy)
	}
}

func TestROCPerfectRanking(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.9, 0.8, 0.7, 0.1, 0.95}
	auc, err := AUC(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(auc, 1) {
		t.Fatalf("AUC of perfect ranking = %v", auc)
	}
	curve, err := ROC(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 || last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve endpoints: %+v ... %+v", first, last)
	}
}

func TestROCInvertedRanking(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.1, 0.2, 0.3, 0.9, 0.05}
	auc, err := AUC(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(auc, 0) {
		t.Fatalf("AUC of inverted ranking = %v", auc)
	}
}

func TestAUCConstantScoresIsHalf(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	for f := range res.Prob {
		res.Prob[f] = 0.5
	}
	auc, err := AUC(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(auc, 0.5) {
		t.Fatalf("AUC of constant scores = %v, want 0.5 (ties half-counted)", auc)
	}
}

func TestROCSingleClassError(t *testing.T) {
	ds := table1Dataset()
	for f := range ds.Labels {
		ds.Labels[f] = true
	}
	res := model.NewResult("m", ds)
	if _, err := ROC(ds, res); err == nil || !strings.Contains(err.Error(), "both classes") {
		t.Fatalf("err = %v", err)
	}
}

// TestAUCEqualsPairwiseProbability cross-validates the trapezoid AUC
// against the Mann-Whitney pairwise definition on random score vectors.
func TestAUCEqualsPairwiseProbability(t *testing.T) {
	ds := table1Dataset()
	f := func(raw [5]uint8) bool {
		res := model.NewResult("m", ds)
		for i, v := range raw {
			res.Prob[i] = float64(v%101) / 100
		}
		auc, err := AUC(ds, res)
		if err != nil {
			return false
		}
		// Pairwise: over (true, false) pairs, count score_true > score_false
		// as 1, ties as 1/2.
		var num, den float64
		for _, fp := range ds.LabeledFacts() {
			if !ds.Labels[fp] {
				continue
			}
			for _, fn := range ds.LabeledFacts() {
				if ds.Labels[fn] {
					continue
				}
				den++
				switch {
				case res.Prob[fp] > res.Prob[fn]:
					num++
				case res.Prob[fp] == res.Prob[fn]:
					num += 0.5
				}
			}
		}
		return math.Abs(auc-num/den) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDenominatorConventions(t *testing.T) {
	var m Confusion // empty
	if m.Precision() != 1 || m.Recall() != 1 || m.Specificity() != 1 {
		t.Fatal("empty-denominator conventions broken")
	}
	if m.FalsePositiveRate() != 0 {
		t.Fatal("empty FPR should be 0")
	}
	if m.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Method: "LTM", Precision: 1, Recall: 0.5, FPR: 0, Accuracy: 0.75, F1: 2.0 / 3}
	s := m.String()
	for _, want := range []string{"LTM", "P=1.000", "R=0.500", "Acc=0.750"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
