package eval

import (
	"fmt"
	"math"
	"sort"

	"latenttruth/internal/model"
)

// Confusion is the 2×2 confusion matrix of Table 5.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add accumulates one (prediction, truth) outcome.
func (m *Confusion) Add(predicted, truth bool) {
	switch {
	case predicted && truth:
		m.TP++
	case predicted && !truth:
		m.FP++
	case !predicted && truth:
		m.FN++
	default:
		m.TN++
	}
}

// Total returns the number of accumulated outcomes.
func (m Confusion) Total() int { return m.TP + m.FP + m.FN + m.TN }

// Precision returns TP/(TP+FP); by the paper's convention an empty
// denominator yields 1 (a method that asserts nothing makes no false
// assertions).
func (m Confusion) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), the sensitivity. An empty denominator yields 1.
func (m Confusion) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// Specificity returns TN/(TN+FP). An empty denominator yields 1.
func (m Confusion) Specificity() float64 {
	if m.TN+m.FP == 0 {
		return 1
	}
	return float64(m.TN) / float64(m.TN+m.FP)
}

// FalsePositiveRate returns FP/(FP+TN) = 1 − Specificity. An empty
// denominator yields 0.
func (m Confusion) FalsePositiveRate() float64 {
	if m.TN+m.FP == 0 {
		return 0
	}
	return float64(m.FP) / float64(m.FP+m.TN)
}

// Accuracy returns (TP+TN)/total. An empty matrix yields 0.
func (m Confusion) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// F1 returns the harmonic mean of precision and recall (0 when both TP
// counts vanish).
func (m Confusion) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Metrics bundles the five columns of Table 7 for one method on one
// dataset.
type Metrics struct {
	Method    string
	Precision float64
	Recall    float64
	FPR       float64
	Accuracy  float64
	F1        float64
}

// String renders the metrics in Table 7's column order.
func (m Metrics) String() string {
	return fmt.Sprintf("%-18s P=%.3f R=%.3f FPR=%.3f Acc=%.3f F1=%.3f",
		m.Method, m.Precision, m.Recall, m.FPR, m.Accuracy, m.F1)
}

// ConfusionAt builds the confusion matrix of a result against the labeled
// subset of ds at the given probability threshold. It returns an error if
// the dataset has no labels.
func ConfusionAt(ds *model.Dataset, r *model.Result, threshold float64) (Confusion, error) {
	if len(ds.Labels) == 0 {
		return Confusion{}, fmt.Errorf("eval: dataset has no labeled facts")
	}
	var m Confusion
	for _, f := range ds.LabeledFacts() {
		m.Add(r.Predict(f, threshold), ds.Labels[f])
	}
	return m, nil
}

// Evaluate computes Table 7-style metrics for a result at a threshold.
func Evaluate(ds *model.Dataset, r *model.Result, threshold float64) (Metrics, error) {
	m, err := ConfusionAt(ds, r, threshold)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		Method:    r.Method,
		Precision: m.Precision(),
		Recall:    m.Recall(),
		FPR:       m.FalsePositiveRate(),
		Accuracy:  m.Accuracy(),
		F1:        m.F1(),
	}, nil
}

// SweepPoint is one point of a threshold sweep (Figure 2).
type SweepPoint struct {
	Threshold float64
	Accuracy  float64
	F1        float64
}

// ThresholdSweep evaluates accuracy and F1 at each threshold, in order.
func ThresholdSweep(ds *model.Dataset, r *model.Result, thresholds []float64) ([]SweepPoint, error) {
	pts := make([]SweepPoint, 0, len(thresholds))
	for _, t := range thresholds {
		m, err := ConfusionAt(ds, r, t)
		if err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{Threshold: t, Accuracy: m.Accuracy(), F1: m.F1()})
	}
	return pts, nil
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	FPR float64 // false positive rate (x axis)
	TPR float64 // true positive rate / recall (y axis)
}

// ROC computes the ROC curve of a result over the labeled subset by
// sweeping the decision threshold across every distinct score. The curve
// starts at (0,0) and ends at (1,1) and points are ordered by increasing
// FPR. It returns an error if labels are missing or are all of one class.
func ROC(ds *model.Dataset, r *model.Result) ([]ROCPoint, error) {
	labeled := ds.LabeledFacts()
	if len(labeled) == 0 {
		return nil, fmt.Errorf("eval: dataset has no labeled facts")
	}
	pos, neg := 0, 0
	type scored struct {
		score float64
		truth bool
	}
	items := make([]scored, 0, len(labeled))
	for _, f := range labeled {
		t := ds.Labels[f]
		if t {
			pos++
		} else {
			neg++
		}
		items = append(items, scored{score: r.Prob[f], truth: t})
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("eval: ROC needs both classes, have %d positive and %d negative", pos, neg)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })
	curve := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(items) {
		// Process ties as one block so the curve is threshold-faithful.
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].truth {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			FPR: float64(fp) / float64(neg),
			TPR: float64(tp) / float64(pos),
		})
		i = j
	}
	return curve, nil
}

// AUC returns the area under the ROC curve of a result via the trapezoid
// rule, equivalently the probability a random true fact outranks a random
// false one (ties counted half).
func AUC(ds *model.Dataset, r *model.Result) (float64, error) {
	curve, err := ROC(ds, r)
	if err != nil {
		return 0, err
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	if area < 0 || area > 1+1e-12 || math.IsNaN(area) {
		return 0, fmt.Errorf("eval: computed AUC %v out of range", area)
	}
	return math.Min(area, 1), nil
}

// SourceConfusions grades every source as a classifier against the labeled
// facts (§3.1): for each labeled fact the source claims, the claim
// observation is the prediction and the label is the truth. Sources with
// no claims on labeled facts get empty matrices.
func SourceConfusions(ds *model.Dataset) []Confusion {
	out := make([]Confusion, ds.NumSources())
	for _, f := range ds.LabeledFacts() {
		truth := ds.Labels[f]
		for _, ci := range ds.ClaimsByFact[f] {
			c := ds.Claims[ci]
			out[c.Source].Add(c.Observation, truth)
		}
	}
	return out
}
