package eval

import (
	"fmt"
	"math"
	"sort"

	"latenttruth/internal/model"
)

// PRPoint is one operating point of a precision–recall curve.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// PrecisionRecall computes the precision–recall curve over the labeled
// subset by sweeping the decision threshold across every distinct score
// (ties processed as blocks). Points are ordered by increasing recall.
// It returns an error when labels are missing or contain no positives.
func PrecisionRecall(ds *model.Dataset, r *model.Result) ([]PRPoint, error) {
	labeled := ds.LabeledFacts()
	if len(labeled) == 0 {
		return nil, fmt.Errorf("eval: dataset has no labeled facts")
	}
	type scored struct {
		score float64
		truth bool
	}
	pos := 0
	items := make([]scored, 0, len(labeled))
	for _, f := range labeled {
		if ds.Labels[f] {
			pos++
		}
		items = append(items, scored{r.Prob[f], ds.Labels[f]})
	}
	if pos == 0 {
		return nil, fmt.Errorf("eval: precision-recall needs positive labels")
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })
	var curve []PRPoint
	tp, fp := 0, 0
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].truth {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, PRPoint{
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(tp+fp),
		})
		i = j
	}
	return curve, nil
}

// AveragePrecision returns the area under the precision–recall curve via
// the step-wise interpolation standard in information retrieval
// (precision at each recall increment, averaged over positives).
func AveragePrecision(ds *model.Dataset, r *model.Result) (float64, error) {
	curve, err := PrecisionRecall(ds, r)
	if err != nil {
		return 0, err
	}
	ap := 0.0
	prevRecall := 0.0
	for _, p := range curve {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	if ap < 0 || ap > 1+1e-12 || math.IsNaN(ap) {
		return 0, fmt.Errorf("eval: computed AP %v out of range", ap)
	}
	return math.Min(ap, 1), nil
}

// CalibrationBin is one bin of a reliability diagram.
type CalibrationBin struct {
	// Low and High bound the predicted-probability bin [Low, High).
	Low, High float64
	// MeanPredicted is the average score of facts in the bin.
	MeanPredicted float64
	// FractionTrue is the empirical truth rate of facts in the bin.
	FractionTrue float64
	// Count is the number of labeled facts in the bin.
	Count int
}

// Calibration bins the labeled facts by predicted probability into `bins`
// equal-width bins and reports the reliability diagram plus the expected
// calibration error (ECE): the count-weighted mean |confidence − truth
// rate|. A well-calibrated probabilistic method (LTM's posterior, unlike
// the belief-score baselines) should show FractionTrue ≈ MeanPredicted in
// every populated bin.
func Calibration(ds *model.Dataset, r *model.Result, bins int) ([]CalibrationBin, float64, error) {
	if bins <= 0 {
		return nil, 0, fmt.Errorf("eval: need a positive bin count, got %d", bins)
	}
	labeled := ds.LabeledFacts()
	if len(labeled) == 0 {
		return nil, 0, fmt.Errorf("eval: dataset has no labeled facts")
	}
	out := make([]CalibrationBin, bins)
	for b := range out {
		out[b].Low = float64(b) / float64(bins)
		out[b].High = float64(b+1) / float64(bins)
	}
	sumPred := make([]float64, bins)
	sumTrue := make([]int, bins)
	for _, f := range labeled {
		p := r.Prob[f]
		b := int(p * float64(bins))
		if b >= bins { // p == 1 lands in the last bin
			b = bins - 1
		}
		out[b].Count++
		sumPred[b] += p
		if ds.Labels[f] {
			sumTrue[b]++
		}
	}
	ece := 0.0
	total := float64(len(labeled))
	for b := range out {
		if out[b].Count == 0 {
			continue
		}
		n := float64(out[b].Count)
		out[b].MeanPredicted = sumPred[b] / n
		out[b].FractionTrue = float64(sumTrue[b]) / n
		ece += n / total * math.Abs(out[b].MeanPredicted-out[b].FractionTrue)
	}
	return out, ece, nil
}

// Brier returns the Brier score of a result over the labeled subset: the
// mean squared difference between predicted probability and truth
// (lower is better; 0.25 for a constant 0.5 predictor).
func Brier(ds *model.Dataset, r *model.Result) (float64, error) {
	labeled := ds.LabeledFacts()
	if len(labeled) == 0 {
		return 0, fmt.Errorf("eval: dataset has no labeled facts")
	}
	sum := 0.0
	for _, f := range labeled {
		y := 0.0
		if ds.Labels[f] {
			y = 1
		}
		d := r.Prob[f] - y
		sum += d * d
	}
	return sum / float64(len(labeled)), nil
}
