// Package eval implements the paper's evaluation machinery (§3.1, §6.2):
// per-source and per-method confusion matrices (Table 5), the derived
// quality measures (precision, recall/sensitivity, specificity, false
// positive rate, accuracy, F1 — Table 6), threshold sweeps for Figure 2,
// and ROC curves with area-under-curve for Figure 3. Beyond the paper it
// adds precision–recall curves, calibration/reliability diagrams, Brier
// scores, and percentile-bootstrap confidence intervals for Table 7-style
// metrics.
package eval
