package eval

import (
	"math"
	"testing"

	"latenttruth/internal/model"
)

func TestPrecisionRecallPerfectRanking(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.9, 0.8, 0.7, 0.1, 0.95}
	curve, err := PrecisionRecall(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	// All positives rank above the single negative: precision 1 until
	// recall 1.
	for _, p := range curve[:len(curve)-1] {
		if p.Precision != 1 {
			t.Fatalf("precision %v at recall %v", p.Precision, p.Recall)
		}
	}
	last := curve[len(curve)-1]
	if last.Recall != 1 {
		t.Fatalf("final recall %v", last.Recall)
	}
	ap, err := AveragePrecision(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ap, 1) {
		t.Fatalf("AP of perfect ranking = %v", ap)
	}
}

func TestAveragePrecisionHandComputed(t *testing.T) {
	// 4 true, 1 false; false ranked second. Ranking: T F T T T.
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	// Labels: facts 0,1,2,4 true; 3 false.
	res.Prob = []float64{0.9, 0.7, 0.6, 0.8, 0.5}
	// Order: f0(T,.9), f3(F,.8), f1(T,.7), f2(T,.6), f4(T,.5).
	// Recall steps at T items: 1/4@P=1, 2/4@P=2/3, 3/4@P=3/4, 4/4@P=4/5.
	want := 0.25*1 + 0.25*(2.0/3) + 0.25*0.75 + 0.25*0.8
	ap, err := AveragePrecision(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ap-want) > 1e-12 {
		t.Fatalf("AP = %v, want %v", ap, want)
	}
}

func TestPrecisionRecallErrors(t *testing.T) {
	ds := table1Dataset()
	ds.Labels = map[int]bool{}
	res := model.NewResult("m", ds)
	if _, err := PrecisionRecall(ds, res); err == nil {
		t.Fatal("expected no-labels error")
	}
	ds = table1Dataset()
	for f := range ds.Labels {
		ds.Labels[f] = false
	}
	if _, err := PrecisionRecall(ds, res); err == nil {
		t.Fatal("expected no-positives error")
	}
}

func TestCalibrationPerfectlyCalibrated(t *testing.T) {
	// Construct a dataset where predicted probability equals empirical
	// truth rate within each bin exactly.
	db := model.NewRawDB()
	for i := 0; i < 10; i++ {
		db.Add(entity(i), "a", "s")
	}
	ds := model.Build(db)
	res := model.NewResult("m", ds)
	// 10 facts at p=0.3: exactly 3 true.
	for f := 0; f < 10; f++ {
		res.Prob[f] = 0.3
		ds.Labels[f] = f < 3
	}
	bins, ece, err := Calibration(ds, res, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece) > 1e-12 {
		t.Fatalf("ECE = %v for perfectly calibrated predictions", ece)
	}
	// The 0.3 bin holds everything.
	found := false
	for _, b := range bins {
		if b.Count == 10 {
			found = true
			if !almostEqual(b.MeanPredicted, 0.3) || !almostEqual(b.FractionTrue, 0.3) {
				t.Fatalf("bin %+v", b)
			}
		} else if b.Count != 0 {
			t.Fatalf("stray bin %+v", b)
		}
	}
	if !found {
		t.Fatal("populated bin missing")
	}
}

func TestCalibrationOverconfident(t *testing.T) {
	db := model.NewRawDB()
	for i := 0; i < 10; i++ {
		db.Add(entity(i), "a", "s")
	}
	ds := model.Build(db)
	res := model.NewResult("m", ds)
	// Claims 0.95 confidence but only half are true: ECE ≈ 0.45.
	for f := 0; f < 10; f++ {
		res.Prob[f] = 0.95
		ds.Labels[f] = f%2 == 0
	}
	_, ece, err := Calibration(ds, res, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.45) > 1e-12 {
		t.Fatalf("ECE = %v, want 0.45", ece)
	}
}

func TestCalibrationEdges(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0, 0.5, 1, 1, 1} // p = 1 must land in the last bin
	if _, _, err := Calibration(ds, res, 0); err == nil {
		t.Fatal("expected bin-count error")
	}
	bins, _, err := Calibration(ds, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bins[3].Count != 3 {
		t.Fatalf("last bin count = %d, want 3", bins[3].Count)
	}
}

func TestBrier(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	// Perfect predictions: Brier 0.
	for f, v := range ds.Labels {
		if v {
			res.Prob[f] = 1
		}
	}
	b, err := Brier(ds, res)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Fatalf("perfect Brier = %v", b)
	}
	// Constant 0.5: Brier 0.25.
	for f := range res.Prob {
		res.Prob[f] = 0.5
	}
	if b, err = Brier(ds, res); err != nil || !almostEqual(b, 0.25) {
		t.Fatalf("constant Brier = %v (%v)", b, err)
	}
}

func entity(i int) string {
	return "ent" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}
