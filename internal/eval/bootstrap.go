package eval

import (
	"fmt"

	"latenttruth/internal/model"
	"latenttruth/internal/stats"
)

// MetricsCI bundles percentile-bootstrap confidence intervals for the
// Table 7 metrics. The paper evaluates on only 100 labeled entities, so
// point metrics carry substantial sampling noise; these intervals make
// the uncertainty explicit.
type MetricsCI struct {
	Method    string
	Precision stats.CI
	Recall    stats.CI
	FPR       stats.CI
	Accuracy  stats.CI
	F1        stats.CI
	// Resamples is the number of bootstrap replicates used.
	Resamples int
}

// BootstrapMetrics computes percentile-bootstrap confidence intervals at
// the given level by resampling the labeled facts with replacement B
// times (deterministic from seed). Replicates that lose one of the truth
// classes are kept — the empty-denominator conventions of Confusion make
// every metric well defined.
func BootstrapMetrics(ds *model.Dataset, r *model.Result, threshold float64, b int, level float64, seed int64) (MetricsCI, error) {
	if b < 10 {
		return MetricsCI{}, fmt.Errorf("eval: need >= 10 bootstrap resamples, got %d", b)
	}
	if level <= 0 || level >= 1 {
		return MetricsCI{}, fmt.Errorf("eval: confidence level %v outside (0,1)", level)
	}
	labeled := ds.LabeledFacts()
	if len(labeled) == 0 {
		return MetricsCI{}, fmt.Errorf("eval: dataset has no labeled facts")
	}
	point, err := Evaluate(ds, r, threshold)
	if err != nil {
		return MetricsCI{}, err
	}
	rng := stats.NewRNG(seed)
	n := len(labeled)
	samples := map[string][]float64{
		"precision": make([]float64, 0, b),
		"recall":    make([]float64, 0, b),
		"fpr":       make([]float64, 0, b),
		"accuracy":  make([]float64, 0, b),
		"f1":        make([]float64, 0, b),
	}
	for i := 0; i < b; i++ {
		var m Confusion
		for j := 0; j < n; j++ {
			f := labeled[rng.Intn(n)]
			m.Add(r.Predict(f, threshold), ds.Labels[f])
		}
		samples["precision"] = append(samples["precision"], m.Precision())
		samples["recall"] = append(samples["recall"], m.Recall())
		samples["fpr"] = append(samples["fpr"], m.FalsePositiveRate())
		samples["accuracy"] = append(samples["accuracy"], m.Accuracy())
		samples["f1"] = append(samples["f1"], m.F1())
	}
	lo := (1 - level) / 2
	hi := 1 - lo
	ci := func(key string, mean float64) stats.CI {
		xs := samples[key]
		return stats.CI{
			Mean:  mean,
			Lower: stats.Quantile(xs, lo),
			Upper: stats.Quantile(xs, hi),
			Level: level,
		}
	}
	return MetricsCI{
		Method:    r.Method,
		Precision: ci("precision", point.Precision),
		Recall:    ci("recall", point.Recall),
		FPR:       ci("fpr", point.FPR),
		Accuracy:  ci("accuracy", point.Accuracy),
		F1:        ci("f1", point.F1),
		Resamples: b,
	}, nil
}
