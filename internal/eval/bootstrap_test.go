package eval

import (
	"testing"

	"latenttruth/internal/model"
)

func TestBootstrapMetricsBracketsPoint(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.9, 0.7, 0.4, 0.6, 0.95} // one FN (fact 2), one FP (fact 3)
	ci, err := BootstrapMetrics(ds, res, 0.5, 500, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]struct {
		lo, mid, hi float64
	}{
		"precision": {ci.Precision.Lower, ci.Precision.Mean, ci.Precision.Upper},
		"recall":    {ci.Recall.Lower, ci.Recall.Mean, ci.Recall.Upper},
		"accuracy":  {ci.Accuracy.Lower, ci.Accuracy.Mean, ci.Accuracy.Upper},
		"f1":        {ci.F1.Lower, ci.F1.Mean, ci.F1.Upper},
	} {
		if !(c.lo <= c.mid && c.mid <= c.hi) {
			t.Errorf("%s interval disordered: [%v, %v] around %v", name, c.lo, c.hi, c.mid)
		}
		if c.lo < 0 || c.hi > 1 {
			t.Errorf("%s interval [%v, %v] outside [0,1]", name, c.lo, c.hi)
		}
	}
	if ci.Resamples != 500 {
		t.Fatalf("resamples = %d", ci.Resamples)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	res.Prob = []float64{0.9, 0.7, 0.4, 0.6, 0.95}
	a, err := BootstrapMetrics(ds, res, 0.5, 200, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMetrics(ds, res, 0.5, 200, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.F1 != b.F1 {
		t.Fatal("bootstrap not deterministic for equal seeds")
	}
}

func TestBootstrapPerfectPredictorDegenerate(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("oracle", ds)
	for f, v := range ds.Labels {
		if v {
			res.Prob[f] = 1
		}
	}
	ci, err := BootstrapMetrics(ds, res, 0.5, 200, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A perfect predictor is perfect on every resample.
	if ci.Accuracy.Lower != 1 || ci.Accuracy.Upper != 1 {
		t.Fatalf("oracle accuracy interval [%v, %v]", ci.Accuracy.Lower, ci.Accuracy.Upper)
	}
}

func TestBootstrapValidation(t *testing.T) {
	ds := table1Dataset()
	res := model.NewResult("m", ds)
	if _, err := BootstrapMetrics(ds, res, 0.5, 5, 0.95, 1); err == nil {
		t.Fatal("expected too-few-resamples error")
	}
	if _, err := BootstrapMetrics(ds, res, 0.5, 100, 1.5, 1); err == nil {
		t.Fatal("expected bad-level error")
	}
	empty := table1Dataset()
	empty.Labels = map[int]bool{}
	if _, err := BootstrapMetrics(empty, res, 0.5, 100, 0.95, 1); err == nil {
		t.Fatal("expected no-labels error")
	}
}
