package segment

import "hash/fnv"

// bloomBitsPerKey sizes filters at ~10 bits per key, which with k=4
// probes gives a false-positive rate of about 1.2% — cheap enough that a
// false "maybe" costs one wasted page scan, never a wrong answer.
const (
	bloomBitsPerKey = 10
	bloomProbes     = 4
)

// Bloom is a split (Kirsch–Mitzenmacher) bloom filter over strings: one
// FNV-64a hash split into two 32-bit halves drives all k probe positions.
// The bit array length is a power of two so probes reduce with a mask.
type Bloom struct {
	Bits []byte `json:"bits"` // JSON-marshals as base64
	K    int    `json:"k"`
}

// newBloom returns a filter sized for n keys (minimum 64 bits).
func newBloom(n int) *Bloom {
	bits := 64
	for bits < n*bloomBitsPerKey {
		bits <<= 1
	}
	return &Bloom{Bits: make([]byte, bits/8), K: bloomProbes}
}

func bloomHash(s string) (uint32, uint32) {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	// The second half is forced odd so successive probes never collapse
	// onto one position for power-of-two array sizes.
	return uint32(v >> 32), uint32(v) | 1
}

// Add inserts s.
func (b *Bloom) Add(s string) {
	h1, h2 := bloomHash(s)
	mask := uint32(len(b.Bits)*8 - 1)
	for i := 0; i < b.K; i++ {
		pos := (h1 + uint32(i)*h2) & mask
		b.Bits[pos>>3] |= 1 << (pos & 7)
	}
}

// MayContain reports whether s may have been added: false is definitive,
// true is probabilistic. A nil or empty filter says true (no evidence).
func (b *Bloom) MayContain(s string) bool {
	if b == nil || len(b.Bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(s)
	mask := uint32(len(b.Bits)*8 - 1)
	for i := 0; i < b.K; i++ {
		pos := (h1 + uint32(i)*h2) & mask
		if b.Bits[pos>>3]&(1<<(pos&7)) == 0 {
			return false
		}
	}
	return true
}
