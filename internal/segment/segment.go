package segment

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"latenttruth/internal/model"
)

// Magic trails every segment file; a file without it is not a segment.
const Magic = "LTSEG001"

// formatVersion is bumped on any incompatible layout change.
const formatVersion = 1

// targetPageBytes bounds the encoded payload of one page. Pages are the
// unit of checksumming and of zone-map skipping inside a segment.
const targetPageBytes = 64 << 10

// trailerLen is the fixed-size tail: footerLen(4) + footerCRC(4) + magic(8).
const trailerLen = 16

// castagnoli is the CRC32C polynomial table shared with the WAL framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Ref identifies a sealed segment inside a checkpoint manifest: enough to
// locate the file, cross-check its identity, and size recovery buffers
// without opening it.
type Ref struct {
	ID       uint64 `json:"id"`        // file name stem: seg-<ID>.seg
	Rows     int    `json:"rows"`      // row count
	FirstRow int    `json:"first_row"` // global index of the first covered row
	Bytes    int64  `json:"bytes"`     // file size
	CRC      uint32 `json:"crc"`       // footer CRC32C, pinned at seal time
}

// Filename returns the segment's file name within a segment directory.
func (r Ref) Filename() string { return fmt.Sprintf("seg-%08d.seg", r.ID) }

// pageMeta is one page's entry in the footer page index.
type pageMeta struct {
	Off       int64  `json:"off"`
	Len       int    `json:"len"`
	Rows      int    `json:"rows"`
	CRC       uint32 `json:"crc"`
	MinEntity string `json:"min_entity"`
	MaxEntity string `json:"max_entity"`
}

// footer is the JSON-encoded segment directory: identity, zone maps,
// bloom filters and the page index. JSON keeps sealed state debuggable
// with standard tools; the hot row bytes stay binary.
type footer struct {
	Format    int        `json:"format"`
	ID        uint64     `json:"id"`
	Rows      int        `json:"rows"`
	FirstRow  int        `json:"first_row"`
	MinEntity string     `json:"min_entity"`
	MaxEntity string     `json:"max_entity"`
	Pages     []pageMeta `json:"pages"`
	Entities  *Bloom     `json:"entity_bloom"`
	Sources   *Bloom     `json:"source_bloom"`
}

// indexedRow pairs a row with its global insertion index so entity-sorting
// for locality never loses the order the corpus was ingested in.
type indexedRow struct {
	global int
	row    model.Row
}

// Write seals rows (insertion order, global indices firstRow..firstRow+n-1)
// into an immutable segment file at dir/seg-<id>.seg and returns its Ref.
// Rows are stably re-sorted by entity name so each entity's claims form one
// contiguous run; pages are cut at ~64KiB with per-page CRC32C and entity
// zone entries. The file is written to a temp name, fsynced, and renamed
// into place — an orphan left by a crashed earlier seal of the same id is
// silently replaced, never appended to.
func Write(dir string, id uint64, firstRow int, rows []model.Row) (Ref, error) {
	if len(rows) == 0 {
		return Ref{}, fmt.Errorf("segment: refusing to seal empty segment %d", id)
	}
	idx := make([]indexedRow, len(rows))
	for i, r := range rows {
		idx[i] = indexedRow{global: firstRow + i, row: r}
	}
	sort.SliceStable(idx, func(a, b int) bool { return idx[a].row.Entity < idx[b].row.Entity })

	ft := footer{
		Format:    formatVersion,
		ID:        id,
		Rows:      len(rows),
		FirstRow:  firstRow,
		MinEntity: idx[0].row.Entity,
		MaxEntity: idx[len(idx)-1].row.Entity,
	}
	// Distinct-key counts size the blooms; entities come from run
	// boundaries of the sorted order, sources need a set.
	entities := 1
	for i := 1; i < len(idx); i++ {
		if idx[i].row.Entity != idx[i-1].row.Entity {
			entities++
		}
	}
	srcSet := make(map[string]struct{})
	for _, r := range rows {
		srcSet[r.Source] = struct{}{}
	}
	ft.Entities = newBloom(entities)
	ft.Sources = newBloom(len(srcSet))
	for i, ir := range idx {
		if i == 0 || ir.row.Entity != idx[i-1].row.Entity {
			ft.Entities.Add(ir.row.Entity)
		}
	}
	for s := range srcSet {
		ft.Sources.Add(s)
	}

	var body []byte
	var page []byte
	var scratch [binary.MaxVarintLen64]byte
	pageStart := 0
	prevEntity := ""
	flush := func(endExclusive int) {
		if len(page) == 0 {
			return
		}
		ft.Pages = append(ft.Pages, pageMeta{
			Off:       int64(len(body)),
			Len:       len(page),
			Rows:      endExclusive - pageStart,
			CRC:       crc32.Checksum(page, castagnoli),
			MinEntity: idx[pageStart].row.Entity,
			MaxEntity: idx[endExclusive-1].row.Entity,
		})
		body = append(body, page...)
		page = page[:0]
		pageStart = endExclusive
		prevEntity = ""
	}
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		page = append(page, scratch[:n]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		page = append(page, s...)
	}
	for i, ir := range idx {
		putUvarint(uint64(ir.global - firstRow))
		// A zero entity length means "same entity as the previous row of
		// this page" — legal because empty components are rejected at Add.
		if ir.row.Entity == prevEntity {
			putUvarint(0)
		} else {
			putString(ir.row.Entity)
			prevEntity = ir.row.Entity
		}
		putString(ir.row.Attribute)
		putString(ir.row.Source)
		if len(page) >= targetPageBytes {
			flush(i + 1)
		}
	}
	flush(len(idx))

	ftJSON, err := json.Marshal(ft)
	if err != nil {
		return Ref{}, fmt.Errorf("segment: encoding footer: %w", err)
	}
	ftCRC := crc32.Checksum(ftJSON, castagnoli)
	var trailer [trailerLen]byte
	binary.LittleEndian.PutUint32(trailer[0:4], uint32(len(ftJSON)))
	binary.LittleEndian.PutUint32(trailer[4:8], ftCRC)
	copy(trailer[8:], Magic)

	ref := Ref{
		ID:       id,
		Rows:     len(rows),
		FirstRow: firstRow,
		Bytes:    int64(len(body) + len(ftJSON) + trailerLen),
		CRC:      ftCRC,
	}

	final := filepath.Join(dir, ref.Filename())
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return Ref{}, fmt.Errorf("segment: creating %s: %w", tmp, err)
	}
	for _, b := range [][]byte{body, ftJSON, trailer[:]} {
		if _, err := f.Write(b); err != nil {
			f.Close()
			os.Remove(tmp)
			return Ref{}, fmt.Errorf("segment: writing %s: %w", tmp, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return Ref{}, fmt.Errorf("segment: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return Ref{}, fmt.Errorf("segment: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return Ref{}, fmt.Errorf("segment: publishing %s: %w", final, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return ref, nil
}

// Segment is an open, fully verified segment. All reads go through the
// (possibly memory-mapped) file image; a Segment is immutable and safe for
// concurrent use.
type Segment struct {
	ref   Ref
	ft    footer
	data  []byte
	unmap func() error
}

// Open maps dir/seg-<id>.seg and verifies it completely: trailing magic,
// footer CRC, the Ref cross-check, and the CRC32C of every page. Any
// mismatch — flipped page bytes, a truncated footer, a missing file — is a
// loud error; a Segment that opens serves exactly the rows that were
// sealed, never a partial or silently corrupted view.
func Open(dir string, ref Ref) (*Segment, error) {
	path := filepath.Join(dir, ref.Filename())
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: stat %s: %w", path, err)
	}
	if ref.Bytes != 0 && st.Size() != ref.Bytes {
		f.Close()
		return nil, fmt.Errorf("segment: %s is %d bytes, manifest says %d", path, st.Size(), ref.Bytes)
	}
	data, unmap, err := mapFile(f, st.Size())
	f.Close() // the mapping (or copy) outlives the descriptor
	if err != nil {
		return nil, fmt.Errorf("segment: mapping %s: %w", path, err)
	}
	s := &Segment{ref: ref, data: data, unmap: unmap}
	if err := s.verify(path); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func (s *Segment) verify(path string) error {
	if len(s.data) < trailerLen {
		return fmt.Errorf("segment: %s truncated: %d bytes", path, len(s.data))
	}
	tr := s.data[len(s.data)-trailerLen:]
	if string(tr[8:]) != Magic {
		return fmt.Errorf("segment: %s has bad magic %q", path, tr[8:])
	}
	ftLen := int(binary.LittleEndian.Uint32(tr[0:4]))
	ftCRC := binary.LittleEndian.Uint32(tr[4:8])
	if ftLen <= 0 || ftLen > len(s.data)-trailerLen {
		return fmt.Errorf("segment: %s footer length %d out of bounds", path, ftLen)
	}
	ftStart := len(s.data) - trailerLen - ftLen
	ftJSON := s.data[ftStart : ftStart+ftLen]
	if got := crc32.Checksum(ftJSON, castagnoli); got != ftCRC {
		return fmt.Errorf("segment: %s footer CRC mismatch: got %08x want %08x", path, got, ftCRC)
	}
	if err := json.Unmarshal(ftJSON, &s.ft); err != nil {
		return fmt.Errorf("segment: %s footer does not parse: %w", path, err)
	}
	if s.ft.Format != formatVersion {
		return fmt.Errorf("segment: %s has format %d, want %d", path, s.ft.Format, formatVersion)
	}
	if s.ref.CRC != 0 && ftCRC != s.ref.CRC {
		return fmt.Errorf("segment: %s footer CRC %08x does not match manifest %08x", path, ftCRC, s.ref.CRC)
	}
	if s.ft.ID != s.ref.ID || s.ft.Rows != s.ref.Rows || s.ft.FirstRow != s.ref.FirstRow {
		return fmt.Errorf("segment: %s identity (id=%d rows=%d first=%d) does not match manifest (id=%d rows=%d first=%d)",
			path, s.ft.ID, s.ft.Rows, s.ft.FirstRow, s.ref.ID, s.ref.Rows, s.ref.FirstRow)
	}
	rows := 0
	for i, p := range s.ft.Pages {
		if p.Off < 0 || p.Len <= 0 || p.Off+int64(p.Len) > int64(ftStart) {
			return fmt.Errorf("segment: %s page %d extent [%d,+%d) out of bounds", path, i, p.Off, p.Len)
		}
		if got := crc32.Checksum(s.data[p.Off:p.Off+int64(p.Len)], castagnoli); got != p.CRC {
			return fmt.Errorf("segment: %s page %d CRC mismatch: got %08x want %08x", path, i, got, p.CRC)
		}
		rows += p.Rows
	}
	if rows != s.ft.Rows {
		return fmt.Errorf("segment: %s page index covers %d rows, footer says %d", path, rows, s.ft.Rows)
	}
	return nil
}

// Close releases the file mapping.
func (s *Segment) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	s.data = nil
	return u()
}

// Ref returns the segment's manifest reference.
func (s *Segment) Ref() Ref { return s.ref }

// Pages returns the number of pages in the segment.
func (s *Segment) Pages() int { return len(s.ft.Pages) }

// MayContainEntity reports whether the segment can hold rows of the named
// entity: the segment zone map prunes by name range, the bloom by
// membership. False is definitive.
func (s *Segment) MayContainEntity(name string) bool {
	if name < s.ft.MinEntity || name > s.ft.MaxEntity {
		return false
	}
	return s.ft.Entities.MayContain(name)
}

// MayContainSource reports whether the segment can hold rows by the named
// source. False is definitive.
func (s *Segment) MayContainSource(name string) bool {
	return s.ft.Sources.MayContain(name)
}

// OverlapsEntityRange reports whether the segment's entity zone map
// intersects [lo, hi]; an empty hi means unbounded above.
func (s *Segment) OverlapsEntityRange(lo, hi string) bool {
	if hi != "" && s.ft.MinEntity > hi {
		return false
	}
	return s.ft.MaxEntity >= lo
}

// decodePage decodes one page, calling fn for every row with its global
// index. Decode errors are reported, not panicked: CRC verification at
// open makes them unreachable short of a writer bug, but a reader must
// never trust length prefixes unchecked.
func (s *Segment) decodePage(p pageMeta, fn func(global int, r model.Row)) error {
	buf := s.data[p.Off : p.Off+int64(p.Len)]
	entity := ""
	readString := func() (string, error) {
		n, w := binary.Uvarint(buf)
		if w <= 0 || uint64(len(buf)-w) < n {
			return "", fmt.Errorf("segment: %d: corrupt string header in page", s.ref.ID)
		}
		str := string(buf[w : w+int(n)])
		buf = buf[w+int(n):]
		return str, nil
	}
	for i := 0; i < p.Rows; i++ {
		delta, w := binary.Uvarint(buf)
		if w <= 0 {
			return fmt.Errorf("segment: %d: corrupt row index in page", s.ref.ID)
		}
		buf = buf[w:]
		e, err := readString()
		if err != nil {
			return err
		}
		if e != "" {
			entity = e
		}
		a, err := readString()
		if err != nil {
			return err
		}
		src, err := readString()
		if err != nil {
			return err
		}
		fn(s.ft.FirstRow+int(delta), model.Row{Entity: entity, Attribute: a, Source: src})
	}
	return nil
}

// ScanEntities streams every row whose entity is in the probe set,
// skipping pages whose zone entry excludes all probes. It returns the
// number of pages actually decoded (the skipping telemetry the backend
// aggregates).
func (s *Segment) ScanEntities(probe map[string]struct{}, fn func(model.Row)) (int, error) {
	decoded := 0
	for _, p := range s.ft.Pages {
		hit := false
		for e := range probe {
			if e >= p.MinEntity && e <= p.MaxEntity {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		decoded++
		if err := s.decodePage(p, func(_ int, r model.Row) {
			if _, ok := probe[r.Entity]; ok {
				fn(r)
			}
		}); err != nil {
			return decoded, err
		}
	}
	return decoded, nil
}

// ScanEntityRange streams every row whose entity name falls in [lo, hi]
// (empty hi = unbounded), skipping pages outside the range. Returns pages
// decoded.
func (s *Segment) ScanEntityRange(lo, hi string, fn func(model.Row)) (int, error) {
	decoded := 0
	for _, p := range s.ft.Pages {
		if (hi != "" && p.MinEntity > hi) || p.MaxEntity < lo {
			continue
		}
		decoded++
		if err := s.decodePage(p, func(_ int, r model.Row) {
			if r.Entity >= lo && (hi == "" || r.Entity <= hi) {
				fn(r)
			}
		}); err != nil {
			return decoded, err
		}
	}
	return decoded, nil
}

// ScanSource streams every row asserted by the named source. Pages carry
// no per-source zone entries (sources are scattered across entity runs),
// so a source scan that survives the segment bloom decodes all pages.
func (s *Segment) ScanSource(name string, fn func(model.Row)) (int, error) {
	decoded := 0
	for _, p := range s.ft.Pages {
		decoded++
		if err := s.decodePage(p, func(_ int, r model.Row) {
			if r.Source == name {
				fn(r)
			}
		}); err != nil {
			return decoded, err
		}
	}
	return decoded, nil
}

// ReadRows decodes the whole segment, placing each row at its global
// insertion index in dst. dst must cover [FirstRow, FirstRow+Rows); this
// is the recovery path that reconstructs exact RawDB order from
// entity-sorted storage.
func (s *Segment) ReadRows(dst []model.Row) error {
	for _, p := range s.ft.Pages {
		if err := s.decodePage(p, func(global int, r model.Row) {
			dst[global] = r
		}); err != nil {
			return err
		}
	}
	return nil
}
