//go:build !linux

package segment

import (
	"io"
	"os"
)

// mapFile falls back to reading the whole file on platforms where the
// syscall mmap path is not wired up. The Segment API is identical; only
// residency differs.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(data)) != size {
		return nil, nil, io.ErrUnexpectedEOF
	}
	return data, func() error { return nil }, nil
}
