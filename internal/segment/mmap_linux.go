//go:build linux

package segment

import (
	"os"
	"syscall"
)

// mapFile memory-maps f read-only. Segments are immutable once sealed, so
// a shared read-only mapping is safe and lets the page cache, not the Go
// heap, hold cold row bytes.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
