package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"latenttruth/internal/model"
)

// testRows builds n rows across e entities and s sources in a shuffled
// but deterministic insertion order, so entity-sorting inside the segment
// actually reorders.
func testRows(n, e, s int) []model.Row {
	rows := make([]model.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, model.Row{
			Entity:    fmt.Sprintf("entity-%04d", (i*7919)%e),
			Attribute: fmt.Sprintf("attr-%d", i%5),
			Source:    fmt.Sprintf("source-%03d", (i*104729)%s),
		})
	}
	return rows
}

func sealTest(t *testing.T, rows []model.Row, firstRow int) (string, Ref) {
	t.Helper()
	dir := t.TempDir()
	ref, err := Write(dir, 7, firstRow, rows)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return dir, ref
}

func TestRoundTripPreservesInsertionOrder(t *testing.T) {
	rows := testRows(5000, 40, 17)
	dir, ref := sealTest(t, rows, 100)
	s, err := Open(dir, ref)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	got := make([]model.Row, 100+len(rows))
	if err := s.ReadRows(got); err != nil {
		t.Fatalf("ReadRows: %v", err)
	}
	for i, want := range rows {
		if got[100+i] != want {
			t.Fatalf("row %d: got %+v want %+v", i, got[100+i], want)
		}
	}
}

func TestScanEntitiesExactAndSkipsPages(t *testing.T) {
	rows := testRows(60000, 500, 23) // several pages
	dir, ref := sealTest(t, rows, 0)
	s, err := Open(dir, ref)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if s.Pages() < 4 {
		t.Fatalf("corpus too small to exercise page skipping: %d pages", s.Pages())
	}
	probe := map[string]struct{}{"entity-0007": {}, "entity-0490": {}}
	var got []model.Row
	decoded, err := s.ScanEntities(probe, func(r model.Row) { got = append(got, r) })
	if err != nil {
		t.Fatalf("ScanEntities: %v", err)
	}
	if decoded >= s.Pages() {
		t.Errorf("probe of 2 entities decoded all %d pages (no page skipping)", decoded)
	}
	var want []model.Row
	for _, r := range rows {
		if _, ok := probe[r.Entity]; ok {
			want = append(want, r)
		}
	}
	sortRows(got)
	sortRows(want)
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestScanEntityRangeAndSource(t *testing.T) {
	rows := testRows(8000, 100, 11)
	dir, ref := sealTest(t, rows, 0)
	s, err := Open(dir, ref)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	lo, hi := "entity-0010", "entity-0019"
	count := 0
	if _, err := s.ScanEntityRange(lo, hi, func(r model.Row) {
		if r.Entity < lo || r.Entity > hi {
			t.Fatalf("range scan leaked %q", r.Entity)
		}
		count++
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r.Entity >= lo && r.Entity <= hi {
			want++
		}
	}
	if count != want {
		t.Errorf("range scan saw %d rows, want %d", count, want)
	}

	src := "source-003"
	count = 0
	if _, err := s.ScanSource(src, func(r model.Row) {
		if r.Source != src {
			t.Fatalf("source scan leaked %q", r.Source)
		}
		count++
	}); err != nil {
		t.Fatal(err)
	}
	want = 0
	for _, r := range rows {
		if r.Source == src {
			want++
		}
	}
	if count != want {
		t.Errorf("source scan saw %d rows, want %d", count, want)
	}
}

func TestSkippingMetadata(t *testing.T) {
	rows := testRows(2000, 30, 7)
	dir, ref := sealTest(t, rows, 0)
	s, err := Open(dir, ref)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	// Every present name must answer "maybe"; names outside the zone map
	// must answer a definitive no.
	for _, r := range rows[:50] {
		if !s.MayContainEntity(r.Entity) {
			t.Fatalf("false negative for present entity %q", r.Entity)
		}
		if !s.MayContainSource(r.Source) {
			t.Fatalf("false negative for present source %q", r.Source)
		}
	}
	if s.MayContainEntity("aaaa-before-range") {
		t.Error("zone map failed to exclude a name below MinEntity")
	}
	if s.MayContainEntity("zzzz-after-range") {
		t.Error("zone map failed to exclude a name above MaxEntity")
	}
	if s.OverlapsEntityRange("zzz", "") {
		t.Error("OverlapsEntityRange should exclude a range above the zone map")
	}
	if !s.OverlapsEntityRange("entity-0000", "entity-0001") {
		t.Error("OverlapsEntityRange should include an in-range probe")
	}
}

// TestCorruptionFailsLoudly is the segment analogue of the WAL torn-tail
// tests: a flipped page byte, a truncated footer, bad magic, and a missing
// file must all fail at Open — a segment never serves partial data.
func TestCorruptionFailsLoudly(t *testing.T) {
	rows := testRows(20000, 200, 13)
	corrupt := func(t *testing.T, mutate func(path string, data []byte) []byte, wantSub string) {
		t.Helper()
		dir, ref := sealTest(t, rows, 0)
		path := filepath.Join(dir, ref.Filename())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(path, data), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, ref)
		if err == nil {
			s.Close()
			t.Fatalf("Open succeeded on corrupted segment (want error containing %q)", wantSub)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}

	t.Run("flipped page byte", func(t *testing.T) {
		corrupt(t, func(_ string, d []byte) []byte {
			d[len(d)/3] ^= 0x40 // somewhere inside the row pages
			return d
		}, "CRC mismatch")
	})
	t.Run("truncated footer", func(t *testing.T) {
		corrupt(t, func(_ string, d []byte) []byte {
			return d[:len(d)-trailerLen-10]
		}, "bytes") // the manifest size cross-check fires first
	})
	t.Run("truncated footer, size unknown", func(t *testing.T) {
		// Without a manifest size to compare against, the trailing magic
		// check must catch the truncation.
		dir, ref := sealTest(t, rows, 0)
		path := filepath.Join(dir, ref.Filename())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-trailerLen-10], 0o644); err != nil {
			t.Fatal(err)
		}
		ref.Bytes = 0
		ref.CRC = 0
		if _, err := Open(dir, ref); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("Open: %v, want bad magic", err)
		}
	})
	t.Run("flipped footer byte", func(t *testing.T) {
		corrupt(t, func(_ string, d []byte) []byte {
			d[len(d)-trailerLen-5] ^= 0x01
			return d
		}, "footer CRC mismatch")
	})
	t.Run("missing file", func(t *testing.T) {
		dir, ref := sealTest(t, rows, 0)
		if err := os.Remove(filepath.Join(dir, ref.Filename())); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, ref); err == nil {
			t.Fatal("Open succeeded on a missing segment file")
		}
	})
	t.Run("manifest size mismatch", func(t *testing.T) {
		corrupt(t, func(_ string, d []byte) []byte {
			return append(d, 0) // one stray trailing byte
		}, "bytes")
	})
}

func TestSealReplacesOrphan(t *testing.T) {
	dir := t.TempDir()
	rows := testRows(100, 5, 3)
	// A crashed earlier checkpoint left a same-id segment with other
	// contents; resealing must atomically replace it.
	if _, err := Write(dir, 3, 0, testRows(50, 2, 2)); err != nil {
		t.Fatal(err)
	}
	ref, err := Write(dir, 3, 0, rows)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, ref)
	if err != nil {
		t.Fatalf("Open after reseal: %v", err)
	}
	defer s.Close()
	got := make([]model.Row, len(rows))
	if err := s.ReadRows(got); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], rows[i])
		}
	}
}

func TestEmptySealRefused(t *testing.T) {
	if _, err := Write(t.TempDir(), 1, 0, nil); err == nil {
		t.Fatal("Write sealed an empty segment")
	}
}

func TestBloom(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if fp > 500 { // ~1.2% expected at 10 bits/key; 5% is far outside
		t.Errorf("bloom false-positive rate %d/10000 is implausibly high", fp)
	}
}

func sortRows(rs []model.Row) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		if a.Attribute != b.Attribute {
			return a.Attribute < b.Attribute
		}
		return a.Source < b.Source
	})
}
