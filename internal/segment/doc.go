// Package segment implements the immutable on-disk claim segment format
// behind the store.Backend segment storage kind.
//
// A segment holds a contiguous global-index range of raw triples, re-sorted
// by entity name into pages of entity runs. Each page carries a CRC32C
// checksum and an entity-name min/max zone entry; the footer carries the
// segment-level zone map plus bloom filters over entity and source names.
// Readers consult the footer before touching row bytes, so an entity- or
// source-scoped scan skips whole segments (and, within a segment, whole
// pages) whose metadata proves the probe cannot match — the
// provenance-based data-skipping design of arXiv:2104.12815 applied to the
// claim corpus.
//
// Segments are sealed once and never modified. Every row records its global
// insertion index, so the exact RawDB insertion order — and therefore every
// derived dataset id — is reconstructible from any set of segments covering
// a prefix of the corpus. Corruption anywhere (page bytes, footer, missing
// file) fails loudly at open: a segment either verifies completely or is
// not served at all.
package segment
