package segment

import (
	"os"
	"path/filepath"
	"strings"
)

// Clean removes segment files in dir that no retained checkpoint
// references: leftovers of a seal whose checkpoint never committed, stale
// temp files, and segments only pruned checkpoints pointed at. It is
// called after a checkpoint publishes, when keep is the authoritative
// coverage; files are only ever deleted here, never at open, so a
// recovery that falls back to an older checkpoint still finds every
// segment it needs (older checkpoints reference prefixes of keep).
func Clean(dir string, keep []Ref) (removed int, err error) {
	keepNames := make(map[string]struct{}, len(keep))
	for _, r := range keep {
		keepNames[r.Filename()] = struct{}{}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") {
			continue
		}
		if _, ok := keepNames[name]; ok {
			continue
		}
		if !strings.HasSuffix(name, ".seg") && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
