package benchgate

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// sampleOutput mimics a real `go test -bench -count 3` run: repeated
// observations, extra metric columns, and surrounding noise lines.
const sampleOutput = `goos: linux
goarch: amd64
pkg: latenttruth
cpu: AMD EPYC 7B13
BenchmarkGibbsSweepSmall-8   	       3	  56000000 ns/op	  12.5 claimsweeps/s
BenchmarkGibbsSweepSmall-8   	       3	  52000000 ns/op	  13.0 claimsweeps/s
BenchmarkGibbsSweepSmall-8   	       3	  54000000 ns/op	  12.8 claimsweeps/s
BenchmarkWALAppendNoSync-8   	     100	     91000 ns/op	       2.1 overhead-%
BenchmarkWALAppendNoSync-8   	     100	     89000 ns/op	       2.0 overhead-%
BenchmarkShardedFit4         	       1	 230000000 ns/op
--- PASS: TestSomething (0.01s)
PASS
ok  	latenttruth	12.345s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	// Best-of-N and -procs suffix stripping.
	if r := got["BenchmarkGibbsSweepSmall"]; r.NsPerOp != 52000000 || r.Runs != 3 {
		t.Fatalf("GibbsSweepSmall = %+v", r)
	}
	if r := got["BenchmarkWALAppendNoSync"]; r.NsPerOp != 89000 || r.Runs != 2 {
		t.Fatalf("WALAppendNoSync = %+v", r)
	}
	// A name with no -procs suffix parses as-is.
	if r := got["BenchmarkShardedFit4"]; r.NsPerOp != 230000000 {
		t.Fatalf("ShardedFit4 = %+v", r)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d from non-bench output", len(got))
	}
}

func baselineOf(pairs map[string]float64) Baseline {
	return Baseline{Threshold: 0.15, Benchmarks: pairs}
}

func resultsOf(pairs map[string]float64) map[string]Result {
	out := make(map[string]Result, len(pairs))
	for name, ns := range pairs {
		out[name] = Result{Name: name, NsPerOp: ns, Runs: 1}
	}
	return out
}

// TestCompareGreenOnParity is the gate's green path: identical and
// slightly-noisy runs pass, as do improvements.
func TestCompareGreenOnParity(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 2000})
	rep := Compare(base, resultsOf(map[string]float64{
		"BenchmarkA": 1100, // +10%: within the 15% band
		"BenchmarkB": 1500, // improvement
	}), 0)
	if rep.Failed() || rep.Regressions != 0 {
		t.Fatalf("green run failed: %+v", rep)
	}
	if rep.Threshold != 0.15 {
		t.Fatalf("threshold %v, want baseline's 0.15", rep.Threshold)
	}
}

// TestCompareRedOnInjectedRegression is the acceptance check: a >15%
// slowdown on the Gibbs sweep turns the gate red.
func TestCompareRedOnInjectedRegression(t *testing.T) {
	base := baselineOf(map[string]float64{
		"BenchmarkGibbsSweepSmall": 52000000,
		"BenchmarkWALAppendNoSync": 89000,
	})
	rep := Compare(base, resultsOf(map[string]float64{
		"BenchmarkGibbsSweepSmall": 52000000 * 1.16, // injected 16% regression
		"BenchmarkWALAppendNoSync": 89000,
	}), 0)
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("injected regression not caught: %+v", rep)
	}
	var hit *Comparison
	for i := range rep.Results {
		if rep.Results[i].Name == "BenchmarkGibbsSweepSmall" {
			hit = &rep.Results[i]
		}
	}
	if hit == nil || !hit.Regressed || hit.Ratio < 1.15 {
		t.Fatalf("regression row %+v", hit)
	}

	// Exactly at the threshold is still green (strictly-greater gate).
	rep = Compare(base, resultsOf(map[string]float64{
		"BenchmarkGibbsSweepSmall": 52000000 * 1.15,
		"BenchmarkWALAppendNoSync": 89000,
	}), 0)
	if rep.Failed() {
		t.Fatalf("at-threshold run failed: %+v", rep)
	}
}

// TestCompareMissingBenchmarkFails guards coverage: a benchmark that
// silently stopped running cannot pass the gate.
func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 2000})
	rep := Compare(base, resultsOf(map[string]float64{"BenchmarkA": 1000}), 0)
	if !rep.Failed() || len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkB" {
		t.Fatalf("missing benchmark not flagged: %+v", rep)
	}
	// New benchmarks are informational, not failures.
	rep = Compare(base, resultsOf(map[string]float64{
		"BenchmarkA": 1000, "BenchmarkB": 2000, "BenchmarkNew": 5,
	}), 0)
	if rep.Failed() || len(rep.Extra) != 1 {
		t.Fatalf("extra benchmark handling: %+v", rep)
	}
}

func TestThresholdPrecedence(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{"BenchmarkA": 1000}}
	// No explicit, no baseline threshold: default 0.15.
	if rep := Compare(base, resultsOf(map[string]float64{"BenchmarkA": 1100}), 0); rep.Threshold != DefaultThreshold {
		t.Fatalf("default threshold %v", rep.Threshold)
	}
	// Explicit beats baseline.
	base.Threshold = 0.5
	rep := Compare(base, resultsOf(map[string]float64{"BenchmarkA": 1300}), 0.1)
	if rep.Threshold != 0.1 || !rep.Failed() {
		t.Fatalf("explicit threshold not honored: %+v", rep)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	want := Baseline{
		Note:       "ref machine",
		Threshold:  0.15,
		Benchmarks: map[string]float64{"BenchmarkA": 123.5, "BenchmarkB": 9e8},
	}
	if err := want.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != want.Note || got.Threshold != want.Threshold || len(got.Benchmarks) != 2 ||
		got.Benchmarks["BenchmarkA"] != 123.5 {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline read cleanly")
	}
}

func TestFormatMentionsVerdicts(t *testing.T) {
	base := baselineOf(map[string]float64{"BenchmarkA": 1000, "BenchmarkGone": 10})
	rep := Compare(base, resultsOf(map[string]float64{"BenchmarkA": 2000, "BenchmarkNew": 1}), 0)
	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{"REGRESSED", "MISSING", "new (not gated", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report lacks %q:\n%s", want, out)
		}
	}
}
