// Package benchgate implements the CI performance-regression gate: it
// parses `go test -bench` output, reduces repeated runs (-count) to each
// benchmark's best observation (the minimum ns/op — the least-noisy
// estimator of a benchmark's true cost on a shared runner), and compares
// the result against a committed baseline (BENCH_baseline.json at the
// repository root), failing when any gated benchmark regresses past the
// configured threshold (default 15%).
//
// The gate is deliberately one-sided and coverage-guarded: a benchmark
// that got faster just tightens the next -update; a benchmark present in
// the baseline but missing from the run fails the gate, so silently
// dropping a benchmark cannot hide a regression. Benchmarks new to the
// run are reported but do not fail — commit them to the baseline with
// `go run ./cmd/benchgate -update` when they are meant to be gated.
//
// cmd/benchgate is the CLI wrapper CI pipes the bench output through; the
// comparison report is written as JSON for artifact upload.
package benchgate
