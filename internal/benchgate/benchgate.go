package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// DefaultThreshold is the fractional slowdown tolerated before the gate
// fails (15%: large enough to ride out shared-runner noise with best-of-N
// sampling, small enough to catch a real hot-path regression).
const DefaultThreshold = 0.15

// Result is one benchmark's best observation across repeated runs.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkGibbsSweepSmall-8 -> BenchmarkGibbsSweepSmall).
	Name string `json:"name"`
	// NsPerOp is the minimum ns/op observed.
	NsPerOp float64 `json:"ns_per_op"`
	// Runs is how many observations were folded in (-count).
	Runs int `json:"runs"`
}

// Parse reads `go test -bench` output and returns each benchmark's best
// observation keyed by name. Non-benchmark lines are ignored, so the full
// test output can be piped through unfiltered.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A benchmark result line is: name iterations value unit [value unit]...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // e.g. "BenchmarkX	--- FAIL" or a status line
		}
		ns := -1.0
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad ns/op %q on line %q", fields[i], sc.Text())
				}
				ns = v
				break
			}
		}
		if ns < 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		cur, ok := out[name]
		if !ok || ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		cur.Name = name
		cur.Runs++
		out[name] = cur
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	return out, nil
}

// Baseline is the committed reference (BENCH_baseline.json).
type Baseline struct {
	// Note documents the environment the baseline was measured on.
	Note string `json:"note,omitempty"`
	// Threshold is the fractional slowdown the gate tolerates (0 means
	// DefaultThreshold).
	Threshold float64 `json:"threshold,omitempty"`
	// Benchmarks maps benchmark name to baseline ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("benchgate: %w", err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("benchgate: %s lists no benchmarks", path)
	}
	return b, nil
}

// WriteBaseline writes b deterministically (keys sorted by the JSON
// encoder) so -update produces reviewable diffs.
func (b Baseline) WriteBaseline(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Comparison is one benchmark's gate verdict.
type Comparison struct {
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	CurrentNs  float64 `json:"current_ns_per_op"`
	// Ratio is current/baseline: 1.30 reads "30% slower".
	Ratio     float64 `json:"ratio"`
	Regressed bool    `json:"regressed"`
}

// Report is the gate's full outcome, written as the CI artifact.
type Report struct {
	Threshold float64 `json:"threshold"`
	// Results covers every baseline benchmark found in the run, sorted by
	// name.
	Results []Comparison `json:"results"`
	// Missing lists baseline benchmarks absent from the run: a coverage
	// failure (the gate cannot vouch for what did not run).
	Missing []string `json:"missing,omitempty"`
	// Extra lists run benchmarks not in the baseline (informational).
	Extra       []string `json:"extra,omitempty"`
	Regressions int      `json:"regressions"`
}

// Failed reports whether the gate should go red.
func (r Report) Failed() bool { return r.Regressions > 0 || len(r.Missing) > 0 }

// Compare gates current observations against the baseline. threshold <= 0
// falls back to the baseline's, then to DefaultThreshold.
func Compare(b Baseline, current map[string]Result, threshold float64) Report {
	if threshold <= 0 {
		threshold = b.Threshold
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := Report{Threshold: threshold}
	for name, base := range b.Benchmarks {
		cur, ok := current[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		c := Comparison{Name: name, BaselineNs: base, CurrentNs: cur.NsPerOp}
		if base > 0 {
			c.Ratio = cur.NsPerOp / base
		}
		c.Regressed = c.Ratio > 1+threshold
		if c.Regressed {
			rep.Regressions++
		}
		rep.Results = append(rep.Results, c)
	}
	for name := range current {
		if _, ok := b.Benchmarks[name]; !ok {
			rep.Extra = append(rep.Extra, name)
		}
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	sort.Strings(rep.Missing)
	sort.Strings(rep.Extra)
	return rep
}

// MarshalIndentJSON renders the report as the artifact JSON.
func (r Report) MarshalIndentJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	return append(data, '\n'), nil
}

// Format renders the report as the human-readable gate log.
func (r Report) Format(w io.Writer) {
	fmt.Fprintf(w, "benchgate: threshold +%.0f%%\n", r.Threshold*100)
	for _, c := range r.Results {
		verdict := "ok"
		if c.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "  %-40s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
			c.Name, c.BaselineNs, c.CurrentNs, (c.Ratio-1)*100, verdict)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(w, "  %-40s MISSING from run (gate cannot vouch for it)\n", name)
	}
	for _, name := range r.Extra {
		fmt.Fprintf(w, "  %-40s new (not gated; add with -update)\n", name)
	}
	if r.Failed() {
		fmt.Fprintf(w, "benchgate: FAIL (%d regression(s), %d missing)\n", r.Regressions, len(r.Missing))
	} else {
		fmt.Fprintf(w, "benchgate: ok (%d benchmarks)\n", len(r.Results))
	}
}
