// Package synth generates the three datasets of the paper's evaluation
// (§6.1.1). The synthetic dataset follows the paper's specification
// exactly: it draws source quality and fact truth from the model's own
// generative process (§4.2) and has every source claim every fact. The
// book and movie corpora are simulated stand-ins for the abebooks.com
// crawl and the Bing movies feed, which are not publicly distributable:
// the generators reproduce the published corpus statistics
// (entity/fact/claim/source counts) and quality regimes (879 long-tail,
// omission-heavy book sellers; 12 movie sources with the Table 8
// sensitivity/specificity profile), so every experiment exercises the same
// code paths at the same scale. See DESIGN.md §3 for the substitution
// rationale.
package synth
